/**
 * @file
 * Integration tests: the §3.2 application study end to end. These
 * verify that the synthetic workloads generate the VM activity the
 * paper reports (Table 3) and that the whole stack stays consistent.
 */

#include <gtest/gtest.h>

#include <string>

#include "apps/workload.h"

namespace vpp::apps {
namespace {

struct Expected
{
    AppSpec (*spec)();
    std::uint64_t paperCalls;
    double paperVppSec;
    double paperUltrixSec;
};

class AppStudy : public ::testing::TestWithParam<Expected>
{};

TEST_P(AppStudy, ManagerCallsMatchTable3)
{
    const Expected &e = GetParam();
    hw::MachineConfig m = hw::decstation5000_200();
    VppStack stack(m);
    AppRunResult r = runOnVpp(stack, e.spec());

    // Manager calls within 3% of the paper's count.
    double ratio =
        static_cast<double>(r.managerCalls) / e.paperCalls;
    EXPECT_GT(ratio, 0.97) << r.managerCalls;
    EXPECT_LT(ratio, 1.03) << r.managerCalls;

    // Nearly all manager calls are page-frame requests, i.e.
    // MigratePages invocations track calls closely (paper: 372/379,
    // 195/197, 238/250).
    EXPECT_LE(r.migrateCalls, r.managerCalls + 8);
    EXPECT_GE(r.migrateCalls * 10, r.managerCalls * 9);

    // The system stays consistent after a whole program lifetime.
    std::string why;
    EXPECT_TRUE(stack.kern.checkFrameInvariant(&why)) << why;
}

TEST_P(AppStudy, ElapsedTimesComparable)
{
    const Expected &e = GetParam();
    hw::MachineConfig m = hw::decstation5000_200();

    VppStack stack(m);
    AppRunResult vpp = runOnVpp(stack, e.spec());

    sim::Simulation s2;
    hw::Disk disk(s2, m.diskLatency, m.diskBandwidthMBps);
    uio::FileServer server(s2, disk, sim::usec(200));
    baseline::ConventionalVm vm(s2, m, server);
    AppRunResult ult = runOnBaseline(s2, m, vm, server, e.spec());

    // Both land within 10% of the paper's elapsed times...
    EXPECT_NEAR(vpp.elapsedSec, e.paperVppSec, e.paperVppSec * 0.10);
    EXPECT_NEAR(ult.elapsedSec, e.paperUltrixSec,
                e.paperUltrixSec * 0.10);
    // ...and the V++ overhead over the baseline is small (the paper's
    // central claim: at most a few percent).
    EXPECT_GT(vpp.elapsedSec, ult.elapsedSec);
    EXPECT_LT(vpp.elapsedSec - ult.elapsedSec,
              0.03 * ult.elapsedSec);
}

TEST_P(AppStudy, NoDiskTrafficWhenFilesCached)
{
    const Expected &e = GetParam();
    hw::MachineConfig m = hw::decstation5000_200();
    VppStack stack(m);
    runOnVpp(stack, e.spec());
    // The paper runs with inputs cached and eliminates I/O: the only
    // acceptable disk traffic would be from write-behind, which the
    // measured window excludes.
    EXPECT_EQ(stack.disk.reads(), 0u);
    EXPECT_EQ(stack.disk.writes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, AppStudy,
    ::testing::Values(Expected{&diffApp, 379, 3.99, 4.05},
                      Expected{&uncompressApp, 197, 6.39, 6.01},
                      Expected{&latexApp, 250, 14.71, 13.65}));

TEST(AppStudyMisc, VppUsesTwiceTheIoCallsOfBaseline)
{
    // Paper: "V++ makes twice as many read and write operations to
    // the kernel as ULTRIX" (4 KB vs 8 KB unit).
    hw::MachineConfig m = hw::decstation5000_200();
    AppSpec spec = diffApp();

    VppStack stack(m);
    AppRunResult vpp = runOnVpp(stack, spec);

    sim::Simulation s2;
    hw::Disk disk(s2, m.diskLatency, m.diskBandwidthMBps);
    uio::FileServer server(s2, disk, sim::usec(200));
    baseline::ConventionalVm vm(s2, m, server);
    AppRunResult ult = runOnBaseline(s2, m, vm, server, spec);

    EXPECT_EQ(vpp.readCalls, 2 * ult.readCalls);
    EXPECT_EQ(vpp.writeCalls, 2 * ult.writeCalls);
}

TEST(AppStudyMisc, RepeatRunsAreIndependent)
{
    hw::MachineConfig m = hw::decstation5000_200();
    VppStack stack(m);
    AppRunResult first = runOnVpp(stack, uncompressApp());
    AppRunResult second = runOnVpp(stack, uncompressApp());
    EXPECT_EQ(first.managerCalls, second.managerCalls);
    EXPECT_NEAR(first.elapsedSec, second.elapsedSec,
                first.elapsedSec * 0.01);
}

} // namespace
} // namespace vpp::apps
