/**
 * @file
 * Tests for the multi-tenant memory-market scale machinery: sharded
 * SPCM free lists, batched auction rounds, admission control and the
 * fairness/starvation counters. The legacy single-server behaviour is
 * pinned by test_managers.cc; everything here runs with the SpcmParams
 * scale knobs on and checks the contracts those knobs add.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/kernel.h"
#include "inject/inject.h"
#include "managers/generic.h"
#include "managers/market.h"
#include "managers/spcm.h"

namespace vpp::mgr {
namespace {

using kernel::runTask;
using sim::msec;
using sim::usec;

hw::MachineConfig
smallMachine()
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20; // 4096 frames
    return m;
}

SpcmParams
shardedParams(std::uint32_t shards = 4)
{
    SpcmParams sp;
    sp.shards = shards;
    return sp;
}

SpcmParams
roundParams(std::uint32_t shards = 4)
{
    SpcmParams sp = shardedParams(shards);
    sp.batchedRounds = true;
    return sp;
}

std::vector<kernel::PageIndex>
slotRange(kernel::PageIndex first, std::uint64_t n)
{
    std::vector<kernel::PageIndex> slots;
    slots.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        slots.push_back(first + i);
    return slots;
}

std::uint64_t
shardListTotal(SystemPageCacheManager &spcm)
{
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s <= spcm.params().shards; ++s)
        total += spcm.shardFreeFrames(s);
    return total;
}

// ----------------------------------------------------------------------
// Sharded free lists
// ----------------------------------------------------------------------

TEST(MarketSharding, ListsPartitionTheFreePool)
{
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    SystemPageCacheManager spcm(kern, std::nullopt, shardedParams());

    EXPECT_TRUE(spcm.sharded());
    EXPECT_EQ(shardListTotal(spcm), spcm.freeFrames());
    // Every private shard holds something: the pool splits evenly.
    for (std::uint32_t sh = 0; sh < spcm.params().shards; ++sh)
        EXPECT_GT(spcm.shardFreeFrames(sh), 0u);
}

TEST(MarketSharding, GrantAndReturnKeepListsInStep)
{
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    SystemPageCacheManager spcm(kern, std::nullopt, shardedParams());
    ClientId c = spcm.registerClient("app", 1, 0.0);
    kernel::SegmentId dst = kern.createSegmentNow("dst", 4096, 16, 1);

    std::uint64_t free0 = spcm.freeFrames();
    EXPECT_EQ(runTask(s, spcm.requestPages(c, dst, slotRange(0, 8))),
              8u);
    EXPECT_EQ(spcm.freeFrames(), free0 - 8);
    EXPECT_EQ(shardListTotal(spcm), spcm.freeFrames());

    EXPECT_EQ(runTask(s, spcm.returnPages(c, dst, slotRange(2, 4))),
              4u);
    EXPECT_EQ(spcm.freeFrames(), free0 - 4);
    EXPECT_EQ(shardListTotal(spcm), spcm.freeFrames());

    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST(MarketSharding, ShortfallStealsFromSiblingShards)
{
    // A single client may legitimately want more frames than its home
    // shard plus the shared pool hold; allocation must drain sibling
    // shards rather than refuse while free frames exist.
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    SystemPageCacheManager spcm(kern, std::nullopt, shardedParams());
    ClientId c = spcm.registerClient("greedy", 1, 0.0);
    std::uint64_t all = spcm.freeFrames();
    kernel::SegmentId dst =
        kern.createSegmentNow("dst", 4096, all + 1, 1);

    EXPECT_EQ(runTask(s, spcm.requestPages(
                             c, dst, slotRange(0, all))),
              all);
    EXPECT_EQ(spcm.freeFrames(), 0u);
    EXPECT_EQ(shardListTotal(spcm), 0u);
}

TEST(MarketSharding, ConstrainedPicksMatchLegacySelection)
{
    // Same color constraint, sharded vs legacy: identical frames.
    sim::Simulation s1, s2;
    kernel::Kernel k1(s1, smallMachine()), k2(s2, smallMachine());
    SystemPageCacheManager legacy(k1, std::nullopt);
    SystemPageCacheManager sharded(k2, std::nullopt, shardedParams());
    ClientId c1 = legacy.registerClient("a", 1, 0.0);
    ClientId c2 = sharded.registerClient("a", 1, 0.0);
    kernel::SegmentId d1 = k1.createSegmentNow("d", 4096, 8, 1);
    kernel::SegmentId d2 = k2.createSegmentNow("d", 4096, 8, 1);

    auto cons = Constraint::pageColor(5, 16);
    EXPECT_EQ(runTask(s1, legacy.requestPages(c1, d1, slotRange(0, 4),
                                              cons)),
              4u);
    EXPECT_EQ(runTask(s2, sharded.requestPages(c2, d2, slotRange(0, 4),
                                               cons)),
              4u);
    auto a1 = k1.getPageAttributesNow(d1, 0, 4);
    auto a2 = k2.getPageAttributesNow(d2, 0, 4);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(a1[i].frame, a2[i].frame);
    EXPECT_EQ(shardListTotal(sharded), sharded.freeFrames());
}

TEST(MarketSharding, CrashedManagerFramesResyncToShardLists)
{
    // Failover path: when a manager crashes, the kernel unilaterally
    // reclaims its clean frames straight into the physical segment,
    // bypassing the SPCM entirely. The shard lists must notice and
    // rebuild — each recovered frame back on its home shard and
    // allocatable — before the next pick.
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    SystemPageCacheManager spcm(kern, std::nullopt, shardedParams());
    GenericSegmentManager crasher(
        kern, "crasher", hw::ManagerMode::SameProcess, &spcm, 1);
    GenericSegmentManager fallback(
        kern, "fallback", hw::ManagerMode::SameProcess, &spcm,
        kernel::kSystemUser);
    crasher.initNow(64, 32);
    fallback.initNow(64, 32);
    kernel::SegmentId seg =
        kern.createSegmentNow("app", 4096, 64, 1, &crasher);
    kern.setDefaultManager(&fallback);
    kernel::ResiliencePolicy pol;
    pol.enabled = true;
    pol.faultDeadline = msec(50);
    pol.maxRedeliveries = 1;
    pol.retryBackoff = usec(100);
    pol.failover = true;
    kern.setResiliencePolicy(pol);
    kernel::Process proc("p", 1);

    // Build clean, reclaimable state before the crash campaign.
    for (kernel::PageIndex p = 0; p < 4; ++p)
        runTask(s, kern.touchSegment(proc, seg, p,
                                     kernel::AccessType::Read));
    std::uint64_t free_before = spcm.freeFrames();
    EXPECT_EQ(shardListTotal(spcm), free_before);

    inject::Config c;
    c.enabled = true;
    c.seed = 3;
    c.manager.crashProb = 1.0;
    inject::Engine eng(c);
    kern.setInjector(&eng);

    runTask(s, kern.touchSegment(proc, seg, 10,
                                 kernel::AccessType::Read));
    EXPECT_EQ(kern.stats().failovers, 1u);
    EXPECT_EQ(kern.stats().framesReclaimed, 4u);

    // shardFreeFrames() resyncs; the lists must account for every
    // frame the kernel took back behind the SPCM's back.
    EXPECT_EQ(spcm.freeFrames(), free_before + 4);
    EXPECT_EQ(shardListTotal(spcm), free_before + 4);

    // And the recovered frames are allocatable again: drain the pool
    // dry through the sharded pick path.
    ClientId probe = spcm.registerClient("probe", 2, 0.0);
    std::uint64_t all = spcm.freeFrames();
    kernel::SegmentId dst =
        kern.createSegmentNow("dst", 4096, all + 1, 2);
    EXPECT_EQ(runTask(s, spcm.requestPages(probe, dst,
                                           slotRange(0, all))),
              all);
    EXPECT_EQ(shardListTotal(spcm), 0u);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

// ----------------------------------------------------------------------
// Batched auction rounds
// ----------------------------------------------------------------------

TEST(MarketRounds, SameInstantBidsShareOneCrossing)
{
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    SystemPageCacheManager spcm(kern, std::nullopt, roundParams());

    constexpr int kTenants = 3;
    std::vector<ClientId> ids;
    std::vector<kernel::SegmentId> segs;
    std::vector<std::uint64_t> got(kTenants, 0);
    for (int t = 0; t < kTenants; ++t) {
        ids.push_back(spcm.registerClient("t" + std::to_string(t),
                                          10 + t, 0.0));
        segs.push_back(kern.createSegmentNow(
            "s" + std::to_string(t), 4096, 8, 10 + t));
    }
    for (int t = 0; t < kTenants; ++t) {
        s.spawn([](SystemPageCacheManager *m, ClientId c,
                   kernel::SegmentId seg,
                   std::uint64_t *out) -> sim::Task<> {
            *out = co_await m->requestPages(c, seg, slotRange(0, 4));
        }(&spcm, ids[t], segs[t], &got[t]));
    }
    s.run();

    for (int t = 0; t < kTenants; ++t)
        EXPECT_EQ(got[t], 4u) << "tenant " << t;
    EXPECT_EQ(spcm.marketRounds(), 1u);
    EXPECT_EQ(spcm.roundBids(), 3u);
    EXPECT_EQ(spcm.roundCrossings(), 1u);
}

TEST(MarketRounds, OffersFundSameRoundBids)
{
    // An exhausted pool plus a same-instant return: the round server
    // processes the offer first, so the bid is funded by frames that
    // entered the pool in its own round.
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    SystemPageCacheManager spcm(kern, std::nullopt, roundParams());
    ClientId holder = spcm.registerClient("holder", 1, 0.0);
    ClientId bidder = spcm.registerClient("bidder", 2, 0.0);
    std::uint64_t all = spcm.freeFrames();
    kernel::SegmentId hseg =
        kern.createSegmentNow("h", 4096, all + 1, 1);
    kernel::SegmentId bseg = kern.createSegmentNow("b", 4096, 8, 2);
    EXPECT_EQ(spcm.grantNow(holder, hseg, slotRange(0, all)), all);
    EXPECT_EQ(spcm.freeFrames(), 0u);

    std::uint64_t got = 0;
    s.spawn([](SystemPageCacheManager *m, ClientId c,
               kernel::SegmentId seg,
               std::uint64_t *out) -> sim::Task<> {
        *out = co_await m->requestPages(c, seg, slotRange(0, 4));
    }(&spcm, bidder, bseg, &got));
    s.spawn([](SystemPageCacheManager *m, ClientId c,
               kernel::SegmentId seg) -> sim::Task<> {
        co_await m->returnPages(c, seg, slotRange(0, 4));
    }(&spcm, holder, hseg));
    s.run();

    EXPECT_EQ(got, 4u);
    EXPECT_EQ(spcm.marketRounds(), 1u);
    EXPECT_EQ(spcm.roundOffers(), 1u);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST(MarketRounds, RoundsOffMatchesRoundsOnCounts)
{
    // The round path must be an IPC/timing optimisation only: the
    // same workload grants and returns exactly the same frame counts
    // with and without batched rounds.
    auto run_counts = [](SpcmParams sp, std::uint64_t out[3]) {
        sim::Simulation s;
        kernel::Kernel kern(s, smallMachine());
        SystemPageCacheManager spcm(kern, std::nullopt, sp);
        ClientId c = spcm.registerClient("app", 1, 0.0);
        kernel::SegmentId dst =
            kern.createSegmentNow("dst", 4096, 32, 1);
        out[0] = runTask(s, spcm.requestPages(c, dst,
                                              slotRange(0, 8)));
        out[1] = runTask(s, spcm.returnPages(c, dst,
                                             slotRange(0, 4)));
        out[2] = runTask(s, spcm.requestPages(c, dst,
                                              slotRange(8, 8)));
    };
    std::uint64_t legacy[3], rounds[3];
    run_counts(SpcmParams{}, legacy);
    run_counts(roundParams(), rounds);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(legacy[i], rounds[i]) << "step " << i;
}

// ----------------------------------------------------------------------
// Admission control and starvation accounting
// ----------------------------------------------------------------------

TEST(MarketAdmission, NeverFundedBidAgesOutWithoutDeadlock)
{
    // A pauper with no income and no balance in a contended market:
    // its bids can never be funded. Admission control must answer
    // them (0) after the deadline instead of parking forever, and the
    // starvation counters must record the growing unserved streak.
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    SpcmParams sp = roundParams();
    sp.admissionMaxWaiters = 8;
    sp.admissionMaxWait = msec(1);
    sp.admissionRetry = usec(200);
    SystemPageCacheManager spcm(kern, MarketParams{}, sp);
    ClientId pauper = spcm.registerClient("pauper", 1, 0.0);
    kernel::SegmentId dst = kern.createSegmentNow("dst", 4096, 16, 1);

    EXPECT_EQ(runTask(s, spcm.requestPages(pauper, dst,
                                           slotRange(0, 4))),
              0u);
    EXPECT_GE(spcm.bidsWaited(), 1u);
    EXPECT_GE(spcm.bidsRejected(), 1u);
    // Each admission retry re-runs the bid through a round; every
    // unfunded answer extends the unserved streak.
    std::uint64_t unserved0 = spcm.tenantStats(pauper).bidsUnserved;
    EXPECT_GE(unserved0, 1u);

    // A later bid extends the unserved streak; the recorded worst
    // starvation age grows past the gap between the bids.
    s.schedule(s.now() + msec(5), [] {});
    s.run();
    EXPECT_EQ(runTask(s, spcm.requestPages(pauper, dst,
                                           slotRange(4, 4))),
              0u);
    EXPECT_GT(spcm.tenantStats(pauper).bidsUnserved, unserved0);
    EXPECT_GT(spcm.maxStarvationSeen(), msec(4));
    EXPECT_TRUE(spcm.tenantStats(pauper).starving);
}

TEST(MarketAdmission, WaiterCapBoundsTheQueue)
{
    // More starved bids than admissionMaxWaiters: the overflow is
    // answered 0 immediately rather than parked, so the wait queue
    // cannot grow without bound.
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    SpcmParams sp = roundParams();
    sp.admissionMaxWaiters = 2;
    sp.admissionMaxWait = msec(1);
    sp.admissionRetry = usec(200);
    SystemPageCacheManager spcm(kern, MarketParams{}, sp);

    constexpr int kTenants = 6;
    std::vector<ClientId> ids;
    std::vector<kernel::SegmentId> segs;
    std::vector<std::uint64_t> got(kTenants, 7);
    for (int t = 0; t < kTenants; ++t) {
        ids.push_back(spcm.registerClient("t" + std::to_string(t),
                                          10 + t, 0.0));
        segs.push_back(kern.createSegmentNow(
            "s" + std::to_string(t), 4096, 8, 10 + t));
    }
    for (int t = 0; t < kTenants; ++t) {
        s.spawn([](SystemPageCacheManager *m, ClientId c,
                   kernel::SegmentId seg,
                   std::uint64_t *out) -> sim::Task<> {
            *out = co_await m->requestPages(c, seg, slotRange(0, 4));
        }(&spcm, ids[t], segs[t], &got[t]));
    }
    s.run();

    for (int t = 0; t < kTenants; ++t)
        EXPECT_EQ(got[t], 0u) << "tenant " << t;
    // The instantaneous queue is capped at 2, so at least 4 of the 6
    // same-instant bids were turned away rather than parked. (Total
    // bids-parked-over-time can exceed the cap: as waiters age out the
    // queue refills — that is the point of bounding it.)
    EXPECT_GE(spcm.bidsRejected(), static_cast<std::uint64_t>(
                                       kTenants - 2));
    EXPECT_GE(spcm.bidsWaited(), 1u);
}

// ----------------------------------------------------------------------
// Reclaim storms against the sharded pool
// ----------------------------------------------------------------------

TEST(MarketStorm, ExhaustedShardListsRefillFromStormReclaim)
{
    // Free-list exhaustion during a reclaim storm: every frame is
    // held when the storm hits, the swept client sheds, and the
    // sharded lists pick the shed frames up for the blocked grant.
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    SystemPageCacheManager spcm(kern, std::nullopt, shardedParams());
    GenericSegmentManager hoarder(
        kern, "hoarder", hw::ManagerMode::SameProcess, &spcm, 1);
    std::uint64_t all = spcm.freeFrames();
    hoarder.initNow(all, all);
    EXPECT_EQ(spcm.freeFrames(), 0u);
    EXPECT_EQ(shardListTotal(spcm), 0u);

    inject::Config c;
    c.enabled = true;
    c.seed = 91;
    c.pressure.stormProb = 1.0;
    c.pressure.stormFrames = 8;
    inject::Engine eng(c);
    spcm.setInjector(&eng);

    ClientId probe = spcm.registerClient("probe", 2, 0.0);
    kernel::SegmentId dst = kern.createSegmentNow("dst", 4096, 8, 2);
    std::uint64_t got =
        runTask(s, spcm.requestPages(probe, dst, slotRange(0, 4)));

    EXPECT_EQ(got, 4u);
    EXPECT_EQ(spcm.stormsTriggered(), 1u);
    EXPECT_EQ(shardListTotal(spcm), spcm.freeFrames());
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST(MarketStorm, StormClientCapSweepsRoundRobin)
{
    // With stormClients = 1 each storm sweeps exactly one client,
    // advancing round-robin, instead of the whole herd.
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    SystemPageCacheManager spcm(kern, std::nullopt);
    GenericSegmentManager h1(
        kern, "h1", hw::ManagerMode::SameProcess, &spcm, 1);
    GenericSegmentManager h2(
        kern, "h2", hw::ManagerMode::SameProcess, &spcm, 2);
    h1.initNow(64, 32);
    h2.initNow(64, 32);

    inject::Config c;
    c.enabled = true;
    c.seed = 7;
    c.pressure.stormProb = 1.0;
    c.pressure.stormFrames = 8;
    c.pressure.stormClients = 1;
    inject::Engine eng(c);
    spcm.setInjector(&eng);

    ClientId probe = spcm.registerClient("probe", 3, 0.0);
    kernel::SegmentId dst = kern.createSegmentNow("dst", 4096, 16, 3);
    runTask(s, spcm.requestPages(probe, dst, slotRange(0, 1)));
    runTask(s, spcm.requestPages(probe, dst, slotRange(1, 1)));

    EXPECT_EQ(spcm.stormsTriggered(), 2u);
    // Two storms, one client each, round robin: both hoarders have
    // shed once (8 frames each), not one of them twice.
    EXPECT_EQ(h1.freePages(), 24u);
    EXPECT_EQ(h2.freePages(), 24u);
}

} // namespace
} // namespace vpp::mgr
