/**
 * @file
 * Differential tests for the fault path's raw-speed machinery: the
 * hashed resolve() front-cache is checked against the cache-free
 * binding-chain walk (resolveUncached) across every mutation class
 * that must invalidate it — unbinding, MigratePages, segment
 * teardown, and an injected manager-crash failover — plus functional
 * coverage of batched fault delivery (faultCoalescing).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/kernel.h"
#include "inject/inject.h"
#include "managers/generic.h"
#include "managers/spcm.h"
#include "sim/random.h"

namespace vpp::kernel {
namespace {

using sim::msec;
using sim::usec;

hw::MachineConfig
smallMachine()
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20; // 4096 frames
    return m;
}

/** Assert the cached and cache-free resolutions are indistinguishable. */
void
expectSame(const Resolution &a, const Resolution &b, SegmentId s,
           PageIndex p)
{
    EXPECT_EQ(a.present, b.present) << "seg " << s << " page " << p;
    EXPECT_EQ(a.seg, b.seg) << "seg " << s << " page " << p;
    EXPECT_EQ(a.page, b.page) << "seg " << s << " page " << p;
    EXPECT_EQ(a.entry, b.entry) << "seg " << s << " page " << p;
    EXPECT_EQ(a.regionProt, b.regionProt)
        << "seg " << s << " page " << p;
    EXPECT_EQ(a.viaCow, b.viaCow) << "seg " << s << " page " << p;
    EXPECT_EQ(a.cowSeg, b.cowSeg) << "seg " << s << " page " << p;
    EXPECT_EQ(a.cowPage, b.cowPage) << "seg " << s << " page " << p;
}

void
diffCheck(Kernel &k, SegmentId s, PageIndex first, PageIndex limit)
{
    for (PageIndex p = first; p < limit; ++p) {
        // Oracle first: resolve() would populate the cache, and the
        // differential must observe whatever state the cache already
        // holds at this point.
        Resolution oracle = k.resolveUncached(s, p);
        Resolution cached = k.resolve(s, p);
        expectSame(cached, oracle, s, p);
        // Second lookup is served from the cache (if present).
        expectSame(k.resolve(s, p), oracle, s, p);
    }
}

struct ChainRig
{
    ChainRig() : kern(s, smallMachine())
    {
        file = kern.createSegmentNow("file", 4096, 256, 0);
        kern.migratePagesNow(kPhysSegment, file, 0, 0, 256, 0, 0);
        data = kern.createSegmentNow("data", 4096, 256, 0);
        kern.bindRegionNow(data, 0, 256, file, 0, flag::kProtMask,
                           true);
        va = kern.createSegmentNow("va", 4096, 256, 0);
        kern.bindRegionNow(va, 0, 256, data, 0, flag::kProtMask);
    }

    void
    warm()
    {
        for (PageIndex p = 0; p < 256; ++p)
            (void)kern.resolve(va, p);
    }

    sim::Simulation s;
    Kernel kern;
    SegmentId file = 0, data = 0, va = 0;
};

TEST(ResolveCache, HitsAreCountedAndAgreeWithOracle)
{
    ChainRig r;
    const auto &st = r.kern.stats();
    (void)r.kern.resolve(r.va, 7);
    std::uint64_t misses = st.resolveMisses;
    EXPECT_GE(misses, 1u);
    (void)r.kern.resolve(r.va, 7);
    EXPECT_GE(st.resolveHits, 1u);
    EXPECT_EQ(st.resolveMisses, misses); // second lookup was a hit
    diffCheck(r.kern, r.va, 0, 256);
}

TEST(ResolveCache, DifferentialAfterUnbind)
{
    ChainRig r;
    r.warm();
    // Drop the va -> data region: every cached translation through it
    // must die with the epoch bump.
    r.kern.unbindRegionNow(r.va, 0);
    diffCheck(r.kern, r.va, 0, 256);
    for (PageIndex p = 0; p < 256; ++p)
        EXPECT_FALSE(r.kern.resolve(r.va, p).present);
    // Rebind a shifted window and re-check.
    r.kern.bindRegionNow(r.va, 16, 64, r.data, 32, flag::kProtMask);
    diffCheck(r.kern, r.va, 0, 256);
}

TEST(ResolveCache, DifferentialAfterMigratePages)
{
    ChainRig r;
    r.warm();
    SegmentId spare = r.kern.createSegmentNow("spare", 4096, 256, 0);
    // Move frames out of the bound file: cached "present at file"
    // results are now wrong unless invalidated.
    r.kern.migratePagesNow(r.file, spare, 0, 0, 64, 0, 0);
    diffCheck(r.kern, r.va, 0, 256);
    for (PageIndex p = 0; p < 64; ++p)
        EXPECT_FALSE(r.kern.resolve(r.va, p).present);
    // And back again.
    r.kern.migratePagesNow(spare, r.file, 0, 0, 64, 0, 0);
    diffCheck(r.kern, r.va, 0, 256);
}

TEST(ResolveCache, DifferentialAfterSegmentTeardown)
{
    ChainRig r;
    r.warm();
    // Tear the chain down from the top (the kernel refuses to destroy
    // a segment that is still the target of bound regions). At every
    // stage the hot cache must track the teardown exactly.
    runTask(r.s, r.kern.destroySegment(r.va));
    EXPECT_THROW((void)r.kern.resolveUncached(r.va, 0), KernelError);
    EXPECT_THROW((void)r.kern.resolve(r.va, 0), KernelError);

    for (PageIndex p = 0; p < 256; ++p)
        (void)r.kern.resolve(r.data, p); // re-warm on the next level
    runTask(r.s, r.kern.destroySegment(r.data));
    EXPECT_THROW((void)r.kern.resolve(r.data, 0), KernelError);

    // file's frames survive; a fresh segment binding to it must get
    // correct translations, not the dead segments' cached ones.
    diffCheck(r.kern, r.file, 0, 256);
    SegmentId va2 = r.kern.createSegmentNow("va2", 4096, 256, 0);
    r.kern.bindRegionNow(va2, 0, 256, r.file, 0, flag::kProtMask);
    diffCheck(r.kern, va2, 0, 256);
}

TEST(ResolveCache, RandomizedDifferentialStress)
{
    ChainRig r;
    sim::Random rng(1234);
    SegmentId spare = r.kern.createSegmentNow("spare", 4096, 256, 0);
    bool bound = true;
    for (int round = 0; round < 200; ++round) {
        switch (rng.below(4)) {
        case 0: { // migrate a small run out of / into the file
            PageIndex at = rng.below(250);
            std::uint64_t n = 1 + rng.below(4);
            try {
                r.kern.migratePagesNow(r.file, spare, at, at, n, 0, 0);
            } catch (const KernelError &) {
            }
            break;
        }
        case 1: {
            PageIndex at = rng.below(250);
            std::uint64_t n = 1 + rng.below(4);
            try {
                r.kern.migratePagesNow(spare, r.file, at, at, n, 0, 0);
            } catch (const KernelError &) {
            }
            break;
        }
        case 2: // toggle the va -> data region
            if (bound) {
                r.kern.unbindRegionNow(r.va, 0);
            } else {
                r.kern.bindRegionNow(r.va, 0, 256, r.data, 0,
                                     flag::kProtMask);
            }
            bound = !bound;
            break;
        case 3: { // flip protection on a file page, if present
            PageIndex at = rng.below(256);
            try {
                r.kern.modifyPageFlagsNow(r.file, at, 1, 0,
                                          flag::kWritable);
            } catch (const KernelError &) {
            }
            break;
        }
        }
        for (int probe = 0; probe < 16; ++probe) {
            PageIndex p = rng.below(256);
            Resolution oracle = r.kern.resolveUncached(r.va, p);
            expectSame(r.kern.resolve(r.va, p), oracle, r.va, p);
            Resolution fo = r.kern.resolveUncached(r.file, p);
            expectSame(r.kern.resolve(r.file, p), fo, r.file, p);
        }
    }
}

TEST(ResolveCache, DifferentialAcrossCrashFailoverSweep)
{
    // An injected manager-crash campaign with failover reassigns the
    // segment and unilaterally reclaims frames mid-sweep; the cache
    // must track every kernel-side mutation the failover performs.
    sim::Simulation s;
    Kernel kern(s, smallMachine());
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager flaky(
        kern, "flaky", hw::ManagerMode::SameProcess, &spcm, 1);
    mgr::GenericSegmentManager fallback(
        kern, "fallback", hw::ManagerMode::SameProcess, &spcm,
        kSystemUser);
    flaky.initNow(128, 64);
    fallback.initNow(128, 64);
    SegmentId seg = kern.createSegmentNow("app", 4096, 64, 1, &flaky);
    Process proc("p", 1);
    kern.setDefaultManager(&fallback);
    ResiliencePolicy pol;
    pol.enabled = true;
    pol.faultDeadline = msec(50);
    pol.maxRedeliveries = 1;
    pol.retryBackoff = usec(100);
    pol.failover = true;
    kern.setResiliencePolicy(pol);

    for (PageIndex p = 0; p < 4; ++p)
        runTask(s, kern.touchSegment(proc, seg, p,
                                     AccessType::Read));
    diffCheck(kern, seg, 0, 64);

    inject::Config c;
    c.enabled = true;
    c.seed = 3;
    c.manager.crashProb = 1.0;
    inject::Engine eng(c);
    kern.setInjector(&eng);

    runTask(s, kern.touchSegment(proc, seg, 10, AccessType::Read));
    EXPECT_EQ(kern.stats().failovers, 1u);
    EXPECT_EQ(kern.segment(seg).manager(), &fallback);
    diffCheck(kern, seg, 0, 64);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

// ----------------------------------------------------------------------
// Batched fault delivery
// ----------------------------------------------------------------------

TEST(FaultCoalescing, SameInstantFaultsShareOneDispatch)
{
    hw::MachineConfig m = smallMachine();
    m.faultCoalescing = true;
    sim::Simulation s;
    Kernel kern(s, m);
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(
        kern, "m", hw::ManagerMode::SameProcess, &spcm, 1);
    manager.initNow(256, 128);
    SegmentId seg = kern.createSegmentNow("heap", 4096, 256, 1,
                                          &manager);
    Process proc("p", 1);

    std::vector<sim::Task<>> touches;
    for (PageIndex p = 0; p < 8; ++p)
        touches.push_back(
            kern.touchSegment(proc, seg, p, AccessType::Write));
    runTask(s, sim::joinAll(s, std::move(touches)));

    const auto &st = kern.stats();
    EXPECT_EQ(st.faultBatches, 1u);
    EXPECT_EQ(st.faultsCoalesced, 8u);
    EXPECT_EQ(manager.calls(), 1u);
    EXPECT_EQ(manager.faultsHandled(), 8u);
    for (PageIndex p = 0; p < 8; ++p)
        EXPECT_TRUE(kern.segment(seg).findPage(p) != nullptr);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST(FaultCoalescing, OffByDefaultKeepsPerFaultDispatch)
{
    sim::Simulation s;
    Kernel kern(s, smallMachine());
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(
        kern, "m", hw::ManagerMode::SameProcess, &spcm, 1);
    manager.initNow(256, 128);
    SegmentId seg = kern.createSegmentNow("heap", 4096, 256, 1,
                                          &manager);
    Process proc("p", 1);

    std::vector<sim::Task<>> touches;
    for (PageIndex p = 0; p < 8; ++p)
        touches.push_back(
            kern.touchSegment(proc, seg, p, AccessType::Write));
    runTask(s, sim::joinAll(s, std::move(touches)));

    const auto &st = kern.stats();
    EXPECT_EQ(st.faultBatches, 0u);
    EXPECT_EQ(st.faultsCoalesced, 0u);
    EXPECT_EQ(manager.calls(), 8u);
    EXPECT_EQ(manager.faultsHandled(), 8u);
}

TEST(FaultCoalescing, BatchedAndClassicReachTheSameState)
{
    // The batch is a delivery optimisation, not a semantic change:
    // both modes must leave the segment with identical present pages
    // and pass the frame invariant.
    auto run = [](bool coalesce) {
        hw::MachineConfig m = smallMachine();
        m.faultCoalescing = coalesce;
        sim::Simulation s;
        Kernel kern(s, m);
        mgr::SystemPageCacheManager spcm(kern, std::nullopt);
        mgr::GenericSegmentManager manager(
            kern, "m", hw::ManagerMode::SameProcess, &spcm, 1);
        manager.initNow(256, 128);
        SegmentId seg = kern.createSegmentNow("heap", 4096, 256, 1,
                                              &manager);
        Process proc("p", 1);
        std::vector<sim::Task<>> touches;
        for (PageIndex p = 0; p < 32; ++p)
            touches.push_back(kern.touchSegment(proc, seg, p * 3 % 96,
                                                AccessType::Write));
        runTask(s, sim::joinAll(s, std::move(touches)));
        std::string why;
        EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
        std::vector<PageIndex> present;
        for (const auto &[pg, e] : kern.segment(seg).pages())
            present.push_back(pg);
        return present;
    };
    EXPECT_EQ(run(false), run(true));
}

} // namespace
} // namespace vpp::kernel
