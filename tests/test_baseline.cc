/**
 * @file
 * Tests for the conventional ("ULTRIX-like") baseline VM, including
 * its Table 1 cost calibration.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "baseline/conventional_vm.h"
#include "core/kernel.h" // runTask

namespace vpp::baseline {
namespace {

using kernel::runTask;
using sim::usec;

class BaselineTest : public ::testing::Test
{
  protected:
    BaselineTest()
        : machine(hw::decstation5000_200()),
          disk(s, machine.diskLatency, machine.diskBandwidthMBps),
          server(s, disk, usec(200)), vm(s, machine, server)
    {}

    sim::Simulation s;
    hw::MachineConfig machine;
    hw::Disk disk;
    uio::FileServer server;
    ConventionalVm vm;
};

TEST_F(BaselineTest, MinimalFaultIs175usWithZeroFill)
{
    EXPECT_EQ(vm.minimalFaultCost(), usec(175));
    ProcId p = vm.createProcess("a");
    sim::SimTime t0 = s.now();
    runTask(s, vm.touch(p, 0x1000));
    EXPECT_EQ(s.now() - t0, usec(175));
    EXPECT_EQ(vm.stats().faults, 1u);
    EXPECT_EQ(vm.stats().zeroFills, 1u);

    // Second touch is mapped: free.
    t0 = s.now();
    runTask(s, vm.touch(p, 0x1000));
    EXPECT_EQ(s.now() - t0, 0);

    // Invalidate and fault again.
    vm.invalidate(p, 0x1000);
    runTask(s, vm.touch(p, 0x1000));
    EXPECT_EQ(vm.stats().faults, 2u);
}

TEST_F(BaselineTest, UserLevelFaultIs152us)
{
    EXPECT_EQ(vm.userFaultCost(), usec(152));
    ProcId p = vm.createProcess("a");
    sim::SimTime t0 = s.now();
    runTask(s, vm.protectedTouch(p, 0));
    EXPECT_EQ(s.now() - t0, usec(152));
    // The paper's point: this exceeds the V++ full fault (107 us).
    EXPECT_GT(vm.userFaultCost(), usec(107));
}

TEST_F(BaselineTest, PageTablesArePerProcess)
{
    ProcId a = vm.createProcess("a");
    ProcId b = vm.createProcess("b");
    runTask(s, vm.touch(a, 0x2000));
    runTask(s, vm.touch(b, 0x2000));
    EXPECT_EQ(vm.stats().faults, 2u);
}

TEST_F(BaselineTest, CachedIoCostsMatchTable1)
{
    uio::FileId f = server.createFile("hot", 1 << 20);
    vm.preloadFileNow(f);
    ProcId p = vm.createProcess("a");
    std::vector<std::byte> buf(4096);

    sim::SimTime t0 = s.now();
    runTask(s, vm.read(p, f, 0, buf));
    EXPECT_EQ(s.now() - t0, usec(211));

    t0 = s.now();
    runTask(s, vm.write(p, f, 0, buf));
    EXPECT_EQ(s.now() - t0, usec(311));
}

TEST_F(BaselineTest, EightKTransferUnitHalvesSyscalls)
{
    uio::FileId f = server.createFile("big", 64 << 10);
    vm.preloadFileNow(f);
    ProcId p = vm.createProcess("a");
    std::vector<std::byte> buf(8192);
    for (std::uint64_t off = 0; off < (64 << 10); off += 8192)
        runTask(s, vm.read(p, f, off, buf));
    // 64 KB in 8 KB units: 8 calls (V++ would need 16).
    EXPECT_EQ(vm.stats().readCalls, 8u);
}

TEST_F(BaselineTest, ColdReadFetchesBlockFromDisk)
{
    uio::FileId f = server.createFile("cold", 64 << 10);
    std::string msg = "on disk";
    server.writeNow(f, 0,
                    std::as_bytes(std::span(msg.data(), msg.size())));
    ProcId p = vm.createProcess("a");
    std::vector<std::byte> buf(msg.size());
    runTask(s, vm.read(p, f, 0, buf));
    EXPECT_EQ(disk.reads(), 1u);
    EXPECT_EQ(std::memcmp(buf.data(), msg.data(), msg.size()), 0);
    runTask(s, vm.read(p, f, 0, buf));
    EXPECT_EQ(disk.reads(), 1u); // now cached
}

TEST_F(BaselineTest, CloseWritesDirtyBlocksBack)
{
    uio::FileId f = server.createFile("out", 0);
    ProcId p = vm.createProcess("a");
    std::vector<std::byte> data(8192, std::byte{9});
    runTask(s, vm.write(p, f, 0, data));
    EXPECT_EQ(disk.writes(), 0u); // write-behind
    runTask(s, vm.closeFile(f));
    EXPECT_EQ(disk.writes(), 1u);
    EXPECT_EQ(vm.stats().blockWritebacks, 1u);
}

TEST_F(BaselineTest, DataRoundTripsThroughBufferCache)
{
    uio::FileId f = server.createFile("rw", 32 << 10);
    ProcId p = vm.createProcess("a");
    std::vector<std::byte> data(10000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::byte>(i % 256);
    runTask(s, vm.write(p, f, 1234, data));
    std::vector<std::byte> back(10000);
    runTask(s, vm.read(p, f, 1234, back));
    EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

} // namespace
} // namespace vpp::baseline
