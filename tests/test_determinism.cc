/**
 * @file
 * Golden determinism test for the hot paths.
 *
 * Runs a fixed mixed workload — demand faults through a segment
 * manager, copy-on-write resolution through a bound region, charged
 * migrations, flag edits, attribute queries, copyIn/copyOut, channel
 * hand-off and yields — and asserts that the event count, final
 * simulated time and every kernel statistic are *exactly* the values
 * captured from the seed implementation. Any engine or page-table
 * change that alters observable simulation behaviour (event order,
 * timing, fault counts) fails this test byte-for-byte.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/kernel.h"
#include "managers/generic.h"
#include "managers/spcm.h"
#include "sim/sync.h"

namespace vpp {
namespace {

using kernel::AccessType;
using kernel::Kernel;
using kernel::PageIndex;
using kernel::Process;
using kernel::SegmentId;
using sim::usec;
namespace flag = kernel::flag;

hw::MachineConfig
goldenMachine()
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20; // 4096 frames
    return m;
}

struct GoldenResult
{
    std::uint64_t eventsRun;
    sim::SimTime finalTime;
    Kernel::Stats stats;
    std::uint64_t p1Faults;
    std::uint64_t p2Faults;
};

GoldenResult
runGoldenWorkload()
{
    sim::Simulation s;
    Kernel kern(s, goldenMachine());
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(
        kern, "m", hw::ManagerMode::SameProcess, &spcm, 1);
    manager.initNow(1024, 512);

    SegmentId heap =
        kern.createSegmentNow("heap", 4096, 1 << 16, 1, &manager);

    // A read-only "file" image plus a copy-on-write shadow of it.
    SegmentId file = kern.createSegmentNow("file", 4096, 64, 1, &manager);
    kern.migratePagesNow(kernel::kPhysSegment, file, 2000, 0, 64,
                         flag::kReadable, flag::kWritable);
    SegmentId shadow =
        kern.createSegmentNow("shadow", 4096, 64, 1, &manager);
    kern.bindRegionNow(shadow, 0, 64, file, 0, flag::kProtMask, true);

    Process p1("p1", 1);
    Process p2("p2", 1);
    p1.setAddressSpace(heap);

    sim::Channel<int> ch(s);

    // Worker 1: demand-faults a strided working set on the heap, with
    // periodic delays and yields, then streams data in and out.
    s.spawn([](sim::Simulation &sm, Kernel &k, Process &p, SegmentId seg,
               sim::Channel<int> &done) -> sim::Task<> {
        for (int i = 0; i < 200; ++i) {
            PageIndex page = static_cast<PageIndex>((i * 7) % 256);
            AccessType a =
                i % 3 == 0 ? AccessType::Read : AccessType::Write;
            co_await k.touchSegment(p, seg, page, a);
            if (i % 17 == 0)
                co_await sm.delay(usec(3));
            if (i % 5 == 0)
                co_await sm.yield();
        }
        std::vector<std::byte> buf(10000, std::byte{0x5a});
        co_await k.copyIn(p, 4096 * 300, buf);
        co_await k.copyOut(p, 4096 * 300, buf);
        done.send(1);
    }(s, kern, p1, heap, ch));

    // Worker 2: reads the whole shadow (faulting pages through the
    // binding), then writes half of it (copy-on-write resolution).
    s.spawn([](sim::Simulation &sm, Kernel &k, Process &p,
               SegmentId seg) -> sim::Task<> {
        for (PageIndex i = 0; i < 64; ++i) {
            co_await k.touchSegment(p, seg, i, AccessType::Read);
            if (i % 4 == 0)
                co_await sm.yield();
        }
        for (PageIndex i = 0; i < 32; ++i) {
            co_await k.touchSegment(p, seg, i * 2, AccessType::Write);
            if (i % 7 == 0)
                co_await sm.delay(usec(1));
        }
    }(s, kern, p2, shadow));

    // Worker 3: waits for worker 1, then exercises the charged
    // migration / flag / attribute paths on scratch segments.
    s.spawn([](sim::Simulation &sm, Kernel &k,
               sim::Channel<int> &done) -> sim::Task<> {
        (void)co_await done.recv();
        SegmentId a = co_await k.createSegment("scratch-a", 4096, 256,
                                               kernel::kSystemUser);
        SegmentId b = co_await k.createSegment("scratch-b", 4096, 256,
                                               kernel::kSystemUser);
        co_await k.migratePages(kernel::kPhysSegment, a, 3000, 0, 128,
                                0, 0);
        for (int round = 0; round < 4; ++round) {
            if (round % 2 == 0)
                co_await k.migratePages(a, b, 0, 0, 128, 0, 0);
            else
                co_await k.migratePages(b, a, 0, 0, 128, 0, 0);
            co_await sm.delay(usec(2));
        }
        co_await k.modifyPageFlags(b, 0, 128, flag::kPinned, 0);
        auto attrs = co_await k.getPageAttributes(b, 0, 128);
        if (attrs.size() != 128)
            throw std::runtime_error("bad attribute count");
        co_await k.modifyPageFlags(b, 0, 128, 0, flag::kPinned);
    }(s, kern, ch));

    GoldenResult r;
    r.finalTime = s.run();
    r.eventsRun = s.eventsRun();
    r.stats = kern.stats();
    r.p1Faults = p1.faults();
    r.p2Faults = p2.faults();

    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
    return r;
}

// Golden values captured from the seed implementation (std::map page
// tables, std::function event queue) before the hot-path overhaul.
// These must never drift: the engine and page-table representation are
// host-side optimisations with no observable simulation effect.
TEST(Determinism, GoldenMixedWorkload)
{
    GoldenResult r = runGoldenWorkload();

    EXPECT_EQ(r.eventsRun, 1297u);
    EXPECT_EQ(r.finalTime, 38001906);

    EXPECT_EQ(r.stats.faults, 235u);
    EXPECT_EQ(r.stats.missingFaults, 203u);
    EXPECT_EQ(r.stats.protectionFaults, 0u);
    EXPECT_EQ(r.stats.cowFaults, 32u);
    EXPECT_EQ(r.stats.managerCalls, 235u);
    EXPECT_EQ(r.stats.migrateCalls, 240u);
    EXPECT_EQ(r.stats.pagesMigrated, 1451u);
    EXPECT_EQ(r.stats.modifyFlagCalls, 2u);
    EXPECT_EQ(r.stats.getAttrCalls, 1u);
    EXPECT_EQ(r.stats.zeroFills, 0u);
    EXPECT_EQ(r.stats.bytesZeroed, 0u);
    EXPECT_EQ(r.stats.bytesCopied, 151072u);
    EXPECT_EQ(r.stats.segmentsCreated, 6u);
    EXPECT_EQ(r.stats.tlbMisses, 0u);

    EXPECT_EQ(r.p1Faults, 203u);
    EXPECT_EQ(r.p2Faults, 32u);
}

// The workload must also be self-deterministic: two fresh runs in the
// same process produce identical results.
TEST(Determinism, RepeatedRunsIdentical)
{
    GoldenResult a = runGoldenWorkload();
    GoldenResult b = runGoldenWorkload();
    EXPECT_EQ(a.eventsRun, b.eventsRun);
    EXPECT_EQ(a.finalTime, b.finalTime);
    EXPECT_EQ(a.stats.faults, b.stats.faults);
    EXPECT_EQ(a.stats.pagesMigrated, b.stats.pagesMigrated);
    EXPECT_EQ(a.stats.bytesCopied, b.stats.bytesCopied);
}

} // namespace
} // namespace vpp
