/**
 * @file
 * Tests for the V-style synchronous message-passing port.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/kernel.h" // runTask
#include "ipc/port.h"

namespace vpp::ipc {
namespace {

using kernel::runTask;
using sim::usec;

struct Req
{
    int x;
};

struct Resp
{
    int y;
};

TEST(ServerPort, RoundTripDeliversAndCharges)
{
    sim::Simulation s;
    CallCost cost{usec(141), usec(141)}; // as from the DECstation model
    ServerPort<Req, Resp> port(s, cost);

    // Server: doubles the request after 10 us of work.
    s.spawn([](sim::Simulation &sim,
               ServerPort<Req, Resp> &p) -> sim::Task<> {
        auto pending = co_await p.receive();
        co_await sim.delay(usec(10));
        pending.reply.setValue(Resp{pending.request.x * 2});
    }(s, port));

    int got = 0;
    sim::SimTime done_at = 0;
    s.spawn([](sim::Simulation &sim, ServerPort<Req, Resp> &p,
               int *out, sim::SimTime *at) -> sim::Task<> {
        Resp r = co_await p.call(Req{21});
        *out = r.y;
        *at = sim.now();
    }(s, port, &got, &done_at));
    s.run();

    EXPECT_EQ(got, 42);
    // send + server work + reply.
    EXPECT_EQ(done_at, usec(141 + 10 + 141));
    EXPECT_EQ(port.calls(), 1u);
}

TEST(ServerPort, QueuedRequestsServeFifo)
{
    sim::Simulation s;
    ServerPort<Req, Resp> port(s, CallCost{usec(1), usec(1)});

    std::vector<int> served;
    s.spawn([](sim::Simulation &sim, ServerPort<Req, Resp> &p,
               std::vector<int> *order) -> sim::Task<> {
        for (int i = 0; i < 3; ++i) {
            auto pending = co_await p.receive();
            co_await sim.delay(usec(5));
            order->push_back(pending.request.x);
            pending.reply.setValue(Resp{0});
        }
    }(s, port, &served));

    for (int i = 0; i < 3; ++i) {
        s.spawn([](ServerPort<Req, Resp> &p, int x) -> sim::Task<> {
            co_await p.call(Req{x});
        }(port, i));
    }
    s.run();
    EXPECT_EQ(served, (std::vector<int>{0, 1, 2}));
}

TEST(ServerPort, CostFromMachineMatchesTable1Decomposition)
{
    hw::MachineConfig m = hw::decstation5000_200();
    CallCost c = CallCost::fromMachine(m);
    // ipcSend(35) + contextSwitch(106) each way.
    EXPECT_EQ(c.send, usec(141));
    EXPECT_EQ(c.reply, usec(141));
}

TEST(ServerPort, BatchCallChargesOneCrossingForAllRequests)
{
    sim::Simulation s;
    CallCost cost{usec(141), usec(141)};
    ServerPort<Req, Resp> port(s, cost);

    // Server: answer the whole batch with one reply, 10 us per item.
    s.spawn([](sim::Simulation &sim,
               ServerPort<Req, Resp> &p) -> sim::Task<> {
        auto pending = co_await p.receiveBatch();
        std::vector<Resp> out;
        for (const Req &r : pending.requests) {
            co_await sim.delay(usec(10));
            out.push_back(Resp{r.x * 2});
        }
        pending.reply.setValue(std::move(out));
    }(s, port));

    std::vector<int> got;
    sim::SimTime done_at = 0;
    s.spawn([](sim::Simulation &sim, ServerPort<Req, Resp> &p,
               std::vector<int> *out, sim::SimTime *at) -> sim::Task<> {
        std::vector<Req> reqs;
        for (int i = 1; i <= 3; ++i)
            reqs.push_back(Req{i});
        std::vector<Resp> rs = co_await p.callBatch(std::move(reqs));
        for (const Resp &r : rs)
            out->push_back(r.y);
        *at = sim.now();
    }(s, port, &got, &done_at));
    s.run();

    EXPECT_EQ(got, (std::vector<int>{2, 4, 6}));
    // One send + 3x work + one reply: the crossings are NOT tripled.
    EXPECT_EQ(done_at, usec(141 + 3 * 10 + 141));
    EXPECT_EQ(port.calls(), 1u);
    EXPECT_EQ(port.batchedRequests(), 3u);
    EXPECT_TRUE(port.idle());
}

TEST(ServerPort, ServerErrorPropagatesToCaller)
{
    sim::Simulation s;
    ServerPort<Req, Resp> port(s, CallCost{0, 0});
    s.spawn([](ServerPort<Req, Resp> &p) -> sim::Task<> {
        auto pending = co_await p.receive();
        pending.reply.setError(std::make_exception_ptr(
            std::runtime_error("server failed")));
    }(port));

    bool caught = false;
    s.spawn([](ServerPort<Req, Resp> &p, bool *c) -> sim::Task<> {
        try {
            co_await p.call(Req{1});
        } catch (const std::runtime_error &) {
            *c = true;
        }
    }(port, &caught));
    s.run();
    EXPECT_TRUE(caught);
}

} // namespace
} // namespace vpp::ipc
