/**
 * @file
 * Determinism under parallelism: a representative sweep (manager
 * fault costs + a DB study row, i.e. real simulations through the
 * real kernel) must produce byte-identical collected results,
 * rendered tables and JSON whether it runs on 1 worker thread or 8.
 */

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "bench/sweep.h"
#include "core/kernel.h"
#include "db/study.h"
#include "managers/generic.h"
#include "sim/table.h"

using namespace vpp;
using kernel::runTask;

namespace {

/** Mean simulated cost of one fault through a real manager stack. */
double
faultCost(hw::ManagerMode mode, int iters)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 32 << 20;
    kernel::Kernel kern(s, m);
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(kern, "mgr", mode, &spcm, 1);
    manager.initNow(4096, 512);
    kernel::SegmentId seg =
        kern.createSegmentNow("heap", 4096, 512, 1, &manager);
    kernel::Process proc("bench", 1);

    sim::SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i) {
        runTask(s, kern.touchSegment(proc, seg, i,
                                     kernel::AccessType::Write));
    }
    return sim::toUsec(s.now() - t0) / iters;
}

struct SweepOutput
{
    std::vector<vppbench::RowResult> rows;
    std::string table;
    std::string json;
};

SweepOutput
runRepresentativeSweep(unsigned jobs)
{
    vppbench::Options opt;
    opt.jobs = jobs;
    opt.progress = false;

    vppbench::Sweep sweep("determinism-sweep", opt);
    for (int iters : {16, 32, 64}) {
        sweep.add("same-process-" + std::to_string(iters), [iters] {
            vppbench::RowResult r;
            r.set("fault_us",
                  faultCost(hw::ManagerMode::SameProcess, iters));
            return r;
        });
        sweep.add("separate-process-" + std::to_string(iters),
                  [iters] {
                      vppbench::RowResult r;
                      r.set("fault_us",
                            faultCost(hw::ManagerMode::SeparateProcess,
                                      iters));
                      return r;
                  });
    }
    sweep.add("db-regeneration", [] {
        db::DbParams p;
        p.durationSec = 60;
        db::DbResult res =
            db::runDbStudy(db::DbConfig::IndexRegeneration, p);
        vppbench::RowResult r;
        r.set("avg_ms", res.avgMs);
        r.set("worst_ms", res.worstMs);
        r.set("txns", static_cast<double>(res.txns));
        return r;
    });
    sweep.run();
    EXPECT_TRUE(sweep.ok());

    SweepOutput out;
    sim::TextTable t({"Row", "first metric"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        out.rows.push_back(sweep.at(i));
        t.addRow({sweep.label(i),
                  sim::TextTable::num(sweep.at(i).metrics.at(0).second,
                                      6)});
    }
    out.table = t.str();
    out.json = sweep.jsonStr();
    return out;
}

} // namespace

TEST(SweepDeterminism, Jobs1AndJobs8AreByteIdentical)
{
    SweepOutput serial = runRepresentativeSweep(1);
    SweepOutput parallel = runRepresentativeSweep(8);

    // Collected stats structs: exact bit equality, metric by metric.
    ASSERT_EQ(serial.rows.size(), parallel.rows.size());
    for (std::size_t i = 0; i < serial.rows.size(); ++i) {
        const auto &a = serial.rows[i].metrics;
        const auto &b = parallel.rows[i].metrics;
        ASSERT_EQ(a.size(), b.size()) << "row " << i;
        for (std::size_t m = 0; m < a.size(); ++m) {
            EXPECT_EQ(a[m].first, b[m].first);
            EXPECT_EQ(std::memcmp(&a[m].second, &b[m].second,
                                  sizeof(double)),
                      0)
                << "row " << i << " metric " << a[m].first;
        }
    }

    // Rendered table and JSON: byte-for-byte.
    EXPECT_EQ(serial.table, parallel.table);
    EXPECT_EQ(serial.json, parallel.json);
}

TEST(SweepDeterminism, RepeatedParallelRunsAgree)
{
    SweepOutput a = runRepresentativeSweep(8);
    SweepOutput b = runRepresentativeSweep(8);
    EXPECT_EQ(a.json, b.json);
    EXPECT_EQ(a.table, b.table);
}
