/**
 * @file
 * Tests for the manager stack: memory market, SPCM, generic segment
 * manager and the default (UCDS) manager's clock algorithm.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/kernel.h"
#include "managers/default_mgr.h"
#include "managers/generic.h"
#include "managers/market.h"
#include "managers/spcm.h"
#include "uio/block_io.h"
#include "uio/file_server.h"

namespace vpp::mgr {
namespace {

using kernel::kSystemUser;
using kernel::runTask;
using sim::msec;
using sim::sec;
using sim::usec;
namespace flag = kernel::flag;

hw::MachineConfig
smallMachine()
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20; // 4096 frames
    return m;
}

// ----------------------------------------------------------------------
// MemoryMarket
// ----------------------------------------------------------------------

TEST(MemoryMarket, IncomeAccruesOverTime)
{
    sim::Simulation s;
    MarketParams p;
    p.savingsTaxPerSec = 0.0;
    MemoryMarket m(s, p);
    DramAccount a;
    a.incomeRate = 10.0;
    s.schedule(sec(5), [] {});
    s.run();
    m.settle(a, false);
    EXPECT_NEAR(a.balance, 50.0, 1e-9);
    EXPECT_NEAR(a.totalIncome, 50.0, 1e-9);
}

TEST(MemoryMarket, HoldingChargedWhenContended)
{
    sim::Simulation s;
    MarketParams p;
    p.chargePerMBSec = 2.0;
    p.savingsTaxPerSec = 0.0;
    MemoryMarket m(s, p);
    DramAccount a;
    a.balance = 100.0;
    a.bytesHeld = 4 << 20; // 4 MB at 2 drams/MB-s = 8 drams/s
    s.schedule(sec(5), [] {});
    s.run();
    m.settle(a, true);
    EXPECT_NEAR(a.balance, 100.0 - 40.0, 1e-9);
    EXPECT_NEAR(a.totalMemoryCharge, 40.0, 1e-9);
}

TEST(MemoryMarket, HoldingFreeWhenUncontended)
{
    sim::Simulation s;
    MarketParams p;
    p.savingsTaxPerSec = 0.0;
    MemoryMarket m(s, p);
    DramAccount a;
    a.balance = 100.0;
    a.bytesHeld = 4 << 20;
    s.schedule(sec(5), [] {});
    s.run();
    m.settle(a, false);
    EXPECT_NEAR(a.balance, 100.0, 1e-9);
}

TEST(MemoryMarket, SavingsTaxErodesHoards)
{
    sim::Simulation s;
    MarketParams p;
    p.savingsTaxPerSec = 0.1;
    MemoryMarket m(s, p);
    DramAccount a;
    a.balance = 100.0;
    s.schedule(sec(1), [] {});
    s.run();
    m.settle(a, false);
    EXPECT_NEAR(a.balance, 90.0, 1e-9);
    EXPECT_NEAR(a.totalTax, 10.0, 1e-9);
}

TEST(MemoryMarket, IoCharge)
{
    sim::Simulation s;
    MarketParams p;
    p.ioChargePerMB = 0.5;
    MemoryMarket m(s, p);
    DramAccount a;
    a.balance = 10.0;
    m.chargeIo(a, 4 << 20);
    EXPECT_NEAR(a.balance, 8.0, 1e-9);
}

TEST(MemoryMarket, AffordableBytesScalesWithIncome)
{
    sim::Simulation s;
    MarketParams p;
    p.chargePerMBSec = 1.0;
    p.grantHorizonSec = 1.0;
    MemoryMarket m(s, p);
    DramAccount a;
    a.incomeRate = 8.0; // sustains 8 MB forever
    a.balance = 0.0;
    EXPECT_EQ(m.affordableBytes(a), 8u << 20);
    a.balance = 4.0; // plus 4 MB for the horizon second
    EXPECT_EQ(m.affordableBytes(a), 12u << 20);
    a.balance = -100.0;
    EXPECT_EQ(m.affordableBytes(a), 0u);
}

TEST(MemoryMarket, RunwayComputation)
{
    sim::Simulation s;
    MarketParams p;
    p.chargePerMBSec = 1.0;
    MemoryMarket m(s, p);
    DramAccount a;
    a.balance = 10.0;
    a.incomeRate = 2.0;
    a.bytesHeld = 4 << 20; // burn 4 - 2 = 2 drams/s -> 5 s runway
    EXPECT_NEAR(m.runwaySec(a), 5.0, 1e-9);
    a.bytesHeld = 1 << 20; // income covers the charge
    EXPECT_GT(m.runwaySec(a), 1e8);
}

// ----------------------------------------------------------------------
// SPCM
// ----------------------------------------------------------------------

class SpcmTest : public ::testing::Test
{
  protected:
    SpcmTest() : kern(s, smallMachine()), spcm(kern, std::nullopt) {}

    kernel::SegmentId
    destSegment(std::uint64_t pages, kernel::UserId uid = 1)
    {
        return kern.createSegmentNow("dst", 4096, pages, uid);
    }

    sim::Simulation s;
    kernel::Kernel kern;
    SystemPageCacheManager spcm;
};

TEST_F(SpcmTest, GrantsAndReturnsFrames)
{
    ClientId c = spcm.registerClient("app", 1, 0.0);
    kernel::SegmentId dst = destSegment(8);
    std::uint64_t free0 = spcm.freeFrames();

    std::uint64_t got = runTask(
        s, spcm.requestPages(c, dst, {0, 1, 2, 3}));
    EXPECT_EQ(got, 4u);
    EXPECT_EQ(spcm.freeFrames(), free0 - 4);
    EXPECT_EQ(spcm.account(c).bytesHeld, 4u * 4096);

    std::uint64_t back = runTask(s, spcm.returnPages(c, dst, {1, 2}));
    EXPECT_EQ(back, 2u);
    EXPECT_EQ(spcm.freeFrames(), free0 - 2);
    EXPECT_EQ(spcm.account(c).bytesHeld, 2u * 4096);

    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST_F(SpcmTest, PhysRangeConstraint)
{
    ClientId c = spcm.registerClient("dash", 1, 0.0);
    kernel::SegmentId dst = destSegment(8);
    // Ask for frames in the second megabyte only.
    auto cons = Constraint::physRange(1 << 20, 2 << 20);
    std::uint64_t got =
        runTask(s, spcm.requestPages(c, dst, {0, 1, 2}, cons));
    EXPECT_EQ(got, 3u);
    auto attrs = kern.getPageAttributesNow(dst, 0, 3);
    for (const auto &a : attrs) {
        EXPECT_GE(a.physAddr, 1u << 20);
        EXPECT_LT(a.physAddr, 2u << 20);
    }
}

TEST_F(SpcmTest, ColorConstraint)
{
    ClientId c = spcm.registerClient("colored", 1, 0.0);
    kernel::SegmentId dst = destSegment(8);
    auto cons = Constraint::pageColor(3, 16);
    std::uint64_t got =
        runTask(s, spcm.requestPages(c, dst, {0, 1, 2, 3}, cons));
    EXPECT_EQ(got, 4u);
    auto attrs = kern.getPageAttributesNow(dst, 0, 4);
    for (const auto &a : attrs)
        EXPECT_EQ(a.frame % 16, 3u);
}

TEST_F(SpcmTest, UnsatisfiableConstraintGrantsWhatItCan)
{
    ClientId c = spcm.registerClient("picky", 1, 0.0);
    kernel::SegmentId dst = destSegment(8);
    // Only 256 frames exist in the first megabyte.
    auto cons = Constraint::physRange(0, 1 << 20);
    std::vector<kernel::PageIndex> slots;
    kernel::SegmentId big = destSegment(4096);
    for (kernel::PageIndex i = 0; i < 300; ++i)
        slots.push_back(i);
    std::uint64_t got =
        runTask(s, spcm.requestPages(c, big, slots, cons));
    EXPECT_EQ(got, 256u);
    (void)dst;
}

TEST_F(SpcmTest, CrossUserGrantZeroFills)
{
    ClientId alice = spcm.registerClient("alice", 1, 0.0);
    ClientId bob = spcm.registerClient("bob", 2, 0.0);

    kernel::SegmentId da = destSegment(4, 1);
    runTask(s, spcm.requestPages(alice, da, {0}));
    kern.writePageData(da, 0, 0,
                       std::as_bytes(std::span("secret", 6)));
    runTask(s, spcm.returnPages(alice, da, {0}));

    std::uint64_t zeroed_before = kern.stats().zeroFills;
    kernel::SegmentId db = destSegment(4, 2);
    // Bob receives frames last used by alice: must be zeroed.
    runTask(s, spcm.requestPages(bob, db, {0, 1, 2, 3}));
    EXPECT_GT(kern.stats().zeroFills, zeroed_before);
    char buf[6];
    kern.readPageData(db, 0, 0,
                      std::as_writable_bytes(std::span(buf, 6)));
    for (char ch : buf)
        EXPECT_EQ(ch, 0);
}

TEST_F(SpcmTest, SameUserReGrantSkipsZeroing)
{
    ClientId alice = spcm.registerClient("alice", 1, 0.0);
    kernel::SegmentId da = destSegment(4, 1);
    runTask(s, spcm.requestPages(alice, da, {0}));
    auto attr = kern.getPageAttributesNow(da, 0, 1)[0];
    hw::FrameId f = attr.frame;
    runTask(s, spcm.returnPages(alice, da, {0}));

    std::uint64_t zeroed_before = kern.stats().zeroFills;
    // Request constrained to exactly that frame: same user, no zero.
    auto cons = Constraint::physRange(kern.memory().physAddr(f),
                                      kern.memory().physAddr(f) + 4096);
    EXPECT_EQ(runTask(s, spcm.requestPages(alice, da, {1}, cons)), 1u);
    EXPECT_EQ(kern.stats().zeroFills, zeroed_before);
}

TEST_F(SpcmTest, ConcurrentRequestsNeverDoubleGrantFrames)
{
    // Regression: grant decisions span awaits; two overlapping
    // requests must not select the same frames (the SPCM serialises
    // like the single server process it models).
    ClientId a = spcm.registerClient("a", 1, 0.0);
    ClientId b = spcm.registerClient("b", 2, 0.0);
    kernel::SegmentId da = destSegment(64, 1);
    kernel::SegmentId db = destSegment(64, 2);
    std::vector<kernel::PageIndex> slots;
    for (kernel::PageIndex i = 0; i < 64; ++i)
        slots.push_back(i);

    s.spawn([](SystemPageCacheManager &pool, ClientId c,
               kernel::SegmentId dst,
               std::vector<kernel::PageIndex> sl) -> sim::Task<> {
        co_await pool.requestPages(c, dst, std::move(sl));
    }(spcm, a, da, slots));
    s.spawn([](SystemPageCacheManager &pool, ClientId c,
               kernel::SegmentId dst,
               std::vector<kernel::PageIndex> sl) -> sim::Task<> {
        co_await pool.requestPages(c, dst, std::move(sl));
    }(spcm, b, db, slots));
    s.run();

    EXPECT_EQ(kern.segment(da).presentPages(), 64u);
    EXPECT_EQ(kern.segment(db).presentPages(), 64u);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST_F(SpcmTest, MarketLimitsGrant)
{
    kernel::Kernel k2(s, smallMachine());
    MarketParams p;
    p.chargePerMBSec = 1.0;
    p.grantHorizonSec = 1.0;
    p.savingsTaxPerSec = 0.0;
    SystemPageCacheManager market_spcm(k2, p);
    // Income sustains 2 MB = 512 frames.
    ClientId c = market_spcm.registerClient("budget", 1, 2.0);
    kernel::SegmentId dst = k2.createSegmentNow("d", 4096, 4096, 1);
    std::vector<kernel::PageIndex> slots;
    for (kernel::PageIndex i = 0; i < 1024; ++i)
        slots.push_back(i);
    std::uint64_t got =
        runTask(s, market_spcm.requestPages(c, dst, slots));
    EXPECT_EQ(got, 512u);
}

TEST_F(SpcmTest, PatrolForcesReclaim)
{
    kernel::Kernel k2(s, smallMachine());
    MarketParams p;
    p.chargePerMBSec = 1.0;
    p.savingsTaxPerSec = 0.0;
    p.freeWhenUncontended = false;
    SystemPageCacheManager ms(k2, p);

    std::uint64_t demanded = 0;
    ClientId c = ms.registerClient(
        "broke", 1, 0.0, [&demanded](std::uint64_t n) -> sim::Task<> {
            demanded += n;
            co_return;
        });
    ms.deposit(c, 4.0); // enough for 4 MB for 1 s
    kernel::SegmentId dst = k2.createSegmentNow("d", 4096, 2048, 1);
    std::vector<kernel::PageIndex> slots;
    for (kernel::PageIndex i = 0; i < 1024; ++i)
        slots.push_back(i); // ask for 4 MB
    runTask(s, ms.requestPages(c, dst, slots));
    EXPECT_EQ(ms.account(c).bytesHeld, 4u << 20);

    // After 3 seconds the account is deep in debt; patrol demands
    // frames back.
    s.schedule(s.now() + sec(3), [] {});
    s.run();
    runTask(s, ms.patrol());
    EXPECT_GT(demanded, 0u);
}

// ----------------------------------------------------------------------
// GenericSegmentManager
// ----------------------------------------------------------------------

class GenericTest : public ::testing::Test
{
  protected:
    GenericTest()
        : kern(s, smallMachine()), spcm(kern, std::nullopt),
          mgr(kern, "app-mgr", hw::ManagerMode::SameProcess, &spcm, 1),
          proc("app", 1)
    {
        mgr.initNow(1024, 64);
    }

    sim::Simulation s;
    kernel::Kernel kern;
    SystemPageCacheManager spcm;
    GenericSegmentManager mgr;
    kernel::Process proc;
};

TEST_F(GenericTest, ResolvesFaultsFromFreePool)
{
    kernel::SegmentId seg =
        kern.createSegmentNow("data", 4096, 64, 1, &mgr);
    EXPECT_EQ(mgr.freePages(), 64u);
    runTask(s, kern.touchSegment(proc, seg, 3, kernel::AccessType::Write));
    EXPECT_EQ(mgr.freePages(), 63u);
    EXPECT_EQ(mgr.pagesAllocated(), 1u);
    EXPECT_EQ(mgr.migrateInvocations(), 1u);
    EXPECT_TRUE(kern.segment(seg).findPage(3));
}

TEST_F(GenericTest, MinimalFaultCostMatchesTable1)
{
    kernel::SegmentId seg =
        kern.createSegmentNow("data", 4096, 64, 1, &mgr);
    sim::SimTime t0 = s.now();
    runTask(s, kern.touchSegment(proc, seg, 0, kernel::AccessType::Write));
    EXPECT_EQ(s.now() - t0, usec(107));
}

TEST_F(GenericTest, ReplenishesFromSpcmWhenPoolEmpty)
{
    kernel::SegmentId seg =
        kern.createSegmentNow("data", 4096, 256, 1, &mgr);
    // Drain the pool: 64 initial frames, then more must be fetched.
    for (kernel::PageIndex p = 0; p < 100; ++p) {
        runTask(s,
                kern.touchSegment(proc, seg, p,
                                  kernel::AccessType::Write));
    }
    EXPECT_EQ(kern.segment(seg).presentPages(), 100u);
    EXPECT_GT(spcm.grantsServed(), 0u);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST_F(GenericTest, ReclaimWritesNothingForCleanPages)
{
    kernel::SegmentId seg =
        kern.createSegmentNow("data", 4096, 64, 1, &mgr);
    runTask(s, kern.touchSegment(proc, seg, 0, kernel::AccessType::Read));
    std::uint64_t free_before = mgr.freePages();
    runTask(s, mgr.reclaimPage(kern, seg, 0));
    EXPECT_EQ(mgr.freePages(), free_before + 1);
    EXPECT_EQ(mgr.writeBacks(), 0u);
    EXPECT_FALSE(kern.segment(seg).findPage(0));
}

TEST_F(GenericTest, DiscardableDirtyPageSkipsWriteBack)
{
    kernel::SegmentId seg =
        kern.createSegmentNow("data", 4096, 64, 1, &mgr);
    runTask(s, kern.touchSegment(proc, seg, 0, kernel::AccessType::Write));
    kern.modifyPageFlagsNow(seg, 0, 1, flag::kDiscardable, 0);
    runTask(s, mgr.reclaimPage(kern, seg, 0));
    EXPECT_EQ(mgr.writeBacks(), 0u);
}

TEST_F(GenericTest, SurrenderReturnsFramesToSpcm)
{
    std::uint64_t free0 = spcm.freeFrames();
    std::uint64_t n = runTask(s, mgr.surrenderFrames(16));
    EXPECT_EQ(n, 16u);
    EXPECT_EQ(mgr.freePages(), 48u);
    EXPECT_EQ(spcm.freeFrames(), free0 + 16);
}

TEST_F(GenericTest, SegmentCloseReclaimsAllPages)
{
    kernel::SegmentId seg =
        kern.createSegmentNow("data", 4096, 64, 1, &mgr);
    for (kernel::PageIndex p = 0; p < 10; ++p) {
        runTask(s,
                kern.touchSegment(proc, seg, p,
                                  kernel::AccessType::Write));
    }
    std::uint64_t free_before = mgr.freePages();
    runTask(s, kern.destroySegment(seg));
    EXPECT_EQ(mgr.freePages(), free_before + 10);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

// ----------------------------------------------------------------------
// DefaultSegmentManager clock
// ----------------------------------------------------------------------

TEST_F(GenericTest, ResetStatsClearsResilienceCountersBetweenRows)
{
    // The sweep runner reuses nothing across rows, but a manager
    // embedded in a long-lived harness is reset at row boundaries:
    // resetStats must clear the failure-path counters (timeouts,
    // failovers, crashes) along with the classic call counts, so the
    // second row observes exactly what the first row did.
    kernel::SegmentId seg =
        kern.createSegmentNow("data", 4096, 64, 1, &mgr);

    // One "row": fault in a fresh page and record failure-path events
    // the way the kernel's resilient delivery would.
    kernel::PageIndex next = 0;
    auto row = [&] {
        runTask(s, kern.touchSegment(proc, seg, next++,
                                     kernel::AccessType::Write));
        mgr.noteTimeout();
        mgr.noteTimeout();
        mgr.noteFailover();
        mgr.noteCrash();
    };

    row();
    EXPECT_EQ(mgr.calls(), 1u);
    EXPECT_EQ(mgr.faultsHandled(), 1u);
    EXPECT_EQ(mgr.faultTimeouts(), 2u);
    EXPECT_EQ(mgr.failovers(), 1u);
    EXPECT_EQ(mgr.crashes(), 1u);

    mgr.resetStats();
    EXPECT_EQ(mgr.calls(), 0u);
    EXPECT_EQ(mgr.faultsHandled(), 0u);
    EXPECT_EQ(mgr.faultTimeouts(), 0u);
    EXPECT_EQ(mgr.failovers(), 0u);
    EXPECT_EQ(mgr.crashes(), 0u);

    // The second row starts from zero and reproduces the first row's
    // counts exactly.
    row();
    EXPECT_EQ(mgr.calls(), 1u);
    EXPECT_EQ(mgr.faultsHandled(), 1u);
    EXPECT_EQ(mgr.faultTimeouts(), 2u);
    EXPECT_EQ(mgr.failovers(), 1u);
    EXPECT_EQ(mgr.crashes(), 1u);
}

class ClockTest : public ::testing::Test
{
  protected:
    ClockTest()
        : kern(s, smallMachine()),
          disk(s, smallMachine().diskLatency,
               smallMachine().diskBandwidthMBps),
          server(s, disk, usec(200)), spcm(kern, std::nullopt),
          ucds(kern, &spcm, server, reg), proc("app", 1)
    {
        ucds.initNow(2048, 256);
    }

    sim::Simulation s;
    kernel::Kernel kern;
    hw::Disk disk;
    uio::FileServer server;
    uio::FileRegistry reg;
    SystemPageCacheManager spcm;
    DefaultSegmentManager ucds;
    kernel::Process proc;
};

TEST_F(ClockTest, UnreferencedPagesGetReclaimed)
{
    kernel::SegmentId heap =
        runTask(s, ucds.createAnonymous("heap", 64, 1));
    for (kernel::PageIndex p = 0; p < 20; ++p) {
        runTask(s,
                kern.touchSegment(proc, heap, p,
                                  kernel::AccessType::Write));
    }
    // First pass: every page was referenced -> sampled, none reclaimed.
    EXPECT_EQ(runTask(s, ucds.clockPass(100)), 0u);
    // Touch only the first five pages again (sampling faults fire).
    for (kernel::PageIndex p = 0; p < 5; ++p) {
        runTask(s,
                kern.touchSegment(proc, heap, p,
                                  kernel::AccessType::Read));
    }
    EXPECT_GT(ucds.samplingFaults(), 0u);
    // Second pass: pages 5..19 were not referenced -> reclaimable.
    std::uint64_t reclaimed = runTask(s, ucds.clockPass(100));
    EXPECT_EQ(reclaimed, 15u);
    EXPECT_TRUE(kern.segment(heap).findPage(0));
    EXPECT_FALSE(kern.segment(heap).findPage(10));
}

TEST_F(ClockTest, SamplingReenablesInBatches)
{
    kernel::SegmentId heap =
        runTask(s, ucds.createAnonymous("heap", 64, 1));
    for (kernel::PageIndex p = 0; p < 16; ++p) {
        runTask(s,
                kern.touchSegment(proc, heap, p,
                                  kernel::AccessType::Write));
    }
    runTask(s, ucds.clockPass(0)); // arms the sampler on all 16 pages
    std::uint64_t sampling_before = ucds.samplingFaults();
    // Touch all 16: with a batch size of 8, only 2 sampling faults.
    for (kernel::PageIndex p = 0; p < 16; ++p) {
        runTask(s,
                kern.touchSegment(proc, heap, p,
                                  kernel::AccessType::Read));
    }
    EXPECT_EQ(ucds.samplingFaults() - sampling_before, 2u);
}

TEST_F(ClockTest, ReclaimWritesDirtyFilePagesBack)
{
    uio::FileId f = server.createFile("db", 64 << 10);
    ucds.preloadFileNow(f);
    kernel::SegmentId seg = reg.segmentOf(f);
    runTask(s, kern.touchSegment(proc, seg, 0,
                                 kernel::AccessType::Write));
    // Age every page, then reclaim them all.
    runTask(s, ucds.clockPass(0));
    std::uint64_t writes_before = disk.writes();
    std::uint64_t reclaimed = runTask(s, ucds.clockPass(1000));
    EXPECT_EQ(reclaimed, 16u);
    EXPECT_EQ(disk.writes(), writes_before + 1); // only page 0 dirty
}

TEST_F(ClockTest, SyncPassWritesDirtyFilePagesWithoutReclaim)
{
    uio::FileId f = server.createFile("db", 64 << 10);
    ucds.preloadFileNow(f);
    kernel::SegmentId seg = reg.segmentOf(f);
    runTask(s, kern.touchSegment(proc, seg, 0,
                                 kernel::AccessType::Write));
    runTask(s, kern.touchSegment(proc, seg, 5,
                                 kernel::AccessType::Write));
    kern.writePageData(seg, 5, 0,
                       std::as_bytes(std::span("flushed", 7)));

    std::uint64_t writes0 = disk.writes();
    std::uint64_t written = runTask(s, ucds.syncPass());
    EXPECT_EQ(written, 2u);
    EXPECT_EQ(disk.writes(), writes0 + 2);
    // Pages stay resident but are clean now.
    EXPECT_TRUE(kern.segment(seg).findPage(0));
    EXPECT_FALSE(kern.segment(seg).findPage(5)->flags & flag::kDirty);
    // The data reached the server.
    char buf[8] = {};
    server.readNow(f, 5 * 4096,
                   std::as_writable_bytes(std::span(buf, 7)));
    EXPECT_STREQ(buf, "flushed");
    // A second pass finds nothing dirty.
    EXPECT_EQ(runTask(s, ucds.syncPass()), 0u);
}

TEST_F(ClockTest, SyncDaemonFlushesPeriodically)
{
    uio::FileId f = server.createFile("log", 64 << 10);
    ucds.preloadFileNow(f);
    kernel::SegmentId seg = reg.segmentOf(f);
    runTask(s, kern.touchSegment(proc, seg, 1,
                                 kernel::AccessType::Write));
    ucds.startSyncDaemon(sim::sec(5));
    s.runUntil(sim::sec(6));
    EXPECT_FALSE(kern.segment(seg).findPage(1)->flags & flag::kDirty);
    ucds.stopSyncDaemon();
    s.runUntil(sim::sec(12));
}

TEST_F(ClockTest, PinnedPagesAreNeverReclaimed)
{
    kernel::SegmentId heap =
        runTask(s, ucds.createAnonymous("heap", 64, 1));
    for (kernel::PageIndex p = 0; p < 4; ++p) {
        runTask(s,
                kern.touchSegment(proc, heap, p,
                                  kernel::AccessType::Write));
    }
    kern.modifyPageFlagsNow(heap, 1, 1, flag::kPinned, 0);
    runTask(s, ucds.clockPass(0));
    runTask(s, ucds.clockPass(1000));
    EXPECT_TRUE(kern.segment(heap).findPage(1));
    EXPECT_FALSE(kern.segment(heap).findPage(2));
}

} // namespace
} // namespace vpp::mgr
