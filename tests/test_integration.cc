/**
 * @file
 * Whole-stack integration tests: the §2.2 swapping protocol, manager
 * self-residency, multiprogramming under memory pressure with the
 * clock and the market, multiple page sizes end to end, and a
 * randomized stress test of the full manager/SPCM/kernel loop.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "apps/stack.h"
#include "appmgr/swap_mgr.h"
#include "core/kernel.h"
#include "inject/inject.h"
#include "sim/random.h"

namespace vpp {
namespace {

using kernel::AccessType;
using kernel::runTask;
using sim::usec;
namespace flag = kernel::flag;

// ----------------------------------------------------------------------
// Swapping protocol (§2.2)
// ----------------------------------------------------------------------

class SwapTest : public ::testing::Test
{
  protected:
    SwapTest() : stack(machineConfig()) {}

    static hw::MachineConfig
    machineConfig()
    {
        hw::MachineConfig m = hw::decstation5000_200();
        m.memoryBytes = 32 << 20;
        return m;
    }

    apps::VppStack stack;
};

TEST_F(SwapTest, RoundTripPreservesData)
{
    uio::FileId swap = stack.server.createFile("swap", 0);
    appmgr::SwappableAppManager mgr(stack.kern, &stack.spcm, 1,
                                    stack.server, swap, &stack.ucds);
    mgr.initNow(4096, 256);
    kernel::Process proc("app", 1);

    kernel::SegmentId data =
        runTask(stack.sim, mgr.createAppSegment("data", 64));
    for (kernel::PageIndex p = 0; p < 32; ++p) {
        runTask(stack.sim, stack.kern.touchSegment(
                               proc, data, p, AccessType::Write));
    }
    std::string payload = "survives the swap";
    stack.kern.writePageData(
        data, 7, 100,
        std::as_bytes(std::span(payload.data(), payload.size())));

    std::uint64_t spcm_free0 = stack.spcm.freeFrames();
    runTask(stack.sim, mgr.swapOut(proc));
    EXPECT_TRUE(mgr.swappedOut());
    EXPECT_EQ(stack.kern.segment(data).presentPages(), 0u);
    EXPECT_GT(stack.spcm.freeFrames(), spcm_free0); // frames returned
    EXPECT_GT(mgr.pagesSwapped(), 0u);
    EXPECT_GT(stack.disk.writes(), 0u); // dirty pages hit the disk

    runTask(stack.sim, mgr.swapIn(proc, /*eager=*/false));
    EXPECT_FALSE(mgr.swappedOut());

    // Lazy reload: the touch faults and restores from swap.
    runTask(stack.sim, stack.kern.touchSegment(proc, data, 7,
                                               AccessType::Read));
    char buf[32] = {};
    stack.kern.readPageData(
        data, 7, 100,
        std::as_writable_bytes(std::span(buf, payload.size())));
    EXPECT_EQ(std::string(buf), payload);
    EXPECT_GT(mgr.pagesRestored(), 0u);

    std::string why;
    EXPECT_TRUE(stack.kern.checkFrameInvariant(&why)) << why;
}

TEST_F(SwapTest, EagerSwapInRestoresEverything)
{
    uio::FileId swap = stack.server.createFile("swap", 0);
    appmgr::SwappableAppManager mgr(stack.kern, &stack.spcm, 1,
                                    stack.server, swap, &stack.ucds);
    mgr.initNow(4096, 256);
    kernel::Process proc("app", 1);
    kernel::SegmentId data =
        runTask(stack.sim, mgr.createAppSegment("data", 16));
    for (kernel::PageIndex p = 0; p < 16; ++p) {
        runTask(stack.sim, stack.kern.touchSegment(
                               proc, data, p, AccessType::Write));
    }
    runTask(stack.sim, mgr.swapOut(proc));
    runTask(stack.sim, mgr.swapIn(proc, /*eager=*/true));
    EXPECT_EQ(mgr.pagesRestored(), 16u);
    EXPECT_EQ(stack.kern.segment(data).presentPages(), 16u);
}

TEST_F(SwapTest, SelfManagementProtocolPinsManagerPages)
{
    uio::FileId swap = stack.server.createFile("swap", 0);
    appmgr::SwappableAppManager mgr(stack.kern, &stack.spcm, 1,
                                    stack.server, swap, &stack.ucds);
    mgr.initNow(4096, 256);
    kernel::Process proc("app", 1);

    // The manager's own code+data: a segment initially under the
    // default manager.
    kernel::SegmentId self = runTask(
        stack.sim, stack.ucds.createAnonymous("mgr-self", 8, 1));
    int attempts = runTask(
        stack.sim, mgr.assumeSelfManagement(proc, self, 8));
    EXPECT_GE(attempts, 1);
    EXPECT_EQ(stack.kern.segment(self).manager(), &mgr);
    for (kernel::PageIndex p = 0; p < 8; ++p) {
        const kernel::PageEntry *e =
            stack.kern.segment(self).findPage(p);
        ASSERT_NE(e, nullptr);
        EXPECT_TRUE(e->flags & flag::kPinned);
    }

    // After swap-out the self segment belongs to the default manager
    // again, unpinned.
    runTask(stack.sim, mgr.swapOut(proc));
    EXPECT_EQ(stack.kern.segment(self).manager(), &stack.ucds);

    // Resumption re-runs the protocol and re-pins.
    runTask(stack.sim, mgr.swapIn(proc));
    EXPECT_EQ(stack.kern.segment(self).manager(), &mgr);
}

// ----------------------------------------------------------------------
// Nested fault delivery (§2.2: faults on manager data)
// ----------------------------------------------------------------------

namespace {

/**
 * A manager whose fill path reads from a *pageable* lookup table
 * managed by another manager — handling one fault can therefore raise
 * a second, nested fault that the other manager must resolve first
 * (the paper's first option for manager code/data: "managed by
 * another manager, such as the default segment manager").
 */
class NestingManager : public mgr::GenericSegmentManager
{
  public:
    NestingManager(kernel::Kernel &k, mgr::SystemPageCacheManager *spcm,
                   kernel::Process &self, kernel::SegmentId table)
        : GenericSegmentManager(k, "nesting-mgr",
                                hw::ManagerMode::SameProcess, spcm, 1),
          self_(&self), table_(table)
    {}

    std::uint64_t nestedTouches = 0;

  protected:
    sim::Task<>
    fillPage(kernel::Kernel &k, const kernel::Fault &f,
             kernel::PageIndex dst_page,
             kernel::PageIndex free_slot) override
    {
        (void)f;
        (void)free_slot;
        // Consult the lookup table: may fault to the other manager.
        co_await k.touchSegment(*self_, table_, dst_page % 4,
                                kernel::AccessType::Read);
        ++nestedTouches;
    }

  private:
    kernel::Process *self_;
    kernel::SegmentId table_;
};

} // namespace

TEST(NestedFaults, ManagerFaultingOnItsOwnDataIsServiced)
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20;
    apps::VppStack stack(m);
    kernel::Process proc("app", 1);

    // The lookup table lives under the default manager and starts
    // entirely non-resident.
    kernel::SegmentId table = kernel::runTask(
        stack.sim, stack.ucds.createAnonymous("lookup", 4, 1));

    NestingManager nm(stack.kern, &stack.spcm, proc, table);
    nm.initNow(512, 64);
    kernel::SegmentId data =
        stack.kern.createSegmentNow("data", 4096, 16, 1, &nm);

    std::uint64_t ucds_calls0 = stack.ucds.calls();
    for (kernel::PageIndex p = 0; p < 8; ++p) {
        kernel::runTask(stack.sim,
                        stack.kern.touchSegment(
                            proc, data, p, AccessType::Write));
    }
    // All eight primary faults resolved...
    EXPECT_EQ(stack.kern.segment(data).presentPages(), 8u);
    EXPECT_EQ(nm.nestedTouches, 8u);
    // ...and the nested faults went to the default manager (4 table
    // pages, faulted once each).
    EXPECT_EQ(stack.ucds.calls() - ucds_calls0, 4u);
    EXPECT_EQ(stack.kern.segment(table).presentPages(), 4u);

    std::string why;
    EXPECT_TRUE(stack.kern.checkFrameInvariant(&why)) << why;
}

// ----------------------------------------------------------------------
// Multiprogramming: two programs, one memory, clock + market
// ----------------------------------------------------------------------

TEST(Multiprogramming, ClockStealsFromIdleProgramUnderPressure)
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 8 << 20; // 2048 frames, deliberately tight
    apps::StackOptions opts;
    opts.ucdsPoolCapacity = 4096;
    opts.ucdsInitialFrames = 1536;
    apps::VppStack stack(m, opts);
    kernel::Process pa("hog", 1), pb("newcomer", 2);

    kernel::SegmentId hog = runTask(
        stack.sim, stack.ucds.createAnonymous("hog", 1400, 1));
    for (kernel::PageIndex p = 0; p < 1400; ++p) {
        runTask(stack.sim, stack.kern.touchSegment(
                               pa, hog, p, AccessType::Write));
    }

    // Age the hog twice so its pages look cold, then reclaim.
    runTask(stack.sim, stack.ucds.clockPass(0));
    std::uint64_t reclaimed =
        runTask(stack.sim, stack.ucds.clockPass(600));
    EXPECT_EQ(reclaimed, 600u);

    // The newcomer can now fault its working set in.
    kernel::SegmentId fresh = runTask(
        stack.sim, stack.ucds.createAnonymous("fresh", 512, 2));
    for (kernel::PageIndex p = 0; p < 512; ++p) {
        runTask(stack.sim, stack.kern.touchSegment(
                               pb, fresh, p, AccessType::Write));
    }
    EXPECT_EQ(stack.kern.segment(fresh).presentPages(), 512u);

    std::string why;
    EXPECT_TRUE(stack.kern.checkFrameInvariant(&why)) << why;
}

TEST(Multiprogramming, CrossUserReallocationZeroesFrames)
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 8 << 20;
    apps::VppStack stack(m);
    kernel::Process pa("alice", 1), pb("bob", 2);

    kernel::SegmentId sa = runTask(
        stack.sim, stack.ucds.createAnonymous("alice-heap", 8, 1));
    runTask(stack.sim,
            stack.kern.touchSegment(pa, sa, 0, AccessType::Write));
    stack.kern.writePageData(sa, 0, 0,
                             std::as_bytes(std::span("secret", 6)));
    // Alice's page is reclaimed and her segment destroyed.
    runTask(stack.sim, stack.kern.destroySegment(sa));
    std::uint64_t zeroes0 = stack.kern.stats().zeroFills;

    // Bob's manager hands him frames; any frame last used by alice
    // must be zeroed somewhere along the way before bob reads it.
    kernel::SegmentId sb = runTask(
        stack.sim, stack.ucds.createAnonymous("bob-heap", 64, 2));
    for (kernel::PageIndex p = 0; p < 64; ++p) {
        runTask(stack.sim,
                stack.kern.touchSegment(pb, sb, p, AccessType::Read));
        char buf[8] = {};
        stack.kern.readPageData(
            sb, p, 0, std::as_writable_bytes(std::span(buf, 6)));
        EXPECT_EQ(std::memcmp(buf, "secret", 6) == 0, false);
    }
    (void)zeroes0;
}

// ----------------------------------------------------------------------
// Multiple page sizes end to end
// ----------------------------------------------------------------------

TEST(MultiPageSize, LargePageSegmentBackedBySmallFramePool)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20;
    kernel::Kernel kern(s, m);

    // A 16 KB-page segment (Alpha-style): each page takes 4 aligned
    // contiguous frames from the physical segment.
    kernel::SegmentId big =
        kern.createSegmentNow("big-pages", 16384, 64, 1);
    for (int i = 0; i < 8; ++i) {
        kern.migratePagesNow(kernel::kPhysSegment, big,
                             static_cast<kernel::PageIndex>(i) * 4, i,
                             4, flag::kProtMask, 0);
    }
    EXPECT_EQ(kern.segment(big).presentPages(), 8u);

    // Data written across a 16 KB page round-trips through the
    // underlying 4 KB frames.
    std::vector<std::byte> blob(16384);
    for (std::size_t i = 0; i < blob.size(); ++i)
        blob[i] = static_cast<std::byte>(i * 7 % 253);
    kern.writePageData(big, 3, 0, blob);
    std::vector<std::byte> back(16384);
    kern.readPageData(big, 3, 0, back);
    EXPECT_EQ(std::memcmp(back.data(), blob.data(), blob.size()), 0);

    // Split one large page back into 4 KB pages; data follows frames.
    kernel::SegmentId small =
        kern.createSegmentNow("small", 4096, 256, 1);
    EXPECT_EQ(kern.migratePagesNow(big, small, 3, 0, 1, 0, 0), 4u);
    std::vector<std::byte> quarter(4096);
    kern.readPageData(small, 1, 0, quarter);
    EXPECT_EQ(std::memcmp(quarter.data(), blob.data() + 4096, 4096),
              0);

    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

// ----------------------------------------------------------------------
// Randomized whole-stack stress (property test)
// ----------------------------------------------------------------------

class StackStress : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(StackStress, InvariantsSurviveChaoticWorkload)
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20;
    apps::StackOptions opts;
    opts.ucdsPoolCapacity = 8192;
    opts.ucdsInitialFrames = 1024;
    apps::VppStack stack(m, opts);
    sim::Random rng(GetParam());
    kernel::Process proc("chaos", 1);

    std::vector<kernel::SegmentId> segs;
    std::vector<uio::FileId> files;
    for (int step = 0; step < 400; ++step) {
        double dice = rng.uniform();
        try {
            if (dice < 0.15 && segs.size() < 12) {
                segs.push_back(runTask(
                    stack.sim,
                    stack.ucds.createAnonymous(
                        "anon" + std::to_string(step),
                        16 + rng.below(64), 1)));
            } else if (dice < 0.25 && files.size() < 6) {
                uio::FileId f = stack.server.createFile(
                    "f" + std::to_string(step),
                    4096 * (1 + rng.below(32)));
                runTask(stack.sim, stack.ucds.openFile(f));
                files.push_back(f);
            } else if (dice < 0.65 && !segs.empty()) {
                kernel::SegmentId seg = segs[rng.below(segs.size())];
                kernel::PageIndex page = rng.below(
                    stack.kern.segment(seg).pageLimit());
                runTask(stack.sim,
                        stack.kern.touchSegment(
                            proc, seg, page,
                            rng.chance(0.5) ? AccessType::Write
                                            : AccessType::Read));
            } else if (dice < 0.80 && !files.empty()) {
                uio::FileId f = files[rng.below(files.size())];
                std::vector<std::byte> buf(1 + rng.below(9000));
                std::uint64_t off = rng.below(32) * 1024;
                if (rng.chance(0.5)) {
                    runTask(stack.sim,
                            stack.io.read(proc, f, off, buf));
                } else {
                    runTask(stack.sim,
                            stack.io.write(proc, f, off, buf));
                }
            } else if (dice < 0.88) {
                runTask(stack.sim,
                        stack.ucds.clockPass(rng.below(64)));
            } else if (dice < 0.94 && !segs.empty()) {
                std::size_t i = rng.below(segs.size());
                runTask(stack.sim,
                        stack.kern.destroySegment(segs[i]));
                segs.erase(segs.begin() + i);
            } else if (!files.empty()) {
                std::size_t i = rng.below(files.size());
                runTask(stack.sim, stack.ucds.closeFile(files[i]));
                files.erase(files.begin() + i);
            }
        } catch (const kernel::KernelError &) {
            // Invalid random operations are fine; state must stay
            // consistent regardless.
        }
        if (step % 50 == 0) {
            std::string why;
            ASSERT_TRUE(stack.kern.checkFrameInvariant(&why))
                << "step " << step << ": " << why;
        }
    }
    std::string why;
    ASSERT_TRUE(stack.kern.checkFrameInvariant(&why)) << why;
    // The workload must have exercised real activity.
    EXPECT_GT(stack.kern.stats().faults, 100u);
    EXPECT_GT(stack.kern.stats().pagesMigrated, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackStress,
                         ::testing::Values(11, 23, 47, 89, 179));

// ----------------------------------------------------------------------
// Fault injection end to end
// ----------------------------------------------------------------------

TEST(InjectionE2E, WorkloadSurvivesFaultyManagerAndDisk)
{
    // The paper's safety claim, end to end: with an application
    // manager that stalls, crashes and lies, and a disk that throws
    // transient errors, every access still completes — redelivery and
    // failover keep the machine running, and the frame invariant
    // holds throughout.
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 32 << 20;
    apps::VppStack stack(m);

    mgr::DefaultSegmentManager app_mgr(stack.kern, &stack.spcm,
                                       stack.server, stack.registry);
    app_mgr.initNow(1024, 128);
    stack.kern.setDefaultManager(&stack.ucds);
    kernel::ResiliencePolicy pol;
    pol.enabled = true;
    pol.faultDeadline = sim::msec(120);
    pol.maxRedeliveries = 2;
    pol.retryBackoff = sim::msec(1);
    stack.kern.setResiliencePolicy(pol);

    inject::Config ic;
    ic.enabled = true;
    ic.seed = 2026;
    ic.disk.readErrorProb = 0.02;
    ic.disk.writeErrorProb = 0.02;
    ic.disk.latencySpikeProb = 0.02;
    ic.manager.stallProb = 0.20;
    ic.manager.crashProb = 0.20;
    ic.manager.lieProb = 0.10;
    inject::Engine eng(ic);
    stack.disk.setInjector(&eng);
    stack.kern.setInjector(&eng);
    stack.spcm.setInjector(&eng);

    uio::FileId f = stack.server.createFile("data", 256 * 4096);
    kernel::SegmentId seg =
        runTask(stack.sim, app_mgr.openFile(f));
    kernel::Process proc("app", 1);
    sim::Random rng(7);
    int completed = 0;
    for (int i = 0; i < 400; ++i) {
        kernel::PageIndex p =
            static_cast<kernel::PageIndex>(rng.below(256));
        AccessType a =
            rng.chance(0.25) ? AccessType::Write : AccessType::Read;
        runTask(stack.sim,
                stack.kern.touchSegment(proc, seg, p, a));
        ++completed;
        if (i % 100 == 99) {
            std::string why;
            ASSERT_TRUE(stack.kern.checkFrameInvariant(&why))
                << "access " << i << ": " << why;
        }
    }
    EXPECT_EQ(completed, 400);
    const auto &st = stack.kern.stats();
    EXPECT_GT(st.injectedStalls + st.injectedLies + st.managerCrashes,
              0u);
    EXPECT_GT(st.faultRedeliveries, 0u);
    std::string why;
    EXPECT_TRUE(stack.kern.checkFrameInvariant(&why)) << why;
}

} // namespace
} // namespace vpp
