/**
 * @file
 * Differential tests for the shared-kernel per-CPU resolve caches:
 * every CpuResolveCache hit is checked against the cache-free
 * binding-chain walk (resolveUncached) across the mutation classes
 * that must invalidate it — MigratePages, bind/unbind, flag edits,
 * segment teardown and an injected crash-failover sweep — plus the
 * chain-locality property (mutating an unrelated segment must NOT
 * invalidate), the snapshot-epoch publish protocol, the per-CPU fault
 * in-queues, and byte-identity of the shared-kernel study across
 * worker counts. Suite names (PerCpu*, SharedKernel*) are part of the
 * CI tsan regex.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/kernel.h"
#include "db/shared_kernel.h"
#include "inject/inject.h"
#include "managers/generic.h"
#include "managers/spcm.h"
#include "sim/random.h"
#include "sim/shard.h"

namespace vpp::kernel {
namespace {

using sim::msec;
using sim::usec;

hw::MachineConfig
smallMachine()
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20; // 4096 frames
    return m;
}

/** A cached per-CPU hit must be indistinguishable from the oracle. */
void
expectMatchesOracle(const CpuResolution &c, const Resolution &o,
                    SegmentId s, PageIndex p)
{
    EXPECT_EQ(c.present, o.present) << "seg " << s << " page " << p;
    EXPECT_EQ(c.seg, o.seg) << "seg " << s << " page " << p;
    EXPECT_EQ(c.page, o.page) << "seg " << s << " page " << p;
    EXPECT_EQ(c.regionProt, o.regionProt)
        << "seg " << s << " page " << p;
    EXPECT_EQ(c.viaCow, o.viaCow) << "seg " << s << " page " << p;
    EXPECT_EQ(c.cowSeg, o.cowSeg) << "seg " << s << " page " << p;
    EXPECT_EQ(c.cowPage, o.cowPage) << "seg " << s << " page " << p;
    ASSERT_TRUE(o.entry != nullptr) << "seg " << s << " page " << p;
    EXPECT_EQ(c.frame, o.entry->frame) << "seg " << s << " page " << p;
    EXPECT_EQ(c.flags, o.entry->flags) << "seg " << s << " page " << p;
}

/**
 * Differential step: whatever CPU @p cpu's cache currently answers
 * for (s, p) must agree with the oracle; then refill and check the
 * steady-state answer. Valid in live mode (strict invalidation).
 */
void
diffProbe(Kernel &k, unsigned cpu, SegmentId s, PageIndex p)
{
    Resolution oracle = k.resolveUncached(s, p);
    if (const CpuResolution *hit = k.cpuResolve(cpu, s, p))
        expectMatchesOracle(*hit, oracle, s, p);
    CpuResolution fresh = k.resolveForCpu(s, p);
    k.cpuStore(cpu, fresh);
    const CpuResolution *again = k.cpuResolve(cpu, s, p);
    if (oracle.present && fresh.chainLen != 0) {
        ASSERT_NE(again, nullptr) << "seg " << s << " page " << p;
        expectMatchesOracle(*again, oracle, s, p);
    } else {
        // Non-present (or uncacheably deep) resolutions are never
        // cached: the probe must keep missing.
        EXPECT_EQ(again, nullptr) << "seg " << s << " page " << p;
    }
}

/** The file <- cow - data <- va chain used by the resolve() suite. */
struct ChainRig
{
    explicit ChainRig(bool snapshot = false) : kern(s, smallMachine())
    {
        file = kern.createSegmentNow("file", 4096, 256, 0);
        kern.migratePagesNow(kPhysSegment, file, 0, 0, 256, 0, 0);
        data = kern.createSegmentNow("data", 4096, 256, 0);
        kern.bindRegionNow(data, 0, 256, file, 0, flag::kProtMask,
                           true);
        va = kern.createSegmentNow("va", 4096, 256, 0);
        kern.bindRegionNow(va, 0, 256, data, 0, flag::kProtMask);
        kern.configureCpus(2, snapshot);
    }

    void
    warm(unsigned cpu)
    {
        for (PageIndex p = 0; p < 256; ++p)
            kern.cpuStore(cpu, kern.resolveForCpu(va, p));
    }

    sim::Simulation s;
    Kernel kern;
    SegmentId file = 0, data = 0, va = 0;
};

TEST(PerCpuCache, HitsAreCountedAndAgreeWithOracle)
{
    ChainRig r;
    EXPECT_EQ(r.kern.cpuCount(), 2u);
    EXPECT_EQ(r.kern.cpuResolve(0, r.va, 7), nullptr); // cold miss
    EXPECT_EQ(r.kern.cpuMisses(0), 1u);
    r.kern.cpuStore(0, r.kern.resolveForCpu(r.va, 7));
    const CpuResolution *hit = r.kern.cpuResolve(0, r.va, 7);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(r.kern.cpuHits(0), 1u);
    expectMatchesOracle(*hit, r.kern.resolveUncached(r.va, 7), r.va,
                        7);
    // CPU 1's cache is its own: still cold.
    EXPECT_EQ(r.kern.cpuResolve(1, r.va, 7), nullptr);
    EXPECT_EQ(r.kern.cpuHits(1), 0u);
}

TEST(PerCpuCache, DifferentialAfterMigratePages)
{
    ChainRig r;
    r.warm(0);
    SegmentId spare = r.kern.createSegmentNow("spare", 4096, 256, 0);
    // Move frames out of the bound file: cached "present at file"
    // entries walked through it and must die with its epoch.
    r.kern.migratePagesNow(r.file, spare, 0, 0, 64, 0, 0);
    for (PageIndex p = 0; p < 64; ++p)
        EXPECT_EQ(r.kern.cpuResolve(0, r.va, p), nullptr)
            << "page " << p << " survived the migrate";
    for (PageIndex p = 0; p < 256; ++p)
        diffProbe(r.kern, 0, r.va, p);
    // And back again.
    r.kern.migratePagesNow(spare, r.file, 0, 0, 64, 0, 0);
    for (PageIndex p = 0; p < 256; ++p)
        diffProbe(r.kern, 0, r.va, p);
}

TEST(PerCpuCache, DifferentialAfterUnbind)
{
    ChainRig r;
    r.warm(0);
    r.kern.unbindRegionNow(r.va, 0);
    for (PageIndex p = 0; p < 256; ++p) {
        EXPECT_EQ(r.kern.cpuResolve(0, r.va, p), nullptr)
            << "page " << p << " survived the unbind";
        diffProbe(r.kern, 0, r.va, p);
    }
    r.kern.bindRegionNow(r.va, 16, 64, r.data, 32, flag::kProtMask);
    for (PageIndex p = 0; p < 256; ++p)
        diffProbe(r.kern, 0, r.va, p);
}

TEST(PerCpuCache, DifferentialAfterFlagEdit)
{
    ChainRig r;
    r.warm(0);
    // Revoke write on a file page: the cached flags are stale.
    r.kern.modifyPageFlagsNow(r.file, 9, 1, 0, flag::kWritable);
    EXPECT_EQ(r.kern.cpuResolve(0, r.va, 9), nullptr);
    diffProbe(r.kern, 0, r.va, 9);
    const CpuResolution *hit = r.kern.cpuResolve(0, r.va, 9);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->flags & flag::kWritable, 0u);
}

TEST(PerCpuCache, DifferentialAfterSegmentTeardown)
{
    ChainRig r;
    r.warm(0);
    runTask(r.s, r.kern.destroySegment(r.va));
    // The dead segment's epoch slot outlives it: any entry chained
    // through va is invalid, and probing the dead id itself misses
    // rather than touching freed state.
    EXPECT_EQ(r.kern.cpuResolve(0, r.va, 0), nullptr);

    for (PageIndex p = 0; p < 256; ++p)
        r.kern.cpuStore(0, r.kern.resolveForCpu(r.data, p));
    runTask(r.s, r.kern.destroySegment(r.data));
    EXPECT_EQ(r.kern.cpuResolve(0, r.data, 0), nullptr);

    // file's frames survive; a fresh segment binding to it must get
    // correct translations, not the dead segments' cached ones.
    SegmentId va2 = r.kern.createSegmentNow("va2", 4096, 256, 0);
    r.kern.bindRegionNow(va2, 0, 256, r.file, 0, flag::kProtMask);
    for (PageIndex p = 0; p < 256; ++p)
        diffProbe(r.kern, 0, va2, p);
}

TEST(PerCpuCache, ChainLocalityUnrelatedMutationKeepsEntries)
{
    // The point of per-segment epochs over a global epoch: faulting
    // into one segment must not flush every CPU's cache of another.
    // A handful of well-spread pages keeps the test clear of the
    // finite cache's replacement behaviour.
    ChainRig r;
    const std::vector<PageIndex> pages = {3, 50, 100, 150, 200};
    for (PageIndex p : pages)
        r.kern.cpuStore(0, r.kern.resolveForCpu(r.va, p));

    SegmentId other = r.kern.createSegmentNow("other", 4096, 64, 0);
    // Phys pages 0-255 went to the rig's file segment; source the
    // unrelated segment from the next run of frames.
    r.kern.migratePagesNow(kPhysSegment, other, 256, 0, 64, 0, 0);
    r.kern.modifyPageFlagsNow(other, 3, 1, 0, flag::kWritable);
    std::uint64_t hitsBefore = r.kern.cpuHits(0);
    for (PageIndex p : pages) {
        const CpuResolution *hit = r.kern.cpuResolve(0, r.va, p);
        ASSERT_NE(hit, nullptr) << "page " << p
                                << " flushed by unrelated mutation";
        expectMatchesOracle(*hit, r.kern.resolveUncached(r.va, p),
                            r.va, p);
    }
    EXPECT_EQ(r.kern.cpuHits(0), hitsBefore + pages.size());

    // Contrast: a mutation on a chain segment invalidates them all.
    r.kern.modifyPageFlagsNow(r.file, 3, 1, flag::kWritable, 0);
    for (PageIndex p : pages)
        EXPECT_EQ(r.kern.cpuResolve(0, r.va, p), nullptr)
            << "page " << p << " survived a chain mutation";
}

TEST(PerCpuCache, DeepChainsAreUncacheable)
{
    sim::Simulation s;
    Kernel kern(s, smallMachine());
    kern.configureCpus(1, false);
    // A 5-segment chain (bottom + 4 binding hops) exceeds
    // kResolveChainMax: resolveForCpu must refuse to package it.
    SegmentId bottom = kern.createSegmentNow("bottom", 4096, 16, 0);
    kern.migratePagesNow(kPhysSegment, bottom, 0, 0, 16, 0, 0);
    SegmentId prev = bottom;
    std::vector<SegmentId> hops;
    for (int i = 0; i < 4; ++i) {
        SegmentId hop = kern.createSegmentNow(
            "hop" + std::to_string(i), 4096, 16, 0);
        kern.bindRegionNow(hop, 0, 16, prev, 0, flag::kProtMask);
        hops.push_back(hop);
        prev = hop;
    }
    // Chain from the top: hop3 -> hop2 -> hop1 -> hop0 -> bottom.
    ASSERT_TRUE(kern.resolveUncached(prev, 3).present);
    CpuResolution deep = kern.resolveForCpu(prev, 3);
    EXPECT_EQ(deep.chainLen, 0u);
    kern.cpuStore(0, deep); // must be ignored
    EXPECT_EQ(kern.cpuResolve(0, prev, 3), nullptr);
    // One level down fits (4 segments) and caches normally.
    CpuResolution ok = kern.resolveForCpu(hops[2], 3);
    EXPECT_EQ(ok.chainLen, 4u);
    kern.cpuStore(0, ok);
    EXPECT_NE(kern.cpuResolve(0, hops[2], 3), nullptr);
}

TEST(PerCpuCache, SnapshotModeStaleUntilPublish)
{
    ChainRig r(/*snapshot=*/true);
    r.kern.publishCpuEpochs();
    r.kern.cpuStore(0, r.kern.resolveForCpu(r.va, 5));
    ASSERT_NE(r.kern.cpuResolve(0, r.va, 5), nullptr);

    // Mutate the chain: live epochs move, the snapshot does not, so
    // the stale entry keeps answering until the next publish — the
    // bounded staleness remote shards see between barriers.
    SegmentId spare = r.kern.createSegmentNow("spare", 4096, 16, 0);
    r.kern.migratePagesNow(r.file, spare, 5, 5, 1, 0, 0);
    EXPECT_NE(r.kern.cpuResolve(0, r.va, 5), nullptr);

    r.kern.publishCpuEpochs();
    EXPECT_EQ(r.kern.cpuResolve(0, r.va, 5), nullptr);
}

TEST(PerCpuCache, SnapshotModeFreshFillConservativeUntilPublish)
{
    ChainRig r(/*snapshot=*/true);
    r.kern.publishCpuEpochs();
    // Mutate first, then fill: the fill records live epoch sums ahead
    // of the snapshot, so the entry stays conservatively invalid...
    SegmentId spare = r.kern.createSegmentNow("spare", 4096, 16, 0);
    r.kern.migratePagesNow(r.file, spare, 7, 7, 1, 0, 0);
    r.kern.migratePagesNow(spare, r.file, 7, 7, 1, 0, 0);
    r.kern.cpuStore(0, r.kern.resolveForCpu(r.va, 7));
    EXPECT_EQ(r.kern.cpuResolve(0, r.va, 7), nullptr);
    // ...until the barrier publish catches the snapshot up.
    r.kern.publishCpuEpochs();
    const CpuResolution *hit = r.kern.cpuResolve(0, r.va, 7);
    ASSERT_NE(hit, nullptr);
    expectMatchesOracle(*hit, r.kern.resolveUncached(r.va, 7), r.va,
                        7);
}

TEST(PerCpuCache, RandomizedDifferentialStress)
{
    ChainRig r;
    sim::Random rng(1234);
    SegmentId spare = r.kern.createSegmentNow("spare", 4096, 256, 0);
    bool bound = true;
    for (int round = 0; round < 200; ++round) {
        switch (rng.below(4)) {
        case 0: {
            PageIndex at = rng.below(250);
            std::uint64_t n = 1 + rng.below(4);
            try {
                r.kern.migratePagesNow(r.file, spare, at, at, n, 0, 0);
            } catch (const KernelError &) {
            }
            break;
        }
        case 1: {
            PageIndex at = rng.below(250);
            std::uint64_t n = 1 + rng.below(4);
            try {
                r.kern.migratePagesNow(spare, r.file, at, at, n, 0, 0);
            } catch (const KernelError &) {
            }
            break;
        }
        case 2:
            if (bound) {
                r.kern.unbindRegionNow(r.va, 0);
            } else {
                r.kern.bindRegionNow(r.va, 0, 256, r.data, 0,
                                     flag::kProtMask);
            }
            bound = !bound;
            break;
        case 3: {
            PageIndex at = rng.below(256);
            try {
                r.kern.modifyPageFlagsNow(r.file, at, 1, 0,
                                          flag::kWritable);
            } catch (const KernelError &) {
            }
            break;
        }
        }
        // Both CPUs probe independently; every answer must match the
        // oracle at its own probe instant.
        for (int probe = 0; probe < 16; ++probe) {
            unsigned cpu = static_cast<unsigned>(rng.below(2));
            PageIndex p = rng.below(256);
            diffProbe(r.kern, cpu, r.va, p);
            diffProbe(r.kern, cpu, r.file, p);
        }
    }
}

TEST(PerCpuCache, DifferentialAcrossCrashFailoverSweep)
{
    // Failover reassigns the segment's manager and unilaterally
    // reclaims frames mid-run; per-CPU entries must track it.
    sim::Simulation s;
    Kernel kern(s, smallMachine());
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager flaky(
        kern, "flaky", hw::ManagerMode::SameProcess, &spcm, 1);
    mgr::GenericSegmentManager fallback(
        kern, "fallback", hw::ManagerMode::SameProcess, &spcm,
        kSystemUser);
    flaky.initNow(128, 64);
    fallback.initNow(128, 64);
    SegmentId seg = kern.createSegmentNow("app", 4096, 64, 1, &flaky);
    Process proc("p", 1);
    kern.setDefaultManager(&fallback);
    ResiliencePolicy pol;
    pol.enabled = true;
    pol.faultDeadline = msec(50);
    pol.maxRedeliveries = 1;
    pol.retryBackoff = usec(100);
    pol.failover = true;
    kern.setResiliencePolicy(pol);
    kern.configureCpus(1, false);

    for (PageIndex p = 0; p < 4; ++p)
        runTask(s, kern.touchSegment(proc, seg, p, AccessType::Read));
    for (PageIndex p = 0; p < 64; ++p)
        diffProbe(kern, 0, seg, p);

    inject::Config c;
    c.enabled = true;
    c.seed = 3;
    c.manager.crashProb = 1.0;
    inject::Engine eng(c);
    kern.setInjector(&eng);

    runTask(s, kern.touchSegment(proc, seg, 10, AccessType::Read));
    EXPECT_EQ(kern.stats().failovers, 1u);
    EXPECT_EQ(kern.segment(seg).manager(), &fallback);
    for (PageIndex p = 0; p < 64; ++p)
        diffProbe(kern, 0, seg, p);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

// ----------------------------------------------------------------------
// Per-CPU fault in-queues
// ----------------------------------------------------------------------

TEST(PerCpuFaultQueue, SameInstantTouchesShareOneBatch)
{
    hw::MachineConfig m = smallMachine();
    m.faultCoalescing = true;
    sim::Simulation s;
    Kernel kern(s, m);
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(
        kern, "m", hw::ManagerMode::SameProcess, &spcm, 1);
    manager.initNow(256, 128);
    SegmentId seg = kern.createSegmentNow("heap", 4096, 256, 1,
                                          &manager);
    kern.configureCpus(8, false);
    std::vector<std::unique_ptr<Process>> procs;
    std::vector<sim::Task<>> touches;
    for (unsigned c = 0; c < 8; ++c) {
        procs.push_back(std::make_unique<Process>(
            "cpu" + std::to_string(c), 1));
        touches.push_back(kern.touchOnCpu(
            c, *procs[c], seg, c, AccessType::Write));
    }
    runTask(s, sim::joinAll(s, std::move(touches)));

    const auto &st = kern.stats();
    EXPECT_EQ(st.cpuTouchesQueued, 8u);
    EXPECT_GE(st.cpuDrains, 1u);
    // The drain feeds the coalescing machinery: 8 same-instant CPU
    // faults reach the manager as one batch.
    EXPECT_EQ(st.faultBatches, 1u);
    EXPECT_EQ(st.faultsCoalesced, 8u);
    EXPECT_EQ(manager.calls(), 1u);
    for (PageIndex p = 0; p < 8; ++p)
        EXPECT_TRUE(kern.segment(seg).findPage(p) != nullptr);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST(PerCpuFaultQueue, UnknownCpuThrows)
{
    sim::Simulation s;
    Kernel kern(s, smallMachine());
    kern.configureCpus(2, false);
    SegmentId seg = kern.createSegmentNow("seg", 4096, 16, 1);
    Process proc("p", 1);
    EXPECT_THROW(
        runTask(s, kern.touchOnCpu(7, proc, seg, 0,
                                   AccessType::Read)),
        KernelError);
}

// ----------------------------------------------------------------------
// Shared-kernel study: determinism and worker clamping
// ----------------------------------------------------------------------

db::SharedKernelParams
tinyStudy(unsigned workers)
{
    db::SharedKernelParams p;
    p.shards = 2;
    p.cpusPerShard = 2;
    p.relations = 4;
    p.pagesPerRelation = 64;
    p.hotPages = 32;
    p.durationSec = 0.05;
    p.workers = workers;
    return p;
}

void
expectSameResult(const db::SharedKernelResult &a,
                 const db::SharedKernelResult &b)
{
    EXPECT_EQ(a.txns, b.txns);
    EXPECT_EQ(a.touches, b.touches);
    EXPECT_EQ(a.probeHits, b.probeHits);
    EXPECT_EQ(a.probeMisses, b.probeMisses);
    EXPECT_EQ(a.localHits, b.localHits);
    EXPECT_EQ(a.kernelTrips, b.kernelTrips);
    EXPECT_EQ(a.crossRpcs, b.crossRpcs);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.faultBatches, b.faultBatches);
    EXPECT_EQ(a.faultsCoalesced, b.faultsCoalesced);
    EXPECT_EQ(a.cpuTouchesQueued, b.cpuTouchesQueued);
    EXPECT_EQ(a.pagesMigrated, b.pagesMigrated);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.crossEvents, b.crossEvents);
    EXPECT_DOUBLE_EQ(a.avgMs, b.avgMs);
    EXPECT_DOUBLE_EQ(a.p99Ms, b.p99Ms);
    EXPECT_DOUBLE_EQ(a.worstMs, b.worstMs);
    EXPECT_DOUBLE_EQ(a.tpsAchieved, b.tpsAchieved);
    EXPECT_DOUBLE_EQ(a.hitRate, b.hitRate);
    EXPECT_DOUBLE_EQ(a.cpuUtilization, b.cpuUtilization);
}

TEST(SharedKernelDeterminism, IdenticalAcrossWorkerCounts)
{
    db::SharedKernelResult w1 = db::runSharedKernelStudy(tinyStudy(1));
    db::SharedKernelResult w2 = db::runSharedKernelStudy(tinyStudy(2));
    expectSameResult(w1, w2);
    // The run did real work through both paths.
    EXPECT_GT(w1.txns, 0u);
    EXPECT_GT(w1.localHits, 0u);
    EXPECT_GT(w1.crossRpcs, 0u);
    EXPECT_EQ(w1.touches, w1.localHits + w1.kernelTrips);
    EXPECT_EQ(w1.crossEvents, 2 * w1.crossRpcs);
}

TEST(SharedKernelClamp, ExtraWorkersWarnOnStderrAndClamp)
{
    testing::internal::CaptureStderr();
    sim::ShardedSimulation engine(2, usec(50), 8);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(engine.workers(), 2u);
    EXPECT_EQ(engine.clampedWorkerRequests(), 1u);
    EXPECT_NE(err.find("clamping 8 workers to the 2-shard"),
              std::string::npos)
        << "stderr was: " << err;

    // In-range requests stay silent.
    testing::internal::CaptureStderr();
    sim::ShardedSimulation quiet(4, usec(50), 4);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    EXPECT_EQ(quiet.clampedWorkerRequests(), 0u);
}

} // namespace
} // namespace vpp::kernel
