/**
 * @file
 * Tests for the replacement-policy subsystem (src/policy): per-policy
 * mechanics, the Belady offline optimum against a hand-computed
 * trace, the PolicyCache demand-paging harness, and a differential
 * test pinning the Clock policy behind the interface to the legacy
 * hard-wired DefaultSegmentManager::clockPass, step for step.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "apps/policy_study.h"
#include "apps/refgen.h"
#include "core/kernel.h"
#include "managers/default_mgr.h"
#include "managers/spcm.h"
#include "policy/belady.h"
#include "policy/cache.h"
#include "policy/clock.h"
#include "policy/slru.h"
#include "policy/two_q.h"
#include "policy/wsclock.h"
#include "uio/block_io.h"
#include "uio/file_server.h"

namespace vpp {
namespace {

using kernel::runTask;
using policy::Kind;
using policy::makePageId;
using policy::PageId;
using policy::PolicyParams;
using sim::usec;
namespace flag = kernel::flag;

// ----------------------------------------------------------------------
// Kind registry
// ----------------------------------------------------------------------

TEST(PolicyKind, NamesRoundTripThroughParse)
{
    for (Kind k : policy::kAllKinds) {
        auto parsed = policy::parseKind(policy::kindName(k));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, k);
    }
    EXPECT_FALSE(policy::parseKind("bogus").has_value());
    EXPECT_FALSE(policy::parseKind("").has_value());
}

TEST(PolicyKind, FactoryBuildsEveryOnlineKind)
{
    PolicyParams pp;
    pp.capacityHint = 64;
    for (Kind k : {Kind::Clock, Kind::Slru, Kind::TwoQ, Kind::WsClock}) {
        auto p = policy::make(k, pp);
        ASSERT_TRUE(p);
        EXPECT_EQ(p->kind(), k);
        EXPECT_EQ(p->size(), 0u);
    }
}

TEST(PolicyKind, BeladyWithoutTraceThrows)
{
    // Online managers cannot see the future; the factory refuses to
    // hand them a Belady policy without a recorded trace.
    EXPECT_THROW((void)policy::make(Kind::Belady, {}),
                 std::invalid_argument);
}

// ----------------------------------------------------------------------
// Clock
// ----------------------------------------------------------------------

TEST(PolicyClock, PassModeEvictsColdInOrderAndSparesReferenced)
{
    policy::ClockPolicy p({});
    ASSERT_TRUE(p.interleavedSweep());
    p.beginPass(0);
    p.insert(makePageId(1, 0));
    p.insert(makePageId(1, 1));
    p.insert(makePageId(1, 2));
    p.touch(makePageId(1, 1)); // referenced -> survives the pass
    EXPECT_EQ(p.victim(), makePageId(1, 0));
    EXPECT_EQ(p.victim(), makePageId(1, 2));
    // The hand never wraps: the referenced page is not a victim even
    // though it is the only page left.
    EXPECT_EQ(p.victim(), std::nullopt);
    EXPECT_TRUE(p.contains(makePageId(1, 1)));
}

TEST(PolicyClock, BeginPassEmptiesTheRing)
{
    policy::ClockPolicy p({});
    p.beginPass(0);
    p.insert(makePageId(1, 0));
    p.insert(makePageId(1, 1));
    EXPECT_EQ(p.size(), 2u);
    p.beginPass(1);
    EXPECT_EQ(p.size(), 0u);
    EXPECT_FALSE(p.contains(makePageId(1, 0)));
    EXPECT_EQ(p.stats().passes, 2u);
}

TEST(PolicyClock, SecondChanceClearsRefBitsAndAlwaysFindsAVictim)
{
    PolicyParams pp;
    pp.clockSecondChance = true;
    policy::ClockPolicy p(pp);
    ASSERT_FALSE(p.interleavedSweep());
    p.insert(makePageId(1, 0));
    p.insert(makePageId(1, 1));
    p.insert(makePageId(1, 2));
    p.touch(makePageId(1, 0));
    p.touch(makePageId(1, 1));
    p.touch(makePageId(1, 2));
    // Every page referenced: the hand strips each ref bit on the
    // first lap and takes the first slot on the second.
    EXPECT_EQ(p.victim(), makePageId(1, 0));
    EXPECT_EQ(p.victim(), makePageId(1, 1));
    // A re-touched page earns its second chance again.
    p.touch(makePageId(1, 2));
    p.insert(makePageId(1, 3));
    EXPECT_EQ(p.victim(), makePageId(1, 3));
    EXPECT_TRUE(p.contains(makePageId(1, 2)));
}

// ----------------------------------------------------------------------
// Segmented LRU
// ----------------------------------------------------------------------

TEST(PolicySlru, PromoteOnTouchAndDemoteOnOverflow)
{
    PolicyParams pp;
    pp.capacityHint = 4;
    pp.slruProtectedShare = 0.5; // protectedCap = 2
    policy::SlruPolicy p(pp);
    ASSERT_EQ(p.protectedCap(), 2u);

    p.insert(makePageId(1, 1));
    p.insert(makePageId(1, 2));
    EXPECT_EQ(p.probationSize(), 2u);
    p.touch(makePageId(1, 1)); // promote
    p.touch(makePageId(1, 2)); // promote
    EXPECT_EQ(p.protectedSize(), 2u);
    EXPECT_EQ(p.probationSize(), 0u);

    p.insert(makePageId(1, 3));
    p.touch(makePageId(1, 3)); // promote 3; protected overflows
    EXPECT_EQ(p.protectedSize(), 2u);
    EXPECT_EQ(p.probationSize(), 1u); // LRU of protected (1) demoted
    EXPECT_EQ(p.stats().promotions, 3u);
    EXPECT_EQ(p.stats().demotions, 1u);

    // Victims drain probation before touching the protected segment.
    EXPECT_EQ(p.victim(), makePageId(1, 1));
    EXPECT_EQ(p.victim(), makePageId(1, 2)); // protected LRU
    EXPECT_EQ(p.victim(), makePageId(1, 3));
    EXPECT_EQ(p.victim(), std::nullopt);
}

TEST(PolicySlru, InvariantsHoldUnderRandomChurn)
{
    // Random access stream through the bounded cache harness: segment
    // sizes must always reconcile and never exceed their caps. Run
    // under asan/tsan this also shakes out list/iterator bugs.
    PolicyParams pp;
    pp.capacityHint = 16;
    auto owned = std::make_unique<policy::SlruPolicy>(pp);
    policy::SlruPolicy *slru = owned.get();
    policy::PolicyCache cache(std::move(owned), 16);
    sim::Random rng(7);
    for (int i = 0; i < 20000; ++i) {
        cache.access(makePageId(1, rng.below(64)));
        ASSERT_LE(slru->size(), 16u);
        ASSERT_LE(slru->protectedSize(), slru->protectedCap());
        ASSERT_EQ(slru->probationSize() + slru->protectedSize(),
                  slru->size());
    }
    EXPECT_EQ(cache.hits() + cache.misses(), 20000u);
    EXPECT_GT(slru->stats().promotions, 0u);
    EXPECT_GT(slru->stats().demotions, 0u);
}

// ----------------------------------------------------------------------
// 2Q
// ----------------------------------------------------------------------

TEST(PolicyTwoQ, A1inIsFifoAndGhostHitsPromoteToAm)
{
    PolicyParams pp;
    pp.capacityHint = 8; // kin = 2, kout = 4
    policy::TwoQPolicy p(pp);

    p.insert(makePageId(1, 1));
    p.insert(makePageId(1, 2));
    p.touch(makePageId(1, 1)); // touches do NOT reorder A1in
    EXPECT_EQ(p.victim(), makePageId(1, 1)); // still FIFO head
    EXPECT_EQ(p.ghostSize(), 1u);
    EXPECT_FALSE(p.contains(makePageId(1, 1)));

    // A reference while ghosted is the "second touch" signal: the
    // page re-enters resident directly in Am.
    p.insert(makePageId(1, 1));
    EXPECT_EQ(p.ghostHits(), 1u);
    EXPECT_EQ(p.amSize(), 1u);
    EXPECT_EQ(p.stats().promotions, 1u);

    // With A1in over kin, one-shot pages evict each other and the Am
    // resident survives.
    p.insert(makePageId(1, 3));
    p.insert(makePageId(1, 4)); // a1in = {4, 3, 2} > kin
    EXPECT_EQ(p.victim(), makePageId(1, 2));
    EXPECT_TRUE(p.contains(makePageId(1, 1)));
}

TEST(PolicyTwoQ, ScanLeavesAmResidentsAlone)
{
    PolicyParams pp;
    pp.capacityHint = 8;
    auto owned = std::make_unique<policy::TwoQPolicy>(pp);
    policy::TwoQPolicy *twoq = owned.get();
    policy::PolicyCache cache(std::move(owned), 8);

    // Warm two hot pages into Am: insert, push them out into the
    // ghost with just enough one-shot filler (more would trim them
    // off the bounded ghost too), then re-touch for the ghost hit.
    std::vector<PageId> hot = {makePageId(1, 100), makePageId(1, 101)};
    for (PageId h : hot)
        cache.access(h);
    for (std::uint64_t s = 0; s < 8; ++s)
        cache.access(makePageId(2, s));
    for (PageId h : hot)
        cache.access(h);
    ASSERT_GT(twoq->ghostHits(), 0u);
    ASSERT_GT(twoq->amSize(), 0u);

    // A long scan of one-shot pages must churn only A1in.
    for (std::uint64_t s = 0; s < 200; ++s)
        cache.access(makePageId(3, s));
    for (PageId h : hot)
        EXPECT_TRUE(twoq->contains(h));
}

// ----------------------------------------------------------------------
// WSClock
// ----------------------------------------------------------------------

TEST(PolicyWsClock, EvictsOnlyOutsideTheWorkingSetWindow)
{
    PolicyParams pp;
    pp.wsTau = 10;
    policy::WsClockPolicy p(pp);
    ASSERT_EQ(p.tau(), 10u);
    p.setNow(0);
    p.insert(makePageId(1, 1));
    p.insert(makePageId(1, 2));
    p.insert(makePageId(1, 3));
    p.touch(makePageId(1, 1)); // referenced
    p.setNow(20);
    // The hand clears page 1's ref bit (stamping last-use = 20) and
    // evicts page 2, the first unreferenced page older than tau.
    EXPECT_EQ(p.victim(), makePageId(1, 2));
    EXPECT_TRUE(p.contains(makePageId(1, 1)));
    // Page 1 is now inside the window; page 3 is not.
    EXPECT_EQ(p.victim(), makePageId(1, 3));
}

TEST(PolicyWsClock, FallsBackToOldestWhenAllInsideWindow)
{
    PolicyParams pp;
    pp.wsTau = 100;
    policy::WsClockPolicy p(pp);
    p.setNow(0);
    p.insert(makePageId(1, 1));
    p.setNow(5);
    p.insert(makePageId(1, 2));
    p.setNow(6);
    // Nothing is older than tau; the oldest last-use loses.
    EXPECT_EQ(p.victim(), makePageId(1, 1));
    EXPECT_EQ(p.size(), 1u);
}

// ----------------------------------------------------------------------
// Belady (offline optimum)
// ----------------------------------------------------------------------

TEST(PolicyBelady, MatchesHandComputedOptimalEvictionSequence)
{
    // The classic MIN worked example: pages 1..5, capacity 3.
    //   refs:      1 2 3 4 1 2 5 1 2 3
    //   optimal:   M M M M h h M h h M   -> 6 misses
    //   evictions: at ref 4 evict 3 (next use farthest), at ref 5
    //   evict 4 (never used again), at the final 3 evict 1 (all
    //   residents dead -> lowest PageId).
    std::vector<PageId> trace;
    for (std::uint64_t r : {1, 2, 3, 4, 1, 2, 5, 1, 2, 3})
        trace.push_back(makePageId(1, r));

    policy::BeladyPolicy b(trace);
    std::vector<PageId> evicted;
    std::uint64_t misses = 0;
    for (PageId p : trace) {
        if (b.contains(p)) {
            b.touch(p);
            continue;
        }
        ++misses;
        if (b.size() == 3) {
            auto v = b.victim();
            ASSERT_TRUE(v.has_value());
            evicted.push_back(*v);
        }
        b.insert(p);
    }
    EXPECT_EQ(misses, 6u);
    ASSERT_EQ(evicted.size(), 3u);
    EXPECT_EQ(evicted[0], makePageId(1, 3));
    EXPECT_EQ(evicted[1], makePageId(1, 4));
    EXPECT_EQ(evicted[2], makePageId(1, 1));
    EXPECT_EQ(b.position(), trace.size());
}

TEST(PolicyBelady, DeviatingFromTheRecordedTraceThrows)
{
    std::vector<PageId> trace = {makePageId(1, 1), makePageId(1, 2),
                                 makePageId(1, 3)};
    policy::BeladyPolicy b(trace);
    b.insert(makePageId(1, 1));
    EXPECT_THROW(b.insert(makePageId(1, 3)), std::logic_error);
}

TEST(PolicyBelady, LowerBoundsEveryOnlinePolicyOnARealTrace)
{
    // A theorem, not a tolerance: on a shared trace at equal capacity
    // MIN's miss count is <= any demand-paging policy's.
    apps::RefGenParams gp;
    gp.seed = 11;
    apps::RefGen gen(apps::RefWorkload::Scan, gp);
    std::vector<PageId> trace;
    while (trace.size() < 20000)
        gen.nextTxn(trace);
    double opt = policy::replayMissRate(Kind::Belady, trace, 128);
    for (Kind k : {Kind::Clock, Kind::Slru, Kind::TwoQ, Kind::WsClock})
        EXPECT_LE(opt, policy::replayMissRate(k, trace, 128))
            << policy::kindName(k);
    // And the scan-resistant pair beats plain clock here.
    EXPECT_LT(policy::replayMissRate(Kind::Slru, trace, 128),
              policy::replayMissRate(Kind::Clock, trace, 128));
    EXPECT_LT(policy::replayMissRate(Kind::TwoQ, trace, 128),
              policy::replayMissRate(Kind::Clock, trace, 128));
}

// ----------------------------------------------------------------------
// PolicyCache harness
// ----------------------------------------------------------------------

TEST(PolicyCacheSim, AccountsHitsMissesAndEvictions)
{
    PolicyParams pp;
    pp.clockSecondChance = true;
    pp.capacityHint = 4;
    policy::PolicyCache cache(policy::make(Kind::Clock, pp), 4);
    for (std::uint64_t p = 0; p < 8; ++p)
        cache.access(makePageId(1, p)); // 8 cold misses
    EXPECT_EQ(cache.misses(), 8u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.evictions(), 4u); // misses - residents
    EXPECT_EQ(cache.policy().size(), 4u);
    EXPECT_TRUE(cache.access(makePageId(1, 7))); // still resident
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.accesses(), 9u);
    EXPECT_DOUBLE_EQ(cache.missRate(), 8.0 / 9.0);
}

TEST(PolicyStudy, SameParamsReproduceBitIdenticalResults)
{
    apps::PolicyStudyParams p;
    p.workload = apps::RefWorkload::Zipf;
    p.kind = Kind::Slru;
    p.cacheFrames = 64;
    p.durationSec = 2;
    apps::PolicyStudyResult a = apps::runPolicyStudy(p);
    apps::PolicyStudyResult b = apps::runPolicyStudy(p);
    EXPECT_GT(a.txns, 0u);
    EXPECT_EQ(a.txns, b.txns);
    EXPECT_EQ(a.refs, b.refs);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.avgMs, b.avgMs);   // bit-equal, not approximately
    EXPECT_EQ(a.p99Ms, b.p99Ms);
    EXPECT_EQ(a.worstMs, b.worstMs);
}

// ----------------------------------------------------------------------
// Differential: Clock behind the interface vs the legacy clockPass
// ----------------------------------------------------------------------

/**
 * A line-for-line replica of the pre-refactor hard-wired
 * DefaultSegmentManager::clockPass, driven from outside the manager:
 * snapshot each managed segment into referenced/cold skipping pinned
 * pages, batch-clear contiguous referenced runs, reclaim cold pages
 * in ascending order, and stop scanning segments once the target is
 * met (checked AFTER each segment, so target 0 arms only the first).
 */
sim::Task<std::uint64_t>
legacyClockPass(mgr::DefaultSegmentManager &mgr, kernel::Kernel &k,
                std::vector<kernel::SegmentId> segs,
                std::uint64_t target)
{
    std::uint64_t reclaimed = 0;
    for (kernel::SegmentId sid : segs) {
        if (!k.segmentExists(sid))
            continue;
        std::vector<kernel::PageIndex> referenced, cold;
        for (const auto &[page, entry] : k.segment(sid).pages()) {
            if (entry.flags & flag::kPinned)
                continue;
            if (entry.flags & flag::kReferenced)
                referenced.push_back(page);
            else
                cold.push_back(page);
        }
        std::size_t i = 0;
        while (i < referenced.size()) {
            std::size_t j = i;
            while (j + 1 < referenced.size() &&
                   referenced[j + 1] == referenced[j] + 1) {
                ++j;
            }
            co_await k.modifyPageFlags(
                sid, referenced[i], j - i + 1, 0,
                flag::kReferenced | flag::kReadable | flag::kWritable);
            i = j + 1;
        }
        for (kernel::PageIndex p : cold) {
            if (reclaimed >= target)
                break;
            co_await mgr.reclaimPage(k, sid, p);
            ++reclaimed;
        }
        if (reclaimed >= target)
            break;
    }
    co_return reclaimed;
}

class PolicyDifferentialTest : public ::testing::Test
{
  protected:
    struct Stack
    {
        Stack()
            : kern(s, machine()),
              disk(s, machine().diskLatency,
                   machine().diskBandwidthMBps),
              server(s, disk, usec(200)), spcm(kern, std::nullopt),
              ucds(kern, &spcm, server, reg), proc("app", 1)
        {
            ucds.initNow(2048, 256);
        }

        static hw::MachineConfig
        machine()
        {
            hw::MachineConfig m = hw::decstation5000_200();
            m.memoryBytes = 16 << 20;
            return m;
        }

        void
        setup()
        {
            h1 = runTask(s, ucds.createAnonymous("h1", 64, 1));
            h2 = runTask(s, ucds.createAnonymous("h2", 64, 1));
            for (kernel::PageIndex p = 0; p < 24; ++p)
                runTask(s, kern.touchSegment(
                                proc, h1, p,
                                kernel::AccessType::Write));
            for (kernel::PageIndex p = 0; p < 16; ++p)
                runTask(s, kern.touchSegment(
                                proc, h2, p,
                                kernel::AccessType::Write));
            kern.modifyPageFlagsNow(h1, 3, 1, flag::kPinned, 0);
        }

        void
        retouch()
        {
            for (kernel::PageIndex p = 0; p < 8; ++p)
                runTask(s, kern.touchSegment(
                                proc, h1, p,
                                kernel::AccessType::Read));
            for (kernel::PageIndex p = 0; p < 4; ++p)
                runTask(s, kern.touchSegment(
                                proc, h2, p,
                                kernel::AccessType::Read));
        }

        /// Kernel-observable state: (segment, page, flags) triples.
        std::vector<std::tuple<kernel::SegmentId, kernel::PageIndex,
                               std::uint64_t>>
        state()
        {
            std::vector<std::tuple<kernel::SegmentId,
                                   kernel::PageIndex, std::uint64_t>>
                out;
            for (kernel::SegmentId sid : {h1, h2})
                for (const auto &[page, e] :
                     kern.segment(sid).pages())
                    out.emplace_back(
                        sid, page,
                        static_cast<std::uint64_t>(e.flags));
            return out;
        }

        sim::Simulation s;
        kernel::Kernel kern;
        hw::Disk disk;
        uio::FileServer server;
        uio::FileRegistry reg;
        mgr::SystemPageCacheManager spcm;
        mgr::DefaultSegmentManager ucds;
        kernel::Process proc;
        kernel::SegmentId h1 = 0, h2 = 0;
    };
};

TEST_F(PolicyDifferentialTest, ClockBehindInterfaceMatchesLegacyPass)
{
    Stack a; // policy-driven clockPass (Clock is the config default)
    Stack b; // hand-replicated legacy pass
    a.setup();
    b.setup();
    ASSERT_EQ(a.ucds.policyName(), "clock");
    std::vector<kernel::SegmentId> segs = {b.h1, b.h2};

    // Pass 1, target 0: arms the sampler on the first managed
    // segment only (the legacy early-exit quirk, kept bit-for-bit).
    EXPECT_EQ(runTask(a.s, a.ucds.clockPass(0)),
              runTask(b.s, legacyClockPass(b.ucds, b.kern, segs, 0)));
    EXPECT_EQ(a.state(), b.state());
    EXPECT_EQ(a.s.now(), b.s.now());

    a.retouch();
    b.retouch();

    // Pass 2, partial target: interleaved eviction stops mid-segment.
    EXPECT_EQ(runTask(a.s, a.ucds.clockPass(12)),
              runTask(b.s, legacyClockPass(b.ucds, b.kern, segs, 12)));
    EXPECT_EQ(a.state(), b.state());
    EXPECT_EQ(a.s.now(), b.s.now());

    // Pass 3, large target: drains every cold page in both stacks.
    std::uint64_t ra = runTask(a.s, a.ucds.clockPass(100));
    std::uint64_t rb =
        runTask(b.s, legacyClockPass(b.ucds, b.kern, segs, 100));
    EXPECT_EQ(ra, rb);
    EXPECT_GT(ra, 0u);
    EXPECT_EQ(a.state(), b.state());
    EXPECT_EQ(a.s.now(), b.s.now());
    // The pinned page outlives every pass.
    EXPECT_TRUE(a.kern.segment(a.h1).findPage(3));
}

} // namespace
} // namespace vpp
