/**
 * @file
 * Tests for the database study substrate: multi-granularity locks,
 * the hierarchical lock manager, and the Table 4 study itself
 * (ordering invariants and determinism on short runs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/kernel.h" // runTask
#include "db/lock.h"
#include "db/study.h"

namespace vpp::db {
namespace {

using kernel::runTask;
using sim::msec;

// ----------------------------------------------------------------------
// Lock compatibility (property-style over the full matrix)
// ----------------------------------------------------------------------

class Compat : public ::testing::TestWithParam<
                   std::tuple<LockMode, LockMode, bool>>
{};

TEST_P(Compat, MatrixMatchesTextbook)
{
    auto [a, b, expect] = GetParam();
    EXPECT_EQ(lockCompatible(a, b), expect)
        << lockModeName(a) << " vs " << lockModeName(b);
    // Compatibility is symmetric.
    EXPECT_EQ(lockCompatible(a, b), lockCompatible(b, a));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, Compat,
    ::testing::Values(
        std::make_tuple(LockMode::IS, LockMode::IS, true),
        std::make_tuple(LockMode::IS, LockMode::IX, true),
        std::make_tuple(LockMode::IS, LockMode::S, true),
        std::make_tuple(LockMode::IS, LockMode::X, false),
        std::make_tuple(LockMode::IX, LockMode::IX, true),
        std::make_tuple(LockMode::IX, LockMode::S, false),
        std::make_tuple(LockMode::IX, LockMode::X, false),
        std::make_tuple(LockMode::S, LockMode::S, true),
        std::make_tuple(LockMode::S, LockMode::X, false),
        std::make_tuple(LockMode::X, LockMode::X, false)));

TEST(MultiModeLock, SharedHoldersCoexist)
{
    sim::Simulation s;
    MultiModeLock l(s);
    EXPECT_TRUE(l.tryAcquire(LockMode::S));
    EXPECT_TRUE(l.tryAcquire(LockMode::S));
    EXPECT_TRUE(l.tryAcquire(LockMode::IS));
    EXPECT_FALSE(l.tryAcquire(LockMode::X));
    EXPECT_FALSE(l.tryAcquire(LockMode::IX));
    l.release(LockMode::S);
    l.release(LockMode::S);
    l.release(LockMode::IS);
    EXPECT_TRUE(l.tryAcquire(LockMode::X));
}

TEST(MultiModeLock, WriterWakesWhenReadersLeave)
{
    sim::Simulation s;
    MultiModeLock l(s);
    std::vector<int> order;

    s.spawn([](sim::Simulation &sim, MultiModeLock &lk,
               std::vector<int> &ord) -> sim::Task<> {
        co_await lk.acquire(LockMode::S);
        co_await sim.delay(msec(10));
        ord.push_back(1);
        lk.release(LockMode::S);
    }(s, l, order));
    s.spawn([](sim::Simulation &sim, MultiModeLock &lk,
               std::vector<int> &ord) -> sim::Task<> {
        co_await sim.delay(msec(1));
        co_await lk.acquire(LockMode::X);
        ord.push_back(2);
        lk.release(LockMode::X);
    }(s, l, order));
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(l.waits(), 1u);
    EXPECT_EQ(l.waitTime(), msec(9));
}

TEST(MultiModeLock, FifoPreventsWriterStarvation)
{
    sim::Simulation s;
    MultiModeLock l(s);
    std::vector<int> order;

    auto reader = [](sim::Simulation &sim, MultiModeLock &lk,
                     std::vector<int> &ord, sim::Duration at,
                     int id) -> sim::Task<> {
        co_await sim.delay(at);
        co_await lk.acquire(LockMode::S);
        ord.push_back(id);
        co_await sim.delay(msec(10));
        lk.release(LockMode::S);
    };
    auto writer = [](sim::Simulation &sim, MultiModeLock &lk,
                     std::vector<int> &ord, sim::Duration at,
                     int id) -> sim::Task<> {
        co_await sim.delay(at);
        co_await lk.acquire(LockMode::X);
        ord.push_back(id);
        lk.release(LockMode::X);
    };
    // Reader at t=0, writer at t=1ms, second reader at t=2ms. Without
    // FIFO the second reader would jump the writer.
    s.spawn(reader(s, l, order, 0, 1));
    s.spawn(writer(s, l, order, msec(1), 2));
    s.spawn(reader(s, l, order, msec(2), 3));
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(MultiModeLock, CompatibleWaitersGrantTogether)
{
    sim::Simulation s;
    MultiModeLock l(s);
    int concurrent = 0, peak = 0;

    s.spawn([](sim::Simulation &sim, MultiModeLock &lk) -> sim::Task<> {
        co_await lk.acquire(LockMode::X);
        co_await sim.delay(msec(5));
        lk.release(LockMode::X);
    }(s, l));
    for (int i = 0; i < 3; ++i) {
        s.spawn([](sim::Simulation &sim, MultiModeLock &lk, int &cur,
                   int &pk) -> sim::Task<> {
            co_await sim.delay(msec(1));
            co_await lk.acquire(LockMode::S);
            ++cur;
            pk = std::max(pk, cur);
            co_await sim.delay(msec(5));
            --cur;
            lk.release(LockMode::S);
        }(s, l, concurrent, peak));
    }
    s.run();
    // All three queued shared requests were granted as a batch when
    // the writer left.
    EXPECT_EQ(peak, 3);
}

TEST(HierarchicalLock, PageLocksUnderIntention)
{
    sim::Simulation s;
    HierarchicalLockManager locks(s, 4);
    runTask(s, [](HierarchicalLockManager &lk) -> sim::Task<> {
        co_await lk.lockRelation(0, LockMode::IX);
        co_await lk.lockPage(0, 10, LockMode::X);
        // A second transaction can work on another page of the same
        // relation concurrently.
        co_await lk.lockRelation(0, LockMode::IX);
        co_await lk.lockPage(0, 11, LockMode::X);
        lk.unlockPage(0, 11, LockMode::X);
        lk.unlockRelation(0, LockMode::IX);
        lk.unlockPage(0, 10, LockMode::X);
        lk.unlockRelation(0, LockMode::IX);
    }(locks));
    // Relation-level S blocks intention writers.
    EXPECT_TRUE(locks.relation(1).tryAcquire(LockMode::S));
    EXPECT_FALSE(locks.relation(1).tryAcquire(LockMode::IX));
}

TEST(HierarchicalLock, OrderedAcquisitionAvoidsDeadlock)
{
    // Two transactions that would deadlock if they acquired their
    // relations in opposite orders; with the canonical ascending-id
    // protocol both complete.
    sim::Simulation s;
    HierarchicalLockManager locks(s, 4);
    int completed = 0;

    auto txn = [](sim::Simulation &sim, HierarchicalLockManager &lk,
                  int first, int second, int *done) -> sim::Task<> {
        int lo = std::min(first, second);
        int hi = std::max(first, second);
        co_await lk.lockRelation(lo, LockMode::X);
        co_await sim.delay(msec(5)); // guarantee interleaving
        co_await lk.lockRelation(hi, LockMode::X);
        co_await sim.delay(msec(5));
        lk.unlockRelation(hi, LockMode::X);
        lk.unlockRelation(lo, LockMode::X);
        ++*done;
    };
    // Transaction A wants (1 then 2), transaction B wants (2 then 1).
    s.spawn(txn(s, locks, 1, 2, &completed));
    s.spawn(txn(s, locks, 2, 1, &completed));
    s.run();
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(locks.relation(1).waiting(), 0);
    EXPECT_EQ(locks.relation(2).waiting(), 0);
}

TEST(MultiModeLock, WaitTimeAccounting)
{
    sim::Simulation s;
    MultiModeLock l(s);
    s.spawn([](sim::Simulation &sim, MultiModeLock &lk) -> sim::Task<> {
        co_await lk.acquire(LockMode::X);
        co_await sim.delay(msec(20));
        lk.release(LockMode::X);
    }(s, l));
    s.spawn([](sim::Simulation &sim, MultiModeLock &lk) -> sim::Task<> {
        co_await sim.delay(msec(5));
        co_await lk.acquire(LockMode::S);
        lk.release(LockMode::S);
    }(s, l));
    s.run();
    EXPECT_EQ(l.waits(), 1u);
    EXPECT_EQ(l.waitTime(), msec(15));
}

// ----------------------------------------------------------------------
// The Table 4 study (short runs)
// ----------------------------------------------------------------------

DbParams
quickParams(std::uint64_t seed = 42)
{
    DbParams p;
    p.durationSec = 60.0;
    p.seed = seed;
    return p;
}

TEST(DbStudy, CompletesAllArrivals)
{
    DbResult r = runDbStudy(DbConfig::IndexInMemory, quickParams());
    // 40 TPS for 60 s: about 2400 transactions, all completed.
    EXPECT_GT(r.txns, 2200u);
    EXPECT_LT(r.txns, 2600u);
    EXPECT_NEAR(static_cast<double>(r.joins) / r.txns, 0.05, 0.02);
}

TEST(DbStudy, DeterministicForSameSeed)
{
    DbResult a = runDbStudy(DbConfig::IndexWithPaging, quickParams(7));
    DbResult b = runDbStudy(DbConfig::IndexWithPaging, quickParams(7));
    EXPECT_EQ(a.txns, b.txns);
    EXPECT_DOUBLE_EQ(a.avgMs, b.avgMs);
    EXPECT_DOUBLE_EQ(a.worstMs, b.worstMs);
}

TEST(DbStudy, Table4OrderingInvariants)
{
    DbParams p = quickParams();
    DbResult none = runDbStudy(DbConfig::NoIndex, p);
    DbResult mem = runDbStudy(DbConfig::IndexInMemory, p);
    DbResult page = runDbStudy(DbConfig::IndexWithPaging, p);
    DbResult regen = runDbStudy(DbConfig::IndexRegeneration, p);

    // The paper's qualitative claims:
    // indices help enormously when memory is available,
    EXPECT_GT(none.avgMs, 10 * mem.avgMs);
    // a little paging destroys most of the benefit,
    EXPECT_GT(page.avgMs, 5 * mem.avgMs);
    EXPECT_LT(page.avgMs, none.avgMs);
    // and regeneration recovers nearly all of it.
    EXPECT_LT(regen.avgMs, 2 * mem.avgMs);
    EXPECT_LT(regen.avgMs, page.avgMs / 5);
    EXPECT_GE(regen.avgMs, mem.avgMs);
    // Worst cases: paging and no-index are the catastrophic tails.
    EXPECT_GT(page.worstMs, 4 * regen.worstMs);
    EXPECT_GT(none.worstMs, mem.worstMs);
}

TEST(DbStudy, PagingFaultsAndRegenRebuildCounts)
{
    DbParams p = quickParams();
    DbResult page = runDbStudy(DbConfig::IndexWithPaging, p);
    DbResult regen = runDbStudy(DbConfig::IndexRegeneration, p);
    DbResult mem = runDbStudy(DbConfig::IndexInMemory, p);

    // ~2400 arrivals / 500 per eviction = ~4 evictions.
    EXPECT_GE(page.indexEvictions, 3u);
    EXPECT_EQ(page.indexPageFaults,
              page.indexEvictions * p.indexPages);
    EXPECT_EQ(page.indexRebuilds, 0u);

    EXPECT_EQ(regen.indexPageFaults, 0u);
    EXPECT_EQ(regen.indexRebuilds, regen.indexEvictions);

    EXPECT_EQ(mem.indexEvictions, 0u);
    EXPECT_EQ(mem.indexPageFaults, 0u);
}

TEST(DbStudy, NoIndexSaturatesCpus)
{
    DbParams p = quickParams();
    DbResult none = runDbStudy(DbConfig::NoIndex, p);
    DbResult mem = runDbStudy(DbConfig::IndexInMemory, p);
    EXPECT_GT(none.cpuUtilization, 0.7);
    EXPECT_LT(mem.cpuUtilization, 0.5);
}

class DbSeeds : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(DbSeeds, OrderingHoldsAcrossSeeds)
{
    DbParams p = quickParams(GetParam());
    DbResult mem = runDbStudy(DbConfig::IndexInMemory, p);
    DbResult page = runDbStudy(DbConfig::IndexWithPaging, p);
    DbResult regen = runDbStudy(DbConfig::IndexRegeneration, p);
    EXPECT_GT(page.avgMs, 5 * mem.avgMs);
    EXPECT_LT(regen.avgMs, 2 * mem.avgMs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbSeeds,
                         ::testing::Values(1, 17, 99, 2024));

} // namespace
} // namespace vpp::db
