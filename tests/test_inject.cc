/**
 * @file
 * Tests for the fault-injection engine (vpp::inject) and the kernel's
 * resilience machinery it exercises: deterministic per-layer streams,
 * disk error/retry accounting, fault redelivery with deadlines,
 * failover to the default manager with unilateral frame reclamation,
 * reclaim storms, and the golden-identity property (a disabled engine
 * is indistinguishable from no engine at all).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/stack.h"
#include "core/kernel.h"
#include "hw/disk.h"
#include "inject/inject.h"
#include "managers/default_mgr.h"
#include "managers/generic.h"
#include "managers/spcm.h"
#include "uio/file_server.h"
#include "uio/paging.h"

namespace vpp::inject {
namespace {

using kernel::runTask;
using sim::msec;
using sim::usec;

hw::MachineConfig
smallMachine()
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20; // 4096 frames
    return m;
}

// ----------------------------------------------------------------------
// Engine
// ----------------------------------------------------------------------

TEST(Engine, SameSeedSameDecisionSequence)
{
    Config c;
    c.enabled = true;
    c.seed = 99;
    c.disk.readErrorProb = 0.3;
    c.manager.stallProb = 0.2;
    c.manager.crashProb = 0.2;
    c.manager.lieProb = 0.2;
    c.pressure.stormProb = 0.3;
    c.pressure.stormFrames = 8;

    Engine a(c), b(c);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.diskReadError(), b.diskReadError());
        EXPECT_EQ(a.managerAction(), b.managerAction());
        EXPECT_EQ(a.reclaimStorm(), b.reclaimStorm());
    }
    EXPECT_EQ(a.stats().readErrors, b.stats().readErrors);
    EXPECT_EQ(a.stats().crashes, b.stats().crashes);
    EXPECT_EQ(a.stats().storms, b.stats().storms);
}

TEST(Engine, DisabledEngineDecidesNothing)
{
    Config c;
    c.enabled = false; // master switch off, every prob at maximum
    c.disk.readErrorProb = 1.0;
    c.disk.writeErrorProb = 1.0;
    c.disk.latencySpikeProb = 1.0;
    c.manager.stallProb = 1.0;
    c.pressure.stormProb = 1.0;
    c.pressure.stormFrames = 64;

    Engine e(c);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(e.diskReadError());
        EXPECT_FALSE(e.diskWriteError());
        EXPECT_EQ(e.diskLatencySpike(), 0);
        EXPECT_EQ(e.managerAction(), ManagerAction::None);
        EXPECT_EQ(e.reclaimStorm(), 0u);
    }
    EXPECT_EQ(e.stats().readErrors, 0u);
    EXPECT_EQ(e.stats().stalls, 0u);
    EXPECT_EQ(e.stats().storms, 0u);
}

TEST(Engine, LayersDrawFromIndependentStreams)
{
    // Enabling disk faults must not shift the manager-action sequence:
    // each layer has its own stream.
    Config mgr_only;
    mgr_only.enabled = true;
    mgr_only.seed = 7;
    mgr_only.manager.stallProb = 0.3;
    mgr_only.manager.crashProb = 0.3;

    Config both = mgr_only;
    both.disk.readErrorProb = 0.5;
    both.disk.latencySpikeProb = 0.5;

    Engine a(mgr_only), b(both);
    for (int i = 0; i < 200; ++i) {
        b.diskReadError(); // interleave disk draws on b only
        b.diskLatencySpike();
        EXPECT_EQ(a.managerAction(), b.managerAction());
    }
}

// ----------------------------------------------------------------------
// Disk layer
// ----------------------------------------------------------------------

TEST(DiskInjection, ErrorChargedAtIssue)
{
    // The failed read still occupied the device: reads()/bytesRead()
    // are charged when the operation is issued, before the error
    // verdict arrives with the completion interrupt.
    sim::Simulation s;
    hw::Disk disk(s, msec(15), 1.0);

    Config c;
    c.enabled = true;
    c.seed = 5;
    c.disk.readErrorProb = 1.0;
    Engine eng(c);
    disk.setInjector(&eng);

    EXPECT_THROW(runTask(s, disk.read(4096)), hw::DiskError);
    EXPECT_EQ(disk.reads(), 1u);
    EXPECT_EQ(disk.bytesRead(), 4096u);
    EXPECT_EQ(disk.errors(), 1u);
    EXPECT_GT(disk.busyTime(), 0);
}

TEST(DiskInjection, PagingRetriesUntilExhaustion)
{
    // Every transfer fails: pageIn retries kMaxIoRetries times with
    // backoff, then surfaces KernelErrc::IoError; both the kernel and
    // the disk account each attempt.
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    hw::Disk disk(s, msec(15), 1.0);
    uio::FileServer server(s, disk, usec(200));
    uio::FileId f = server.createFile("data", 64 * 4096);

    kernel::SegmentId seg =
        kern.createSegmentNow("buf", 4096, 16, kernel::kSystemUser);
    kern.migratePagesNow(kernel::kPhysSegment, seg, 0, 0, 1,
                         kernel::flag::kReadable |
                             kernel::flag::kWritable,
                         0);

    Config c;
    c.enabled = true;
    c.seed = 5;
    c.disk.readErrorProb = 1.0;
    Engine eng(c);
    disk.setInjector(&eng);

    try {
        runTask(s, uio::pageIn(kern, server, f, 0, seg, 0));
        FAIL() << "pageIn should exhaust its retries";
    } catch (const kernel::KernelError &e) {
        EXPECT_EQ(e.code(), kernel::KernelErrc::IoError);
    }
    EXPECT_EQ(kern.stats().ioErrors,
              static_cast<std::uint64_t>(uio::kMaxIoRetries));
    EXPECT_EQ(kern.stats().ioRetries,
              static_cast<std::uint64_t>(uio::kMaxIoRetries - 1));
    EXPECT_EQ(disk.errors(),
              static_cast<std::uint64_t>(uio::kMaxIoRetries));
    EXPECT_EQ(disk.retries(),
              static_cast<std::uint64_t>(uio::kMaxIoRetries - 1));
}

TEST(DiskInjection, PagingRetryRecoversFromTransientError)
{
    // The first transfer fails, then the fault clears (the injector is
    // detached while the retry backoff elapses): pageIn succeeds and
    // records exactly one error and one retry.
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    hw::Disk disk(s, msec(15), 1.0);
    uio::FileServer server(s, disk, usec(200));
    uio::FileId f = server.createFile("data", 64 * 4096);

    kernel::SegmentId seg =
        kern.createSegmentNow("buf", 4096, 16, kernel::kSystemUser);
    kern.migratePagesNow(kernel::kPhysSegment, seg, 0, 0, 1,
                         kernel::flag::kReadable |
                             kernel::flag::kWritable,
                         0);

    Config c;
    c.enabled = true;
    c.seed = 5;
    c.disk.readErrorProb = 1.0;
    Engine eng(c);
    disk.setInjector(&eng);
    // One full transfer takes ~19 ms (latency + 4 KB at 1 MB/s); the
    // retry waits kIoRetryBackoff first, so detaching at 20 ms lands
    // between the first failure and the second attempt.
    s.schedule(msec(20), [&disk] { disk.setInjector(nullptr); });

    runTask(s, uio::pageIn(kern, server, f, 0, seg, 0));
    EXPECT_EQ(kern.stats().ioErrors, 1u);
    EXPECT_EQ(kern.stats().ioRetries, 1u);
    EXPECT_EQ(disk.errors(), 1u);
    EXPECT_EQ(disk.retries(), 1u);
}

// ----------------------------------------------------------------------
// Manager layer: redelivery, deadline, failover
// ----------------------------------------------------------------------

struct ResilienceRig
{
    ResilienceRig()
        : kern(s, smallMachine()), spcm(kern, std::nullopt),
          flaky(kern, "flaky", hw::ManagerMode::SameProcess, &spcm, 1),
          fallback(kern, "fallback", hw::ManagerMode::SameProcess,
                   &spcm, kernel::kSystemUser),
          proc("p", 1)
    {
        flaky.initNow(128, 64);
        fallback.initNow(128, 64);
        seg = kern.createSegmentNow("app", 4096, 64, 1, &flaky);
    }

    kernel::ResiliencePolicy
    policy(int redeliveries, sim::Duration deadline, bool failover)
    {
        kernel::ResiliencePolicy p;
        p.enabled = true;
        p.faultDeadline = deadline;
        p.maxRedeliveries = redeliveries;
        p.retryBackoff = usec(100);
        p.failover = failover;
        return p;
    }

    sim::Simulation s;
    kernel::Kernel kern;
    mgr::SystemPageCacheManager spcm;
    mgr::GenericSegmentManager flaky;
    mgr::GenericSegmentManager fallback;
    kernel::Process proc;
    kernel::SegmentId seg = 0;
};

TEST(Resilience, StallWithinDeadlineResolves)
{
    ResilienceRig r;
    r.kern.setResiliencePolicy(r.policy(3, msec(300), false));

    Config c;
    c.enabled = true;
    c.seed = 11;
    c.manager.stallProb = 1.0;
    c.manager.stallTime = msec(200);
    Engine eng(c);
    r.kern.setInjector(&eng);

    runTask(r.s, r.kern.touchSegment(r.proc, r.seg, 0,
                                     kernel::AccessType::Write));
    const auto &st = r.kern.stats();
    EXPECT_EQ(st.injectedStalls, 1u);
    EXPECT_EQ(st.faultTimeouts, 0u);
    EXPECT_EQ(st.faultRedeliveries, 0u);
    EXPECT_GE(st.faultLatencyMax, msec(200));
}

TEST(Resilience, UnresponsiveManagerWithoutFailoverThrows)
{
    // Every attempt stalls past the deadline and redelivery is
    // exhausted before any stalled attempt wakes: with failover off
    // the kernel reports the manager unresponsive.
    ResilienceRig r;
    r.kern.setResiliencePolicy(r.policy(2, msec(50), false));

    Config c;
    c.enabled = true;
    c.seed = 11;
    c.manager.stallProb = 1.0;
    c.manager.stallTime = msec(500);
    Engine eng(c);
    r.kern.setInjector(&eng);

    try {
        runTask(r.s, r.kern.touchSegment(r.proc, r.seg, 0,
                                         kernel::AccessType::Write));
        FAIL() << "expected ManagerUnresponsive";
    } catch (const kernel::KernelError &e) {
        EXPECT_EQ(e.code(), kernel::KernelErrc::ManagerUnresponsive);
    }
    const auto &st = r.kern.stats();
    EXPECT_EQ(st.faultTimeouts, 3u);   // initial attempt + 2 retries
    EXPECT_EQ(st.faultRedeliveries, 2u);
    EXPECT_EQ(r.flaky.faultTimeouts(), 3u);
    // Drain the stalled attempts; exactly one installs the page, the
    // later ones see the fault resolved and step aside.
    r.s.run();
    std::string why;
    EXPECT_TRUE(r.kern.checkFrameInvariant(&why)) << why;
}

TEST(Resilience, CrashFailoverReclaimsAndReassigns)
{
    ResilienceRig r;
    r.kern.setDefaultManager(&r.fallback);
    r.kern.setResiliencePolicy(r.policy(1, msec(50), true));

    // Build up clean, reclaimable state before the campaign starts.
    for (kernel::PageIndex p = 0; p < 4; ++p)
        runTask(r.s, r.kern.touchSegment(r.proc, r.seg, p,
                                         kernel::AccessType::Read));

    Config c;
    c.enabled = true;
    c.seed = 3;
    c.manager.crashProb = 1.0;
    Engine eng(c);
    r.kern.setInjector(&eng);

    runTask(r.s, r.kern.touchSegment(r.proc, r.seg, 10,
                                     kernel::AccessType::Read));
    const auto &st = r.kern.stats();
    EXPECT_EQ(st.failovers, 1u);
    EXPECT_EQ(st.managerCrashes, 2u); // initial attempt + 1 retry
    EXPECT_EQ(r.flaky.crashes(), 2u);
    EXPECT_EQ(r.flaky.failovers(), 1u);
    // The kernel took the clean pages away from the crashing manager
    // and the segment now belongs to the default manager — for this
    // fault and all future ones.
    EXPECT_EQ(st.framesReclaimed, 4u);
    EXPECT_EQ(r.kern.segment(r.seg).manager(), &r.fallback);
    EXPECT_TRUE(r.kern.segment(r.seg).findPage(10) != nullptr);

    const std::uint64_t fallback_calls = r.fallback.calls();
    runTask(r.s, r.kern.touchSegment(r.proc, r.seg, 0,
                                     kernel::AccessType::Read));
    EXPECT_GT(r.fallback.calls(), fallback_calls);
    std::string why;
    EXPECT_TRUE(r.kern.checkFrameInvariant(&why)) << why;
}

TEST(Resilience, LyingManagerFailsOverAfterRedelivery)
{
    // A lying handler returns "resolved" without doing anything;
    // the kernel's resolution check catches it every time and the
    // fault eventually fails over.
    ResilienceRig r;
    r.kern.setDefaultManager(&r.fallback);
    r.kern.setResiliencePolicy(r.policy(2, msec(50), true));

    Config c;
    c.enabled = true;
    c.seed = 17;
    c.manager.lieProb = 1.0;
    Engine eng(c);
    r.kern.setInjector(&eng);

    runTask(r.s, r.kern.touchSegment(r.proc, r.seg, 0,
                                     kernel::AccessType::Write));
    const auto &st = r.kern.stats();
    EXPECT_EQ(st.injectedLies, 3u); // initial attempt + 2 retries
    EXPECT_EQ(st.faultRedeliveries, 2u);
    EXPECT_EQ(st.failovers, 1u);
    EXPECT_TRUE(r.kern.segment(r.seg).findPage(0) != nullptr);
}

// ----------------------------------------------------------------------
// Memory-pressure layer
// ----------------------------------------------------------------------

TEST(Pressure, ReclaimStormForcesClientsToSurrender)
{
    sim::Simulation s;
    kernel::Kernel kern(s, smallMachine());
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager hoarder(
        kern, "hoarder", hw::ManagerMode::SameProcess, &spcm, 1);
    hoarder.initNow(64, 32);

    Config c;
    c.enabled = true;
    c.seed = 23;
    c.pressure.stormProb = 1.0;
    c.pressure.stormFrames = 8;
    Engine eng(c);
    spcm.setInjector(&eng);

    mgr::ClientId probe = spcm.registerClient("probe", 2, 0.0);
    kernel::SegmentId dst =
        kern.createSegmentNow("dst", 4096, 8, 2);
    std::uint64_t got =
        runTask(s, spcm.requestPages(probe, dst, {0, 1, 2, 3}));

    EXPECT_EQ(got, 4u);
    EXPECT_EQ(spcm.stormsTriggered(), 1u);
    EXPECT_EQ(hoarder.freePages(), 24u); // surrendered 8 of 32
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

// ----------------------------------------------------------------------
// Golden identity: disabled == absent
// ----------------------------------------------------------------------

sim::Task<>
goldenWorkload(apps::VppStack &st, kernel::SegmentId seg)
{
    kernel::Process proc("app", 1);
    sim::Random rng(404);
    for (int i = 0; i < 200; ++i) {
        kernel::PageIndex page =
            static_cast<kernel::PageIndex>(rng.below(64));
        kernel::AccessType a = rng.chance(0.5)
                                   ? kernel::AccessType::Write
                                   : kernel::AccessType::Read;
        co_await st.kern.touchSegment(proc, seg, page, a);
    }
    co_await st.ucds.clockPass(16);
}

TEST(GoldenIdentity, DisabledEngineMatchesAbsentEngine)
{
    // An attached-but-disabled engine must be a structural no-op:
    // identical simulated time, fault counts and disk activity as no
    // engine at all — this is what keeps every committed baseline
    // byte-identical.
    auto run = [](bool attach_disabled_engine) {
        hw::MachineConfig m = smallMachine();
        apps::VppStack st(m);
        st.kern.setResiliencePolicy(kernel::ResiliencePolicy{
            .enabled = true});

        Config c;
        c.enabled = false;
        c.disk.readErrorProb = 1.0; // would be chaos if consulted
        c.manager.stallProb = 1.0;
        c.pressure.stormProb = 1.0;
        c.pressure.stormFrames = 64;
        Engine eng(c);
        if (attach_disabled_engine) {
            st.disk.setInjector(&eng);
            st.kern.setInjector(&eng);
            st.spcm.setInjector(&eng);
        }

        uio::FileId f = st.server.createFile("g", 64 * 4096);
        kernel::SegmentId seg = runTask(st.sim, st.ucds.openFile(f));
        runTask(st.sim, goldenWorkload(st, seg));
        return std::tuple(st.sim.now(), st.kern.stats().faults,
                          st.disk.reads(), st.disk.busyTime());
    };

    EXPECT_EQ(run(false), run(true));
}

} // namespace
} // namespace vpp::inject
