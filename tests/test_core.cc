/**
 * @file
 * Unit and property tests for the V++ kernel VM: segments, bound
 * regions, MigratePages / ModifyPageFlags / GetPageAttributes, fault
 * delivery, copy-on-write and cost calibration.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "sim/random.h"

namespace vpp::kernel {
namespace {

using hw::ManagerMode;
using sim::usec;

hw::MachineConfig
smallMachine()
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 4 << 20; // 1024 frames: cheap invariant checks
    return m;
}

/**
 * Minimal manager: resolves every fault by migrating the next page of
 * a free-page segment into the faulting page, charging the standard
 * manager bookkeeping cost. Protection faults are resolved by enabling
 * the required access.
 */
class TestManager : public SegmentManager
{
  public:
    TestManager(ManagerMode mode, SegmentId free_seg)
        : SegmentManager("test-mgr", mode), freeSeg_(free_seg)
    {}

    sim::Task<>
    handleFault(Kernel &k, const Fault &f) override
    {
        lastFault_ = f;
        if (f.type == FaultType::Protection) {
            co_await k.modifyPageFlags(
                f.segment, f.page, 1,
                flag::kReadable | flag::kWritable, 0);
            co_return;
        }
        co_await k.simulation().delay(
            k.config().cost.managerAlloc);
        co_await k.migratePages(freeSeg_, f.segment, nextFree_++,
                                f.page, 1,
                                flag::kReadable | flag::kWritable, 0);
    }

    sim::Task<>
    segmentClosed(Kernel &k, SegmentId s) override
    {
        (void)k;
        closed_.push_back(s);
        co_return;
    }

    const Fault &lastFault() const { return lastFault_; }
    const std::vector<SegmentId> &closed() const { return closed_; }

  private:
    SegmentId freeSeg_;
    PageIndex nextFree_ = 0;
    Fault lastFault_;
    std::vector<SegmentId> closed_;
};

/** A manager that never resolves anything. */
class BrokenManager : public SegmentManager
{
  public:
    BrokenManager() : SegmentManager("broken", ManagerMode::SameProcess) {}

    sim::Task<>
    handleFault(Kernel &, const Fault &) override
    {
        co_return;
    }
};

class KernelTest : public ::testing::Test
{
  protected:
    KernelTest() : kern(s, smallMachine()) {}

    /** Create a segment pre-loaded with @p n frames from segment 0. */
    SegmentId
    freeSegment(std::uint64_t n, const std::string &name = "free")
    {
        SegmentId id =
            kern.createSegmentNow(name, 4096, n, kSystemUser);
        // Draw from the top of the physical segment so tests that
        // reference low frame numbers directly stay undisturbed.
        physCursor_ -= n;
        kern.migratePagesNow(kPhysSegment, id, physCursor_, 0, n,
                             flag::kReadable | flag::kWritable, 0);
        return id;
    }

    sim::Simulation s;
    Kernel kern;
    PageIndex physCursor_ = smallMachine().memoryBytes / 4096;
};

TEST_F(KernelTest, BootState)
{
    const Segment &phys = kern.segment(kPhysSegment);
    EXPECT_EQ(phys.presentPages(), kern.memory().numFrames());
    EXPECT_EQ(phys.pageSize(), 4096u);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
    // Frames are in physical-address order.
    auto attrs = kern.getPageAttributesNow(kPhysSegment, 5, 2);
    EXPECT_EQ(attrs[0].physAddr, 5u * 4096);
    EXPECT_EQ(attrs[1].physAddr, 6u * 4096);
}

TEST_F(KernelTest, CreateSegmentValidation)
{
    EXPECT_THROW(kern.createSegmentNow("bad", 1000, 1, 0), KernelError);
    EXPECT_THROW(kern.createSegmentNow("bad", 2048, 1, 0), KernelError);
    SegmentId ok = kern.createSegmentNow("ok", 8192, 4, 7);
    EXPECT_EQ(kern.segment(ok).pageSize(), 8192u);
    EXPECT_EQ(kern.segment(ok).owner(), 7u);
    EXPECT_THROW(kern.segment(9999), KernelError);
}

TEST_F(KernelTest, MigrateMovesOwnership)
{
    SegmentId seg = kern.createSegmentNow("a", 4096, 16, kSystemUser);
    std::uint64_t moved = kern.migratePagesNow(
        kPhysSegment, seg, 10, 3, 2, flag::kReadable, 0);
    EXPECT_EQ(moved, 2u);

    EXPECT_EQ(kern.segment(seg).presentPages(), 2u);
    const PageEntry *e = kern.segment(seg).findPage(3);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->frame, 10u);
    EXPECT_EQ(e->flags & flag::kReadable, flag::kReadable);
    EXPECT_FALSE(kern.segment(kPhysSegment).findPage(10));
    EXPECT_EQ(kern.frameOwner(10).segment, seg);
    EXPECT_EQ(kern.frameOwner(10).page, 3u);

    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST_F(KernelTest, MigrateFlagEdits)
{
    SegmentId seg = freeSegment(4);
    SegmentId dst = kern.createSegmentNow("d", 4096, 4, kSystemUser);
    // Source pages have R|W; set Dirty, clear Writable on migration.
    kern.migratePagesNow(seg, dst, 0, 0, 1, flag::kDirty,
                         flag::kWritable);
    const PageEntry *e = kern.segment(dst).findPage(0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->flags,
              flag::kReadable | flag::kDirty);
}

TEST_F(KernelTest, MigrateErrors)
{
    SegmentId a = freeSegment(4, "a");
    SegmentId b = kern.createSegmentNow("b", 4096, 4, kSystemUser);

    // Missing source page.
    EXPECT_THROW(kern.migratePagesNow(b, a, 0, 0, 1, 0, 0), KernelError);
    // Busy destination.
    kern.migratePagesNow(a, b, 0, 0, 1, 0, 0);
    EXPECT_THROW(kern.migratePagesNow(a, b, 1, 0, 1, 0, 0), KernelError);
    // Beyond destination limit.
    EXPECT_THROW(kern.migratePagesNow(a, b, 1, 4, 1, 0, 0), KernelError);
    // Overlapping self-migration.
    EXPECT_THROW(kern.migratePagesNow(a, a, 1, 2, 2, 0, 0), KernelError);
    // Non-overlapping self-migration into the slot vacated above is
    // legal.
    EXPECT_EQ(kern.migratePagesNow(a, a, 1, 0, 1, 0, 0), 1u);

    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST_F(KernelTest, MigrateCoalesceToLargePage)
{
    // 4 x 4 KB contiguous, aligned frames form one 16 KB page.
    SegmentId big = kern.createSegmentNow("big", 16384, 4, kSystemUser);
    std::uint64_t ndst = kern.migratePagesNow(
        kPhysSegment, big, 8, 1, 4, flag::kReadable, 0);
    EXPECT_EQ(ndst, 1u);
    const PageEntry *e = kern.segment(big).findPage(1);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->frame, 8u);
    for (hw::FrameId f = 8; f < 12; ++f) {
        EXPECT_EQ(kern.frameOwner(f).segment, big);
        EXPECT_EQ(kern.frameOwner(f).page, 1u);
    }
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST_F(KernelTest, MigrateCoalesceRequiresAlignmentAndContiguity)
{
    SegmentId big = kern.createSegmentNow("big", 16384, 4, kSystemUser);
    // Misaligned start (frame 9).
    EXPECT_THROW(
        kern.migratePagesNow(kPhysSegment, big, 9, 0, 4, 0, 0),
        KernelError);

    // Break contiguity: pull frame 13 out of the middle, then shuffle
    // a replacement in, so pages 12..15 of physmem no longer map to
    // frames 12..15.
    SegmentId stash = kern.createSegmentNow("st", 4096, 2, kSystemUser);
    kern.migratePagesNow(kPhysSegment, stash, 13, 0, 1, 0, 0);
    kern.migratePagesNow(kPhysSegment, stash, 17, 1, 1, 0, 0);
    kern.migratePagesNow(stash, kPhysSegment, 1, 13, 1, 0, 0);
    // physmem page 13 now holds frame 17: not contiguous with 12.
    EXPECT_THROW(
        kern.migratePagesNow(kPhysSegment, big, 12, 0, 4, 0, 0),
        KernelError);
    // Size mismatch: 3 x 4 KB does not tile 16 KB pages.
    EXPECT_THROW(
        kern.migratePagesNow(kPhysSegment, big, 20, 0, 3, 0, 0),
        KernelError);
}

TEST_F(KernelTest, MigrateSplitLargePage)
{
    SegmentId big = kern.createSegmentNow("big", 16384, 4, kSystemUser);
    kern.migratePagesNow(kPhysSegment, big, 8, 0, 4, flag::kDirty, 0);
    SegmentId small = kern.createSegmentNow("sm", 4096, 8, kSystemUser);
    std::uint64_t ndst = kern.migratePagesNow(big, small, 0, 2, 1, 0, 0);
    EXPECT_EQ(ndst, 4u);
    for (int i = 0; i < 4; ++i) {
        const PageEntry *e = kern.segment(small).findPage(2 + i);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->frame, 8u + i);
        EXPECT_TRUE(e->flags & flag::kDirty);
    }
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST_F(KernelTest, ZeroFillOnMigrate)
{
    SegmentId seg = freeSegment(2);
    // Dirty a frame's contents, then reclaim and re-grant with zeroing.
    kern.writePageData(seg, 0, 0,
                       std::as_bytes(std::span("sekrit", 6)));
    SegmentId dst = kern.createSegmentNow("d", 4096, 2, kSystemUser);
    kern.migratePagesNow(seg, dst, 0, 0, 1,
                         flag::kZeroFill | flag::kReadable, 0);
    char buf[6] = {1, 1, 1, 1, 1, 1};
    kern.readPageData(dst, 0, 0,
                      std::as_writable_bytes(std::span(buf, 6)));
    for (char c : buf)
        EXPECT_EQ(c, 0);
    const PageEntry *e = kern.segment(dst).findPage(0);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->flags & flag::kZeroFill);
    EXPECT_EQ(kern.stats().zeroFills, 1u);
    EXPECT_EQ(kern.stats().bytesZeroed, 4096u);
}

TEST_F(KernelTest, ModifyFlagsSkipsMissingPages)
{
    SegmentId seg = freeSegment(2);
    // Pages 0 and 1 exist; 2 and 3 do not.
    std::uint64_t n =
        kern.modifyPageFlagsNow(seg, 0, 4, flag::kPinned, 0);
    EXPECT_EQ(n, 2u);
    EXPECT_TRUE(kern.segment(seg).findPage(0)->flags & flag::kPinned);
}

TEST_F(KernelTest, GetPageAttributesReportsPhysicalAddresses)
{
    SegmentId seg = kern.createSegmentNow("s", 4096, 8, kSystemUser);
    kern.migratePagesNow(kPhysSegment, seg, 42, 5, 1, flag::kDirty, 0);
    auto attrs = kern.getPageAttributesNow(seg, 4, 3);
    EXPECT_FALSE(attrs[0].present);
    EXPECT_TRUE(attrs[1].present);
    EXPECT_EQ(attrs[1].frame, 42u);
    EXPECT_EQ(attrs[1].physAddr, 42u * 4096);
    EXPECT_TRUE(attrs[1].flags & flag::kDirty);
    EXPECT_FALSE(attrs[2].present);
}

TEST_F(KernelTest, BindingValidation)
{
    SegmentId a = kern.createSegmentNow("a", 4096, 16, kSystemUser);
    SegmentId b = kern.createSegmentNow("b", 4096, 16, kSystemUser);
    SegmentId big = kern.createSegmentNow("c", 8192, 16, kSystemUser);

    kern.bindRegionNow(a, 0, 4, b, 0, flag::kProtMask);
    // Overlap rejected.
    EXPECT_THROW(kern.bindRegionNow(a, 2, 4, b, 8, flag::kProtMask),
                 KernelError);
    // Page-size mismatch rejected.
    EXPECT_THROW(kern.bindRegionNow(a, 8, 2, big, 0, flag::kProtMask),
                 KernelError);
    // Self-binding rejected.
    EXPECT_THROW(kern.bindRegionNow(a, 8, 2, a, 0, flag::kProtMask),
                 KernelError);
    // Out-of-range rejected.
    EXPECT_THROW(kern.bindRegionNow(a, 14, 4, b, 0, flag::kProtMask),
                 KernelError);

    // A bound-to segment cannot be destroyed.
    EXPECT_THROW(runTask(s, kern.destroySegment(b)), KernelError);
    kern.unbindRegionNow(a, 0);
    runTask(s, kern.destroySegment(b));
}

TEST_F(KernelTest, ResolveFollowsBindingsAndOwnPagesOverride)
{
    SegmentId file = freeSegment(4, "file");
    SegmentId va = kern.createSegmentNow("va", 4096, 16, kSystemUser);
    kern.bindRegionNow(va, 8, 4, file, 0, flag::kProtMask);

    auto r = kern.resolve(va, 9);
    EXPECT_TRUE(r.present);
    EXPECT_EQ(r.seg, file);
    EXPECT_EQ(r.page, 1u);
    EXPECT_FALSE(r.viaCow);

    // With a copy-on-write binding, installing a page creates a
    // private shadow that overrides the binding.
    SegmentId cow = kern.createSegmentNow("cow", 4096, 8, kSystemUser);
    kern.bindRegionNow(cow, 0, 4, file, 0, flag::kProtMask, true);
    SegmentId extra = freeSegment(1, "extra");
    kern.migratePagesNow(extra, cow, 0, 1, 1, flag::kProtMask, 0);
    r = kern.resolve(cow, 1);
    EXPECT_EQ(r.seg, cow);
    EXPECT_EQ(r.page, 1u);
    EXPECT_FALSE(r.viaCow); // own page found before the binding
    r = kern.resolve(cow, 2);
    EXPECT_TRUE(r.viaCow);
    EXPECT_EQ(r.seg, file);

    // Unbound page resolves to not-present at the outer segment.
    r = kern.resolve(va, 1);
    EXPECT_FALSE(r.present);
    EXPECT_EQ(r.seg, va);
}

TEST_F(KernelTest, MigrateThroughBoundRegionOperatesOnTarget)
{
    // Figure 1: migrating to a VA address covered by a bound region
    // effectively migrates into the bound segment.
    SegmentId data = kern.createSegmentNow("data", 4096, 8, kSystemUser);
    SegmentId va = kern.createSegmentNow("va", 4096, 32, kSystemUser);
    kern.bindRegionNow(va, 16, 8, data, 0, flag::kProtMask);

    SegmentId free_seg = freeSegment(1);
    kern.migratePagesNow(free_seg, va, 0, 18, 1, flag::kProtMask, 0);
    EXPECT_EQ(kern.segment(va).presentPages(), 0u);
    EXPECT_TRUE(kern.segment(data).findPage(2));
}

TEST_F(KernelTest, FaultDeliveredToManagerAndResolved)
{
    SegmentId free_seg = freeSegment(8);
    TestManager mgr(ManagerMode::SameProcess, free_seg);
    SegmentId seg =
        kern.createSegmentNow("app", 4096, 16, kSystemUser, &mgr);

    Process p("app", 1);
    runTask(s, kern.touchSegment(p, seg, 7, AccessType::Write));

    EXPECT_EQ(mgr.calls(), 1u);
    EXPECT_EQ(mgr.lastFault().type, FaultType::MissingPage);
    EXPECT_EQ(mgr.lastFault().segment, seg);
    EXPECT_EQ(mgr.lastFault().page, 7u);
    EXPECT_EQ(mgr.lastFault().access, AccessType::Write);
    EXPECT_EQ(p.faults(), 1u);

    const PageEntry *e = kern.segment(seg).findPage(7);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->flags & flag::kReferenced);
    EXPECT_TRUE(e->flags & flag::kDirty);

    // Second access: no new fault.
    runTask(s, kern.touchSegment(p, seg, 7, AccessType::Read));
    EXPECT_EQ(mgr.calls(), 1u);
}

TEST_F(KernelTest, ReadDoesNotSetDirty)
{
    SegmentId free_seg = freeSegment(8);
    TestManager mgr(ManagerMode::SameProcess, free_seg);
    SegmentId seg =
        kern.createSegmentNow("app", 4096, 16, kSystemUser, &mgr);
    Process p("app", 1);
    runTask(s, kern.touchSegment(p, seg, 0, AccessType::Read));
    const PageEntry *e = kern.segment(seg).findPage(0);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->flags & flag::kReferenced);
    EXPECT_FALSE(e->flags & flag::kDirty);
}

TEST_F(KernelTest, ProtectionFaultDelivered)
{
    SegmentId free_seg = freeSegment(8);
    TestManager mgr(ManagerMode::SameProcess, free_seg);
    SegmentId seg =
        kern.createSegmentNow("app", 4096, 16, kSystemUser, &mgr);
    Process p("app", 1);
    runTask(s, kern.touchSegment(p, seg, 0, AccessType::Write));

    // Revoke all access (reference-sampling style), then read.
    kern.modifyPageFlagsNow(seg, 0, 1, 0,
                            flag::kReadable | flag::kWritable);
    runTask(s, kern.touchSegment(p, seg, 0, AccessType::Read));
    EXPECT_EQ(mgr.lastFault().type, FaultType::Protection);
    EXPECT_EQ(kern.stats().protectionFaults, 1u);
}

TEST_F(KernelTest, CopyOnWriteFault)
{
    // file segment with known content; data segment bound COW to it.
    SegmentId file = freeSegment(4, "file");
    const char msg[] = "original page data";
    kern.writePageData(file, 2, 0,
                       std::as_bytes(std::span(msg, sizeof(msg))));

    SegmentId free_seg = freeSegment(8);
    TestManager mgr(ManagerMode::SameProcess, free_seg);
    SegmentId data =
        kern.createSegmentNow("data", 4096, 4, kSystemUser, &mgr);
    kern.bindRegionNow(data, 0, 4, file, 0, flag::kProtMask, true);

    Process p("app", 1);
    // Reads go straight through to the file pages: no fault.
    runTask(s, kern.touchSegment(p, data, 2, AccessType::Read));
    EXPECT_EQ(mgr.calls(), 0u);

    // A write triggers a copy-on-write fault on the data segment.
    runTask(s, kern.touchSegment(p, data, 2, AccessType::Write));
    EXPECT_EQ(mgr.lastFault().type, FaultType::CopyOnWrite);
    EXPECT_EQ(mgr.lastFault().segment, data);
    EXPECT_EQ(mgr.lastFault().page, 2u);
    EXPECT_EQ(mgr.lastFault().cowSource, file);
    EXPECT_EQ(mgr.lastFault().cowSourcePage, 2u);
    EXPECT_EQ(kern.stats().cowFaults, 1u);

    // The kernel copied the data into the private page.
    const PageEntry *e = kern.segment(data).findPage(2);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->flags & flag::kDirty);
    char buf[sizeof(msg)] = {};
    kern.readPageData(data, 2, 0,
                      std::as_writable_bytes(
                          std::span(buf, sizeof(buf))));
    EXPECT_STREQ(buf, msg);

    // Writing the private copy does not disturb the file page.
    kern.writePageData(data, 2, 0,
                       std::as_bytes(std::span("XX", 2)));
    kern.readPageData(file, 2, 0,
                      std::as_writable_bytes(
                          std::span(buf, sizeof(buf))));
    EXPECT_STREQ(buf, msg);
}

TEST_F(KernelTest, RegionProtectionViolationIsHardError)
{
    SegmentId file = freeSegment(4, "file");
    SegmentId va = kern.createSegmentNow("va", 4096, 4, kSystemUser);
    kern.bindRegionNow(va, 0, 4, file, 0, flag::kReadable);
    Process p("app", 1);
    runTask(s, kern.touchSegment(p, va, 0, AccessType::Read));
    EXPECT_THROW(
        runTask(s, kern.touchSegment(p, va, 0, AccessType::Write)),
        KernelError);
}

TEST_F(KernelTest, UnresolvedFaultLoopsThenThrows)
{
    BrokenManager mgr;
    SegmentId seg =
        kern.createSegmentNow("app", 4096, 4, kSystemUser, &mgr);
    Process p("app", 1);
    EXPECT_THROW(
        runTask(s, kern.touchSegment(p, seg, 0, AccessType::Read)),
        KernelError);
    EXPECT_GT(mgr.calls(), 1u);
}

TEST_F(KernelTest, FaultWithoutManagerThrows)
{
    SegmentId seg = kern.createSegmentNow("app", 4096, 4, kSystemUser);
    Process p("app", 1);
    EXPECT_THROW(
        runTask(s, kern.touchSegment(p, seg, 0, AccessType::Read)),
        KernelError);
}

TEST_F(KernelTest, DestroyNotifiesManagerAndSweepsFrames)
{
    SegmentId free_seg = freeSegment(8);
    TestManager mgr(ManagerMode::SameProcess, free_seg);
    SegmentId seg =
        kern.createSegmentNow("app", 4096, 16, kSystemUser, &mgr);
    Process p("app", 1);
    runTask(s, kern.touchSegment(p, seg, 0, AccessType::Write));
    runTask(s, kern.touchSegment(p, seg, 1, AccessType::Write));

    std::uint64_t phys_before = kern.physSegmentFrames();
    runTask(s, kern.destroySegment(seg));
    EXPECT_EQ(mgr.closed().size(), 1u);
    EXPECT_EQ(mgr.closed()[0], seg);
    EXPECT_FALSE(kern.segmentExists(seg));
    // TestManager does not reclaim, so the sweep returned both frames.
    EXPECT_EQ(kern.physSegmentFrames(), phys_before + 2);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST_F(KernelTest, DestroySurvivesManagerCrashInSegmentClosed)
{
    // segmentClosed dies partway through: the kernel contains the
    // crash and the sweep still returns every frame the manager left
    // behind to the physical segment.
    class CrashingCloseManager : public TestManager
    {
      public:
        using TestManager::TestManager;

        sim::Task<>
        segmentClosed(Kernel &k, SegmentId) override
        {
            co_await k.simulation().delay(usec(10));
            throw std::runtime_error("manager died in segmentClosed");
        }
    };

    SegmentId free_seg = freeSegment(8);
    CrashingCloseManager mgr(ManagerMode::SameProcess, free_seg);
    SegmentId seg =
        kern.createSegmentNow("app", 4096, 16, kSystemUser, &mgr);
    Process p("app", 1);
    runTask(s, kern.touchSegment(p, seg, 0, AccessType::Write));
    runTask(s, kern.touchSegment(p, seg, 3, AccessType::Write));

    std::uint64_t phys_before = kern.physSegmentFrames();
    runTask(s, kern.destroySegment(seg)); // must not rethrow
    EXPECT_FALSE(kern.segmentExists(seg));
    EXPECT_EQ(kern.physSegmentFrames(), phys_before + 2);
    EXPECT_EQ(kern.stats().closeFailures, 1u);
    EXPECT_EQ(mgr.crashes(), 1u);
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

TEST_F(KernelTest, CopyInOutRoundTripThroughAddressSpace)
{
    SegmentId free_seg = freeSegment(32);
    TestManager mgr(ManagerMode::SameProcess, free_seg);
    SegmentId heap =
        kern.createSegmentNow("heap", 4096, 16, kSystemUser, &mgr);
    SegmentId va =
        kern.createSegmentNow("va", 4096, 64, kSystemUser, &mgr);
    kern.bindRegionNow(va, 16, 16, heap, 0, flag::kProtMask);

    Process p("app", 1);
    p.setAddressSpace(va);

    // Spans two pages, starting mid-page, through the bound region.
    std::string text(5000, 'x');
    for (std::size_t i = 0; i < text.size(); ++i)
        text[i] = static_cast<char>('a' + i % 26);
    std::uint64_t addr = 16 * 4096 + 1234;
    runTask(s, kern.copyIn(p, addr,
                           std::as_bytes(std::span(text.data(),
                                                   text.size()))));
    std::string back(text.size(), 0);
    runTask(s, kern.copyOut(p, addr,
                            std::as_writable_bytes(
                                std::span(back.data(), back.size()))));
    EXPECT_EQ(back, text);
    // Data landed in the heap segment, not the VA segment.
    EXPECT_GT(kern.segment(heap).presentPages(), 0u);
    EXPECT_EQ(kern.segment(va).presentPages(), 0u);
}

// ----------------------------------------------------------------------
// Cost calibration (the basis of Table 1)
// ----------------------------------------------------------------------

TEST_F(KernelTest, MinimalFaultCostSameProcessIs107us)
{
    SegmentId free_seg = freeSegment(8);
    TestManager mgr(ManagerMode::SameProcess, free_seg);
    SegmentId seg =
        kern.createSegmentNow("app", 4096, 16, kSystemUser, &mgr);
    Process p("app", 1);

    sim::SimTime t0 = s.now();
    runTask(s, kern.touchSegment(p, seg, 0, AccessType::Write));
    EXPECT_EQ(s.now() - t0, usec(107));
}

TEST_F(KernelTest, MinimalFaultCostSeparateProcessIs379us)
{
    SegmentId free_seg = freeSegment(8);
    TestManager mgr(ManagerMode::SeparateProcess, free_seg);
    SegmentId seg =
        kern.createSegmentNow("app", 4096, 16, kSystemUser, &mgr);
    Process p("app", 1);

    sim::SimTime t0 = s.now();
    runTask(s, kern.touchSegment(p, seg, 0, AccessType::Write));
    EXPECT_EQ(s.now() - t0, usec(379));
}

TEST_F(KernelTest, SeparateProcessManagerSerializesFaults)
{
    SegmentId free_seg = freeSegment(8);
    TestManager mgr(ManagerMode::SeparateProcess, free_seg);
    SegmentId seg =
        kern.createSegmentNow("app", 4096, 16, kSystemUser, &mgr);
    Process p1("a", 1), p2("b", 1);

    s.spawn(kern.touchSegment(p1, seg, 0, AccessType::Write));
    s.spawn(kern.touchSegment(p2, seg, 1, AccessType::Write));
    s.run();
    // Both resolved; the second waited for the first manager pass.
    EXPECT_TRUE(kern.segment(seg).findPage(0));
    EXPECT_TRUE(kern.segment(seg).findPage(1));
    EXPECT_GT(s.now(), usec(379));
}

// ----------------------------------------------------------------------
// TLB modelling
// ----------------------------------------------------------------------

TEST(TlbModel, RefillsChargedOnMappedAccesses)
{
    sim::Simulation s;
    hw::MachineConfig m = smallMachine();
    m.modelTlb = true;
    m.tlbEntries = 4;
    Kernel kern(s, m);
    SegmentId seg = kern.createSegmentNow("hot", 4096, 16, kSystemUser);
    kern.migratePagesNow(kPhysSegment, seg, 0, 0, 8,
                         flag::kReadable | flag::kWritable, 0);
    Process p("app", 1);

    // First pass over 8 pages: all TLB misses (4-entry TLB).
    for (PageIndex pg = 0; pg < 8; ++pg)
        runTask(s, kern.touchSegment(p, seg, pg, AccessType::Read));
    EXPECT_EQ(kern.stats().tlbMisses, 8u);
    EXPECT_EQ(s.now(), 8 * m.tlbRefill);

    // A tight loop over 2 pages: mostly hits (the R3000-style TLB
    // replaces randomly, so allow a little churn).
    std::uint64_t misses = kern.stats().tlbMisses;
    for (int i = 0; i < 20; ++i) {
        runTask(s, kern.touchSegment(p, seg, i % 2, AccessType::Read));
    }
    EXPECT_LE(kern.stats().tlbMisses - misses, 6u);
}

TEST(TlbModel, DisabledByDefault)
{
    sim::Simulation s;
    Kernel kern(s, smallMachine());
    EXPECT_EQ(kern.tlb(), nullptr);
}

// ----------------------------------------------------------------------
// Additional edge cases
// ----------------------------------------------------------------------

TEST_F(KernelTest, BindingChainDepthLimited)
{
    std::vector<SegmentId> chain;
    for (int i = 0; i < 10; ++i) {
        chain.push_back(kern.createSegmentNow(
            "c" + std::to_string(i), 4096, 4, kSystemUser));
    }
    for (int i = 0; i + 1 < 10; ++i) {
        kern.bindRegionNow(chain[i], 0, 4, chain[i + 1], 0,
                           flag::kProtMask);
    }
    EXPECT_THROW(kern.resolve(chain[0], 0), KernelError);
}

TEST_F(KernelTest, UnbindRestoresFaultingBehaviour)
{
    SegmentId file = freeSegment(4, "file");
    SegmentId free_seg = freeSegment(8);
    TestManager mgr(ManagerMode::SameProcess, free_seg);
    SegmentId va = kern.createSegmentNow("va", 4096, 4, kSystemUser,
                                         &mgr);
    kern.bindRegionNow(va, 0, 4, file, 0, flag::kProtMask);
    Process p("app", 1);
    runTask(s, kern.touchSegment(p, va, 1, AccessType::Read));
    EXPECT_EQ(mgr.calls(), 0u); // satisfied through the binding

    kern.unbindRegionNow(va, 0);
    runTask(s, kern.touchSegment(p, va, 1, AccessType::Read));
    EXPECT_EQ(mgr.calls(), 1u); // now the VA segment faults
}

TEST_F(KernelTest, ZeroPageOperationsAreNoOps)
{
    SegmentId a = freeSegment(2, "a");
    EXPECT_EQ(kern.migratePagesNow(a, a, 0, 1, 0, 0, 0), 0u);
    EXPECT_EQ(kern.modifyPageFlagsNow(a, 0, 0, flag::kDirty, 0), 0u);
    EXPECT_TRUE(kern.getPageAttributesNow(a, 0, 0).empty());
}

TEST_F(KernelTest, ChargedOpsAdvanceSimulatedTime)
{
    SegmentId a = freeSegment(4, "a");
    SegmentId b = kern.createSegmentNow("b", 4096, 4, kSystemUser);

    sim::SimTime t0 = s.now();
    runTask(s, kern.migratePages(a, b, 0, 0, 2, 0, 0));
    // migrateBase + 2 * (perPage + mapInstall) = 30 + 2*22 = 74 us.
    EXPECT_EQ(s.now() - t0, usec(74));

    t0 = s.now();
    runTask(s, kern.modifyPageFlags(b, 0, 2, flag::kDirty, 0));
    EXPECT_EQ(s.now() - t0, usec(22 + 2 * 3));

    t0 = s.now();
    auto attrs = runTask(s, kern.getPageAttributes(b, 0, 2));
    EXPECT_EQ(s.now() - t0, usec(20 + 2 * 2));
    EXPECT_EQ(attrs.size(), 2u);
}

TEST_F(KernelTest, AccessBeyondSegmentLimitThrows)
{
    SegmentId seg = kern.createSegmentNow("tiny", 4096, 2, kSystemUser);
    Process p("app", 1);
    EXPECT_THROW(
        runTask(s, kern.touchSegment(p, seg, 2, AccessType::Read)),
        KernelError);
}

TEST_F(KernelTest, StatsTrackOperationCounts)
{
    SegmentId free_seg = freeSegment(8);
    TestManager mgr(ManagerMode::SameProcess, free_seg);
    SegmentId seg =
        kern.createSegmentNow("app", 4096, 16, kSystemUser, &mgr);
    Process p("app", 1);
    kern.stats().reset();
    runTask(s, kern.touchSegment(p, seg, 0, AccessType::Write));
    runTask(s, kern.touchSegment(p, seg, 1, AccessType::Write));
    EXPECT_EQ(kern.stats().faults, 2u);
    EXPECT_EQ(kern.stats().missingFaults, 2u);
    EXPECT_EQ(kern.stats().managerCalls, 2u);
    EXPECT_EQ(kern.stats().migrateCalls, 2u);
    EXPECT_EQ(kern.stats().pagesMigrated, 2u);
}

// ----------------------------------------------------------------------
// Property test: frame conservation under random migration traffic
// ----------------------------------------------------------------------

class MigrationChaos : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MigrationChaos, FrameInvariantHolds)
{
    sim::Simulation s;
    hw::MachineConfig m = smallMachine();
    m.memoryBytes = 1 << 20; // 256 frames
    Kernel kern(s, m);
    sim::Random rng(GetParam());

    std::vector<SegmentId> segs{kPhysSegment};
    for (int i = 0; i < 6; ++i) {
        segs.push_back(kern.createSegmentNow(
            "s" + std::to_string(i), 4096, 256, kSystemUser));
    }

    std::uint64_t attempts = 0, performed = 0;
    for (int iter = 0; iter < 2000; ++iter) {
        SegmentId src = segs[rng.below(segs.size())];
        SegmentId dst = segs[rng.below(segs.size())];
        PageIndex sp = rng.below(256);
        PageIndex dp = rng.below(256);
        std::uint64_t n = 1 + rng.below(4);
        ++attempts;
        try {
            kern.migratePagesNow(src, dst, sp, dp, n,
                                 rng.below(2) ? flag::kDirty : 0,
                                 rng.below(2) ? flag::kReferenced : 0);
            ++performed;
        } catch (const KernelError &) {
            // Invalid moves are expected; invariant must still hold.
        }
        if (iter % 100 == 0) {
            std::string why;
            ASSERT_TRUE(kern.checkFrameInvariant(&why))
                << "iter " << iter << ": " << why;
        }
    }
    std::string why;
    ASSERT_TRUE(kern.checkFrameInvariant(&why)) << why;
    // The workload must actually exercise migration.
    EXPECT_GT(performed, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationChaos,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace vpp::kernel
