/**
 * @file
 * PageTable correctness: a randomized differential test against
 * std::map (the seed's page-table representation), explicit boundary
 * cases around leaf edges, and the sorted-binding binary search on
 * Segment (adjacent regions, page 0, last page).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/page_table.h"
#include "core/segment.h"
#include "sim/random.h"

using namespace vpp;
using kernel::Binding;
using kernel::PageEntry;
using kernel::PageIndex;
using kernel::PageTable;
using kernel::Segment;

namespace {

/** Full-state comparison: size, ordered iteration, maxPage. */
void
expectEqual(const PageTable &t, const std::map<PageIndex, PageEntry> &m)
{
    ASSERT_EQ(t.size(), m.size());
    ASSERT_EQ(t.empty(), m.empty());
    auto mi = m.begin();
    for (const auto &[page, entry] : t) {
        ASSERT_NE(mi, m.end());
        EXPECT_EQ(page, mi->first);
        EXPECT_EQ(entry.frame, mi->second.frame);
        EXPECT_EQ(entry.flags, mi->second.flags);
        ++mi;
    }
    EXPECT_EQ(mi, m.end());
    if (m.empty())
        EXPECT_FALSE(t.maxPage().has_value());
    else
        EXPECT_EQ(t.maxPage(), std::optional(m.rbegin()->first));
}

TEST(PageTable, DifferentialRandomOps)
{
    sim::Random rng(0x9e3779b9);
    PageTable table;
    std::map<PageIndex, PageEntry> ref;

    auto randomPage = [&]() -> PageIndex {
        // Mix dense low pages, one-leaf-wide pages, and sparse high
        // pages so the directory grows holes.
        switch (rng.below(3)) {
          case 0: return rng.below(64);
          case 1: return rng.below(2 * PageTable::kLeafPages);
          default: return rng.below(200000);
        }
    };

    for (int op = 0; op < 40000; ++op) {
        PageIndex p = randomPage();
        switch (rng.below(4)) {
          case 0: { // insert or overwrite
            PageEntry e{static_cast<hw::FrameId>(rng.below(1 << 20)),
                        static_cast<std::uint32_t>(rng.below(256))};
            table[p] = e;
            ref[p] = e;
            break;
          }
          case 1: { // erase
            bool did = table.erase(p);
            EXPECT_EQ(did, ref.erase(p) == 1);
            break;
          }
          case 2: { // lookup
            const PageEntry *e = table.find(p);
            auto it = ref.find(p);
            ASSERT_EQ(e != nullptr, it != ref.end());
            if (e) {
                EXPECT_EQ(e->frame, it->second.frame);
                EXPECT_EQ(e->flags, it->second.flags);
            }
            break;
          }
          default: { // operator[] insert-if-absent semantics
            bool existed = ref.count(p) != 0;
            PageEntry &e = table[p];
            PageEntry &r = ref[p];
            if (!existed) {
                EXPECT_EQ(e.frame, hw::kInvalidFrame);
                EXPECT_EQ(e.flags, 0u);
            }
            EXPECT_EQ(e.frame, r.frame);
            break;
          }
        }
        if (op % 2000 == 1999)
            expectEqual(table, ref);
    }
    expectEqual(table, ref);

    table.clear();
    ref.clear();
    expectEqual(table, ref);
}

TEST(PageTable, LeafBoundaries)
{
    PageTable t;
    const PageIndex edges[] = {
        0,
        PageTable::kLeafPages - 1,
        PageTable::kLeafPages,
        3 * PageTable::kLeafPages - 1,
        63, 64, 127, 128, // bitmap word edges
    };
    std::uint32_t flag = 1;
    for (PageIndex p : edges)
        t[p] = PageEntry{static_cast<hw::FrameId>(p), flag++};
    EXPECT_EQ(t.size(), std::size(edges));
    for (PageIndex p : edges) {
        ASSERT_NE(t.find(p), nullptr) << p;
        EXPECT_EQ(t.find(p)->frame, p);
    }
    EXPECT_EQ(t.maxPage(), std::optional<PageIndex>(
                               3 * PageTable::kLeafPages - 1));
    // Ascending iteration across leaves and word boundaries.
    PageIndex prev = 0;
    bool first = true;
    std::uint64_t seen = 0;
    for (const auto &[page, entry] : t) {
        if (!first) {
            EXPECT_GT(page, prev);
        }
        prev = page;
        first = false;
        ++seen;
    }
    EXPECT_EQ(seen, std::size(edges));
    // Erasing the max exposes the next-lower page.
    EXPECT_TRUE(t.erase(3 * PageTable::kLeafPages - 1));
    EXPECT_FALSE(t.erase(3 * PageTable::kLeafPages - 1));
    EXPECT_EQ(t.maxPage(),
              std::optional<PageIndex>(PageTable::kLeafPages));
}

TEST(SegmentBindings, AdjacentRegionsResolveExactly)
{
    Segment seg(7, "s", 4096, 1000, 1);
    // Three back-to-back regions [0,10) [10,20) [20,30), inserted out
    // of order to exercise sorted insertion.
    Binding b2{10, 10, 102, 0, 0, false};
    Binding b1{0, 10, 101, 0, 0, false};
    Binding b3{20, 10, 103, 0, 0, false};
    seg.addBinding(b2);
    seg.addBinding(b3);
    seg.addBinding(b1);

    ASSERT_NE(seg.findBinding(0), nullptr); // page 0
    EXPECT_EQ(seg.findBinding(0)->target, 101u);
    EXPECT_EQ(seg.findBinding(9)->target, 101u);
    EXPECT_EQ(seg.findBinding(10)->target, 102u); // boundary flips
    EXPECT_EQ(seg.findBinding(19)->target, 102u);
    EXPECT_EQ(seg.findBinding(20)->target, 103u);
    EXPECT_EQ(seg.findBinding(29)->target, 103u);
    EXPECT_EQ(seg.findBinding(30), nullptr); // one past the last
    EXPECT_EQ(seg.findBinding(999), nullptr);

    // Sorted order survived the out-of-order inserts.
    ASSERT_EQ(seg.bindings().size(), 3u);
    EXPECT_EQ(seg.bindings()[0].start, 0u);
    EXPECT_EQ(seg.bindings()[1].start, 10u);
    EXPECT_EQ(seg.bindings()[2].start, 20u);
}

TEST(SegmentBindings, OverlapBoundaries)
{
    Segment seg(7, "s", 4096, 1000, 1);
    seg.addBinding(Binding{100, 50, 9, 0, 0, false}); // [100,150)

    EXPECT_FALSE(seg.overlapsBinding(0, 100));   // ends exactly at start
    EXPECT_TRUE(seg.overlapsBinding(0, 101));    // one page in
    EXPECT_TRUE(seg.overlapsBinding(99, 2));
    EXPECT_TRUE(seg.overlapsBinding(149, 1));    // last covered page
    EXPECT_FALSE(seg.overlapsBinding(150, 100)); // starts exactly at end
    EXPECT_TRUE(seg.overlapsBinding(120, 5));    // fully inside
    EXPECT_TRUE(seg.overlapsBinding(90, 200));   // fully covering

    // A region at page 0 is found by the search-back step.
    seg.addBinding(Binding{0, 1, 8, 0, 0, false});
    EXPECT_TRUE(seg.overlapsBinding(0, 1));
    EXPECT_FALSE(seg.overlapsBinding(1, 99));
}

TEST(SegmentBindings, TakeBindingAtExactStart)
{
    Segment seg(7, "s", 4096, 1000, 1);
    seg.addBinding(Binding{0, 5, 11, 0, 0, false});
    seg.addBinding(Binding{5, 5, 12, 0, 0, true});

    EXPECT_FALSE(seg.takeBindingAt(3).has_value()); // inside, not start
    auto b = seg.takeBindingAt(5);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->target, 12u);
    EXPECT_TRUE(b->copyOnWrite);
    EXPECT_EQ(seg.findBinding(5), nullptr);
    EXPECT_EQ(seg.findBinding(0)->target, 11u);

    auto b0 = seg.takeBindingAt(0); // page 0 start
    ASSERT_TRUE(b0.has_value());
    EXPECT_EQ(b0->target, 11u);
    EXPECT_TRUE(seg.bindings().empty());
}

} // namespace
