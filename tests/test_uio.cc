/**
 * @file
 * Tests for the file server and the UIO block read/write interface,
 * including the cached-file access-time calibration (Table 1 rows 3-4).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "hw/disk.h"
#include "managers/default_mgr.h"
#include "managers/spcm.h"
#include "uio/block_io.h"
#include "uio/file_server.h"
#include "uio/paging.h"

namespace vpp::uio {
namespace {

using kernel::runTask;
using sim::usec;

TEST(FileServer, SparseReadWrite)
{
    sim::Simulation s;
    hw::Disk disk(s, sim::msec(16), 2.0);
    FileServer fs(s, disk, usec(200));

    FileId f = fs.createFile("data", 1 << 20);
    EXPECT_TRUE(fs.exists(f));
    EXPECT_EQ(fs.fileSize(f), 1u << 20);
    EXPECT_FALSE(fs.exists(f + 100));

    // Unwritten ranges read as zeroes.
    std::vector<std::byte> buf(100);
    fs.readNow(f, 12345, buf);
    for (auto b : buf)
        EXPECT_EQ(b, std::byte{0});

    // Writes round-trip, including across the 64 KB chunk boundary.
    std::string msg = "spanning the chunk boundary";
    std::uint64_t off = (64 << 10) - 10;
    fs.writeNow(f, off, std::as_bytes(std::span(msg.data(), msg.size())));
    std::vector<std::byte> back(msg.size());
    fs.readNow(f, off, back);
    EXPECT_EQ(std::memcmp(back.data(), msg.data(), msg.size()), 0);
}

TEST(FileServer, WriteExtendsSize)
{
    sim::Simulation s;
    hw::Disk disk(s, sim::msec(16), 2.0);
    FileServer fs(s, disk, usec(200));
    FileId f = fs.createFile("log", 0);
    std::string msg = "hello";
    fs.writeNow(f, 100, std::as_bytes(std::span(msg.data(), msg.size())));
    EXPECT_EQ(fs.fileSize(f), 105u);
}

TEST(FileServer, TimedAccessCostsDisk)
{
    sim::Simulation s;
    hw::Disk disk(s, sim::msec(16), 2.0);
    FileServer fs(s, disk, usec(200));
    FileId f = fs.createFile("data", 64 << 10);
    std::vector<std::byte> buf(4096);
    runTask(s, fs.readBlock(f, 0, buf));
    // request overhead + positioning + transfer
    EXPECT_EQ(s.now(), usec(200) + sim::msec(16) + usec(2048));
    EXPECT_EQ(disk.reads(), 1u);
}

TEST(FileServer, ShareAndAdoptAliasChunks)
{
    sim::Simulation s;
    hw::Disk disk(s, sim::msec(16), 2.0);
    FileServer fs(s, disk, usec(200));
    FileId f = fs.createFile("data", 1 << 20);

    // Unwritten ranges share as null (zero) without materialising.
    EXPECT_FALSE(fs.shareNow(f, 0, 4096));

    std::vector<std::byte> blob(4096, std::byte{0x42});
    fs.writeNow(f, 4096, blob);
    hw::BufRef ref = fs.shareNow(f, 4096, 4096);
    ASSERT_TRUE(ref);
    EXPECT_EQ(ref.data()[0], std::byte{0x42});
    EXPECT_GE(ref.refCount(), 2u); // aliases the stored chunk

    // Rewriting the file clones the chunk: the snapshot is stable.
    std::vector<std::byte> blob2(4096, std::byte{0x7F});
    fs.writeNow(f, 4096, blob2);
    EXPECT_EQ(ref.data()[0], std::byte{0x42});
    EXPECT_EQ(fs.shareNow(f, 4096, 4096).data()[0], std::byte{0x7F});

    // Adopting a buffer publishes it; adopting null stores zeroes.
    fs.adoptNow(f, 8192, 4096, ref);
    std::vector<std::byte> back(4096);
    fs.readNow(f, 8192, back);
    EXPECT_EQ(back[0], std::byte{0x42});
    fs.adoptNow(f, 4096, 4096, hw::BufRef());
    fs.readNow(f, 4096, back);
    EXPECT_EQ(back[0], std::byte{0});
}

TEST(Paging, RoundTripSharesBuffersAndIsolatesWrites)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20;
    kernel::Kernel kern(s, m);
    hw::Disk disk(s, sim::msec(16), 2.0);
    FileServer fs(s, disk, usec(200));
    FileId f = fs.createFile("rel", 4 * 4096);
    std::vector<std::byte> blob(4 * 4096, std::byte{0x5A});
    fs.writeNow(f, 0, blob);

    kernel::SegmentId seg = kern.createSegmentNow("cache", 4096, 4, 1);
    kern.migratePagesNow(kernel::kPhysSegment, seg, 0, 0, 4, 0, 0);

    std::int64_t live = hw::BufRef::threadLiveBytes();
    pageInNow(kern, fs, f, 0, seg, 0);
    // Page-in shares the file's chunk: no new host bytes.
    EXPECT_EQ(hw::BufRef::threadLiveBytes(), live);
    const kernel::PageEntry *e = kern.segment(seg).findPage(0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(kern.memory().peek(e->frame),
              fs.shareNow(f, 0, 4096).data());

    // A write to the cached page must not leak into the file bytes.
    std::vector<std::byte> dirty(8, std::byte{0x99});
    kern.writePageData(seg, 0, 0, dirty);
    std::vector<std::byte> filebytes(8);
    fs.readNow(f, 0, filebytes);
    EXPECT_EQ(filebytes[0], std::byte{0x5A});

    // Page-out publishes the dirty bytes back, again by reference.
    pageOutNow(kern, fs, f, 0, seg, 0);
    fs.readNow(f, 0, filebytes);
    EXPECT_EQ(filebytes[0], std::byte{0x99});
    EXPECT_EQ(kern.memory().peek(e->frame),
              fs.shareNow(f, 0, 4096).data());

    // A zero page pages out sparse: the file chunk is dropped.
    kern.memory().zero(kern.segment(seg).findPage(1)->frame);
    pageInNow(kern, fs, f, 2 * 4096, seg, 1);
    kern.memory().zero(kern.segment(seg).findPage(1)->frame);
    pageOutNow(kern, fs, f, 2 * 4096, seg, 1);
    EXPECT_FALSE(fs.shareNow(f, 2 * 4096, 4096));
    fs.readNow(f, 2 * 4096, filebytes);
    EXPECT_EQ(filebytes[0], std::byte{0});
}

TEST(Paging, ChargedPathMatchesBlockTiming)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20;
    kernel::Kernel kern(s, m);
    hw::Disk disk(s, sim::msec(16), 2.0);
    FileServer fs(s, disk, usec(200));
    FileId f = fs.createFile("rel", 4096);
    kernel::SegmentId seg = kern.createSegmentNow("cache", 4096, 1, 1);
    kern.migratePagesNow(kernel::kPhysSegment, seg, 0, 0, 1, 0, 0);

    runTask(s, pageIn(kern, fs, f, 0, seg, 0));
    // Same charge as readBlock: request overhead + seek + transfer.
    sim::Duration t1 = usec(200) + sim::msec(16) + usec(2048);
    EXPECT_EQ(s.now(), t1);

    runTask(s, pageOut(kern, fs, f, 0, seg, 0));
    // chargeCopy(4 KB) + the writeBlock charge on top.
    sim::Duration copy = static_cast<sim::Duration>(
        static_cast<double>(m.cost.copyPerKB) * 4);
    EXPECT_EQ(s.now(), t1 + copy + usec(200) + sim::msec(16) +
                           usec(2048));
}

/** Full V++ stack for block-I/O tests. */
class BlockIoTest : public ::testing::Test
{
  protected:
    BlockIoTest()
        : machine(makeMachine()), kern(s, machine),
          disk(s, machine.diskLatency, machine.diskBandwidthMBps),
          server(s, disk, usec(200)),
          spcm(kern, std::nullopt),
          ucds(kern, &spcm, server, reg), io(kern, reg),
          proc("app", 1)
    {
        ucds.initNow(4096, 512);
    }

    static hw::MachineConfig
    makeMachine()
    {
        hw::MachineConfig m = hw::decstation5000_200();
        m.memoryBytes = 16 << 20;
        return m;
    }

    sim::Simulation s;
    hw::MachineConfig machine;
    kernel::Kernel kern;
    hw::Disk disk;
    FileServer server;
    FileRegistry reg;
    mgr::SystemPageCacheManager spcm;
    mgr::DefaultSegmentManager ucds;
    BlockIo io;
    kernel::Process proc;
};

TEST_F(BlockIoTest, CachedRead4KCosts222us)
{
    FileId f = server.createFile("hot", 64 << 10);
    ucds.preloadFileNow(f);

    std::vector<std::byte> buf(4096);
    sim::SimTime t0 = s.now();
    std::uint64_t n = runTask(s, io.read(proc, f, 0, buf));
    EXPECT_EQ(n, 4096u);
    EXPECT_EQ(s.now() - t0, usec(222)); // Table 1: V++ Read 4KB
}

TEST_F(BlockIoTest, CachedWrite4KCosts203us)
{
    FileId f = server.createFile("hot", 64 << 10);
    ucds.preloadFileNow(f);

    std::vector<std::byte> buf(4096, std::byte{7});
    sim::SimTime t0 = s.now();
    std::uint64_t n = runTask(s, io.write(proc, f, 0, buf));
    EXPECT_EQ(n, 4096u);
    EXPECT_EQ(s.now() - t0, usec(203)); // Table 1: V++ Write 4KB
}

TEST_F(BlockIoTest, ReadRoundTripsData)
{
    FileId f = server.createFile("data", 32 << 10);
    std::vector<std::byte> content(32 << 10);
    for (std::size_t i = 0; i < content.size(); ++i)
        content[i] = static_cast<std::byte>(i * 31 % 251);
    server.writeNow(f, 0, content);
    ucds.preloadFileNow(f);

    // Read spanning several pages at an unaligned offset.
    std::vector<std::byte> buf(10000);
    std::uint64_t n = runTask(s, io.read(proc, f, 3000, buf));
    EXPECT_EQ(n, 10000u);
    EXPECT_EQ(std::memcmp(buf.data(), content.data() + 3000, 10000), 0);
}

TEST_F(BlockIoTest, ShortReadAtEof)
{
    FileId f = server.createFile("tiny", 5000);
    ucds.preloadFileNow(f);
    std::vector<std::byte> buf(4096);
    EXPECT_EQ(runTask(s, io.read(proc, f, 4096, buf)), 5000u - 4096);
    EXPECT_EQ(runTask(s, io.read(proc, f, 5000, buf)), 0u);
    EXPECT_EQ(runTask(s, io.read(proc, f, 9999, buf)), 0u);
}

TEST_F(BlockIoTest, ColdReadFaultsAndFetchesFromServer)
{
    FileId f = server.createFile("cold", 64 << 10);
    std::string msg = "from backing store";
    server.writeNow(f, 8192,
                    std::as_bytes(std::span(msg.data(), msg.size())));
    runTask(s, ucds.openFile(f));

    std::vector<std::byte> buf(msg.size());
    std::uint64_t faults_before = kern.stats().missingFaults;
    runTask(s, io.read(proc, f, 8192, buf));
    EXPECT_EQ(kern.stats().missingFaults, faults_before + 1);
    EXPECT_EQ(std::memcmp(buf.data(), msg.data(), msg.size()), 0);
    EXPECT_EQ(disk.reads(), 1u); // fetched exactly one block
    // Second read hits the cache: no disk.
    runTask(s, io.read(proc, f, 8192, buf));
    EXPECT_EQ(disk.reads(), 1u);
}

TEST_F(BlockIoTest, AppendAllocatesInSixteenKUnits)
{
    FileId f = server.createFile("out", 0);
    runTask(s, ucds.openFile(f));

    // Write 64 KB sequentially in 4 KB chunks: 16 pages needed, but
    // appends are allocated 4 pages at a time -> 4 manager calls.
    std::vector<std::byte> chunk(4096, std::byte{1});
    std::uint64_t calls_before = ucds.calls();
    for (int i = 0; i < 16; ++i)
        runTask(s, io.write(proc, f, i * 4096ull, chunk));
    EXPECT_EQ(ucds.calls() - calls_before, 4u);
    EXPECT_EQ(reg.sizeOf(f), 64u << 10);
}

TEST_F(BlockIoTest, WriteToUncachedFileThrows)
{
    FileId f = server.createFile("nocache", 4096);
    std::vector<std::byte> buf(16);
    EXPECT_THROW(runTask(s, io.write(proc, f, 0, buf)),
                 kernel::KernelError);
}

TEST_F(BlockIoTest, CloseWritesBackDirtyPagesAndFreesFrames)
{
    FileId f = server.createFile("wb", 16 << 10);
    ucds.preloadFileNow(f);
    std::vector<std::byte> data(4096, std::byte{0x5A});
    runTask(s, io.write(proc, f, 4096, data));

    std::uint64_t disk_writes_before = disk.writes();
    std::uint64_t free_before = ucds.freePages();
    runTask(s, ucds.closeFile(f));
    EXPECT_EQ(disk.writes(), disk_writes_before + 1); // one dirty page
    EXPECT_EQ(ucds.freePages(), free_before + 4);     // 16 KB returned
    EXPECT_FALSE(reg.isCached(f));

    // The dirty data reached the server.
    std::vector<std::byte> back(4096);
    server.readNow(f, 4096, back);
    EXPECT_EQ(back[100], std::byte{0x5A});

    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

} // namespace
} // namespace vpp::uio
