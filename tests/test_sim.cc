/**
 * @file
 * Unit tests for the discrete-event engine, coroutine tasks and
 * synchronisation primitives.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace vpp::sim {
namespace {

TEST(Time, Conversions)
{
    EXPECT_EQ(usec(1), 1000);
    EXPECT_EQ(msec(1), 1000000);
    EXPECT_EQ(sec(1), 1000000000);
    EXPECT_DOUBLE_EQ(toUsec(usec(107)), 107.0);
    EXPECT_DOUBLE_EQ(toMsec(msec(3.5)), 3.5);
    EXPECT_DOUBLE_EQ(toSec(sec(12)), 12.0);
}

TEST(Simulation, EventsRunInTimeOrder)
{
    Simulation s;
    std::vector<int> order;
    s.schedule(30, [&] { order.push_back(3); });
    s.schedule(10, [&] { order.push_back(1); });
    s.schedule(20, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), 30);
    EXPECT_EQ(s.eventsRun(), 3u);
}

TEST(Simulation, SameTimestampIsFifo)
{
    Simulation s;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        s.schedule(5, [&, i] { order.push_back(i); });
    s.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Simulation, ScheduleIntoPastThrows)
{
    Simulation s;
    s.schedule(10, [&s] {
        EXPECT_THROW(s.schedule(5, [] {}), SimPanic);
    });
    s.run();
}

TEST(Simulation, RunUntilStopsAtDeadline)
{
    Simulation s;
    int ran = 0;
    s.schedule(10, [&] { ++ran; });
    s.schedule(100, [&] { ++ran; });
    s.runUntil(50);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(s.now(), 50);
    s.run();
    EXPECT_EQ(ran, 2);
}

TEST(Task, DelayAdvancesClock)
{
    Simulation s;
    SimTime done_at = -1;
    s.spawn([](Simulation &sim, SimTime *at) -> Task<> {
        co_await sim.delay(usec(5));
        co_await sim.delay(usec(7));
        *at = sim.now();
    }(s, &done_at));
    s.run();
    EXPECT_EQ(done_at, usec(12));
}

TEST(Task, NestedTasksReturnValues)
{
    Simulation s;
    int result = 0;
    s.spawn([](Simulation &sim, int *out) -> Task<> {
        auto inner = [](Simulation &sm, int x) -> Task<int> {
            co_await sm.delay(10);
            co_return x * 2;
        };
        int a = co_await inner(sim, 21);
        int b = co_await inner(sim, a);
        *out = b;
    }(s, &result));
    s.run();
    EXPECT_EQ(result, 84);
}

TEST(Task, ExceptionPropagatesThroughAwait)
{
    Simulation s;
    bool caught = false;
    s.spawn([](Simulation &sim, bool *c) -> Task<> {
        auto boom = [](Simulation &sm) -> Task<> {
            co_await sm.delay(1);
            throw std::runtime_error("boom");
        };
        try {
            co_await boom(sim);
        } catch (const std::runtime_error &) {
            *c = true;
        }
    }(s, &caught));
    s.run();
    EXPECT_TRUE(caught);
}

TEST(Task, UncaughtRootErrorRethrownFromRun)
{
    Simulation s;
    s.spawn([](Simulation &sim) -> Task<> {
        co_await sim.delay(1);
        throw std::runtime_error("unhandled");
    }(s));
    EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(Task, LiveTaskCounting)
{
    Simulation s;
    EXPECT_EQ(s.liveTasks(), 0);
    s.spawn([](Simulation &sim) -> Task<> {
        co_await sim.delay(100);
    }(s));
    EXPECT_EQ(s.liveTasks(), 1);
    s.run();
    EXPECT_EQ(s.liveTasks(), 0);
}

TEST(Future, FulfilBeforeAwait)
{
    Simulation s;
    Promise<int> p(s);
    p.setValue(7);
    int got = 0;
    s.spawn([](Future<int> f, int *out) -> Task<> {
        *out = co_await f;
    }(p.future(), &got));
    s.run();
    EXPECT_EQ(got, 7);
}

TEST(Future, FulfilAfterAwaitWakesAllWaiters)
{
    Simulation s;
    Promise<int> p(s);
    int sum = 0;
    for (int i = 0; i < 3; ++i) {
        s.spawn([](Future<int> f, int *acc) -> Task<> {
            *acc += co_await f;
        }(p.future(), &sum));
    }
    s.schedule(50, [&] { p.setValue(10); });
    s.run();
    EXPECT_EQ(sum, 30);
}

TEST(Future, DoubleFulfilThrows)
{
    Simulation s;
    Promise<void> p(s);
    p.setValue();
    EXPECT_THROW(p.setValue(), SimPanic);
}

TEST(Future, ErrorPropagates)
{
    Simulation s;
    Promise<int> p(s);
    bool caught = false;
    s.spawn([](Future<int> f, bool *c) -> Task<> {
        try {
            co_await f;
        } catch (const std::runtime_error &) {
            *c = true;
        }
    }(p.future(), &caught));
    s.schedule(1, [&] {
        p.setError(std::make_exception_ptr(std::runtime_error("x")));
    });
    s.run();
    EXPECT_TRUE(caught);
}

TEST(Semaphore, LimitsConcurrency)
{
    Simulation s;
    Semaphore sem(s, 2);
    int active = 0;
    int peak = 0;
    for (int i = 0; i < 6; ++i) {
        s.spawn([](Simulation &sim, Semaphore &sm, int *act,
                   int *pk) -> Task<> {
            co_await sm.acquire();
            ++*act;
            *pk = std::max(*pk, *act);
            co_await sim.delay(usec(10));
            --*act;
            sm.release();
        }(s, sem, &active, &peak));
    }
    s.run();
    EXPECT_EQ(peak, 2);
    EXPECT_EQ(active, 0);
    EXPECT_EQ(s.now(), usec(30)); // 6 jobs, 2 wide, 10 us each
}

TEST(Semaphore, TryAcquire)
{
    Simulation s;
    Semaphore sem(s, 1);
    EXPECT_TRUE(sem.tryAcquire());
    EXPECT_FALSE(sem.tryAcquire());
    sem.release();
    EXPECT_TRUE(sem.tryAcquire());
}

TEST(SimMutex, MutualExclusion)
{
    Simulation s;
    SimMutex m(s);
    bool inside = false;
    int violations = 0;
    for (int i = 0; i < 4; ++i) {
        s.spawn([](Simulation &sim, SimMutex &mx, bool *in,
                   int *bad) -> Task<> {
            co_await mx.lock();
            if (*in)
                ++*bad;
            *in = true;
            co_await sim.delay(5);
            *in = false;
            mx.unlock();
        }(s, m, &inside, &violations));
    }
    s.run();
    EXPECT_EQ(violations, 0);
}

TEST(Condition, WaitAndNotify)
{
    Simulation s;
    Condition c(s);
    bool flag = false;
    int woke_at = -1;
    s.spawn([](Simulation &sim, Condition &cond, bool *f,
               int *at) -> Task<> {
        while (!*f)
            co_await cond.wait();
        *at = static_cast<int>(sim.now());
    }(s, c, &flag, &woke_at));
    s.schedule(42, [&] {
        flag = true;
        c.notifyAll();
    });
    s.run();
    EXPECT_EQ(woke_at, 42);
}

TEST(Channel, FifoDelivery)
{
    Simulation s;
    Channel<int> ch(s);
    std::vector<int> got;
    s.spawn([](Channel<int> &c, std::vector<int> *out) -> Task<> {
        for (int i = 0; i < 3; ++i)
            out->push_back(co_await c.recv());
    }(ch, &got));
    s.schedule(1, [&] { ch.send(10); });
    s.schedule(2, [&] {
        ch.send(20);
        ch.send(30);
    });
    s.run();
    EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Simulation, YieldRunsBehindQueuedPeers)
{
    Simulation s;
    std::vector<int> order;
    s.schedule(0, [&] { order.push_back(2); });
    // spawn() runs the coroutine body immediately; yield() then
    // queues its resumption behind the already-queued event.
    s.spawn([](Simulation &sim, std::vector<int> *ord) -> Task<> {
        ord->push_back(1);
        co_await sim.yield();
        ord->push_back(3);
    }(s, &order));
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(JoinAll, PropagatesFirstError)
{
    Simulation s;
    auto ok = [](Simulation &sim) -> Task<> {
        co_await sim.delay(usec(5));
    };
    auto bad = [](Simulation &sim) -> Task<> {
        co_await sim.delay(usec(1));
        throw std::runtime_error("subtask failed");
    };
    std::vector<Task<>> tasks;
    tasks.push_back(ok(s));
    tasks.push_back(bad(s));
    bool caught = false;
    s.spawn([](Simulation &sim, std::vector<Task<>> ts,
               bool *c) -> Task<> {
        try {
            co_await joinAll(sim, std::move(ts));
        } catch (const std::runtime_error &) {
            *c = true;
        }
    }(s, std::move(tasks), &caught));
    s.run();
    EXPECT_TRUE(caught);
}

TEST(JoinAll, EmptyListCompletesImmediately)
{
    Simulation s;
    bool done = false;
    s.spawn([](Simulation &sim, bool *d) -> Task<> {
        co_await joinAll(sim, {});
        *d = true;
    }(s, &done));
    s.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(s.now(), 0);
}

TEST(JoinAll, WaitsForAllAndKeepsTiming)
{
    Simulation s;
    int done = 0;
    auto job = [](Simulation &sim, Duration d, int *n) -> Task<> {
        co_await sim.delay(d);
        ++*n;
    };
    std::vector<Task<>> tasks;
    tasks.push_back(job(s, usec(10), &done));
    tasks.push_back(job(s, usec(30), &done));
    tasks.push_back(job(s, usec(20), &done));
    SimTime end = -1;
    s.spawn([](Simulation &sim, std::vector<Task<>> ts,
               SimTime *e) -> Task<> {
        co_await joinAll(sim, std::move(ts));
        *e = sim.now();
    }(s, std::move(tasks), &end));
    s.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(end, usec(30));
}

TEST(CpuPool, SixJobsOnTwoCpus)
{
    Simulation s;
    CpuPool pool(s, 2);
    for (int i = 0; i < 6; ++i) {
        s.spawn([](Simulation &, CpuPool &p) -> Task<> {
            co_await p.acquire();
            co_await p.compute(msec(1));
            p.release();
        }(s, pool));
    }
    s.run();
    EXPECT_EQ(s.now(), msec(3));
    EXPECT_EQ(pool.busyTime(), msec(6));
    EXPECT_DOUBLE_EQ(pool.utilization(), 1.0);
    EXPECT_EQ(pool.acquisitions(), 6u);
}

TEST(CpuGuard, ReleasesOnScopeExit)
{
    Simulation s;
    CpuPool pool(s, 1);
    s.spawn([](Simulation &sim, CpuPool &p) -> Task<> {
        {
            CpuGuard g(p);
            co_await g.acquire();
            co_await sim.delay(10);
        }
        // Guard released; a second acquire must not deadlock.
        CpuGuard g2(p);
        co_await g2.acquire();
    }(s, pool));
    s.run();
    EXPECT_EQ(pool.idle(), 1);
}

TEST(Random, Determinism)
{
    Random a(123), b(123), c(124);
    bool all_equal = true;
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        auto x = a.next();
        if (x != b.next())
            all_equal = false;
        if (x != c.next())
            any_diff = true;
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff);
}

TEST(Random, UniformBounds)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        auto k = r.below(13);
        EXPECT_LT(k, 13u);
        auto b = r.between(-5, 5);
        EXPECT_GE(b, -5);
        EXPECT_LE(b, 5);
    }
}

TEST(Random, ExponentialMean)
{
    Random r(99);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(25.0);
    EXPECT_NEAR(sum / n, 25.0, 1.0);
}

TEST(Random, ZipfSkew)
{
    Random r(5);
    int low = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        if (r.zipf(100, 1.0) < 10)
            ++low;
    // With s=1, the first 10 of 100 ranks hold well over a third of
    // the mass.
    EXPECT_GT(low, n / 3);
}

TEST(Channel, SizeAndEmpty)
{
    Simulation s;
    Channel<int> ch(s);
    EXPECT_TRUE(ch.empty());
    ch.send(1);
    ch.send(2);
    EXPECT_EQ(ch.size(), 2u);
    int got = 0;
    s.spawn([](Channel<int> &c, int *out) -> Task<> {
        *out = co_await c.recv();
    }(ch, &got));
    s.run();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(ch.size(), 1u);
}

TEST(Stats, DistributionReset)
{
    Distribution d;
    d.add(5);
    d.add(10);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
    d.add(3);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(Stats, SampleAggregates)
{
    SampleStats st;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        st.add(v);
    EXPECT_EQ(st.count(), 8u);
    EXPECT_DOUBLE_EQ(st.mean(), 5.0);
    EXPECT_DOUBLE_EQ(st.min(), 2.0);
    EXPECT_DOUBLE_EQ(st.max(), 9.0);
    EXPECT_NEAR(st.stddev(), 2.138, 0.01);
}

TEST(Stats, DistributionPercentiles)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(i);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
    EXPECT_NEAR(d.percentile(0.5), 50.5, 0.01);
    EXPECT_NEAR(d.percentile(0.9), 90.1, 0.2);
    EXPECT_EQ(d.count(), 100u);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
}

} // namespace
} // namespace vpp::sim
