/**
 * @file
 * Unit tests for the parallel sweep runner (sim/runner.h): slot
 * ordering, work distribution, failure isolation and the per-job
 * heap accounting.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/mem_accounting.h"
#include "sim/runner.h"

using vpp::sim::Runner;

TEST(Runner, EmptySweepCompletes)
{
    Runner r(4);
    r.wait(); // nothing submitted: must not block
    EXPECT_EQ(r.jobCount(), 0u);
    EXPECT_EQ(r.failedCount(), 0u);
}

TEST(Runner, DefaultJobsIsPositive)
{
    EXPECT_GE(Runner::defaultJobs(), 1u);
}

TEST(Runner, SingleJobRunsAndFillsItsSlot)
{
    Runner r(2);
    int result = 0;
    std::size_t idx = r.submit([&result] { result = 42; });
    r.wait();
    EXPECT_EQ(idx, 0u);
    EXPECT_EQ(result, 42);
    EXPECT_TRUE(r.slot(0).done);
    EXPECT_FALSE(r.slot(0).failed());
    EXPECT_GE(r.slot(0).hostSeconds, 0.0);
}

TEST(Runner, MoreJobsThanThreadsAllRunInSubmissionSlots)
{
    const std::size_t jobs = 64;
    Runner r(2);
    std::vector<int> results(jobs, -1);
    for (std::size_t i = 0; i < jobs; ++i) {
        std::size_t idx =
            r.submit([&results, i] { results[i] = static_cast<int>(i); });
        EXPECT_EQ(idx, i);
    }
    r.wait();
    EXPECT_EQ(r.jobCount(), jobs);
    for (std::size_t i = 0; i < jobs; ++i) {
        EXPECT_EQ(results[i], static_cast<int>(i)) << "slot " << i;
        EXPECT_TRUE(r.slot(i).done) << "slot " << i;
    }
    EXPECT_EQ(r.failedCount(), 0u);
}

TEST(Runner, MoreThreadsThanJobs)
{
    Runner r(8);
    std::atomic<int> ran{0};
    for (int i = 0; i < 3; ++i)
        r.submit([&ran] { ++ran; });
    r.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(Runner, ExceptionSurfacesAsFailedSlotWithoutDeadlock)
{
    Runner r(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 9; ++i) {
        r.submit([&ran, i] {
            if (i % 3 == 1)
                throw std::runtime_error("job " + std::to_string(i) +
                                         " exploded");
            ++ran;
        });
    }
    r.wait(); // must return despite the throwing jobs
    EXPECT_EQ(r.failedCount(), 3u);
    EXPECT_EQ(ran.load(), 6);
    for (int i = 0; i < 9; ++i) {
        EXPECT_TRUE(r.slot(i).done);
        EXPECT_EQ(r.slot(i).failed(), i % 3 == 1) << "slot " << i;
    }
    EXPECT_THROW(std::rethrow_exception(r.slot(1).error),
                 std::runtime_error);

    // The pool survives failures: it keeps accepting work.
    bool again = false;
    r.submit([&again] { again = true; });
    r.wait();
    EXPECT_TRUE(again);
    EXPECT_EQ(r.failedCount(), 3u);
}

TEST(Runner, ProgressCallbackSeesEveryCompletion)
{
    Runner r(4);
    std::vector<std::size_t> doneCounts;
    r.setProgress([&doneCounts](std::size_t d, std::size_t) {
        doneCounts.push_back(d); // called under the pool lock
    });
    for (int i = 0; i < 10; ++i)
        r.submit([] {});
    r.wait();
    ASSERT_EQ(doneCounts.size(), 10u);
    for (std::size_t i = 0; i < doneCounts.size(); ++i)
        EXPECT_EQ(doneCounts[i], i + 1);
}

TEST(Runner, PeakHeapAccountingCoversJobAllocations)
{
    Runner r(1);
    r.submit([] {
        std::vector<std::uint8_t> big(8 << 20, 1);
        // touch so the optimiser keeps the allocation
        ASSERT_EQ(big[big.size() / 2], 1);
    });
    r.wait();
    const vpp::sim::RunSlot &s = r.slot(0);
    if (vpp::sim::mem::hooksActive())
        EXPECT_GE(s.peakHeapBytes, 8 << 20);
    else
        EXPECT_EQ(s.peakHeapBytes, -1);
}

TEST(Runner, StealingDrainsAnUnbalancedQueue)
{
    // All slow jobs land round-robin; with 4 threads and 8 jobs of
    // ~5 ms each, a no-stealing pool serialises each deque. We only
    // assert total completion well under the serial bound to show
    // the pool actually runs jobs concurrently when cores allow,
    // and always completes regardless.
    Runner r(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
        r.submit([&ran] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            ++ran;
        });
    }
    r.wait();
    EXPECT_EQ(ran.load(), 8);
}
