/**
 * @file
 * Tests for the application-specific segment managers: prefetching,
 * page coloring, discardable pages, and the database buffer manager.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "appmgr/coloring_mgr.h"
#include "appmgr/db_mgr.h"
#include "appmgr/discard_mgr.h"
#include "appmgr/placement_mgr.h"
#include "appmgr/prefetch_mgr.h"
#include "core/kernel.h"
#include "hw/disk.h"
#include "uio/file_server.h"

namespace vpp::appmgr {
namespace {

using kernel::AccessType;
using kernel::kSystemUser;
using kernel::runTask;
using sim::msec;
using sim::usec;
namespace flag = kernel::flag;

hw::MachineConfig
smallMachine()
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 32 << 20;
    return m;
}

class AppMgrTest : public ::testing::Test
{
  protected:
    AppMgrTest()
        : machine(smallMachine()), kern(s, machine),
          disk(s, machine.diskLatency, machine.diskBandwidthMBps),
          server(s, disk, usec(200)), spcm(kern, std::nullopt),
          proc("app", 1)
    {}

    sim::Simulation s;
    hw::MachineConfig machine;
    kernel::Kernel kern;
    hw::Disk disk;
    uio::FileServer server;
    mgr::SystemPageCacheManager spcm;
    kernel::Process proc;
};

// ----------------------------------------------------------------------
// PrefetchingManager
// ----------------------------------------------------------------------

TEST_F(AppMgrTest, PrefetchFetchesAhead)
{
    PrefetchingManager mgr(kern, &spcm, 1, server, 8);
    mgr.initNow(1024, 256);
    uio::FileId f = server.createFile("matrix", 64 << 10); // 16 pages
    kernel::SegmentId seg =
        kern.createSegmentNow("matrix", 4096, 16, 1, &mgr);
    mgr.attach(seg, f);

    // Touch page 0 and let prefetch finish.
    runTask(s, kern.touchSegment(proc, seg, 0, AccessType::Read));
    EXPECT_EQ(mgr.demandFills(), 1u);
    EXPECT_GT(mgr.prefetchedPages(), 0u);
    // Pages 1..8 arrived without demand faults.
    for (kernel::PageIndex p = 1; p <= 8; ++p)
        EXPECT_TRUE(kern.segment(seg).findPage(p)) << p;
}

TEST_F(AppMgrTest, PrefetchOverlapsComputeWithDisk)
{
    uio::FileId f = server.createFile("matrix", 256 << 10); // 64 pages
    auto scan = [](sim::Simulation &sim, kernel::Kernel &k,
                   kernel::Process &p, kernel::SegmentId seg,
                   sim::Duration compute_per_page) -> sim::Task<> {
        for (kernel::PageIndex pg = 0; pg < 64; ++pg) {
            co_await k.touchSegment(p, seg, pg, AccessType::Read);
            co_await sim.delay(compute_per_page);
        }
    };

    // Without read-ahead: every page is a demand fault.
    PrefetchingManager cold(kern, &spcm, 1, server, 0);
    cold.initNow(1024, 128);
    kernel::SegmentId seg0 =
        kern.createSegmentNow("m0", 4096, 64, 1, &cold);
    cold.attach(seg0, f);
    sim::SimTime t0 = s.now();
    runTask(s, scan(s, kern, proc, seg0, msec(20)));
    sim::Duration without = s.now() - t0;

    // With read-ahead: disk latency overlaps the 20 ms of compute.
    PrefetchingManager warm(kern, &spcm, 1, server, 8);
    warm.initNow(1024, 128);
    kernel::SegmentId seg1 =
        kern.createSegmentNow("m1", 4096, 64, 1, &warm);
    warm.attach(seg1, f);
    t0 = s.now();
    runTask(s, scan(s, kern, proc, seg1, msec(20)));
    sim::Duration with = s.now() - t0;

    EXPECT_LT(with, without * 3 / 4);
    EXPECT_GT(warm.prefetchedPages(), 40u);
}

TEST_F(AppMgrTest, PrefetchedDataIsCorrect)
{
    PrefetchingManager mgr(kern, &spcm, 1, server, 4);
    mgr.initNow(1024, 64);
    uio::FileId f = server.createFile("data", 32 << 10);
    std::vector<std::byte> content(32 << 10);
    for (std::size_t i = 0; i < content.size(); ++i)
        content[i] = static_cast<std::byte>((i / 4096 + i) % 251);
    server.writeNow(f, 0, content);

    kernel::SegmentId seg =
        kern.createSegmentNow("data", 4096, 8, 1, &mgr);
    mgr.attach(seg, f);
    for (kernel::PageIndex p = 0; p < 8; ++p)
        runTask(s, kern.touchSegment(proc, seg, p, AccessType::Read));

    std::vector<std::byte> page(4096);
    for (kernel::PageIndex p = 0; p < 8; ++p) {
        kern.readPageData(seg, p, 0, page);
        EXPECT_EQ(std::memcmp(page.data(), content.data() + p * 4096,
                              4096),
                  0)
            << "page " << p;
    }
    std::string why;
    EXPECT_TRUE(kern.checkFrameInvariant(&why)) << why;
}

// ----------------------------------------------------------------------
// ColoringManager
// ----------------------------------------------------------------------

TEST_F(AppMgrTest, ColoredFramesMatchPageColor)
{
    const std::uint32_t colors = 16;
    ColoringManager mgr(kern, &spcm, 1, colors);
    mgr.initNow(1024, 64);
    kernel::SegmentId seg =
        kern.createSegmentNow("array", 4096, 64, 1, &mgr);

    for (kernel::PageIndex p = 0; p < 48; ++p)
        runTask(s, kern.touchSegment(proc, seg, p, AccessType::Write));

    auto attrs = kern.getPageAttributesNow(seg, 0, 48);
    std::uint64_t matched = 0;
    for (const auto &a : attrs) {
        ASSERT_TRUE(a.present);
        if (a.frame % colors == a.page % colors)
            ++matched;
    }
    // With SPCM color grants available, every page gets its color.
    EXPECT_EQ(matched, 48u);
    EXPECT_EQ(mgr.colorMisses(), 0u);
}

TEST_F(AppMgrTest, ColoringFallsBackWhenColorExhausted)
{
    // Tiny machine: 64 frames, 16 colors -> 4 frames per color.
    hw::MachineConfig m = smallMachine();
    m.memoryBytes = 64 * 4096;
    kernel::Kernel k2(s, m);
    mgr::SystemPageCacheManager spcm2(k2, std::nullopt);
    ColoringManager mgr(k2, &spcm2, 1, 16);
    mgr.initNow(64, 16);
    kernel::SegmentId seg =
        k2.createSegmentNow("array", 4096, 128, 1, &mgr);
    // Demand 8 pages of color 0: only 4 frames of color 0 exist.
    for (kernel::PageIndex i = 0; i < 8; ++i) {
        runTask(s, k2.touchSegment(proc, seg, i * 16,
                                   AccessType::Write));
    }
    EXPECT_GT(mgr.colorMisses(), 0u);
    EXPECT_EQ(k2.segment(seg).presentPages(), 8u);
}

// ----------------------------------------------------------------------
// DiscardableManager
// ----------------------------------------------------------------------

TEST_F(AppMgrTest, GarbagePagesReclaimWithoutWriteback)
{
    uio::FileId swap = server.createFile("swap", 0);
    DiscardableManager mgr(kern, &spcm, 1, server, swap);
    mgr.initNow(1024, 64);
    kernel::SegmentId heap =
        kern.createSegmentNow("heap", 4096, 32, 1, &mgr);

    for (kernel::PageIndex p = 0; p < 8; ++p)
        runTask(s, kern.touchSegment(proc, heap, p, AccessType::Write));
    runTask(s, mgr.markGarbage(heap, 0, 8));

    std::uint64_t disk_writes = disk.writes();
    for (kernel::PageIndex p = 0; p < 8; ++p)
        runTask(s, mgr.reclaimPage(kern, heap, p));
    EXPECT_EQ(disk.writes(), disk_writes); // nothing written back
    EXPECT_EQ(mgr.writeBacks(), 0u);
}

TEST_F(AppMgrTest, ConventionalModeWritesBackAndZeroes)
{
    uio::FileId swap = server.createFile("swap", 0);
    DiscardableManager mgr(kern, &spcm, 1, server, swap);
    mgr.conventional(true);
    mgr.initNow(1024, 64);
    kernel::SegmentId heap =
        kern.createSegmentNow("heap", 4096, 32, 1, &mgr);

    std::uint64_t zeroes0 = kern.stats().zeroFills;
    for (kernel::PageIndex p = 0; p < 8; ++p)
        runTask(s, kern.touchSegment(proc, heap, p, AccessType::Write));
    // Conventional kernels zero-fill every allocation.
    EXPECT_EQ(kern.stats().zeroFills - zeroes0, 8u);

    runTask(s, mgr.markGarbage(heap, 0, 8));
    std::uint64_t disk_writes = disk.writes();
    for (kernel::PageIndex p = 0; p < 8; ++p)
        runTask(s, mgr.reclaimPage(kern, heap, p));
    // The discardable hint is ignored: everything is written back.
    EXPECT_EQ(disk.writes() - disk_writes, 8u);
}

// ----------------------------------------------------------------------
// PlacementManager (DASH-style distributed memory)
// ----------------------------------------------------------------------

TEST_F(AppMgrTest, PlacementPutsPagesOnTheirHomeNode)
{
    hw::NumaTopology topo =
        hw::NumaTopology::dashLike(4, machine.memoryBytes);
    PlacementManager mgr(kern, &spcm, 1, topo);
    mgr.initNow(1024, 16);
    kernel::SegmentId array =
        kern.createSegmentNow("array", 4096, 64, 1, &mgr);
    for (int node = 0; node < 4; ++node)
        mgr.assign(array, node * 16, 16, node);

    for (kernel::PageIndex p = 0; p < 64; ++p)
        runTask(s, kern.touchSegment(proc, array, p,
                                     kernel::AccessType::Write));

    auto attrs = kern.getPageAttributesNow(array, 0, 64);
    for (const auto &a : attrs) {
        int want = static_cast<int>(a.page / 16);
        EXPECT_EQ(topo.nodeOf(a.physAddr), want) << "page " << a.page;
    }
    EXPECT_EQ(mgr.placementMisses(), 0u);
    EXPECT_EQ(mgr.placedLocally(), 64u);
}

TEST_F(AppMgrTest, PlacementFallsBackWhenNodeExhausted)
{
    // Tiny machine: 2 nodes x 32 frames.
    hw::MachineConfig m2 = smallMachine();
    m2.memoryBytes = 64 * 4096;
    kernel::Kernel k2(s, m2);
    mgr::SystemPageCacheManager spcm2(k2, std::nullopt);
    hw::NumaTopology topo =
        hw::NumaTopology::dashLike(2, m2.memoryBytes);
    PlacementManager mgr(k2, &spcm2, 1, topo);
    mgr.initNow(64, 8);
    kernel::SegmentId array =
        k2.createSegmentNow("array", 4096, 48, 1, &mgr);
    mgr.assign(array, 0, 48, 0); // everything wants node 0 (32 frames)
    for (kernel::PageIndex p = 0; p < 48; ++p)
        runTask(s, k2.touchSegment(proc, array, p,
                                   kernel::AccessType::Write));
    EXPECT_EQ(k2.segment(array).presentPages(), 48u);
    EXPECT_GT(mgr.placementMisses(), 0u);
}

TEST_F(AppMgrTest, NumaTopologyGeometry)
{
    hw::NumaTopology topo = hw::NumaTopology::dashLike(4, 64 << 20);
    EXPECT_EQ(topo.bytesPerNode, 16u << 20);
    EXPECT_EQ(topo.nodeOf(0), 0);
    EXPECT_EQ(topo.nodeOf((16 << 20)), 1);
    EXPECT_EQ(topo.nodeOf((64 << 20) - 1), 3);
    EXPECT_EQ(topo.accessCost(1, 17 << 20), topo.localAccess);
    EXPECT_EQ(topo.accessCost(0, 17 << 20), topo.remoteAccess);
}

// ----------------------------------------------------------------------
// DbSegmentManager
// ----------------------------------------------------------------------

TEST_F(AppMgrTest, RelationPagesFillFromFile)
{
    DbSegmentManager mgr(kern, &spcm, 1, server);
    mgr.initNow(2048, 256);
    uio::FileId f = server.createFile("accounts", 64 << 10);
    std::string row = "account 42: balance 1000";
    server.writeNow(f, 8192,
                    std::as_bytes(std::span(row.data(), row.size())));

    kernel::SegmentId rel =
        runTask(s, mgr.createRelation("accounts", f));
    runTask(s, kern.touchSegment(proc, rel, 2, AccessType::Read));

    char buf[64] = {};
    kern.readPageData(rel, 2, 0,
                      std::as_writable_bytes(
                          std::span(buf, row.size())));
    EXPECT_STREQ(buf, row.c_str());
    EXPECT_EQ(disk.reads(), 1u);
}

TEST_F(AppMgrTest, IndexPagesRegenerateByComputation)
{
    DbSegmentManager mgr(kern, &spcm, 1, server, 0.2);
    mgr.initNow(2048, 256);
    kernel::SegmentId idx =
        runTask(s, mgr.createIndex("btree", 16));

    std::uint64_t disk_reads = disk.reads();
    runTask(s, kern.touchSegment(proc, idx, 3, AccessType::Write));
    EXPECT_EQ(disk.reads(), disk_reads); // no I/O: computed
    EXPECT_EQ(mgr.indexPageRebuilds(), 1u);
    // Index pages are born discardable.
    EXPECT_TRUE(kern.segment(idx).findPage(3)->flags &
                flag::kDiscardable);
}

TEST_F(AppMgrTest, DiscardIndexFreesFramesWithoutIo)
{
    DbSegmentManager mgr(kern, &spcm, 1, server);
    mgr.initNow(2048, 256);
    kernel::SegmentId idx =
        runTask(s, mgr.createIndex("btree", 16));
    for (kernel::PageIndex p = 0; p < 16; ++p)
        runTask(s, kern.touchSegment(proc, idx, p, AccessType::Write));

    std::uint64_t free0 = mgr.freePages();
    std::uint64_t writes0 = disk.writes();
    std::uint64_t freed = runTask(s, mgr.discardIndex(idx));
    EXPECT_EQ(freed, 16u);
    EXPECT_EQ(mgr.freePages(), free0 + 16);
    EXPECT_EQ(disk.writes(), writes0);
    EXPECT_EQ(mgr.indexDiscards(), 1u);

    // A later access regenerates the page on demand.
    runTask(s, kern.touchSegment(proc, idx, 5, AccessType::Read));
    EXPECT_GT(mgr.indexPageRebuilds(), 0u);
}

TEST_F(AppMgrTest, PinnedDirectoryPagesSurviveDiscard)
{
    DbSegmentManager mgr(kern, &spcm, 1, server);
    mgr.initNow(2048, 256);
    kernel::SegmentId idx =
        runTask(s, mgr.createIndex("btree", 16));
    for (kernel::PageIndex p = 0; p < 16; ++p)
        runTask(s, kern.touchSegment(proc, idx, p, AccessType::Write));
    runTask(s, mgr.pinPages(idx, 0, 2)); // root and first level

    runTask(s, mgr.discardIndex(idx));
    // reclaimRun refuses to move pinned pages? No: discard takes all
    // unpinned pages; pinned ones must survive.
    EXPECT_TRUE(kern.segment(idx).findPage(0));
    EXPECT_TRUE(kern.segment(idx).findPage(1));
    EXPECT_FALSE(kern.segment(idx).findPage(5));
}

TEST_F(AppMgrTest, ResidencyQuery)
{
    DbSegmentManager mgr(kern, &spcm, 1, server);
    mgr.initNow(2048, 256);
    kernel::SegmentId idx =
        runTask(s, mgr.createIndex("btree", 16));
    for (kernel::PageIndex p = 0; p < 4; ++p)
        runTask(s, kern.touchSegment(proc, idx, p, AccessType::Write));
    EXPECT_DOUBLE_EQ(runTask(s, mgr.residency(idx, 16)), 0.25);
}

TEST_F(AppMgrTest, AdaptToPressureShedsIndexFirst)
{
    // Market-enabled SPCM: income sustains only 2 MB.
    mgr::MarketParams params;
    params.chargePerMBSec = 1.0;
    params.grantHorizonSec = 1.0;
    params.savingsTaxPerSec = 0.0;
    kernel::Kernel k2(s, smallMachine());
    mgr::SystemPageCacheManager spcm2(k2, params);
    hw::Disk disk2(s, machine.diskLatency, machine.diskBandwidthMBps);
    uio::FileServer server2(s, disk2, usec(200));
    DbSegmentManager mgr(k2, &spcm2, 1, server2);
    spcm2.account(mgr.spcmClient()).incomeRate = 2.0;
    spcm2.deposit(mgr.spcmClient(), 3.0);
    mgr.initNow(2048, 512); // hold 2 MB

    kernel::SegmentId idx =
        runTask(s, mgr.createIndex("btree", 64));
    for (kernel::PageIndex p = 0; p < 64; ++p)
        runTask(s, k2.touchSegment(proc, idx, p, AccessType::Write));

    // Drop the income so current holdings become unaffordable.
    spcm2.account(mgr.spcmClient()).incomeRate = 1.0;
    spcm2.account(mgr.spcmClient()).balance = 0.0;
    std::uint64_t freed = runTask(s, mgr.adaptToPressure());
    EXPECT_GT(freed, 0u);
    EXPECT_EQ(mgr.indexDiscards(), 1u);
    // Frames actually went back to the system pool.
    EXPECT_LT(spcm2.account(mgr.spcmClient()).bytesHeld, 2u << 20);
}

} // namespace
} // namespace vpp::appmgr
