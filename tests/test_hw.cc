/**
 * @file
 * Unit tests for the machine model: physical memory, disk, cache and
 * TLB models, and the calibrated cost presets.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "hw/cache_model.h"
#include "hw/config.h"
#include "hw/disk.h"
#include "hw/physmem.h"
#include "hw/tlb.h"
#include "core/kernel.h"

namespace vpp::hw {
namespace {

using sim::usec;

TEST(MachineConfig, DecstationPreset)
{
    MachineConfig m = decstation5000_200();
    EXPECT_EQ(m.pageSize, 4096u);
    EXPECT_EQ(m.memoryBytes, 128ull << 20);
    EXPECT_EQ(m.frames(), (128ull << 20) / 4096);
    EXPECT_FALSE(m.resumeThroughKernel);
    // Zeroing one 4 KB page costs 75 us (paper §3.1).
    EXPECT_EQ(m.cost.pageZeroPerKB * 4, usec(75));
}

TEST(MachineConfig, InstructionsToTime)
{
    MachineConfig m = decstation5000_200();
    // 20 MIPS: 20 million instructions take one second.
    EXPECT_EQ(m.instructions(20e6), sim::sec(1));
    EXPECT_EQ(m.instructions(20.0), usec(1));
}

TEST(MachineConfig, Sgi4d380Preset)
{
    MachineConfig m = sgi4d380();
    EXPECT_EQ(m.ncpus, 8);
    EXPECT_DOUBLE_EQ(m.mips, 30.0);
}

TEST(PhysicalMemory, GeometryAndLazyAllocation)
{
    PhysicalMemory pm(1 << 20, 4096);
    EXPECT_EQ(pm.numFrames(), 256u);
    EXPECT_EQ(pm.frameSize(), 4096u);
    EXPECT_EQ(pm.allocatedDataBytes(), 0u);
    EXPECT_FALSE(pm.hasData(3));
    EXPECT_EQ(pm.peek(3), nullptr);

    std::byte *d = pm.write(3);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(pm.hasData(3));
    EXPECT_EQ(pm.allocatedDataBytes(), 4096u);
    // Fresh frames read as zero.
    for (int i = 0; i < 4096; ++i)
        EXPECT_EQ(d[i], std::byte{0});
}

TEST(PhysicalMemory, PhysicalAddresses)
{
    PhysicalMemory pm(1 << 20, 4096);
    EXPECT_EQ(pm.physAddr(0), 0u);
    EXPECT_EQ(pm.physAddr(10), 10u * 4096);
    EXPECT_EQ(pm.frameOf(10 * 4096 + 17), 10u);
}

TEST(PhysicalMemory, CopyAndZero)
{
    PhysicalMemory pm(1 << 20, 4096);
    std::memset(pm.write(1), 0xAB, 4096);
    pm.copyFrame(2, 1);
    EXPECT_EQ(pm.readOnly(2)[100], std::byte{0xAB});
    pm.zero(2);
    EXPECT_FALSE(pm.hasData(2));
    // Copy from a never-written frame zeroes the destination.
    pm.copyFrame(1, 5);
    EXPECT_EQ(pm.readOnly(1)[100], std::byte{0});
}

TEST(PhysicalMemory, CopyAliasesUntilWritten)
{
    PhysicalMemory pm(1 << 20, 4096);
    std::memset(pm.write(1), 0xAB, 4096);
    pm.copyFrame(2, 1);

    // The copy shares the source's bytes until someone writes.
    EXPECT_TRUE(pm.isShared(1));
    EXPECT_TRUE(pm.isShared(2));
    EXPECT_EQ(pm.peek(1), pm.peek(2));

    // Writing the copy breaks the sharing and leaves the source
    // untouched.
    pm.write(2)[100] = std::byte{0xCD};
    EXPECT_FALSE(pm.isShared(1));
    EXPECT_FALSE(pm.isShared(2));
    EXPECT_NE(pm.peek(1), pm.peek(2));
    EXPECT_EQ(pm.readOnly(1)[100], std::byte{0xAB});
    EXPECT_EQ(pm.readOnly(2)[100], std::byte{0xCD});
    EXPECT_EQ(pm.readOnly(2)[101], std::byte{0xAB});
}

TEST(PhysicalMemory, WriteSourceOfCopyPreservesCopy)
{
    PhysicalMemory pm(1 << 20, 4096);
    std::memset(pm.write(1), 0x11, 4096);
    pm.copyFrame(2, 1);
    // Writing the *source* must not mutate the copy either.
    pm.write(1)[0] = std::byte{0x22};
    EXPECT_EQ(pm.readOnly(2)[0], std::byte{0x11});
    EXPECT_EQ(pm.readOnly(1)[0], std::byte{0x22});
}

TEST(PhysicalMemory, SharedBytesReleasedWithLastReference)
{
    std::int64_t before = BufRef::threadLiveBytes();
    {
        PhysicalMemory pm(1 << 20, 4096);
        pm.write(0);
        for (FrameId f = 1; f < 64; ++f)
            pm.copyFrame(f, 0);
        // 64 frames alias one 4 KB buffer on the host.
        EXPECT_EQ(BufRef::threadLiveBytes() - before, 4096);
        // ...but each counts as committed simulated memory.
        EXPECT_EQ(pm.allocatedDataBytes(), 64u * 4096);
        // Dropping all but one alias frees nothing; the buffer dies
        // with its last reference.
        for (FrameId f = 0; f < 63; ++f)
            pm.zero(f);
        EXPECT_EQ(BufRef::threadLiveBytes() - before, 4096);
        EXPECT_EQ(pm.allocatedDataBytes(), 4096u);
        pm.zero(63);
        EXPECT_EQ(BufRef::threadLiveBytes(), before);
        EXPECT_EQ(pm.allocatedDataBytes(), 0u);
    }
    EXPECT_EQ(BufRef::threadLiveBytes(), before);
}

TEST(PhysicalMemory, AllocatedBytesExactThroughAdoptAndRanges)
{
    PhysicalMemory pm(64 * 4096, 4096);
    EXPECT_EQ(pm.allocatedDataBytes(), 0u);

    pm.write(0);
    pm.write(1);
    EXPECT_EQ(pm.allocatedDataBytes(), 2u * 4096);

    pm.copyRange(8, 0, 2);
    EXPECT_EQ(pm.allocatedDataBytes(), 4u * 4096);

    // Copying zero frames over committed ones uncommits them.
    pm.copyRange(8, 16, 2);
    EXPECT_EQ(pm.allocatedDataBytes(), 2u * 4096);

    // Adopt commits; adopting null uncommits; re-adopting over a
    // committed frame is net zero.
    pm.adoptFrame(5, pm.shareFrame(0));
    EXPECT_EQ(pm.allocatedDataBytes(), 3u * 4096);
    pm.adoptFrame(5, pm.shareFrame(1));
    EXPECT_EQ(pm.allocatedDataBytes(), 3u * 4096);
    pm.adoptFrame(5, BufRef());
    EXPECT_EQ(pm.allocatedDataBytes(), 2u * 4096);
    EXPECT_EQ(pm.shareFrame(5).refCount(), 0u);

    pm.zeroRange(0, 64);
    EXPECT_EQ(pm.allocatedDataBytes(), 0u);
}

TEST(PhysicalMemory, AdoptRejectsWrongSize)
{
    PhysicalMemory pm(1 << 20, 4096);
    EXPECT_THROW(pm.adoptFrame(0, BufRef::allocate(100)),
                 std::invalid_argument);
}

TEST(PhysicalMemory, ReadOnlyViewOfZeroFrameIsZero)
{
    PhysicalMemory pm(1 << 20, 4096);
    const std::byte *z = pm.readOnly(7);
    ASSERT_NE(z, nullptr);
    for (int i = 0; i < 4096; ++i)
        EXPECT_EQ(z[i], std::byte{0});
    // The zero view never commits the frame.
    EXPECT_FALSE(pm.hasData(7));
    EXPECT_EQ(pm.allocatedDataBytes(), 0u);
}

TEST(PhysicalMemory, ThreadCommittedCountersTrackPeak)
{
    resetThreadCommittedPeak();
    std::int64_t base = threadCommittedBytes();
    {
        PhysicalMemory pm(1 << 20, 4096);
        pm.write(0);
        pm.write(1);
        pm.zero(0);
        EXPECT_EQ(threadCommittedBytes() - base, 4096);
        EXPECT_EQ(threadPeakCommittedBytes() - base, 2 * 4096);
    }
    // Destroying the memory uncommits everything it still held.
    EXPECT_EQ(threadCommittedBytes(), base);
    EXPECT_EQ(threadPeakCommittedBytes() - base, 2 * 4096);
}

TEST(PhysicalMemory, BadGeometryRejected)
{
    EXPECT_THROW(PhysicalMemory(1 << 20, 3000), std::invalid_argument);
    EXPECT_THROW(PhysicalMemory((1 << 20) + 1, 4096),
                 std::invalid_argument);
    PhysicalMemory pm(1 << 20, 4096);
    EXPECT_THROW(pm.write(256), std::out_of_range);
}

TEST(Disk, LatencyPlusBandwidth)
{
    sim::Simulation s;
    Disk d(s, sim::msec(16), 2.0);
    // 4 KB at 2 MB/s is 2.048 ms of transfer on top of 16 ms.
    EXPECT_EQ(d.transferTime(4096), sim::msec(16) + sim::usec(2048));
    kernel::runTask(s, [](Disk &disk) -> sim::Task<> {
        co_await disk.read(4096);
        co_await disk.write(8192);
    }(d));
    EXPECT_EQ(d.reads(), 1u);
    EXPECT_EQ(d.writes(), 1u);
    EXPECT_EQ(d.bytesRead(), 4096u);
    EXPECT_EQ(d.bytesWritten(), 8192u);
}

TEST(Disk, RequestsSerialize)
{
    sim::Simulation s;
    Disk d(s, sim::msec(10), 1000.0); // transfer time negligible
    for (int i = 0; i < 4; ++i) {
        s.spawn([](Disk &disk) -> sim::Task<> {
            co_await disk.read(512);
        }(d));
    }
    s.run();
    // Four serialized requests take at least 4 x 10 ms.
    EXPECT_GE(s.now(), sim::msec(40));
}

TEST(CacheModel, DirectMappedConflicts)
{
    // 64 KB direct-mapped cache, 16 B lines, 4 KB pages -> 16 colors.
    CacheModel c(64 << 10, 16, 1, 4096);
    EXPECT_EQ(c.numColors(), 16u);

    // Two pages with the same color conflict on every alternating
    // access; two pages with different colors do not.
    PhysAddr a = 0;                  // color 0
    PhysAddr b = 16 * 4096;          // also color 0
    c.access(a);
    c.access(b);
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(c.access(a)); // b evicted a
        EXPECT_FALSE(c.access(b));
    }
    c.reset();
    PhysAddr d = 4096; // color 1
    c.access(a);
    c.access(d);
    std::uint64_t misses_before = c.misses();
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(c.access(a));
        EXPECT_TRUE(c.access(d));
    }
    EXPECT_EQ(c.misses(), misses_before);
}

TEST(CacheModel, AssociativityAbsorbsConflicts)
{
    // Same geometry but 2-way: two same-index pages coexist.
    CacheModel c(64 << 10, 16, 2, 4096);
    PhysAddr a = 0;
    PhysAddr b = 8 * 4096; // same set index in a 2-way 64 KB cache
    c.access(a);
    c.access(b);
    EXPECT_TRUE(c.access(a));
    EXPECT_TRUE(c.access(b));
}

TEST(CacheModel, ColorOf)
{
    CacheModel c(64 << 10, 16, 1, 4096);
    EXPECT_EQ(c.colorOf(0), 0u);
    EXPECT_EQ(c.colorOf(4096), 1u);
    EXPECT_EQ(c.colorOf(15 * 4096), 15u);
    EXPECT_EQ(c.colorOf(16 * 4096), 0u);
}

TEST(Tlb, HitsAndMisses)
{
    Tlb t(4);
    EXPECT_FALSE(t.access(1, 100)); // cold miss
    EXPECT_TRUE(t.access(1, 100));
    EXPECT_FALSE(t.access(2, 100)); // different asid
    t.invalidate(1, 100);
    EXPECT_FALSE(t.access(1, 100));
    EXPECT_EQ(t.misses(), 3u);
    EXPECT_EQ(t.hits(), 1u);
}

TEST(Tlb, AsidInvalidation)
{
    Tlb t(8);
    t.access(1, 1);
    t.access(1, 2);
    t.access(2, 3);
    t.invalidateAsid(1);
    EXPECT_FALSE(t.access(1, 1));
    EXPECT_FALSE(t.access(1, 2));
    EXPECT_TRUE(t.access(2, 3));
}

} // namespace
} // namespace vpp::hw
