/**
 * @file
 * Unit tests for the machine model: physical memory, disk, cache and
 * TLB models, and the calibrated cost presets.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "hw/cache_model.h"
#include "hw/config.h"
#include "hw/disk.h"
#include "hw/physmem.h"
#include "hw/tlb.h"
#include "core/kernel.h"

namespace vpp::hw {
namespace {

using sim::usec;

TEST(MachineConfig, DecstationPreset)
{
    MachineConfig m = decstation5000_200();
    EXPECT_EQ(m.pageSize, 4096u);
    EXPECT_EQ(m.memoryBytes, 128ull << 20);
    EXPECT_EQ(m.frames(), (128ull << 20) / 4096);
    EXPECT_FALSE(m.resumeThroughKernel);
    // Zeroing one 4 KB page costs 75 us (paper §3.1).
    EXPECT_EQ(m.cost.pageZeroPerKB * 4, usec(75));
}

TEST(MachineConfig, InstructionsToTime)
{
    MachineConfig m = decstation5000_200();
    // 20 MIPS: 20 million instructions take one second.
    EXPECT_EQ(m.instructions(20e6), sim::sec(1));
    EXPECT_EQ(m.instructions(20.0), usec(1));
}

TEST(MachineConfig, Sgi4d380Preset)
{
    MachineConfig m = sgi4d380();
    EXPECT_EQ(m.ncpus, 8);
    EXPECT_DOUBLE_EQ(m.mips, 30.0);
}

TEST(PhysicalMemory, GeometryAndLazyAllocation)
{
    PhysicalMemory pm(1 << 20, 4096);
    EXPECT_EQ(pm.numFrames(), 256u);
    EXPECT_EQ(pm.frameSize(), 4096u);
    EXPECT_EQ(pm.allocatedDataBytes(), 0u);
    EXPECT_FALSE(pm.hasData(3));
    EXPECT_EQ(pm.peek(3), nullptr);

    std::byte *d = pm.data(3);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(pm.hasData(3));
    EXPECT_EQ(pm.allocatedDataBytes(), 4096u);
    // Fresh frames read as zero.
    for (int i = 0; i < 4096; ++i)
        EXPECT_EQ(d[i], std::byte{0});
}

TEST(PhysicalMemory, PhysicalAddresses)
{
    PhysicalMemory pm(1 << 20, 4096);
    EXPECT_EQ(pm.physAddr(0), 0u);
    EXPECT_EQ(pm.physAddr(10), 10u * 4096);
    EXPECT_EQ(pm.frameOf(10 * 4096 + 17), 10u);
}

TEST(PhysicalMemory, CopyAndZero)
{
    PhysicalMemory pm(1 << 20, 4096);
    std::memset(pm.data(1), 0xAB, 4096);
    pm.copyFrame(2, 1);
    EXPECT_EQ(pm.data(2)[100], std::byte{0xAB});
    pm.zero(2);
    EXPECT_FALSE(pm.hasData(2));
    // Copy from a never-written frame zeroes the destination.
    pm.copyFrame(1, 5);
    EXPECT_EQ(pm.data(1)[100], std::byte{0});
}

TEST(PhysicalMemory, BadGeometryRejected)
{
    EXPECT_THROW(PhysicalMemory(1 << 20, 3000), std::invalid_argument);
    EXPECT_THROW(PhysicalMemory((1 << 20) + 1, 4096),
                 std::invalid_argument);
    PhysicalMemory pm(1 << 20, 4096);
    EXPECT_THROW(pm.data(256), std::out_of_range);
}

TEST(Disk, LatencyPlusBandwidth)
{
    sim::Simulation s;
    Disk d(s, sim::msec(16), 2.0);
    // 4 KB at 2 MB/s is 2.048 ms of transfer on top of 16 ms.
    EXPECT_EQ(d.transferTime(4096), sim::msec(16) + sim::usec(2048));
    kernel::runTask(s, [](Disk &disk) -> sim::Task<> {
        co_await disk.read(4096);
        co_await disk.write(8192);
    }(d));
    EXPECT_EQ(d.reads(), 1u);
    EXPECT_EQ(d.writes(), 1u);
    EXPECT_EQ(d.bytesRead(), 4096u);
    EXPECT_EQ(d.bytesWritten(), 8192u);
}

TEST(Disk, RequestsSerialize)
{
    sim::Simulation s;
    Disk d(s, sim::msec(10), 1000.0); // transfer time negligible
    for (int i = 0; i < 4; ++i) {
        s.spawn([](Disk &disk) -> sim::Task<> {
            co_await disk.read(512);
        }(d));
    }
    s.run();
    // Four serialized requests take at least 4 x 10 ms.
    EXPECT_GE(s.now(), sim::msec(40));
}

TEST(CacheModel, DirectMappedConflicts)
{
    // 64 KB direct-mapped cache, 16 B lines, 4 KB pages -> 16 colors.
    CacheModel c(64 << 10, 16, 1, 4096);
    EXPECT_EQ(c.numColors(), 16u);

    // Two pages with the same color conflict on every alternating
    // access; two pages with different colors do not.
    PhysAddr a = 0;                  // color 0
    PhysAddr b = 16 * 4096;          // also color 0
    c.access(a);
    c.access(b);
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(c.access(a)); // b evicted a
        EXPECT_FALSE(c.access(b));
    }
    c.reset();
    PhysAddr d = 4096; // color 1
    c.access(a);
    c.access(d);
    std::uint64_t misses_before = c.misses();
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(c.access(a));
        EXPECT_TRUE(c.access(d));
    }
    EXPECT_EQ(c.misses(), misses_before);
}

TEST(CacheModel, AssociativityAbsorbsConflicts)
{
    // Same geometry but 2-way: two same-index pages coexist.
    CacheModel c(64 << 10, 16, 2, 4096);
    PhysAddr a = 0;
    PhysAddr b = 8 * 4096; // same set index in a 2-way 64 KB cache
    c.access(a);
    c.access(b);
    EXPECT_TRUE(c.access(a));
    EXPECT_TRUE(c.access(b));
}

TEST(CacheModel, ColorOf)
{
    CacheModel c(64 << 10, 16, 1, 4096);
    EXPECT_EQ(c.colorOf(0), 0u);
    EXPECT_EQ(c.colorOf(4096), 1u);
    EXPECT_EQ(c.colorOf(15 * 4096), 15u);
    EXPECT_EQ(c.colorOf(16 * 4096), 0u);
}

TEST(Tlb, HitsAndMisses)
{
    Tlb t(4);
    EXPECT_FALSE(t.access(1, 100)); // cold miss
    EXPECT_TRUE(t.access(1, 100));
    EXPECT_FALSE(t.access(2, 100)); // different asid
    t.invalidate(1, 100);
    EXPECT_FALSE(t.access(1, 100));
    EXPECT_EQ(t.misses(), 3u);
    EXPECT_EQ(t.hits(), 1u);
}

TEST(Tlb, AsidInvalidation)
{
    Tlb t(8);
    t.access(1, 1);
    t.access(1, 2);
    t.access(2, 3);
    t.invalidateAsid(1);
    EXPECT_FALSE(t.access(1, 1));
    EXPECT_FALSE(t.access(1, 2));
    EXPECT_TRUE(t.access(2, 3));
}

} // namespace
} // namespace vpp::hw
