/**
 * @file
 * The sharded engine's contract (sim/shard.h): conservative epoch
 * windows are safe, cross-shard mail merges in canonical order, and
 * everything — from a hand-built event trace to the full cluster
 * study pushed through the sweep layer — is byte-identical at any
 * worker count.
 */

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/sweep.h"
#include "db/cluster.h"
#include "sim/mem_accounting.h"
#include "sim/shard.h"

using namespace vpp;
using sim::ShardedSimulation;
using sim::SimPanic;

namespace {

constexpr sim::Duration kLook = 10;

} // namespace

TEST(Shard, CrossShardMailMergesInCanonicalOrder)
{
    // Three posters race mail to shard 0 at the same timestamp; the
    // merge must order it (when, source shard, source sequence), and
    // behind anything shard 0 already had scheduled there (local
    // events carry older sequence numbers).
    std::vector<std::string> order;
    ShardedSimulation ss(3, kLook, 1);

    ss.shard(0).schedule(kLook, [&order] { order.push_back("local"); });
    ss.shard(1).schedule(0, [&] {
        // Two posts from shard 1: sequence order must survive.
        ss.post(0, kLook, [&order] { order.push_back("s1-first"); });
        ss.post(0, kLook, [&order] { order.push_back("s1-second"); });
    });
    ss.shard(2).schedule(0, [&] {
        ss.post(0, kLook, [&order] { order.push_back("s2"); });
    });
    ss.run();

    std::vector<std::string> expect = {"local", "s1-first",
                                       "s1-second", "s2"};
    EXPECT_EQ(order, expect);
    EXPECT_EQ(ss.crossEvents(), 3u);
}

TEST(Shard, DeliveryAtExactLookaheadBoundary)
{
    // when == src.now() + lookahead is the tightest legal post; it
    // must arrive, and at the destination's own clock.
    ShardedSimulation ss(2, kLook, 1);
    sim::SimTime delivered = 0;
    ss.shard(0).schedule(5, [&] {
        ss.post(1, 5 + kLook,
                [&] { delivered = ss.shard(1).now(); });
    });
    ss.run();
    EXPECT_EQ(delivered, 5 + kLook);
}

TEST(Shard, PostInsideLookaheadWindowPanics)
{
    ShardedSimulation ss(2, kLook, 1);
    ss.shard(0).schedule(5, [&] {
        ss.post(1, 5 + kLook - 1, [] {});
    });
    EXPECT_THROW(ss.run(), SimPanic);
}

TEST(Shard, PostFromOutsideDuringSetupSchedulesDirectly)
{
    ShardedSimulation ss(2, kLook, 1);
    bool ran = false;
    // Before run() there is no source shard and no lookahead rule:
    // setup may seed any shard at any time.
    ss.post(1, 3, [&ran] { ran = true; });
    ss.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(ss.crossEvents(), 0u);
}

TEST(Shard, EpochCountIsDeterministic)
{
    // Windows advance to each global-min + lookahead: events at 0,
    // 12, 35 across two shards give exactly three epochs.
    ShardedSimulation ss(2, kLook, 1);
    ss.shard(0).schedule(0, [] {});
    ss.shard(1).schedule(12, [] {});
    ss.shard(0).schedule(35, [] {});
    ss.run();
    EXPECT_EQ(ss.epochs(), 3u);
}

TEST(Shard, ErrorsRethrowLowestShardFirstAndEngineSurvives)
{
    ShardedSimulation ss(3, kLook, 2);
    ss.shard(2).schedule(0, [] {
        throw std::runtime_error("boom2");
    });
    ss.shard(1).schedule(0, [] {
        throw std::runtime_error("boom1");
    });
    try {
        ss.run();
        FAIL() << "run() should have rethrown";
    } catch (const std::runtime_error &e) {
        // Both shards fail in the same window on different workers;
        // the winner must still be chosen by shard index, not by
        // host timing.
        EXPECT_STREQ(e.what(), "boom1");
    }
    // Failed shards are dead but the engine is still runnable.
    bool ran = false;
    ss.shard(0).schedule(100, [&ran] { ran = true; });
    ss.run();
    EXPECT_TRUE(ran);
}

TEST(Shard, AbsorbChildPeakRaisesThreadPeak)
{
    if (!sim::mem::hooksActive())
        GTEST_SKIP() << "heap accounting compiled out";
    sim::mem::resetThreadPeak();
    std::int64_t before = sim::mem::threadPeakBytes();
    sim::mem::absorbChildPeak(1 << 20);
    EXPECT_GE(sim::mem::threadPeakBytes(),
              sim::mem::threadCurrentBytes() + (1 << 20));
    sim::mem::absorbChildPeak(-5);
    sim::mem::absorbChildPeak(0);
    EXPECT_GE(sim::mem::threadPeakBytes(), before);
}

namespace {

db::ClusterParams
smallCluster(unsigned workers)
{
    db::ClusterParams p;
    p.nodes = 4;
    p.cpusPerNode = 2;
    p.tps = 2000;
    p.durationSec = 0.5;
    p.workers = workers;
    return p;
}

/** Every field of the result, bit-for-bit. */
void
expectSameResult(const db::ClusterResult &a,
                 const db::ClusterResult &b, const char *what)
{
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0) << what;
}

} // namespace

TEST(Shard, ClusterStudyByteIdenticalAtAnyWorkerCount)
{
    db::ClusterResult w1 = db::runClusterStudy(smallCluster(1));
    EXPECT_GT(w1.txns, 0u);
    EXPECT_GT(w1.remoteTxns, 0u);
    EXPECT_EQ(w1.crossEvents, 2 * w1.remoteTxns);

    db::ClusterResult w2 = db::runClusterStudy(smallCluster(2));
    db::ClusterResult w8 = db::runClusterStudy(smallCluster(8));
    expectSameResult(w1, w2, "workers 1 vs 2");
    expectSameResult(w1, w8, "workers 1 vs 8");
}

namespace {

/** The bench-layer matrix: rows of cluster runs through a Sweep. */
std::string
sweepJson(unsigned jobs, unsigned shards)
{
    vppbench::Options opt;
    opt.jobs = jobs;
    opt.shards = shards;
    opt.progress = false;

    vppbench::Sweep sweep("shard-matrix", opt);
    for (unsigned nodes : {2u, 4u}) {
        db::ClusterParams p = smallCluster(opt.shards);
        p.nodes = nodes;
        sweep.add("nodes-" + std::to_string(nodes), [p] {
            db::ClusterResult r = db::runClusterStudy(p);
            vppbench::RowResult out;
            out.set("avg_ms", r.avgMs);
            out.set("worst_ms", r.worstMs);
            out.set("txns", static_cast<double>(r.txns));
            out.set("epochs", static_cast<double>(r.epochs));
            out.set("cross_events",
                    static_cast<double>(r.crossEvents));
            return out;
        });
    }
    sweep.run();
    EXPECT_TRUE(sweep.ok());
    return sweep.jsonStr();
}

} // namespace

TEST(Shard, SweepMatrixShardsTimesJobsIsByteIdentical)
{
    std::string golden = sweepJson(1, 1);
    for (unsigned jobs : {1u, 8u}) {
        for (unsigned shards : {1u, 2u, 8u}) {
            EXPECT_EQ(golden, sweepJson(jobs, shards))
                << "jobs=" << jobs << " shards=" << shards;
        }
    }
}
