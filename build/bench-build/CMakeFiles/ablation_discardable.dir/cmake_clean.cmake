file(REMOVE_RECURSE
  "../bench/ablation_discardable"
  "../bench/ablation_discardable.pdb"
  "CMakeFiles/ablation_discardable.dir/ablation_discardable.cc.o"
  "CMakeFiles/ablation_discardable.dir/ablation_discardable.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_discardable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
