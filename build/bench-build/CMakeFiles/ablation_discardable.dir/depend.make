# Empty dependencies file for ablation_discardable.
# This may be replaced when dependencies are built.
