file(REMOVE_RECURSE
  "../bench/table2_applications"
  "../bench/table2_applications.pdb"
  "CMakeFiles/table2_applications.dir/table2_applications.cc.o"
  "CMakeFiles/table2_applications.dir/table2_applications.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
