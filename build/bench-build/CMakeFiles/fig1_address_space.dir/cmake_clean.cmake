file(REMOVE_RECURSE
  "../bench/fig1_address_space"
  "../bench/fig1_address_space.pdb"
  "CMakeFiles/fig1_address_space.dir/fig1_address_space.cc.o"
  "CMakeFiles/fig1_address_space.dir/fig1_address_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_address_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
