# Empty dependencies file for fig1_address_space.
# This may be replaced when dependencies are built.
