file(REMOVE_RECURSE
  "../bench/ablation_clock_batch"
  "../bench/ablation_clock_batch.pdb"
  "CMakeFiles/ablation_clock_batch.dir/ablation_clock_batch.cc.o"
  "CMakeFiles/ablation_clock_batch.dir/ablation_clock_batch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clock_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
