# Empty compiler generated dependencies file for table3_vm_activity.
# This may be replaced when dependencies are built.
