file(REMOVE_RECURSE
  "../bench/table3_vm_activity"
  "../bench/table3_vm_activity.pdb"
  "CMakeFiles/table3_vm_activity.dir/table3_vm_activity.cc.o"
  "CMakeFiles/table3_vm_activity.dir/table3_vm_activity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_vm_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
