# Empty dependencies file for microbench_host.
# This may be replaced when dependencies are built.
