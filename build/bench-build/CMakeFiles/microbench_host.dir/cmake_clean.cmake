file(REMOVE_RECURSE
  "../bench/microbench_host"
  "../bench/microbench_host.pdb"
  "CMakeFiles/microbench_host.dir/microbench_host.cc.o"
  "CMakeFiles/microbench_host.dir/microbench_host.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
