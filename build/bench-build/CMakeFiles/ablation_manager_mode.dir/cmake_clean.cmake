file(REMOVE_RECURSE
  "../bench/ablation_manager_mode"
  "../bench/ablation_manager_mode.pdb"
  "CMakeFiles/ablation_manager_mode.dir/ablation_manager_mode.cc.o"
  "CMakeFiles/ablation_manager_mode.dir/ablation_manager_mode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_manager_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
