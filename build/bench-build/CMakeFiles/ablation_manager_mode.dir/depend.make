# Empty dependencies file for ablation_manager_mode.
# This may be replaced when dependencies are built.
