file(REMOVE_RECURSE
  "../bench/ablation_paging_period"
  "../bench/ablation_paging_period.pdb"
  "CMakeFiles/ablation_paging_period.dir/ablation_paging_period.cc.o"
  "CMakeFiles/ablation_paging_period.dir/ablation_paging_period.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_paging_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
