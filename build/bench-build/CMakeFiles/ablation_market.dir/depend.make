# Empty dependencies file for ablation_market.
# This may be replaced when dependencies are built.
