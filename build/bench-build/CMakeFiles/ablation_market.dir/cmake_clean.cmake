file(REMOVE_RECURSE
  "../bench/ablation_market"
  "../bench/ablation_market.pdb"
  "CMakeFiles/ablation_market.dir/ablation_market.cc.o"
  "CMakeFiles/ablation_market.dir/ablation_market.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
