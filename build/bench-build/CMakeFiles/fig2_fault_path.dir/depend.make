# Empty dependencies file for fig2_fault_path.
# This may be replaced when dependencies are built.
