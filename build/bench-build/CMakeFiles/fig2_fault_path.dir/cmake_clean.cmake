file(REMOVE_RECURSE
  "../bench/fig2_fault_path"
  "../bench/fig2_fault_path.pdb"
  "CMakeFiles/fig2_fault_path.dir/fig2_fault_path.cc.o"
  "CMakeFiles/fig2_fault_path.dir/fig2_fault_path.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fault_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
