file(REMOVE_RECURSE
  "../bench/ablation_page_size"
  "../bench/ablation_page_size.pdb"
  "CMakeFiles/ablation_page_size.dir/ablation_page_size.cc.o"
  "CMakeFiles/ablation_page_size.dir/ablation_page_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_page_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
