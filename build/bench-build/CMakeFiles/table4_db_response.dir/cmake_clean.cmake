file(REMOVE_RECURSE
  "../bench/table4_db_response"
  "../bench/table4_db_response.pdb"
  "CMakeFiles/table4_db_response.dir/table4_db_response.cc.o"
  "CMakeFiles/table4_db_response.dir/table4_db_response.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_db_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
