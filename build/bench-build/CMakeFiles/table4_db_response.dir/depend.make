# Empty dependencies file for table4_db_response.
# This may be replaced when dependencies are built.
