# Empty dependencies file for memory_market.
# This may be replaced when dependencies are built.
