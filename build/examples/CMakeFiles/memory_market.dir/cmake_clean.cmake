file(REMOVE_RECURSE
  "CMakeFiles/memory_market.dir/memory_market.cpp.o"
  "CMakeFiles/memory_market.dir/memory_market.cpp.o.d"
  "memory_market"
  "memory_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
