file(REMOVE_RECURSE
  "CMakeFiles/db_regeneration.dir/db_regeneration.cpp.o"
  "CMakeFiles/db_regeneration.dir/db_regeneration.cpp.o.d"
  "db_regeneration"
  "db_regeneration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_regeneration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
