# Empty dependencies file for db_regeneration.
# This may be replaced when dependencies are built.
