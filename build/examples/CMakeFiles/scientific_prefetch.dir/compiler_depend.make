# Empty compiler generated dependencies file for scientific_prefetch.
# This may be replaced when dependencies are built.
