file(REMOVE_RECURSE
  "CMakeFiles/scientific_prefetch.dir/scientific_prefetch.cpp.o"
  "CMakeFiles/scientific_prefetch.dir/scientific_prefetch.cpp.o.d"
  "scientific_prefetch"
  "scientific_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scientific_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
