file(REMOVE_RECURSE
  "CMakeFiles/page_coloring.dir/page_coloring.cpp.o"
  "CMakeFiles/page_coloring.dir/page_coloring.cpp.o.d"
  "page_coloring"
  "page_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
