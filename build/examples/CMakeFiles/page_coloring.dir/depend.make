# Empty dependencies file for page_coloring.
# This may be replaced when dependencies are built.
