file(REMOVE_RECURSE
  "CMakeFiles/app_swapping.dir/app_swapping.cpp.o"
  "CMakeFiles/app_swapping.dir/app_swapping.cpp.o.d"
  "app_swapping"
  "app_swapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_swapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
