
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/app_swapping.cpp" "examples/CMakeFiles/app_swapping.dir/app_swapping.cpp.o" "gcc" "examples/CMakeFiles/app_swapping.dir/app_swapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/appmgr/CMakeFiles/vpp_appmgr.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/vpp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/managers/CMakeFiles/vpp_managers.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/vpp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/uio/CMakeFiles/vpp_uio.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vpp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
