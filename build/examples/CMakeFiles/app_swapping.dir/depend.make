# Empty dependencies file for app_swapping.
# This may be replaced when dependencies are built.
