file(REMOVE_RECURSE
  "libvpp_baseline.a"
)
