# Empty compiler generated dependencies file for vpp_baseline.
# This may be replaced when dependencies are built.
