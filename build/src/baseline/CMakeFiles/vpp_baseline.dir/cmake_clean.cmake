file(REMOVE_RECURSE
  "CMakeFiles/vpp_baseline.dir/conventional_vm.cc.o"
  "CMakeFiles/vpp_baseline.dir/conventional_vm.cc.o.d"
  "libvpp_baseline.a"
  "libvpp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
