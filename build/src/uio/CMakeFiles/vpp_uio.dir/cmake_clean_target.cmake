file(REMOVE_RECURSE
  "libvpp_uio.a"
)
