# Empty dependencies file for vpp_uio.
# This may be replaced when dependencies are built.
