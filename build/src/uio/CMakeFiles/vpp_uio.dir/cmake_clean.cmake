file(REMOVE_RECURSE
  "CMakeFiles/vpp_uio.dir/block_io.cc.o"
  "CMakeFiles/vpp_uio.dir/block_io.cc.o.d"
  "CMakeFiles/vpp_uio.dir/file_server.cc.o"
  "CMakeFiles/vpp_uio.dir/file_server.cc.o.d"
  "libvpp_uio.a"
  "libvpp_uio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_uio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
