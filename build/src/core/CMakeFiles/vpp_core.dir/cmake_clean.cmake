file(REMOVE_RECURSE
  "CMakeFiles/vpp_core.dir/kernel.cc.o"
  "CMakeFiles/vpp_core.dir/kernel.cc.o.d"
  "libvpp_core.a"
  "libvpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
