file(REMOVE_RECURSE
  "libvpp_sim.a"
)
