# Empty dependencies file for vpp_sim.
# This may be replaced when dependencies are built.
