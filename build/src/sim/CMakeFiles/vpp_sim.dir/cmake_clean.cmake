file(REMOVE_RECURSE
  "CMakeFiles/vpp_sim.dir/simulation.cc.o"
  "CMakeFiles/vpp_sim.dir/simulation.cc.o.d"
  "CMakeFiles/vpp_sim.dir/sync.cc.o"
  "CMakeFiles/vpp_sim.dir/sync.cc.o.d"
  "libvpp_sim.a"
  "libvpp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
