file(REMOVE_RECURSE
  "CMakeFiles/vpp_appmgr.dir/coloring_mgr.cc.o"
  "CMakeFiles/vpp_appmgr.dir/coloring_mgr.cc.o.d"
  "CMakeFiles/vpp_appmgr.dir/db_mgr.cc.o"
  "CMakeFiles/vpp_appmgr.dir/db_mgr.cc.o.d"
  "CMakeFiles/vpp_appmgr.dir/placement_mgr.cc.o"
  "CMakeFiles/vpp_appmgr.dir/placement_mgr.cc.o.d"
  "CMakeFiles/vpp_appmgr.dir/prefetch_mgr.cc.o"
  "CMakeFiles/vpp_appmgr.dir/prefetch_mgr.cc.o.d"
  "CMakeFiles/vpp_appmgr.dir/swap_mgr.cc.o"
  "CMakeFiles/vpp_appmgr.dir/swap_mgr.cc.o.d"
  "libvpp_appmgr.a"
  "libvpp_appmgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_appmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
