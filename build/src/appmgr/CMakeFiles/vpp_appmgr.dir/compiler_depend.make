# Empty compiler generated dependencies file for vpp_appmgr.
# This may be replaced when dependencies are built.
