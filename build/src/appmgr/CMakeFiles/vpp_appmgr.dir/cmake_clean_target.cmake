file(REMOVE_RECURSE
  "libvpp_appmgr.a"
)
