file(REMOVE_RECURSE
  "libvpp_managers.a"
)
