file(REMOVE_RECURSE
  "CMakeFiles/vpp_managers.dir/default_mgr.cc.o"
  "CMakeFiles/vpp_managers.dir/default_mgr.cc.o.d"
  "CMakeFiles/vpp_managers.dir/generic.cc.o"
  "CMakeFiles/vpp_managers.dir/generic.cc.o.d"
  "CMakeFiles/vpp_managers.dir/spcm.cc.o"
  "CMakeFiles/vpp_managers.dir/spcm.cc.o.d"
  "libvpp_managers.a"
  "libvpp_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
