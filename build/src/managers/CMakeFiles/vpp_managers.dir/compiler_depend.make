# Empty compiler generated dependencies file for vpp_managers.
# This may be replaced when dependencies are built.
