file(REMOVE_RECURSE
  "CMakeFiles/vpp_db.dir/lock.cc.o"
  "CMakeFiles/vpp_db.dir/lock.cc.o.d"
  "CMakeFiles/vpp_db.dir/study.cc.o"
  "CMakeFiles/vpp_db.dir/study.cc.o.d"
  "libvpp_db.a"
  "libvpp_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
