file(REMOVE_RECURSE
  "libvpp_db.a"
)
