# Empty dependencies file for vpp_db.
# This may be replaced when dependencies are built.
