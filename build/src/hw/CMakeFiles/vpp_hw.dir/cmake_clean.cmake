file(REMOVE_RECURSE
  "CMakeFiles/vpp_hw.dir/cache_model.cc.o"
  "CMakeFiles/vpp_hw.dir/cache_model.cc.o.d"
  "CMakeFiles/vpp_hw.dir/config.cc.o"
  "CMakeFiles/vpp_hw.dir/config.cc.o.d"
  "CMakeFiles/vpp_hw.dir/physmem.cc.o"
  "CMakeFiles/vpp_hw.dir/physmem.cc.o.d"
  "libvpp_hw.a"
  "libvpp_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
