# Empty dependencies file for vpp_hw.
# This may be replaced when dependencies are built.
