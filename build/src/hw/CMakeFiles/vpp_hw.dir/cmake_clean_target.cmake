file(REMOVE_RECURSE
  "libvpp_hw.a"
)
