
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cache_model.cc" "src/hw/CMakeFiles/vpp_hw.dir/cache_model.cc.o" "gcc" "src/hw/CMakeFiles/vpp_hw.dir/cache_model.cc.o.d"
  "/root/repo/src/hw/config.cc" "src/hw/CMakeFiles/vpp_hw.dir/config.cc.o" "gcc" "src/hw/CMakeFiles/vpp_hw.dir/config.cc.o.d"
  "/root/repo/src/hw/physmem.cc" "src/hw/CMakeFiles/vpp_hw.dir/physmem.cc.o" "gcc" "src/hw/CMakeFiles/vpp_hw.dir/physmem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
