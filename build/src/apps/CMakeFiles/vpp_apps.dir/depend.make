# Empty dependencies file for vpp_apps.
# This may be replaced when dependencies are built.
