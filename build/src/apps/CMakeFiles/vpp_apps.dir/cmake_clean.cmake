file(REMOVE_RECURSE
  "CMakeFiles/vpp_apps.dir/workload.cc.o"
  "CMakeFiles/vpp_apps.dir/workload.cc.o.d"
  "libvpp_apps.a"
  "libvpp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
