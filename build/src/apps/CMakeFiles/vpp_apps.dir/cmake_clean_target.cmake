file(REMOVE_RECURSE
  "libvpp_apps.a"
)
