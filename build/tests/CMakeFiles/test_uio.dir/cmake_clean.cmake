file(REMOVE_RECURSE
  "CMakeFiles/test_uio.dir/test_uio.cc.o"
  "CMakeFiles/test_uio.dir/test_uio.cc.o.d"
  "test_uio"
  "test_uio.pdb"
  "test_uio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
