# Empty dependencies file for test_uio.
# This may be replaced when dependencies are built.
