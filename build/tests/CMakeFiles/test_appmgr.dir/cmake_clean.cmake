file(REMOVE_RECURSE
  "CMakeFiles/test_appmgr.dir/test_appmgr.cc.o"
  "CMakeFiles/test_appmgr.dir/test_appmgr.cc.o.d"
  "test_appmgr"
  "test_appmgr.pdb"
  "test_appmgr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_appmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
