# Empty compiler generated dependencies file for test_appmgr.
# This may be replaced when dependencies are built.
