# Empty dependencies file for test_managers.
# This may be replaced when dependencies are built.
