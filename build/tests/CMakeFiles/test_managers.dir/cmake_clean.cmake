file(REMOVE_RECURSE
  "CMakeFiles/test_managers.dir/test_managers.cc.o"
  "CMakeFiles/test_managers.dir/test_managers.cc.o.d"
  "test_managers"
  "test_managers.pdb"
  "test_managers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
