/**
 * @file
 * Reproduces paper Table 4: "Effect of Memory Usage on Transaction
 * Response (ms)" — the database transaction-processing study on the
 * 6-processor SGI 4D/380 model.
 *
 * Paper values (average / worst-case): no index 866 / 3770; index in
 * memory 43 / 410; index with paging 575 / 3930; index regeneration
 * 55 / 680.
 */

#include <cstdio>
#include <vector>

#include "db/study.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using sim::TextTable;

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "table4_db_response");

    struct Row
    {
        db::DbConfig config;
        int paperAvg;
        int paperWorst;
    };
    std::vector<Row> rows = {
        {db::DbConfig::NoIndex, 866, 3770},
        {db::DbConfig::IndexInMemory, 43, 410},
        {db::DbConfig::IndexWithPaging, 575, 3930},
        {db::DbConfig::IndexRegeneration, 55, 680},
    };

    db::DbParams params;

    vppbench::Sweep sweep("table4_db_response", opt);
    for (const Row &row : rows) {
        db::DbConfig config = row.config;
        sweep.add(db::dbConfigName(config), [config, params] {
            db::DbResult r = db::runDbStudy(config, params);
            vppbench::RowResult out;
            out.set("avg_ms", r.avgMs);
            out.set("worst_ms", r.worstMs);
            out.set("p99_ms", r.p99Ms);
            out.set("txns", static_cast<double>(r.txns));
            out.set("cpu_utilization", r.cpuUtilization);
            return out;
        });
    }
    sweep.run();

    std::printf("Table 4: Effect of Memory Usage on Transaction "
                "Response (ms)\n");
    std::printf("6 CPUs, 120 MB database, 40 TPS, 95%% DebitCredit / "
                "5%% join, %g s run\n\n",
                params.durationSec);

    TextTable t({"Configuration", "Avg (paper)", "Avg (measured)",
                 "Worst (paper)", "Worst (measured)", "CPU util",
                 "txns"});
    vppbench::PaperCheck check("table4_db_response");

    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        double avg = sweep.get(i, "avg_ms");
        double worst = sweep.get(i, "worst_ms");
        t.addRow({sweep.label(i), std::to_string(row.paperAvg),
                  TextTable::num(avg, 0),
                  std::to_string(row.paperWorst),
                  TextTable::num(worst, 0),
                  TextTable::num(sweep.get(i, "cpu_utilization") * 100,
                                 0) +
                      "%",
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "txns")))});

        // Averages track the paper within a third; worst cases are
        // open-arrival tail samples (EXPERIMENTS.md explains our
        // heavier no-index tail), so the gate there is loose.
        check.near(sweep.label(i) + " avg response", avg,
                   row.paperAvg, 0.35);
        check.near(sweep.label(i) + " worst response", worst,
                   row.paperWorst, 0.75);
    }

    // The paper's qualitative claims, checked exactly.
    double noidx = sweep.get(0, "avg_ms");
    double mem = sweep.get(1, "avg_ms");
    double paging = sweep.get(2, "avg_ms");
    double regen = sweep.get(3, "avg_ms");
    check.that("index cuts response >10x when memory available",
               noidx > 10 * mem);
    check.that("paging destroys most of the index benefit",
               paging > 5 * mem);
    check.that("regeneration recovers most of the loss",
               regen < paging / 5 && regen < 2.5 * mem);

    t.print();

    std::printf(
        "\nShape checks (paper): regeneration is an order of magnitude "
        "better than\npaging on average and only ~27%% worse than "
        "index-in-memory; paging loses\nmost of the index's benefit "
        "even though the program exceeds its allocation\nby less than "
        "1%%.\n");
    return check.exitCode(sweep);
}
