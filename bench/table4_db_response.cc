/**
 * @file
 * Reproduces paper Table 4: "Effect of Memory Usage on Transaction
 * Response (ms)" — the database transaction-processing study on the
 * 6-processor SGI 4D/380 model.
 *
 * Paper values (average / worst-case): no index 866 / 3770; index in
 * memory 43 / 410; index with paging 575 / 3930; index regeneration
 * 55 / 680.
 */

#include <cstdio>
#include <vector>

#include "db/study.h"
#include "sim/table.h"

using namespace vpp;
using sim::TextTable;

int
main()
{
    struct Row
    {
        db::DbConfig config;
        int paperAvg;
        int paperWorst;
    };
    std::vector<Row> rows = {
        {db::DbConfig::NoIndex, 866, 3770},
        {db::DbConfig::IndexInMemory, 43, 410},
        {db::DbConfig::IndexWithPaging, 575, 3930},
        {db::DbConfig::IndexRegeneration, 55, 680},
    };

    db::DbParams params;

    std::printf("Table 4: Effect of Memory Usage on Transaction "
                "Response (ms)\n");
    std::printf("6 CPUs, 120 MB database, 40 TPS, 95%% DebitCredit / "
                "5%% join, %g s run\n\n",
                params.durationSec);

    TextTable t({"Configuration", "Avg (paper)", "Avg (measured)",
                 "Worst (paper)", "Worst (measured)", "CPU util",
                 "txns"});

    for (const Row &row : rows) {
        db::DbResult r = db::runDbStudy(row.config, params);
        t.addRow({r.config, std::to_string(row.paperAvg),
                  TextTable::num(r.avgMs, 0),
                  std::to_string(row.paperWorst),
                  TextTable::num(r.worstMs, 0),
                  TextTable::num(r.cpuUtilization * 100, 0) + "%",
                  std::to_string(r.txns)});
    }
    t.print();

    std::printf(
        "\nShape checks (paper): regeneration is an order of magnitude "
        "better than\npaging on average and only ~27%% worse than "
        "index-in-memory; paging loses\nmost of the index's benefit "
        "even though the program exceeds its allocation\nby less than "
        "1%%.\n");
    return 0;
}
