/**
 * @file
 * Ablation A8 (paper §1, §2.1): multiple page sizes.
 *
 * The paper supports per-segment page sizes for machines like the
 * Alpha. Larger pages cover more memory per TLB entry, cutting refill
 * traffic for big working sets, and amortise per-page kernel costs —
 * at the price of contiguous, aligned frame allocation (which the
 * coalescing MigratePages enforces).
 */

#include <cstdio>

#include "core/kernel.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;

namespace {

struct PageSizeResult
{
    std::uint64_t tlbMisses;
    double refillUs;
    double installUs;
};

PageSizeResult
scan(std::uint32_t page_size, std::uint64_t bytes, int passes)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 64 << 20;
    m.modelTlb = true;
    m.tlbEntries = 64;
    kernel::Kernel kern(s, m);

    const std::uint64_t pages = bytes / page_size;
    const std::uint64_t frames_per_page = page_size / m.pageSize;
    kernel::SegmentId seg =
        kern.createSegmentNow("data", page_size, pages, 1);

    // Install the working set, measuring the charged install cost.
    sim::SimTime t0 = s.now();
    for (kernel::PageIndex p = 0; p < pages; ++p) {
        runTask(s, kern.migratePages(
                       kernel::kPhysSegment, seg,
                       p * frames_per_page, p, frames_per_page,
                       kernel::flag::kProtMask, 0));
    }
    double install_us = sim::toUsec(s.now() - t0);

    kernel::Process proc("scan", 1);
    t0 = s.now();
    for (int pass = 0; pass < passes; ++pass) {
        for (kernel::PageIndex p = 0; p < pages; ++p) {
            runTask(s, kern.touchSegment(proc, seg, p,
                                         kernel::AccessType::Read));
        }
    }
    return {kern.stats().tlbMisses, sim::toUsec(s.now() - t0),
            install_us};
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "ablation_page_size");
    const std::uint64_t working_set = 2 << 20; // 2 MB
    const int passes = 10;

    std::vector<std::uint32_t> sizes = {4096u, 8192u, 16384u, 65536u};
    vppbench::Sweep sweep("ablation_page_size", opt);
    for (std::uint32_t ps : sizes) {
        sweep.add(std::to_string(ps / 1024) + " KB",
                  [ps, working_set, passes] {
                      PageSizeResult r =
                          scan(ps, working_set, passes);
                      vppbench::RowResult out;
                      out.set("tlb_misses",
                              static_cast<double>(r.tlbMisses));
                      out.set("refill_us", r.refillUs);
                      out.set("install_us", r.installUs);
                      return out;
                  });
    }
    sweep.run();

    std::printf("Ablation A8: per-segment page size (64-entry TLB, "
                "2 MB working set,\n%d scan passes)\n\n",
                passes);

    TextTable t({"Page size", "pages", "TLB misses", "refill cost (us)",
                 "map-install cost (us)"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        t.addRow({sweep.label(i),
                  std::to_string(working_set / sizes[i]),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "tlb_misses"))),
                  TextTable::num(sweep.get(i, "refill_us"), 0),
                  TextTable::num(sweep.get(i, "install_us"), 0)});
    }
    t.print();
    std::printf("\nAt 16 KB the 2 MB set fits the TLB need (128 pages "
                "-> 64 entries still\nthrash a little; 64 KB fits "
                "outright) and refill traffic collapses.\n");
    return vppbench::exitCode(sweep);
}
