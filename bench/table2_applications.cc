/**
 * @file
 * Reproduces paper Table 2: "Application Elapsed Time in Seconds" for
 * diff, uncompress and latex under V++ (default segment manager) and
 * the conventional baseline, with all input files cached — the
 * worst case for V++ because no I/O latency hides the process-level
 * manager cost.
 *
 * Paper values (V++ / Ultrix): diff 3.99 / 4.05, uncompress
 * 6.39 / 6.01, latex 14.71 / 13.65. The paper attributes the
 * residual cross-system differences to run-time library effects; the
 * VM-attributable difference is Table 3's overhead column, which this
 * model reproduces directly.
 */

#include <cstdio>
#include <vector>

#include "apps/workload.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using sim::TextTable;

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "table2_applications");

    struct Row
    {
        apps::AppSpec spec;
        double paperVpp;
        double paperUltrix;
    };
    std::vector<Row> rows = {
        {apps::diffApp(), 3.99, 4.05},
        {apps::uncompressApp(), 6.39, 6.01},
        {apps::latexApp(), 14.71, 13.65},
    };

    vppbench::Sweep sweep("table2_applications", opt);
    for (const Row &row : rows) {
        apps::AppSpec spec = row.spec;
        sweep.add(spec.name, [spec] {
            hw::MachineConfig m = hw::decstation5000_200();

            apps::VppStack stack(m);
            apps::AppRunResult vpp = apps::runOnVpp(stack, spec);

            sim::Simulation s2;
            hw::Disk disk(s2, m.diskLatency, m.diskBandwidthMBps);
            uio::FileServer server(s2, disk, sim::usec(200));
            baseline::ConventionalVm vm(s2, m, server);
            apps::AppRunResult ult =
                apps::runOnBaseline(s2, m, vm, server, spec);

            vppbench::RowResult r;
            r.set("vpp_elapsed_sec", vpp.elapsedSec);
            r.set("ultrix_elapsed_sec", ult.elapsedSec);
            r.set("vpp_manager_calls",
                  static_cast<double>(vpp.managerCalls));
            r.set("vpp_migrate_calls",
                  static_cast<double>(vpp.migrateCalls));
            return r;
        });
    }
    sweep.run();

    std::printf("Table 2: Application Elapsed Time in Seconds\n");
    std::printf("(files pre-cached; DECstation 5000/200 model)\n\n");

    TextTable t({"Program", "V++ (paper)", "V++ (measured)",
                 "Ultrix (paper)", "Ultrix (measured)",
                 "measured delta"});
    vppbench::PaperCheck check("table2_applications");

    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        double vppSec = sweep.get(i, "vpp_elapsed_sec");
        double ultSec = sweep.get(i, "ultrix_elapsed_sec");

        t.addRow({row.spec.name, TextTable::num(row.paperVpp, 2),
                  TextTable::num(vppSec, 2),
                  TextTable::num(row.paperUltrix, 2),
                  TextTable::num(ultSec, 2),
                  TextTable::num((vppSec - ultSec) * 1e3, 0) + " ms"});

        check.near(row.spec.name + " V++ elapsed", vppSec,
                   row.paperVpp, 0.15);
        check.near(row.spec.name + " Ultrix elapsed", ultSec,
                   row.paperUltrix, 0.15);
    }
    t.print();
    std::printf("\nThe V++ - Ultrix delta is the VM-attributable cost "
                "(compare Table 3's\noverhead column); the paper's "
                "remaining differences come from unrelated\nrun-time "
                "library effects.\n");
    return check.exitCode(sweep);
}
