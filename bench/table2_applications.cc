/**
 * @file
 * Reproduces paper Table 2: "Application Elapsed Time in Seconds" for
 * diff, uncompress and latex under V++ (default segment manager) and
 * the conventional baseline, with all input files cached — the
 * worst case for V++ because no I/O latency hides the process-level
 * manager cost.
 *
 * Paper values (V++ / Ultrix): diff 3.99 / 4.05, uncompress
 * 6.39 / 6.01, latex 14.71 / 13.65. The paper attributes the
 * residual cross-system differences to run-time library effects; the
 * VM-attributable difference is Table 3's overhead column, which this
 * model reproduces directly.
 */

#include <cstdio>
#include <vector>

#include "apps/workload.h"
#include "sim/table.h"

using namespace vpp;
using sim::TextTable;

int
main()
{
    struct Row
    {
        apps::AppSpec spec;
        double paperVpp;
        double paperUltrix;
    };
    std::vector<Row> rows = {
        {apps::diffApp(), 3.99, 4.05},
        {apps::uncompressApp(), 6.39, 6.01},
        {apps::latexApp(), 14.71, 13.65},
    };

    std::printf("Table 2: Application Elapsed Time in Seconds\n");
    std::printf("(files pre-cached; DECstation 5000/200 model)\n\n");

    TextTable t({"Program", "V++ (paper)", "V++ (measured)",
                 "Ultrix (paper)", "Ultrix (measured)",
                 "measured delta"});

    for (const Row &row : rows) {
        hw::MachineConfig m = hw::decstation5000_200();

        apps::VppStack stack(m);
        apps::AppRunResult vpp = apps::runOnVpp(stack, row.spec);

        sim::Simulation s2;
        hw::Disk disk(s2, m.diskLatency, m.diskBandwidthMBps);
        uio::FileServer server(s2, disk, sim::usec(200));
        baseline::ConventionalVm vm(s2, m, server);
        apps::AppRunResult ult =
            apps::runOnBaseline(s2, m, vm, server, row.spec);

        t.addRow({row.spec.name, TextTable::num(row.paperVpp, 2),
                  TextTable::num(vpp.elapsedSec, 2),
                  TextTable::num(row.paperUltrix, 2),
                  TextTable::num(ult.elapsedSec, 2),
                  TextTable::num((vpp.elapsedSec - ult.elapsedSec) * 1e3,
                                 0) +
                      " ms"});
    }
    t.print();
    std::printf("\nThe V++ - Ultrix delta is the VM-attributable cost "
                "(compare Table 3's\noverhead column); the paper's "
                "remaining differences come from unrelated\nrun-time "
                "library effects.\n");
    return 0;
}
