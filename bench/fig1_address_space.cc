/**
 * @file
 * Reproduces paper Figure 1: "Kernel Implementation of a Virtual
 * Address Space" — functionally. Builds a virtual-address-space
 * segment composed of bound regions over code, data and stack
 * segments (the data segment copy-on-write against the program
 * image), then walks the structure and prints it together with the
 * cost of each composition operation.
 */

#include <cstdio>
#include <string>

#include "apps/stack.h"
#include "sim/table.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;
namespace flag = kernel::flag;

int
main()
{
    hw::MachineConfig m = hw::decstation5000_200();
    apps::VppStack stack(m);
    kernel::Kernel &k = stack.kern;
    const std::uint32_t page = m.pageSize;

    // The program image: a cached file holding code + initialised data.
    uio::FileId image = stack.server.createFile("a.out", 96 * page);
    stack.ucds.preloadFileNow(image);
    kernel::SegmentId image_seg = stack.registry.segmentOf(image);

    struct Op
    {
        std::string what;
        sim::Duration cost;
    };
    std::vector<Op> ops;
    auto timed = [&](const std::string &what, auto task) {
        sim::SimTime t0 = stack.sim.now();
        auto r = runTask(stack.sim, std::move(task));
        ops.push_back({what, stack.sim.now() - t0});
        return r;
    };

    // Code and data segments bound to the image (data copy-on-write);
    // an anonymous stack segment; all composed into the VA segment.
    kernel::SegmentId code = timed(
        "CreateSegment(code)",
        k.createSegment("code", page, 64, 1, &stack.ucds));
    kernel::SegmentId data = timed(
        "CreateSegment(data)",
        k.createSegment("data", page, 32, 1, &stack.ucds));
    stack.ucds.adopt(code);
    stack.ucds.adopt(data);
    kernel::SegmentId stk =
        timed("CreateSegment(stack)",
              k.createSegment("stack", page, 32, 1, &stack.ucds));
    stack.ucds.adopt(stk);
    kernel::SegmentId va = timed(
        "CreateSegment(VA space)",
        k.createSegment("va", page, 1024, 1, &stack.ucds));

    runTask(stack.sim, k.bindRegion(code, 0, 64, image_seg, 0,
                                    flag::kReadable));
    runTask(stack.sim, k.bindRegion(data, 0, 32, image_seg, 64,
                                    flag::kProtMask, true));
    sim::SimTime t0 = stack.sim.now();
    runTask(stack.sim, k.bindRegion(va, 0, 64, code, 0,
                                    flag::kReadable));
    ops.push_back({"BindRegion(va.code -> code)",
                   stack.sim.now() - t0});
    runTask(stack.sim,
            k.bindRegion(va, 64, 32, data, 0, flag::kProtMask));
    runTask(stack.sim,
            k.bindRegion(va, 992, 32, stk, 0, flag::kProtMask));

    kernel::Process proc("a.out", 1);
    proc.setAddressSpace(va);

    std::printf("Figure 1: a V++ virtual address space is a segment "
                "composed of bound regions\n\n");
    TextTable layout({"VA pages", "region", "target segment", "via",
                      "notes"});
    layout.addRow({"0-63", "code", "code -> a.out image", "binding",
                   "read-only"});
    layout.addRow({"64-95", "data", "data -> a.out image", "binding",
                   "copy-on-write"});
    layout.addRow({"992-1023", "stack", "stack (anonymous)", "binding",
                   "zero-fill"});
    layout.print();

    // Exercise the structure: execute (read code), mutate data
    // (copy-on-write), grow the stack.
    runTask(stack.sim, k.touch(proc, 0, kernel::AccessType::Read));
    runTask(stack.sim,
            k.touch(proc, 64ull * page, kernel::AccessType::Write));
    runTask(stack.sim,
            k.touch(proc, 1000ull * page, kernel::AccessType::Write));

    auto r_code = k.resolve(va, 0);
    auto r_data = k.resolve(va, 64);
    auto r_stk = k.resolve(va, 1000);

    std::printf("\nAfter touching code, data (write) and stack:\n");
    TextTable res({"VA page", "resolves to", "frame", "flags"});
    auto row = [&](const char *name, std::uint64_t va_page,
                   const kernel::Kernel::Resolution &r) {
        std::string flags;
        if (r.entry) {
            if (r.entry->flags & flag::kDirty)
                flags += "dirty ";
            if (r.entry->flags & flag::kReferenced)
                flags += "ref ";
        }
        res.addRow({name,
                    k.segment(r.seg).name() + " page " +
                        std::to_string(r.page),
                    r.entry ? std::to_string(r.entry->frame) : "-",
                    flags});
        (void)va_page;
    };
    row("code[0]", 0, r_code);
    row("data[0]", 64, r_data);
    row("stack[8]", 1000, r_stk);
    res.print();

    std::printf("\nThe data write landed in the *data segment* (a "
                "private copy-on-write page);\nthe image segment is "
                "untouched. Composition operation costs:\n\n");
    TextTable costs({"Operation", "us"});
    for (const auto &op : ops)
        costs.addRow({op.what, TextTable::num(sim::toUsec(op.cost), 1)});
    costs.print();
    return 0;
}
