/**
 * @file
 * Host-time microbenchmarks (google-benchmark) of the implementation
 * itself: these measure how fast *this library* executes kernel
 * operations, fault delivery and the simulation engine on the host —
 * useful for keeping the simulator fast, and distinct from the
 * simulated-time tables the paper benches report.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <chrono>

#include "core/kernel.h"
#include "db/lock.h"
#include "db/shared_kernel.h"
#include "hw/cache_model.h"
#include "hw/disk.h"
#include "inject/inject.h"
#include "managers/generic.h"
#include "managers/spcm.h"
#include "policy/clock.h"
#include "policy/policy.h"
#include "sim/random.h"
#include "sim/shard.h"
#include "uio/paging.h"

using namespace vpp;

namespace {

hw::MachineConfig
benchMachine()
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 32 << 20;
    return m;
}

void
BM_EventScheduling(benchmark::State &state)
{
    sim::Simulation s;
    std::uint64_t n = 0;
    for (auto _ : state) {
        s.schedule(s.now() + 1, [&n] { ++n; });
        s.run();
    }
    benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_EventScheduling);

void
BM_EventThroughput(benchmark::State &state)
{
    // Many concurrent coroutines pushing delays through the queue:
    // exercises the heap/next-register interplay rather than the
    // schedule-one/run-one pattern of BM_EventScheduling.
    const int tasks = static_cast<int>(state.range(0));
    constexpr int kRounds = 64;
    for (auto _ : state) {
        sim::Simulation s;
        for (int i = 0; i < tasks; ++i) {
            s.spawn([](sim::Simulation *sim, int salt) -> sim::Task<> {
                for (int k = 0; k < kRounds; ++k) {
                    if ((k + salt) % 5 == 0)
                        co_await sim->yield();
                    else
                        co_await sim->delay(1 + (k + salt) % 7);
                }
            }(&s, i));
        }
        s.run();
        benchmark::DoNotOptimize(s.eventsRun());
    }
    state.SetItemsProcessed(state.iterations() * tasks * kRounds);
}
BENCHMARK(BM_EventThroughput)->Arg(4)->Arg(64)->Arg(512);

void
BM_MigratePagesNow(benchmark::State &state)
{
    sim::Simulation s;
    kernel::Kernel kern(s, benchMachine());
    kernel::SegmentId a =
        kern.createSegmentNow("a", 4096, 4096, 0);
    kernel::SegmentId b =
        kern.createSegmentNow("b", 4096, 4096, 0);
    kern.migratePagesNow(kernel::kPhysSegment, a, 0, 0, 1024, 0, 0);
    bool fwd = true;
    for (auto _ : state) {
        if (fwd)
            kern.migratePagesNow(a, b, 0, 0, state.range(0), 0, 0);
        else
            kern.migratePagesNow(b, a, 0, 0, state.range(0), 0, 0);
        fwd = !fwd;
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MigratePagesNow)->Arg(1)->Arg(16)->Arg(256)->Arg(1024);

void
BM_ResolveThroughBindings(benchmark::State &state)
{
    sim::Simulation s;
    kernel::Kernel kern(s, benchMachine());
    kernel::SegmentId file =
        kern.createSegmentNow("file", 4096, 256, 0);
    kern.migratePagesNow(kernel::kPhysSegment, file, 0, 0, 256, 0, 0);
    kernel::SegmentId data =
        kern.createSegmentNow("data", 4096, 256, 0);
    kern.bindRegionNow(data, 0, 256, file, 0, kernel::flag::kProtMask,
                       true);
    kernel::SegmentId va = kern.createSegmentNow("va", 4096, 256, 0);
    kern.bindRegionNow(va, 0, 256, data, 0, kernel::flag::kProtMask);
    std::uint64_t p = 0;
    for (auto _ : state) {
        auto r = kern.resolve(va, p % 256);
        benchmark::DoNotOptimize(r.entry);
        ++p;
    }
}
BENCHMARK(BM_ResolveThroughBindings);

void
BM_ResolveHashedHit(benchmark::State &state)
{
    // Steady-state hit path of the hashed resolve() front-cache: the
    // working set (128 pages, two binding hops deep) fits the cache,
    // so after warm-up nearly every lookup is answered without walking
    // the sorted-binding chain. Contrast with
    // BM_ResolveThroughBindings, whose 256-page cycle thrashes it.
    sim::Simulation s;
    kernel::Kernel kern(s, benchMachine());
    kernel::SegmentId file =
        kern.createSegmentNow("file", 4096, 256, 0);
    kern.migratePagesNow(kernel::kPhysSegment, file, 0, 0, 256, 0, 0);
    kernel::SegmentId data =
        kern.createSegmentNow("data", 4096, 256, 0);
    kern.bindRegionNow(data, 0, 256, file, 0, kernel::flag::kProtMask,
                       true);
    kernel::SegmentId va = kern.createSegmentNow("va", 4096, 256, 0);
    kern.bindRegionNow(va, 0, 256, data, 0, kernel::flag::kProtMask);
    for (std::uint64_t p = 0; p < 128; ++p)
        benchmark::DoNotOptimize(kern.resolve(va, p).entry);
    std::uint64_t p = 0;
    for (auto _ : state) {
        auto r = kern.resolve(va, p % 128);
        benchmark::DoNotOptimize(r.entry);
        ++p;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResolveHashedHit);

void
BM_PerCpuResolveHit(benchmark::State &state)
{
    // Steady-state hit path of a per-CPU resolve cache: the same
    // 128-page working set as BM_ResolveHashedHit, but probed through
    // Kernel::cpuResolve, which validates each entry by re-summing the
    // live per-segment mutation epochs of its resolution chain. The
    // target is parity (within ~10%) with the shared hashed cache —
    // the epoch sum is the only extra work on a hit.
    sim::Simulation s;
    kernel::Kernel kern(s, benchMachine());
    kernel::SegmentId file =
        kern.createSegmentNow("file", 4096, 256, 0);
    kern.migratePagesNow(kernel::kPhysSegment, file, 0, 0, 256, 0, 0);
    kernel::SegmentId data =
        kern.createSegmentNow("data", 4096, 256, 0);
    kern.bindRegionNow(data, 0, 256, file, 0, kernel::flag::kProtMask,
                       true);
    kernel::SegmentId va = kern.createSegmentNow("va", 4096, 256, 0);
    kern.bindRegionNow(va, 0, 256, data, 0, kernel::flag::kProtMask);
    kern.configureCpus(1, /*snapshot_epochs=*/false);
    for (kernel::PageIndex p = 0; p < 128; ++p)
        kern.cpuStore(0, kern.resolveForCpu(va, p));
    std::uint64_t p = 0;
    for (auto _ : state) {
        const auto *r = kern.cpuResolve(0, va, p % 128);
        benchmark::DoNotOptimize(r);
        ++p;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerCpuResolveHit);

void
BM_FullFaultPath(benchmark::State &state)
{
    sim::Simulation s;
    kernel::Kernel kern(s, benchMachine());
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(
        kern, "m", hw::ManagerMode::SameProcess, &spcm, 1);
    manager.initNow(8192, 4096);
    kernel::SegmentId seg =
        kern.createSegmentNow("heap", 4096, 1 << 20, 1, &manager);
    kernel::Process proc("p", 1);
    kernel::PageIndex page = 0;
    for (auto _ : state) {
        if (manager.freePages() == 0) {
            state.PauseTiming();
            // Recycle: reclaim everything allocated so far and restart
            // from page 0 so long runs never hit the segment limit.
            std::vector<kernel::PageIndex> pages;
            pages.reserve(kern.segment(seg).pages().size());
            for (const auto &[pg, e] : kern.segment(seg).pages())
                pages.push_back(pg);
            for (auto pg : pages)
                kernel::runTask(s, manager.reclaimPage(kern, seg, pg));
            page = 0;
            state.ResumeTiming();
        }
        kernel::runTask(s, kern.touchSegment(
                               proc, seg, page++,
                               kernel::AccessType::Write));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullFaultPath);

void
BM_FaultBatch(benchmark::State &state)
{
    // Batched fault delivery (MachineConfig::faultCoalescing): N
    // faults raised at the same instant against one manager share a
    // single dispatch crossing. Items are faults, so the per-fault
    // host cost is directly comparable with BM_FullFaultPath.
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    sim::Simulation s;
    hw::MachineConfig m = benchMachine();
    m.faultCoalescing = true;
    kernel::Kernel kern(s, m);
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(
        kern, "m", hw::ManagerMode::SameProcess, &spcm, 1);
    manager.initNow(8192, 4096);
    kernel::SegmentId seg =
        kern.createSegmentNow("heap", 4096, 1 << 20, 1, &manager);
    kernel::Process proc("p", 1);
    kernel::PageIndex page = 0;
    for (auto _ : state) {
        if (manager.freePages() < n) {
            state.PauseTiming();
            std::vector<kernel::PageIndex> pages;
            pages.reserve(kern.segment(seg).pages().size());
            for (const auto &[pg, e] : kern.segment(seg).pages())
                pages.push_back(pg);
            for (auto pg : pages)
                kernel::runTask(s, manager.reclaimPage(kern, seg, pg));
            page = 0;
            state.ResumeTiming();
        }
        std::vector<sim::Task<>> touches;
        touches.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            touches.push_back(kern.touchSegment(
                proc, seg, page++, kernel::AccessType::Write));
        }
        kernel::runTask(s, sim::joinAll(s, std::move(touches)));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FaultBatch)->Arg(1)->Arg(8)->Arg(32);

void
BM_FaultRedeliver(benchmark::State &state)
{
    // Host cost of the resilient delivery machinery: a lying handler
    // forces redeliveries (promise + deadline race per attempt) until
    // an honest attempt resolves the fault. maxRedeliveries is high
    // enough that failover is unreachable, so every iteration stays
    // on the redelivery path.
    sim::Simulation s;
    kernel::Kernel kern(s, benchMachine());
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(
        kern, "m", hw::ManagerMode::SameProcess, &spcm, 1);
    manager.initNow(8192, 4096);
    kernel::SegmentId seg =
        kern.createSegmentNow("heap", 4096, 1 << 20, 1, &manager);
    kernel::Process proc("p", 1);

    kernel::ResiliencePolicy pol;
    pol.enabled = true;
    pol.faultDeadline = sim::msec(10);
    pol.maxRedeliveries = 64;
    pol.retryBackoff = sim::usec(10);
    pol.failover = false;
    kern.setResiliencePolicy(pol);

    inject::Config icfg;
    icfg.enabled = true;
    icfg.seed = 42;
    icfg.manager.lieProb = 0.5;
    inject::Engine eng(icfg);
    kern.setInjector(&eng);

    kernel::PageIndex page = 0;
    for (auto _ : state) {
        if (manager.freePages() == 0) {
            state.PauseTiming();
            std::vector<kernel::PageIndex> pages;
            pages.reserve(kern.segment(seg).pages().size());
            for (const auto &[pg, e] : kern.segment(seg).pages())
                pages.push_back(pg);
            for (auto pg : pages)
                kernel::runTask(s, manager.reclaimPage(kern, seg, pg));
            page = 0;
            state.ResumeTiming();
        }
        kernel::runTask(s, kern.touchSegment(
                               proc, seg, page++,
                               kernel::AccessType::Write));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultRedeliver);

void
BM_TouchResident(benchmark::State &state)
{
    // Warm touch: the page is resident and accessible, so this is the
    // no-fault delivery path (resolve + flag update), the common case
    // between faults.
    sim::Simulation s;
    kernel::Kernel kern(s, benchMachine());
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(
        kern, "m", hw::ManagerMode::SameProcess, &spcm, 1);
    manager.initNow(256, 128);
    kernel::SegmentId seg =
        kern.createSegmentNow("heap", 4096, 1 << 20, 1, &manager);
    kernel::Process proc("p", 1);
    kernel::runTask(s, kern.touchSegment(proc, seg, 0,
                                         kernel::AccessType::Write));
    for (auto _ : state) {
        kernel::runTask(s, kern.touchSegment(
                               proc, seg, 0, kernel::AccessType::Read));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TouchResident);

void
BM_CopyFrame(benchmark::State &state)
{
    // The host cost of the simulated copy primitive: frame 1 already
    // holds data from the previous iteration, so each copyFrame is the
    // steady-state replace-with-copy path.
    hw::PhysicalMemory pm(1 << 20, 4096);
    std::memset(pm.write(0), 0xA5, 4096);
    for (auto _ : state) {
        pm.copyFrame(1, 0);
        benchmark::DoNotOptimize(pm.peek(1));
    }
    state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_CopyFrame);

void
BM_ZeroFill(benchmark::State &state)
{
    // The host cost of the simulated zero primitive over a batch of
    // committed frames. Repopulation between iterations is untimed
    // (manual time), so only the zeroing is measured.
    constexpr int kFrames = 256;
    hw::PhysicalMemory pm((kFrames + 1) * 4096, 4096);
    std::memset(pm.write(0), 0xA5, 4096);
    for (auto _ : state) {
        for (int i = 1; i <= kFrames; ++i)
            pm.copyFrame(i, 0);
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 1; i <= kFrames; ++i)
            pm.zero(i);
        auto t1 = std::chrono::steady_clock::now();
        state.SetIterationTime(
            std::chrono::duration<double>(t1 - t0).count());
    }
    state.SetItemsProcessed(state.iterations() * kFrames);
    state.SetBytesProcessed(state.iterations() * kFrames * 4096);
}
BENCHMARK(BM_ZeroFill)->UseManualTime();

void
BM_PageInOut(benchmark::State &state)
{
    // Functional page-in + page-out of a whole cached file through the
    // frame store: the host data path of every manager's fill and
    // writeback, with no simulated time.
    constexpr std::uint64_t kPages = 256;
    sim::Simulation s;
    kernel::Kernel kern(s, benchMachine());
    hw::Disk disk(s, 0, 1000.0);
    uio::FileServer server(s, disk, 0);
    uio::FileId f = server.createFile("bench", kPages * 4096);
    std::vector<std::byte> blob(kPages * 4096, std::byte{0x5A});
    server.writeNow(f, 0, blob);
    kernel::SegmentId seg =
        kern.createSegmentNow("cache", 4096, kPages, 0);
    kern.migratePagesNow(kernel::kPhysSegment, seg, 0, 0, kPages, 0, 0);
    for (auto _ : state) {
        for (std::uint64_t p = 0; p < kPages; ++p)
            uio::pageInNow(kern, server, f, p * 4096, seg, p);
        for (std::uint64_t p = 0; p < kPages; ++p)
            uio::pageOutNow(kern, server, f, p * 4096, seg, p);
    }
    state.SetItemsProcessed(state.iterations() * kPages * 2);
    state.SetBytesProcessed(state.iterations() * kPages * 2 * 4096);
}
BENCHMARK(BM_PageInOut);

void
BM_ShardedStep(benchmark::State &state)
{
    // Per-epoch overhead of the sharded engine: 4 shards, each with
    // exactly one local event per lookahead window, so every epoch
    // pays the full merge/horizon/drain cycle (plus two barrier
    // crossings when workers > 1) for minimal useful work — the
    // worst case for the machinery, hence the number to watch.
    const unsigned workers = static_cast<unsigned>(state.range(0));
    constexpr unsigned kShards = 4;
    constexpr int kEpochs = 256;
    constexpr sim::Duration kLookahead = 1000;
    sim::ShardedSimulation ss(kShards, kLookahead, workers);
    std::uint64_t epochsRun = 0;
    for (auto _ : state) {
        for (unsigned s = 0; s < kShards; ++s) {
            sim::Simulation &sh = ss.shard(s);
            sh.spawn([](sim::Simulation *sim) -> sim::Task<> {
                for (int i = 0; i < kEpochs; ++i)
                    co_await sim->delay(kLookahead);
            }(&sh));
        }
        ss.run();
        epochsRun = ss.epochs();
    }
    benchmark::DoNotOptimize(epochsRun);
    state.SetItemsProcessed(state.iterations() * kEpochs);
}
BENCHMARK(BM_ShardedStep)->Arg(1)->Arg(2);

void
BM_CrossShardEvent(benchmark::State &state)
{
    // Round-trip cost of one cross-shard event: post into the
    // mailbox, barrier hand-off, canonical merge, delivery on the
    // destination — a two-shard ping-pong where every hop crosses.
    const unsigned workers = static_cast<unsigned>(state.range(0));
    constexpr int kRounds = 512;
    constexpr sim::Duration kLookahead = 1000;
    sim::ShardedSimulation ss(2, kLookahead, workers);
    struct PingPong
    {
        sim::ShardedSimulation *ss;
        int remaining = 0;

        void
        hop(unsigned me)
        {
            if (remaining-- <= 0)
                return;
            unsigned other = 1 - me;
            ss->post(other, ss->shard(me).now() + kLookahead,
                     [this, other] { hop(other); });
        }
    };
    PingPong pp{&ss};
    for (auto _ : state) {
        pp.remaining = kRounds;
        ss.post(0, ss.shard(0).now(), [&pp] { pp.hop(0); });
        ss.run();
    }
    benchmark::DoNotOptimize(ss.crossEvents());
    state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_CrossShardEvent)->Arg(1)->Arg(2);

void
BM_MarketRound(benchmark::State &state)
{
    // Host cost of a batched auction round: `tenants` same-instant
    // 4-frame bids collected into one callBatch crossing and answered
    // by the round server, sharded free lists on. Measures the round
    // machinery itself (collect, batch, distribute), the per-grant
    // kernel work riding along.
    const std::uint64_t tenants =
        static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulation s;
        kernel::Kernel kern(s, benchMachine());
        mgr::SpcmParams sp;
        sp.shards = 4;
        sp.batchedRounds = true;
        sp.admissionMaxWaiters = 16;
        sp.admissionMaxWait = sim::msec(1);
        mgr::SystemPageCacheManager spcm(kern, mgr::MarketParams{},
                                         sp);
        std::vector<mgr::ClientId> ids(tenants);
        std::vector<kernel::SegmentId> segs(tenants);
        for (std::uint64_t t = 0; t < tenants; ++t) {
            ids[t] = spcm.registerClient("t" + std::to_string(t),
                                         1000 + t, 1.0);
            spcm.deposit(ids[t], 1.0);
            segs[t] = kern.createSegmentNow(
                "s" + std::to_string(t), 4096, 8, 1000 + t);
        }
        for (std::uint64_t t = 0; t < tenants; ++t) {
            s.spawn([](mgr::SystemPageCacheManager *m,
                       mgr::ClientId c,
                       kernel::SegmentId seg) -> sim::Task<> {
                std::vector<kernel::PageIndex> slots{0, 1, 2, 3};
                co_await m->requestPages(c, seg, std::move(slots));
            }(&spcm, ids[t], segs[t]));
        }
        s.run();
        benchmark::DoNotOptimize(spcm.marketRounds());
    }
    state.SetItemsProcessed(state.iterations() * tenants);
}
BENCHMARK(BM_MarketRound)->Arg(8)->Arg(64)->Arg(256);

void
BM_SharedKernelFault(benchmark::State &state)
{
    // Aggregate kernel-trip throughput of the shared-kernel
    // DebitCredit study at a fixed 8-shard scenario, varying host
    // worker threads (Arg). On a multi-core host the 8-worker run
    // should deliver a multiple of the 1-worker aggregate rate;
    // results stay byte-identical regardless, so only wall time moves.
    db::SharedKernelParams p;
    p.shards = 8;
    p.cpusPerShard = 4;
    p.relations = 8;
    p.pagesPerRelation = 64;
    p.hotPages = 32;
    p.durationSec = 0.05;
    p.workers = static_cast<unsigned>(state.range(0));
    std::uint64_t trips = 0;
    for (auto _ : state) {
        auto r = db::runSharedKernelStudy(p);
        trips += r.kernelTrips;
        benchmark::DoNotOptimize(r.touches);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(trips));
}
BENCHMARK(BM_SharedKernelFault)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_CacheModelAccess(benchmark::State &state)
{
    hw::CacheModel cache(64 << 10, 16, state.range(0), 4096);
    sim::Random rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 22)));
    }
}
BENCHMARK(BM_CacheModelAccess)->Arg(1)->Arg(2)->Arg(4);

void
BM_LockAcquireRelease(benchmark::State &state)
{
    sim::Simulation s;
    db::MultiModeLock lock(s);
    for (auto _ : state) {
        bool ok = lock.tryAcquire(db::LockMode::IX);
        benchmark::DoNotOptimize(ok);
        lock.release(db::LockMode::IX);
    }
}
BENCHMARK(BM_LockAcquireRelease);

void
BM_Xoshiro(benchmark::State &state)
{
    sim::Random rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro);

// The replacement-policy hooks sit on the clockPass hot path, so the
// virtual-dispatch overhead vs the old inlined clock is gated:
// scripts/check_perf.sh requires BM_PolicyTouch within 1.1x of
// BM_PolicyTouchInline.
constexpr std::uint64_t kPolicyPages = 1024;

void
BM_PolicyTouch(benchmark::State &state)
{
    policy::PolicyParams pp;
    pp.capacityHint = kPolicyPages;
    pp.clockSecondChance = true;
    // The factory lives in another TU, so the compiler cannot prove
    // the dynamic type: every touch pays the virtual call, exactly
    // like the manager's policy_ pointer does.
    std::unique_ptr<policy::ReplacementPolicy> p =
        policy::make(policy::Kind::Clock, pp);
    for (std::uint64_t i = 0; i < kPolicyPages; ++i)
        p->insert(policy::makePageId(1, i));
    std::uint64_t i = 0;
    for (auto _ : state)
        p->touch(policy::makePageId(1, i++ & (kPolicyPages - 1)));
    benchmark::DoNotOptimize(p->stats().touches);
}
BENCHMARK(BM_PolicyTouch);

void
BM_PolicyTouchInline(benchmark::State &state)
{
    policy::PolicyParams pp;
    pp.capacityHint = kPolicyPages;
    pp.clockSecondChance = true;
    policy::ClockPolicy p(pp); // final class, direct calls
    for (std::uint64_t i = 0; i < kPolicyPages; ++i)
        p.insert(policy::makePageId(1, i));
    std::uint64_t i = 0;
    for (auto _ : state)
        p.touch(policy::makePageId(1, i++ & (kPolicyPages - 1)));
    benchmark::DoNotOptimize(p.stats().touches);
}
BENCHMARK(BM_PolicyTouchInline);

void
BM_PolicyVictim(benchmark::State &state)
{
    // Steady-state evict+insert throughput per online policy (the
    // arg indexes kAllKinds: 0 clock, 1 slru, 2 2q, 3 wsclock).
    policy::Kind kind =
        policy::kAllKinds[static_cast<std::size_t>(state.range(0))];
    policy::PolicyParams pp;
    pp.capacityHint = kPolicyPages;
    pp.clockSecondChance = true;
    std::unique_ptr<policy::ReplacementPolicy> p =
        policy::make(kind, pp);
    std::uint64_t next = 0;
    for (; next < kPolicyPages; ++next)
        p->insert(policy::makePageId(1, next));
    for (auto _ : state) {
        p->setNow(next);
        std::optional<policy::PageId> v = p->victim();
        benchmark::DoNotOptimize(v);
        p->insert(policy::makePageId(1, next++));
    }
    state.SetLabel(std::string(policy::kindName(kind)));
}
BENCHMARK(BM_PolicyVictim)->DenseRange(0, 3);

} // namespace

/**
 * Custom main so `--json[=path]` writes the machine-readable results
 * (default BENCH_host.json) used by scripts/check_perf.sh to track the
 * host-perf trajectory across commits. It expands to google-benchmark's
 * --benchmark_out/--benchmark_out_format flags.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args;
    std::string outPath;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            outPath = "BENCH_host.json";
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            outPath = argv[i] + 7;
            if (outPath.empty()) {
                std::fprintf(stderr,
                             "error: --json= requires a path\n");
                return 1;
            }
        } else {
            args.push_back(argv[i]);
        }
    }
    std::string outFlag, fmtFlag;
    if (!outPath.empty()) {
        outFlag = "--benchmark_out=" + outPath;
        fmtFlag = "--benchmark_out_format=json";
        args.push_back(outFlag.data());
        args.push_back(fmtFlag.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
