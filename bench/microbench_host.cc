/**
 * @file
 * Host-time microbenchmarks (google-benchmark) of the implementation
 * itself: these measure how fast *this library* executes kernel
 * operations, fault delivery and the simulation engine on the host —
 * useful for keeping the simulator fast, and distinct from the
 * simulated-time tables the paper benches report.
 */

#include <benchmark/benchmark.h>

#include "core/kernel.h"
#include "db/lock.h"
#include "hw/cache_model.h"
#include "managers/generic.h"
#include "sim/random.h"

using namespace vpp;

namespace {

hw::MachineConfig
benchMachine()
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 32 << 20;
    return m;
}

void
BM_EventScheduling(benchmark::State &state)
{
    sim::Simulation s;
    std::uint64_t n = 0;
    for (auto _ : state) {
        s.schedule(s.now() + 1, [&n] { ++n; });
        s.run();
    }
    benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_EventScheduling);

void
BM_MigratePagesNow(benchmark::State &state)
{
    sim::Simulation s;
    kernel::Kernel kern(s, benchMachine());
    kernel::SegmentId a =
        kern.createSegmentNow("a", 4096, 4096, 0);
    kernel::SegmentId b =
        kern.createSegmentNow("b", 4096, 4096, 0);
    kern.migratePagesNow(kernel::kPhysSegment, a, 0, 0, 1024, 0, 0);
    bool fwd = true;
    for (auto _ : state) {
        if (fwd)
            kern.migratePagesNow(a, b, 0, 0, state.range(0), 0, 0);
        else
            kern.migratePagesNow(b, a, 0, 0, state.range(0), 0, 0);
        fwd = !fwd;
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MigratePagesNow)->Arg(1)->Arg(16)->Arg(256);

void
BM_ResolveThroughBindings(benchmark::State &state)
{
    sim::Simulation s;
    kernel::Kernel kern(s, benchMachine());
    kernel::SegmentId file =
        kern.createSegmentNow("file", 4096, 256, 0);
    kern.migratePagesNow(kernel::kPhysSegment, file, 0, 0, 256, 0, 0);
    kernel::SegmentId data =
        kern.createSegmentNow("data", 4096, 256, 0);
    kern.bindRegionNow(data, 0, 256, file, 0, kernel::flag::kProtMask,
                       true);
    kernel::SegmentId va = kern.createSegmentNow("va", 4096, 256, 0);
    kern.bindRegionNow(va, 0, 256, data, 0, kernel::flag::kProtMask);
    std::uint64_t p = 0;
    for (auto _ : state) {
        auto r = kern.resolve(va, p % 256);
        benchmark::DoNotOptimize(r.entry);
        ++p;
    }
}
BENCHMARK(BM_ResolveThroughBindings);

void
BM_FullFaultPath(benchmark::State &state)
{
    sim::Simulation s;
    kernel::Kernel kern(s, benchMachine());
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(
        kern, "m", hw::ManagerMode::SameProcess, &spcm, 1);
    manager.initNow(8192, 4096);
    kernel::SegmentId seg =
        kern.createSegmentNow("heap", 4096, 1 << 20, 1, &manager);
    kernel::Process proc("p", 1);
    kernel::PageIndex page = 0;
    for (auto _ : state) {
        if (manager.freePages() == 0) {
            state.PauseTiming();
            // Recycle: reclaim everything allocated so far.
            std::vector<kernel::PageIndex> pages;
            for (auto &[pg, e] : kern.segment(seg).pages())
                pages.push_back(pg);
            for (auto pg : pages)
                kernel::runTask(s, manager.reclaimPage(kern, seg, pg));
            state.ResumeTiming();
        }
        kernel::runTask(s, kern.touchSegment(
                               proc, seg, page++,
                               kernel::AccessType::Write));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullFaultPath);

void
BM_CacheModelAccess(benchmark::State &state)
{
    hw::CacheModel cache(64 << 10, 16, state.range(0), 4096);
    sim::Random rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 22)));
    }
}
BENCHMARK(BM_CacheModelAccess)->Arg(1)->Arg(2)->Arg(4);

void
BM_LockAcquireRelease(benchmark::State &state)
{
    sim::Simulation s;
    db::MultiModeLock lock(s);
    for (auto _ : state) {
        bool ok = lock.tryAcquire(db::LockMode::IX);
        benchmark::DoNotOptimize(ok);
        lock.release(db::LockMode::IX);
    }
}
BENCHMARK(BM_LockAcquireRelease);

void
BM_Xoshiro(benchmark::State &state)
{
    sim::Random rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro);

} // namespace

BENCHMARK_MAIN();
