/**
 * @file
 * Ablation A1 (paper §2.4): the memory-market model of global
 * allocation.
 *
 * Three claims to check:
 *  1. proportional share — clients receive memory in proportion to
 *     their dram income;
 *  2. stability — holdings converge instead of oscillating;
 *  3. batch save-and-run — a batch job can save drams while
 *     quiescent, then afford a large allocation for a timeslice
 *     ("runs as soon as the memory request is granted").
 */

#include <cstdio>
#include <vector>

#include "core/kernel.h"
#include "managers/generic.h"
#include "managers/spcm.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;

namespace {

struct ClientSpec
{
    const char *name;
    double income;
};

const std::vector<ClientSpec> kClients = {
    {"batch-sim (income 8)", 8.0},
    {"dbms (income 4)", 4.0},
    {"editor (income 2)", 2.0},
};

const char *const kPhases[] = {
    "start (quiescent, saving)", "saved up",
    "granted timeslice memory",  "computing (paying)",
    "timeslice over: paged out", "saving for the next slice",
};

/** A1a: everyone requests 32 MB; record what the market grants. */
vppbench::RowResult
runProportionalShare()
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 64 << 20;
    kernel::Kernel kern(s, m);
    mgr::MarketParams params;
    params.chargePerMBSec = 1.0;
    params.grantHorizonSec = 1.0;
    params.savingsTaxPerSec = 0.05;
    params.freeWhenUncontended = false;
    mgr::SystemPageCacheManager spcm(kern, params);

    std::vector<std::unique_ptr<mgr::GenericSegmentManager>> mgrs;
    for (const ClientSpec &c : kClients) {
        mgrs.push_back(std::make_unique<mgr::GenericSegmentManager>(
            kern, c.name, hw::ManagerMode::SameProcess, &spcm, 1));
        spcm.account(mgrs.back()->spcmClient()).incomeRate = c.income;
        runTask(s, mgrs.back()->init(16384, 0));
    }

    // Everyone greedily asks for 32 MB; the market limits each to
    // what its income sustains.
    s.schedule(sim::sec(5), [] {}); // accrue some income first
    s.run();
    vppbench::RowResult r;
    for (std::size_t i = 0; i < mgrs.size(); ++i) {
        std::uint64_t granted = runTask(s, mgrs[i]->requestFrames(8192));
        r.set("granted_frames." + std::to_string(i),
              static_cast<double>(granted));
    }
    return r;
}

/** A1b: quiescent batch job saves, buys a slice, pays, pages out. */
vppbench::RowResult
runBatchSaveAndRun()
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 64 << 20;
    kernel::Kernel kern(s, m);
    mgr::MarketParams params;
    params.chargePerMBSec = 1.0;
    params.grantHorizonSec = 1.0;
    params.savingsTaxPerSec = 0.02;
    params.freeWhenUncontended = false;
    mgr::SystemPageCacheManager spcm(kern, params);

    mgr::GenericSegmentManager batch(
        kern, "batch", hw::ManagerMode::SameProcess, &spcm, 1);
    spcm.account(batch.spcmClient()).incomeRate = 4.0;
    runTask(s, batch.init(16384, 0));

    vppbench::RowResult r;
    int snap = 0;
    auto snapshot = [&] {
        auto info = runTask(s, spcm.query(batch.spcmClient()));
        std::string n = std::to_string(snap++);
        r.set("t_sec." + n, sim::toSec(s.now()));
        r.set("balance." + n, info.balance);
        r.set("held_mb." + n,
              spcm.account(batch.spcmClient()).bytesHeld / 1048576.0);
    };

    snapshot(); // start (quiescent, saving)
    s.runUntil(sim::sec(8)); // save 8 s of income
    snapshot(); // saved up
    // The §2.4 policy: query the SPCM, size the request to what
    // the savings can sustain for the planned timeslice.
    auto info = runTask(s, spcm.query(batch.spcmClient()));
    double slice_sec = 2.0;
    std::uint64_t frames = static_cast<std::uint64_t>(
        (info.balance / slice_sec + 4.0) / 1.0 // drams/MB-s
        * (1 << 20) / 4096);
    std::uint64_t got = runTask(s, batch.requestFrames(frames));
    snapshot(); // granted timeslice memory
    s.runUntil(sim::sec(10)); // compute for the slice, paying
    snapshot(); // computing (paying)
    runTask(s, batch.surrenderFrames(got));
    snapshot(); // timeslice over: paged out
    s.runUntil(sim::sec(18));
    snapshot(); // saving for the next slice
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "ablation_market");

    vppbench::Sweep sweep("ablation_market", opt);
    sweep.add("proportional-share",
              [] { return runProportionalShare(); });
    sweep.add("batch-save-and-run",
              [] { return runBatchSaveAndRun(); });
    sweep.run();

    // --- Proportional share -------------------------------------------
    std::printf("Ablation A1a: proportional share under the "
                "memory market\n(everyone requests 32 MB; charge "
                "1 dram/MB-s)\n\n");
    TextTable t({"Client", "income (drams/s)", "granted (MB)",
                 "MB per dram/s"});
    for (std::size_t i = 0; i < kClients.size(); ++i) {
        double granted =
            sweep.get(0, "granted_frames." + std::to_string(i));
        double mb = granted * 4096.0 / (1 << 20);
        t.addRow({kClients[i].name,
                  TextTable::num(kClients[i].income, 0),
                  TextTable::num(mb, 1),
                  TextTable::num(mb / kClients[i].income, 2)});
    }
    t.print();

    // --- Batch save-and-run ------------------------------------------
    std::printf("\nAblation A1b: batch job saves drams, buys a "
                "timeslice, pages out\n\n");
    TextTable u({"t (s)", "phase", "balance (drams)",
                 "holdings (MB)"});
    for (std::size_t i = 0; i < std::size(kPhases); ++i) {
        std::string n = std::to_string(i);
        u.addRow({TextTable::num(sweep.get(1, "t_sec." + n), 1),
                  kPhases[i],
                  TextTable::num(sweep.get(1, "balance." + n), 1),
                  TextTable::num(sweep.get(1, "held_mb." + n), 1)});
    }
    u.print();
    std::printf("\nThe saved balance buys a burst well above the "
                "steady-state share, then\nthe job returns memory "
                "before going broke — the §2.4 batch policy.\n");
    return vppbench::exitCode(sweep);
}
