/**
 * @file
 * Ablation A1 (paper §2.4): the memory-market model of global
 * allocation.
 *
 * Three claims to check:
 *  1. proportional share — clients receive memory in proportion to
 *     their dram income;
 *  2. stability — holdings converge instead of oscillating;
 *  3. batch save-and-run — a batch job can save drams while
 *     quiescent, then afford a large allocation for a timeslice
 *     ("runs as soon as the memory request is granted").
 */

#include <cstdio>
#include <vector>

#include "core/kernel.h"
#include "managers/generic.h"
#include "managers/spcm.h"
#include "sim/table.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;

int
main()
{
    // --- Proportional share -------------------------------------------
    {
        sim::Simulation s;
        hw::MachineConfig m = hw::decstation5000_200();
        m.memoryBytes = 64 << 20;
        kernel::Kernel kern(s, m);
        mgr::MarketParams params;
        params.chargePerMBSec = 1.0;
        params.grantHorizonSec = 1.0;
        params.savingsTaxPerSec = 0.05;
        params.freeWhenUncontended = false;
        mgr::SystemPageCacheManager spcm(kern, params);

        struct Client
        {
            const char *name;
            double income;
            std::unique_ptr<mgr::GenericSegmentManager> mgr;
            std::uint64_t granted = 0;
        };
        std::vector<Client> clients;
        clients.push_back({"batch-sim (income 8)", 8.0, nullptr});
        clients.push_back({"dbms (income 4)", 4.0, nullptr});
        clients.push_back({"editor (income 2)", 2.0, nullptr});
        for (auto &c : clients) {
            c.mgr = std::make_unique<mgr::GenericSegmentManager>(
                kern, c.name, hw::ManagerMode::SameProcess, &spcm, 1);
            spcm.account(c.mgr->spcmClient()).incomeRate = c.income;
            runTask(s, c.mgr->init(16384, 0));
        }

        // Everyone greedily asks for 32 MB; the market limits each to
        // what its income sustains.
        s.schedule(sim::sec(5), [] {}); // accrue some income first
        s.run();
        for (auto &c : clients)
            c.granted = runTask(s, c.mgr->requestFrames(8192));

        std::printf("Ablation A1a: proportional share under the "
                    "memory market\n(everyone requests 32 MB; charge "
                    "1 dram/MB-s)\n\n");
        TextTable t({"Client", "income (drams/s)", "granted (MB)",
                     "MB per dram/s"});
        for (auto &c : clients) {
            double mb = c.granted * 4096.0 / (1 << 20);
            t.addRow({c.name, TextTable::num(c.income, 0),
                      TextTable::num(mb, 1),
                      TextTable::num(mb / c.income, 2)});
        }
        t.print();
    }

    // --- Batch save-and-run ------------------------------------------
    {
        sim::Simulation s;
        hw::MachineConfig m = hw::decstation5000_200();
        m.memoryBytes = 64 << 20;
        kernel::Kernel kern(s, m);
        mgr::MarketParams params;
        params.chargePerMBSec = 1.0;
        params.grantHorizonSec = 1.0;
        params.savingsTaxPerSec = 0.02;
        params.freeWhenUncontended = false;
        mgr::SystemPageCacheManager spcm(kern, params);

        mgr::GenericSegmentManager batch(
            kern, "batch", hw::ManagerMode::SameProcess, &spcm, 1);
        spcm.account(batch.spcmClient()).incomeRate = 4.0;
        runTask(s, batch.init(16384, 0));

        std::printf("\nAblation A1b: batch job saves drams, buys a "
                    "timeslice, pages out\n\n");
        TextTable t({"t (s)", "phase", "balance (drams)",
                     "holdings (MB)"});
        auto snapshot = [&](const char *phase) {
            auto info = runTask(s, spcm.query(batch.spcmClient()));
            t.addRow({TextTable::num(sim::toSec(s.now()), 1), phase,
                      TextTable::num(info.balance, 1),
                      TextTable::num(
                          spcm.account(batch.spcmClient()).bytesHeld /
                              1048576.0,
                          1)});
        };

        snapshot("start (quiescent, saving)");
        s.runUntil(sim::sec(8)); // save 8 s of income
        snapshot("saved up");
        // The §2.4 policy: query the SPCM, size the request to what
        // the savings can sustain for the planned timeslice.
        auto info = runTask(s, spcm.query(batch.spcmClient()));
        double slice_sec = 2.0;
        std::uint64_t frames = static_cast<std::uint64_t>(
            (info.balance / slice_sec + 4.0) / 1.0 // drams/MB-s
            * (1 << 20) / 4096);
        std::uint64_t got =
            runTask(s, batch.requestFrames(frames));
        snapshot("granted timeslice memory");
        s.runUntil(sim::sec(10)); // compute for the slice, paying
        snapshot("computing (paying)");
        runTask(s, batch.surrenderFrames(got));
        snapshot("timeslice over: paged out");
        s.runUntil(sim::sec(18));
        snapshot("saving for the next slice");
        t.print();
        std::printf("\nThe saved balance buys a burst well above the "
                    "steady-state share, then\nthe job returns memory "
                    "before going broke — the §2.4 batch policy.\n");
    }
    return 0;
}
