/**
 * @file
 * Ablation A5 (paper §2.1): manager execution mode. "The manager
 * module can be executed by a process separate from the application
 * or by the faulting process itself ... generally more efficient
 * because no context switch is required." Also quantifies the
 * R3000-style direct resumption against a kernel-mediated return
 * (680x0-style).
 */

#include <cstdio>
#include <vector>

#include "core/kernel.h"
#include "managers/generic.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;

namespace {

double
faultCost(hw::ManagerMode mode, bool resume_through_kernel)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 32 << 20;
    m.resumeThroughKernel = resume_through_kernel;
    kernel::Kernel kern(s, m);
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(kern, "mgr", mode, &spcm, 1);
    manager.initNow(4096, 512);
    kernel::SegmentId seg =
        kern.createSegmentNow("heap", 4096, 512, 1, &manager);
    kernel::Process proc("bench", 1);

    const int iters = 256;
    sim::SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i) {
        runTask(s, kern.touchSegment(proc, seg, i,
                                     kernel::AccessType::Write));
    }
    return sim::toUsec(s.now() - t0) / iters;
}

double
appElapsedSec(hw::ManagerMode mode, int faults, double compute_minstr)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 128 << 20;
    kernel::Kernel kern(s, m);
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(kern, "mgr", mode, &spcm, 1);
    manager.initNow(32768, 8192);
    kernel::SegmentId seg = kern.createSegmentNow(
        "heap", 4096, static_cast<std::uint64_t>(faults) + 1, 1,
        &manager);
    kernel::Process proc("bench", 1);

    sim::SimTime t0 = s.now();
    runTask(s, [](sim::Simulation &sim, kernel::Kernel &k,
                  kernel::Process &p, kernel::SegmentId sg, int n,
                  sim::Duration compute) -> sim::Task<> {
        co_await sim.delay(compute);
        for (int i = 0; i < n; ++i) {
            co_await k.touchSegment(p, sg, i,
                                    kernel::AccessType::Write);
        }
    }(s, kern, proc, seg, faults, m.instructions(compute_minstr * 1e6)));
    return sim::toSec(s.now() - t0);
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "ablation_manager_mode");

    vppbench::Sweep sweep("ablation_manager_mode", opt);
    struct Mode
    {
        const char *label;
        hw::ManagerMode mode;
        bool viaKernel;
    };
    std::vector<Mode> modes = {
        {"same process, direct resume (R3000)",
         hw::ManagerMode::SameProcess, false},
        {"same process, resume via kernel (680x0)",
         hw::ManagerMode::SameProcess, true},
        {"separate process (Send/Receive/Reply)",
         hw::ManagerMode::SeparateProcess, false},
    };
    for (const Mode &md : modes) {
        sweep.add(md.label, [md] {
            vppbench::RowResult r;
            r.set("fault_us", faultCost(md.mode, md.viaKernel));
            return r;
        });
    }
    std::vector<int> faultCounts = {100, 1000, 5000, 20000};
    for (int faults : faultCounts) {
        sweep.add("elapsed-" + std::to_string(faults) + "-faults",
                  [faults] {
                      vppbench::RowResult r;
                      r.set("same_sec",
                            appElapsedSec(hw::ManagerMode::SameProcess,
                                          faults, 40.0));
                      r.set("separate_sec",
                            appElapsedSec(
                                hw::ManagerMode::SeparateProcess,
                                faults, 40.0));
                      return r;
                  });
    }
    sweep.run();

    std::printf("Ablation A5: manager execution mode\n\n");

    TextTable t({"Configuration", "minimal fault (us)"});
    for (std::size_t i = 0; i < modes.size(); ++i) {
        t.addRow({modes[i].label,
                  TextTable::num(sweep.get(i, "fault_us"), 1)});
    }
    t.print();

    std::printf("\nEffect on a program taking N faults over 2 s of "
                "compute:\n\n");
    TextTable e({"Faults", "same-process (s)", "separate (s)",
                 "penalty"});
    for (std::size_t i = 0; i < faultCounts.size(); ++i) {
        std::size_t row = modes.size() + i;
        double same = sweep.get(row, "same_sec");
        double sep = sweep.get(row, "separate_sec");
        e.addRow({std::to_string(faultCounts[i]),
                  TextTable::num(same, 3), TextTable::num(sep, 3),
                  TextTable::num((sep / same - 1.0) * 100, 1) + "%"});
    }
    e.print();
    std::printf("\nThe separate-process cost only matters for "
                "fault-intensive programs; the\npaper's default "
                "manager runs separate, application managers run "
                "in-process.\n");
    return vppbench::exitCode(sweep);
}
