/**
 * @file
 * Ablation A3 (paper §1, §2.2): application-directed read-ahead and
 * discard of dirty intermediates.
 *
 * The paper's motivating example: a large-scale particle simulation
 * scans ~200 MB per simulated time step with seconds of compute,
 * leaving "ample time to overlap prefetching and writeback if the
 * data does not fit entirely in memory". This bench scans an
 * out-of-core matrix with varying read-ahead windows, and separately
 * measures the I/O saved by discarding (rather than writing back) a
 * dirty intermediate matrix.
 */

#include <cstdio>

#include "appmgr/prefetch_mgr.h"
#include "core/kernel.h"
#include "hw/disk.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;
namespace flag = kernel::flag;

namespace {

struct ScanResult
{
    double elapsedSec;
    std::uint64_t demandFills;
    std::uint64_t prefetched;
};

ScanResult
scanMatrix(std::uint64_t window, std::uint64_t pages,
           sim::Duration compute_per_page)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 64 << 20;
    kernel::Kernel kern(s, m);
    hw::Disk disk(s, m.diskLatency, m.diskBandwidthMBps);
    uio::FileServer server(s, disk, sim::usec(200));
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    appmgr::PrefetchingManager mgr(kern, &spcm, 1, server, window);
    mgr.initNow(8192, 2048);

    uio::FileId f = server.createFile("matrix", pages * 4096);
    kernel::SegmentId seg = kern.createSegmentNow(
        "matrix", 4096, pages, 1, &mgr);
    mgr.attach(seg, f);
    kernel::Process proc("sim", 1);

    sim::SimTime t0 = s.now();
    runTask(s, [](sim::Simulation &sim, kernel::Kernel &k,
                  kernel::Process &p, kernel::SegmentId sg,
                  std::uint64_t n, sim::Duration compute)
                   -> sim::Task<> {
        for (kernel::PageIndex pg = 0; pg < n; ++pg) {
            co_await k.touchSegment(p, sg, pg,
                                    kernel::AccessType::Read);
            co_await sim.delay(compute);
        }
    }(s, kern, proc, seg, pages, compute_per_page));
    s.run(); // drain trailing prefetches
    return {sim::toSec(s.now() - t0), mgr.demandFills(),
            mgr.prefetchedPages()};
}

struct ReclaimResult
{
    std::uint64_t diskWrites;
    double reclaimMs;
};

/** A3b: reclaim a dirty intermediate, writing back or discarding. */
ReclaimResult
reclaimIntermediate(bool discard)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 64 << 20;
    kernel::Kernel kern(s, m);
    hw::Disk disk(s, m.diskLatency, m.diskBandwidthMBps);
    uio::FileServer server(s, disk, sim::usec(200));
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    appmgr::PrefetchingManager mgr(kern, &spcm, 1, server, 0);
    mgr.initNow(8192, 1024);

    uio::FileId f = server.createFile("intermediate", 256 * 4096);
    kernel::SegmentId seg = kern.createSegmentNow(
        "intermediate", 4096, 256, 1, &mgr);
    mgr.attach(seg, f);
    kernel::Process proc("sim", 1);
    for (kernel::PageIndex p = 0; p < 256; ++p) {
        runTask(s, kern.touchSegment(proc, seg, p,
                                     kernel::AccessType::Write));
    }
    if (discard) {
        // The manager knows the intermediate will be regenerated:
        // mark it discardable before reclaiming.
        kern.modifyPageFlagsNow(seg, 0, 256, flag::kDiscardable, 0);
    }
    sim::SimTime t0 = s.now();
    runTask(s, mgr.reclaimRun(kern, seg, 0, 256));
    return {disk.writes(), sim::toMsec(s.now() - t0)};
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "ablation_prefetch");
    const std::uint64_t pages = 512; // 2 MB scan
    const sim::Duration compute = sim::msec(20);

    std::vector<std::uint64_t> windows = {0, 1, 2, 4, 8, 16};
    vppbench::Sweep sweep("ablation_prefetch", opt);
    for (std::uint64_t w : windows) {
        sweep.add("window-" + std::to_string(w), [w, pages, compute] {
            ScanResult r = scanMatrix(w, pages, compute);
            vppbench::RowResult out;
            out.set("elapsed_sec", r.elapsedSec);
            out.set("demand_fills",
                    static_cast<double>(r.demandFills));
            out.set("prefetched", static_cast<double>(r.prefetched));
            return out;
        });
    }
    for (bool discard : {false, true}) {
        sweep.add(discard ? "reclaim-discard" : "reclaim-writeback",
                  [discard] {
                      ReclaimResult r = reclaimIntermediate(discard);
                      vppbench::RowResult out;
                      out.set("disk_writes",
                              static_cast<double>(r.diskWrites));
                      out.set("reclaim_ms", r.reclaimMs);
                      return out;
                  });
    }
    sweep.run();

    std::printf("Ablation A3a: read-ahead window vs scan time\n"
                "(512-page out-of-core scan, 20 ms compute per page, "
                "16 ms disk)\n\n");
    TextTable t({"Window", "elapsed (s)", "demand fills",
                 "prefetched", "vs no-prefetch"});
    double base = sweep.get(0, "elapsed_sec");
    for (std::size_t i = 0; i < windows.size(); ++i) {
        double elapsed = sweep.get(i, "elapsed_sec");
        t.addRow({std::to_string(windows[i]),
                  TextTable::num(elapsed, 2),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "demand_fills"))),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "prefetched"))),
                  TextTable::num((1.0 - elapsed / base) * 100, 1) +
                      "%"});
    }
    t.print();

    // --- A3b: discard dirty intermediates instead of writing back.
    std::printf("\nAblation A3b: discarding a dirty intermediate "
                "matrix saves its writeback\n\n");
    TextTable d({"Policy", "disk writes", "reclaim time (ms)"});
    for (std::size_t i = 0; i < 2; ++i) {
        std::size_t row = windows.size() + i;
        d.addRow({i == 1 ? "discard (application knows)"
                         : "write back (oblivious kernel)",
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(row, "disk_writes"))),
                  TextTable::num(sweep.get(row, "reclaim_ms"), 0)});
    }
    d.print();
    return vppbench::exitCode(sweep);
}
