/**
 * @file
 * Ablation A3 (paper §1, §2.2): application-directed read-ahead and
 * discard of dirty intermediates.
 *
 * The paper's motivating example: a large-scale particle simulation
 * scans ~200 MB per simulated time step with seconds of compute,
 * leaving "ample time to overlap prefetching and writeback if the
 * data does not fit entirely in memory". This bench scans an
 * out-of-core matrix with varying read-ahead windows, and separately
 * measures the I/O saved by discarding (rather than writing back) a
 * dirty intermediate matrix.
 */

#include <cstdio>

#include "appmgr/prefetch_mgr.h"
#include "core/kernel.h"
#include "hw/disk.h"
#include "sim/table.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;
namespace flag = kernel::flag;

namespace {

struct ScanResult
{
    double elapsedSec;
    std::uint64_t demandFills;
    std::uint64_t prefetched;
};

ScanResult
scanMatrix(std::uint64_t window, std::uint64_t pages,
           sim::Duration compute_per_page)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 64 << 20;
    kernel::Kernel kern(s, m);
    hw::Disk disk(s, m.diskLatency, m.diskBandwidthMBps);
    uio::FileServer server(s, disk, sim::usec(200));
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    appmgr::PrefetchingManager mgr(kern, &spcm, 1, server, window);
    mgr.initNow(8192, 2048);

    uio::FileId f = server.createFile("matrix", pages * 4096);
    kernel::SegmentId seg = kern.createSegmentNow(
        "matrix", 4096, pages, 1, &mgr);
    mgr.attach(seg, f);
    kernel::Process proc("sim", 1);

    sim::SimTime t0 = s.now();
    runTask(s, [](sim::Simulation &sim, kernel::Kernel &k,
                  kernel::Process &p, kernel::SegmentId sg,
                  std::uint64_t n, sim::Duration compute)
                   -> sim::Task<> {
        for (kernel::PageIndex pg = 0; pg < n; ++pg) {
            co_await k.touchSegment(p, sg, pg,
                                    kernel::AccessType::Read);
            co_await sim.delay(compute);
        }
    }(s, kern, proc, seg, pages, compute_per_page));
    s.run(); // drain trailing prefetches
    return {sim::toSec(s.now() - t0), mgr.demandFills(),
            mgr.prefetchedPages()};
}

} // namespace

int
main()
{
    const std::uint64_t pages = 512; // 2 MB scan
    const sim::Duration compute = sim::msec(20);

    std::printf("Ablation A3a: read-ahead window vs scan time\n"
                "(512-page out-of-core scan, 20 ms compute per page, "
                "16 ms disk)\n\n");
    TextTable t({"Window", "elapsed (s)", "demand fills",
                 "prefetched", "vs no-prefetch"});
    double base = 0;
    for (std::uint64_t w : {0, 1, 2, 4, 8, 16}) {
        ScanResult r = scanMatrix(w, pages, compute);
        if (w == 0)
            base = r.elapsedSec;
        t.addRow({std::to_string(w), TextTable::num(r.elapsedSec, 2),
                  std::to_string(r.demandFills),
                  std::to_string(r.prefetched),
                  TextTable::num((1.0 - r.elapsedSec / base) * 100,
                                 1) +
                      "%"});
    }
    t.print();

    // --- A3b: discard dirty intermediates instead of writing back.
    std::printf("\nAblation A3b: discarding a dirty intermediate "
                "matrix saves its writeback\n\n");
    TextTable d({"Policy", "disk writes", "reclaim time (ms)"});
    for (bool discard : {false, true}) {
        sim::Simulation s;
        hw::MachineConfig m = hw::decstation5000_200();
        m.memoryBytes = 64 << 20;
        kernel::Kernel kern(s, m);
        hw::Disk disk(s, m.diskLatency, m.diskBandwidthMBps);
        uio::FileServer server(s, disk, sim::usec(200));
        mgr::SystemPageCacheManager spcm(kern, std::nullopt);
        appmgr::PrefetchingManager mgr(kern, &spcm, 1, server, 0);
        mgr.initNow(8192, 1024);

        uio::FileId f = server.createFile("intermediate", 256 * 4096);
        kernel::SegmentId seg = kern.createSegmentNow(
            "intermediate", 4096, 256, 1, &mgr);
        mgr.attach(seg, f);
        kernel::Process proc("sim", 1);
        for (kernel::PageIndex p = 0; p < 256; ++p) {
            runTask(s, kern.touchSegment(proc, seg, p,
                                         kernel::AccessType::Write));
        }
        if (discard) {
            // The manager knows the intermediate will be regenerated:
            // mark it discardable before reclaiming.
            kern.modifyPageFlagsNow(seg, 0, 256, flag::kDiscardable,
                                    0);
        }
        sim::SimTime t0 = s.now();
        runTask(s, mgr.reclaimRun(kern, seg, 0, 256));
        d.addRow({discard ? "discard (application knows)"
                          : "write back (oblivious kernel)",
                  std::to_string(disk.writes()),
                  TextTable::num(sim::toMsec(s.now() - t0), 0)});
    }
    d.print();
    return 0;
}
