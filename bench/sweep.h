/**
 * @file
 * Declaration layer shared by every table/ablation bench driver:
 * declare rows -> submit to the parallel runner -> render.
 *
 * A driver declares each measurement as a named row with a closure
 * that builds its own Simulation + machine + kernel and returns a
 * RowResult (named numeric metrics). Sweep::run() executes the rows
 * on a sim::Runner thread pool (--jobs N / VPP_JOBS, default
 * hardware_concurrency); results land in slots indexed by
 * declaration order, so the rendered tables and the --json emission
 * are byte-identical regardless of the job count. Progress, per-row
 * host cost (wall seconds, peak host heap, and the simulated
 * machine's committed-memory peak) and paper-check summaries go to
 * stderr; stdout carries only the deterministic tables.
 *
 * PaperCheck turns a driver into a CI gate: measured values that
 * diverge from the paper beyond tolerance (or failed shape
 * invariants, or a row whose job threw) make the process exit
 * nonzero.
 */

#ifndef VPP_BENCH_SWEEP_H
#define VPP_BENCH_SWEEP_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "hw/disk.h"
#include "hw/physmem.h"
#include "sim/runner.h"

// Thread-local resolve() front-cache counters (core/kernel.cc),
// forward-declared so the sweep layer does not drag the whole kernel
// header into every driver.
namespace vpp::kernel {
void resetThreadResolveCounters();
std::uint64_t threadResolveHits();
std::uint64_t threadResolveMisses();
// Memory-market round/fairness counters, same pattern (core/kernel.cc;
// sim::Duration is std::int64_t nanoseconds).
void resetThreadMarketCounters();
std::uint64_t threadMarketRounds();
std::uint64_t threadMarketBids();
std::int64_t threadMarketMaxStarve();
} // namespace vpp::kernel

namespace vppbench {

struct Options
{
    unsigned jobs = 0;     ///< 0 = sim::Runner::defaultJobs()
    /// Host worker threads *inside* each sharded row (0 =
    /// sim::ShardedSimulation::defaultWorkers(), i.e. VPP_SHARDS or
    /// 1). Orthogonal to --jobs: jobs spreads rows across threads,
    /// shards spreads one row's simulation across threads. Both are
    /// bit-identical for any value.
    unsigned shards = 0;
    std::string jsonPath;  ///< empty = no JSON; "-" = stdout
    bool progress = true;
    /// Replacement-policy filter for policy-aware benches
    /// (bench/ablation_policy): run only rows for this policy name
    /// ("clock", "slru", "2q", "wsclock", "belady"). Empty (the
    /// default, or VPP_POLICY env) = all policies. Benches without a
    /// policy axis ignore it.
    std::string policy;
};

inline void
usage(const char *benchName)
{
    std::fprintf(
        stderr,
        "usage: %s [--jobs N] [--shards N] [--policy NAME] "
        "[--json[=PATH]] [--no-progress]\n"
        "  --jobs N       worker threads for the sweep (default: \n"
        "                 VPP_JOBS env var, else hardware "
        "concurrency);\n"
        "                 results are bit-identical for any N\n"
        "  --shards N     worker threads inside each sharded-engine "
        "row\n"
        "                 (default: VPP_SHARDS env var, else 1);\n"
        "                 results are bit-identical for any N\n"
        "  --policy NAME  policy-aware benches: run only rows for "
        "this\n"
        "                 replacement policy (clock, slru, 2q, "
        "wsclock,\n"
        "                 belady; default: VPP_POLICY env var, else "
        "all)\n"
        "  --json[=PATH]  emit machine-readable metrics (stdout if "
        "no PATH)\n"
        "  --no-progress  suppress the stderr progress/cost report\n",
        benchName);
}

inline Options
parseArgs(int argc, char **argv, const char *benchName)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strncmp(a, "--jobs=", 7) == 0) {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(a + 7, nullptr, 10));
        } else if (std::strcmp(a, "--shards") == 0 && i + 1 < argc) {
            opt.shards = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strncmp(a, "--shards=", 9) == 0) {
            opt.shards = static_cast<unsigned>(
                std::strtoul(a + 9, nullptr, 10));
        } else if (std::strcmp(a, "--policy") == 0 && i + 1 < argc) {
            opt.policy = argv[++i];
        } else if (std::strncmp(a, "--policy=", 9) == 0) {
            opt.policy = a + 9;
        } else if (std::strcmp(a, "--json") == 0) {
            opt.jsonPath = "-";
        } else if (std::strncmp(a, "--json=", 7) == 0) {
            opt.jsonPath = a + 7;
        } else if (std::strcmp(a, "--no-progress") == 0) {
            opt.progress = false;
        } else if (std::strcmp(a, "--help") == 0 ||
                   std::strcmp(a, "-h") == 0) {
            usage(benchName);
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         benchName, a);
            usage(benchName);
            std::exit(2);
        }
    }
    if (opt.policy.empty()) {
        if (const char *env = std::getenv("VPP_POLICY"))
            opt.policy = env;
    }
    return opt;
}

/**
 * Named numeric metrics produced by one sweep row. Values are
 * doubles; counts below 2^53 stay exact.
 */
struct RowResult
{
    std::vector<std::pair<std::string, double>> metrics;

    void
    set(std::string name, double v)
    {
        metrics.emplace_back(std::move(name), v);
    }

    double
    get(const std::string &name) const
    {
        for (const auto &[k, v] : metrics)
            if (k == name)
                return v;
        throw std::runtime_error("sweep metric missing: " + name);
    }
};

class Sweep
{
  public:
    Sweep(std::string benchName, Options opt)
        : name_(std::move(benchName)), opt_(std::move(opt))
    {}

    /** Declare a row; @p fn must be self-contained (no sharing). */
    void
    add(std::string label, std::function<RowResult()> fn)
    {
        labels_.push_back(std::move(label));
        jobs_.push_back(std::move(fn));
    }

    /** Run all declared rows on the pool; blocks until done. */
    void
    run()
    {
        results_.assign(jobs_.size(), RowResult{});
        committedPeak_.assign(jobs_.size(), 0);
        diskErrors_.assign(jobs_.size(), 0);
        diskRetries_.assign(jobs_.size(), 0);
        resolveHits_.assign(jobs_.size(), 0);
        resolveMisses_.assign(jobs_.size(), 0);
        marketRounds_.assign(jobs_.size(), 0);
        marketBids_.assign(jobs_.size(), 0);
        marketStarve_.assign(jobs_.size(), 0);
        vpp::sim::Runner runner(opt_.jobs);
        if (opt_.progress) {
            runner.setProgress([this](std::size_t d, std::size_t t) {
                std::fprintf(stderr, "\r%s: %zu/%zu rows",
                             name_.c_str(), d, t);
                if (d == t)
                    std::fputc('\n', stderr);
                std::fflush(stderr);
            });
        }
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            runner.submit([this, i] {
                // Rows run one at a time per worker thread, so the
                // thread-local high-water mark, reset at row entry, is
                // this row's simulated committed-memory peak.
                vpp::hw::resetThreadCommittedPeak();
                vpp::hw::resetThreadDiskCounters();
                vpp::kernel::resetThreadResolveCounters();
                vpp::kernel::resetThreadMarketCounters();
                results_[i] = jobs_[i]();
                committedPeak_[i] = vpp::hw::threadPeakCommittedBytes();
                diskErrors_[i] = vpp::hw::threadDiskErrors();
                diskRetries_[i] = vpp::hw::threadDiskRetries();
                resolveHits_[i] = vpp::kernel::threadResolveHits();
                resolveMisses_[i] = vpp::kernel::threadResolveMisses();
                marketRounds_[i] = vpp::kernel::threadMarketRounds();
                marketBids_[i] = vpp::kernel::threadMarketBids();
                marketStarve_[i] =
                    vpp::kernel::threadMarketMaxStarve();
            });
        }
        runner.wait();

        failures_ = runner.failedCount();
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            const vpp::sim::RunSlot &s = runner.slot(i);
            if (s.failed()) {
                try {
                    std::rethrow_exception(s.error);
                } catch (const std::exception &e) {
                    std::fprintf(stderr,
                                 "%s: row '%s' FAILED: %s\n",
                                 name_.c_str(), labels_[i].c_str(),
                                 e.what());
                } catch (...) {
                    std::fprintf(
                        stderr,
                        "%s: row '%s' FAILED: unknown exception\n",
                        name_.c_str(), labels_[i].c_str());
                }
            } else if (opt_.progress) {
                double committed =
                    static_cast<double>(committedPeak_[i]) /
                    (1024.0 * 1024.0);
                // Disk fault-injection traffic, when present, rides
                // along on the cost line (stderr only; never part of
                // the diffed stdout/JSON).
                char disk[64] = "";
                if (diskErrors_[i] || diskRetries_[i]) {
                    std::snprintf(disk, sizeof(disk),
                                  ", disk err %llu/retry %llu",
                                  static_cast<unsigned long long>(
                                      diskErrors_[i]),
                                  static_cast<unsigned long long>(
                                      diskRetries_[i]));
                }
                // Hashed resolve() front-cache traffic rides along the
                // same way (stderr only; never part of the diffed
                // stdout/JSON).
                char rc[64] = "";
                if (resolveHits_[i] || resolveMisses_[i]) {
                    std::snprintf(rc, sizeof(rc),
                                  ", resolve hit %llu/miss %llu",
                                  static_cast<unsigned long long>(
                                      resolveHits_[i]),
                                  static_cast<unsigned long long>(
                                      resolveMisses_[i]));
                }
                // Market auction rounds and per-tenant fairness ride
                // the cost line the same way (stderr only; never part
                // of the diffed stdout/JSON).
                char mkt[96] = "";
                if (marketRounds_[i] || marketStarve_[i]) {
                    std::snprintf(
                        mkt, sizeof(mkt),
                        ", market rounds %llu/bids %llu/starve "
                        "%.1f ms",
                        static_cast<unsigned long long>(
                            marketRounds_[i]),
                        static_cast<unsigned long long>(
                            marketBids_[i]),
                        static_cast<double>(marketStarve_[i]) /
                            1e6);
                }
                if (s.peakHeapBytes >= 0) {
                    std::fprintf(
                        stderr,
                        "  %-36s %7.3f s host, peak heap %.1f MB, "
                        "sim committed %.1f MB%s%s%s\n",
                        labels_[i].c_str(), s.hostSeconds,
                        static_cast<double>(s.peakHeapBytes) /
                            (1024.0 * 1024.0),
                        committed, disk, rc, mkt);
                } else {
                    std::fprintf(stderr,
                                 "  %-36s %7.3f s host, "
                                 "sim committed %.1f MB%s%s%s\n",
                                 labels_[i].c_str(), s.hostSeconds,
                                 committed, disk, rc, mkt);
                }
            }
        }
    }

    std::size_t size() const { return results_.size(); }
    const std::string &label(std::size_t i) const
    {
        return labels_.at(i);
    }
    const RowResult &at(std::size_t i) const
    {
        return results_.at(i);
    }
    /** Metric of row @p i, after run(). */
    double
    get(std::size_t i, const std::string &name) const
    {
        return results_.at(i).get(name);
    }
    bool ok() const { return failures_ == 0; }

    /** Deterministic JSON of every row's metrics, in order. */
    std::string
    jsonStr() const
    {
        std::string out = "{\n  \"bench\": \"" + escape(name_) +
                          "\",\n  \"rows\": [\n";
        for (std::size_t i = 0; i < results_.size(); ++i) {
            out += "    { \"name\": \"" + escape(labels_[i]) +
                   "\", \"metrics\": {";
            const auto &ms = results_[i].metrics;
            for (std::size_t m = 0; m < ms.size(); ++m) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.10g",
                              ms[m].second);
                out += m ? ", " : " ";
                out += "\"" + escape(ms[m].first) + "\": " + buf;
            }
            out += " } }";
            out += i + 1 < results_.size() ? ",\n" : "\n";
        }
        out += "  ]\n}\n";
        return out;
    }

    /** Honour --json[=PATH]. Returns false on I/O failure. */
    bool
    emitJson() const
    {
        if (opt_.jsonPath.empty())
            return true;
        std::string j = jsonStr();
        if (opt_.jsonPath == "-") {
            std::fwrite(j.data(), 1, j.size(), stdout);
            return true;
        }
        FILE *f = std::fopen(opt_.jsonPath.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "%s: cannot write %s\n",
                         name_.c_str(), opt_.jsonPath.c_str());
            return false;
        }
        std::fwrite(j.data(), 1, j.size(), f);
        std::fclose(f);
        return true;
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    std::string name_;
    Options opt_;
    std::vector<std::string> labels_;
    std::vector<std::function<RowResult()>> jobs_;
    std::vector<RowResult> results_;
    std::vector<std::int64_t> committedPeak_; ///< simulated bytes per row
    std::vector<std::uint64_t> diskErrors_;   ///< injected failures per row
    std::vector<std::uint64_t> diskRetries_;  ///< paging retries per row
    std::vector<std::uint64_t> resolveHits_;  ///< resolve-cache hits per row
    std::vector<std::uint64_t> resolveMisses_; ///< and misses per row
    std::vector<std::uint64_t> marketRounds_; ///< auction rounds per row
    std::vector<std::uint64_t> marketBids_;   ///< bids carried in them
    std::vector<std::int64_t> marketStarve_;  ///< worst bid age (nsec)
    std::size_t failures_ = 0;
};

/**
 * Paper-tolerance gate: divergence beyond tolerance exits nonzero so
 * sweeps are CI-gateable.
 */
class PaperCheck
{
  public:
    explicit PaperCheck(std::string benchName)
        : name_(std::move(benchName))
    {}

    /** |measured - paper| must be within relTol * |paper|. */
    void
    near(const std::string &what, double measured, double paper,
         double relTol)
    {
        ++checks_;
        double err = std::fabs(measured - paper);
        double lim = relTol * std::fabs(paper);
        if (!(err <= lim)) {
            ++failed_;
            std::fprintf(stderr,
                         "%s: CHECK FAIL %s: measured %.6g vs paper "
                         "%.6g (err %.1f%% > tol %.1f%%)\n",
                         name_.c_str(), what.c_str(), measured,
                         paper, 100.0 * err / std::fabs(paper),
                         100.0 * relTol);
        }
    }

    /** A qualitative shape invariant from the paper. */
    void
    that(const std::string &what, bool cond)
    {
        ++checks_;
        if (!cond) {
            ++failed_;
            std::fprintf(stderr, "%s: CHECK FAIL %s\n", name_.c_str(),
                         what.c_str());
        }
    }

    std::size_t failures() const { return failed_; }

    /**
     * Print the summary and compute the process exit code, folding
     * in sweep/job failures and JSON I/O problems.
     */
    int
    exitCode(const Sweep &sweep) const
    {
        bool jsonOk = sweep.emitJson();
        std::fprintf(stderr, "%s: %zu/%zu paper checks passed\n",
                     name_.c_str(), checks_ - failed_, checks_);
        return (failed_ == 0 && sweep.ok() && jsonOk) ? 0 : 1;
    }

  private:
    std::string name_;
    std::size_t checks_ = 0;
    std::size_t failed_ = 0;
};

/** Exit code for drivers with no paper values to check against. */
inline int
exitCode(const Sweep &sweep)
{
    return (sweep.ok() && sweep.emitJson()) ? 0 : 1;
}

} // namespace vppbench

#endif // VPP_BENCH_SWEEP_H
