/**
 * @file
 * Policy ablation (ROADMAP item 3): miss rate and transaction
 * response time for every replacement policy (src/policy) across
 * three workloads (src/apps/refgen.h) — DebitCredit, a scan-polluted
 * OLTP stream, and zipf-skewed access — each policy replaying the
 * exact same recorded reference string at the same cache capacity.
 *
 * The Belady rows are the offline miss-rate lower bound the paper's
 * "applications beat the kernel at policy" claim should be measured
 * against: the gap between clock and Belady is the headroom, and the
 * gap between clock and SLRU/2Q is how much of it a scan-resistant
 * application policy actually collects.
 *
 * Self-checks (run only when no --policy filter hides rows):
 *  - Belady's miss count is <= every online policy on every workload
 *    (a theorem for demand paging on a shared trace, so an exact,
 *    tolerance-free gate).
 *  - On the scan workload, SLRU and 2Q beat clock by a gated margin,
 *    and their response times follow.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "apps/policy_study.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using sim::TextTable;

namespace {

apps::PolicyStudyParams
baseParams(apps::RefWorkload w)
{
    apps::PolicyStudyParams p;
    p.workload = w;
    switch (w) {
    case apps::RefWorkload::DebitCredit:
        p.cacheFrames = 512;
        break;
    case apps::RefWorkload::Scan:
        // Hot set large relative to the cache so protecting it is
        // where policies differ; scans recycle an 8192-page relation
        // nobody can cache.
        p.cacheFrames = 384;
        p.gen.hotPages = 256;
        p.gen.hotRefsPerTxn = 8;
        p.gen.scanChunk = 64;
        p.gen.scanPages = 8192;
        p.gen.scanShare = 0.15;
        break;
    case apps::RefWorkload::Zipf:
        p.cacheFrames = 512;
        break;
    }
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "ablation_policy");

    bool filtered = !opt.policy.empty();
    if (filtered && !policy::parseKind(opt.policy)) {
        std::fprintf(stderr,
                     "ablation_policy: unknown policy '%s' (want "
                     "clock, slru, 2q, wsclock or belady)\n",
                     opt.policy.c_str());
        return 2;
    }

    vppbench::Sweep sweep("ablation_policy", opt);
    std::vector<std::pair<apps::RefWorkload, policy::Kind>> rows;
    for (apps::RefWorkload w : apps::kAllRefWorkloads) {
        for (policy::Kind k : policy::kAllKinds) {
            if (filtered && opt.policy != policy::kindName(k))
                continue;
            rows.emplace_back(w, k);
            std::string label =
                std::string(apps::refWorkloadName(w)) + "/" +
                std::string(policy::kindName(k));
            sweep.add(label, [w, k] {
                apps::PolicyStudyParams p = baseParams(w);
                p.kind = k;
                apps::PolicyStudyResult s = apps::runPolicyStudy(p);
                vppbench::RowResult r;
                r.set("miss_pct", s.missPct);
                r.set("avg_ms", s.avgMs);
                r.set("p99_ms", s.p99Ms);
                r.set("worst_ms", s.worstMs);
                r.set("txns", static_cast<double>(s.txns));
                r.set("refs", static_cast<double>(s.refs));
                r.set("misses", static_cast<double>(s.misses));
                r.set("evictions",
                      static_cast<double>(s.evictions));
                r.set("promotions",
                      static_cast<double>(s.policyStats.promotions));
                return r;
            });
        }
    }
    sweep.run();

    std::printf("Policy ablation: miss rate and txn response per "
                "replacement policy\n(one recorded reference string "
                "per workload, replayed by every policy at\nequal "
                "capacity; belady = offline optimum, the miss-rate "
                "lower bound)\n");

    std::size_t i = 0;
    for (apps::RefWorkload w : apps::kAllRefWorkloads) {
        std::size_t base = i;
        // Find the clock row of this workload for the ratio column.
        double clockMiss = 0;
        for (std::size_t j = base; j < sweep.size(); ++j) {
            if (sweep.label(j).rfind(
                    std::string(apps::refWorkloadName(w)) + "/", 0) !=
                0)
                break;
            if (sweep.label(j).ends_with("/clock"))
                clockMiss = sweep.get(j, "miss_pct");
        }
        std::printf("\n%s (cache %llu frames, %llu txns, %llu "
                    "refs):\n\n",
                    apps::refWorkloadName(w),
                    static_cast<unsigned long long>(
                        baseParams(w).cacheFrames),
                    static_cast<unsigned long long>(
                        i < sweep.size() ? sweep.get(i, "txns") : 0),
                    static_cast<unsigned long long>(
                        i < sweep.size() ? sweep.get(i, "refs") : 0));
        TextTable t({"Policy", "miss %", "avg ms", "p99 ms",
                     "worst ms", "evictions", "vs clock"});
        for (; i < sweep.size(); ++i) {
            const std::string &label = sweep.label(i);
            if (label.rfind(std::string(apps::refWorkloadName(w)) +
                                "/",
                            0) != 0)
                break;
            double miss = sweep.get(i, "miss_pct");
            std::string vs = "-";
            if (clockMiss > 0)
                vs = TextTable::num(miss / clockMiss, 2) + "x";
            t.addRow({label.substr(label.find('/') + 1),
                      TextTable::num(miss, 2),
                      TextTable::num(sweep.get(i, "avg_ms"), 2),
                      TextTable::num(sweep.get(i, "p99_ms"), 2),
                      TextTable::num(sweep.get(i, "worst_ms"), 2),
                      TextTable::num(sweep.get(i, "evictions"), 0),
                      vs});
        }
        t.print();
    }

    vppbench::PaperCheck check("ablation_policy");
    if (!filtered) {
        auto get = [&](apps::RefWorkload w, policy::Kind k,
                       const char *metric) {
            std::string label =
                std::string(apps::refWorkloadName(w)) + "/" +
                std::string(policy::kindName(k));
            for (std::size_t j = 0; j < sweep.size(); ++j)
                if (sweep.label(j) == label)
                    return sweep.get(j, metric);
            throw std::runtime_error("row missing: " + label);
        };
        for (apps::RefWorkload w : apps::kAllRefWorkloads) {
            double opt_misses =
                get(w, policy::Kind::Belady, "misses");
            for (policy::Kind k :
                 {policy::Kind::Clock, policy::Kind::Slru,
                  policy::Kind::TwoQ, policy::Kind::WsClock}) {
                check.that(
                    std::string("belady <= ") +
                        std::string(policy::kindName(k)) + " on " +
                        apps::refWorkloadName(w),
                    opt_misses <= get(w, k, "misses"));
            }
        }
        // Scan resistance: the application-tuned policies must beat
        // clock by a real margin where clock collapses, and the win
        // must show up in response time, not just the miss counter.
        apps::RefWorkload scan = apps::RefWorkload::Scan;
        double clockMisses =
            get(scan, policy::Kind::Clock, "misses");
        check.that("slru beats clock by >=10% misses on scan",
                   get(scan, policy::Kind::Slru, "misses") * 1.10 <=
                       clockMisses);
        check.that("2q beats clock by >=10% misses on scan",
                   get(scan, policy::Kind::TwoQ, "misses") * 1.10 <=
                       clockMisses);
        check.that("slru response beats clock on scan",
                   get(scan, policy::Kind::Slru, "avg_ms") <
                       get(scan, policy::Kind::Clock, "avg_ms"));
    }

    std::printf("\nThe clock-to-belady gap is the policy headroom; "
                "SLRU/2Q collect most of\nit on the scan workload by "
                "refusing to let one-shot pages displace the\nhot "
                "set.\n");
    return check.exitCode(sweep);
}
