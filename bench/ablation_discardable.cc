/**
 * @file
 * Ablation A4 (paper §4): managing discardable pages.
 *
 * Subramanian showed ML programs speed up when garbage pages are
 * dropped without writeback, but a Mach external pager (a) cannot see
 * physical memory availability and (b) suffers needless zero-fills
 * when a frame returns to the same application. External page-cache
 * management fixes both without new kernel mechanism. This bench runs
 * a collector-style workload — allocate, dirty, collect (most pages
 * become garbage), reuse — under the application-aware policy and
 * under a conventional oblivious policy.
 */

#include <cstdio>

#include "appmgr/discard_mgr.h"
#include "core/kernel.h"
#include "hw/disk.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;

namespace {

struct GcResult
{
    double elapsedSec;
    std::uint64_t diskWrites;
    std::uint64_t zeroFills;
};

GcResult
runCollector(bool aware, int cycles, std::uint64_t heap_pages,
             double garbage_fraction)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 64 << 20;
    kernel::Kernel kern(s, m);
    hw::Disk disk(s, m.diskLatency, m.diskBandwidthMBps);
    uio::FileServer server(s, disk, sim::usec(200));
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    appmgr::DiscardableManager mgr(kern, &spcm, 1, server,
                                   server.createFile("swap", 0));
    mgr.conventional(!aware);
    mgr.initNow(8192, heap_pages + 64);

    kernel::SegmentId heap = kern.createSegmentNow(
        "heap", 4096, heap_pages, 1, &mgr);
    kernel::Process proc("ml", 1);

    sim::SimTime t0 = s.now();
    runTask(s, [](sim::Simulation &sim, kernel::Kernel &k,
                  appmgr::DiscardableManager &gc, kernel::Process &p,
                  kernel::SegmentId hp, int n, std::uint64_t pages,
                  double garbage) -> sim::Task<> {
        for (int cycle = 0; cycle < n; ++cycle) {
            // Mutator: dirty the whole heap.
            for (kernel::PageIndex pg = 0; pg < pages; ++pg) {
                co_await k.touchSegment(p, hp, pg,
                                        kernel::AccessType::Write);
            }
            co_await sim.delay(sim::msec(50)); // mutator compute
            // Collector: most of the heap is garbage; reclaim it so
            // the frames can be reused for the next allocation wave.
            auto garbage_pages =
                static_cast<kernel::PageIndex>(pages * garbage);
            co_await gc.markGarbage(hp, 0, garbage_pages);
            co_await gc.reclaimRun(k, hp, 0, garbage_pages);
        }
    }(s, kern, mgr, proc, heap, cycles, heap_pages,
      garbage_fraction));
    return {sim::toSec(s.now() - t0), disk.writes(),
            kern.stats().zeroFills};
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "ablation_discardable");

    vppbench::Sweep sweep("ablation_discardable", opt);
    for (bool aware : {true, false}) {
        sweep.add(aware ? "application-aware" : "conventional",
                  [aware] {
                      GcResult g = runCollector(aware, 20, 128, 0.9);
                      vppbench::RowResult r;
                      r.set("elapsed_sec", g.elapsedSec);
                      r.set("disk_writes",
                            static_cast<double>(g.diskWrites));
                      r.set("zero_fills",
                            static_cast<double>(g.zeroFills));
                      return r;
                  });
    }
    sweep.run();

    std::printf("Ablation A4: discardable pages (GC-style workload, "
                "128-page heap,\n90%% garbage per cycle, 20 "
                "cycles)\n\n");

    TextTable t({"Policy", "elapsed (s)", "disk writes",
                 "zero-fills"});
    const char *labels[] = {"application-aware (discard, no re-zero)",
                            "conventional (write back, zero-fill)"};
    for (std::size_t i = 0; i < 2; ++i) {
        t.addRow({labels[i],
                  TextTable::num(sweep.get(i, "elapsed_sec"), 2),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "disk_writes"))),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "zero_fills")))});
    }
    t.print();

    std::printf("\nSpeedup from application knowledge: %.1fx elapsed, "
                "%llu disk writes avoided.\n",
                sweep.get(1, "elapsed_sec") /
                    sweep.get(0, "elapsed_sec"),
                static_cast<unsigned long long>(
                    sweep.get(1, "disk_writes") -
                    sweep.get(0, "disk_writes")));
    return vppbench::exitCode(sweep);
}
