/**
 * @file
 * Tenant-scaling table: bid tail latency and per-tenant throughput as
 * the number of SPCM clients grows from 10 to 10k, V++ memory market
 * (sharded free lists + batched auction rounds + admission control)
 * vs the conventional global-clock shape (the legacy single-server
 * SPCM: one serialised request at a time, one IPC crossing per bid).
 *
 * Every row runs the same closed-loop workload against a pool that a
 * resident holder has almost exhausted: each tenant issues a fixed
 * number of 16-frame bids on a staggered schedule while a recycler
 * trickles the resident's frames back, so bids compete for a scarce
 * replenishment stream. The market keeps the tail flat because an
 * auction round answers every same-window bid in one batched crossing
 * — unfunded bids cost no simulated time and age out of admission
 * control on a fixed deadline — while the conventional global clock
 * answers a short pool by sweeping resident frames for victims under
 * the single-server lock (SpcmParams::clockScanPerFrame), so every
 * unfunded bid queues behind a full scan and p99 grows with the
 * tenant count.
 *
 * Two storm rows replay the same contention with the fault-injection
 * engine's reclaim-storm stream attached: the conventional row sweeps
 * the whole herd of reclaim callbacks on every storm, the market row
 * caps the fan-out (PressureFaults::stormClients) and batches the
 * shed frames through the same rounds.
 *
 * All numbers are deterministic: byte-identical output at any --jobs
 * and --shards value.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/stack.h"
#include "inject/inject.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using sim::TextTable;

namespace {

constexpr int kBidsPerTenant = 6;
constexpr std::uint64_t kAskFrames = 16;
constexpr sim::Duration kBidPeriod = sim::msec(5);
constexpr sim::Duration kJitterWindow = sim::msec(5);
constexpr std::uint64_t kFreeSlack = 32;    ///< frames left unheld
constexpr std::uint64_t kRecycleFrames = 16; ///< per recycler tick
constexpr sim::Duration kRecycleTick = sim::usec(500);
constexpr int kRecycleTicks = 128;
/// Conventional rows: clock-hand victim scan, charged per resident
/// frame when the pool comes up short (see SpcmParams).
constexpr sim::Duration kClockScanPerFrame = sim::nsec(10);

struct TenantState
{
    mgr::ClientId client = 0;
    kernel::SegmentId seg = kernel::kInvalidSegment;
    std::vector<kernel::PageIndex> held; ///< filled slots, grant order
    std::uint64_t nextSlot = 0;
    std::uint64_t funded = 0; ///< frames granted over the run
};

struct World
{
    apps::VppStack *st = nullptr;
    std::vector<TenantState> tenants;
    sim::Distribution bidLatency; ///< usec, completion order
    std::uint64_t bidsIssued = 0;
    std::uint64_t bidsStarved = 0;
};

/// Deterministic per-tenant jitter; no RNG so the schedule is fixed by
/// the tenant index alone.
sim::Duration
tenantJitter(std::uint64_t t)
{
    return static_cast<sim::Duration>((t * 2654435761ull) %
                                      static_cast<std::uint64_t>(
                                          kJitterWindow));
}

sim::Task<>
tenantLoop(World &w, std::size_t idx)
{
    TenantState &ts = w.tenants[idx];
    sim::Simulation &s = w.st->sim;
    sim::Duration jitter = tenantJitter(idx);
    for (int b = 0; b < kBidsPerTenant; ++b) {
        sim::SimTime issue_at =
            static_cast<sim::SimTime>(b) * kBidPeriod + jitter;
        if (issue_at > s.now())
            co_await s.delay(issue_at - s.now());
        std::vector<kernel::PageIndex> slots;
        slots.reserve(kAskFrames);
        for (std::uint64_t i = 0; i < kAskFrames; ++i)
            slots.push_back(ts.nextSlot + i);
        sim::SimTime t0 = s.now();
        ++w.bidsIssued;
        std::uint64_t got = co_await w.st->spcm.requestPages(
            ts.client, ts.seg, slots);
        w.bidLatency.add(sim::toUsec(s.now() - t0));
        if (got == 0)
            ++w.bidsStarved;
        ts.funded += got;
        for (std::uint64_t i = 0; i < got; ++i)
            ts.held.push_back(ts.nextSlot + i);
        ts.nextSlot += got;
    }
}

/// Storm reclaim callback: shed up to @p n of the tenant's held frames.
sim::Task<>
tenantShed(World &w, std::size_t idx, std::uint64_t n)
{
    TenantState &ts = w.tenants[idx];
    if (ts.held.empty())
        co_return;
    std::uint64_t give =
        std::min<std::uint64_t>(n, ts.held.size());
    std::vector<kernel::PageIndex> slots(ts.held.end() - give,
                                         ts.held.end());
    ts.held.resize(ts.held.size() - give);
    co_await w.st->spcm.returnPages(ts.client, ts.seg, slots);
}

/// The resident holder trickles frames back so bids compete for a
/// scarce replenishment stream (identical for both systems).
sim::Task<>
recyclerLoop(World &w, mgr::ClientId resident,
             kernel::SegmentId resident_seg, std::uint64_t held)
{
    sim::Simulation &s = w.st->sim;
    std::uint64_t cursor = held;
    for (int tick = 0; tick < kRecycleTicks && cursor > 0; ++tick) {
        co_await s.delay(kRecycleTick);
        std::uint64_t give =
            std::min<std::uint64_t>(kRecycleFrames, cursor);
        std::vector<kernel::PageIndex> slots;
        slots.reserve(give);
        for (std::uint64_t i = 0; i < give; ++i)
            slots.push_back(cursor - give + i);
        cursor -= give;
        co_await w.st->spcm.returnPages(resident, resident_seg,
                                        slots);
    }
}

inject::Config
stormConfig(std::uint64_t row_seed, std::uint64_t storm_clients)
{
    inject::Config c;
    c.enabled = true;
    c.seed = 0x5eedb0b0ull ^ (row_seed * 0x9e3779b97f4a7c15ull);
    c.pressure.stormProb = 0.20;
    c.pressure.stormFrames = 8;
    c.pressure.stormClients = storm_clients;
    return c;
}

/// Heterogeneous-income split (hetero row only): even-indexed
/// tenants are "rich" — income and deposit comfortably covering a
/// full 16-frame ask — odd ones "poor", whose income barely funds a
/// frame or two, so the market's affordability cap bites.
constexpr double kRichIncome = 0.4;
constexpr double kRichDeposit = 0.25;
constexpr double kPoorIncome = 0.01;
constexpr double kPoorDeposit = 0.0;

vppbench::RowResult
runRow(std::uint64_t tenants, bool market_mode, bool storm,
       std::uint64_t row_seed, bool hetero = false)
{
    hw::MachineConfig machine = hw::decstation5000_200();
    apps::StackOptions opts;
    if (market_mode) {
        mgr::MarketParams mp;
        opts.market = mp;
        opts.spcmParams.shards = 8;
        opts.spcmParams.batchedRounds = true;
        opts.spcmParams.admissionMaxWaiters = 64;
        opts.spcmParams.admissionMaxWait = sim::msec(1);
        opts.spcmParams.admissionRetry = sim::usec(500);
    } else {
        opts.spcmParams.clockScanPerFrame = kClockScanPerFrame;
    }
    apps::VppStack st(machine, opts);

    World w;
    w.st = &st;

    // A resident holder takes everything but kFreeSlack frames, so
    // the tenants bid into a nearly exhausted pool.
    mgr::ClientId resident = st.spcm.registerClient(
        "resident", 999, 0.0);
    std::uint64_t pool = st.spcm.freeFrames();
    std::uint64_t resident_hold =
        pool > kFreeSlack ? pool - kFreeSlack : 0;
    kernel::SegmentId resident_seg = st.kern.createSegmentNow(
        "resident", machine.pageSize, resident_hold + 1, 999);
    {
        std::vector<kernel::PageIndex> slots;
        slots.reserve(resident_hold);
        for (std::uint64_t i = 0; i < resident_hold; ++i)
            slots.push_back(i);
        st.spcm.grantNow(resident, resident_seg, slots);
    }

    inject::Engine eng(
        stormConfig(row_seed, market_mode ? 8 : 0));
    if (storm)
        st.spcm.setInjector(&eng);

    // Tenants: one SPCM client + one segment each; with the market on
    // each can afford ~25 frames over the grant horizon, comfortably
    // above one 16-frame ask.
    w.tenants.resize(tenants);
    std::uint64_t seg_pages =
        kAskFrames * static_cast<std::uint64_t>(kBidsPerTenant) + 8;
    for (std::uint64_t t = 0; t < tenants; ++t) {
        TenantState &ts = w.tenants[t];
        kernel::UserId uid = 1000 + t;
        std::size_t idx = t;
        bool rich = hetero && (t % 2 == 0);
        double income =
            hetero ? (rich ? kRichIncome : kPoorIncome) : 0.1;
        ts.client = st.spcm.registerClient(
            "tenant" + std::to_string(t), uid, income,
            [&w, idx](std::uint64_t n) {
                return tenantShed(w, idx, n);
            });
        if (market_mode)
            st.spcm.deposit(ts.client,
                            hetero ? (rich ? kRichDeposit
                                           : kPoorDeposit)
                                   : 0.05);
        ts.seg = st.kern.createSegmentNow(
            "tenant" + std::to_string(t), machine.pageSize,
            seg_pages, uid);
    }

    st.sim.spawn(recyclerLoop(w, resident, resident_seg,
                              resident_hold));
    for (std::uint64_t t = 0; t < tenants; ++t)
        st.sim.spawn(tenantLoop(w, t));
    st.sim.run();

    std::string why;
    bool invariant_ok = st.kern.checkFrameInvariant(&why);
    if (!invariant_ok)
        std::fprintf(stderr, "table_tenants: invariant violated: %s\n",
                     why.c_str());

    double sim_sec = sim::toSec(st.sim.now());
    std::uint64_t funded = 0;
    for (const TenantState &ts : w.tenants)
        funded += ts.funded;

    vppbench::RowResult r;
    r.set("tenants", static_cast<double>(tenants));
    r.set("bids", static_cast<double>(w.bidsIssued));
    r.set("bids_starved", static_cast<double>(w.bidsStarved));
    r.set("p50_us", w.bidLatency.percentile(0.50));
    r.set("p99_us", w.bidLatency.percentile(0.99));
    r.set("max_us", w.bidLatency.max());
    r.set("funded_frames", static_cast<double>(funded));
    r.set("frames_per_tenant_sec",
          sim_sec > 0 ? static_cast<double>(funded) /
                            static_cast<double>(tenants) / sim_sec
                      : 0.0);
    r.set("sim_sec", sim_sec);
    r.set("rounds", static_cast<double>(st.spcm.marketRounds()));
    r.set("round_crossings",
          static_cast<double>(st.spcm.roundCrossings()));
    r.set("round_bids", static_cast<double>(st.spcm.roundBids()));
    r.set("bids_waited", static_cast<double>(st.spcm.bidsWaited()));
    r.set("bids_rejected",
          static_cast<double>(st.spcm.bidsRejected()));
    r.set("starve_max_ms", sim::toMsec(st.spcm.maxStarvationSeen()));
    r.set("storms", static_cast<double>(st.spcm.stormsTriggered()));
    r.set("frames_returned",
          static_cast<double>(st.spcm.framesReturned()));
    r.set("free_end", static_cast<double>(st.spcm.freeFrames()));
    r.set("invariant_ok", invariant_ok ? 1.0 : 0.0);
    if (hetero) {
        // Per-class rollup so the table can show that money moves
        // the queue: richer tenants should see fewer unserved bids,
        // less starvation, and more frames funded.
        double rich_unserved = 0, poor_unserved = 0;
        double rich_starve = 0, poor_starve = 0;
        double rich_funded = 0, poor_funded = 0;
        for (std::uint64_t t = 0; t < tenants; ++t) {
            const TenantState &ts = w.tenants[t];
            mgr::TenantStats stats = st.spcm.tenantStats(ts.client);
            bool rich = (t % 2 == 0);
            (rich ? rich_unserved : poor_unserved) +=
                static_cast<double>(stats.bidsUnserved);
            (rich ? rich_starve : poor_starve) = std::max(
                rich ? rich_starve : poor_starve,
                sim::toMsec(stats.maxStarvation));
            (rich ? rich_funded : poor_funded) +=
                static_cast<double>(ts.funded);
        }
        r.set("rich_unserved", rich_unserved);
        r.set("poor_unserved", poor_unserved);
        r.set("rich_starve_ms", rich_starve);
        r.set("poor_starve_ms", poor_starve);
        r.set("rich_funded", rich_funded);
        r.set("poor_funded", poor_funded);
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "table_tenants");

    struct Row
    {
        std::string label;
        std::uint64_t tenants;
        bool market;
        bool storm;
        bool hetero = false;
    };
    // The hetero row is appended LAST so the seed (300 + index) of
    // every earlier row — and therefore its baseline bytes — is
    // unchanged.
    std::vector<Row> rows = {
        {"v++ market 10", 10, true, false},
        {"v++ market 100", 100, true, false},
        {"v++ market 1k", 1000, true, false},
        {"v++ market 10k", 10000, true, false},
        {"conv clock 10", 10, false, false},
        {"conv clock 100", 100, false, false},
        {"conv clock 1k", 1000, false, false},
        {"conv clock 10k", 10000, false, false},
        {"v++ market 200 + storms", 200, true, true},
        {"conv clock 200 + storms", 200, false, true},
        {"v++ market 20 hetero income", 20, true, false, true},
    };

    vppbench::Sweep sweep("table_tenants", opt);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        std::uint64_t seed = 300 + i;
        sweep.add(row.label, [row, seed] {
            return runRow(row.tenants, row.market, row.storm, seed,
                          row.hetero);
        });
    }
    sweep.run();

    std::printf("Tenant scaling: bid tail latency and per-tenant "
                "throughput\n");
    std::printf("%d bids/tenant x %llu frames, staggered over %.0f ms "
                "rounds, pool pre-exhausted\n\n",
                kBidsPerTenant,
                static_cast<unsigned long long>(kAskFrames),
                sim::toMsec(kBidPeriod));

    TextTable t({"Configuration", "tenants", "bids", "p50 us",
                 "p99 us", "fund/ten/s", "rounds", "crossings",
                 "starve ms", "storms"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        t.addRow({sweep.label(i),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "tenants"))),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "bids"))),
                  TextTable::num(sweep.get(i, "p50_us"), 0),
                  TextTable::num(sweep.get(i, "p99_us"), 0),
                  TextTable::num(
                      sweep.get(i, "frames_per_tenant_sec"), 2),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "rounds"))),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "round_crossings"))),
                  TextTable::num(sweep.get(i, "starve_max_ms"), 2),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "storms")))});
    }
    t.print();

    vppbench::PaperCheck check("table_tenants");

    // Frame conservation holds in every configuration.
    for (std::size_t i = 0; i < rows.size(); ++i) {
        check.that(sweep.label(i) + ": frame invariant holds",
                   sweep.get(i, "invariant_ok") == 1.0);
        check.that(sweep.label(i) + ": all bids answered",
                   sweep.get(i, "bids") ==
                       static_cast<double>(rows[i].tenants) *
                           kBidsPerTenant);
    }

    // The headline: the market's tail stays flat from 10 to 1k
    // tenants (within 2x) while the conventional single-server clock
    // queues every bid and its p99 grows with the tenant count.
    double mkt10 = sweep.get(0, "p99_us");
    double mkt1k = sweep.get(2, "p99_us");
    double conv10 = sweep.get(4, "p99_us");
    double conv1k = sweep.get(6, "p99_us");
    check.that("market p99 at 1k tenants within 2x of 10-tenant",
               mkt1k <= 2.0 * mkt10);
    check.that("conventional p99 degrades >4x from 10 to 1k tenants",
               conv1k > 4.0 * conv10);
    check.that("market p99 beats conventional at 1k tenants",
               mkt1k < conv1k);

    // Batched rounds amortise IPC: far fewer crossings than bids.
    check.that("rounds amortise crossings (1k tenants)",
               sweep.get(2, "round_crossings") <
                   0.5 * sweep.get(2, "bids"));
    check.that("conventional path never runs rounds",
               sweep.get(6, "rounds") == 0.0);

    // Starvation is visible but bounded: unfunded bids age out
    // through admission control instead of deadlocking.
    check.that("market 1k: starvation observed",
               sweep.get(2, "starve_max_ms") > 0.0);
    check.that("market 1k: starved bids were answered",
               sweep.get(2, "bids_starved") > 0.0);

    // Storm rows: storms really fired, and the capped-herd market row
    // keeps a better tail than the full-herd conventional sweep.
    check.that("storm rows triggered storms",
               sweep.get(8, "storms") > 0.0 &&
                   sweep.get(9, "storms") > 0.0);
    check.that("market caps the thundering herd",
               sweep.get(8, "p99_us") < sweep.get(9, "p99_us"));

    // Heterogeneous income: with rich tenants out-bidding poor ones
    // for the same scarce replenishment stream, money must move the
    // queue — richer tenants see fewer unserved bids, no worse
    // starvation, and more frames funded.
    const std::size_t hi = rows.size() - 1;
    check.that("hetero: rich tenants see fewer unserved bids",
               sweep.get(hi, "rich_unserved") <
                   sweep.get(hi, "poor_unserved"));
    check.that("hetero: rich starvation no worse than poor",
               sweep.get(hi, "rich_starve_ms") <=
                   sweep.get(hi, "poor_starve_ms"));
    check.that("hetero: rich tenants funded more frames",
               sweep.get(hi, "rich_funded") >
                   sweep.get(hi, "poor_funded"));

    std::printf("\nShape: batched auction rounds answer every "
                "same-window bid in one IPC crossing,\nso the "
                "market's p99 stays flat as tenants scale 10 -> 1k "
                "while the conventional\nsingle-server clock queues "
                "each bid and its tail grows with the tenant "
                "count.\n");
    return check.exitCode(sweep);
}
