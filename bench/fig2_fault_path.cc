/**
 * @file
 * Reproduces paper Figure 2: "Page Fault Handling with External
 * Page-Cache Management" — as a latency decomposition of the five
 * steps for a fault on a cold (uncached) file page, plus the minimal
 * fault (steps 2-3 replaced by local data) for comparison.
 *
 *   step 1  application traps; kernel forwards the fault to the manager
 *   step 2  manager allocates a frame and requests the data from the
 *           file server
 *   step 3  server replies with the data (disk + transfer)
 *   step 4  manager invokes MigratePages to move the filled frame into
 *           the faulting segment
 *   step 5  manager responds; the application resumes
 */

#include <cstdio>
#include <vector>

#include "apps/stack.h"
#include "sim/table.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;

int
main()
{
    hw::MachineConfig m = hw::decstation5000_200();
    apps::VppStack stack(m);
    const auto &c = m.cost;

    // Live measurement: one cold-file-page fault end to end.
    uio::FileId f = stack.server.createFile("cold", 64 << 10);
    runTask(stack.sim, stack.ucds.openFile(f));
    kernel::Process proc("app", 1);
    sim::SimTime t0 = stack.sim.now();
    runTask(stack.sim,
            stack.kern.touchSegment(proc, stack.registry.segmentOf(f),
                                    0, kernel::AccessType::Read));
    double total_us = sim::toUsec(stack.sim.now() - t0);

    // Decomposition from the calibrated cost model (default manager:
    // separate process, so steps 1 and 5 each include a context
    // switch).
    double step1 = sim::toUsec(c.trapEnter + c.faultDispatch +
                               c.ipcSend + c.contextSwitch);
    double step2 = sim::toUsec(c.managerAlloc) + 200.0; // server request
    double step3 =
        sim::toUsec(m.diskLatency) +
        4096.0 / (m.diskBandwidthMBps * 1e6) * 1e6 + // transfer
        sim::toUsec(c.copyPerKB) * 4;                // copy into frame
    double step4 = sim::toUsec(c.migrateBase + c.migratePerPage +
                               c.mapInstall);
    double step5 = sim::toUsec(c.ipcReply + c.contextSwitch +
                               c.trapExit);

    std::printf("Figure 2: page-fault handling sequence, cold file "
                "page (microseconds)\n\n");
    TextTable t({"Step", "What happens", "us"});
    t.addRow({"1", "trap; kernel forwards fault to manager",
              TextTable::num(step1, 1)});
    t.addRow({"2", "manager allocates frame, requests data from server",
              TextTable::num(step2, 1)});
    t.addRow({"3", "server replies (disk + transfer); data copied in",
              TextTable::num(step3, 1)});
    t.addRow({"4", "MigratePages installs frame in faulting segment",
              TextTable::num(step4, 1)});
    t.addRow({"5", "manager replies; application resumes",
              TextTable::num(step5, 1)});
    t.addRow({"", "total (decomposed)",
              TextTable::num(step1 + step2 + step3 + step4 + step5,
                             1)});
    t.addRow({"", "total (measured end-to-end)",
              TextTable::num(total_us, 1)});
    t.print();

    std::printf("\n'Filling the page frame tends to dominate the other "
                "costs of page fault\nhandling' (paper section 2.1): "
                "step 3 is %.0f%% of the total here.\n",
                step3 / total_us * 100.0);

    // The warm path for contrast: the minimal fault.
    sim::SimTime t1 = stack.sim.now();
    runTask(stack.sim,
            stack.kern.touchSegment(proc, stack.registry.segmentOf(f),
                                    1, kernel::AccessType::Read));
    // page 1 is cold too; touch page 0 again for the mapped case
    sim::SimTime t2 = stack.sim.now();
    runTask(stack.sim,
            stack.kern.touchSegment(proc, stack.registry.segmentOf(f),
                                    0, kernel::AccessType::Read));
    std::printf("\nSecond cold page: %.1f us; already-resident page: "
                "%.1f us (no kernel\ninvolvement once mapped).\n",
                sim::toUsec(t2 - t1),
                sim::toUsec(stack.sim.now() - t2));
    return 0;
}
