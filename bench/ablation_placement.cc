/**
 * @file
 * Ablation A7 (paper §1, §2.2): physical placement control on a
 * DASH-like distributed-memory machine.
 *
 * Four workers, one per node, each scanning its own quarter of a
 * shared array. With placement control the manager backs each quarter
 * with frames on its worker's node (all references local); with
 * oblivious allocation frames land anywhere and ~3/4 of references
 * cross the network at ~4x the latency.
 */

#include <cstdio>

#include "appmgr/placement_mgr.h"
#include "core/kernel.h"
#include "hw/numa.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;

namespace {

struct PlacementResult
{
    double scanUs;      ///< total reference latency, one full pass
    double localFrac;   ///< fraction of pages on their home node
};

PlacementResult
run(bool placed, int nodes, std::uint64_t pages_per_node)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 64 << 20;
    kernel::Kernel kern(s, m);
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    hw::NumaTopology topo =
        hw::NumaTopology::dashLike(nodes, m.memoryBytes);

    appmgr::PlacementManager mgr(kern, &spcm, 1, topo);
    mgr.initNow(8192, 64);

    const std::uint64_t total = nodes * pages_per_node;
    kernel::SegmentId array =
        kern.createSegmentNow("array", 4096, total, 1, &mgr);
    if (placed) {
        for (int nd = 0; nd < nodes; ++nd)
            mgr.assign(array, nd * pages_per_node, pages_per_node, nd);
    }

    kernel::Process proc("workers", 1);
    for (kernel::PageIndex p = 0; p < total; ++p) {
        runTask(s, kern.touchSegment(proc, array, p,
                                     kernel::AccessType::Write));
    }

    // Each worker scans its own chunk; charge per-reference latency
    // from its node to each page's actual frame (64 references per
    // page).
    auto attrs = kern.getPageAttributesNow(array, 0, total);
    sim::Duration cost = 0;
    std::uint64_t local_pages = 0;
    for (const auto &a : attrs) {
        int worker_node =
            static_cast<int>(a.page / pages_per_node);
        cost += 64 * topo.accessCost(worker_node, a.physAddr);
        if (topo.nodeOf(a.physAddr) == worker_node)
            ++local_pages;
    }
    return {sim::toUsec(cost),
            static_cast<double>(local_pages) / total};
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "ablation_placement");

    std::vector<std::uint64_t> perNode = {64, 256, 1024};
    vppbench::Sweep sweep("ablation_placement", opt);
    for (std::uint64_t ppn : perNode) {
        sweep.add(std::to_string(4 * ppn) + " pages", [ppn] {
            PlacementResult rnd = run(false, 4, ppn);
            PlacementResult pl = run(true, 4, ppn);
            vppbench::RowResult r;
            r.set("oblivious_scan_us", rnd.scanUs);
            r.set("oblivious_local_frac", rnd.localFrac);
            r.set("placed_scan_us", pl.scanUs);
            r.set("placed_local_frac", pl.localFrac);
            return r;
        });
    }
    sweep.run();

    std::printf("Ablation A7: physical placement control (DASH-like, "
                "4 nodes,\nremote reference 4x local, 4 workers "
                "scanning their own quarters)\n\n");
    TextTable t({"Working set", "oblivious (us)", "local %",
                 "placed (us)", "local %", "speedup"});
    for (std::size_t i = 0; i < perNode.size(); ++i) {
        double rndUs = sweep.get(i, "oblivious_scan_us");
        double plUs = sweep.get(i, "placed_scan_us");
        t.addRow({sweep.label(i), TextTable::num(rndUs, 0),
                  TextTable::num(
                      sweep.get(i, "oblivious_local_frac") * 100, 0) +
                      "%",
                  TextTable::num(plUs, 0),
                  TextTable::num(
                      sweep.get(i, "placed_local_frac") * 100, 0) +
                      "%",
                  TextTable::num(rndUs / plUs, 2) + "x"});
    }
    t.print();
    std::printf("\nWith frames requested by physical range from the "
                "SPCM, every worker's\nreferences stay node-local, as "
                "the paper's DASH discussion prescribes.\n");
    return vppbench::exitCode(sweep);
}
