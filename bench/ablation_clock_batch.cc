/**
 * @file
 * Ablation A6 (paper §2.3): batched protection changes in the default
 * manager's reference sampling.
 *
 * "To reduce the overhead of handling these faults, the default
 * manager changes the protection on a number of contiguous pages,
 * rather than a single page, when a fault occurs."
 *
 * A program with strong spatial locality re-touches a sampled region;
 * the batch size trades sampling faults (each a full separate-process
 * fault) against sampling precision.
 */

#include <cstdio>

#include "apps/stack.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;

namespace {

struct SampleResult
{
    std::uint64_t samplingFaults;
    double overheadMs;
};

SampleResult
runSampling(std::uint64_t batch, std::uint64_t pages)
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 64 << 20;
    apps::StackOptions opts;
    opts.ucdsParams.protBatchPages = batch;
    apps::VppStack stack(m, opts);
    kernel::Process proc("app", 1);

    kernel::SegmentId heap = runTask(
        stack.sim, stack.ucds.createAnonymous("heap", pages, 1));
    for (kernel::PageIndex p = 0; p < pages; ++p) {
        runTask(stack.sim,
                stack.kern.touchSegment(proc, heap, p,
                                        kernel::AccessType::Write));
    }
    // Arm the sampler on every page, then sweep the heap
    // sequentially, as a locality-friendly program would.
    runTask(stack.sim, stack.ucds.clockPass(0));
    sim::SimTime t0 = stack.sim.now();
    std::uint64_t faults0 = stack.ucds.samplingFaults();
    for (kernel::PageIndex p = 0; p < pages; ++p) {
        runTask(stack.sim,
                stack.kern.touchSegment(proc, heap, p,
                                        kernel::AccessType::Read));
    }
    return {stack.ucds.samplingFaults() - faults0,
            sim::toMsec(stack.sim.now() - t0)};
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "ablation_clock_batch");
    const std::uint64_t pages = 512; // 2 MB heap

    std::vector<std::uint64_t> batches = {1, 2, 4, 8, 16, 32};
    vppbench::Sweep sweep("ablation_clock_batch", opt);
    for (std::uint64_t batch : batches) {
        sweep.add("batch-" + std::to_string(batch), [batch, pages] {
            SampleResult r = runSampling(batch, pages);
            vppbench::RowResult out;
            out.set("sampling_faults",
                    static_cast<double>(r.samplingFaults));
            out.set("overhead_ms", r.overheadMs);
            return out;
        });
    }
    sweep.run();

    std::printf("Ablation A6: protection-change batch size vs "
                "sampling overhead\n(2 MB heap swept sequentially "
                "after one clock pass)\n\n");

    TextTable t({"Batch (pages)", "sampling faults", "sweep cost (ms)",
                 "vs batch=1"});
    double base = sweep.get(0, "overhead_ms");
    for (std::size_t i = 0; i < batches.size(); ++i) {
        double overhead = sweep.get(i, "overhead_ms");
        t.addRow({std::to_string(batches[i]),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "sampling_faults"))),
                  TextTable::num(overhead, 1),
                  TextTable::num((1.0 - overhead / base) * 100.0, 1) +
                      "%"});
    }
    t.print();
    std::printf("\nLarger batches amortise the separate-process fault "
                "cost at the price of\ncoarser reference information "
                "for the clock.\n");
    return vppbench::exitCode(sweep);
}
