/**
 * @file
 * Reproduces paper Table 1: "System Primitive Times" (microseconds) on
 * the DECstation 5000/200 model, plus the §3.1 user-level fault-
 * handler comparison (ULTRIX signal + mprotect = 152 us).
 *
 * Paper values: V++ faulting-process minimal fault 107 / Ultrix 175;
 * default-manager minimal fault 379 / 175; Read 4KB 222 / 211;
 * Write 4KB 203 / 311.
 */

#include <cstdio>
#include <vector>

#include "apps/stack.h"
#include "baseline/conventional_vm.h"
#include "managers/generic.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;

namespace {

/** Mean simulated microseconds of one V++ minimal fault. */
double
vppMinimalFault(hw::ManagerMode mode, int iters)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 32 << 20;
    kernel::Kernel kern(s, m);
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    mgr::GenericSegmentManager manager(
        kern, mode == hw::ManagerMode::SameProcess ? "app-mgr" : "ucds",
        mode, &spcm, 1);
    manager.initNow(4096, 1024);
    kernel::SegmentId seg =
        kern.createSegmentNow("heap", 4096, 4096, 1, &manager);
    kernel::Process proc("bench", 1);

    sim::SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i) {
        runTask(s, kern.touchSegment(proc, seg, i,
                                     kernel::AccessType::Write));
    }
    return sim::toUsec(s.now() - t0) / iters;
}

double
ultrixMinimalFault(int iters)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    hw::Disk disk(s, m.diskLatency, m.diskBandwidthMBps);
    uio::FileServer server(s, disk, sim::usec(200));
    baseline::ConventionalVm vm(s, m, server);
    baseline::ProcId p = vm.createProcess("bench");
    sim::SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i)
        runTask(s, vm.touch(p, static_cast<std::uint64_t>(i) * 4096));
    return sim::toUsec(s.now() - t0) / iters;
}

double
ultrixUserFault(int iters)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    hw::Disk disk(s, m.diskLatency, m.diskBandwidthMBps);
    uio::FileServer server(s, disk, sim::usec(200));
    baseline::ConventionalVm vm(s, m, server);
    baseline::ProcId p = vm.createProcess("bench");
    sim::SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i)
        runTask(s, vm.protectedTouch(p, 0));
    return sim::toUsec(s.now() - t0) / iters;
}

struct IoCosts
{
    double read4k;
    double write4k;
};

IoCosts
vppCachedIo(int iters)
{
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 32 << 20;
    apps::VppStack stack(m);
    uio::FileId f = stack.server.createFile("hot", 1 << 20);
    stack.ucds.preloadFileNow(f);
    kernel::Process proc("bench", 1);
    std::vector<std::byte> buf(4096);

    sim::SimTime t0 = stack.sim.now();
    for (int i = 0; i < iters; ++i)
        runTask(stack.sim, stack.io.read(proc, f, (i % 256) * 4096, buf));
    double read_us = sim::toUsec(stack.sim.now() - t0) / iters;

    t0 = stack.sim.now();
    for (int i = 0; i < iters; ++i) {
        runTask(stack.sim,
                stack.io.write(proc, f, (i % 256) * 4096, buf));
    }
    double write_us = sim::toUsec(stack.sim.now() - t0) / iters;
    return {read_us, write_us};
}

IoCosts
ultrixCachedIo(int iters)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    hw::Disk disk(s, m.diskLatency, m.diskBandwidthMBps);
    uio::FileServer server(s, disk, sim::usec(200));
    baseline::ConventionalVm vm(s, m, server);
    baseline::ProcId p = vm.createProcess("bench");
    uio::FileId f = server.createFile("hot", 1 << 20);
    vm.preloadFileNow(f);
    std::vector<std::byte> buf(4096);

    sim::SimTime t0 = s.now();
    for (int i = 0; i < iters; ++i)
        runTask(s, vm.read(p, f, (i % 256) * 4096, buf));
    double read_us = sim::toUsec(s.now() - t0) / iters;

    t0 = s.now();
    for (int i = 0; i < iters; ++i)
        runTask(s, vm.write(p, f, (i % 256) * 4096, buf));
    double write_us = sim::toUsec(s.now() - t0) / iters;
    return {read_us, write_us};
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "table1_primitives");
    const int iters = 64;

    vppbench::Sweep sweep("table1_primitives", opt);
    sweep.add("fault-same-process", [] {
        vppbench::RowResult r;
        r.set("fault_us",
              vppMinimalFault(hw::ManagerMode::SameProcess, iters));
        return r;
    });
    sweep.add("fault-separate-process", [] {
        vppbench::RowResult r;
        r.set("fault_us",
              vppMinimalFault(hw::ManagerMode::SeparateProcess,
                              iters));
        return r;
    });
    sweep.add("fault-ultrix", [] {
        vppbench::RowResult r;
        r.set("fault_us", ultrixMinimalFault(iters));
        return r;
    });
    sweep.add("fault-ultrix-user-handler", [] {
        vppbench::RowResult r;
        r.set("fault_us", ultrixUserFault(iters));
        return r;
    });
    sweep.add("cached-io-vpp", [] {
        IoCosts io = vppCachedIo(iters);
        vppbench::RowResult r;
        r.set("read4k_us", io.read4k);
        r.set("write4k_us", io.write4k);
        return r;
    });
    sweep.add("cached-io-ultrix", [] {
        IoCosts io = ultrixCachedIo(iters);
        vppbench::RowResult r;
        r.set("read4k_us", io.read4k);
        r.set("write4k_us", io.write4k);
        return r;
    });
    sweep.run();

    double fault_same = sweep.get(0, "fault_us");
    double fault_sep = sweep.get(1, "fault_us");
    double fault_ultrix = sweep.get(2, "fault_us");
    double fault_user = sweep.get(3, "fault_us");
    IoCosts vpp_io = {sweep.get(4, "read4k_us"),
                      sweep.get(4, "write4k_us")};
    IoCosts ult_io = {sweep.get(5, "read4k_us"),
                      sweep.get(5, "write4k_us")};

    std::printf("Table 1: System Primitive Times (microseconds)\n");
    std::printf("DECstation 5000/200 model, 4 KB pages\n\n");

    TextTable t({"Measurement", "V++ (paper)", "V++ (measured)",
                 "Ultrix (paper)", "Ultrix (measured)"});
    t.addRow({"Faulting Process Minimal Fault", "107",
              TextTable::num(fault_same, 1), "175",
              TextTable::num(fault_ultrix, 1)});
    t.addRow({"Default Segment Manager Minimal Fault", "379",
              TextTable::num(fault_sep, 1), "175",
              TextTable::num(fault_ultrix, 1)});
    t.addRow({"Read 4KB (cached)", "222", TextTable::num(vpp_io.read4k, 1),
              "211", TextTable::num(ult_io.read4k, 1)});
    t.addRow({"Write 4KB (cached)", "203",
              TextTable::num(vpp_io.write4k, 1), "311",
              TextTable::num(ult_io.write4k, 1)});
    t.print();

    std::printf("\nUser-level fault handling (paper section 3.1):\n");
    TextTable u({"Path", "paper", "measured"});
    u.addRow({"Ultrix signal + mprotect handler", "152",
              TextTable::num(fault_user, 1)});
    u.addRow({"V++ full fault via external page-cache mgmt", "107",
              TextTable::num(fault_same, 1)});
    u.print();
    std::printf("\nV++ handles a FULL fault (with page transfer) in "
                "less time than Ultrix\nneeds to bounce one protection "
                "fault through a user signal handler.\n");

    // These are the calibration targets (EXPERIMENTS.md): the
    // composed control paths must land on the paper's numbers
    // almost exactly.
    vppbench::PaperCheck check("table1_primitives");
    check.near("vpp minimal fault", fault_same, 107, 0.02);
    check.near("default-manager minimal fault", fault_sep, 379, 0.02);
    check.near("ultrix minimal fault", fault_ultrix, 175, 0.02);
    check.near("ultrix user-handler fault", fault_user, 152, 0.02);
    check.near("vpp read 4KB", vpp_io.read4k, 222, 0.02);
    check.near("vpp write 4KB", vpp_io.write4k, 203, 0.02);
    check.near("ultrix read 4KB", ult_io.read4k, 211, 0.02);
    check.near("ultrix write 4KB", ult_io.write4k, 311, 0.02);
    check.that("full V++ fault beats Ultrix user bounce",
               fault_same < fault_user);
    return check.exitCode(sweep);
}
