/**
 * @file
 * Robustness table: transaction throughput and fault-path latency
 * under injected faults, V++ external management vs the conventional
 * in-kernel comparator.
 *
 * The paper's safety argument (§2-§3) is that moving page-cache
 * management out of the kernel does not surrender the machine to a
 * buggy manager: the kernel retains ultimate authority. This driver
 * measures that claim. A fixed transaction workload (random 4 KB
 * touches over four cached files, with periodic clock reclamation to
 * keep paging traffic alive) runs against a grid of injected fault
 * rates:
 *
 *  - disk error rate: every transfer can fail (vpp::inject); both
 *    systems absorb errors with the same bounded retry + backoff;
 *  - manager flakiness: the application's segment manager stalls,
 *    crashes, or lies on a fraction of handler invocations; the
 *    kernel's resilience policy (deadline, redelivery, failover to
 *    the trusted default manager) bounds the damage.
 *
 * Headline: V++ completes every transaction at every injected rate —
 * external management degrades gracefully because the default-manager
 * fallback is always available — while the only way the conventional
 * system survives is that its (in-kernel, uninjectable) fault path
 * never leaves the trusted base in the first place.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/stack.h"
#include "baseline/conventional_vm.h"
#include "inject/inject.h"
#include "sim/random.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using sim::TextTable;

namespace {

// Workload shape (identical for both systems, all rows).
constexpr int kTxns = 300;
constexpr int kTouchesPerTxn = 24;
constexpr std::uint64_t kFilePages = 512; // 2 MB per file
constexpr int kFiles = 4;
constexpr int kReclaimEveryTxns = 25;
constexpr std::uint64_t kReclaimTarget = 192;
constexpr std::uint64_t kWorkloadSeed = 20260806;

// One injection seed per row keeps the fault streams independent of
// row order (and of --jobs).
inject::Config
engineConfig(std::uint64_t row_seed, double disk_err, double flaky,
             double storm_prob, bool enabled)
{
    inject::Config c;
    c.enabled = enabled;
    c.seed = 0x5eedb0b0ull ^ (row_seed * 0x9e3779b97f4a7c15ull);
    c.disk.readErrorProb = disk_err;
    c.disk.writeErrorProb = disk_err;
    c.disk.latencySpikeProb = disk_err;
    c.manager.stallProb = flaky * 0.50;
    c.manager.crashProb = flaky * 0.25;
    c.manager.lieProb = flaky * 0.25;
    c.pressure.stormProb = storm_prob;
    c.pressure.stormFrames = 64;
    return c;
}

kernel::ResiliencePolicy
benchPolicy()
{
    kernel::ResiliencePolicy pol;
    pol.enabled = true;
    // Longer than any honest fault (worst case: disk latency plus a
    // 50 ms injected spike plus retry backoff), shorter than the
    // 200 ms injected stall, so timeouts fire on stalls only.
    pol.faultDeadline = sim::msec(120);
    pol.maxRedeliveries = 3;
    pol.retryBackoff = sim::msec(1);
    pol.failover = true;
    pol.reclaimOnFailover = true;
    return pol;
}

sim::Task<>
vppTxnLoop(apps::VppStack &st, mgr::DefaultSegmentManager &app_mgr,
           kernel::Process &proc,
           const std::vector<kernel::SegmentId> &segs, int *txns_done,
           sim::SimTime *end_time)
{
    sim::Random rng(kWorkloadSeed);
    for (int t = 0; t < kTxns; ++t) {
        kernel::SegmentId seg = segs[t % kFiles];
        for (int j = 0; j < kTouchesPerTxn; ++j) {
            kernel::PageIndex page =
                static_cast<kernel::PageIndex>(rng.below(kFilePages));
            kernel::AccessType a = rng.chance(0.25)
                                       ? kernel::AccessType::Write
                                       : kernel::AccessType::Read;
            co_await st.kern.touchSegment(proc, seg, page, a);
        }
        ++*txns_done;
        if ((t + 1) % kReclaimEveryTxns == 0)
            co_await app_mgr.clockPass(kReclaimTarget);
    }
    *end_time = st.sim.now();
}

vppbench::RowResult
runVppRow(double disk_err, double flaky, double storm_prob,
          std::uint64_t row_seed, int attach_engine /* 0 no, 1 yes */,
          bool engine_enabled)
{
    hw::MachineConfig machine = hw::decstation5000_200();
    apps::VppStack st(machine);

    // The application's own manager: same implementation as the UCDS
    // but a separate (untrusted, injectable) process instance.
    mgr::DefaultSegmentManager app_mgr(st.kern, &st.spcm, st.server,
                                       st.registry);
    app_mgr.initNow(4096, 512);

    st.kern.setDefaultManager(&st.ucds);
    st.kern.setResiliencePolicy(benchPolicy());

    inject::Engine eng(engineConfig(row_seed, disk_err, flaky,
                                    storm_prob, engine_enabled));
    if (attach_engine) {
        st.disk.setInjector(&eng);
        st.kern.setInjector(&eng);
        st.spcm.setInjector(&eng);
    }

    std::vector<kernel::SegmentId> segs;
    for (int i = 0; i < kFiles; ++i) {
        uio::FileId f = st.server.createFile(
            "txn" + std::to_string(i), kFilePages * 4096);
        segs.push_back(kernel::runTask(st.sim, app_mgr.openFile(f)));
    }

    kernel::Process proc("txn", 1);
    int txns_done = 0;
    sim::SimTime end_time = 0;
    std::string error;
    try {
        kernel::runTask(st.sim, vppTxnLoop(st, app_mgr, proc, segs,
                                           &txns_done, &end_time));
    } catch (const std::exception &e) {
        error = e.what();
        end_time = st.sim.now();
    }
    if (!error.empty())
        std::fprintf(stderr, "table_robustness: v++ row error: %s\n",
                     error.c_str());

    const kernel::Kernel::Stats &ks = st.kern.stats();
    double sim_sec = sim::toSec(end_time);
    std::string why;
    bool invariant_ok = st.kern.checkFrameInvariant(&why);
    if (!invariant_ok)
        std::fprintf(stderr,
                     "table_robustness: invariant violated: %s\n",
                     why.c_str());

    vppbench::RowResult r;
    r.set("txns", static_cast<double>(txns_done));
    r.set("completed", txns_done == kTxns ? 1.0 : 0.0);
    r.set("sim_sec", sim_sec);
    r.set("txn_per_sec",
          sim_sec > 0 ? static_cast<double>(txns_done) / sim_sec : 0.0);
    r.set("faults", static_cast<double>(ks.faults));
    r.set("manager_calls", static_cast<double>(ks.managerCalls));
    r.set("redeliveries", static_cast<double>(ks.faultRedeliveries));
    r.set("timeouts", static_cast<double>(ks.faultTimeouts));
    r.set("failovers", static_cast<double>(ks.failovers));
    r.set("manager_crashes", static_cast<double>(ks.managerCrashes));
    r.set("injected_stalls", static_cast<double>(ks.injectedStalls));
    r.set("injected_lies", static_cast<double>(ks.injectedLies));
    r.set("frames_reclaimed", static_cast<double>(ks.framesReclaimed));
    r.set("io_errors", static_cast<double>(ks.ioErrors));
    r.set("io_retries", static_cast<double>(ks.ioRetries));
    r.set("disk_errors", static_cast<double>(st.disk.errors()));
    r.set("disk_retries", static_cast<double>(st.disk.retries()));
    r.set("spcm_grants", static_cast<double>(st.spcm.grantsServed()));
    r.set("storms", static_cast<double>(st.spcm.stormsTriggered()));
    r.set("avg_fault_us",
          ks.faults ? sim::toUsec(ks.faultLatencyTotal) /
                          static_cast<double>(ks.faults)
                    : 0.0);
    r.set("max_fault_us", sim::toUsec(ks.faultLatencyMax));
    r.set("invariant_ok", invariant_ok ? 1.0 : 0.0);
    return r;
}

sim::Task<>
ultrixTxnLoop(sim::Simulation &s, baseline::ConventionalVm &vm,
              baseline::ProcId proc,
              const std::vector<uio::FileId> &files, int *txns_done,
              sim::SimTime *end_time)
{
    sim::Random rng(kWorkloadSeed);
    std::vector<std::byte> buf(4096);
    for (int t = 0; t < kTxns; ++t) {
        uio::FileId f = files[t % kFiles];
        for (int j = 0; j < kTouchesPerTxn; ++j) {
            std::uint64_t off = rng.below(kFilePages) * 4096ull;
            if (rng.chance(0.25))
                co_await vm.write(proc, f, off,
                                  std::span<const std::byte>(buf));
            else
                co_await vm.read(proc, f, off,
                                 std::span<std::byte>(buf));
        }
        ++*txns_done;
        // The comparator's equivalent of reclamation pressure: flush
        // and drop one file's cache, forcing refetches.
        if ((t + 1) % kReclaimEveryTxns == 0)
            co_await vm.closeFile(files[t % kFiles]);
    }
    *end_time = s.now();
}

vppbench::RowResult
runUltrixRow(double disk_err, std::uint64_t row_seed)
{
    hw::MachineConfig machine = hw::decstation5000_200();
    sim::Simulation s;
    hw::Disk disk(s, machine.diskLatency, machine.diskBandwidthMBps);
    uio::FileServer server(s, disk, sim::usec(200));
    baseline::ConventionalVm vm(s, machine, server);

    inject::Engine eng(engineConfig(row_seed, disk_err, 0.0, 0.0,
                                    disk_err > 0));
    disk.setInjector(&eng);

    std::vector<uio::FileId> files;
    for (int i = 0; i < kFiles; ++i) {
        files.push_back(server.createFile("txn" + std::to_string(i),
                                          kFilePages * 4096));
    }
    baseline::ProcId proc = vm.createProcess("txn");

    int txns_done = 0;
    sim::SimTime end_time = 0;
    std::string error;
    try {
        kernel::runTask(s, ultrixTxnLoop(s, vm, proc, files,
                                         &txns_done, &end_time));
    } catch (const std::exception &e) {
        error = e.what();
        end_time = s.now();
    }
    if (!error.empty())
        std::fprintf(stderr,
                     "table_robustness: ultrix row error: %s\n",
                     error.c_str());

    double sim_sec = sim::toSec(end_time);
    vppbench::RowResult r;
    r.set("txns", static_cast<double>(txns_done));
    r.set("completed", txns_done == kTxns ? 1.0 : 0.0);
    r.set("sim_sec", sim_sec);
    r.set("txn_per_sec",
          sim_sec > 0 ? static_cast<double>(txns_done) / sim_sec : 0.0);
    r.set("io_errors", static_cast<double>(vm.stats().ioErrors));
    r.set("io_retries", static_cast<double>(vm.stats().ioRetries));
    r.set("disk_errors", static_cast<double>(disk.errors()));
    r.set("disk_retries", static_cast<double>(disk.retries()));
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "table_robustness");

    struct Row
    {
        std::string label;
        bool isVpp;
        double diskErr;
        double flaky;
        double storm;
        int attach;   ///< attach an engine object at all
        bool enabled; ///< Config::enabled
    };
    std::vector<Row> rows = {
        {"v++ clean (no engine)", true, 0, 0, 0, 0, false},
        {"v++ clean (engine off)", true, 0, 0, 0, 1, false},
        {"v++ disk-err 0.5%", true, 0.005, 0, 0, 1, true},
        {"v++ disk-err 2%", true, 0.02, 0, 0, 1, true},
        {"v++ flaky-mgr 10%", true, 0, 0.10, 0, 1, true},
        {"v++ flaky-mgr 50%", true, 0, 0.50, 0, 1, true},
        {"v++ disk 2% + flaky 50%", true, 0.02, 0.50, 0, 1, true},
        {"v++ reclaim-storm 40%", true, 0, 0, 0.40, 1, true},
        {"ultrix clean", false, 0, 0, 0, 1, false},
        {"ultrix disk-err 0.5%", false, 0.005, 0, 0, 1, true},
        {"ultrix disk-err 2%", false, 0.02, 0, 0, 1, true},
    };

    vppbench::Sweep sweep("table_robustness", opt);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        std::uint64_t seed = 100 + i;
        if (row.isVpp) {
            sweep.add(row.label, [row, seed] {
                return runVppRow(row.diskErr, row.flaky, row.storm,
                                 seed, row.attach, row.enabled);
            });
        } else {
            sweep.add(row.label, [row, seed] {
                return runUltrixRow(row.diskErr, seed);
            });
        }
    }
    sweep.run();

    std::printf("Robustness: transaction throughput under injected "
                "faults\n");
    std::printf("%d txns x %d random 4 KB touches over %d files, "
                "reclamation every %d txns\n\n",
                kTxns, kTouchesPerTxn, kFiles, kReclaimEveryTxns);

    TextTable t({"Configuration", "txns", "sim s", "txn/s",
                 "disk err", "io retry", "redeliv", "timeout",
                 "failover", "avg flt us", "max flt us"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        bool v = rows[i].isVpp;
        t.addRow({sweep.label(i),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "txns"))),
                  TextTable::num(sweep.get(i, "sim_sec"), 2),
                  TextTable::num(sweep.get(i, "txn_per_sec"), 2),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "disk_errors"))),
                  std::to_string(static_cast<std::uint64_t>(
                      sweep.get(i, "io_retries"))),
                  v ? std::to_string(static_cast<std::uint64_t>(
                          sweep.get(i, "redeliveries")))
                    : std::string("-"),
                  v ? std::to_string(static_cast<std::uint64_t>(
                          sweep.get(i, "timeouts")))
                    : std::string("-"),
                  v ? std::to_string(static_cast<std::uint64_t>(
                          sweep.get(i, "failovers")))
                    : std::string("-"),
                  v ? TextTable::num(sweep.get(i, "avg_fault_us"), 0)
                    : std::string("-"),
                  v ? TextTable::num(sweep.get(i, "max_fault_us"), 0)
                    : std::string("-")});
    }
    t.print();

    vppbench::PaperCheck check("table_robustness");

    // Satellite guarantee: an attached-but-disabled engine is
    // indistinguishable from no engine at all — every metric equal.
    {
        const auto &a = sweep.at(0).metrics;
        const auto &b = sweep.at(1).metrics;
        check.that("disabled engine row has same metric set",
                   a.size() == b.size());
        for (std::size_t m = 0; m < std::min(a.size(), b.size()); ++m) {
            check.that("identity: " + a[m].first,
                       a[m].first == b[m].first &&
                           a[m].second == b[m].second);
        }
    }

    // Graceful degradation: every V++ row finishes every transaction,
    // no matter what was injected, and frame conservation holds.
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (!rows[i].isVpp)
            continue;
        check.that(sweep.label(i) + ": all txns complete",
                   sweep.get(i, "completed") == 1.0);
        check.that(sweep.label(i) + ": frame invariant holds",
                   sweep.get(i, "invariant_ok") == 1.0);
    }

    // Disk rows: errors really were injected and the bounded retry
    // absorbed them (for both systems).
    for (std::size_t i : {std::size_t{2}, std::size_t{3},
                          std::size_t{9}, std::size_t{10}}) {
        check.that(sweep.label(i) + ": errors injected",
                   sweep.get(i, "disk_errors") > 0);
        check.that(sweep.label(i) + ": retries recovered",
                   sweep.get(i, "io_retries") > 0 &&
                       sweep.get(i, "completed") == 1.0);
    }

    // Manager rows: the resilience machinery was exercised — mild
    // flakiness costs redeliveries, heavy flakiness forces timeouts
    // and failover to the default manager.
    check.that("flaky 10%: redeliveries occurred",
               sweep.get(4, "redeliveries") > 0);
    check.that("flaky 50%: timeouts fired",
               sweep.get(5, "timeouts") > 0);
    check.that("flaky 50%: failover to default manager",
               sweep.get(5, "failovers") > 0);
    check.that("flaky 50%: crashes were contained",
               sweep.get(5, "manager_crashes") > 0);
    check.that("storm row: storms triggered",
               sweep.get(7, "storms") > 0);

    // Degradation is bounded: even the harshest row keeps a usable
    // fraction of clean throughput (the fallback path is the brake).
    double clean = sweep.get(0, "txn_per_sec");
    double harsh = sweep.get(6, "txn_per_sec");
    check.that("throughput degrades gracefully (>5% of clean)",
               harsh > 0.05 * clean);

    std::printf("\nShape: V++ completes all transactions at every "
                "injected rate; the kernel's\ndeadline + redelivery + "
                "default-manager failover bounds the damage a flaky\n"
                "manager can do, and bounded retry absorbs disk "
                "errors in both systems.\n");
    return check.exitCode(sweep);
}
