/**
 * @file
 * Scale-out study: the DebitCredit cluster grown from the paper's 6
 * CPUs to 64-256, run as one sharded simulation (db/cluster.h).
 *
 * There is no paper table to land on — the paper's hardware tops out
 * at one 6-processor machine — so the gates here are shape
 * invariants: the cluster keeps up with the offered load (including
 * ROADMAP's 40k-TPS target row), remote transactions pay the two
 * network hops they hold their home locks across, and the engine's
 * epoch/mailbox counters match the workload exactly (two cross-shard
 * posts per remote transaction).
 *
 * All emitted metrics are simulated and deterministic: bit-identical
 * at any --shards (workers inside the one simulation) and any --jobs
 * (rows across the pool). scripts/run_all_benches.sh diffs them
 * against bench/baselines/, and CI reruns the matrix.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "db/cluster.h"
#include "db/shared_kernel.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using sim::TextTable;

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "table_scaleout");

    struct Row
    {
        unsigned nodes;
        double tps;
    };
    // nodes x 8 CPUs; offered load scales with the cluster so every
    // row runs at the same per-CPU utilisation.
    std::vector<Row> rows = {
        {8, 10000.0},
        {16, 20000.0},
        {32, 40000.0},
    };

    vppbench::Sweep sweep("table_scaleout", opt);
    for (const Row &row : rows) {
        db::ClusterParams p;
        p.nodes = row.nodes;
        p.tps = row.tps;
        p.workers = opt.shards;
        char label[64];
        std::snprintf(label, sizeof(label), "%ux%d (%d CPUs, %gk TPS)",
                      p.nodes, p.cpusPerNode,
                      p.cpusPerNode * static_cast<int>(p.nodes),
                      p.tps / 1000.0);
        sweep.add(label, [p] {
            db::ClusterResult r = db::runClusterStudy(p);
            vppbench::RowResult out;
            out.set("avg_ms", r.avgMs);
            out.set("p99_ms", r.p99Ms);
            out.set("worst_ms", r.worstMs);
            out.set("remote_avg_ms", r.remoteAvgMs);
            out.set("txns", static_cast<double>(r.txns));
            out.set("remote_txns",
                    static_cast<double>(r.remoteTxns));
            out.set("tps_achieved", r.tpsAchieved);
            out.set("cpu_utilization", r.cpuUtilization);
            out.set("lock_wait_s", r.lockWaitSec);
            out.set("epochs", static_cast<double>(r.epochs));
            out.set("cross_events",
                    static_cast<double>(r.crossEvents));
            return out;
        });
    }
    // Shared-kernel counterpart: the same 64/128/256-CPU machine
    // sizes, but as ONE kernel whose CPUs are partitioned across
    // engine shards (db/shared_kernel.h) instead of a federation of
    // per-node kernels.
    std::vector<unsigned> skShards = {8, 16, 32};
    for (unsigned s : skShards) {
        db::SharedKernelParams p;
        p.shards = s;
        p.workers = opt.shards;
        char label[64];
        std::snprintf(label, sizeof(label),
                      "shared-kernel %ux%d (%d CPUs)", s,
                      p.cpusPerShard,
                      p.cpusPerShard * static_cast<int>(s));
        sweep.add(label, [p] {
            db::SharedKernelResult r = db::runSharedKernelStudy(p);
            vppbench::RowResult out;
            out.set("avg_ms", r.avgMs);
            out.set("p99_ms", r.p99Ms);
            out.set("worst_ms", r.worstMs);
            out.set("txns", static_cast<double>(r.txns));
            out.set("touches", static_cast<double>(r.touches));
            out.set("probe_hits",
                    static_cast<double>(r.probeHits));
            out.set("local_hits",
                    static_cast<double>(r.localHits));
            out.set("kernel_trips",
                    static_cast<double>(r.kernelTrips));
            out.set("cross_rpcs",
                    static_cast<double>(r.crossRpcs));
            out.set("faults", static_cast<double>(r.faults));
            out.set("fault_batches",
                    static_cast<double>(r.faultBatches));
            out.set("tps_achieved", r.tpsAchieved);
            out.set("hit_rate", r.hitRate);
            out.set("cpu_utilization", r.cpuUtilization);
            out.set("epochs", static_cast<double>(r.epochs));
            out.set("cross_events",
                    static_cast<double>(r.crossEvents));
            return out;
        });
    }
    sweep.run();

    db::ClusterParams defaults;
    std::printf("Scale-out: DebitCredit cluster response vs size\n");
    std::printf("8 CPUs/node, %.0f MIPS each, %g%% remote debits, "
                "%g ms one-way network, %g s run\n\n",
                defaults.mips, defaults.remoteFraction * 100,
                sim::toMsec(defaults.netLatency),
                defaults.durationSec);

    TextTable t({"Cluster", "TPS achieved", "Avg ms", "p99 ms",
                 "Worst ms", "Remote avg ms", "CPU util", "Epochs",
                 "Cross events"});
    vppbench::PaperCheck check("table_scaleout");

    for (std::size_t i = 0; i < rows.size(); ++i) {
        double achieved = sweep.get(i, "tps_achieved");
        double avg = sweep.get(i, "avg_ms");
        double remoteAvg = sweep.get(i, "remote_avg_ms");
        double remote = sweep.get(i, "remote_txns");
        double cross = sweep.get(i, "cross_events");
        t.addRow({sweep.label(i), TextTable::num(achieved, 0),
                  TextTable::num(avg, 2),
                  TextTable::num(sweep.get(i, "p99_ms"), 2),
                  TextTable::num(sweep.get(i, "worst_ms"), 2),
                  TextTable::num(remoteAvg, 2),
                  TextTable::num(sweep.get(i, "cpu_utilization") * 100,
                                 0) +
                      "%",
                  TextTable::num(sweep.get(i, "epochs"), 0),
                  TextTable::num(cross, 0)});

        check.near(sweep.label(i) + " keeps up with offered load",
                   achieved, rows[i].tps, 0.05);
        // A remote debit holds its home locks across two network
        // hops, so its response must carry at least that latency
        // over the local mix.
        check.that(sweep.label(i) + " remote txns pay the round trip",
                   remoteAvg >=
                       avg + 2 * sim::toMsec(defaults.netLatency));
        // Exactly two cross-shard posts per remote transaction (the
        // request and the reply): the engine's mailbox traffic is a
        // pure function of the workload.
        check.that(sweep.label(i) + " mailbox traffic matches",
                   cross == 2 * remote);
    }

    t.print();

    db::SharedKernelParams skDefaults;
    std::printf("\nShared kernel: one kernel, CPUs partitioned "
                "across shards\n");
    std::printf("%d CPUs/shard, %.0f MIPS each, %d relations x %llu "
                "pages, %g s run\n\n",
                skDefaults.cpusPerShard, skDefaults.mips,
                skDefaults.relations,
                static_cast<unsigned long long>(
                    skDefaults.pagesPerRelation),
                skDefaults.durationSec);

    TextTable sk({"Machine", "TPS achieved", "Avg ms", "p99 ms",
                  "Hit rate", "Kernel trips", "Cross RPCs", "Faults",
                  "CPU util", "Epochs"});
    for (std::size_t i = rows.size();
         i < rows.size() + skShards.size(); ++i) {
        double touches = sweep.get(i, "touches");
        double txns = sweep.get(i, "txns");
        double localHits = sweep.get(i, "local_hits");
        double trips = sweep.get(i, "kernel_trips");
        double rpcs = sweep.get(i, "cross_rpcs");
        double cross = sweep.get(i, "cross_events");
        double hitRate = sweep.get(i, "hit_rate");
        double avg = sweep.get(i, "avg_ms");
        double p99 = sweep.get(i, "p99_ms");
        sk.addRow({sweep.label(i),
                   TextTable::num(sweep.get(i, "tps_achieved"), 0),
                   TextTable::num(avg, 2), TextTable::num(p99, 2),
                   TextTable::num(hitRate * 100, 1) + "%",
                   TextTable::num(trips, 0),
                   TextTable::num(rpcs, 0),
                   TextTable::num(sweep.get(i, "faults"), 0),
                   TextTable::num(sweep.get(i, "cpu_utilization") *
                                      100,
                                  0) +
                       "%",
                   TextTable::num(sweep.get(i, "epochs"), 0)});

        // Closed-loop accounting: every transaction makes exactly
        // touchesPerTxn touches, and each touch is either a per-CPU
        // cache hit or a kernel trip — nothing is dropped.
        check.that(sweep.label(i) + " touch accounting",
                   touches ==
                       txns * skDefaults.touchesPerTxn);
        check.that(sweep.label(i) + " every touch hits or trips",
                   touches == localHits + trips);
        // Each cross-shard RPC is one request plus one reply through
        // the engine mailboxes.
        check.that(sweep.label(i) + " mailbox traffic matches",
                   cross == 2 * rpcs);
        // The per-CPU caches must carry steady state: most touches
        // land in the hot window and are served shard-locally.
        check.that(sweep.label(i) + " per-CPU caches carry the load",
                   hitRate >= 0.5);
        check.that(sweep.label(i) + " probe hits are local hits",
                   sweep.get(i, "probe_hits") == localHits);
        check.that(sweep.label(i) + " tail beyond mean", p99 >= avg);
    }
    sk.print();

    std::printf(
        "\nOne simulation per row: every node is a logical shard, so "
        "the 32-node row\nis a single 256-CPU run. --shards N drains "
        "the shards on N host threads\nwith bit-identical results "
        "(run with --shards 1 and --shards 8 and diff).\nThe "
        "shared-kernel rows run the same CPU counts against ONE "
        "kernel on shard 0;\nper-CPU epoch-validated resolve caches "
        "keep hot touches shard-local.\n");
    return check.exitCode(sweep);
}
