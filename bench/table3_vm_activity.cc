/**
 * @file
 * Reproduces paper Table 3: "VM System Activity and Costs" — manager
 * calls, MigratePages invocations and the manager overhead (calls
 * times the V++ default-manager vs Ultrix fault-cost difference) for
 * diff, uncompress and latex.
 *
 * Paper values: diff 379 calls / 372 migrates / 76 ms; uncompress
 * 197 / 195 / 40 ms; latex 250 / 238 / 51 ms.
 */

#include <cstdio>
#include <vector>

#include "apps/workload.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using sim::TextTable;

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "table3_vm_activity");

    struct Row
    {
        apps::AppSpec spec;
        int paperCalls;
        int paperMigrates;
        int paperOverheadMs;
    };
    std::vector<Row> rows = {
        {apps::diffApp(), 379, 372, 76},
        {apps::uncompressApp(), 197, 195, 40},
        {apps::latexApp(), 250, 238, 51},
    };

    // Overhead is computed exactly as in the paper: manager calls
    // times the difference between the V++ default-manager minimal
    // fault and the Ultrix fault (Table 1: 379 - 175 = 204 us).
    const double delta_us = 379.0 - 175.0;

    vppbench::Sweep sweep("table3_vm_activity", opt);
    for (const Row &row : rows) {
        apps::AppSpec spec = row.spec;
        sweep.add(spec.name, [spec] {
            hw::MachineConfig m = hw::decstation5000_200();
            apps::VppStack stack(m);
            apps::AppRunResult vpp = apps::runOnVpp(stack, spec);
            vppbench::RowResult r;
            r.set("manager_calls",
                  static_cast<double>(vpp.managerCalls));
            r.set("migrate_calls",
                  static_cast<double>(vpp.migrateCalls));
            r.set("elapsed_sec", vpp.elapsedSec);
            return r;
        });
    }
    sweep.run();

    std::printf("Table 3: VM System Activity and Costs\n\n");
    TextTable t({"Program", "Mgr Calls (paper/meas)",
                 "MigratePages (paper/meas)",
                 "Overhead ms (paper/meas)", "%% of elapsed"});
    vppbench::PaperCheck check("table3_vm_activity");

    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        auto calls =
            static_cast<std::uint64_t>(sweep.get(i, "manager_calls"));
        auto migrates =
            static_cast<std::uint64_t>(sweep.get(i, "migrate_calls"));
        double elapsed = sweep.get(i, "elapsed_sec");

        double overhead_ms = calls * delta_us / 1000.0;
        double pct = overhead_ms / (elapsed * 1000.0) * 100.0;

        t.addRow({row.spec.name,
                  std::to_string(row.paperCalls) + " / " +
                      std::to_string(calls),
                  std::to_string(row.paperMigrates) + " / " +
                      std::to_string(migrates),
                  std::to_string(row.paperOverheadMs) + " / " +
                      TextTable::num(overhead_ms, 0),
                  TextTable::num(pct, 2)});

        check.near(row.spec.name + " manager calls",
                   static_cast<double>(calls), row.paperCalls, 0.10);
        check.near(row.spec.name + " migrate calls",
                   static_cast<double>(migrates), row.paperMigrates,
                   0.10);
        check.near(row.spec.name + " overhead ms", overhead_ms,
                   row.paperOverheadMs, 0.10);
    }
    t.print();
    std::printf("\nPaper percentages: diff 1.9%%, uncompress 0.63%%, "
                "latex 0.35%%.\n");
    return check.exitCode(sweep);
}
