/**
 * @file
 * Reproduces paper Table 3: "VM System Activity and Costs" — manager
 * calls, MigratePages invocations and the manager overhead (calls
 * times the V++ default-manager vs Ultrix fault-cost difference) for
 * diff, uncompress and latex.
 *
 * Paper values: diff 379 calls / 372 migrates / 76 ms; uncompress
 * 197 / 195 / 40 ms; latex 250 / 238 / 51 ms.
 */

#include <cstdio>
#include <vector>

#include "apps/workload.h"
#include "sim/table.h"

using namespace vpp;
using sim::TextTable;

int
main()
{
    struct Row
    {
        apps::AppSpec spec;
        int paperCalls;
        int paperMigrates;
        int paperOverheadMs;
    };
    std::vector<Row> rows = {
        {apps::diffApp(), 379, 372, 76},
        {apps::uncompressApp(), 197, 195, 40},
        {apps::latexApp(), 250, 238, 51},
    };

    // Overhead is computed exactly as in the paper: manager calls
    // times the difference between the V++ default-manager minimal
    // fault and the Ultrix fault (Table 1: 379 - 175 = 204 us).
    const double delta_us = 379.0 - 175.0;

    std::printf("Table 3: VM System Activity and Costs\n\n");
    TextTable t({"Program", "Mgr Calls (paper/meas)",
                 "MigratePages (paper/meas)",
                 "Overhead ms (paper/meas)", "%% of elapsed"});

    for (const Row &row : rows) {
        hw::MachineConfig m = hw::decstation5000_200();
        apps::VppStack stack(m);
        apps::AppRunResult vpp = apps::runOnVpp(stack, row.spec);

        double overhead_ms =
            vpp.managerCalls * delta_us / 1000.0;
        double pct = overhead_ms / (vpp.elapsedSec * 1000.0) * 100.0;

        t.addRow({row.spec.name,
                  std::to_string(row.paperCalls) + " / " +
                      std::to_string(vpp.managerCalls),
                  std::to_string(row.paperMigrates) + " / " +
                      std::to_string(vpp.migrateCalls),
                  std::to_string(row.paperOverheadMs) + " / " +
                      TextTable::num(overhead_ms, 0),
                  TextTable::num(pct, 2)});
    }
    t.print();
    std::printf("\nPaper percentages: diff 1.9%%, uncompress 0.63%%, "
                "latex 0.35%%.\n");
    return 0;
}
