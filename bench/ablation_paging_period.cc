/**
 * @file
 * Ablation A9: sensitivity of Table 4's "index with paging" row to
 * the eviction cadence.
 *
 * The paper reports the index being "paged in every 500 transactions"
 * because the program's virtual memory exceeds its allocation by 1 MB.
 * That cadence is a property of the clock algorithm and the
 * competition for memory, not of the application; this ablation sweeps
 * it, showing that transparent paging is painful across the whole
 * plausible range while regeneration stays flat — i.e. the paper's
 * conclusion does not hinge on the specific 500.
 */

#include <cstdio>

#include "db/study.h"
#include "sim/table.h"

using namespace vpp;
using sim::TextTable;

int
main()
{
    std::printf("Ablation A9: Table 4 sensitivity to the index "
                "eviction cadence\n(avg / worst response in ms; "
                "paper's cadence is 500 txns)\n\n");

    TextTable t({"Eviction period (txns)", "paging avg", "paging worst",
                 "regen avg", "regen worst", "paging/regen"});
    for (int period : {250, 500, 1000, 2000}) {
        db::DbParams p;
        p.durationSec = 200;
        p.pagingPeriodTxns = period;
        db::DbResult paging =
            db::runDbStudy(db::DbConfig::IndexWithPaging, p);
        db::DbResult regen =
            db::runDbStudy(db::DbConfig::IndexRegeneration, p);
        t.addRow({std::to_string(period),
                  TextTable::num(paging.avgMs, 0),
                  TextTable::num(paging.worstMs, 0),
                  TextTable::num(regen.avgMs, 0),
                  TextTable::num(regen.worstMs, 0),
                  TextTable::num(paging.avgMs / regen.avgMs, 1) + "x"});
    }
    t.print();

    std::printf("\nSeed sensitivity at the paper's cadence (500):\n\n");
    TextTable u({"Seed", "paging avg", "paging worst", "regen avg",
                 "in-memory avg"});
    for (std::uint64_t seed : {42ull, 7ull, 1234ull}) {
        db::DbParams p;
        p.durationSec = 200;
        p.seed = seed;
        db::DbResult paging =
            db::runDbStudy(db::DbConfig::IndexWithPaging, p);
        db::DbResult regen =
            db::runDbStudy(db::DbConfig::IndexRegeneration, p);
        db::DbResult mem =
            db::runDbStudy(db::DbConfig::IndexInMemory, p);
        u.addRow({std::to_string(seed),
                  TextTable::num(paging.avgMs, 0),
                  TextTable::num(paging.worstMs, 0),
                  TextTable::num(regen.avgMs, 0),
                  TextTable::num(mem.avgMs, 0)});
    }
    u.print();
    std::printf("\nThe order-of-magnitude gap between transparent "
                "paging and application-\ncontrolled regeneration "
                "holds across cadences and seeds.\n");
    return 0;
}
