/**
 * @file
 * Ablation A9: sensitivity of Table 4's "index with paging" row to
 * the eviction cadence.
 *
 * The paper reports the index being "paged in every 500 transactions"
 * because the program's virtual memory exceeds its allocation by 1 MB.
 * That cadence is a property of the clock algorithm and the
 * competition for memory, not of the application; this ablation sweeps
 * it, showing that transparent paging is painful across the whole
 * plausible range while regeneration stays flat — i.e. the paper's
 * conclusion does not hinge on the specific 500.
 */

#include <cstdio>
#include <vector>

#include "db/study.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using sim::TextTable;

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "ablation_paging_period");

    std::vector<int> periods = {250, 500, 1000, 2000};
    std::vector<std::uint64_t> seeds = {42, 7, 1234};

    vppbench::Sweep sweep("ablation_paging_period", opt);
    for (int period : periods) {
        sweep.add("period-" + std::to_string(period), [period] {
            db::DbParams p;
            p.durationSec = 200;
            p.pagingPeriodTxns = period;
            db::DbResult paging =
                db::runDbStudy(db::DbConfig::IndexWithPaging, p);
            db::DbResult regen =
                db::runDbStudy(db::DbConfig::IndexRegeneration, p);
            vppbench::RowResult r;
            r.set("paging_avg_ms", paging.avgMs);
            r.set("paging_worst_ms", paging.worstMs);
            r.set("regen_avg_ms", regen.avgMs);
            r.set("regen_worst_ms", regen.worstMs);
            return r;
        });
    }
    for (std::uint64_t seed : seeds) {
        sweep.add("seed-" + std::to_string(seed), [seed] {
            db::DbParams p;
            p.durationSec = 200;
            p.seed = seed;
            db::DbResult paging =
                db::runDbStudy(db::DbConfig::IndexWithPaging, p);
            db::DbResult regen =
                db::runDbStudy(db::DbConfig::IndexRegeneration, p);
            db::DbResult mem =
                db::runDbStudy(db::DbConfig::IndexInMemory, p);
            vppbench::RowResult r;
            r.set("paging_avg_ms", paging.avgMs);
            r.set("paging_worst_ms", paging.worstMs);
            r.set("regen_avg_ms", regen.avgMs);
            r.set("inmemory_avg_ms", mem.avgMs);
            return r;
        });
    }
    sweep.run();

    std::printf("Ablation A9: Table 4 sensitivity to the index "
                "eviction cadence\n(avg / worst response in ms; "
                "paper's cadence is 500 txns)\n\n");

    TextTable t({"Eviction period (txns)", "paging avg", "paging worst",
                 "regen avg", "regen worst", "paging/regen"});
    for (std::size_t i = 0; i < periods.size(); ++i) {
        double pavg = sweep.get(i, "paging_avg_ms");
        double ravg = sweep.get(i, "regen_avg_ms");
        t.addRow({std::to_string(periods[i]),
                  TextTable::num(pavg, 0),
                  TextTable::num(sweep.get(i, "paging_worst_ms"), 0),
                  TextTable::num(ravg, 0),
                  TextTable::num(sweep.get(i, "regen_worst_ms"), 0),
                  TextTable::num(pavg / ravg, 1) + "x"});
    }
    t.print();

    std::printf("\nSeed sensitivity at the paper's cadence (500):\n\n");
    TextTable u({"Seed", "paging avg", "paging worst", "regen avg",
                 "in-memory avg"});
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        std::size_t row = periods.size() + i;
        u.addRow({std::to_string(seeds[i]),
                  TextTable::num(sweep.get(row, "paging_avg_ms"), 0),
                  TextTable::num(sweep.get(row, "paging_worst_ms"), 0),
                  TextTable::num(sweep.get(row, "regen_avg_ms"), 0),
                  TextTable::num(sweep.get(row, "inmemory_avg_ms"),
                                 0)});
    }
    u.print();
    std::printf("\nThe order-of-magnitude gap between transparent "
                "paging and application-\ncontrolled regeneration "
                "holds across cadences and seeds.\n");
    return vppbench::exitCode(sweep);
}
