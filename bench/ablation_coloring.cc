/**
 * @file
 * Ablation A2 (paper §1, §2.2): application-specific page coloring.
 *
 * A physically-indexed direct-mapped cache maps two frames of the
 * same color to the same cache region. A program walking a working
 * set of W consecutive virtual pages collides with itself whenever
 * two of its pages share a color — which random frame allocation
 * makes common and color-aware allocation (frames requested from the
 * SPCM by color) eliminates while W fits in the cache.
 */

#include <cstdio>
#include <vector>

#include "appmgr/coloring_mgr.h"
#include "core/kernel.h"
#include "hw/cache_model.h"
#include "sim/random.h"
#include "sim/table.h"
#include "sweep.h"

using namespace vpp;
using kernel::runTask;
using sim::TextTable;

namespace {

struct MissResult
{
    double missRatio;
    std::uint64_t misses;
};

/** Walk W pages repeatedly; count misses in a 64 KB direct cache. */
MissResult
runWalk(bool colored, std::uint32_t working_pages, std::uint64_t seed)
{
    sim::Simulation s;
    hw::MachineConfig m = hw::decstation5000_200();
    m.memoryBytes = 16 << 20;
    kernel::Kernel kern(s, m);
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);

    const std::uint32_t colors = 16; // 64 KB cache / 4 KB pages

    // The colored manager places page p on a frame of color p mod C;
    // the baseline is a generic manager whose pool holds frames of
    // random colors — what a conventional allocator hands out under
    // load.
    std::unique_ptr<mgr::GenericSegmentManager> manager;
    if (colored) {
        manager = std::make_unique<appmgr::ColoringManager>(
            kern, &spcm, 1, colors);
        manager->initNow(2048, 64);
    } else {
        manager = std::make_unique<mgr::GenericSegmentManager>(
            kern, "random-mgr", hw::ManagerMode::SameProcess, &spcm,
            1);
        manager->initNow(2048, 0);
        sim::Random shuffle(seed);
        for (int i = 0; i < 64; ++i) {
            runTask(s, manager->requestFrames(
                           1, mgr::Constraint::pageColor(
                                  static_cast<std::uint32_t>(
                                      shuffle.below(colors)),
                                  colors)));
        }
    }

    kernel::SegmentId seg = kern.createSegmentNow(
        "array", 4096, working_pages, 1, manager.get());
    kernel::Process proc("walk", 1);

    for (std::uint32_t p = 0; p < working_pages; ++p) {
        runTask(s, kern.touchSegment(proc, seg, p,
                                     kernel::AccessType::Write));
    }

    // Replay the walk against the cache model using the real
    // physical addresses the pages ended up on.
    hw::CacheModel cache(64 << 10, 16, 1, 4096);
    auto attrs = kern.getPageAttributesNow(seg, 0, working_pages);
    const int passes = 50;
    const int lines_per_page = 4096 / 16;
    for (int pass = 0; pass < passes; ++pass) {
        for (const auto &a : attrs) {
            for (int l = 0; l < lines_per_page; l += 8)
                cache.access(a.physAddr + l * 16);
        }
    }
    return {cache.missRatio(), cache.misses()};
}

} // namespace

int
main(int argc, char **argv)
{
    vppbench::Options opt =
        vppbench::parseArgs(argc, argv, "ablation_coloring");

    std::vector<std::uint32_t> sets = {8, 12, 16, 24, 32};
    vppbench::Sweep sweep("ablation_coloring", opt);
    for (std::uint32_t pages : sets) {
        sweep.add(std::to_string(pages) + " pages", [pages] {
            MissResult rnd = runWalk(false, pages, 1234 + pages);
            MissResult col = runWalk(true, pages, 1234 + pages);
            vppbench::RowResult r;
            r.set("random_miss_ratio", rnd.missRatio);
            r.set("colored_miss_ratio", col.missRatio);
            r.set("random_misses", static_cast<double>(rnd.misses));
            r.set("colored_misses", static_cast<double>(col.misses));
            return r;
        });
    }
    sweep.run();

    std::printf("Ablation A2: page coloring vs random frame "
                "allocation\n64 KB direct-mapped physically-indexed "
                "cache, 16 colors, 50-pass walk\n\n");

    TextTable t({"Working set", "random miss%", "colored miss%",
                 "improvement"});
    for (std::size_t i = 0; i < sets.size(); ++i) {
        double rnd = sweep.get(i, "random_miss_ratio");
        double col = sweep.get(i, "colored_miss_ratio");
        double improv = rnd > 0 ? (1.0 - col / rnd) * 100.0 : 0.0;
        t.addRow({sweep.label(i), TextTable::num(rnd * 100, 2),
                  TextTable::num(col * 100, 2),
                  TextTable::num(improv, 1) + "%"});
    }
    t.print();
    std::printf("\nUp to 16 pages (= the cache size) coloring removes "
                "all conflict misses;\nbeyond it, collisions are "
                "inevitable but still evenly spread.\n");
    return vppbench::exitCode(sweep);
}
