#include "apps/workload.h"

#include <vector>

namespace vpp::apps {

using kernel::AccessType;
using kernel::runTask;
namespace flag = kernel::flag;

namespace {

constexpr std::uint64_t kPage = 4096;

/**
 * Footprints chosen to reproduce the paper's Table 3 manager-call
 * counts (379 / 197 / 250) given the default manager's policies:
 * one call per heap/stack first touch, one per copy-on-write data
 * page, one per 16 KB output append, and one per segment close
 * (two inputs + heap + stack + data).
 */

AppSpec
makeSpec(std::string name, std::vector<std::uint64_t> inputs,
         std::uint64_t output, std::uint64_t heap_pages,
         std::uint64_t stack_pages, std::uint64_t cow_pages,
         double compute_minstr)
{
    AppSpec a;
    a.name = std::move(name);
    a.inputBytes = std::move(inputs);
    a.outputBytes = output;
    a.heapBytes = heap_pages * kPage;
    a.stackBytes = stack_pages * kPage;
    a.cowDataBytes = cow_pages * kPage;
    a.computeMInstr = compute_minstr;
    return a;
}

} // namespace

AppSpec
diffApp()
{
    // 335 heap + 8 stack + 16 cow + 15 appends (240 KB / 16 KB) +
    // 5 closes = 379 manager calls.
    return makeSpec("diff", {200 << 10, 200 << 10}, 240 << 10, 335, 8,
                    16, 79.0);
}

AppSpec
uncompressApp()
{
    // 48 + 4 + 15 + 125 (2 MB / 16 KB) + 5 = 197 manager calls.
    return makeSpec("uncompress", {800 << 10}, 2 << 20, 48, 4, 15,
                    117.0);
}

AppSpec
latexApp()
{
    // 210 + 8 + 21 + 6 (96 KB / 16 KB) + 5 = 250 manager calls.
    return makeSpec("latex", {100 << 10}, 96 << 10, 210, 8, 21, 272.0);
}

AppRunResult
runOnVpp(VppStack &stack, const AppSpec &app)
{
    AppRunResult r;
    r.name = app.name;

    kernel::Kernel &k = stack.kern;
    auto &ucds = stack.ucds;
    kernel::Process proc(app.name, 1);

    // --- setup (unmeasured): create and pre-cache the inputs and the
    // program image the data segment copy-on-writes against.
    std::vector<uio::FileId> inputs;
    for (std::size_t i = 0; i < app.inputBytes.size(); ++i) {
        uio::FileId f = stack.server.createFile(
            app.name + ".in" + std::to_string(i), app.inputBytes[i]);
        ucds.preloadFileNow(f);
        inputs.push_back(f);
    }
    std::uint64_t cow_pages = app.cowDataBytes / kPage;
    uio::FileId image = stack.server.createFile(
        app.name + ".image", std::max<std::uint64_t>(cow_pages, 1) *
                                 kPage);
    ucds.preloadFileNow(image);
    uio::FileId output =
        stack.server.createFile(app.name + ".out", 0);

    ucds.resetActivity();
    std::uint64_t faults0 = k.stats().faults;
    std::uint64_t reads0 = stack.io.readCalls();
    std::uint64_t writes0 = stack.io.writeCalls();
    sim::SimTime t0 = stack.sim.now();

    runTask(stack.sim, [](VppStack &st, const AppSpec &a,
                          kernel::Process &p,
                          std::vector<uio::FileId> ins,
                          uio::FileId img,
                          uio::FileId out) -> sim::Task<> {
        kernel::Kernel &kern = st.kern;
        auto &mgr = st.ucds;

        // Program start: open output, create heap/stack/data.
        co_await mgr.openFile(out);
        kernel::SegmentId heap = co_await mgr.createAnonymous(
            a.name + ".heap", a.heapBytes / kPage + 1, 1);
        kernel::SegmentId stk = co_await mgr.createAnonymous(
            a.name + ".stack", a.stackBytes / kPage + 1, 1);
        // Data segment: copy-on-write binding to the program image.
        std::uint64_t cow_pages = a.cowDataBytes / kPage;
        kernel::SegmentId data = co_await kern.createSegment(
            a.name + ".data", kPage, cow_pages + 1, 1, &mgr);
        mgr.adopt(data);
        if (cow_pages > 0) {
            co_await kern.bindRegion(
                data, 0, cow_pages, st.registry.segmentOf(img), 0,
                flag::kProtMask, true);
        }

        // Compute is spread over the run; model it as one block.
        co_await st.sim.delay(
            st.machine().instructions(a.computeMInstr * 1e6));

        // Touch the stack and write the data segment (COW faults).
        for (std::uint64_t pg = 0; pg * kPage < a.stackBytes; ++pg)
            co_await kern.touchSegment(p, stk, pg, AccessType::Write);
        for (std::uint64_t pg = 0; pg < cow_pages; ++pg)
            co_await kern.touchSegment(p, data, pg, AccessType::Write);

        // Read the inputs through the block interface (4 KB units),
        // filling the heap as the program builds its structures.
        std::vector<std::byte> buf(kPage);
        std::uint64_t heap_pg = 0;
        const std::uint64_t heap_pages = a.heapBytes / kPage;
        std::uint64_t total_in = 0;
        for (uio::FileId f : ins)
            total_in += st.server.fileSize(f);
        std::uint64_t consumed = 0;
        for (uio::FileId f : ins) {
            std::uint64_t size = st.server.fileSize(f);
            for (std::uint64_t off = 0; off < size; off += kPage) {
                co_await st.io.read(p, f, off, buf);
                consumed += std::min<std::uint64_t>(kPage, size - off);
                // Grow the heap in proportion to input consumed, as a
                // program building in-memory structures would.
                std::uint64_t want =
                    total_in ? heap_pages * consumed / total_in : 0;
                while (heap_pg < want) {
                    co_await kern.touchSegment(p, heap, heap_pg++,
                                               AccessType::Write);
                }
            }
        }
        while (heap_pg < heap_pages) {
            co_await kern.touchSegment(p, heap, heap_pg++,
                                       AccessType::Write);
        }

        // Append the output in I/O-unit chunks.
        std::vector<std::byte> chunk(kPage, std::byte{0x42});
        for (std::uint64_t off = 0; off < a.outputBytes; off += kPage)
            co_await st.io.write(p, out, off, chunk);

        // Program exit: close the inputs (clean pages, no disk) and
        // tear down the address-space segments. The output stays
        // cached; its dirty pages flush asynchronously later, as on
        // the real systems.
        for (uio::FileId f : ins)
            co_await mgr.closeFile(f);
        co_await kern.destroySegment(heap);
        co_await kern.destroySegment(stk);
        co_await kern.destroySegment(data);
    }(stack, app, proc, inputs, image, output));

    r.elapsedSec = sim::toSec(stack.sim.now() - t0);
    r.managerCalls = ucds.calls();
    r.migrateCalls = ucds.migrateInvocations();
    r.faults = k.stats().faults - faults0;
    r.readCalls = stack.io.readCalls() - reads0;
    r.writeCalls = stack.io.writeCalls() - writes0;
    return r;
}

AppRunResult
runOnBaseline(sim::Simulation &s, const hw::MachineConfig &machine,
              baseline::ConventionalVm &vm, uio::FileServer &server,
              const AppSpec &app)
{
    AppRunResult r;
    r.name = app.name;

    std::vector<uio::FileId> inputs;
    for (std::size_t i = 0; i < app.inputBytes.size(); ++i) {
        uio::FileId f = server.createFile(
            app.name + ".bin" + std::to_string(i), app.inputBytes[i]);
        vm.preloadFileNow(f);
        inputs.push_back(f);
    }
    uio::FileId output = server.createFile(app.name + ".bout", 0);

    vm.stats().reset();
    sim::SimTime t0 = s.now();

    runTask(s, [](sim::Simulation &sm, const hw::MachineConfig &m,
                  baseline::ConventionalVm &v, uio::FileServer &srv,
                  const AppSpec &a, std::vector<uio::FileId> ins,
                  uio::FileId out) -> sim::Task<> {
        baseline::ProcId p = v.createProcess(a.name);

        co_await sm.delay(m.instructions(a.computeMInstr * 1e6));

        // Anonymous memory: heap, stack, and the copy-on-write data
        // pages (which the conventional kernel also services with an
        // in-kernel fault per page).
        std::uint64_t heap_base = 1ull << 32;
        std::uint64_t stack_base = 2ull << 32;
        std::uint64_t data_base = 3ull << 32;
        for (std::uint64_t off = 0; off < a.heapBytes; off += kPage)
            co_await v.touch(p, heap_base + off);
        for (std::uint64_t off = 0; off < a.stackBytes; off += kPage)
            co_await v.touch(p, stack_base + off);
        for (std::uint64_t off = 0; off < a.cowDataBytes; off += kPage)
            co_await v.touch(p, data_base + off);

        // File I/O in the baseline's 8 KB unit.
        std::vector<std::byte> buf(v.ioUnit());
        for (uio::FileId f : ins) {
            std::uint64_t size = srv.fileSize(f);
            for (std::uint64_t off = 0; off < size;
                 off += v.ioUnit()) {
                co_await v.read(p, f, off, buf);
            }
        }
        std::vector<std::byte> chunk(v.ioUnit(), std::byte{0x42});
        for (std::uint64_t off = 0; off < a.outputBytes;
             off += v.ioUnit()) {
            std::uint64_t n = std::min<std::uint64_t>(
                v.ioUnit(), a.outputBytes - off);
            co_await v.write(p, out, off,
                             std::span(chunk.data(), n));
        }
        // Output writeback is asynchronous, as on the V++ side.
    }(s, machine, vm, server, app, inputs, output));

    r.elapsedSec = sim::toSec(s.now() - t0);
    r.faults = vm.stats().faults;
    r.readCalls = vm.stats().readCalls;
    r.writeCalls = vm.stats().writeCalls;
    return r;
}

} // namespace vpp::apps
