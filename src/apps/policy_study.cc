#include "apps/policy_study.h"

#include <memory>
#include <vector>

#include "policy/cache.h"
#include "sim/random.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/stats.h"

namespace vpp::apps {

namespace {

/** One recorded transaction: arrival instant + reference list span. */
struct TxnRecord
{
    sim::SimTime arrival;
    std::uint32_t first; ///< index into the flat trace
    std::uint32_t count;
    std::uint32_t misses = 0; ///< filled by the cache replay
};

struct TimedStudy
{
    TimedStudy(const PolicyStudyParams &p)
        : params(p), cpus(sim, p.cpus)
    {}

    sim::Task<>
    txn(sim::SimTime arrival, std::uint32_t misses)
    {
        // Demand paging first (frames come off disk without holding a
        // CPU), then the transaction's compute slice.
        if (misses)
            co_await sim.delay(static_cast<sim::Duration>(misses) *
                               params.faultDelay);
        co_await cpus.acquire();
        co_await cpus.compute(static_cast<sim::Duration>(
            params.txnKInstr * 1e3 / params.mips * 1e3));
        cpus.release();
        resp.add(sim::toMsec(sim.now() - arrival));
    }

    sim::Task<>
    arrivals(const std::vector<TxnRecord> &txns)
    {
        for (const TxnRecord &t : txns) {
            co_await sim.delay(t.arrival - sim.now());
            sim.spawn(txn(t.arrival, t.misses));
        }
    }

    const PolicyStudyParams &params;
    sim::Simulation sim;
    sim::CpuPool cpus;
    sim::Distribution resp;
};

} // namespace

PolicyStudyResult
runPolicyStudy(const PolicyStudyParams &params)
{
    // Phase 1 — record: arrival times and references come from two
    // independent seeded streams, so the trace is a pure function of
    // (workload, gen params, tps, duration) and identical for every
    // policy under study.
    RefGen gen(params.workload, params.gen);
    sim::Random arrivalRng(params.seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<policy::PageId> trace;
    std::vector<TxnRecord> txns;
    sim::SimTime end = sim::sec(params.durationSec);
    sim::SimTime t = 0;
    for (;;) {
        t += static_cast<sim::Duration>(
            arrivalRng.exponential(1e9 / params.tps));
        if (t >= end)
            break;
        TxnRecord rec;
        rec.arrival = t;
        rec.first = static_cast<std::uint32_t>(trace.size());
        gen.nextTxn(trace);
        rec.count =
            static_cast<std::uint32_t>(trace.size()) - rec.first;
        txns.push_back(rec);
    }

    // Phase 2 — replay: the whole trace through one bounded cache,
    // attributing misses to transactions. Belady is built from this
    // exact trace, so its replay is the offline optimum by
    // construction.
    policy::PolicyParams pp;
    pp.capacityHint = params.cacheFrames;
    pp.clockSecondChance = true;
    pp.trace = &trace;
    policy::PolicyCache cache(policy::make(params.kind, pp),
                              params.cacheFrames);
    for (TxnRecord &rec : txns) {
        for (std::uint32_t i = 0; i < rec.count; ++i) {
            if (!cache.access(trace[rec.first + i]))
                ++rec.misses;
        }
    }

    // Phase 3 — time it: Poisson arrivals, each transaction stalls
    // faultDelay per miss and then computes on the CPU pool.
    TimedStudy study(params);
    study.sim.spawn(study.arrivals(txns));
    study.sim.run();

    PolicyStudyResult r;
    r.txns = txns.size();
    r.refs = cache.accesses();
    r.hits = cache.hits();
    r.misses = cache.misses();
    r.evictions = cache.evictions();
    r.missPct = 100.0 * cache.missRate();
    r.avgMs = study.resp.mean();
    r.p99Ms = study.resp.percentile(0.99);
    r.worstMs = study.resp.max();
    r.cpuUtilization = study.cpus.utilization();
    r.policyStats = cache.policy().stats();
    return r;
}

} // namespace vpp::apps
