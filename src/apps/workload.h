/**
 * @file
 * Trace-shaped synthetic applications for the paper's §3.2 study.
 *
 * The measurements in Tables 2 and 3 depend on each program's I/O
 * volume, allocation behaviour and compute time — not on what the
 * program means. Each AppSpec reproduces the published footprint of
 * one workload (diff, uncompress, latex): input bytes read through the
 * cached-file interface, output bytes appended, heap/stack pages
 * first-touched, data pages copy-on-written, and the pure compute
 * that dominates elapsed time. The same spec runs on the V++ stack
 * (default segment manager, 4 KB I/O unit) and on the conventional
 * baseline (in-kernel faults with zero-fill, 8 KB I/O unit).
 */

#ifndef VPP_APPS_WORKLOAD_H
#define VPP_APPS_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "apps/stack.h"
#include "baseline/conventional_vm.h"

namespace vpp::apps {

struct AppSpec
{
    std::string name;
    std::vector<std::uint64_t> inputBytes; ///< files read in full
    std::uint64_t outputBytes = 0;         ///< appended to a new file
    std::uint64_t heapBytes = 0;           ///< first-touch heap
    std::uint64_t stackBytes = 0;          ///< first-touch stack
    std::uint64_t cowDataBytes = 0;        ///< data pages copy-on-written
    double computeMInstr = 0;              ///< pure compute, millions
};

/** diff: compare two 200 KB files generating 240 KB of differences. */
AppSpec diffApp();

/** uncompress: expand an 800 KB file into 2 MB. */
AppSpec uncompressApp();

/** latex: format a 100 KB document into a 23-page (96 KB) output. */
AppSpec latexApp();

struct AppRunResult
{
    std::string name;
    double elapsedSec = 0;
    std::uint64_t managerCalls = 0;  ///< V++ only (Table 3 col 1)
    std::uint64_t migrateCalls = 0;  ///< V++ only (Table 3 col 2)
    std::uint64_t faults = 0;
    std::uint64_t readCalls = 0;
    std::uint64_t writeCalls = 0;
};

/**
 * Run @p app on the V++ stack with its inputs pre-cached (the paper's
 * worst case for V++: no I/O latency hides the manager cost).
 */
AppRunResult runOnVpp(VppStack &stack, const AppSpec &app);

/** Run @p app on the conventional (ULTRIX-like) system. */
AppRunResult runOnBaseline(sim::Simulation &s,
                           const hw::MachineConfig &machine,
                           baseline::ConventionalVm &vm,
                           uio::FileServer &server, const AppSpec &app);

} // namespace vpp::apps

#endif // VPP_APPS_WORKLOAD_H
