/**
 * @file
 * Deterministic page-reference generators for the policy ablation
 * (ROADMAP item 3: "add scan-heavy and zipfian workloads where clock
 * collapses"). Each generator produces one transaction's page
 * references at a time, in access order, from a seeded sim::Random
 * stream — so a recorded trace is reproducible bit-for-bit on every
 * host, which is what lets bench/ablation_policy commit baselines and
 * lets the Belady replay double as a live policy.
 *
 * Workloads:
 *  - DebitCredit: TPC-A shape — one branch page (tiny hot set), one
 *    teller page, one uniformly random account page (large, nearly
 *    uncacheable), one cycling history append page.
 *  - Scan: a hot-set OLTP stream polluted by periodic sequential
 *    table scans — the classic case where a one-bit clock collapses
 *    (every scanned page looks recently referenced) while SLRU/2Q
 *    hold the hot set.
 *  - Zipf: skewed random access, zipf(s = 1) over a large relation
 *    via an inverse-CDF table of exact 1/k weights (basic IEEE ops
 *    only, so the table is identical on every platform).
 */

#ifndef VPP_APPS_REFGEN_H
#define VPP_APPS_REFGEN_H

#include <cstdint>
#include <vector>

#include "policy/policy.h"
#include "sim/random.h"

namespace vpp::apps {

enum class RefWorkload
{
    DebitCredit,
    Scan,
    Zipf,
};

inline constexpr RefWorkload kAllRefWorkloads[] = {
    RefWorkload::DebitCredit, RefWorkload::Scan, RefWorkload::Zipf};

const char *refWorkloadName(RefWorkload w);

struct RefGenParams
{
    std::uint64_t seed = 42;

    // DebitCredit relation sizes, in pages.
    std::uint64_t branchPages = 16;
    std::uint64_t tellerPages = 64;
    std::uint64_t accountPages = 4096;
    std::uint64_t historyPages = 256;

    // Scan: hotRefsPerTxn hot-set references per OLTP txn; a scan txn
    // reads the next scanChunk pages of a scanPages-page relation
    // (cyclic cursor, persists across txns).
    std::uint64_t hotPages = 64;
    std::uint64_t hotRefsPerTxn = 4;
    std::uint64_t scanChunk = 32;
    std::uint64_t scanPages = 4096;
    double scanShare = 0.25; ///< fraction of txns that are scans

    // Zipf.
    std::uint64_t zipfPages = 4096;
    std::uint64_t zipfRefsPerTxn = 6;
};

class RefGen
{
  public:
    RefGen(RefWorkload w, const RefGenParams &p);

    /** Append one transaction's references to @p out. */
    void nextTxn(std::vector<policy::PageId> &out);

    /** Distinct pages the workload can ever touch. */
    std::uint64_t footprintPages() const;

  private:
    RefWorkload w_;
    RefGenParams p_;
    sim::Random rng_;
    std::uint64_t historyCursor_ = 0;
    std::uint64_t scanCursor_ = 0;
    std::vector<double> zipfCdf_; ///< cumulative 1/k weights

    std::uint64_t zipfPick();
};

} // namespace vpp::apps

#endif // VPP_APPS_REFGEN_H
