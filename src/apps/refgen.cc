#include "apps/refgen.h"

#include <algorithm>

namespace vpp::apps {

using policy::makePageId;

namespace {

// Pseudo-segment ids keep the relations apart inside one PageId
// space; canonical PageId order stays (relation, page).
constexpr std::uint32_t kBranchSeg = 1;
constexpr std::uint32_t kTellerSeg = 2;
constexpr std::uint32_t kAccountSeg = 3;
constexpr std::uint32_t kHistorySeg = 4;
constexpr std::uint32_t kHotSeg = 1;
constexpr std::uint32_t kScanSeg = 2;
constexpr std::uint32_t kZipfSeg = 1;

} // namespace

const char *
refWorkloadName(RefWorkload w)
{
    switch (w) {
    case RefWorkload::DebitCredit:
        return "debitcredit";
    case RefWorkload::Scan:
        return "scan";
    case RefWorkload::Zipf:
        return "zipf";
    }
    return "?";
}

RefGen::RefGen(RefWorkload w, const RefGenParams &p)
    : w_(w), p_(p), rng_(p.seed)
{
    if (w_ == RefWorkload::Zipf) {
        // Exact harmonic weights 1/k: additions and divisions only,
        // so the CDF is bit-identical on every IEEE host.
        zipfCdf_.reserve(p_.zipfPages);
        double sum = 0.0;
        for (std::uint64_t k = 1; k <= p_.zipfPages; ++k) {
            sum += 1.0 / static_cast<double>(k);
            zipfCdf_.push_back(sum);
        }
    }
}

std::uint64_t
RefGen::zipfPick()
{
    double u = rng_.uniform() * zipfCdf_.back();
    auto it = std::upper_bound(zipfCdf_.begin(), zipfCdf_.end(), u);
    return static_cast<std::uint64_t>(it - zipfCdf_.begin());
}

std::uint64_t
RefGen::footprintPages() const
{
    switch (w_) {
    case RefWorkload::DebitCredit:
        return p_.branchPages + p_.tellerPages + p_.accountPages +
               p_.historyPages;
    case RefWorkload::Scan:
        return p_.hotPages + p_.scanPages;
    case RefWorkload::Zipf:
        return p_.zipfPages;
    }
    return 0;
}

void
RefGen::nextTxn(std::vector<policy::PageId> &out)
{
    switch (w_) {
    case RefWorkload::DebitCredit:
        out.push_back(
            makePageId(kBranchSeg, rng_.below(p_.branchPages)));
        out.push_back(
            makePageId(kTellerSeg, rng_.below(p_.tellerPages)));
        out.push_back(
            makePageId(kAccountSeg, rng_.below(p_.accountPages)));
        out.push_back(makePageId(
            kHistorySeg, historyCursor_++ % p_.historyPages));
        return;
    case RefWorkload::Scan:
        if (rng_.chance(p_.scanShare)) {
            for (std::uint64_t i = 0; i < p_.scanChunk; ++i) {
                out.push_back(makePageId(
                    kScanSeg, (scanCursor_ + i) % p_.scanPages));
            }
            scanCursor_ = (scanCursor_ + p_.scanChunk) % p_.scanPages;
        } else {
            for (std::uint64_t i = 0; i < p_.hotRefsPerTxn; ++i) {
                out.push_back(
                    makePageId(kHotSeg, rng_.below(p_.hotPages)));
            }
        }
        return;
    case RefWorkload::Zipf:
        for (std::uint64_t i = 0; i < p_.zipfRefsPerTxn; ++i)
            out.push_back(makePageId(kZipfSeg, zipfPick()));
        return;
    }
}

} // namespace vpp::apps
