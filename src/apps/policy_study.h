/**
 * @file
 * Policy × workload study behind bench/ablation_policy: record a
 * deterministic reference string (src/apps/refgen.h), replay it
 * through a capacity-bounded PolicyCache for the chosen replacement
 * policy, then run a timed transaction simulation where each miss
 * costs a page-in stall — yielding both the miss rate and the
 * transaction response-time distribution per policy.
 *
 * References are applied at transaction admission, in arrival order,
 * so the replayed access sequence IS the recorded trace for every
 * policy. That makes the comparison exact: all five policies (Belady
 * included, replaying the same trace it was built from) see the
 * identical reference string, and "Belady miss rate <= every online
 * policy" is a theorem the bench can assert, not a statistical
 * tendency.
 */

#ifndef VPP_APPS_POLICY_STUDY_H
#define VPP_APPS_POLICY_STUDY_H

#include <cstdint>

#include "apps/refgen.h"
#include "policy/kind.h"
#include "policy/policy.h"
#include "sim/time.h"

namespace vpp::apps {

struct PolicyStudyParams
{
    RefWorkload workload = RefWorkload::DebitCredit;
    policy::Kind kind = policy::Kind::Clock;
    RefGenParams gen;

    std::uint64_t cacheFrames = 512; ///< resident capacity
    int cpus = 4;
    double mips = 30;
    double tps = 100;          ///< Poisson arrival rate
    double txnKInstr = 20;     ///< CPU work per transaction
    sim::Duration faultDelay = sim::usec(500); ///< per page-in stall
    double durationSec = 30;
    std::uint64_t seed = 42;
};

struct PolicyStudyResult
{
    std::uint64_t txns = 0;
    std::uint64_t refs = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    double missPct = 0;
    double avgMs = 0;
    double p99Ms = 0;
    double worstMs = 0;
    double cpuUtilization = 0;
    policy::PolicyStats policyStats;
};

PolicyStudyResult runPolicyStudy(const PolicyStudyParams &params);

} // namespace vpp::apps

#endif // VPP_APPS_POLICY_STUDY_H
