/**
 * @file
 * Convenience bundle of a complete V++ machine: simulator, kernel,
 * disk, file server, SPCM and default segment manager. Benchmarks,
 * examples and integration tests build on this instead of wiring the
 * ten objects by hand.
 */

#ifndef VPP_APPS_STACK_H
#define VPP_APPS_STACK_H

#include <optional>

#include "core/kernel.h"
#include "hw/config.h"
#include "hw/disk.h"
#include "managers/default_mgr.h"
#include "managers/market.h"
#include "managers/spcm.h"
#include "sim/simulation.h"
#include "uio/block_io.h"
#include "uio/file_server.h"

namespace vpp::apps {

struct StackOptions
{
    std::optional<mgr::MarketParams> market;
    mgr::SpcmParams spcmParams; ///< sharding / batched-round knobs
    std::uint64_t ucdsPoolCapacity = 16384; ///< free-segment slots
    std::uint64_t ucdsInitialFrames = 2048;
    sim::Duration serverOverhead = sim::usec(200);
    mgr::DefaultManagerParams ucdsParams;
};

class VppStack
{
  public:
    explicit VppStack(const hw::MachineConfig &machine,
                      StackOptions opts = {})
        : machine_(machine), kern(sim, machine),
          disk(sim, machine.diskLatency, machine.diskBandwidthMBps),
          server(sim, disk, opts.serverOverhead),
          spcm(kern, opts.market, opts.spcmParams),
          ucds(kern, &spcm, server, registry, opts.ucdsParams),
          io(kern, registry)
    {
        ucds.initNow(opts.ucdsPoolCapacity, opts.ucdsInitialFrames);
    }

    const hw::MachineConfig &machine() const { return machine_; }

    sim::Simulation sim;

  private:
    hw::MachineConfig machine_;

  public:
    kernel::Kernel kern;
    hw::Disk disk;
    uio::FileServer server;
    uio::FileRegistry registry;
    mgr::SystemPageCacheManager spcm;
    mgr::DefaultSegmentManager ucds;
    uio::BlockIo io;
};

} // namespace vpp::apps

#endif // VPP_APPS_STACK_H
