/**
 * @file
 * Application swapping under application control (paper §2.2).
 *
 * "The application segment manager swaps the application segments
 * except for its code and data segments. It then returns ownership of
 * these latter segments to the default segment manager, and indicates
 * it is ready to be swapped. ... On resumption of the application,
 * the manager gains control and repeats the initialization sequence."
 *
 * SwappableAppManager implements both halves:
 *  - the residency-assumption protocol: touch the manager's own
 *    segments to force them in, assume management, re-verify, retry
 *    on any fault, then pin;
 *  - swapOut()/swapIn(): write dirty pages to a swap file, surrender
 *    the frames to the SPCM, hand the self segments back to the
 *    default manager; on resumption re-run the residency protocol and
 *    reload lazily (faults) or eagerly.
 */

#ifndef VPP_APPMGR_SWAP_MGR_H
#define VPP_APPMGR_SWAP_MGR_H

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "managers/default_mgr.h"
#include "managers/generic.h"
#include "uio/file_server.h"

namespace vpp::appmgr {

class SwappableAppManager : public mgr::GenericSegmentManager
{
  public:
    SwappableAppManager(kernel::Kernel &k,
                        mgr::SystemPageCacheManager *spcm,
                        kernel::UserId uid, uio::FileServer &server,
                        uio::FileId swap_file,
                        mgr::DefaultSegmentManager *default_mgr);

    /** Create an application data segment under this manager. */
    sim::Task<kernel::SegmentId> createAppSegment(std::string name,
                                                  std::uint64_t pages);

    /**
     * The §2.2 initialization sequence: force the manager's own
     * code/data segment (currently under the default manager) into
     * memory, assume its management, verify it stayed resident — and
     * retry from the top if any page faulted after the takeover —
     * then pin it. Returns the number of attempts taken.
     */
    sim::Task<int> assumeSelfManagement(kernel::Process &p,
                                        kernel::SegmentId self_seg,
                                        std::uint64_t pages);

    /**
     * Swap the application out: write every dirty page of every app
     * segment to the swap file, surrender all frames, and return the
     * self segments to the default manager.
     */
    sim::Task<> swapOut(kernel::Process &p);

    /**
     * Resume: re-run the residency protocol for the self segments;
     * app pages reload on demand from swap (or all at once if
     * @p eager).
     */
    sim::Task<> swapIn(kernel::Process &p, bool eager = false);

    bool swappedOut() const { return swappedOut_; }
    std::uint64_t pagesSwapped() const { return pagesSwapped_; }
    std::uint64_t pagesRestored() const { return pagesRestored_; }

  protected:
    sim::Task<> fillPage(kernel::Kernel &k, const kernel::Fault &f,
                         kernel::PageIndex dst_page,
                         kernel::PageIndex free_slot) override;

    sim::Task<> writeBack(kernel::Kernel &k, kernel::SegmentId seg,
                          kernel::PageIndex page) override;

  private:
    std::uint64_t swapSlotFor(kernel::SegmentId seg,
                              kernel::PageIndex page);

    uio::FileServer *server_;
    uio::FileId swapFile_;
    mgr::DefaultSegmentManager *defaultMgr_;
    std::vector<kernel::SegmentId> appSegments_;
    std::vector<std::pair<kernel::SegmentId, std::uint64_t>> self_;
    /// pages whose current contents live in the swap file
    std::map<std::pair<kernel::SegmentId, kernel::PageIndex>,
             std::uint64_t>
        swapped_;
    std::map<std::pair<kernel::SegmentId, kernel::PageIndex>,
             std::uint64_t>
        swapSlots_;
    std::uint64_t nextSwapSlot_ = 0;
    bool swappedOut_ = false;
    std::uint64_t pagesSwapped_ = 0;
    std::uint64_t pagesRestored_ = 0;
};

} // namespace vpp::appmgr

#endif // VPP_APPMGR_SWAP_MGR_H
