#include "appmgr/swap_mgr.h"

#include <vector>

#include "uio/paging.h"

namespace vpp::appmgr {

using kernel::AccessType;
using kernel::Fault;
using kernel::Kernel;
using kernel::PageIndex;
using kernel::SegmentId;
namespace flag = kernel::flag;

SwappableAppManager::SwappableAppManager(
    Kernel &k, mgr::SystemPageCacheManager *spcm, kernel::UserId uid,
    uio::FileServer &server, uio::FileId swap_file,
    mgr::DefaultSegmentManager *default_mgr)
    : GenericSegmentManager(k, "app-swap-mgr",
                            hw::ManagerMode::SameProcess, spcm, uid),
      server_(&server), swapFile_(swap_file), defaultMgr_(default_mgr)
{}

sim::Task<SegmentId>
SwappableAppManager::createAppSegment(std::string name,
                                      std::uint64_t pages)
{
    SegmentId seg = co_await kern().createSegment(
        std::move(name), kern().config().pageSize, pages, uid(), this);
    appSegments_.push_back(seg);
    co_return seg;
}

std::uint64_t
SwappableAppManager::swapSlotFor(SegmentId seg, PageIndex page)
{
    auto key = std::make_pair(seg, page);
    auto it = swapSlots_.find(key);
    if (it != swapSlots_.end())
        return it->second;
    std::uint64_t slot = nextSwapSlot_++;
    swapSlots_[key] = slot;
    return slot;
}

sim::Task<int>
SwappableAppManager::assumeSelfManagement(kernel::Process &p,
                                          SegmentId self_seg,
                                          std::uint64_t pages)
{
    // The paper's retry loop: force resident under the old manager,
    // take over, verify nothing was reclaimed in the window; a fault
    // after assuming ownership means "retry from the top".
    int attempts = 0;
    for (;;) {
        ++attempts;
        // 1. Touch every page to force it into memory (faults are
        //    handled by whoever manages the segment right now).
        for (PageIndex pg = 0; pg < pages; ++pg) {
            co_await kern().touchSegment(p, self_seg, pg,
                                         AccessType::Read);
        }
        // 2. Assume management.
        co_await kern().setSegmentManager(self_seg, this);
        // 3. Re-access, verifying residency survived the handover.
        bool all_resident = true;
        for (PageIndex pg = 0; pg < pages; ++pg) {
            if (!kern().segment(self_seg).findPage(pg)) {
                all_resident = false;
                break;
            }
        }
        if (all_resident)
            break;
        // Retry: hand back and start over.
        co_await kern().setSegmentManager(self_seg, defaultMgr_);
    }
    // 4. Exclude the manager's own pages from replacement.
    co_await kern().modifyPageFlags(self_seg, 0, pages, flag::kPinned,
                                    0);
    bool seen = false;
    for (auto &[s, n] : self_) {
        if (s == self_seg) {
            seen = true;
            n = pages;
        }
    }
    if (!seen)
        self_.emplace_back(self_seg, pages);
    co_return attempts;
}

sim::Task<>
SwappableAppManager::swapOut(kernel::Process &p)
{
    (void)p;
    // Swap the application segments: dirty pages to the swap file,
    // all frames back to the free pool, then to the SPCM.
    for (SegmentId seg : appSegments_) {
        std::vector<PageIndex> pages;
        pages.reserve(kern().segment(seg).pages().size());
        for (const auto &[pg, e] : kern().segment(seg).pages())
            pages.push_back(pg);
        for (PageIndex pg : pages) {
            const kernel::PageEntry *e =
                kern().segment(seg).findPage(pg);
            if (e->flags & flag::kDirty) {
                swapped_[{seg, pg}] = swapSlotFor(seg, pg);
                ++pagesSwapped_;
            }
            co_await reclaimPage(kern(), seg, pg);
        }
    }
    // Return the self segments to the default manager and unpin them;
    // their pages will be swapped with everyone else's.
    for (auto &[seg, pages] : self_) {
        co_await kern().modifyPageFlags(seg, 0, pages, 0,
                                        flag::kPinned);
        co_await kern().setSegmentManager(seg, defaultMgr_);
        defaultMgr_->adopt(seg);
    }
    co_await surrenderFrames(freePages());
    swappedOut_ = true;
}

sim::Task<>
SwappableAppManager::swapIn(kernel::Process &p, bool eager)
{
    // Re-acquire working frames, then repeat the initialization
    // sequence for the self segments.
    co_await requestFrames(requestBatch_);
    for (auto &[seg, pages] : self_)
        co_await assumeSelfManagement(p, seg, pages);
    swappedOut_ = false;
    if (eager) {
        // Snapshot: restoring a page removes it from the swapped set.
        std::vector<std::pair<SegmentId, PageIndex>> to_restore;
        to_restore.reserve(swapped_.size());
        for (const auto &[key, slot] : swapped_)
            to_restore.push_back(key);
        for (const auto &[seg, page] : to_restore) {
            co_await kern().touchSegment(p, seg, page,
                                         AccessType::Read);
        }
    }
}

sim::Task<>
SwappableAppManager::fillPage(Kernel &k, const Fault &f,
                              PageIndex dst_page, PageIndex free_slot)
{
    auto key = std::make_pair(f.segment, dst_page);
    auto it = swapped_.find(key);
    if (it == swapped_.end())
        co_return; // never swapped: fresh page
    const std::uint32_t page_size = k.segment(f.segment).pageSize();
    co_await uio::pageIn(k, *server_, swapFile_,
                         it->second * page_size, freeSegment(),
                         free_slot);
    co_await k.chargeCopy(page_size);
    swapped_.erase(it);
    ++pagesRestored_;
}

sim::Task<>
SwappableAppManager::writeBack(Kernel &k, SegmentId seg, PageIndex page)
{
    const std::uint32_t page_size = k.segment(seg).pageSize();
    co_await uio::pageOut(k, *server_, swapFile_,
                          swapSlotFor(seg, page) * page_size, seg, page);
}

} // namespace vpp::appmgr
