/**
 * @file
 * Discardable-page management (paper §4, the Subramanian comparison).
 *
 * A run-time system that knows a page's contents are garbage (a
 * collected semispace, a freed arena) marks it kDiscardable; the
 * manager then reclaims it without writing it back, and — because the
 * frame stays with the same user — the SPCM re-grants it without a
 * zero-fill. Subramanian's Mach external pager could do neither
 * without kernel changes; external page-cache management gets both
 * for free, which is precisely the paper's argument.
 *
 * The same class doubles as the conventional comparator for the
 * ablation benchmark: `conventional(true)` makes it ignore the
 * discardable hint (write everything back) and zero-fill every
 * allocation, like a kernel that cannot trust the application.
 */

#ifndef VPP_APPMGR_DISCARD_MGR_H
#define VPP_APPMGR_DISCARD_MGR_H

#include <cstdint>

#include "managers/generic.h"
#include "uio/file_server.h"
#include "uio/paging.h"

namespace vpp::appmgr {

class DiscardableManager : public mgr::GenericSegmentManager
{
  public:
    DiscardableManager(kernel::Kernel &k,
                       mgr::SystemPageCacheManager *spcm,
                       kernel::UserId uid, uio::FileServer &swap,
                       uio::FileId swap_file)
        : GenericSegmentManager(k, "gc-heap-mgr",
                                hw::ManagerMode::SameProcess, spcm,
                                uid),
          swap_(&swap), swapFile_(swap_file)
    {}

    /** Conventional mode: ignore hints, always write back and zero. */
    void conventional(bool on) { conventional_ = on; }

    bool honorsDiscardable() const override { return !conventional_; }

    /** Mark a range of heap pages as garbage (no writeback needed). */
    sim::Task<>
    markGarbage(kernel::SegmentId seg, kernel::PageIndex page,
                std::uint64_t pages)
    {
        co_await kern().modifyPageFlags(
            seg, page, pages, kernel::flag::kDiscardable, 0);
    }

  protected:
    sim::Task<>
    writeBack(kernel::Kernel &k, kernel::SegmentId seg,
              kernel::PageIndex page) override
    {
        const std::uint32_t page_size = k.segment(seg).pageSize();
        co_await uio::pageOut(
            k, *swap_, swapFile_,
            (static_cast<std::uint64_t>(seg) << 24 | page) * page_size,
            seg, page);
    }

    std::uint32_t
    pageProt(const kernel::Fault &f) override
    {
        std::uint32_t prot = GenericSegmentManager::pageProt(f);
        // A conventional kernel zero-fills every allocation for
        // security because it cannot know who used the frame last.
        if (conventional_)
            prot |= kernel::flag::kZeroFill;
        return prot;
    }

  private:
    uio::FileServer *swap_;
    uio::FileId swapFile_;
    bool conventional_ = false;
};

} // namespace vpp::appmgr

#endif // VPP_APPMGR_DISCARD_MGR_H
