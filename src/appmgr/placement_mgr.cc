#include "appmgr/placement_mgr.h"

namespace vpp::appmgr {

using kernel::Fault;
using kernel::Kernel;
using kernel::PageIndex;

sim::Task<std::vector<PageIndex>>
PlacementManager::chooseSlots(Kernel &k, const Fault &f,
                              std::uint64_t n)
{
    if (n != 1)
        co_return takeFreeRun(n);

    int node = homeNode(f.segment, f.page);
    if (node < 0)
        co_return takeFreeRun(1); // no placement preference

    for (int attempt = 0; attempt < 2; ++attempt) {
        for (PageIndex slot : freeSlotSet()) {
            const kernel::PageEntry *e =
                k.segment(freeSegment()).findPage(slot);
            hw::PhysAddr a = k.memory().physAddr(e->frame);
            if (topo_.nodeOf(a) == node) {
                takeSlot(slot);
                ++placed_;
                co_return std::vector<PageIndex>{slot};
            }
        }
        if (attempt == 0) {
            // Ask the SPCM for frames on the right node.
            co_await requestFrames(
                8, mgr::Constraint::physRange(topo_.nodeBase(node),
                                              topo_.nodeLimit(node)));
        }
    }
    // That node's memory is exhausted: place remotely.
    ++misses_;
    co_return takeFreeRun(1);
}

} // namespace vpp::appmgr
