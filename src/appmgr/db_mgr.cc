#include "appmgr/db_mgr.h"

#include <vector>

#include "uio/paging.h"

namespace vpp::appmgr {

using kernel::Fault;
using kernel::Kernel;
using kernel::PageIndex;
using kernel::SegmentId;
namespace flag = kernel::flag;

DbSegmentManager::DbSegmentManager(Kernel &k,
                                   mgr::SystemPageCacheManager *spcm,
                                   kernel::UserId uid,
                                   uio::FileServer &server,
                                   double rebuild_minstr_per_page)
    : GenericSegmentManager(k, "db-mgr", hw::ManagerMode::SameProcess,
                            spcm, uid),
      server_(&server), rebuildMInstrPerPage_(rebuild_minstr_per_page)
{}

sim::Task<SegmentId>
DbSegmentManager::createRelation(std::string name, uio::FileId backing)
{
    const std::uint32_t page_size = kern().config().pageSize;
    std::uint64_t pages =
        (server_->fileSize(backing) + page_size - 1) / page_size;
    SegmentId seg = co_await kern().createSegment(
        std::move(name), page_size, pages, uid(), this);
    relationFile_[seg] = backing;
    co_return seg;
}

sim::Task<SegmentId>
DbSegmentManager::createIndex(std::string name, std::uint64_t pages)
{
    SegmentId seg = co_await kern().createSegment(
        std::move(name), kern().config().pageSize, pages, uid(), this);
    indexInfo_[seg] = IndexInfo{pages};
    co_return seg;
}

sim::Task<>
DbSegmentManager::pinPages(SegmentId seg, PageIndex page,
                           std::uint64_t pages)
{
    co_await kern().modifyPageFlags(seg, page, pages, flag::kPinned, 0);
}

sim::Task<double>
DbSegmentManager::residency(SegmentId seg, std::uint64_t pages)
{
    auto attrs = co_await kern().getPageAttributes(seg, 0, pages);
    std::uint64_t present = 0;
    for (const auto &a : attrs)
        present += a.present ? 1 : 0;
    co_return pages ? static_cast<double>(present) / pages : 0.0;
}

sim::Task<std::uint64_t>
DbSegmentManager::discardIndex(SegmentId seg)
{
    if (!indexInfo_.count(seg))
        co_return 0;
    // Discardable pages come back with no writeback; pinned pages
    // (the root directory levels) are never discarded.
    std::vector<std::pair<PageIndex, std::uint64_t>> runs;
    for (const auto &[page, entry] : kern().segment(seg).pages()) {
        if (entry.flags & flag::kPinned)
            continue;
        if (!runs.empty() &&
            runs.back().first + runs.back().second == page) {
            ++runs.back().second;
        } else {
            runs.emplace_back(page, 1);
        }
    }
    std::uint64_t freed = 0;
    for (const auto &[first, count] : runs)
        freed += co_await reclaimRun(kern(), seg, first, count);
    ++indexDiscards_;
    co_return freed;
}

sim::Task<std::uint64_t>
DbSegmentManager::adaptToPressure()
{
    if (!spcm())
        co_return 0;
    auto info = co_await spcm()->query(spcmClient());
    const std::uint32_t page_size = kern().config().pageSize;
    std::uint64_t held =
        spcm()->account(spcmClient()).bytesHeld;
    if (info.affordableBytes >= held)
        co_return 0;

    std::uint64_t shortfall_frames =
        (held - info.affordableBytes + page_size - 1) / page_size;

    // Shed index frames first — regenerating them later is cheaper
    // than paging a relation.
    std::uint64_t freed = 0;
    for (const auto &[seg, ininfo] : indexInfo_) {
        (void)ininfo;
        if (freed >= shortfall_frames)
            break;
        if (kern().segmentExists(seg))
            freed += co_await discardIndex(seg);
    }
    // Return what the pool can spare, but keep a working reserve so
    // the buffer manager can still service faults.
    const std::uint64_t reserve = 64;
    std::uint64_t give =
        freePages() > reserve
            ? std::min(shortfall_frames, freePages() - reserve)
            : 0;
    co_await surrenderFrames(give);
    co_return freed;
}

sim::Task<>
DbSegmentManager::fillPage(Kernel &k, const Fault &f,
                           PageIndex dst_page, PageIndex free_slot)
{
    auto rel = relationFile_.find(f.segment);
    if (rel != relationFile_.end()) {
        const std::uint32_t page_size =
            k.segment(f.segment).pageSize();
        co_await uio::pageIn(
            k, *server_, rel->second,
            static_cast<std::uint64_t>(dst_page) * page_size,
            freeSegment(), free_slot);
        co_await k.chargeCopy(page_size);
        co_return;
    }
    if (indexInfo_.count(f.segment)) {
        // Derived data: regenerate by computation, not I/O.
        co_await k.simulation().delay(
            k.config().instructions(rebuildMInstrPerPage_ * 1e6));
        ++indexRebuilds_;
    }
}

sim::Task<>
DbSegmentManager::writeBack(Kernel &k, SegmentId seg, PageIndex page)
{
    auto rel = relationFile_.find(seg);
    if (rel == relationFile_.end())
        co_return; // indices are never written back
    const std::uint32_t page_size = k.segment(seg).pageSize();
    co_await uio::pageOut(k, *server_, rel->second,
                          static_cast<std::uint64_t>(page) * page_size,
                          seg, page);
}

std::uint32_t
DbSegmentManager::pageProt(const Fault &f)
{
    std::uint32_t prot = GenericSegmentManager::pageProt(f);
    // Index pages are born discardable: their contents can always be
    // recomputed.
    if (indexInfo_.count(f.segment))
        prot |= flag::kDiscardable;
    return prot;
}

} // namespace vpp::appmgr
