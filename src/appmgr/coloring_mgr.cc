#include "appmgr/coloring_mgr.h"

namespace vpp::appmgr {

using kernel::Fault;
using kernel::Kernel;
using kernel::PageIndex;

sim::Task<std::vector<PageIndex>>
ColoringManager::chooseSlots(Kernel &k, const Fault &f, std::uint64_t n)
{
    // Coloring allocates one page at a time; fall back to the default
    // policy for batched requests.
    if (n != 1)
        co_return takeFreeRun(n);

    const std::uint32_t want =
        static_cast<std::uint32_t>(f.page % numColors_);

    for (int attempt = 0; attempt < 2; ++attempt) {
        for (PageIndex slot : freeSlotSet()) {
            if (colorOfSlot(k, slot) == want) {
                takeSlot(slot);
                ++colorHits_;
                co_return std::vector<PageIndex>{slot};
            }
        }
        // No frame of the right color in the pool: ask the SPCM for a
        // batch of that color (physical placement control).
        if (attempt == 0) {
            co_await requestFrames(
                8, mgr::Constraint::pageColor(want, numColors_));
        }
    }
    // The system has run out of frames of this color; take anything.
    ++colorMisses_;
    co_return takeFreeRun(1);
}

} // namespace vpp::appmgr
