#include "appmgr/prefetch_mgr.h"

#include <vector>

#include "uio/paging.h"

namespace vpp::appmgr {

using kernel::Fault;
using kernel::Kernel;
using kernel::PageIndex;
using kernel::SegmentId;
namespace flag = kernel::flag;

PrefetchingManager::PrefetchingManager(Kernel &k,
                                       mgr::SystemPageCacheManager *spcm,
                                       kernel::UserId uid,
                                       uio::FileServer &server,
                                       std::uint64_t window)
    : GenericSegmentManager(k, "prefetch-mgr",
                            hw::ManagerMode::SameProcess, spcm, uid),
      server_(&server), window_(window),
      fetched_(std::make_unique<sim::Condition>(k.simulation()))
{}

sim::Task<bool>
PrefetchingManager::preFault(Kernel &k, const Fault &f)
{
    // If a prefetch for this page is already in flight, just wait for
    // it instead of fetching twice.
    if (!inFlight_.count({f.segment, f.page}))
        co_return false;
    ++prefetchHits_;
    while (inFlight_.count({f.segment, f.page}))
        co_await fetched_->wait();
    co_return k.segment(f.segment).findPage(f.page) != nullptr;
}

sim::Task<>
PrefetchingManager::afterFault(Kernel &k, const Fault &f)
{
    (void)k;
    if (window_ > 0 && backing_.count(f.segment))
        kern().simulation().spawn(prefetchFrom(f.segment, f.page + 1));
    co_return;
}

sim::Task<>
PrefetchingManager::fillPage(Kernel &k, const Fault &f,
                             PageIndex dst_page, PageIndex free_slot)
{
    auto it = backing_.find(f.segment);
    if (it == backing_.end())
        co_return;
    ++demandFills_;
    const std::uint32_t page_size = k.segment(f.segment).pageSize();
    co_await uio::pageIn(k, *server_, it->second,
                         static_cast<std::uint64_t>(dst_page) * page_size,
                         freeSegment(), free_slot);
    co_await k.chargeCopy(page_size);
}

sim::Task<>
PrefetchingManager::writeBack(Kernel &k, SegmentId seg, PageIndex page)
{
    auto it = backing_.find(seg);
    if (it == backing_.end())
        co_return;
    const std::uint32_t page_size = k.segment(seg).pageSize();
    co_await uio::pageOut(k, *server_, it->second,
                          static_cast<std::uint64_t>(page) * page_size,
                          seg, page);
}

sim::Task<>
PrefetchingManager::prefetchFrom(SegmentId seg, PageIndex first)
{
    Kernel &k = kern();
    uio::FileId file = backing_.at(seg);
    const std::uint32_t page_size = k.segment(seg).pageSize();
    const std::uint64_t file_pages =
        (server_->fileSize(file) + page_size - 1) / page_size;

    for (PageIndex p = first;
         p < first + window_ && p < file_pages; ++p) {
        if (k.segment(seg).findPage(p) ||
            inFlight_.count({seg, p})) {
            continue;
        }
        if (freePages() == 0) {
            if (co_await requestFrames(requestBatch_) == 0)
                co_return; // out of memory: stop prefetching
        }
        auto run = takeFreeRun(1);
        if (run.empty())
            co_return;
        inFlight_.insert({seg, p});
        co_await uio::pageIn(k, *server_, file,
                             static_cast<std::uint64_t>(p) * page_size,
                             freeSegment(), run[0]);
        // The demand fault may have resolved the page while the disk
        // was busy; give the frame back in that case.
        if (!k.segment(seg).findPage(p)) {
            co_await migrate(k, freeSegment(), seg, run[0], p, 1,
                             flag::kReadable | flag::kWritable,
                             flag::kDirty | flag::kReferenced);
            slotEmptied(run[0]);
            ++prefetched_;
        } else {
            slotFilled(run[0]);
        }
        inFlight_.erase({seg, p});
        fetched_->notifyAll();
    }
}

} // namespace vpp::appmgr
