/**
 * @file
 * Page-coloring segment manager (paper §1, §2.2).
 *
 * "An application can allocate physical pages to virtual pages to
 * minimize mapping collisions in physically addressed caches ...
 * implementing page coloring on an application-specific basis."
 *
 * The ColoringManager backs page p of a managed segment with a frame
 * whose cache color is p mod C, so consecutive virtual pages never
 * collide in a physically-indexed cache. It relies on the SPCM's
 * ability to grant frames by color (physical placement control).
 */

#ifndef VPP_APPMGR_COLORING_MGR_H
#define VPP_APPMGR_COLORING_MGR_H

#include <cstdint>

#include "managers/generic.h"

namespace vpp::appmgr {

class ColoringManager : public mgr::GenericSegmentManager
{
  public:
    ColoringManager(kernel::Kernel &k,
                    mgr::SystemPageCacheManager *spcm,
                    kernel::UserId uid, std::uint32_t num_colors)
        : GenericSegmentManager(k, "coloring-mgr",
                                hw::ManagerMode::SameProcess, spcm,
                                uid),
          numColors_(num_colors)
    {}

    std::uint32_t numColors() const { return numColors_; }

    std::uint64_t colorHits() const { return colorHits_; }
    std::uint64_t colorMisses() const { return colorMisses_; }

  protected:
    sim::Task<std::vector<kernel::PageIndex>>
    chooseSlots(kernel::Kernel &k, const kernel::Fault &f,
                std::uint64_t n) override;

  private:
    std::uint32_t
    colorOfSlot(kernel::Kernel &k, kernel::PageIndex slot) const
    {
        const kernel::PageEntry *e =
            k.segment(freeSegment()).findPage(slot);
        return e ? e->frame % numColors_ : 0;
    }

    std::uint32_t numColors_;
    std::uint64_t colorHits_ = 0;
    std::uint64_t colorMisses_ = 0;
};

} // namespace vpp::appmgr

#endif // VPP_APPMGR_COLORING_MGR_H
