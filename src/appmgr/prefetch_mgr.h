/**
 * @file
 * Application-directed read-ahead and writeback (paper §1, §2.2).
 *
 * "Scientific computations using large data sets can often predict
 * their data access patterns well in advance, which allows the disk
 * access latency to be overlapped with current computation."
 *
 * The PrefetchingManager manages file-backed segments scanned
 * sequentially: a demand fault fetches the faulting page and kicks off
 * asynchronous prefetch of the next `window` pages, so subsequent
 * faults find their pages already resident. Dirty pages of
 * intermediate data marked discardable are dropped without writeback,
 * conserving I/O bandwidth (the matrix example in §2.2).
 */

#ifndef VPP_APPMGR_PREFETCH_MGR_H
#define VPP_APPMGR_PREFETCH_MGR_H

#include <cstdint>
#include <set>
#include <unordered_map>

#include "managers/generic.h"
#include "uio/block_io.h"
#include "uio/file_server.h"

namespace vpp::appmgr {

class PrefetchingManager : public mgr::GenericSegmentManager
{
  public:
    PrefetchingManager(kernel::Kernel &k,
                       mgr::SystemPageCacheManager *spcm,
                       kernel::UserId uid, uio::FileServer &server,
                       std::uint64_t window = 8);

    /** Manage @p seg as a sequential scan of backing file @p f. */
    void
    attach(kernel::SegmentId seg, uio::FileId f)
    {
        backing_[seg] = f;
    }

    std::uint64_t window() const { return window_; }
    void setWindow(std::uint64_t w) { window_ = w; }

    std::uint64_t demandFills() const { return demandFills_; }
    std::uint64_t prefetchedPages() const { return prefetched_; }

    /** Faults that found their page already being prefetched. */
    std::uint64_t prefetchHits() const { return prefetchHits_; }

  protected:
    sim::Task<bool> preFault(kernel::Kernel &k,
                             const kernel::Fault &f) override;

    sim::Task<> afterFault(kernel::Kernel &k,
                           const kernel::Fault &f) override;

    sim::Task<> fillPage(kernel::Kernel &k, const kernel::Fault &f,
                         kernel::PageIndex dst_page,
                         kernel::PageIndex free_slot) override;

    sim::Task<> writeBack(kernel::Kernel &k, kernel::SegmentId seg,
                          kernel::PageIndex page) override;

  private:
    sim::Task<> prefetchFrom(kernel::SegmentId seg,
                             kernel::PageIndex first);

    uio::FileServer *server_;
    std::uint64_t window_;
    std::unordered_map<kernel::SegmentId, uio::FileId> backing_;
    std::set<std::pair<kernel::SegmentId, kernel::PageIndex>> inFlight_;
    std::unique_ptr<sim::Condition> fetched_;
    std::uint64_t demandFills_ = 0;
    std::uint64_t prefetched_ = 0;
    std::uint64_t prefetchHits_ = 0;
};

} // namespace vpp::appmgr

#endif // VPP_APPMGR_PREFETCH_MGR_H
