/**
 * @file
 * Physical placement control for distributed memory (paper §1, §2.2).
 *
 * A PlacementManager backs each region of a segment with frames from
 * the NUMA node of the worker that will touch it, using the SPCM's
 * physical-address-range allocation ("these techniques rely on being
 * able to request page frames from the system page cache manager with
 * specific physical addresses, or in particular physical address
 * ranges").
 */

#ifndef VPP_APPMGR_PLACEMENT_MGR_H
#define VPP_APPMGR_PLACEMENT_MGR_H

#include <cstdint>
#include <unordered_map>

#include "hw/numa.h"
#include "managers/generic.h"

namespace vpp::appmgr {

class PlacementManager : public mgr::GenericSegmentManager
{
  public:
    PlacementManager(kernel::Kernel &k,
                     mgr::SystemPageCacheManager *spcm,
                     kernel::UserId uid, hw::NumaTopology topo)
        : GenericSegmentManager(k, "placement-mgr",
                                hw::ManagerMode::SameProcess, spcm,
                                uid),
          topo_(topo)
    {}

    /**
     * Declare that pages [first, first+pages) of @p seg belong to
     * @p node (the worker there will touch them).
     */
    void
    assign(kernel::SegmentId seg, kernel::PageIndex first,
           std::uint64_t pages, int node)
    {
        for (std::uint64_t i = 0; i < pages; ++i)
            home_[{seg, first + i}] = node;
    }

    /** Preferred node for a page; -1 if unassigned. */
    int
    homeNode(kernel::SegmentId seg, kernel::PageIndex page) const
    {
        auto it = home_.find({seg, page});
        return it == home_.end() ? -1 : it->second;
    }

    const hw::NumaTopology &topology() const { return topo_; }

    std::uint64_t placedLocally() const { return placed_; }
    std::uint64_t placementMisses() const { return misses_; }

  protected:
    sim::Task<std::vector<kernel::PageIndex>>
    chooseSlots(kernel::Kernel &k, const kernel::Fault &f,
                std::uint64_t n) override;

  private:
    struct KeyHash
    {
        std::size_t
        operator()(const std::pair<kernel::SegmentId,
                                   kernel::PageIndex> &k) const
        {
            return std::hash<std::uint64_t>()(
                (static_cast<std::uint64_t>(k.first) << 40) ^
                k.second);
        }
    };

    hw::NumaTopology topo_;
    std::unordered_map<std::pair<kernel::SegmentId, kernel::PageIndex>,
                       int, KeyHash>
        home_;
    std::uint64_t placed_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace vpp::appmgr

#endif // VPP_APPMGR_PLACEMENT_MGR_H
