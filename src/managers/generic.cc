#include "managers/generic.h"

#include <algorithm>

namespace vpp::mgr {

using kernel::Fault;
using kernel::FaultType;
using kernel::Kernel;
using kernel::PageIndex;
using kernel::SegmentId;
namespace flag = kernel::flag;

namespace {

sim::Task<>
reclaimThunk(GenericSegmentManager *self, std::uint64_t frames)
{
    co_await self->surrenderFrames(frames);
}

} // namespace

GenericSegmentManager::GenericSegmentManager(Kernel &k, std::string name,
                                             hw::ManagerMode mode,
                                             SystemPageCacheManager *spcm,
                                             kernel::UserId uid)
    : SegmentManager(std::move(name), mode), kern_(&k), spcm_(spcm),
      uid_(uid)
{
    requestBatch_ = k.config().mgrRequestBatch;
    if (spcm_) {
        client_ = spcm_->registerClient(
            SegmentManager::name(), uid, 0.0,
            [this](std::uint64_t n) { return reclaimThunk(this, n); });
    }
}

sim::Task<>
GenericSegmentManager::init(std::uint64_t capacity,
                            std::uint64_t initial_frames)
{
    freeSeg_ = co_await kern_->createSegment(
        SegmentManager::name() + ".free", kern_->config().pageSize,
        capacity, uid_);
    for (PageIndex i = 0; i < capacity; ++i)
        emptySlots_.insert(i);
    if (initial_frames)
        co_await requestFrames(initial_frames);
}

void
GenericSegmentManager::initNow(std::uint64_t capacity,
                               std::uint64_t initial_frames)
{
    freeSeg_ = kern_->createSegmentNow(
        SegmentManager::name() + ".free", kern_->config().pageSize,
        capacity, uid_);
    for (PageIndex i = 0; i < capacity; ++i)
        emptySlots_.insert(i);
    if (initial_frames) {
        auto slots = takeEmptySlots(initial_frames);
        std::uint64_t granted =
            spcm_ ? spcm_->grantNow(client_, freeSeg_, slots)
                  : 0;
        for (std::uint64_t i = 0; i < granted; ++i)
            freeSlots_.insert(slots[i]);
        for (std::uint64_t i = granted; i < slots.size(); ++i)
            emptySlots_.insert(slots[i]);
    }
}

std::vector<PageIndex>
GenericSegmentManager::takeFreeRun(std::uint64_t n)
{
    return freeSlots_.takeRun(n);
}

std::vector<PageIndex>
GenericSegmentManager::takeEmptyRun(std::uint64_t n)
{
    return emptySlots_.takeRun(n);
}

std::vector<PageIndex>
GenericSegmentManager::takeEmptySlots(std::uint64_t n)
{
    return emptySlots_.takeLowest(n);
}

sim::Task<std::uint64_t>
GenericSegmentManager::requestFrames(std::uint64_t n, Constraint c)
{
    if (!spcm_)
        co_return 0;
    auto slots = takeEmptySlots(n);
    std::uint64_t granted =
        co_await spcm_->requestPages(client_, freeSeg_, slots, c);
    for (std::uint64_t i = 0; i < granted; ++i)
        freeSlots_.insert(slots[i]);
    for (std::uint64_t i = granted; i < slots.size(); ++i)
        emptySlots_.insert(slots[i]);
    co_return granted;
}

sim::Task<std::uint64_t>
GenericSegmentManager::surrenderFrames(std::uint64_t n)
{
    if (!spcm_)
        co_return 0;
    // Give back the highest slots first; low slots keep contiguity
    // for append batching.
    std::vector<PageIndex> slots = freeSlots_.takeHighest(n);
    std::uint64_t returned =
        co_await spcm_->returnPages(client_, freeSeg_, slots);
    for (PageIndex s : slots)
        emptySlots_.insert(s);
    co_return returned;
}

sim::Task<>
GenericSegmentManager::replenish(Kernel &k)
{
    (void)k;
    std::uint64_t got = co_await requestFrames(requestBatch_);
    if (got == 0 && freeSlots_.empty()) {
        throw kernel::KernelError(
            kernel::KernelErrc::LimitExceeded,
            SegmentManager::name() + ": no frames available");
    }
}

sim::Task<>
GenericSegmentManager::handleFault(Kernel &k, const Fault &f)
{
    if (f.type == FaultType::Protection) {
        co_await handleProtection(k, f);
        co_return;
    }

    co_await k.simulation().delay(k.config().cost.managerAlloc);

    if (co_await preFault(k, f))
        co_return;

    std::uint64_t n = 1;
    if (f.type == FaultType::MissingPage) {
        n = std::max<std::uint64_t>(1, allocCount(k, f));
        // Clamp to the segment limit and to the next present page.
        const kernel::Segment &seg = k.segment(f.segment);
        n = std::min(n, seg.pageLimit() - f.page);
        for (std::uint64_t i = 1; i < n; ++i) {
            if (seg.findPage(f.page + i)) {
                n = i;
                break;
            }
        }
    }

    if (freeSlots_.empty())
        co_await replenish(k);
    auto run = co_await chooseSlots(k, f, n);
    if (run.empty()) {
        throw kernel::KernelError(
            kernel::KernelErrc::LimitExceeded,
            SegmentManager::name() + ": free pool exhausted");
    }
    n = run.size();

    if (f.type == FaultType::MissingPage) {
        for (std::uint64_t i = 0; i < n; ++i)
            co_await fillPage(k, f, f.page + i, run[i]);
    }

    std::uint32_t set = pageProt(f);
    // Security (paper §3.1): a frame is zeroed only when it is being
    // given to a different user than the one whose data it last held.
    const kernel::UserId owner = k.segment(f.segment).owner();
    for (PageIndex slot : run) {
        const kernel::PageEntry *e =
            k.segment(freeSeg_).findPage(slot);
        kernel::UserId last = k.frameOwner(e->frame).lastUser;
        if (last != owner && last != kernel::kSystemUser) {
            set |= flag::kZeroFill;
            break;
        }
    }
    const std::uint32_t clear =
        (flag::kDirty | flag::kReferenced | flag::kPinned |
         flag::kDiscardable) &
        ~set;
    co_await migrate(k, freeSeg_, f.segment, run[0], f.page, n, set,
                     clear);
    for (PageIndex s : run)
        emptySlots_.insert(s);
    pagesAllocated_ += n;

    if (f.type == FaultType::MissingPage)
        co_await afterFault(k, f);
}

sim::Task<>
GenericSegmentManager::handleFaults(Kernel &k,
                                    std::span<const Fault> fs)
{
    // Top the pool up once for the whole batch: one SPCM round trip
    // replaces the per-fault replenish each member would otherwise
    // trigger on an empty pool.
    std::uint64_t need = 0;
    for (const Fault &f : fs)
        if (f.type != FaultType::Protection)
            ++need;
    if (need > freeSlots_.size()) {
        co_await requestFrames(
            std::max(requestBatch_, need - freeSlots_.size()));
    }
    for (const Fault &f : fs) {
        // A batch-mate's run allocation (allocCount > 1) may have
        // already installed this page; skip the redundant migrate.
        if (f.type == FaultType::MissingPage &&
            k.segment(f.segment).findPage(f.page))
            continue;
        co_await handleFault(k, f);
    }
}

sim::Task<>
GenericSegmentManager::reclaimPage(Kernel &k, SegmentId seg,
                                   PageIndex page)
{
    const kernel::PageEntry *e = k.segment(seg).findPage(page);
    if (!e)
        co_return;
    if ((e->flags & flag::kDirty) &&
        !(honorsDiscardable() && (e->flags & flag::kDiscardable))) {
        co_await writeBack(k, seg, page);
        ++writeBacks_;
    }
    if (emptySlots_.empty()) {
        throw kernel::KernelError(
            kernel::KernelErrc::LimitExceeded,
            SegmentManager::name() + ": free segment full");
    }
    PageIndex slot = emptySlots_.popLowest();
    co_await migrate(k, seg, freeSeg_, page, slot, 1,
                     flag::kReadable | flag::kWritable,
                     flag::kDirty | flag::kReferenced | flag::kPinned |
                         flag::kDiscardable);
    freeSlots_.insert(slot);
    ++pagesReclaimed_;
}

sim::Task<std::uint64_t>
GenericSegmentManager::reclaimRun(Kernel &k, SegmentId seg,
                                  PageIndex first, std::uint64_t pages)
{
    // Write dirty, non-discardable pages back before their frames are
    // reused.
    for (std::uint64_t i = 0; i < pages; ++i) {
        const kernel::PageEntry *e = k.segment(seg).findPage(first + i);
        if (!e)
            throw kernel::KernelError(kernel::KernelErrc::PageMissing,
                                      "reclaimRun");
        if ((e->flags & flag::kDirty) &&
            !(honorsDiscardable() && (e->flags & flag::kDiscardable))) {
            co_await writeBack(k, seg, first + i);
            ++writeBacks_;
        }
    }
    std::uint64_t done = 0;
    while (done < pages) {
        auto slots = takeEmptyRun(pages - done);
        if (slots.empty()) {
            throw kernel::KernelError(
                kernel::KernelErrc::LimitExceeded,
                SegmentManager::name() + ": free segment full");
        }
        co_await migrate(k, seg, freeSegment(), first + done, slots[0],
                         slots.size(),
                         flag::kReadable | flag::kWritable,
                         flag::kDirty | flag::kReferenced |
                             flag::kPinned | flag::kDiscardable);
        for (PageIndex s : slots)
            freeSlots_.insert(s);
        done += slots.size();
        pagesReclaimed_ += slots.size();
    }
    co_return done;
}

sim::Task<>
GenericSegmentManager::segmentClosed(Kernel &k, SegmentId s)
{
    // Gather the present pages as contiguous runs and reclaim each run
    // with as few MigratePages calls as possible.
    std::vector<std::pair<PageIndex, std::uint64_t>> runs;
    for (const auto &[page, entry] : k.segment(s).pages()) {
        if (!runs.empty() &&
            runs.back().first + runs.back().second == page) {
            ++runs.back().second;
        } else {
            runs.emplace_back(page, 1);
        }
    }
    for (const auto &[first, count] : runs)
        co_await reclaimRun(k, s, first, count);
}

} // namespace vpp::mgr
