/**
 * @file
 * Bitmap-backed ordered slot pool for manager free/empty segments.
 *
 * GenericSegmentManager used to keep its free-pool slot indices in
 * std::set<PageIndex>; every fault then paid two red-black-tree node
 * allocations (erase from the free set, insert into the empty set)
 * plus pointer-chasing to find contiguous runs. A SlotPool stores the
 * same ordered set as one bit per slot: insert/erase are single bit
 * flips, the lowest slot is a find-first-set, and contiguous-run
 * extraction scans whole 64-slot words at a time.
 *
 * Every operation visits slots in exactly the order the std::set code
 * did (ascending, or descending for takeHighest), so replacing the
 * containers changes no simulated outcome: the determinism goldens
 * and all committed sweep baselines are unaffected.
 */

#ifndef VPP_MANAGERS_SLOT_POOL_H
#define VPP_MANAGERS_SLOT_POOL_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace vpp::mgr {

class SlotPool
{
  public:
    static constexpr std::uint64_t npos = ~std::uint64_t{0};

    bool empty() const { return count_ == 0; }
    std::uint64_t size() const { return count_; }

    bool
    contains(kernel::PageIndex i) const
    {
        const std::uint64_t w = i >> 6;
        return w < bits_.size() && (bits_[w] >> (i & 63)) & 1;
    }

    void
    insert(kernel::PageIndex i)
    {
        const std::uint64_t w = i >> 6;
        if (w >= bits_.size())
            bits_.resize(w + 1, 0);
        const std::uint64_t m = std::uint64_t{1} << (i & 63);
        if (!(bits_[w] & m)) {
            bits_[w] |= m;
            ++count_;
        }
    }

    /** Remove @p i; returns whether it was present. */
    bool
    erase(kernel::PageIndex i)
    {
        const std::uint64_t w = i >> 6;
        if (w >= bits_.size())
            return false;
        const std::uint64_t m = std::uint64_t{1} << (i & 63);
        if (!(bits_[w] & m))
            return false;
        bits_[w] &= ~m;
        --count_;
        return true;
    }

    /** First slot >= @p i, or npos. */
    std::uint64_t
    findFrom(std::uint64_t i) const
    {
        std::uint64_t w = i >> 6;
        if (w >= bits_.size())
            return npos;
        std::uint64_t word = bits_[w] & (~std::uint64_t{0} << (i & 63));
        for (;;) {
            if (word)
                return (w << 6) +
                       static_cast<std::uint64_t>(
                           __builtin_ctzll(word));
            if (++w >= bits_.size())
                return npos;
            word = bits_[w];
        }
    }

    /** Highest slot present, or npos. */
    std::uint64_t
    findHighest() const
    {
        for (std::uint64_t w = bits_.size(); w-- > 0;) {
            if (bits_[w]) {
                return (w << 6) + 63 -
                       static_cast<std::uint64_t>(
                           __builtin_clzll(bits_[w]));
            }
        }
        return npos;
    }

    /** Remove and return the lowest slot (pool must be non-empty). */
    kernel::PageIndex
    popLowest()
    {
        const std::uint64_t i = findFrom(0);
        erase(i);
        return i;
    }

    /** Consecutive present slots starting at @p i, capped at @p cap. */
    std::uint64_t
    runLengthAt(std::uint64_t i, std::uint64_t cap) const
    {
        std::uint64_t len = 0;
        std::uint64_t w = i >> 6;
        std::uint64_t b = i & 63;
        while (len < cap && w < bits_.size()) {
            const std::uint64_t avail = 64 - b;
            const std::uint64_t inv = ~(bits_[w] >> b);
            const std::uint64_t run =
                inv ? std::min<std::uint64_t>(
                          static_cast<std::uint64_t>(
                              __builtin_ctzll(inv)),
                          avail)
                    : avail;
            len += run;
            if (run < avail)
                break;
            ++w;
            b = 0;
        }
        return std::min(len, cap);
    }

    /**
     * Extract a run of up to @p n consecutive slots, preferring the
     * lowest run of full length, else the lowest longest run (the
     * exact policy of the former std::set scan).
     */
    std::vector<kernel::PageIndex>
    takeRun(std::uint64_t n)
    {
        std::vector<kernel::PageIndex> run;
        if (count_ == 0 || n == 0)
            return run;
        std::uint64_t best_start = npos;
        std::uint64_t best_len = 0;
        std::uint64_t i = findFrom(0);
        while (i != npos) {
            const std::uint64_t len = runLengthAt(i, n);
            if (len > best_len) {
                best_len = len;
                best_start = i;
            }
            if (len >= n)
                break;
            i = findFrom(i + len + 1);
        }
        run.reserve(best_len);
        for (std::uint64_t k = 0; k < best_len; ++k) {
            run.push_back(best_start + k);
            erase(best_start + k);
        }
        return run;
    }

    /** Remove and return up to @p n lowest slots, ascending. */
    std::vector<kernel::PageIndex>
    takeLowest(std::uint64_t n)
    {
        std::vector<kernel::PageIndex> out;
        while (out.size() < n && count_ > 0)
            out.push_back(popLowest());
        return out;
    }

    /** Remove and return up to @p n highest slots, descending. */
    std::vector<kernel::PageIndex>
    takeHighest(std::uint64_t n)
    {
        std::vector<kernel::PageIndex> out;
        while (out.size() < n && count_ > 0) {
            const std::uint64_t i = findHighest();
            erase(i);
            out.push_back(i);
        }
        return out;
    }

    /** Ascending iteration over present slots (range-for friendly). */
    class const_iterator
    {
      public:
        const_iterator(const SlotPool *p, std::uint64_t i)
            : pool_(p), i_(i)
        {}

        kernel::PageIndex operator*() const { return i_; }

        const_iterator &
        operator++()
        {
            i_ = pool_->findFrom(i_ + 1);
            return *this;
        }

        bool
        operator!=(const const_iterator &o) const
        {
            return i_ != o.i_;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return i_ == o.i_;
        }

      private:
        const SlotPool *pool_;
        std::uint64_t i_;
    };

    const_iterator begin() const { return {this, findFrom(0)}; }
    const_iterator end() const { return {this, npos}; }

  private:
    std::vector<std::uint64_t> bits_;
    std::uint64_t count_ = 0;
};

} // namespace vpp::mgr

#endif // VPP_MANAGERS_SLOT_POOL_H
