#include "managers/default_mgr.h"

#include <algorithm>
#include <vector>

#include "uio/paging.h"

namespace vpp::mgr {

using kernel::AccessType;
using kernel::Fault;
using kernel::FaultType;
using kernel::Kernel;
using kernel::PageIndex;
using kernel::SegmentId;
namespace flag = kernel::flag;

DefaultSegmentManager::DefaultSegmentManager(Kernel &k,
                                             SystemPageCacheManager *spcm,
                                             uio::FileServer &server,
                                             uio::FileRegistry &reg,
                                             DefaultManagerParams params)
    : GenericSegmentManager(k, "ucds", hw::ManagerMode::SeparateProcess,
                            spcm, kernel::kSystemUser),
      server_(&server), reg_(&reg), params_(params)
{
    requestBatch_ = params_.requestBatch
                        ? params_.requestBatch
                        : 2 * k.config().mgrRequestBatch;
    policy::PolicyParams pp;
    pp.capacityHint = k.config().frames();
    // WSClock ages in simulated time here (setNow = sim ns); a
    // frame-count-derived window would be meaningless.
    pp.wsTau = static_cast<std::uint64_t>(sim::msec(100));
    policy_ = policy::make(k.config().replacementPolicy, pp);
}

sim::Task<SegmentId>
DefaultSegmentManager::openFile(uio::FileId f)
{
    if (reg_->isCached(f))
        co_return reg_->segmentOf(f);
    const std::uint32_t page_size = kern().config().pageSize;
    std::uint64_t size = server_->fileSize(f);
    // Leave generous room for appends: files can grow while cached.
    std::uint64_t limit = (size / page_size) + (64 << 20) / page_size;
    SegmentId seg = co_await kern().createSegment(
        server_->fileName(f), page_size, limit, uid(), this);
    reg_->bind(f, seg, size);
    managed_.insert(seg);
    co_return seg;
}

sim::Task<>
DefaultSegmentManager::closeFile(uio::FileId f)
{
    if (!reg_->isCached(f))
        co_return;
    SegmentId seg = reg_->segmentOf(f);
    // destroySegment notifies us (segmentClosed) and we reclaim the
    // frames, writing dirty pages back to the server.
    co_await kern().destroySegment(seg);
    reg_->unbind(f);
}

sim::Task<SegmentId>
DefaultSegmentManager::createAnonymous(std::string name,
                                       std::uint64_t pages,
                                       kernel::UserId owner)
{
    SegmentId seg = co_await kern().createSegment(
        std::move(name), kern().config().pageSize, pages, owner, this);
    managed_.insert(seg);
    co_return seg;
}

sim::Task<>
DefaultSegmentManager::segmentClosed(Kernel &k, SegmentId s)
{
    // Persistent policies drop the segment's pages before the frames
    // go away (the Clock policy rebuilds per pass and keeps nothing).
    if (!policy_->interleavedSweep() && k.segmentExists(s)) {
        for (const auto &[page, entry] : k.segment(s).pages())
            policy_->remove(policy::makePageId(s, page));
    }
    co_await GenericSegmentManager::segmentClosed(k, s);
    managed_.erase(s);
}

sim::Task<>
DefaultSegmentManager::fillPage(Kernel &k, const Fault &f,
                                PageIndex dst_page, PageIndex free_slot)
{
    uio::FileId file = reg_->fileOf(f.segment);
    if (file == uio::kInvalidFile)
        co_return; // anonymous segment: SPCM zero policy applies
    const std::uint32_t page_size = k.segment(f.segment).pageSize();
    std::uint64_t offset =
        static_cast<std::uint64_t>(dst_page) * page_size;
    if (offset >= server_->fileSize(file))
        co_return; // append beyond backing store: nothing to read
    co_await uio::pageIn(k, *server_, file, offset, freeSegment(),
                         free_slot);
    if (spcm())
        spcm()->noteIo(spcmClient(), page_size);
    co_await k.chargeCopy(page_size);
}

sim::Task<>
DefaultSegmentManager::afterFault(Kernel &k, const Fault &f)
{
    // Live admission stream for persistent policies (2Q's ghost
    // promotion needs to see faults as they happen). The Clock policy
    // rebuilds from reference bits each pass and must not observe
    // mid-pass events, or it would diverge from the legacy sweep.
    (void)k;
    if (!policy_->interleavedSweep())
        policy_->insert(policy::makePageId(f.segment, f.page));
    co_return;
}

sim::Task<>
DefaultSegmentManager::handleProtection(Kernel &k, const Fault &f)
{
    ++samplingFaults_;
    if (!policy_->interleavedSweep())
        policy_->touch(policy::makePageId(f.segment, f.page));
    // Re-enable a batch of contiguous pages to amortise sampling
    // faults (paper §2.3).
    std::uint64_t n = params_.protBatchPages;
    const kernel::Segment &seg = k.segment(f.segment);
    n = std::min<std::uint64_t>(n, seg.pageLimit() - f.page);
    co_await k.modifyPageFlags(f.segment, f.page, n,
                               flag::kReadable | flag::kWritable, 0);
}

sim::Task<>
DefaultSegmentManager::writeBack(Kernel &k, SegmentId seg,
                                 PageIndex page)
{
    uio::FileId file = reg_->fileOf(seg);
    if (file == uio::kInvalidFile)
        co_return; // anonymous pages have no backing store
    const std::uint32_t page_size = k.segment(seg).pageSize();
    co_await uio::pageOut(k, *server_, file,
                          static_cast<std::uint64_t>(page) * page_size,
                          seg, page);
    if (spcm())
        spcm()->noteIo(spcmClient(), page_size);
}

std::uint64_t
DefaultSegmentManager::allocCount(Kernel &k, const Fault &f)
{
    // Appends to cached files are allocated in 16 KB units.
    if (f.access != AccessType::Write)
        return 1;
    if (reg_->fileOf(f.segment) == uio::kInvalidFile)
        return 1;
    const kernel::Segment &seg = k.segment(f.segment);
    if (auto last = seg.pages().maxPage(); last && f.page <= *last)
        return 1; // overwrite within the resident part: single page
    return params_.appendUnitPages;
}

sim::Task<std::uint64_t>
DefaultSegmentManager::clockPass(std::uint64_t target_reclaim)
{
    ++clockPasses_;
    const bool interleaved = policy_->interleavedSweep();
    policy_->beginPass(
        static_cast<std::uint64_t>(kern().simulation().now()));
    std::uint64_t reclaimed = 0;
    for (SegmentId sid : std::vector<SegmentId>(managed_.begin(),
                                                managed_.end())) {
        if (!kern().segmentExists(sid))
            continue;
        kernel::Segment &seg = kern().segment(sid);

        // Sample the segment in canonical page order: feed every
        // unpinned page to the policy (the Clock policy's per-pass
        // ring gets exactly the legacy snapshot) and collect the
        // referenced ones for the flag sweep. Reclaim mutates the
        // map, so sampling completes before any eviction.
        std::vector<PageIndex> referenced;
        referenced.reserve(seg.pages().size());
        for (const auto &[page, entry] : seg.pages()) {
            if (entry.flags & flag::kPinned)
                continue;
            policy::PageId key = policy::makePageId(sid, page);
            policy_->insert(key);
            if (entry.flags & flag::kReferenced) {
                referenced.push_back(page);
                policy_->touch(key);
            }
        }

        // Referenced pages survive but lose protection so the next
        // touch is sampled; batch contiguous runs into single
        // ModifyPageFlags calls.
        std::size_t i = 0;
        while (i < referenced.size()) {
            std::size_t j = i;
            while (j + 1 < referenced.size() &&
                   referenced[j + 1] == referenced[j] + 1) {
                ++j;
            }
            co_await kern().modifyPageFlags(
                sid, referenced[i], j - i + 1, 0,
                flag::kReferenced | flag::kReadable | flag::kWritable);
            i = j + 1;
        }

        // Segment-interleaved shape (Clock): evict from what has been
        // sampled so far — this segment's unreferenced pages, in
        // order — and early-exit once the target is met, leaving
        // later segments untouched, exactly as the hard-wired clock
        // always did.
        if (interleaved) {
            while (reclaimed < target_reclaim) {
                std::optional<policy::PageId> v = policy_->victim();
                if (!v)
                    break;
                co_await reclaimPage(kern(), policy::segmentOf(*v),
                                     policy::pageOf(*v));
                ++reclaimed;
            }
            if (reclaimed >= target_reclaim)
                break;
        }
    }

    // Global shape (SLRU/2Q/WSClock): every segment sampled and
    // rearmed first, then victims in policy order regardless of
    // segment. Stale entries (pages gone via kernel bypass) are
    // skipped without counting.
    if (!interleaved) {
        while (reclaimed < target_reclaim) {
            std::optional<policy::PageId> v = policy_->victim();
            if (!v)
                break;
            SegmentId vs = policy::segmentOf(*v);
            PageIndex vp = policy::pageOf(*v);
            if (!kern().segmentExists(vs))
                continue;
            const kernel::PageEntry *e =
                kern().segment(vs).findPage(vp);
            if (!e || (e->flags & flag::kPinned))
                continue;
            co_await reclaimPage(kern(), vs, vp);
            ++reclaimed;
        }
    }
    co_return reclaimed;
}

sim::Task<std::uint64_t>
DefaultSegmentManager::syncPass()
{
    std::uint64_t written = 0;
    for (SegmentId sid : std::vector<SegmentId>(managed_.begin(),
                                                managed_.end())) {
        if (!kern().segmentExists(sid))
            continue;
        if (reg_->fileOf(sid) == uio::kInvalidFile)
            continue; // anonymous memory has no backing store
        std::vector<PageIndex> dirty;
        dirty.reserve(kern().segment(sid).pages().size());
        for (const auto &[page, entry] : kern().segment(sid).pages()) {
            if ((entry.flags & flag::kDirty) &&
                !(entry.flags & flag::kDiscardable)) {
                dirty.push_back(page);
            }
        }
        for (PageIndex p : dirty) {
            co_await writeBack(kern(), sid, p);
            co_await kern().modifyPageFlags(sid, p, 1, 0, flag::kDirty);
            ++written;
        }
    }
    co_return written;
}

void
DefaultSegmentManager::startSyncDaemon(sim::Duration interval)
{
    syncRunning_ = true;
    kern().simulation().spawn(
        [](DefaultSegmentManager *self,
           sim::Duration ival) -> sim::Task<> {
            while (self->syncRunning_) {
                co_await self->kern().simulation().delay(ival);
                if (!self->syncRunning_)
                    break;
                co_await self->syncPass();
            }
        }(this, interval));
}

void
DefaultSegmentManager::preloadFileNow(uio::FileId f)
{
    SegmentId seg;
    if (reg_->isCached(f)) {
        seg = reg_->segmentOf(f);
    } else {
        const std::uint32_t page_size = kern().config().pageSize;
        std::uint64_t size = server_->fileSize(f);
        std::uint64_t limit =
            (size / page_size) + (64 << 20) / page_size;
        seg = kern().createSegmentNow(server_->fileName(f), page_size,
                                      limit, uid(), this);
        reg_->bind(f, seg, size);
        managed_.insert(seg);
    }
    const std::uint32_t page_size = kern().config().pageSize;
    std::uint64_t npages =
        (server_->fileSize(f) + page_size - 1) / page_size;
    for (PageIndex p = 0; p < npages; ++p) {
        if (kern().segment(seg).findPage(p))
            continue;
        if (freePages() == 0) {
            auto slots = takeEmptySlots(requestBatch_);
            std::uint64_t granted =
                spcm() ? spcm()->grantNow(spcmClient(), freeSegment(),
                                          slots)
                       : 0;
            for (std::uint64_t i = 0; i < granted; ++i)
                slotFilled(slots[i]);
            for (std::uint64_t i = granted; i < slots.size(); ++i)
                slotEmptied(slots[i]);
            if (granted == 0) {
                throw kernel::KernelError(
                    kernel::KernelErrc::LimitExceeded,
                    "preload: out of frames");
            }
        }
        auto run = takeFreeRun(1);
        uio::pageInNow(kern(), *server_, f,
                       static_cast<std::uint64_t>(p) * page_size,
                       freeSegment(), run[0]);
        kern().migratePagesNow(freeSegment(), seg, run[0], p, 1,
                               flag::kReadable | flag::kWritable,
                               flag::kDirty | flag::kReferenced);
        slotEmptied(run[0]);
    }
}

} // namespace vpp::mgr
