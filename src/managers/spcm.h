/**
 * @file
 * The System Page Cache Manager (paper §2.4).
 *
 * A process-level server that owns the global memory pool (the
 * well-known physical segment) and allocates page frames to segment
 * managers on demand. It honours requests for specific physical
 * address ranges or cache colors (physical placement control, page
 * coloring), applies the cross-user zero-fill policy, and optionally
 * runs the memory-market model: clients that exhaust their dram supply
 * are forced to return memory.
 */

#ifndef VPP_MANAGERS_SPCM_H
#define VPP_MANAGERS_SPCM_H

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "inject/inject.h"
#include "ipc/port.h"
#include "sim/sync.h"
#include "managers/market.h"

namespace vpp::mgr {

using ClientId = std::uint32_t;

/** Placement constraint on a frame request. */
struct Constraint
{
    enum class Kind
    {
        None,
        PhysRange, ///< frames with lo <= physAddr < hi
        Color,     ///< frames whose page color == color (mod numColors)
    };

    Kind kind = Kind::None;
    hw::PhysAddr lo = 0;
    hw::PhysAddr hi = 0;
    std::uint32_t color = 0;
    std::uint32_t numColors = 1;

    static Constraint
    physRange(hw::PhysAddr lo, hw::PhysAddr hi)
    {
        Constraint c;
        c.kind = Kind::PhysRange;
        c.lo = lo;
        c.hi = hi;
        return c;
    }

    static Constraint
    pageColor(std::uint32_t color, std::uint32_t num_colors)
    {
        Constraint c;
        c.kind = Kind::Color;
        c.color = color;
        c.numColors = num_colors;
        return c;
    }
};

class SystemPageCacheManager
{
  public:
    /**
     * @param market  market parameters; nullopt disables charging and
     *                makes every request affordable.
     */
    SystemPageCacheManager(kernel::Kernel &k,
                           std::optional<MarketParams> market);

    /**
     * Register a client (a segment manager). @p reclaim is invoked by
     * the market patrol to force the return of @p frames when the
     * client can no longer pay.
     */
    ClientId
    registerClient(std::string name, kernel::UserId uid,
                   double income_rate,
                   std::function<sim::Task<>(std::uint64_t frames)>
                       reclaim = {});

    /**
     * Allocate up to slots.size() frames into the given empty pages of
     * @p dst_seg (one frame per slot, filled in order). Returns the
     * number granted: limited by free frames, the constraint, and —
     * with the market on — what the client can afford. Frames last
     * used by a different user are zero-filled on grant.
     */
    sim::Task<std::uint64_t>
    requestPages(ClientId c, kernel::SegmentId dst_seg,
                 std::vector<kernel::PageIndex> slots,
                 Constraint constraint = {});

    /** Return frames from @p slots of @p src_seg to the global pool. */
    sim::Task<std::uint64_t>
    returnPages(ClientId c, kernel::SegmentId src_seg,
                std::vector<kernel::PageIndex> slots);

    /**
     * Zero-simulated-time grant for benchmark setup: same frame
     * selection, zero-fill policy and accounting as requestPages, but
     * no affordability check and no time charged.
     */
    std::uint64_t
    grantNow(ClientId c, kernel::SegmentId dst_seg,
             const std::vector<kernel::PageIndex> &slots,
             Constraint constraint = {});

    /** Record I/O traffic against a client's account. */
    void noteIo(ClientId c, std::uint64_t bytes);

    struct MemoryInfo
    {
        std::uint64_t freeFrames = 0;
        std::uint64_t totalFrames = 0;
        bool contended = false;
        double balance = 0.0;
        double incomeRate = 0.0;
        std::uint64_t affordableBytes = 0;
    };

    /** Paper: "By queries to the SPCM, it can determine the demand". */
    sim::Task<MemoryInfo> query(ClientId c);

    /**
     * Market patrol pass: settle all accounts and force clients with
     * negative balances to shed unaffordable holdings.
     */
    sim::Task<> patrol();

    /** Spawn a periodic patrol every @p interval. */
    void startPatrol(sim::Duration interval);
    void stopPatrol() { patrolRunning_ = false; }

    std::uint64_t freeFrames() const;
    bool marketEnabled() const { return market_.has_value(); }
    MemoryMarket &market() { return *market_; }
    DramAccount &account(ClientId c) { return clients_.at(c).account; }

    /** Grant a client free drams (administrative top-up). */
    void
    deposit(ClientId c, double drams)
    {
        clients_.at(c).account.balance += drams;
    }

    std::uint64_t grantsServed() const { return grants_; }
    std::uint64_t framesGranted() const { return framesGranted_; }
    std::uint64_t framesReturned() const { return framesReturned_; }

    /**
     * Attach a fault-injection engine: each requestPages may then
     * trigger a reclaim storm that forces every registered client to
     * shed frames (a burst of the patrol's forced reclamation).
     */
    void setInjector(inject::Engine *e) { inject_ = e; }
    std::uint64_t stormsTriggered() const { return storms_; }

  private:
    struct Client
    {
        DramAccount account;
        std::function<sim::Task<>(std::uint64_t)> reclaim;
    };

    bool contended() const;
    bool frameMatches(hw::FrameId f, const Constraint &c) const;
    std::vector<hw::FrameId> pickFrames(std::uint64_t n,
                                        const Constraint &c) const;

    kernel::Kernel *kern_;
    ipc::CallCost ipcCost_;
    /// The SPCM is a single server process: one request at a time.
    /// (Grant decisions span awaits; without serialisation two
    /// concurrent requests could select the same frames.)
    sim::SimMutex serial_;
    std::optional<MemoryMarket> market_;
    std::vector<Client> clients_;
    std::uint64_t grants_ = 0;
    std::uint64_t framesGranted_ = 0;
    std::uint64_t framesReturned_ = 0;
    std::uint64_t pendingDemand_ = 0; ///< unmet frames (contention signal)
    bool patrolRunning_ = false;
    inject::Engine *inject_ = nullptr;
    std::uint64_t storms_ = 0;
};

} // namespace vpp::mgr

#endif // VPP_MANAGERS_SPCM_H
