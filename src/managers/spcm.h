/**
 * @file
 * The System Page Cache Manager (paper §2.4).
 *
 * A process-level server that owns the global memory pool (the
 * well-known physical segment) and allocates page frames to segment
 * managers on demand. It honours requests for specific physical
 * address ranges or cache colors (physical placement control, page
 * coloring), applies the cross-user zero-fill policy, and optionally
 * runs the memory-market model: clients that exhaust their dram supply
 * are forced to return memory.
 *
 * At multi-tenant scale the single-server one-request-at-a-time shape
 * stops working: every grant scans the whole physical segment and every
 * bid pays its own Send/Reply crossing. SpcmParams turns on two
 * independently optional mechanisms:
 *
 *  - sharded free lists (shards > 1): the pool is partitioned into
 *    per-shard private free lists plus one shared overflow pool (the
 *    probationary/protected split), making an unconstrained pick O(1)
 *    instead of O(pool). Lists are rebuilt lazily when the kernel
 *    bypasses the SPCM (e.g. unilateral reclamation of a crashed
 *    manager's frames returns them straight to the physical segment).
 *
 *  - batched market rounds (batchedRounds): same-instant bids and
 *    reclaim offers are collected into one auction round carried over
 *    a single ipc::ServerPort::callBatch crossing. The round server
 *    processes offers before bids (frames freed this round fund this
 *    round's bids) and charges the migrate base cost once per round.
 *    Admission control parks unfunded bids on a bounded wait queue and
 *    retries them at the head of subsequent rounds until they age out,
 *    so a starved bid is eventually answered with 0 rather than
 *    deadlocking.
 *
 * Both default off; the default configuration takes the legacy code
 * paths verbatim, so committed bench baselines stay byte-identical.
 */

#ifndef VPP_MANAGERS_SPCM_H
#define VPP_MANAGERS_SPCM_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "inject/inject.h"
#include "ipc/port.h"
#include "managers/market.h"
#include "managers/slot_pool.h"
#include "policy/kind.h"
#include "sim/sync.h"

namespace vpp::mgr {

using ClientId = std::uint32_t;

/** Placement constraint on a frame request. */
struct Constraint
{
    enum class Kind
    {
        None,
        PhysRange, ///< frames with lo <= physAddr < hi
        Color,     ///< frames whose page color == color (mod numColors)
    };

    Kind kind = Kind::None;
    hw::PhysAddr lo = 0;
    hw::PhysAddr hi = 0;
    std::uint32_t color = 0;
    std::uint32_t numColors = 1;

    static Constraint
    physRange(hw::PhysAddr lo, hw::PhysAddr hi)
    {
        Constraint c;
        c.kind = Kind::PhysRange;
        c.lo = lo;
        c.hi = hi;
        return c;
    }

    static Constraint
    pageColor(std::uint32_t color, std::uint32_t num_colors)
    {
        Constraint c;
        c.kind = Kind::Color;
        c.color = color;
        c.numColors = num_colors;
        return c;
    }
};

/** Scale knobs; the defaults reproduce the legacy single-server SPCM. */
struct SpcmParams
{
    /// Free-list shards; 1 keeps the legacy whole-pool scan.
    std::uint32_t shards = 1;
    /// Fraction of frames in the shared (protected) pool; the rest is
    /// split into per-shard private lists. Only meaningful with
    /// shards > 1.
    double protectedShare = 0.25;
    /// Collect same-instant bids/offers into one auction round over a
    /// single batched IPC crossing.
    bool batchedRounds = false;
    /// Admission control: unfunded bids may park and retry in later
    /// rounds. 0 disables waiting (unfunded bids get 0 immediately).
    std::uint32_t admissionMaxWaiters = 0;
    /// A parked bid older than this is answered 0 instead of retried.
    sim::Duration admissionMaxWait = 0;
    /// Retry cadence when only parked waiters remain (no fresh bids).
    sim::Duration admissionRetry = sim::usec(500);
    /// Conventional-clock comparator: when a request cannot be fully
    /// satisfied from the free pool, charge this much per *resident*
    /// frame — the global clock hand sweeping memory for victims,
    /// held under the single-server lock. 0 (the default, and the
    /// V++ shape) skips the hunt: the market denies by price in O(1).
    sim::Duration clockScanPerFrame = 0;
    /// Which policy the conventional comparator models. Clock (the
    /// default, legacy shape) hunts: a short grant charges
    /// clockScanPerFrame per *resident* frame under the serial lock.
    /// List-based policies (SLRU/2Q/WSClock) maintain an eviction
    /// order and charge only per *missing* frame. Meaningful only
    /// with clockScanPerFrame > 0; the default is byte-identical to
    /// the pre-policy comparator.
    policy::Kind scanPolicy = policy::Kind::Clock;
};

/** Per-tenant fairness / starvation counters (stderr cost line, tests). */
struct TenantStats
{
    std::uint64_t bids = 0;         ///< requestPages calls observed
    std::uint64_t bidsUnserved = 0; ///< bids answered with 0 frames
    bool starving = false;          ///< in an unserved streak now
    sim::SimTime starvingSince = 0; ///< start of the current streak
    sim::Duration maxStarvation = 0; ///< longest unserved-bid age seen
};

class SystemPageCacheManager
{
  public:
    /**
     * @param market  market parameters; nullopt disables charging and
     *                makes every request affordable.
     * @param params  scale knobs; the default is the legacy shape.
     */
    SystemPageCacheManager(kernel::Kernel &k,
                           std::optional<MarketParams> market,
                           SpcmParams params = {});

    /**
     * Register a client (a segment manager). @p reclaim is invoked by
     * the market patrol to force the return of @p frames when the
     * client can no longer pay.
     */
    ClientId
    registerClient(std::string name, kernel::UserId uid,
                   double income_rate,
                   std::function<sim::Task<>(std::uint64_t frames)>
                       reclaim = {});

    /**
     * Allocate up to slots.size() frames into the given empty pages of
     * @p dst_seg (one frame per slot, filled in order). Returns the
     * number granted: limited by free frames, the constraint, and —
     * with the market on — what the client can afford. Frames last
     * used by a different user are zero-filled on grant.
     */
    sim::Task<std::uint64_t>
    requestPages(ClientId c, kernel::SegmentId dst_seg,
                 std::vector<kernel::PageIndex> slots,
                 Constraint constraint = {});

    /** Return frames from @p slots of @p src_seg to the global pool. */
    sim::Task<std::uint64_t>
    returnPages(ClientId c, kernel::SegmentId src_seg,
                std::vector<kernel::PageIndex> slots);

    /**
     * Zero-simulated-time grant for benchmark setup: same frame
     * selection, zero-fill policy and accounting as requestPages, but
     * no affordability check and no time charged.
     */
    std::uint64_t
    grantNow(ClientId c, kernel::SegmentId dst_seg,
             const std::vector<kernel::PageIndex> &slots,
             Constraint constraint = {});

    /** Record I/O traffic against a client's account. */
    void noteIo(ClientId c, std::uint64_t bytes);

    struct MemoryInfo
    {
        std::uint64_t freeFrames = 0;
        std::uint64_t totalFrames = 0;
        bool contended = false;
        double balance = 0.0;
        double incomeRate = 0.0;
        std::uint64_t affordableBytes = 0;
    };

    /** Paper: "By queries to the SPCM, it can determine the demand". */
    sim::Task<MemoryInfo> query(ClientId c);

    /**
     * Market patrol pass: settle all accounts and force clients with
     * negative balances to shed unaffordable holdings.
     */
    sim::Task<> patrol();

    /** Spawn a periodic patrol every @p interval. */
    void startPatrol(sim::Duration interval);
    void stopPatrol() { patrolRunning_ = false; }

    std::uint64_t freeFrames() const;
    bool marketEnabled() const { return market_.has_value(); }
    MemoryMarket &market() { return *market_; }
    DramAccount &account(ClientId c) { return clients_.at(c).account; }

    /** Grant a client free drams (administrative top-up). */
    void
    deposit(ClientId c, double drams)
    {
        clients_.at(c).account.balance += drams;
    }

    std::uint64_t grantsServed() const { return grants_; }
    std::uint64_t framesGranted() const { return framesGranted_; }
    std::uint64_t framesReturned() const { return framesReturned_; }

    /**
     * Attach a fault-injection engine: each requestPages may then
     * trigger a reclaim storm that forces registered clients to shed
     * frames (a burst of the patrol's forced reclamation). With
     * PressureFaults::stormClients > 0 each storm sweeps only that
     * many clients, round-robin, instead of the whole herd.
     */
    void setInjector(inject::Engine *e) { inject_ = e; }
    std::uint64_t stormsTriggered() const { return storms_; }

    // ------------------------------------------------------------------
    // Scale observability (sharding, rounds, fairness)
    // ------------------------------------------------------------------

    const SpcmParams &params() const { return sp_; }
    bool sharded() const { return sp_.shards > 1; }

    /**
     * Free frames homed on shard @p s (s == shards selects the shared
     * protected pool). Synchronises the lists first, so the answer
     * reflects kernel-side bypasses.
     */
    std::uint64_t shardFreeFrames(std::uint32_t s);

    /** Home shard of a frame (shards selects the shared pool). */
    std::uint32_t homeShard(hw::FrameId f) const;

    /** Shard whose private list serves client @p c first. */
    std::uint32_t
    clientShard(ClientId c) const
    {
        return sharded() ? c % sp_.shards : 0;
    }

    std::uint64_t marketRounds() const { return rounds_; }
    std::uint64_t roundBids() const { return roundBids_; }
    std::uint64_t roundOffers() const { return roundOffers_; }
    std::uint64_t bidsWaited() const { return bidsWaited_; }
    std::uint64_t bidsRejected() const { return bidsRejected_; }

    /** IPC crossings consumed by batched rounds (one per round). */
    std::uint64_t
    roundCrossings() const
    {
        return roundPort_ ? roundPort_->calls() : 0;
    }

    const TenantStats &
    tenantStats(ClientId c) const
    {
        return clients_.at(c).tenant;
    }

    /** Longest unserved-bid age observed across all tenants. */
    sim::Duration maxStarvationSeen() const { return maxStarve_; }

  private:
    struct Client
    {
        DramAccount account;
        std::function<sim::Task<>(std::uint64_t)> reclaim;
        TenantStats tenant;
    };

    /** One bid or reclaim offer travelling through a market round. */
    struct MarketMsg
    {
        bool isBid = true;
        ClientId client = 0;
        kernel::SegmentId seg = kernel::kInvalidSegment;
        std::vector<kernel::PageIndex> slots;
        Constraint constraint;
    };

    struct RoundEntry
    {
        MarketMsg msg;
        std::uint64_t want = 0;
        sim::SimTime issued = 0;
        std::shared_ptr<sim::Promise<std::uint64_t>> done;
    };

    bool contended() const;
    bool frameMatches(hw::FrameId f, const Constraint &c) const;
    std::vector<hw::FrameId> pickFrames(ClientId c, std::uint64_t n,
                                        const Constraint &con);

    /** Rebuild the shard lists iff the kernel bypassed us. */
    void syncShardLists();
    void noteFrameFreed(hw::FrameId f);

    /** Grant/return bodies shared by the legacy and round paths. */
    sim::Task<std::uint64_t>
    doGrant(ClientId c, kernel::SegmentId dst_seg,
            const std::vector<kernel::PageIndex> &slots,
            const Constraint &constraint, bool *charge_base);
    sim::Task<std::uint64_t>
    doReturn(ClientId c, kernel::SegmentId src_seg,
             const std::vector<kernel::PageIndex> &slots);

    /** Injected reclaim storm, honouring the stormClients fan-out. */
    sim::Task<> stormSweep(std::uint64_t frames);

    void noteBidOutcome(ClientId c, std::uint64_t want,
                        std::uint64_t got);

    /** Round machinery (batchedRounds). */
    sim::Task<std::uint64_t>
    roundRequest(bool is_bid, ClientId c, kernel::SegmentId seg,
                 std::vector<kernel::PageIndex> slots,
                 Constraint constraint);
    sim::Task<> drainRounds();
    sim::Task<> marketServer();

    kernel::Kernel *kern_;
    ipc::CallCost ipcCost_;
    /// The SPCM is a single server process: one request at a time.
    /// (Grant decisions span awaits; without serialisation two
    /// concurrent requests could select the same frames.)
    sim::SimMutex serial_;
    std::optional<MemoryMarket> market_;
    SpcmParams sp_;
    std::vector<Client> clients_;
    std::uint64_t grants_ = 0;
    std::uint64_t framesGranted_ = 0;
    std::uint64_t framesReturned_ = 0;
    std::uint64_t pendingDemand_ = 0; ///< unmet frames (contention signal)
    bool patrolRunning_ = false;
    inject::Engine *inject_ = nullptr;
    std::uint64_t storms_ = 0;
    std::size_t stormCursor_ = 0; ///< round-robin herd fan-out

    // Sharded free lists: [0, shards) private, [shards] shared pool.
    std::vector<SlotPool> shardFree_;
    std::uint64_t privateFrames_ = 0;  ///< frames below this are private
    std::uint64_t framesPerShard_ = 0;
    /// Frames popped from the lists by an in-flight grant but not yet
    /// migrated out of the physical segment; syncShardLists() must not
    /// mistake them for a kernel-side bypass.
    std::uint64_t unlinked_ = 0;

    // Batched market rounds.
    std::optional<ipc::ServerPort<MarketMsg, std::uint64_t>> roundPort_;
    std::vector<RoundEntry> pendingRound_; ///< arrivals for next round
    std::deque<RoundEntry> waitQueue_;     ///< parked unfunded bids
    bool roundDraining_ = false;
    /// Set while the round server executes a round: reclaim callbacks
    /// it triggers (storms, patrol) re-enter returnPages, which must
    /// take the direct path instead of parking an offer for the *next*
    /// round (that would deadlock the current one). The direct path is
    /// gated to the client being reclaimed (reclaimTarget_): any other
    /// coroutine that resumes while the round server is suspended must
    /// park for the next round, not cut the line.
    bool inRound_ = false;
    ClientId reclaimTarget_ = static_cast<ClientId>(-1);
    std::uint64_t rounds_ = 0;
    std::uint64_t roundBids_ = 0;
    std::uint64_t roundOffers_ = 0;
    std::uint64_t bidsWaited_ = 0;   ///< bids parked at least once
    std::uint64_t bidsRejected_ = 0; ///< starved bids answered 0
    sim::Duration maxStarve_ = 0;
};

} // namespace vpp::mgr

#endif // VPP_MANAGERS_SPCM_H
