/**
 * @file
 * The default segment manager (paper §2.3).
 *
 * In V++ the UIO Cache Directory Server (UCDS) is extended to act as
 * the default segment manager: it manages the virtual memory system as
 * a file page cache, handles file opens/closes, services faults for
 * conventional programs that are oblivious to external page-cache
 * management, and implements a clock algorithm whose reference
 * sampling works by revoking page protections and re-enabling them (a
 * batch of contiguous pages at a time) when the sampling fault
 * arrives. File appends are allocated in 16 KB units.
 *
 * It runs as a server outside the kernel (separate process), so every
 * fault it handles costs the full Send/Receive/Reply path — Table 1
 * row 2.
 */

#ifndef VPP_MANAGERS_DEFAULT_MGR_H
#define VPP_MANAGERS_DEFAULT_MGR_H

#include <cstdint>
#include <memory>
#include <set>

#include "managers/generic.h"
#include "policy/policy.h"
#include "uio/block_io.h"
#include "uio/file_server.h"

namespace vpp::mgr {

struct DefaultManagerParams
{
    std::uint64_t appendUnitPages = 4; ///< 16 KB with 4 KB pages
    std::uint64_t protBatchPages = 8;  ///< sampling re-enable batch
    /// Frames per SPCM request; 0 (the default) derives
    /// 2 * MachineConfig::mgrRequestBatch — the UCDS serves batchy
    /// append workloads, so it rides the shared knob at twice the
    /// generic managers' batch. A nonzero value overrides the knob.
    std::uint64_t requestBatch = 0;
};

class DefaultSegmentManager : public GenericSegmentManager
{
  public:
    DefaultSegmentManager(kernel::Kernel &k, SystemPageCacheManager *spcm,
                          uio::FileServer &server, uio::FileRegistry &reg,
                          DefaultManagerParams params = {});

    /**
     * Open (cache) a file: create the cached-file segment and register
     * it. Repeated opens return the existing segment.
     */
    sim::Task<kernel::SegmentId> openFile(uio::FileId f);

    /** Close a cached file: write dirty pages back, free its frames. */
    sim::Task<> closeFile(uio::FileId f);

    /** Create an anonymous (zero-fill) segment: heap, stack, ... */
    sim::Task<kernel::SegmentId>
    createAnonymous(std::string name, std::uint64_t pages,
                    kernel::UserId owner);

    /** Begin managing an externally created segment. */
    void adopt(kernel::SegmentId s) { managed_.insert(s); }

    sim::Task<> segmentClosed(kernel::Kernel &k,
                              kernel::SegmentId s) override;

    // ------------------------------------------------------------------
    // Replacement pass (reference sampling via protection revocation)
    // ------------------------------------------------------------------

    /**
     * One replacement pass over all managed segments, driven by the
     * configured policy (MachineConfig::replacementPolicy). Pages
     * referenced since the previous pass lose their protection
     * (arming the sampler); the policy picks victims until
     * @p target_reclaim frames have been recovered. With the default
     * Clock policy the pass is segment-interleaved and byte-identical
     * to the historical hard-wired clock (the name survives from that
     * heritage); list-based policies sample every segment first and
     * then evict in global policy order. Returns frames reclaimed.
     */
    sim::Task<std::uint64_t> clockPass(std::uint64_t target_reclaim);

    /** The replacement policy driving clockPass. */
    policy::ReplacementPolicy &replacementPolicy() { return *policy_; }
    std::string_view
    policyName() const
    {
        return policy::kindName(policy_->kind());
    }

    /**
     * Write every dirty cached-file page back to the server without
     * reclaiming it (the update-daemon function of a conventional
     * kernel, here a manager policy). Returns pages written.
     */
    sim::Task<std::uint64_t> syncPass();

    /** Spawn a periodic syncPass every @p interval. */
    void startSyncDaemon(sim::Duration interval);
    void stopSyncDaemon() { syncRunning_ = false; }

    /** Zero-time preload of a file's pages (benchmark setup). */
    void preloadFileNow(uio::FileId f);

    const DefaultManagerParams &params() const { return params_; }

    std::uint64_t samplingFaults() const { return samplingFaults_; }
    std::uint64_t clockPasses() const { return clockPasses_; }

  protected:
    sim::Task<> fillPage(kernel::Kernel &k, const kernel::Fault &f,
                         kernel::PageIndex dst_page,
                         kernel::PageIndex free_slot) override;

    sim::Task<> afterFault(kernel::Kernel &k,
                           const kernel::Fault &f) override;

    sim::Task<> handleProtection(kernel::Kernel &k,
                                 const kernel::Fault &f) override;

    sim::Task<> writeBack(kernel::Kernel &k, kernel::SegmentId seg,
                          kernel::PageIndex page) override;

    std::uint64_t allocCount(kernel::Kernel &k,
                             const kernel::Fault &f) override;

  private:
    uio::FileServer *server_;
    uio::FileRegistry *reg_;
    DefaultManagerParams params_;
    std::set<kernel::SegmentId> managed_;
    std::unique_ptr<policy::ReplacementPolicy> policy_;
    std::uint64_t samplingFaults_ = 0;
    std::uint64_t clockPasses_ = 0;
    bool syncRunning_ = false;
};

} // namespace vpp::mgr

#endif // VPP_MANAGERS_DEFAULT_MGR_H
