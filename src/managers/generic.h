/**
 * @file
 * Generic segment manager (paper §2.2, final paragraph).
 *
 * "An application segment manager can be 'specialized' from a generic
 * or standard segment manager using inheritance ... The generic
 * implementation provides data structures for managing the free page
 * segment and basic page faulting handling. The page replacement
 * selection routines and page fill routines can be easily specialized."
 *
 * GenericSegmentManager owns a free-page segment, satisfies missing-
 * page and copy-on-write faults by migrating frames from it, reclaims
 * pages back into it (with a write-back hook for dirty data), and
 * trades frames with the System Page Cache Manager. Subclasses
 * specialise the fill, protection, write-back, victim-selection and
 * allocation-batching hooks.
 */

#ifndef VPP_MANAGERS_GENERIC_H
#define VPP_MANAGERS_GENERIC_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "managers/slot_pool.h"
#include "managers/spcm.h"

namespace vpp::mgr {

class GenericSegmentManager : public kernel::SegmentManager
{
  public:
    GenericSegmentManager(kernel::Kernel &k, std::string name,
                          hw::ManagerMode mode,
                          SystemPageCacheManager *spcm,
                          kernel::UserId uid);

    /**
     * Create the free-page segment with room for @p capacity frames
     * and stock it with @p initial_frames from the SPCM.
     */
    sim::Task<> init(std::uint64_t capacity,
                     std::uint64_t initial_frames);

    /** Zero-time variant of init() for benchmark setup. */
    void initNow(std::uint64_t capacity, std::uint64_t initial_frames);

    sim::Task<> handleFault(kernel::Kernel &k,
                            const kernel::Fault &f) final;

    /**
     * Batched delivery (MachineConfig::faultCoalescing): tops the free
     * pool up once for the whole batch, then resolves each fault,
     * skipping pages a batch-mate's run allocation already installed.
     */
    sim::Task<> handleFaults(kernel::Kernel &k,
                             std::span<const kernel::Fault> fs) override;

    sim::Task<> segmentClosed(kernel::Kernel &k,
                              kernel::SegmentId s) override;

    // ------------------------------------------------------------------
    // Free-pool management
    // ------------------------------------------------------------------

    kernel::SegmentId freeSegment() const { return freeSeg_; }
    std::uint64_t freePages() const { return freeSlots_.size(); }
    std::uint64_t emptySlotCount() const { return emptySlots_.size(); }

    /** Ask the SPCM for @p n more frames. Returns frames received. */
    sim::Task<std::uint64_t> requestFrames(std::uint64_t n,
                                           Constraint c = {});

    /** Return up to @p n frames from the free pool to the SPCM. */
    sim::Task<std::uint64_t> surrenderFrames(std::uint64_t n);

    /**
     * Reclaim a present page of a managed segment into the free pool,
     * writing dirty data back first (via the writeBack hook) unless
     * the page is marked discardable.
     */
    sim::Task<> reclaimPage(kernel::Kernel &k, kernel::SegmentId seg,
                            kernel::PageIndex page);

    /**
     * Reclaim a contiguous run of present pages with as few
     * MigratePages invocations as the free pool's empty-slot layout
     * allows (used for segment teardown). Returns pages reclaimed.
     */
    sim::Task<std::uint64_t>
    reclaimRun(kernel::Kernel &k, kernel::SegmentId seg,
               kernel::PageIndex first, std::uint64_t pages);

    ClientId spcmClient() const { return client_; }
    kernel::UserId uid() const { return uid_; }

    /** MigratePages invocations issued by this manager (Table 3). */
    std::uint64_t migrateInvocations() const { return migrates_; }

    /** Faults resolved, pages reclaimed, write-backs (observability). */
    std::uint64_t pagesAllocated() const { return pagesAllocated_; }
    std::uint64_t pagesReclaimed() const { return pagesReclaimed_; }
    std::uint64_t writeBacks() const { return writeBacks_; }

    void
    resetActivity()
    {
        resetStats();
        migrates_ = 0;
        pagesAllocated_ = 0;
        pagesReclaimed_ = 0;
        writeBacks_ = 0;
    }

  protected:
    // ------------------------------------------------------------------
    // Specialisation hooks
    // ------------------------------------------------------------------

    /**
     * First crack at a missing-page/copy-on-write fault before the
     * generic allocate-fill-migrate path runs. Return true if the
     * fault is fully handled (e.g. the page was already being
     * prefetched and is now resident). Default: false.
     */
    virtual sim::Task<bool>
    preFault(kernel::Kernel &k, const kernel::Fault &f)
    {
        (void)k;
        (void)f;
        co_return false;
    }

    /**
     * Runs after a missing-page fault has been resolved; the hook for
     * policies that react to demand (e.g. issuing read-ahead).
     */
    virtual sim::Task<>
    afterFault(kernel::Kernel &k, const kernel::Fault &f)
    {
        (void)k;
        (void)f;
        co_return;
    }

    /**
     * Fill the free-pool page at @p free_slot with the data that
     * belongs at (fault segment, @p dst_page) before it is migrated
     * in. Default: leave as is (anonymous memory).
     */
    virtual sim::Task<>
    fillPage(kernel::Kernel &k, const kernel::Fault &f,
             kernel::PageIndex dst_page, kernel::PageIndex free_slot)
    {
        (void)k;
        (void)f;
        (void)dst_page;
        (void)free_slot;
        co_return;
    }

    /** Resolve a protection fault. Default: re-enable access. */
    virtual sim::Task<>
    handleProtection(kernel::Kernel &k, const kernel::Fault &f)
    {
        co_await k.modifyPageFlags(f.segment, f.page, 1,
                                   kernel::flag::kReadable |
                                       kernel::flag::kWritable,
                                   0);
    }

    /**
     * Write a dirty page's data to backing store before its frame is
     * reused. Default: nothing (no backing store).
     */
    virtual sim::Task<>
    writeBack(kernel::Kernel &k, kernel::SegmentId seg,
              kernel::PageIndex page)
    {
        (void)k;
        (void)seg;
        (void)page;
        co_return;
    }

    /**
     * How many pages to allocate for this missing-page fault (e.g.
     * the default manager allocates appends in 16 KB units). The
     * result is clamped to the free pool, the segment limit and the
     * next present page. Default: 1.
     */
    virtual std::uint64_t
    allocCount(kernel::Kernel &k, const kernel::Fault &f)
    {
        (void)k;
        (void)f;
        return 1;
    }

    /**
     * Free the pool is empty and a fault needs a frame: reclaim
     * something. Default: request a batch from the SPCM.
     */
    virtual sim::Task<> replenish(kernel::Kernel &k);

    /** Protection bits for newly installed pages. Default: R|W. */
    virtual std::uint32_t
    pageProt(const kernel::Fault &f)
    {
        (void)f;
        return kernel::flag::kReadable | kernel::flag::kWritable;
    }

    /**
     * Pick the free-pool slots whose frames will satisfy this fault.
     * Default: any contiguous run. Policies that care about *which*
     * physical frame backs a page (coloring, placement) override
     * this. The returned slots must come from the free pool (via
     * takeFreeRun or equivalent) and be contiguous.
     */
    virtual sim::Task<std::vector<kernel::PageIndex>>
    chooseSlots(kernel::Kernel &k, const kernel::Fault &f,
                std::uint64_t n)
    {
        (void)k;
        (void)f;
        co_return takeFreeRun(n);
    }

    /** Charged MigratePages wrapper that also counts invocations. */
    sim::Task<std::uint64_t>
    migrate(kernel::Kernel &k, kernel::SegmentId src,
            kernel::SegmentId dst, kernel::PageIndex src_page,
            kernel::PageIndex dst_page, std::uint64_t pages,
            std::uint32_t set_flags, std::uint32_t clear_flags)
    {
        ++migrates_;
        co_return co_await k.migratePages(src, dst, src_page, dst_page,
                                          pages, set_flags,
                                          clear_flags);
    }

    /**
     * Find @p n contiguous allocated slots in the free pool; if no
     * such run exists, return the longest available prefix (possibly
     * a single slot).
     */
    std::vector<kernel::PageIndex> takeFreeRun(std::uint64_t n);

    /** Pop @p n empty slots to receive incoming frames. */
    std::vector<kernel::PageIndex> takeEmptySlots(std::uint64_t n);

    /** Pop a contiguous run of up to @p n empty slots. */
    std::vector<kernel::PageIndex> takeEmptyRun(std::uint64_t n);

    void
    slotFilled(kernel::PageIndex slot)
    {
        freeSlots_.insert(slot);
    }

    void
    slotEmptied(kernel::PageIndex slot)
    {
        emptySlots_.insert(slot);
    }

    /** Inspect the allocated free-pool slots (policy overrides). */
    const SlotPool &
    freeSlotSet() const
    {
        return freeSlots_;
    }

    /** Claim one specific free slot; false if it is not free. */
    bool
    takeSlot(kernel::PageIndex slot)
    {
        return freeSlots_.erase(slot);
    }

    /**
     * Whether kDiscardable pages may skip writeback on reclaim. A
     * conventional-policy comparator overrides this to false.
     */
    virtual bool honorsDiscardable() const { return true; }

    kernel::Kernel &kern() { return *kern_; }
    SystemPageCacheManager *spcm() { return spcm_; }

    /// Frames per SPCM request; seeded from
    /// MachineConfig::mgrRequestBatch in the constructor so one knob
    /// drives every manager's allocation batching.
    std::uint64_t requestBatch_ = 32;

  private:
    kernel::Kernel *kern_;
    SystemPageCacheManager *spcm_;
    kernel::UserId uid_;
    ClientId client_ = 0;
    kernel::SegmentId freeSeg_ = kernel::kInvalidSegment;
    SlotPool freeSlots_;  ///< slots holding frames
    SlotPool emptySlots_; ///< slots without frames
    std::uint64_t migrates_ = 0;
    std::uint64_t pagesAllocated_ = 0;
    std::uint64_t pagesReclaimed_ = 0;
    std::uint64_t writeBacks_ = 0;
};

} // namespace vpp::mgr

#endif // VPP_MANAGERS_GENERIC_H
