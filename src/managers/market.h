/**
 * @file
 * The memory-market model of system memory allocation (paper §2.4).
 *
 * The SPCM charges a process M * D * T drams for holding M megabytes
 * over T seconds at charge rate D; each process receives an income of
 * I drams per second. A savings tax discourages hoarding (the market
 * has fixed price and fixed supply), an I/O charge stops scan-heavy
 * programs from substituting I/O for memory, and holdings are free of
 * charge while there is no competing demand.
 */

#ifndef VPP_MANAGERS_MARKET_H
#define VPP_MANAGERS_MARKET_H

#include <cstdint>
#include <string>

#include "core/types.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace vpp::mgr {

struct MarketParams
{
    double chargePerMBSec = 1.0;   ///< D: drams per megabyte-second
    double savingsTaxPerSec = 0.02; ///< fraction of balance taxed / s
    double ioChargePerMB = 0.5;    ///< drams per megabyte transferred
    double grantHorizonSec = 1.0;  ///< affordability lookahead
    bool freeWhenUncontended = true;
};

/** One client's dram account. */
struct DramAccount
{
    std::string name;
    kernel::UserId uid = kernel::kSystemUser;
    double incomeRate = 0.0; ///< I: drams per second
    double balance = 0.0;
    std::uint64_t bytesHeld = 0;
    sim::SimTime lastSettle = 0;

    // Lifetime accounting (observability / tests).
    double totalIncome = 0.0;
    double totalMemoryCharge = 0.0;
    double totalIoCharge = 0.0;
    double totalTax = 0.0;
};

class MemoryMarket
{
  public:
    MemoryMarket(sim::Simulation &s, MarketParams p)
        : sim_(&s), params_(p)
    {}

    const MarketParams &params() const { return params_; }

    /**
     * Bring @p a up to date: accrue income, charge for held memory
     * (unless the market is uncontended and holdings are then free),
     * and apply the savings tax on positive balances.
     */
    void
    settle(DramAccount &a, bool contended) const
    {
        double dt = sim::toSec(sim_->now() - a.lastSettle);
        a.lastSettle = sim_->now();
        if (dt <= 0)
            return;
        double income = a.incomeRate * dt;
        a.balance += income;
        a.totalIncome += income;
        if (contended || !params_.freeWhenUncontended) {
            double mb = static_cast<double>(a.bytesHeld) / (1 << 20);
            double charge = mb * params_.chargePerMBSec * dt;
            a.balance -= charge;
            a.totalMemoryCharge += charge;
        }
        if (a.balance > 0) {
            double tax = a.balance * params_.savingsTaxPerSec * dt;
            a.balance -= tax;
            a.totalTax += tax;
        }
    }

    /** Charge for I/O traffic (scan-structured-program rule). */
    void
    chargeIo(DramAccount &a, std::uint64_t bytes) const
    {
        double charge = static_cast<double>(bytes) / (1 << 20) *
                        params_.ioChargePerMB;
        a.balance -= charge;
        a.totalIoCharge += charge;
    }

    /**
     * The most bytes @p a could afford to hold for the grant horizon,
     * given its balance plus the income it will receive meanwhile.
     */
    std::uint64_t
    affordableBytes(const DramAccount &a) const
    {
        double h = params_.grantHorizonSec;
        double usable = a.balance + a.incomeRate * h;
        if (usable <= 0)
            return 0;
        double mb = usable / (params_.chargePerMBSec * h);
        return static_cast<std::uint64_t>(mb * (1 << 20));
    }

    /** Seconds the account can sustain its holdings before going broke. */
    double
    runwaySec(const DramAccount &a) const
    {
        double mb = static_cast<double>(a.bytesHeld) / (1 << 20);
        double burn = mb * params_.chargePerMBSec - a.incomeRate;
        if (burn <= 0)
            return 1e9;
        return a.balance / burn;
    }

  private:
    sim::Simulation *sim_;
    MarketParams params_;
};

} // namespace vpp::mgr

#endif // VPP_MANAGERS_MARKET_H
