#include "managers/spcm.h"

#include <algorithm>

namespace vpp::mgr {

using kernel::flag::kReadable;
using kernel::flag::kWritable;
using kernel::flag::kZeroFill;

SystemPageCacheManager::SystemPageCacheManager(
    kernel::Kernel &k, std::optional<MarketParams> market,
    SpcmParams params)
    : kern_(&k), ipcCost_(ipc::CallCost::fromMachine(k.config())),
      serial_(k.simulation()), sp_(params)
{
    if (market)
        market_.emplace(k.simulation(), *market);
    if (sp_.shards > 1) {
        std::uint64_t total = k.memory().numFrames();
        auto shared = static_cast<std::uint64_t>(
            static_cast<double>(total) * sp_.protectedShare);
        privateFrames_ = total > shared ? total - shared : 0;
        framesPerShard_ = std::max<std::uint64_t>(
            1, privateFrames_ / sp_.shards);
        shardFree_.resize(sp_.shards + 1);
    }
    if (sp_.batchedRounds) {
        roundPort_.emplace(k.simulation(), ipcCost_);
        k.simulation().spawn(marketServer());
    }
}

ClientId
SystemPageCacheManager::registerClient(
    std::string name, kernel::UserId uid, double income_rate,
    std::function<sim::Task<>(std::uint64_t)> reclaim)
{
    Client c;
    c.account.name = std::move(name);
    c.account.uid = uid;
    c.account.incomeRate = income_rate;
    c.account.lastSettle = kern_->simulation().now();
    c.reclaim = std::move(reclaim);
    clients_.push_back(std::move(c));
    return static_cast<ClientId>(clients_.size() - 1);
}

std::uint64_t
SystemPageCacheManager::freeFrames() const
{
    return kern_->segment(kernel::kPhysSegment).presentPages();
}

bool
SystemPageCacheManager::contended() const
{
    // The pool is contended when requests have recently gone unmet or
    // little memory remains free.
    return pendingDemand_ > 0 ||
           freeFrames() <
               kern_->memory().numFrames() / 16;
}

bool
SystemPageCacheManager::frameMatches(hw::FrameId f,
                                     const Constraint &c) const
{
    switch (c.kind) {
      case Constraint::Kind::None:
        return true;
      case Constraint::Kind::PhysRange: {
        hw::PhysAddr a = kern_->memory().physAddr(f);
        return a >= c.lo && a < c.hi;
      }
      case Constraint::Kind::Color:
        return f % c.numColors == c.color;
    }
    return true;
}

std::uint32_t
SystemPageCacheManager::homeShard(hw::FrameId f) const
{
    if (!sharded())
        return 0;
    if (f >= privateFrames_)
        return sp_.shards; // shared (protected) pool
    return static_cast<std::uint32_t>(std::min<std::uint64_t>(
        f / framesPerShard_, sp_.shards - 1));
}

void
SystemPageCacheManager::syncShardLists()
{
    if (!sharded())
        return;
    // A grant in flight has frames popped from the lists but not yet
    // migrated out of the physical segment; resync after it lands.
    if (unlinked_ != 0)
        return;
    std::uint64_t listed = 0;
    for (const SlotPool &p : shardFree_)
        listed += p.size();
    if (listed == freeFrames())
        return;
    // The kernel bypassed us (e.g. unilateral reclamation of a crashed
    // manager returned its frames straight to the physical segment):
    // rebuild the lists from the pool, each frame on its home shard.
    for (SlotPool &p : shardFree_)
        p = SlotPool{};
    const auto &phys = kern_->segment(kernel::kPhysSegment);
    for (const auto &[page, entry] : phys.pages())
        shardFree_[homeShard(entry.frame)].insert(entry.frame);
}

void
SystemPageCacheManager::noteFrameFreed(hw::FrameId f)
{
    if (sharded())
        shardFree_[homeShard(f)].insert(f);
}

std::uint64_t
SystemPageCacheManager::shardFreeFrames(std::uint32_t s)
{
    if (!sharded())
        return s == 0 ? freeFrames() : 0;
    syncShardLists();
    return shardFree_.at(s).size();
}

std::vector<hw::FrameId>
SystemPageCacheManager::pickFrames(ClientId c, std::uint64_t n,
                                   const Constraint &con)
{
    if (sharded()) {
        syncShardLists();
        std::vector<hw::FrameId> out;
        if (con.kind == Constraint::Kind::None) {
            // O(1) per frame: drain the client's home shard, then the
            // shared pool, then steal from sibling shards round-robin
            // (a shard must never refuse while free frames exist
            // elsewhere — allocation, not placement, is the contract).
            out.reserve(n);
            SlotPool &own = shardFree_[clientShard(c)];
            SlotPool &shared = shardFree_[sp_.shards];
            while (out.size() < n && !own.empty())
                out.push_back(own.popLowest());
            while (out.size() < n && !shared.empty())
                out.push_back(shared.popLowest());
            for (std::uint32_t k = 1;
                 k < sp_.shards && out.size() < n; ++k) {
                SlotPool &sib =
                    shardFree_[(clientShard(c) + k) % sp_.shards];
                while (out.size() < n && !sib.empty())
                    out.push_back(sib.popLowest());
            }
        } else {
            // Constrained picks (phys range, color) still scan; keep
            // the lists in step.
            out.reserve(n);
            const auto &phys = kern_->segment(kernel::kPhysSegment);
            for (const auto &[page, entry] : phys.pages()) {
                if (out.size() >= n)
                    break;
                if (frameMatches(entry.frame, con))
                    out.push_back(entry.frame);
            }
            for (hw::FrameId f : out)
                shardFree_[homeShard(f)].erase(f);
        }
        unlinked_ += out.size();
        return out;
    }
    std::vector<hw::FrameId> out;
    const auto &phys = kern_->segment(kernel::kPhysSegment);
    out.reserve(std::min<std::uint64_t>(n, phys.pages().size()));
    for (const auto &[page, entry] : phys.pages()) {
        if (out.size() >= n)
            break;
        if (frameMatches(entry.frame, con))
            out.push_back(entry.frame);
    }
    return out;
}

void
SystemPageCacheManager::noteBidOutcome(ClientId c, std::uint64_t want,
                                       std::uint64_t got)
{
    TenantStats &t = clients_.at(c).tenant;
    ++t.bids;
    if (want == 0)
        return;
    sim::SimTime now = kern_->simulation().now();
    if (got == 0) {
        ++t.bidsUnserved;
        if (!t.starving) {
            t.starving = true;
            t.starvingSince = now;
        }
        sim::Duration age = now - t.starvingSince;
        t.maxStarvation = std::max(t.maxStarvation, age);
        maxStarve_ = std::max(maxStarve_, age);
        kernel::noteThreadMarketStarve(age);
    } else {
        t.starving = false;
    }
}

sim::Task<std::uint64_t>
SystemPageCacheManager::doGrant(ClientId c, kernel::SegmentId dst_seg,
                                const std::vector<kernel::PageIndex> &slots,
                                const Constraint &constraint,
                                bool *charge_base)
{
    Client &client = clients_.at(c);
    std::uint64_t want = slots.size();
    const std::uint32_t page_size =
        kern_->segment(dst_seg).pageSize();

    if (market_) {
        market_->settle(client.account, contended());
        std::uint64_t afford =
            market_->affordableBytes(client.account);
        std::uint64_t held = client.account.bytesHeld;
        std::uint64_t room =
            afford > held ? (afford - held) / page_size : 0;
        want = std::min(want, room);
    }

    std::vector<hw::FrameId> frames = pickFrames(c, want, constraint);
    if (frames.size() < slots.size())
        pendingDemand_ += slots.size() - frames.size();
    else if (pendingDemand_ > 0)
        --pendingDemand_;

    // Conventional-policy comparator. A short grant under Clock (the
    // legacy shape) sends the hand sweeping every resident frame for
    // victims before giving up; list-based policies keep an eviction
    // order and pay the scan only for the frames actually missing.
    if (sp_.clockScanPerFrame > 0 && frames.size() < slots.size()) {
        std::uint64_t scanned =
            sp_.scanPolicy == policy::Kind::Clock
                ? kern_->memory().numFrames() - freeFrames()
                : slots.size() - frames.size();
        co_await kern_->simulation().delay(
            static_cast<sim::Duration>(scanned) *
            sp_.clockScanPerFrame);
    }

    // One MigratePages invocation moves the batch; frames may be
    // scattered in the pool, so the functional move is per-frame.
    if (!frames.empty()) {
        ++kern_->stats().migrateCalls;
        // A batched round pays the migrate base once for all of its
        // bids; the legacy path (charge_base == nullptr) pays it per
        // request, as the single-server SPCM always did.
        sim::Duration base = kern_->config().cost.migrateBase;
        if (charge_base) {
            base = *charge_base ? base : 0;
            *charge_base = false;
        }
        co_await kern_->simulation().delay(
            base +
            static_cast<sim::Duration>(frames.size()) *
                (kern_->config().cost.migratePerPage +
                 kern_->config().cost.mapInstall));
        std::uint64_t zero_bytes = 0;
        for (std::size_t i = 0; i < frames.size(); ++i) {
            std::uint32_t set = kReadable | kWritable;
            kernel::UserId last =
                kern_->frameOwner(frames[i]).lastUser;
            if (last != client.account.uid &&
                last != kernel::kSystemUser) {
                set |= kZeroFill; // security: crossed a user boundary
            }
            std::uint64_t zeroed = 0;
            kern_->migratePagesNow(kernel::kPhysSegment, dst_seg,
                                   frames[i], slots[i], 1, set,
                                   kernel::flag::kDirty |
                                       kernel::flag::kReferenced,
                                   &zeroed);
            zero_bytes += zeroed;
        }
        if (sharded())
            unlinked_ -= frames.size();
        if (zero_bytes)
            co_await kern_->chargeZero(zero_bytes);
        client.account.bytesHeld +=
            frames.size() * static_cast<std::uint64_t>(page_size);
    }

    ++grants_;
    framesGranted_ += frames.size();
    noteBidOutcome(c, slots.size(), frames.size());
    co_return frames.size();
}

sim::Task<std::uint64_t>
SystemPageCacheManager::doReturn(ClientId c, kernel::SegmentId src_seg,
                                 const std::vector<kernel::PageIndex> &slots)
{
    Client &client = clients_.at(c);
    const std::uint32_t page_size =
        kern_->segment(src_seg).pageSize();
    std::uint64_t returned = 0;
    if (!slots.empty()) {
        ++kern_->stats().migrateCalls;
        co_await kern_->simulation().delay(
            kern_->config().cost.migrateBase +
            static_cast<sim::Duration>(slots.size()) *
                (kern_->config().cost.migratePerPage +
                 kern_->config().cost.mapInstall));
        for (kernel::PageIndex slot : slots) {
            const kernel::PageEntry *e =
                kern_->segment(src_seg).findPage(slot);
            if (!e)
                continue;
            hw::FrameId f = e->frame;
            kern_->migratePagesNow(src_seg, kernel::kPhysSegment, slot,
                                   f, 1,
                                   kReadable | kWritable,
                                   kernel::flag::kDirty |
                                       kernel::flag::kReferenced |
                                       kernel::flag::kPinned);
            noteFrameFreed(f);
            ++returned;
        }
        std::uint64_t bytes = returned * page_size;
        client.account.bytesHeld -=
            std::min<std::uint64_t>(client.account.bytesHeld, bytes);
    }
    framesReturned_ += returned;
    if (market_)
        market_->settle(client.account, contended());
    co_return returned;
}

sim::Task<>
SystemPageCacheManager::stormSweep(std::uint64_t frames)
{
    ++storms_;
    const inject::PressureFaults &pf = inject_->config().pressure;
    std::size_t n = clients_.size();
    if (n == 0)
        co_return;
    std::size_t fan = (pf.stormClients == 0 || pf.stormClients >= n)
                          ? n
                          : pf.stormClients;
    if (fan == n) {
        for (std::size_t k = 0; k < n; ++k) {
            Client &cl = clients_[k];
            if (cl.reclaim) {
                reclaimTarget_ = static_cast<ClientId>(k);
                co_await cl.reclaim(frames);
                reclaimTarget_ = static_cast<ClientId>(-1);
            }
        }
        co_return;
    }
    // Thundering-herd cap: sweep only `fan` clients per storm, round
    // robin, so one storm does not serialise the entire tenant set.
    for (std::size_t k = 0; k < fan; ++k) {
        std::size_t idx = (stormCursor_ + k) % n;
        Client &cl = clients_[idx];
        if (cl.reclaim) {
            reclaimTarget_ = static_cast<ClientId>(idx);
            co_await cl.reclaim(frames);
            reclaimTarget_ = static_cast<ClientId>(-1);
        }
    }
    stormCursor_ = (stormCursor_ + fan) % n;
}

sim::Task<std::uint64_t>
SystemPageCacheManager::requestPages(ClientId c,
                                     kernel::SegmentId dst_seg,
                                     std::vector<kernel::PageIndex> slots,
                                     Constraint constraint)
{
    if (sp_.batchedRounds) {
        // A reclaim callback running inside the round server must not
        // park a bid for the next round (deadlock); serve it directly.
        // Only the client being reclaimed qualifies: anyone else who
        // resumes while the server is suspended parks like normal.
        if (inRound_ && c == reclaimTarget_)
            co_return co_await doGrant(c, dst_seg, slots, constraint,
                                       nullptr);
        co_return co_await roundRequest(true, c, dst_seg,
                                        std::move(slots), constraint);
    }

    // Injected memory-pressure storm: before serving this request,
    // force clients to shed frames (a burst of the patrol's forced
    // reclamation). Runs outside the serial lock because the reclaim
    // callbacks re-enter through returnPages.
    if (inject_) {
        if (std::uint64_t storm = inject_->reclaimStorm())
            co_await stormSweep(storm);
    }

    co_await kern_->simulation().delay(ipcCost_.send);
    co_await serial_.lock();
    std::uint64_t granted =
        co_await doGrant(c, dst_seg, slots, constraint, nullptr);
    serial_.unlock();
    co_await kern_->simulation().delay(ipcCost_.reply);
    co_return granted;
}

sim::Task<std::uint64_t>
SystemPageCacheManager::returnPages(ClientId c,
                                    kernel::SegmentId src_seg,
                                    std::vector<kernel::PageIndex> slots)
{
    if (sp_.batchedRounds) {
        if (inRound_ && c == reclaimTarget_)
            co_return co_await doReturn(c, src_seg, slots);
        co_return co_await roundRequest(false, c, src_seg,
                                        std::move(slots), {});
    }

    co_await kern_->simulation().delay(ipcCost_.send);
    co_await serial_.lock();
    std::uint64_t returned = co_await doReturn(c, src_seg, slots);
    serial_.unlock();
    co_await kern_->simulation().delay(ipcCost_.reply);
    co_return returned;
}

sim::Task<std::uint64_t>
SystemPageCacheManager::roundRequest(bool is_bid, ClientId c,
                                     kernel::SegmentId seg,
                                     std::vector<kernel::PageIndex> slots,
                                     Constraint constraint)
{
    RoundEntry e;
    e.msg.isBid = is_bid;
    e.msg.client = c;
    e.msg.seg = seg;
    e.msg.slots = std::move(slots);
    e.msg.constraint = constraint;
    e.want = e.msg.slots.size();
    e.issued = kern_->simulation().now();
    e.done = std::make_shared<sim::Promise<std::uint64_t>>(
        kern_->simulation());
    sim::Future<std::uint64_t> fut = e.done->future();
    pendingRound_.push_back(std::move(e));
    if (!roundDraining_) {
        roundDraining_ = true;
        kern_->simulation().spawn(drainRounds());
    }
    co_return co_await fut;
}

sim::Task<>
SystemPageCacheManager::drainRounds()
{
    sim::Simulation &s = kern_->simulation();
    // Let every same-instant bid and offer join the first round (the
    // kernel's fault-coalescing drain idiom).
    co_await s.yield();
    while (!pendingRound_.empty() || !waitQueue_.empty()) {
        if (pendingRound_.empty()) {
            // Only parked waiters remain: retry them after the
            // admission interval (frames may have been freed by then;
            // their ages grow toward the admission deadline either
            // way, so starvation cannot become a deadlock).
            co_await s.delay(sp_.admissionRetry);
        }
        std::vector<RoundEntry> round;
        round.reserve(waitQueue_.size() + pendingRound_.size());
        // Oldest parked bids go first so the auction serves them
        // before fresh arrivals.
        while (!waitQueue_.empty()) {
            round.push_back(std::move(waitQueue_.front()));
            waitQueue_.pop_front();
        }
        for (RoundEntry &e : pendingRound_)
            round.push_back(std::move(e));
        pendingRound_.clear();
        if (round.empty())
            continue;

        std::vector<MarketMsg> msgs;
        msgs.reserve(round.size());
        std::uint64_t nbids = 0;
        for (const RoundEntry &e : round) {
            msgs.push_back(e.msg);
            nbids += e.msg.isBid ? 1 : 0;
        }
        ++rounds_;
        roundBids_ += nbids;
        roundOffers_ += round.size() - nbids;
        kernel::noteThreadMarketRound(nbids);

        std::vector<std::uint64_t> grants;
        std::exception_ptr err;
        try {
            grants = co_await roundPort_->callBatch(std::move(msgs));
        } catch (...) {
            err = std::current_exception();
        }
        if (err) {
            for (RoundEntry &e : round)
                e.done->setError(err);
            continue;
        }

        sim::SimTime now = s.now();
        for (std::size_t i = 0; i < round.size(); ++i) {
            RoundEntry &e = round[i];
            std::uint64_t got = grants[i];
            bool starved = e.msg.isBid && e.want > 0 && got == 0;
            bool can_wait =
                sp_.admissionMaxWaiters > 0 &&
                sp_.admissionMaxWait > 0 &&
                (now - e.issued) < sp_.admissionMaxWait &&
                waitQueue_.size() < sp_.admissionMaxWaiters;
            if (starved && can_wait) {
                ++bidsWaited_;
                waitQueue_.push_back(std::move(e));
                continue;
            }
            if (starved)
                ++bidsRejected_;
            e.done->setValue(got);
        }
    }
    roundDraining_ = false;
}

sim::Task<>
SystemPageCacheManager::marketServer()
{
    for (;;) {
        auto batch = co_await roundPort_->receiveBatch();
        std::vector<std::uint64_t> out(batch.requests.size(), 0);
        inRound_ = true;
        std::exception_ptr err;
        try {
            // One storm consultation per round, not per bid: the
            // injected herd pressure scales with auction rounds.
            if (inject_) {
                if (std::uint64_t storm = inject_->reclaimStorm())
                    co_await stormSweep(storm);
            }
            // Offers first: frames freed this round fund this round's
            // bids. Both phases run in arrival order.
            for (std::size_t i = 0; i < batch.requests.size(); ++i) {
                const MarketMsg &m = batch.requests[i];
                if (!m.isBid)
                    out[i] = co_await doReturn(m.client, m.seg,
                                               m.slots);
            }
            bool charge_base = true;
            for (std::size_t i = 0; i < batch.requests.size(); ++i) {
                const MarketMsg &m = batch.requests[i];
                if (m.isBid) {
                    out[i] = co_await doGrant(m.client, m.seg, m.slots,
                                              m.constraint,
                                              &charge_base);
                }
            }
        } catch (...) {
            err = std::current_exception();
        }
        inRound_ = false;
        if (err)
            batch.reply.setError(err);
        else
            batch.reply.setValue(std::move(out));
    }
}

std::uint64_t
SystemPageCacheManager::grantNow(
    ClientId c, kernel::SegmentId dst_seg,
    const std::vector<kernel::PageIndex> &slots, Constraint constraint)
{
    Client &client = clients_.at(c);
    if (market_)
        market_->settle(client.account, contended());
    const std::uint32_t page_size =
        kern_->segment(dst_seg).pageSize();
    std::vector<hw::FrameId> frames =
        pickFrames(c, slots.size(), constraint);
    for (std::size_t i = 0; i < frames.size(); ++i) {
        std::uint32_t set = kReadable | kWritable;
        kernel::UserId last =
            kern_->frameOwner(frames[i]).lastUser;
        if (last != client.account.uid &&
            last != kernel::kSystemUser) {
            set |= kZeroFill;
        }
        kern_->migratePagesNow(kernel::kPhysSegment, dst_seg,
                               frames[i], slots[i], 1, set,
                               kernel::flag::kDirty |
                                   kernel::flag::kReferenced);
    }
    if (sharded())
        unlinked_ -= frames.size();
    client.account.bytesHeld +=
        frames.size() * static_cast<std::uint64_t>(page_size);
    framesGranted_ += frames.size();
    return frames.size();
}

void
SystemPageCacheManager::noteIo(ClientId c, std::uint64_t bytes)
{
    if (market_)
        market_->chargeIo(clients_.at(c).account, bytes);
}

sim::Task<SystemPageCacheManager::MemoryInfo>
SystemPageCacheManager::query(ClientId c)
{
    co_await kern_->simulation().delay(ipcCost_.send);
    Client &client = clients_.at(c);
    MemoryInfo info;
    info.freeFrames = freeFrames();
    info.totalFrames = kern_->memory().numFrames();
    info.contended = contended();
    if (market_) {
        market_->settle(client.account, contended());
        info.balance = client.account.balance;
        info.incomeRate = client.account.incomeRate;
        info.affordableBytes =
            market_->affordableBytes(client.account);
    } else {
        info.affordableBytes = info.freeFrames *
                               kern_->config().pageSize;
    }
    co_await kern_->simulation().delay(ipcCost_.reply);
    co_return info;
}

sim::Task<>
SystemPageCacheManager::patrol()
{
    if (!market_)
        co_return;
    const std::uint32_t page_size = kern_->config().pageSize;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
        Client &client = clients_[i];
        market_->settle(client.account, contended());
        if (client.account.balance >= 0)
            continue;
        std::uint64_t afford =
            market_->affordableBytes(client.account);
        if (client.account.bytesHeld <= afford)
            continue;
        std::uint64_t excess_frames =
            (client.account.bytesHeld - afford + page_size - 1) /
            page_size;
        if (client.reclaim && excess_frames > 0)
            co_await client.reclaim(excess_frames);
    }
}

void
SystemPageCacheManager::startPatrol(sim::Duration interval)
{
    patrolRunning_ = true;
    kern_->simulation().spawn(
        [](SystemPageCacheManager *self,
           sim::Duration ival) -> sim::Task<> {
            while (self->patrolRunning_) {
                co_await self->kern_->simulation().delay(ival);
                if (!self->patrolRunning_)
                    break;
                co_await self->patrol();
            }
        }(this, interval));
}

} // namespace vpp::mgr
