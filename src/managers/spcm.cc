#include "managers/spcm.h"

#include <algorithm>

namespace vpp::mgr {

using kernel::flag::kReadable;
using kernel::flag::kWritable;
using kernel::flag::kZeroFill;

SystemPageCacheManager::SystemPageCacheManager(
    kernel::Kernel &k, std::optional<MarketParams> market)
    : kern_(&k), ipcCost_(ipc::CallCost::fromMachine(k.config())),
      serial_(k.simulation())
{
    if (market)
        market_.emplace(k.simulation(), *market);
}

ClientId
SystemPageCacheManager::registerClient(
    std::string name, kernel::UserId uid, double income_rate,
    std::function<sim::Task<>(std::uint64_t)> reclaim)
{
    Client c;
    c.account.name = std::move(name);
    c.account.uid = uid;
    c.account.incomeRate = income_rate;
    c.account.lastSettle = kern_->simulation().now();
    c.reclaim = std::move(reclaim);
    clients_.push_back(std::move(c));
    return static_cast<ClientId>(clients_.size() - 1);
}

std::uint64_t
SystemPageCacheManager::freeFrames() const
{
    return kern_->segment(kernel::kPhysSegment).presentPages();
}

bool
SystemPageCacheManager::contended() const
{
    // The pool is contended when requests have recently gone unmet or
    // little memory remains free.
    return pendingDemand_ > 0 ||
           freeFrames() <
               kern_->memory().numFrames() / 16;
}

bool
SystemPageCacheManager::frameMatches(hw::FrameId f,
                                     const Constraint &c) const
{
    switch (c.kind) {
      case Constraint::Kind::None:
        return true;
      case Constraint::Kind::PhysRange: {
        hw::PhysAddr a = kern_->memory().physAddr(f);
        return a >= c.lo && a < c.hi;
      }
      case Constraint::Kind::Color:
        return f % c.numColors == c.color;
    }
    return true;
}

std::vector<hw::FrameId>
SystemPageCacheManager::pickFrames(std::uint64_t n,
                                   const Constraint &c) const
{
    std::vector<hw::FrameId> out;
    const auto &phys = kern_->segment(kernel::kPhysSegment);
    out.reserve(std::min<std::uint64_t>(n, phys.pages().size()));
    for (const auto &[page, entry] : phys.pages()) {
        if (out.size() >= n)
            break;
        if (frameMatches(entry.frame, c))
            out.push_back(entry.frame);
    }
    return out;
}

sim::Task<std::uint64_t>
SystemPageCacheManager::requestPages(ClientId c,
                                     kernel::SegmentId dst_seg,
                                     std::vector<kernel::PageIndex> slots,
                                     Constraint constraint)
{
    // Injected memory-pressure storm: before serving this request,
    // force every client to shed frames (a burst of the patrol's
    // forced reclamation). Runs outside the serial lock because the
    // reclaim callbacks re-enter through returnPages.
    if (inject_) {
        if (std::uint64_t storm = inject_->reclaimStorm()) {
            ++storms_;
            for (Client &cl : clients_) {
                if (cl.reclaim)
                    co_await cl.reclaim(storm);
            }
        }
    }

    Client &client = clients_.at(c);
    co_await kern_->simulation().delay(ipcCost_.send);
    co_await serial_.lock();

    std::uint64_t want = slots.size();
    const std::uint32_t page_size =
        kern_->segment(dst_seg).pageSize();

    if (market_) {
        market_->settle(client.account, contended());
        std::uint64_t afford =
            market_->affordableBytes(client.account);
        std::uint64_t held = client.account.bytesHeld;
        std::uint64_t room =
            afford > held ? (afford - held) / page_size : 0;
        want = std::min(want, room);
    }

    std::vector<hw::FrameId> frames = pickFrames(want, constraint);
    if (frames.size() < slots.size())
        pendingDemand_ += slots.size() - frames.size();
    else if (pendingDemand_ > 0)
        --pendingDemand_;

    // One MigratePages invocation moves the batch; frames may be
    // scattered in the pool, so the functional move is per-frame.
    if (!frames.empty()) {
        ++kern_->stats().migrateCalls;
        co_await kern_->simulation().delay(
            kern_->config().cost.migrateBase +
            static_cast<sim::Duration>(frames.size()) *
                (kern_->config().cost.migratePerPage +
                 kern_->config().cost.mapInstall));
        std::uint64_t zero_bytes = 0;
        for (std::size_t i = 0; i < frames.size(); ++i) {
            std::uint32_t set = kReadable | kWritable;
            kernel::UserId last =
                kern_->frameOwner(frames[i]).lastUser;
            if (last != client.account.uid &&
                last != kernel::kSystemUser) {
                set |= kZeroFill; // security: crossed a user boundary
            }
            std::uint64_t zeroed = 0;
            kern_->migratePagesNow(kernel::kPhysSegment, dst_seg,
                                   frames[i], slots[i], 1, set,
                                   kernel::flag::kDirty |
                                       kernel::flag::kReferenced,
                                   &zeroed);
            zero_bytes += zeroed;
        }
        if (zero_bytes)
            co_await kern_->chargeZero(zero_bytes);
        client.account.bytesHeld +=
            frames.size() * static_cast<std::uint64_t>(page_size);
    }

    ++grants_;
    framesGranted_ += frames.size();
    serial_.unlock();
    co_await kern_->simulation().delay(ipcCost_.reply);
    co_return frames.size();
}

sim::Task<std::uint64_t>
SystemPageCacheManager::returnPages(ClientId c,
                                    kernel::SegmentId src_seg,
                                    std::vector<kernel::PageIndex> slots)
{
    Client &client = clients_.at(c);
    co_await kern_->simulation().delay(ipcCost_.send);
    co_await serial_.lock();

    const std::uint32_t page_size =
        kern_->segment(src_seg).pageSize();
    std::uint64_t returned = 0;
    if (!slots.empty()) {
        ++kern_->stats().migrateCalls;
        co_await kern_->simulation().delay(
            kern_->config().cost.migrateBase +
            static_cast<sim::Duration>(slots.size()) *
                (kern_->config().cost.migratePerPage +
                 kern_->config().cost.mapInstall));
        for (kernel::PageIndex slot : slots) {
            const kernel::PageEntry *e =
                kern_->segment(src_seg).findPage(slot);
            if (!e)
                continue;
            hw::FrameId f = e->frame;
            kern_->migratePagesNow(src_seg, kernel::kPhysSegment, slot,
                                   f, 1,
                                   kReadable | kWritable,
                                   kernel::flag::kDirty |
                                       kernel::flag::kReferenced |
                                       kernel::flag::kPinned);
            ++returned;
        }
        std::uint64_t bytes = returned * page_size;
        client.account.bytesHeld -=
            std::min<std::uint64_t>(client.account.bytesHeld, bytes);
    }
    framesReturned_ += returned;
    if (market_)
        market_->settle(client.account, contended());
    serial_.unlock();
    co_await kern_->simulation().delay(ipcCost_.reply);
    co_return returned;
}

std::uint64_t
SystemPageCacheManager::grantNow(
    ClientId c, kernel::SegmentId dst_seg,
    const std::vector<kernel::PageIndex> &slots, Constraint constraint)
{
    Client &client = clients_.at(c);
    if (market_)
        market_->settle(client.account, contended());
    const std::uint32_t page_size =
        kern_->segment(dst_seg).pageSize();
    std::vector<hw::FrameId> frames =
        pickFrames(slots.size(), constraint);
    for (std::size_t i = 0; i < frames.size(); ++i) {
        std::uint32_t set = kReadable | kWritable;
        kernel::UserId last =
            kern_->frameOwner(frames[i]).lastUser;
        if (last != client.account.uid &&
            last != kernel::kSystemUser) {
            set |= kZeroFill;
        }
        kern_->migratePagesNow(kernel::kPhysSegment, dst_seg,
                               frames[i], slots[i], 1, set,
                               kernel::flag::kDirty |
                                   kernel::flag::kReferenced);
    }
    client.account.bytesHeld +=
        frames.size() * static_cast<std::uint64_t>(page_size);
    framesGranted_ += frames.size();
    return frames.size();
}

void
SystemPageCacheManager::noteIo(ClientId c, std::uint64_t bytes)
{
    if (market_)
        market_->chargeIo(clients_.at(c).account, bytes);
}

sim::Task<SystemPageCacheManager::MemoryInfo>
SystemPageCacheManager::query(ClientId c)
{
    co_await kern_->simulation().delay(ipcCost_.send);
    Client &client = clients_.at(c);
    MemoryInfo info;
    info.freeFrames = freeFrames();
    info.totalFrames = kern_->memory().numFrames();
    info.contended = contended();
    if (market_) {
        market_->settle(client.account, contended());
        info.balance = client.account.balance;
        info.incomeRate = client.account.incomeRate;
        info.affordableBytes =
            market_->affordableBytes(client.account);
    } else {
        info.affordableBytes = info.freeFrames *
                               kern_->config().pageSize;
    }
    co_await kern_->simulation().delay(ipcCost_.reply);
    co_return info;
}

sim::Task<>
SystemPageCacheManager::patrol()
{
    if (!market_)
        co_return;
    const std::uint32_t page_size = kern_->config().pageSize;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
        Client &client = clients_[i];
        market_->settle(client.account, contended());
        if (client.account.balance >= 0)
            continue;
        std::uint64_t afford =
            market_->affordableBytes(client.account);
        if (client.account.bytesHeld <= afford)
            continue;
        std::uint64_t excess_frames =
            (client.account.bytesHeld - afford + page_size - 1) /
            page_size;
        if (client.reclaim && excess_frames > 0)
            co_await client.reclaim(excess_frames);
    }
}

void
SystemPageCacheManager::startPatrol(sim::Duration interval)
{
    patrolRunning_ = true;
    kern_->simulation().spawn(
        [](SystemPageCacheManager *self,
           sim::Duration ival) -> sim::Task<> {
            while (self->patrolRunning_) {
                co_await self->kern_->simulation().delay(ival);
                if (!self->patrolRunning_)
                    break;
                co_await self->patrol();
            }
        }(this, interval));
}

} // namespace vpp::mgr
