/**
 * @file
 * Page-in / page-out between cached-file segments and the file server.
 *
 * Every manager that backs a segment with a file performs the same two
 * transfers: fill a free-pool page from a file range (page-in) and
 * write a page's bytes back to a file range (page-out). These helpers
 * centralise that data path so the frame store can optimise it once:
 * frames and file chunks share refcounted copy-on-write buffers, so
 * neither direction copies bytes on the host. The *simulated* costs are
 * unchanged — pageIn charges exactly what FileServer::readBlock
 * charged (request overhead + disk transfer), pageOut charges exactly
 * the old readPageData + chargeCopy + writeBlock sequence — so sweep
 * output stays bit-identical.
 */

#ifndef VPP_UIO_PAGING_H
#define VPP_UIO_PAGING_H

#include <cstdint>

#include "core/kernel.h"
#include "uio/file_server.h"

namespace vpp::uio {

/**
 * Disk-error policy for the charged paths: a failed transfer
 * (hw::DiskError, injected by vpp::inject) is retried with doubling
 * backoff up to kMaxIoRetries attempts, then surfaces as
 * KernelErrc::IoError. Retries and errors are counted in
 * Kernel::Stats (ioRetries / ioErrors) and on the disk itself.
 * Without injection the retry wrapper adds no events: timing stays
 * bit-identical to the error-free path.
 */
constexpr int kMaxIoRetries = 4;
constexpr sim::Duration kIoRetryBackoff = sim::msec(2);

/**
 * Functional page-in with no simulated time: install the file bytes at
 * @p offset into the frames of (@p seg, @p page). Bytes beyond the
 * file's written chunks read as zeroes. The page must be present.
 */
void pageInNow(kernel::Kernel &k, FileServer &srv, FileId f,
               std::uint64_t offset, kernel::SegmentId seg,
               kernel::PageIndex page);

/**
 * Functional page-out with no simulated time: write the bytes of
 * (@p seg, @p page) to the file at @p offset.
 */
void pageOutNow(kernel::Kernel &k, FileServer &srv, FileId f,
                std::uint64_t offset, kernel::SegmentId seg,
                kernel::PageIndex page);

/**
 * Charged page-in: the file snapshot is taken on entry, the server
 * charges request overhead plus disk time for one page, and the page's
 * frames are installed when the transfer completes — the same timeline
 * as readBlock-into-buffer + writePageData. Callers keep charging
 * their own trailing chargeCopy, as the manager fill paths always did.
 */
sim::Task<> pageIn(kernel::Kernel &k, FileServer &srv, FileId f,
                   std::uint64_t offset, kernel::SegmentId seg,
                   kernel::PageIndex page);

/**
 * Charged page-out: snapshot the page's bytes on entry, charge the
 * kernel copy, publish the bytes to the file, then charge request
 * overhead plus disk time — the same timeline as readPageData +
 * chargeCopy + writeBlock.
 */
sim::Task<> pageOut(kernel::Kernel &k, FileServer &srv, FileId f,
                    std::uint64_t offset, kernel::SegmentId seg,
                    kernel::PageIndex page);

} // namespace vpp::uio

#endif // VPP_UIO_PAGING_H
