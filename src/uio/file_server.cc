#include "uio/file_server.h"

#include <cstring>
#include <stdexcept>

namespace vpp::uio {

FileServer::File &
FileServer::fileOrThrow(FileId f)
{
    auto it = files_.find(f);
    if (it == files_.end())
        throw std::out_of_range("no such file: " + std::to_string(f));
    return it->second;
}

const FileServer::File &
FileServer::fileOrThrow(FileId f) const
{
    auto it = files_.find(f);
    if (it == files_.end())
        throw std::out_of_range("no such file: " + std::to_string(f));
    return it->second;
}

void
FileServer::readNow(FileId f, std::uint64_t offset,
                    std::span<std::byte> out) const
{
    const File &file = fileOrThrow(f);
    std::size_t done = 0;
    while (done < out.size()) {
        std::uint64_t pos = offset + done;
        std::uint64_t chunk = pos / kChunk * kChunk;
        std::uint64_t in_chunk = pos - chunk;
        std::size_t n = std::min<std::size_t>(kChunk - in_chunk,
                                              out.size() - done);
        auto it = file.chunks.find(chunk);
        if (it == file.chunks.end())
            std::memset(out.data() + done, 0, n);
        else
            std::memcpy(out.data() + done, it->second.data() + in_chunk,
                        n);
        done += n;
    }
}

void
FileServer::writeNow(FileId f, std::uint64_t offset,
                     std::span<const std::byte> data)
{
    File &file = fileOrThrow(f);
    std::size_t done = 0;
    while (done < data.size()) {
        std::uint64_t pos = offset + done;
        std::uint64_t chunk = pos / kChunk * kChunk;
        std::uint64_t in_chunk = pos - chunk;
        std::size_t n = std::min<std::size_t>(kChunk - in_chunk,
                                              data.size() - done);
        auto &buf = file.chunks[chunk];
        if (!buf)
            buf = hw::BufRef::allocate(kChunk);
        std::memcpy(buf.mutate() + in_chunk, data.data() + done, n);
        done += n;
    }
    file.size = std::max(file.size, offset + data.size());
}

hw::BufRef
FileServer::shareNow(FileId f, std::uint64_t offset,
                     std::uint64_t len) const
{
    const File &file = fileOrThrow(f);
    if (offset % kChunk == 0 && len == kChunk) {
        auto it = file.chunks.find(offset);
        return it == file.chunks.end() ? hw::BufRef() : it->second;
    }
    hw::BufRef buf = hw::BufRef::allocate(static_cast<std::uint32_t>(len));
    readNow(f, offset, {buf.mutate(), len});
    return buf;
}

void
FileServer::adoptNow(FileId f, std::uint64_t offset, std::uint64_t len,
                     hw::BufRef buf)
{
    File &file = fileOrThrow(f);
    if (offset % kChunk != 0 || len != kChunk ||
        (buf && buf.size() != kChunk)) {
        if (buf)
            writeNow(f, offset, {buf.data(), buf.size()});
        else {
            std::vector<std::byte> zeros(len);
            writeNow(f, offset, zeros);
        }
        return;
    }
    if (buf)
        file.chunks[offset] = std::move(buf);
    else
        file.chunks.erase(offset);
    file.size = std::max(file.size, offset + len);
}

} // namespace vpp::uio
