/**
 * @file
 * UIO block read/write interface to cached files (paper §2.1).
 *
 * Cached files are segments; the block interface performs file I/O
 * without mapping the file into the caller's address space. A read or
 * write of a page with no frame raises a page fault to the segment's
 * manager, exactly like a memory reference. When the page is cached,
 * the access costs a single kernel operation plus the data copy — the
 * paths measured in Table 1 rows 3 and 4.
 */

#ifndef VPP_UIO_BLOCK_IO_H
#define VPP_UIO_BLOCK_IO_H

#include <cstdint>
#include <span>
#include <unordered_map>

#include "core/kernel.h"
#include "uio/file_server.h"

namespace vpp::uio {

/** Which cached-file segment backs each open file. */
class FileRegistry
{
  public:
    void
    bind(FileId f, kernel::SegmentId seg, std::uint64_t size)
    {
        fileToSeg_[f] = seg;
        segToFile_[seg] = f;
        sizes_[f] = size;
    }

    void
    unbind(FileId f)
    {
        auto it = fileToSeg_.find(f);
        if (it != fileToSeg_.end()) {
            segToFile_.erase(it->second);
            fileToSeg_.erase(it);
        }
        sizes_.erase(f);
    }

    bool
    isCached(FileId f) const
    {
        return fileToSeg_.count(f) != 0;
    }

    kernel::SegmentId
    segmentOf(FileId f) const
    {
        auto it = fileToSeg_.find(f);
        return it == fileToSeg_.end() ? kernel::kInvalidSegment
                                      : it->second;
    }

    FileId
    fileOf(kernel::SegmentId s) const
    {
        auto it = segToFile_.find(s);
        return it == segToFile_.end() ? kInvalidFile : it->second;
    }

    std::uint64_t
    sizeOf(FileId f) const
    {
        auto it = sizes_.find(f);
        return it == sizes_.end() ? 0 : it->second;
    }

    void
    updateSize(FileId f, std::uint64_t size)
    {
        auto it = sizes_.find(f);
        if (it != sizes_.end() && size > it->second)
            it->second = size;
    }

  private:
    std::unordered_map<FileId, kernel::SegmentId> fileToSeg_;
    std::unordered_map<kernel::SegmentId, FileId> segToFile_;
    std::unordered_map<FileId, std::uint64_t> sizes_;
};

class BlockIo
{
  public:
    BlockIo(kernel::Kernel &k, FileRegistry &reg)
        : kern_(&k), reg_(&reg)
    {}

    /**
     * Read up to out.size() bytes at @p offset. Returns bytes read
     * (short at end of file). One kernel operation per I/O unit.
     */
    sim::Task<std::uint64_t>
    read(kernel::Process &p, FileId f, std::uint64_t offset,
         std::span<std::byte> out);

    /** Write data at @p offset, extending the file as needed. */
    sim::Task<std::uint64_t>
    write(kernel::Process &p, FileId f, std::uint64_t offset,
          std::span<const std::byte> data);

    std::uint64_t readCalls() const { return readCalls_; }
    std::uint64_t writeCalls() const { return writeCalls_; }
    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    kernel::Kernel *kern_;
    FileRegistry *reg_;
    std::uint64_t readCalls_ = 0;
    std::uint64_t writeCalls_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

} // namespace vpp::uio

#endif // VPP_UIO_BLOCK_IO_H
