#include "uio/block_io.h"

#include <algorithm>

namespace vpp::uio {

using kernel::AccessType;
using kernel::SegmentId;

sim::Task<std::uint64_t>
BlockIo::read(kernel::Process &p, FileId f, std::uint64_t offset,
              std::span<std::byte> out)
{
    SegmentId seg = reg_->segmentOf(f);
    if (seg == kernel::kInvalidSegment)
        throw kernel::KernelError(kernel::KernelErrc::BadSegment,
                                  "file not cached");
    const std::uint64_t size = reg_->sizeOf(f);
    if (offset >= size)
        co_return 0;
    const std::uint64_t want =
        std::min<std::uint64_t>(out.size(), size - offset);
    const auto &cost = kern_->config().cost;
    const std::uint32_t unit = kern_->segment(seg).pageSize();

    std::uint64_t done = 0;
    while (done < want) {
        std::uint64_t pos = offset + done;
        kernel::PageIndex page = pos / unit;
        std::uint64_t in_page = pos % unit;
        std::uint64_t n = std::min<std::uint64_t>(unit - in_page,
                                                  want - done);
        ++readCalls_;
        co_await kern_->simulation().delay(cost.syscall + cost.uioLookup);
        co_await kern_->touchSegment(p, seg, page, AccessType::Read);
        kern_->readPageData(seg, page, in_page, out.subspan(done, n));
        co_await kern_->chargeCopy(n);
        done += n;
    }
    bytesRead_ += done;
    co_return done;
}

sim::Task<std::uint64_t>
BlockIo::write(kernel::Process &p, FileId f, std::uint64_t offset,
               std::span<const std::byte> data)
{
    SegmentId seg = reg_->segmentOf(f);
    if (seg == kernel::kInvalidSegment)
        throw kernel::KernelError(kernel::KernelErrc::BadSegment,
                                  "file not cached");
    const auto &cost = kern_->config().cost;
    const std::uint32_t unit = kern_->segment(seg).pageSize();

    std::uint64_t done = 0;
    while (done < data.size()) {
        std::uint64_t pos = offset + done;
        kernel::PageIndex page = pos / unit;
        std::uint64_t in_page = pos % unit;
        std::uint64_t n = std::min<std::uint64_t>(unit - in_page,
                                                  data.size() - done);
        ++writeCalls_;
        co_await kern_->simulation().delay(cost.syscall +
                                           cost.uioWriteExtra);
        co_await kern_->touchSegment(p, seg, page, AccessType::Write);
        kern_->writePageData(seg, page, in_page, data.subspan(done, n));
        co_await kern_->chargeCopy(n);
        done += n;
    }
    bytesWritten_ += done;
    reg_->updateSize(f, offset + data.size());
    co_return done;
}

} // namespace vpp::uio
