/**
 * @file
 * Backing-storage file server.
 *
 * The paper's V++ workstation was diskless; file storage was provided
 * by a server reached over the network, and cached locally as segments.
 * This FileServer stands in for the remote server plus its disk: block
 * reads and writes cost a request overhead plus disk time. File bytes
 * are stored sparsely so large files cost host memory only for chunks
 * actually written.
 */

#ifndef VPP_UIO_FILE_SERVER_H
#define VPP_UIO_FILE_SERVER_H

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/buf.h"
#include "hw/disk.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace vpp::uio {

using FileId = std::uint32_t;

constexpr FileId kInvalidFile = ~FileId{0};

class FileServer
{
  public:
    FileServer(sim::Simulation &s, hw::Disk &disk,
               sim::Duration request_overhead)
        : sim_(&s), disk_(&disk), requestOverhead_(request_overhead)
    {}

    FileId
    createFile(std::string name, std::uint64_t size)
    {
        FileId id = nextFile_++;
        files_[id] = File{std::move(name), size, {}};
        return id;
    }

    bool exists(FileId f) const { return files_.count(f) != 0; }
    std::uint64_t fileSize(FileId f) const { return fileOrThrow(f).size; }
    const std::string &fileName(FileId f) const
    {
        return fileOrThrow(f).name;
    }

    void
    resizeFile(FileId f, std::uint64_t size)
    {
        fileOrThrow(f).size = size;
    }

    /** Server read: request overhead + disk access. */
    sim::Task<>
    readBlock(FileId f, std::uint64_t offset, std::span<std::byte> out)
    {
        readNow(f, offset, out);
        co_await chargeRead(out.size());
    }

    /** Server write: request overhead + disk access. */
    sim::Task<>
    writeBlock(FileId f, std::uint64_t offset,
               std::span<const std::byte> data)
    {
        writeNow(f, offset, data);
        co_await chargeWrite(data.size());
    }

    /** The simulated cost of a server read, without the data. */
    sim::Task<>
    chargeRead(std::uint64_t bytes)
    {
        co_await sim_->delay(requestOverhead_);
        co_await disk_->read(bytes);
    }

    /** The simulated cost of a server write, without the data. */
    sim::Task<>
    chargeWrite(std::uint64_t bytes)
    {
        co_await sim_->delay(requestOverhead_);
        co_await disk_->write(bytes);
    }

    /** Functional read with no simulated time (setup, verification). */
    void readNow(FileId f, std::uint64_t offset,
                 std::span<std::byte> out) const;

    /** Functional write with no simulated time (setup, verification). */
    void writeNow(FileId f, std::uint64_t offset,
                  std::span<const std::byte> data);

    /**
     * Refcounted handle to the chunk-aligned range [offset, offset+len)
     * with no simulated time or byte copy when the range is exactly one
     * chunk. A null ref means the range reads as zeroes. Unaligned or
     * multi-chunk ranges fall back to copying into a fresh buffer.
     */
    hw::BufRef shareNow(FileId f, std::uint64_t offset,
                        std::uint64_t len) const;

    /**
     * Publish @p buf as the file bytes at the chunk-aligned range
     * [offset, offset+len) — the zero-copy counterpart of writeNow. A
     * null @p buf stores zeroes (the chunk is dropped, staying sparse).
     * Unaligned or non-chunk-sized ranges fall back to writeNow.
     */
    void adoptNow(FileId f, std::uint64_t offset, std::uint64_t len,
                  hw::BufRef buf);

    hw::Disk &disk() { return *disk_; }

  private:
    // One chunk per page frame, so the paging path (uio/paging.h) can
    // move whole-chunk buffers between frames and files by reference.
    static constexpr std::uint64_t kChunk = 4096;

    struct File
    {
        std::string name;
        std::uint64_t size = 0;
        std::map<std::uint64_t, hw::BufRef> chunks;
    };

    File &fileOrThrow(FileId f);
    const File &fileOrThrow(FileId f) const;

    sim::Simulation *sim_;
    hw::Disk *disk_;
    sim::Duration requestOverhead_;
    FileId nextFile_ = 1;
    std::unordered_map<FileId, File> files_;
};

} // namespace vpp::uio

#endif // VPP_UIO_FILE_SERVER_H
