#include "uio/paging.h"

#include <vector>

namespace vpp::uio {

namespace {

kernel::PageEntry &
entryOrThrow(kernel::Kernel &k, kernel::SegmentId seg,
             kernel::PageIndex page, const char *what)
{
    kernel::PageEntry *e = k.segment(seg).findPage(page);
    if (!e)
        throw kernel::KernelError(kernel::KernelErrc::PageMissing, what);
    return *e;
}

/**
 * Charge one server transfer (read or write), absorbing injected disk
 * errors with bounded retry + doubling backoff. Error-free transfers
 * take exactly one charge with no extra events.
 */
sim::Task<>
chargeWithRetry(kernel::Kernel &k, FileServer &srv, std::uint64_t bytes,
                bool is_write, const char *what)
{
    sim::Duration backoff = kIoRetryBackoff;
    for (int attempt = 1;; ++attempt) {
        // co_await is not permitted inside a catch handler, so the
        // failure is latched and the backoff runs after the try block.
        bool failed = false;
        std::string err;
        try {
            if (is_write)
                co_await srv.chargeWrite(bytes);
            else
                co_await srv.chargeRead(bytes);
        } catch (const hw::DiskError &e) {
            failed = true;
            err = e.what();
        }
        if (!failed)
            co_return;
        ++k.stats().ioErrors;
        if (attempt >= kMaxIoRetries) {
            throw kernel::KernelError(
                kernel::KernelErrc::IoError,
                std::string(what) + ": " + err + " after " +
                    std::to_string(attempt) + " attempts");
        }
        ++k.stats().ioRetries;
        srv.disk().noteRetry();
        co_await k.simulation().delay(backoff);
        backoff *= 2;
    }
}

} // namespace

void
pageInNow(kernel::Kernel &k, FileServer &srv, FileId f,
          std::uint64_t offset, kernel::SegmentId seg,
          kernel::PageIndex page)
{
    kernel::PageEntry &e = entryOrThrow(k, seg, page, "pageIn");
    hw::PhysicalMemory &pm = k.memory();
    const std::uint32_t fs = pm.frameSize();
    const std::uint32_t fpp = k.segment(seg).pageSize() / fs;
    for (std::uint32_t i = 0; i < fpp; ++i)
        pm.adoptFrame(e.frame + i,
                      srv.shareNow(f, offset + i * std::uint64_t{fs}, fs));
}

void
pageOutNow(kernel::Kernel &k, FileServer &srv, FileId f,
           std::uint64_t offset, kernel::SegmentId seg,
           kernel::PageIndex page)
{
    kernel::PageEntry &e = entryOrThrow(k, seg, page, "pageOut");
    hw::PhysicalMemory &pm = k.memory();
    const std::uint32_t fs = pm.frameSize();
    const std::uint32_t fpp = k.segment(seg).pageSize() / fs;
    for (std::uint32_t i = 0; i < fpp; ++i)
        srv.adoptNow(f, offset + i * std::uint64_t{fs}, fs,
                     pm.shareFrame(e.frame + i));
}

sim::Task<>
pageIn(kernel::Kernel &k, FileServer &srv, FileId f,
       std::uint64_t offset, kernel::SegmentId seg,
       kernel::PageIndex page)
{
    // Snapshot the file bytes on entry (refcounted, no copy), charge the
    // transfer, then install — the timeline readBlock-into-a-buffer +
    // writePageData always had. Copy-on-write keeps the snapshot stable
    // if the chunks are rewritten during the transfer.
    hw::PhysicalMemory &pm = k.memory();
    const std::uint32_t fs = pm.frameSize();
    const std::uint32_t ps = k.segment(seg).pageSize();
    const std::uint32_t fpp = ps / fs;
    std::vector<hw::BufRef> bufs;
    bufs.reserve(fpp);
    for (std::uint32_t i = 0; i < fpp; ++i)
        bufs.push_back(
            srv.shareNow(f, offset + i * std::uint64_t{fs}, fs));
    co_await chargeWithRetry(k, srv, ps, false, "pageIn");
    kernel::PageEntry &e = entryOrThrow(k, seg, page, "pageIn");
    for (std::uint32_t i = 0; i < fpp; ++i)
        pm.adoptFrame(e.frame + i, std::move(bufs[i]));
}

sim::Task<>
pageOut(kernel::Kernel &k, FileServer &srv, FileId f,
        std::uint64_t offset, kernel::SegmentId seg,
        kernel::PageIndex page)
{
    // Snapshot the page on entry, charge the kernel copy, publish, then
    // charge the server write — the timeline of readPageData +
    // chargeCopy + writeBlock.
    hw::PhysicalMemory &pm = k.memory();
    const std::uint32_t fs = pm.frameSize();
    const std::uint32_t ps = k.segment(seg).pageSize();
    const std::uint32_t fpp = ps / fs;
    std::vector<hw::BufRef> bufs;
    bufs.reserve(fpp);
    {
        kernel::PageEntry &e = entryOrThrow(k, seg, page, "pageOut");
        for (std::uint32_t i = 0; i < fpp; ++i)
            bufs.push_back(pm.shareFrame(e.frame + i));
    }
    co_await k.chargeCopy(ps);
    for (std::uint32_t i = 0; i < fpp; ++i)
        srv.adoptNow(f, offset + i * std::uint64_t{fs}, fs,
                     std::move(bufs[i]));
    co_await chargeWithRetry(k, srv, ps, true, "pageOut");
}

} // namespace vpp::uio
