/**
 * @file
 * V-style synchronous message passing (Send / Receive / Reply).
 *
 * A ServerPort<Req, Resp> connects client coroutines to a server
 * coroutine. call() charges the send-side cost (message + context
 * switch), blocks until the server replies, then charges the reply-side
 * cost. This models the paper's separate-process manager communication;
 * same-process upcalls bypass ports entirely (kernel charges the upcall
 * cost and invokes the handler inline).
 */

#ifndef VPP_IPC_PORT_H
#define VPP_IPC_PORT_H

#include <cstdint>
#include <utility>
#include <vector>

#include "hw/config.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace vpp::ipc {

/** Per-direction cost of a synchronous call. */
struct CallCost
{
    sim::Duration send;  ///< charged before the server sees the request
    sim::Duration reply; ///< charged before the client resumes

    static CallCost
    fromMachine(const hw::MachineConfig &m)
    {
        return CallCost{m.cost.ipcSend + m.cost.contextSwitch,
                        m.cost.ipcReply + m.cost.contextSwitch};
    }
};

template <typename Req, typename Resp>
class ServerPort
{
  public:
    ServerPort(sim::Simulation &s, CallCost cost)
        : sim_(&s), cost_(cost), queue_(s), batchQueue_(s)
    {}

    /** Client side: synchronous remote call. */
    sim::Task<Resp>
    call(Req req)
    {
        ++calls_;
        co_await sim_->delay(cost_.send);
        sim::Promise<Resp> promise(*sim_);
        auto fut = promise.future();
        queue_.send(Pending{std::move(req), std::move(promise)});
        Resp resp = co_await fut;
        co_await sim_->delay(cost_.reply);
        co_return resp;
    }

    /**
     * Server side: wait for the next request. The returned Pending
     * carries the request and the promise to fulfil as the reply.
     */
    struct Pending
    {
        Req request;
        sim::Promise<Resp> reply;
    };

    sim::Task<Pending>
    receive()
    {
        co_return co_await queue_.recv();
    }

    /**
     * Batched request: one Send/Reply crossing carries every request
     * in @p reqs (MachineConfig::faultCoalescing analogue at the IPC
     * layer). The send and reply costs are charged once for the whole
     * vector, and the server answers all of them with one reply.
     */
    struct PendingBatch
    {
        std::vector<Req> requests;
        sim::Promise<std::vector<Resp>> reply;
    };

    sim::Task<std::vector<Resp>>
    callBatch(std::vector<Req> reqs)
    {
        ++calls_;
        ++batchCalls_;
        batched_ += reqs.size();
        co_await sim_->delay(cost_.send);
        sim::Promise<std::vector<Resp>> promise(*sim_);
        auto fut = promise.future();
        batchQueue_.send(
            PendingBatch{std::move(reqs), std::move(promise)});
        std::vector<Resp> resps = co_await fut;
        co_await sim_->delay(cost_.reply);
        co_return resps;
    }

    sim::Task<PendingBatch>
    receiveBatch()
    {
        co_return co_await batchQueue_.recv();
    }

    bool idle() const { return queue_.empty() && batchQueue_.empty(); }
    std::uint64_t calls() const { return calls_; }

    /** Requests that travelled inside a batch (not extra crossings). */
    std::uint64_t batchedRequests() const { return batched_; }

    /**
     * Crossings that carried a batch (subset of calls()); the
     * amortisation ratio is batchedRequests() / batchCalls().
     */
    std::uint64_t batchCalls() const { return batchCalls_; }

  private:
    sim::Simulation *sim_;
    CallCost cost_;
    sim::Channel<Pending> queue_;
    sim::Channel<PendingBatch> batchQueue_;
    std::uint64_t calls_ = 0;
    std::uint64_t batched_ = 0;
    std::uint64_t batchCalls_ = 0;
};

} // namespace vpp::ipc

#endif // VPP_IPC_PORT_H
