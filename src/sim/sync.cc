#include "sim/sync.h"

namespace vpp::sim {

namespace {

Task<>
runAndCount(Task<> inner, int *remaining, Condition *done,
            std::exception_ptr *firstError)
{
    try {
        co_await std::move(inner);
    } catch (...) {
        if (!*firstError)
            *firstError = std::current_exception();
    }
    if (--*remaining == 0)
        done->notifyAll();
}

} // namespace

Task<>
joinAll(Simulation &sim, std::vector<Task<>> tasks)
{
    if (tasks.empty())
        co_return;

    auto remaining = std::make_unique<int>(static_cast<int>(tasks.size()));
    auto done = std::make_unique<Condition>(sim);
    auto first_error = std::make_unique<std::exception_ptr>();

    for (auto &t : tasks) {
        sim.spawn(
            runAndCount(std::move(t), remaining.get(), done.get(),
                        first_error.get()));
    }
    while (*remaining > 0)
        co_await done->wait();
    if (*first_error)
        std::rethrow_exception(*first_error);
}

} // namespace vpp::sim
