/**
 * @file
 * Processor resources for multi-CPU simulations.
 *
 * The database study (paper §3.3) runs on 6 processors of an SGI 4D/380.
 * A CpuPool models N identical CPUs: a simulated process acquires a CPU,
 * charges compute time against it, and releases it whenever it blocks
 * (I/O, lock wait, page fault).
 */

#ifndef VPP_SIM_RESOURCE_H
#define VPP_SIM_RESOURCE_H

#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace vpp::sim {

class CpuPool
{
  public:
    CpuPool(Simulation &sim, int ncpus)
        : sim_(&sim), sem_(sim, ncpus), ncpus_(ncpus)
    {}

    /** Wait for a free CPU. Pair with release(). */
    Task<>
    acquire()
    {
        SimTime t0 = sim_->now();
        co_await sem_.acquire();
        waitTime_ += sim_->now() - t0;
        ++acquisitions_;
    }

    void release() { sem_.release(); }

    /** Charge @p d of compute time on the CPU currently held. */
    Task<>
    compute(Duration d)
    {
        busyTime_ += d;
        co_await sim_->delay(d);
    }

    int ncpus() const { return ncpus_; }
    int idle() const { return sem_.available(); }
    std::int64_t queued() const { return sem_.waiting(); }

    /** Aggregate busy time across all CPUs. */
    Duration busyTime() const { return busyTime_; }

    /** Total time processes spent waiting for a CPU. */
    Duration waitTime() const { return waitTime_; }

    std::uint64_t acquisitions() const { return acquisitions_; }

    /** Mean utilisation over [0, now] across the pool. */
    double
    utilization() const
    {
        SimTime t = sim_->now();
        if (t <= 0)
            return 0.0;
        return static_cast<double>(busyTime_) /
               (static_cast<double>(t) * ncpus_);
    }

  private:
    Simulation *sim_;
    Semaphore sem_;
    int ncpus_;
    Duration busyTime_ = 0;
    Duration waitTime_ = 0;
    std::uint64_t acquisitions_ = 0;
};

/** RAII helper: holds a CPU from the pool for a coroutine scope. */
class CpuGuard
{
  public:
    explicit CpuGuard(CpuPool &pool) : pool_(&pool) {}

    CpuGuard(const CpuGuard &) = delete;
    CpuGuard &operator=(const CpuGuard &) = delete;

    ~CpuGuard()
    {
        if (held_)
            pool_->release();
    }

    Task<>
    acquire()
    {
        co_await pool_->acquire();
        held_ = true;
    }

    /** Release the CPU early (e.g. before blocking on a lock). */
    void
    release()
    {
        if (held_) {
            pool_->release();
            held_ = false;
        }
    }

    bool held() const { return held_; }

  private:
    CpuPool *pool_;
    bool held_ = false;
};

} // namespace vpp::sim

#endif // VPP_SIM_RESOURCE_H
