/**
 * @file
 * Simulated time for the discrete-event engine.
 *
 * Time is kept in integer nanoseconds. The paper reports microseconds
 * (Table 1), milliseconds (Tables 3-4) and seconds (Table 2); nanosecond
 * resolution lets primitive costs compose without rounding drift.
 */

#ifndef VPP_SIM_TIME_H
#define VPP_SIM_TIME_H

#include <cstdint>

namespace vpp::sim {

/** Simulated time in nanoseconds since simulation start. */
using SimTime = std::int64_t;

/** A span of simulated time in nanoseconds. */
using Duration = std::int64_t;

constexpr Duration
nsec(double n)
{
    return static_cast<Duration>(n);
}

constexpr Duration
usec(double u)
{
    return static_cast<Duration>(u * 1e3);
}

constexpr Duration
msec(double m)
{
    return static_cast<Duration>(m * 1e6);
}

constexpr Duration
sec(double s)
{
    return static_cast<Duration>(s * 1e9);
}

constexpr double
toUsec(Duration d)
{
    return static_cast<double>(d) / 1e3;
}

constexpr double
toMsec(Duration d)
{
    return static_cast<double>(d) / 1e6;
}

constexpr double
toSec(Duration d)
{
    return static_cast<double>(d) / 1e9;
}

} // namespace vpp::sim

#endif // VPP_SIM_TIME_H
