/**
 * @file
 * Synchronisation primitives for simulated processes.
 *
 * All primitives are cooperative and single-threaded: the simulation is
 * deterministic, so there is no data-race concern, only ordering. Every
 * resumption goes through the event queue at the current timestamp so
 * that wakeup order is FIFO and independent of who calls notify.
 */

#ifndef VPP_SIM_SYNC_H
#define VPP_SIM_SYNC_H

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/simulation.h"
#include "sim/task.h"
#include "sim/time.h"

namespace vpp::sim {

namespace detail {

/**
 * Waiter bookkeeping shared by both FutureState specialisations. The
 * overwhelmingly common case is a single awaiter, which lives in an
 * inline slot; only a second concurrent awaiter touches the heap.
 * Wakeup order stays FIFO: the inline slot is always the first to
 * have suspended and is always resumed first.
 */
struct FutureWaiters
{
    Simulation *sim;
    bool ready = false;
    std::coroutine_handle<> first = nullptr;
    std::vector<std::coroutine_handle<>> rest;

    void
    add(std::coroutine_handle<> h)
    {
        if (!first)
            first = h;
        else
            rest.push_back(h);
    }

    void
    fire()
    {
        ready = true;
        if (first) {
            sim->scheduleResume(sim->now(), first);
            first = nullptr;
        }
        for (auto h : rest)
            sim->scheduleResume(sim->now(), h);
        rest.clear();
    }
};

template <typename T>
struct FutureState : FutureWaiters
{
    std::optional<T> value;
    std::exception_ptr error;
};

template <>
struct FutureState<void> : FutureWaiters
{
    std::exception_ptr error;
};

} // namespace detail

/**
 * One-shot future. Multiple coroutines may await the same future; all
 * are woken when the paired Promise is fulfilled. T must be copyable
 * (results are small messages in this codebase).
 */
template <typename T = void>
class Future
{
  public:
    Future() = default;

    explicit Future(std::shared_ptr<detail::FutureState<T>> st)
        : state_(std::move(st))
    {}

    bool valid() const { return state_ != nullptr; }
    bool ready() const { return state_ && state_->ready; }

    auto
    operator co_await() const
    {
        struct Awaiter
        {
            bool await_ready() const { return st->ready; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                st->add(h);
            }

            T
            await_resume()
            {
                if (st->error)
                    std::rethrow_exception(st->error);
                if constexpr (!std::is_void_v<T>)
                    return *st->value;
            }

            std::shared_ptr<detail::FutureState<T>> st;
        };
        if (!state_)
            throw SimPanic("await on invalid Future");
        return Awaiter{state_};
    }

  private:
    std::shared_ptr<detail::FutureState<T>> state_;
};

/** Producer side of a Future. */
template <typename T = void>
class Promise
{
  public:
    explicit Promise(Simulation &sim)
        : state_(std::allocate_shared<detail::FutureState<T>>(
              detail::PoolAlloc<detail::FutureState<T>>{}))
    {
        state_->sim = &sim;
    }

    Future<T> future() const { return Future<T>(state_); }

    template <typename U = T>
    void
    setValue(U &&v)
        requires(!std::is_void_v<T>)
    {
        if (state_->ready)
            throw SimPanic("Promise fulfilled twice");
        state_->value.emplace(std::forward<U>(v));
        state_->fire();
    }

    void
    setValue()
        requires std::is_void_v<T>
    {
        if (state_->ready)
            throw SimPanic("Promise fulfilled twice");
        state_->fire();
    }

    void
    setError(std::exception_ptr e)
    {
        if (state_->ready)
            throw SimPanic("Promise fulfilled twice");
        state_->error = std::move(e);
        state_->fire();
    }

    bool fulfilled() const { return state_->ready; }

  private:
    std::shared_ptr<detail::FutureState<T>> state_;
};

/** Counting semaphore with FIFO wakeup. */
class Semaphore
{
  public:
    Semaphore(Simulation &sim, int initial)
        : sim_(&sim), count_(initial)
    {}

    auto
    acquire()
    {
        struct Awaiter
        {
            bool
            await_ready()
            {
                if (s->count_ > 0) {
                    --s->count_;
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                s->waiters_.push_back(h);
            }

            void await_resume() const noexcept {}

            Semaphore *s;
        };
        return Awaiter{this};
    }

    bool
    tryAcquire()
    {
        if (count_ > 0) {
            --count_;
            return true;
        }
        return false;
    }

    void
    release()
    {
        if (!waiters_.empty()) {
            auto h = waiters_.front();
            waiters_.pop_front();
            // The permit is handed directly to the waiter.
            sim_->scheduleResume(sim_->now(), h);
        } else {
            ++count_;
        }
    }

    int available() const { return count_; }
    int waiting() const { return static_cast<int>(waiters_.size()); }

  private:
    Simulation *sim_;
    int count_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/** Mutual exclusion built on Semaphore; use with ScopedLock. */
class SimMutex
{
  public:
    explicit SimMutex(Simulation &sim) : sem_(sim, 1) {}

    Task<>
    lock()
    {
        co_await sem_.acquire();
    }

    void unlock() { sem_.release(); }

    bool tryLock() { return sem_.tryAcquire(); }

  private:
    Semaphore sem_;
};

/**
 * Condition variable for cooperative coroutines. There is no associated
 * mutex; awaiters must re-check their predicate on wakeup:
 *   while (!pred) co_await cond.wait();
 */
class Condition
{
  public:
    explicit Condition(Simulation &sim) : sim_(&sim) {}

    auto
    wait()
    {
        struct Awaiter
        {
            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                c->waiters_.push_back(h);
            }

            void await_resume() const noexcept {}

            Condition *c;
        };
        return Awaiter{this};
    }

    void
    notifyOne()
    {
        if (!waiters_.empty()) {
            auto h = waiters_.front();
            waiters_.pop_front();
            sim_->scheduleResume(sim_->now(), h);
        }
    }

    void
    notifyAll()
    {
        while (!waiters_.empty())
            notifyOne();
    }

    int waiting() const { return static_cast<int>(waiters_.size()); }

  private:
    Simulation *sim_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * Unbounded FIFO channel of messages; recv suspends when empty. Used
 * for request queues (file server, separate-process managers).
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(Simulation &sim) : sim_(&sim), cond_(sim) {}

    void
    send(T msg)
    {
        queue_.push_back(std::move(msg));
        cond_.notifyOne();
    }

    Task<T>
    recv()
    {
        while (queue_.empty())
            co_await cond_.wait();
        T msg = std::move(queue_.front());
        queue_.pop_front();
        co_return msg;
    }

    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }

  private:
    Simulation *sim_;
    Condition cond_;
    std::deque<T> queue_;
};

/**
 * Run a batch of tasks concurrently; completes when all have finished.
 * Root-task errors are rethrown from the returned task (first error).
 */
Task<> joinAll(Simulation &sim, std::vector<Task<>> tasks);

} // namespace vpp::sim

#endif // VPP_SIM_SYNC_H
