#include "sim/simulation.h"

#include <utility>

namespace vpp::sim {

/** Private-access shim for runRoot's root-frame bookkeeping. */
struct RootTracker
{
    static void
    add(Simulation &s, void *frame)
    {
        s.roots_.insert(frame);
    }

    static void
    remove(Simulation &s, void *frame)
    {
        s.roots_.erase(frame);
    }
};

namespace {

/**
 * Self-destructing coroutine used to own a detached root task. Its frame
 * is released automatically when the wrapped task finishes; frames that
 * never finish (a process blocked forever on a future or lock) stay
 * registered with the Simulation, which destroys them on teardown.
 */
struct Detached
{
    struct promise_type : detail::PooledFrame
    {
        Detached get_return_object() { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() noexcept { std::terminate(); }
    };
};

/** Awaitable that hands a coroutine its own handle without suspending. */
struct SelfHandle
{
    std::coroutine_handle<> h;
    bool await_ready() noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> me) noexcept
    {
        h = me;
        return false;
    }

    std::coroutine_handle<> await_resume() noexcept { return h; }
};

Detached
runRoot(Simulation *sim, Task<> inner, int *live,
        std::vector<std::exception_ptr> *errors)
{
    auto self = co_await SelfHandle{};
    RootTracker::add(*sim, self.address());
    ++*live;
    try {
        co_await std::move(inner);
    } catch (...) {
        errors->push_back(std::current_exception());
    }
    --*live;
    RootTracker::remove(*sim, self.address());
}

} // namespace

Simulation::~Simulation()
{
    // Destroy root frames that never finished (processes still blocked
    // on a future, lock or channel when the run ended). Each root frame
    // owns its await chain, so destruction cascades to every suspended
    // child. Locals' destructors may schedule wakeups; those events are
    // swept with the queues below, never fired.
    auto roots = std::move(roots_);
    roots_.clear();
    for (void *frame : roots)
        std::coroutine_handle<>::from_address(frame).destroy();

    // Destroy any slab-held callables still queued. Inline payloads
    // are trivially destructible by construction; queued coroutine
    // resumptions are not destroyed here because their frames are
    // owned by the tasks that spawned them.
    while (!nowQueue_.empty()) {
        if (nowQueue_.front().kind == Event::kSlot)
            releaseSlot(nowQueue_.front().slot);
        nowQueue_.pop_front();
    }
    if (nextValid_ && next_.kind == Event::kSlot)
        releaseSlot(next_.slot);
    while (!heap_.empty()) {
        if (heap_.top().kind == Event::kSlot)
            releaseSlot(heap_.top().slot);
        heap_.pop();
    }
}

void
Simulation::spawn(Task<> t)
{
    runRoot(this, std::move(t), &liveTasks_, &errors_);
}

void
Simulation::rethrowPendingSlow()
{
    auto e = errors_.front();
    errors_.clear();
    std::rethrow_exception(e);
}

void
Simulation::fireEvent(Event &ev)
{
    switch (ev.kind) {
      case Event::kCoroutine:
        std::coroutine_handle<>::from_address(ev.coro).resume();
        return;
      case Event::kInline:
        // `ev` is the caller's stack copy, so the payload stays valid
        // however the queues mutate during the call.
        ev.invoke(ev.payload);
        return;
      case Event::kSlot: {
        // The callback is destroyed and its slot recycled even if it
        // throws; slot addresses are stable while the callback runs
        // (the slab is a deque), so it may freely schedule further
        // events.
        struct SlotGuard
        {
            ~SlotGuard() { sim->releaseSlot(idx); }
            Simulation *sim;
            std::uint32_t idx;
        } guard{this, ev.slot};
        CallbackSlot &s = slots_[ev.slot];
        s.invoke(s.storage);
        return;
      }
    }
}

SimTime
Simulation::drainUntil(SimTime deadline)
{
    rethrowPending();
    for (;;) {
        Event ev;
        // next_ is the minimum of all future events, so it stands in
        // for the heap top; the heap refills it on consumption.
        if (nextValid_ &&
            (next_.when == now_ ||
             (nowQueue_.empty() && next_.when <= deadline))) {
            ev = next_;
            if (!heap_.empty()) {
                next_ = heap_.top();
                heap_.pop();
            } else {
                nextValid_ = false;
            }
            now_ = ev.when;
        } else if (!nowQueue_.empty() && now_ <= deadline) {
            ev = nowQueue_.front();
            nowQueue_.pop_front();
        } else {
            break;
        }
        ++eventsRun_;
        fireEvent(ev);
        rethrowPending();
    }
    return now_;
}

SimTime
Simulation::run()
{
    return drainUntil(std::numeric_limits<SimTime>::max());
}

SimTime
Simulation::runUntil(SimTime deadline)
{
    drainUntil(deadline);
    if (now_ < deadline)
        now_ = deadline;
    return now_;
}

} // namespace vpp::sim
