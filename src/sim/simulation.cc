#include "sim/simulation.h"

#include <utility>

namespace vpp::sim {

namespace {

/**
 * Self-destructing coroutine used to own a detached root task. Its frame
 * is released automatically when the wrapped task finishes.
 */
struct Detached
{
    struct promise_type
    {
        Detached get_return_object() { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() noexcept { std::terminate(); }
    };
};

Detached
runRoot(Simulation *sim, Task<> inner, int *live,
        std::vector<std::exception_ptr> *errors)
{
    (void)sim;
    ++*live;
    try {
        co_await std::move(inner);
    } catch (...) {
        errors->push_back(std::current_exception());
    }
    --*live;
}

} // namespace

void
Simulation::spawn(Task<> t)
{
    runRoot(this, std::move(t), &liveTasks_, &errors_);
}

void
Simulation::rethrowPending()
{
    if (!errors_.empty()) {
        auto e = errors_.front();
        errors_.clear();
        std::rethrow_exception(e);
    }
}

SimTime
Simulation::run()
{
    rethrowPending();
    while (!queue_.empty()) {
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        ++eventsRun_;
        ev.fn();
        rethrowPending();
    }
    return now_;
}

SimTime
Simulation::runUntil(SimTime deadline)
{
    rethrowPending();
    while (!queue_.empty() && queue_.top().when <= deadline) {
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        ++eventsRun_;
        ev.fn();
        rethrowPending();
    }
    if (now_ < deadline)
        now_ = deadline;
    return now_;
}

} // namespace vpp::sim
