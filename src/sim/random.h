/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * xoshiro256++ seeded via splitmix64. Self-contained (no <random>
 * engines) so that streams are reproducible across standard libraries,
 * which keeps benchmark tables stable.
 */

#ifndef VPP_SIM_RANDOM_H
#define VPP_SIM_RANDOM_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace vpp::sim {

class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &s : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            s = z ^ (z >> 31);
        }
    }

    /** Raw 64 random bits (xoshiro256++). */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const std::uint64_t result = rotl(state_[0] + state_[3], 23) +
                                     state_[0];
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). */
    std::uint64_t
    below(std::uint64_t n)
    {
        assert(n > 0);
        // Lemire's bounded-range rejection method.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        std::uint64_t l = static_cast<std::uint64_t>(m);
        if (l < n) {
            std::uint64_t t = -n % n;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * n;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    bool chance(double p) { return uniform() < p; }

    /** Exponential with mean @p mean (Poisson inter-arrival times). */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

    /** Normal via Box-Muller. */
    double
    normal(double mu, double sigma)
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        return mu + sigma * std::sqrt(-2.0 * std::log(u1)) *
                        std::cos(2.0 * M_PI * u2);
    }

    /**
     * Zipf-distributed rank in [0, n) with exponent @p s, used for
     * skewed database page access. Inverse-CDF over a precomputed
     * table is the caller's job for hot paths; this is the simple
     * rejection-free cumulative method for moderate n.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s)
    {
        // Approximate inverse-CDF sampling (Gray et al. style).
        double zetan = zeta(n, s);
        double u = uniform();
        double sum = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i), s);
            if (sum / zetan >= u)
                return i - 1;
        }
        return n - 1;
    }

    /** Pick a uniformly random element index of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        assert(!v.empty());
        return v[below(v.size())];
    }

  private:
    static double
    zeta(std::uint64_t n, double s)
    {
        double z = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i)
            z += 1.0 / std::pow(static_cast<double>(i), s);
        return z;
    }

    std::uint64_t state_[4];
};

} // namespace vpp::sim

#endif // VPP_SIM_RANDOM_H
