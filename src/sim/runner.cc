#include "sim/runner.h"

#include <chrono>
#include <cstdlib>

#include "sim/mem_accounting.h"

namespace vpp::sim {

unsigned
Runner::defaultJobs()
{
    if (const char *env = std::getenv("VPP_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc != 0 ? hc : 1;
}

Runner::Runner(unsigned threads)
{
    if (threads == 0)
        threads = defaultJobs();
    queues_.resize(threads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

Runner::~Runner()
{
    wait();
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

std::size_t
Runner::submit(std::function<void()> job)
{
    std::size_t index;
    {
        std::lock_guard<std::mutex> lk(mu_);
        index = submitted_++;
        slots_.emplace_back();
        queues_[nextQueue_].push_back(Entry{index, std::move(job)});
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
    }
    workCv_.notify_one();
    return index;
}

void
Runner::wait()
{
    std::unique_lock<std::mutex> lk(mu_);
    idleCv_.wait(lk, [this] { return doneJobs_ == submitted_; });
}

std::size_t
Runner::jobCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return submitted_;
}

const RunSlot &
Runner::slot(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return slots_.at(i);
}

std::size_t
Runner::failedCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return failed_;
}

bool
Runner::takeWork(unsigned self, Entry &out)
{
    // Own work first, oldest first.
    if (!queues_[self].empty()) {
        out = std::move(queues_[self].front());
        queues_[self].pop_front();
        return true;
    }
    // Steal from the back of the fullest other deque.
    std::size_t victim = queues_.size();
    std::size_t best = 0;
    for (std::size_t q = 0; q < queues_.size(); ++q) {
        if (q != self && queues_[q].size() > best) {
            best = queues_[q].size();
            victim = q;
        }
    }
    if (victim == queues_.size())
        return false;
    out = std::move(queues_[victim].back());
    queues_[victim].pop_back();
    return true;
}

void
Runner::workerLoop(unsigned self)
{
    for (;;) {
        Entry e;
        {
            std::unique_lock<std::mutex> lk(mu_);
            workCv_.wait(lk, [this, self] {
                if (stop_)
                    return true;
                for (const auto &q : queues_)
                    if (!q.empty())
                        return true;
                return false;
            });
            if (!takeWork(self, e)) {
                if (stop_)
                    return;
                continue;
            }
        }
        runOne(e);
    }
}

void
Runner::runOne(Entry &e)
{
    auto t0 = std::chrono::steady_clock::now();
    std::int64_t base = mem::threadCurrentBytes();
    mem::resetThreadPeak();

    std::exception_ptr err;
    try {
        e.fn();
    } catch (...) {
        err = std::current_exception();
    }

    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    std::int64_t peak =
        mem::hooksActive() ? mem::threadPeakBytes() - base : -1;

    {
        std::lock_guard<std::mutex> lk(mu_);
        RunSlot &s = slots_[e.index];
        s.done = true;
        s.error = err;
        s.hostSeconds = secs;
        s.peakHeapBytes = peak;
        if (err)
            ++failed_;
        ++doneJobs_;
        if (progress_)
            progress_(doneJobs_, submitted_);
        if (doneJobs_ == submitted_)
            idleCv_.notify_all();
    }
}

} // namespace vpp::sim
