/**
 * @file
 * Per-thread heap accounting for the sweep runner.
 *
 * The global operator new/delete are replaced (mem_accounting.cc)
 * with thin wrappers that keep a thread-local current/peak byte
 * count. Because every simulation in a sweep lives and dies on a
 * single worker thread, the peak-above-baseline of that thread over
 * a job's lifetime is the job's peak heap footprint — the "per-run
 * RSS" a parallel sweep reports without any process-global
 * instrumentation (which could not distinguish concurrent runs).
 *
 * The hooks are compiled out under AddressSanitizer (which owns the
 * allocator) and on libcs without malloc_usable_size; hooksActive()
 * tells callers whether the numbers mean anything.
 */

#ifndef VPP_SIM_MEM_ACCOUNTING_H
#define VPP_SIM_MEM_ACCOUNTING_H

#include <cstdint>

namespace vpp::sim::mem {

/** Whether the operator new/delete hooks are compiled in. */
bool hooksActive();

/** Bytes currently allocated (and not yet freed) by this thread. */
std::int64_t threadCurrentBytes();

/** High-water mark of threadCurrentBytes() since the last reset. */
std::int64_t threadPeakBytes();

/** Restart the peak high-water mark from the current level. */
void resetThreadPeak();

/**
 * Fold the peak heap footprint of concurrently-running child threads
 * into this thread's accounted peak. A sharded run (sim/shard.h)
 * executes on worker threads whose allocations land in *their*
 * thread-local counters; without this merge the run's reported peak
 * would silently drop everything the shard workers allocated. Pass
 * the summed peak-above-baseline of all children (they ran
 * concurrently with each other and with this thread's current live
 * bytes); the thread peak becomes at least current + @p bytes.
 */
void absorbChildPeak(std::int64_t bytes);

} // namespace vpp::sim::mem

#endif // VPP_SIM_MEM_ACCOUNTING_H
