#include "sim/mem_accounting.h"

#include <cstddef>
#include <cstdlib>
#include <new>

// The hooks ride on malloc_usable_size so operator delete can charge
// the exact block size without a shadow table. Compile them out when
// a sanitizer owns the allocator or the libc lacks the call.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define VPP_MEM_HOOKS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define VPP_MEM_HOOKS 0
#endif
#endif

#ifndef VPP_MEM_HOOKS
#if defined(__GLIBC__)
#include <malloc.h>
#define VPP_MEM_HOOKS 1
#else
#define VPP_MEM_HOOKS 0
#endif
#endif

namespace {

// Zero-initialised before any dynamic initialisation runs, so the
// hooks are safe for allocations made during program startup.
thread_local std::int64_t tCurrent = 0;
thread_local std::int64_t tPeak = 0;

} // namespace

namespace vpp::sim::mem {

bool
hooksActive()
{
    return VPP_MEM_HOOKS != 0;
}

std::int64_t
threadCurrentBytes()
{
    return tCurrent;
}

std::int64_t
threadPeakBytes()
{
    return tPeak;
}

void
resetThreadPeak()
{
    tPeak = tCurrent;
}

void
absorbChildPeak(std::int64_t bytes)
{
    if (bytes <= 0)
        return;
    if (tCurrent + bytes > tPeak)
        tPeak = tCurrent + bytes;
}

} // namespace vpp::sim::mem

#if VPP_MEM_HOOKS

namespace {

void
account(void *p) noexcept
{
    tCurrent += static_cast<std::int64_t>(malloc_usable_size(p));
    if (tCurrent > tPeak)
        tPeak = tCurrent;
}

void
unaccount(void *p) noexcept
{
    if (p != nullptr)
        tCurrent -= static_cast<std::int64_t>(malloc_usable_size(p));
}

void *
allocOrHandler(std::size_t n)
{
    for (;;) {
        void *p = std::malloc(n != 0 ? n : 1);
        if (p != nullptr)
            return p;
        std::new_handler h = std::get_new_handler();
        if (h == nullptr)
            throw std::bad_alloc();
        h();
    }
}

void *
alignedAllocOrHandler(std::size_t n, std::size_t align)
{
    if (align < sizeof(void *))
        align = sizeof(void *);
    for (;;) {
        void *p = nullptr;
        if (posix_memalign(&p, align, n != 0 ? n : 1) == 0)
            return p;
        std::new_handler h = std::get_new_handler();
        if (h == nullptr)
            throw std::bad_alloc();
        h();
    }
}

} // namespace

// The array and nothrow forms fall through to these by default, and
// the default sized deletes call the unsized ones, so replacing the
// four below accounts for every ordinary allocation.

void *
operator new(std::size_t n)
{
    void *p = allocOrHandler(n);
    account(p);
    return p;
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    void *p =
        alignedAllocOrHandler(n, static_cast<std::size_t>(align));
    account(p);
    return p;
}

void
operator delete(void *p) noexcept
{
    unaccount(p);
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    unaccount(p);
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    unaccount(p);
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    unaccount(p);
    std::free(p);
}

#endif // VPP_MEM_HOOKS
