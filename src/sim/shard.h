/**
 * @file
 * Sharded discrete-event engine: deterministic intra-run parallelism.
 *
 * A ShardedSimulation partitions one simulated system into N logical
 * shards, each a complete Simulation with its own clock, event queue
 * and sequence counter. Shards advance together in conservative
 * epochs: every epoch computes the global minimum next-event time
 * `gm` across all shards and proves the window [gm, gm + lookahead)
 * safe — `lookahead` is the minimum cross-shard communication
 * latency, so no event executed in the window can cause an effect on
 * another shard before the window's end (the horizon). Each shard
 * then drains its own queue strictly below the horizon, cross-shard
 * events are exchanged, and the next epoch begins.
 *
 * Cross-shard events travel through per-(src,dst) mailboxes. During
 * a window each mailbox has exactly one writer (the worker draining
 * the source shard); it is read only in the next epoch's merge
 * phase, after the barrier, by the worker that owns the destination
 * shard — so mailboxes need no locks, the epoch barrier itself is
 * the synchronisation. At merge time the destination sorts all
 * inbound mail in the canonical (timestamp, source-shard, sequence)
 * order and schedules it, which assigns destination sequence numbers
 * deterministically.
 *
 * Determinism contract: every ordering decision — window bounds,
 * per-shard drain order, mailbox merge order — is a pure function of
 * the logical shard structure, never of the host thread count. The
 * `workers` parameter (the --shards flag) only chooses how many host
 * threads the fixed shard->worker mapping is folded onto; output is
 * bit-identical for any value, the same contract sim::Runner pins
 * for --jobs. A run with workers == 1 executes the identical epoch
 * loop inline with no thread traffic at all.
 */

#ifndef VPP_SIM_SHARD_H
#define VPP_SIM_SHARD_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"

namespace vpp::sim {

class ShardedSimulation
{
  public:
    /**
     * Default host worker count: VPP_SHARDS from the environment if
     * set to a positive integer, else 1. Unlike the sweep runner,
     * intra-run parallelism defaults off: a sweep already uses the
     * cores across rows, and nesting both multiplies threads.
     */
    static unsigned defaultWorkers();

    /**
     * @p shards    logical shard count (fixed by the scenario).
     * @p lookahead minimum cross-shard latency, > 0. Every post()
     *              from shard A to shard B must be timestamped at
     *              least this far after A's clock; in exchange the
     *              engine can run windows of this width in parallel.
     * @p workers   host threads; 0 means defaultWorkers(). Values
     *              above the shard count are clamped.
     */
    ShardedSimulation(unsigned shards, Duration lookahead,
                      unsigned workers = 0);
    ~ShardedSimulation();

    ShardedSimulation(const ShardedSimulation &) = delete;
    ShardedSimulation &operator=(const ShardedSimulation &) = delete;

    unsigned shards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    unsigned workers() const { return workers_; }
    Duration lookahead() const { return lookahead_; }

    /** Shard @p i's private simulation (spawn/schedule onto it). */
    Simulation &shard(unsigned i) { return shards_.at(i)->sim; }

    /**
     * Deliver @p fn on shard @p dst at absolute time @p when (dst's
     * clock). Before run(), this schedules directly (setup). During
     * run() it must be called from code executing on some shard: a
     * post to the executing shard itself schedules directly; a post
     * to another shard is stamped (when, src, seq) and parked in the
     * src->dst mailbox until the epoch barrier. Cross-shard posts
     * must respect the lookahead: when >= src.now() + lookahead, or
     * SimPanic — that bound is exactly what makes the current
     * window safe to run in parallel.
     */
    template <typename F>
    void
    post(unsigned dst, SimTime when, F &&fn)
    {
        postErased(dst, when,
                   std::function<void()>(std::forward<F>(fn)));
    }

    /**
     * Run epochs until every shard's queue and every mailbox is
     * empty. Returns the maximum shard clock. The first error thrown
     * by any shard (lowest shard index wins, deterministically) is
     * rethrown here after all workers have stopped.
     */
    SimTime run();

    /** Epoch windows executed so far (deterministic). */
    std::uint64_t epochs() const { return epochs_; }

    /**
     * Hook run at the start of every epoch window, from the
     * single-threaded barrier-A completion (after the horizon is
     * proven, before any shard drains). The barrier's acquire/release
     * handshake orders it against all shard work on both sides, so it
     * is the one safe place to publish shared state that every shard
     * may read during the window — the kernel's per-segment epoch
     * snapshot uses exactly this. It fires identically at any worker
     * count (workers == 1 runs the same completion inline).
     */
    void setEpochHook(std::function<void()> hook)
    {
        epochHook_ = std::move(hook);
    }

    /**
     * Times the constructor clamped a requested worker count down to
     * the shard count (warned on stderr). Exposed for tests.
     */
    unsigned clampedWorkerRequests() const { return clamped_; }

    /** Cross-shard events posted so far (deterministic). */
    std::uint64_t crossEvents() const;

    /** Max shard clock (meaningful after run()). */
    SimTime now() const;

  private:
    /** A cross-shard event parked in a mailbox. */
    struct Mail
    {
        SimTime when;
        std::uint32_t src;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Shard
    {
        Simulation sim;
        std::uint64_t outSeq = 0; ///< stamps this shard's posts
        std::uint64_t posted = 0; ///< cross-shard posts from here
        bool dead = false;        ///< drain threw; out of the run
        std::vector<Mail> inbox;  ///< merge staging, owner-only
    };

    /**
     * Sense-reversing epoch barrier. The last arriver runs the
     * completion (single-threaded) and releases the others. Waiters
     * spin briefly — the sub-microsecond path that makes thin
     * windows affordable when every worker has its own core — and
     * then block on a condition variable, so an oversubscribed host
     * (more workers than cores) degrades to scheduler waits instead
     * of burning the very cores the shards need.
     */
    class EpochBarrier
    {
      public:
        /**
         * @p spin false skips the spin phase entirely — set when the
         * host has fewer cores than workers, where spinning only
         * steals cycles from the thread everyone is waiting for.
         */
        EpochBarrier(unsigned n, bool spin)
            : n_(n), spinLimit_(spin ? kSpinLimit : 0)
        {}

        template <typename F>
        void
        arriveAndWait(bool &localSense, F &&completion)
        {
            const bool sense = !localSense;
            localSense = sense;
            if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                n_) {
                count_.store(0, std::memory_order_relaxed);
                completion();
                release(sense);
            } else {
                for (int i = 0; i < spinLimit_; ++i) {
                    if (sense_.load(std::memory_order_acquire) ==
                        sense)
                        return;
                    cpuRelax();
                }
                blockUntil(sense);
            }
        }

      private:
        static constexpr int kSpinLimit = 1 << 10;

        static void cpuRelax();
        void release(bool sense);
        void blockUntil(bool sense);

        unsigned n_;
        int spinLimit_;
        std::atomic<unsigned> count_{0};
        std::atomic<bool> sense_{false};
        std::mutex mu_;
        std::condition_variable cv_;
    };

    void postErased(unsigned dst, SimTime when,
                    std::function<void()> fn);

    void workerLoop(unsigned w, unsigned stride);
    void mergeShard(unsigned s);
    void drainShard(unsigned s);
    void computeHorizon();

    Duration lookahead_;
    unsigned workers_;
    std::vector<std::unique_ptr<Shard>> shards_;
    /// Mailboxes, [src * shards + dst]. Single writer per window,
    /// read only across the epoch barrier.
    std::vector<std::vector<Mail>> mail_;
    std::vector<SimTime> shardMin_; ///< per-shard next-event time
    std::vector<std::exception_ptr> shardErrors_;
    std::atomic<unsigned> errorCount_{0};
    std::unique_ptr<EpochBarrier> barrierA_;
    std::unique_ptr<EpochBarrier> barrierB_;
    SimTime horizon_ = 0;
    std::uint64_t epochs_ = 0;
    std::function<void()> epochHook_;
    unsigned clamped_ = 0;
    bool done_ = false;
    bool running_ = false;
};

} // namespace vpp::sim

#endif // VPP_SIM_SHARD_H
