/**
 * @file
 * Parallel sweep runner: a fixed thread pool executing independent
 * simulation jobs with bit-identical results regardless of the
 * thread count.
 *
 * The paper's evaluation is a sweep of independent simulated-machine
 * runs (per application, per manager configuration, per DB
 * scenario). Each run is deterministic; the sweep's throughput comes
 * from running many instances concurrently. (Parallelism *within*
 * one run is the sharded engine's job — sim/shard.h — and composes
 * with this pool: a row may itself fan out onto shard workers.) The
 * Runner gives
 * every submitted job a slot indexed by submission order: jobs
 * construct their own Simulation + machine + kernel, share no
 * mutable state, and write their result into their own slot, so
 * rendering the slots in order after wait() produces byte-identical
 * output whether the pool has 1 thread or 64.
 *
 * Scheduling is work-stealing over per-worker deques: submit()
 * round-robins jobs across the deques, a worker pops from the front
 * of its own deque and, when empty, steals from the back of the
 * fullest other deque. A job that throws records the exception in
 * its slot (failed(), error) without taking down the pool or
 * deadlocking wait().
 *
 * Each slot also carries the job's host-side cost: wall seconds on
 * its worker thread and peak heap bytes above the thread's baseline
 * (mem_accounting.h) — the per-run memory footprint a parallel
 * sweep could not get from process-global RSS.
 */

#ifndef VPP_SIM_RUNNER_H
#define VPP_SIM_RUNNER_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vpp::sim {

/** Per-job outcome, indexed by submission order. */
struct RunSlot
{
    bool done = false;
    std::exception_ptr error;     ///< set if the job threw
    double hostSeconds = 0;       ///< wall time on the worker thread
    std::int64_t peakHeapBytes = -1; ///< -1 if accounting unavailable

    bool failed() const { return error != nullptr; }
};

class Runner
{
  public:
    /**
     * The default worker count: VPP_JOBS from the environment if set
     * to a positive integer, else std::thread::hardware_concurrency,
     * else 1.
     */
    static unsigned defaultJobs();

    /** @p threads 0 means defaultJobs(). */
    explicit Runner(unsigned threads = 0);
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Set a callback fired (under the pool lock) after each job
     * completes, with (jobs finished, jobs submitted). Set it before
     * the first submit() — fast jobs can finish immediately.
     */
    void setProgress(std::function<void(std::size_t, std::size_t)> f)
    {
        std::lock_guard<std::mutex> lk(mu_);
        progress_ = std::move(f);
    }

    /**
     * Enqueue @p job and return its slot index (== submission
     * order). The job runs on exactly one worker thread.
     */
    std::size_t submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    std::size_t jobCount() const;

    /** Slot for job @p i; stable only once that job is done. */
    const RunSlot &slot(std::size_t i) const;

    /** Number of finished jobs whose job threw. */
    std::size_t failedCount() const;

  private:
    struct Entry
    {
        std::size_t index;
        std::function<void()> fn;
    };

    void workerLoop(unsigned self);
    bool takeWork(unsigned self, Entry &out);
    void runOne(Entry &e);

    mutable std::mutex mu_;
    std::condition_variable workCv_;
    std::condition_variable idleCv_;
    std::vector<std::deque<Entry>> queues_; ///< one per worker
    std::deque<RunSlot> slots_;             ///< stable addresses
    std::vector<std::thread> workers_;
    std::function<void(std::size_t, std::size_t)> progress_;
    std::size_t submitted_ = 0;
    std::size_t doneJobs_ = 0;
    std::size_t failed_ = 0;
    unsigned nextQueue_ = 0;
    bool stop_ = false;
};

} // namespace vpp::sim

#endif // VPP_SIM_RUNNER_H
