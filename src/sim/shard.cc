#include "sim/shard.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "sim/mem_accounting.h"

namespace vpp::sim {

namespace {

/**
 * Identifies the shard whose events are currently executing on this
 * thread, so post() can stamp the source without an explicit
 * argument. Owner pointer disambiguates nested engines.
 */
thread_local const ShardedSimulation *tlsOwner = nullptr;
thread_local unsigned tlsShard = 0;

struct ShardContext
{
    ShardContext(const ShardedSimulation *owner, unsigned s)
    {
        tlsOwner = owner;
        tlsShard = s;
    }

    ~ShardContext()
    {
        tlsOwner = nullptr;
        tlsShard = 0;
    }
};

} // namespace

void
ShardedSimulation::EpochBarrier::cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

void
ShardedSimulation::EpochBarrier::release(bool sense)
{
    // The sense flip is published under the lock so a waiter that
    // just decided to block cannot miss the notify.
    {
        std::lock_guard<std::mutex> lk(mu_);
        sense_.store(sense, std::memory_order_release);
    }
    cv_.notify_all();
}

void
ShardedSimulation::EpochBarrier::blockUntil(bool sense)
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this, sense] {
        return sense_.load(std::memory_order_acquire) == sense;
    });
}

unsigned
ShardedSimulation::defaultWorkers()
{
    if (const char *env = std::getenv("VPP_SHARDS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    return 1;
}

ShardedSimulation::ShardedSimulation(unsigned shards,
                                     Duration lookahead,
                                     unsigned workers)
    : lookahead_(lookahead)
{
    if (shards == 0)
        throw SimPanic("ShardedSimulation needs at least one shard");
    if (lookahead <= 0)
        throw SimPanic("ShardedSimulation lookahead must be > 0");
    if (workers == 0)
        workers = defaultWorkers();
    if (workers > shards) {
        // Extra workers would only sit at the barrier: each shard is
        // drained by exactly one worker per window. Clamp, but say so
        // on stderr (the diffed stdout/JSON stay byte-identical) —
        // a silently ignored --shards is a confusing way to discover
        // the scenario's shard count is the real parallelism cap.
        std::fprintf(stderr,
                     "ShardedSimulation: clamping %u workers to the "
                     "%u-shard scenario (extra workers would idle)\n",
                     workers, shards);
        ++clamped_;
    }
    workers_ = std::min(workers, shards);
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
    mail_.resize(static_cast<std::size_t>(shards) * shards);
    shardMin_.assign(shards, Simulation::kNoEvent);
    shardErrors_.assign(shards, nullptr);
}

ShardedSimulation::~ShardedSimulation() = default;

void
ShardedSimulation::postErased(unsigned dst, SimTime when,
                              std::function<void()> fn)
{
    if (dst >= shards_.size())
        throw SimPanic("post() to unknown shard");
    if (!running_) {
        // Setup is single-threaded; schedule straight onto the
        // destination, deterministically in program order.
        shards_[dst]->sim.schedule(when, std::move(fn));
        return;
    }
    if (tlsOwner != this)
        throw SimPanic("post() during run() from outside any shard");
    const unsigned src = tlsShard;
    if (dst == src) {
        shards_[src]->sim.schedule(when, std::move(fn));
        return;
    }
    Shard &from = *shards_[src];
    // The conservative window is only sound if every cross-shard
    // effect lags its cause by at least the declared lookahead.
    if (when < from.sim.now() + lookahead_)
        throw SimPanic("cross-shard post inside the lookahead window");
    mail_[static_cast<std::size_t>(src) * shards_.size() + dst]
        .push_back(Mail{when, src, from.outSeq++, std::move(fn)});
    ++from.posted;
}

void
ShardedSimulation::mergeShard(unsigned s)
{
    Shard &sh = *shards_[s];
    if (sh.dead) {
        shardMin_[s] = Simulation::kNoEvent;
        return;
    }
    sh.inbox.clear();
    const std::size_t n = shards_.size();
    for (std::size_t src = 0; src < n; ++src) {
        std::vector<Mail> &box = mail_[src * n + s];
        for (Mail &m : box)
            sh.inbox.push_back(std::move(m));
        box.clear();
    }
    if (!sh.inbox.empty()) {
        // Canonical cross-shard order: (timestamp, source shard,
        // source sequence). Scheduling in this order assigns the
        // destination's sequence numbers deterministically, so the
        // merged stream interleaves with local events identically at
        // any worker count.
        std::sort(sh.inbox.begin(), sh.inbox.end(),
                  [](const Mail &a, const Mail &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.seq < b.seq;
                  });
        try {
            for (Mail &m : sh.inbox)
                sh.sim.schedule(m.when, std::move(m.fn));
        } catch (...) {
            shardErrors_[s] = std::current_exception();
            sh.dead = true;
            errorCount_.fetch_add(1, std::memory_order_relaxed);
            shardMin_[s] = Simulation::kNoEvent;
            sh.inbox.clear();
            return;
        }
    }
    sh.inbox.clear();
    shardMin_[s] = sh.sim.nextEventTime();
}

void
ShardedSimulation::drainShard(unsigned s)
{
    Shard &sh = *shards_[s];
    if (sh.dead)
        return;
    ShardContext ctx(this, s);
    try {
        sh.sim.drainBefore(horizon_);
    } catch (...) {
        shardErrors_[s] = std::current_exception();
        sh.dead = true;
        errorCount_.fetch_add(1, std::memory_order_relaxed);
    }
}

/** Barrier-A completion: single-threaded between epochs. */
void
ShardedSimulation::computeHorizon()
{
    SimTime gm = Simulation::kNoEvent;
    for (SimTime t : shardMin_)
        gm = std::min(gm, t);
    if (gm == Simulation::kNoEvent ||
        errorCount_.load(std::memory_order_relaxed) != 0) {
        done_ = true;
        return;
    }
    horizon_ = gm > Simulation::kNoEvent - lookahead_
                   ? Simulation::kNoEvent
                   : gm + lookahead_;
    ++epochs_;
    // Single-threaded by construction (we are the barrier-A
    // completion): shared state published here is visible to every
    // shard's window via the barrier's release, and the publish point
    // is a pure function of the epoch sequence — identical at any
    // worker count.
    if (epochHook_)
        epochHook_();
}

void
ShardedSimulation::workerLoop(unsigned w, unsigned stride)
{
    const unsigned n = static_cast<unsigned>(shards_.size());
    bool senseA = false;
    bool senseB = false;
    for (;;) {
        // Phase A: fold last window's mail into the owned shards and
        // report their next-event times; the barrier completion then
        // proves the next window safe (or declares the run done).
        for (unsigned s = w; s < n; s += stride)
            mergeShard(s);
        barrierA_->arriveAndWait(senseA,
                                 [this] { computeHorizon(); });
        if (done_)
            return;
        // Phase B: every owned shard drains strictly below the
        // horizon; cross-shard effects park in mailboxes. The second
        // barrier publishes them to next epoch's merge.
        for (unsigned s = w; s < n; s += stride)
            drainShard(s);
        barrierB_->arriveAndWait(senseB, [] {});
    }
}

SimTime
ShardedSimulation::run()
{
    if (running_)
        throw SimPanic("ShardedSimulation::run() re-entered");
    running_ = true;
    done_ = false;
    const unsigned w = workers_;

    const bool spin = w <= std::thread::hardware_concurrency();
    barrierA_ = std::make_unique<EpochBarrier>(w, spin);
    barrierB_ = std::make_unique<EpochBarrier>(w, spin);
    if (w <= 1) {
        // Single worker: same epoch loop inline; a one-party barrier
        // is always "last to arrive" and never blocks.
        workerLoop(0, 1);
    } else {
        std::vector<std::int64_t> workerPeak(w, 0);
        std::vector<std::thread> threads;
        threads.reserve(w - 1);
        for (unsigned i = 1; i < w; ++i) {
            threads.emplace_back([this, i, w, &workerPeak] {
                // Track this worker's heap high-water mark so the
                // run's reported peak covers shard workers, not just
                // the submitting thread (mem_accounting.h).
                std::int64_t base = mem::threadCurrentBytes();
                mem::resetThreadPeak();
                workerLoop(i, w);
                workerPeak[i] = mem::threadPeakBytes() - base;
            });
        }
        workerLoop(0, w);
        for (std::thread &t : threads)
            t.join();
        if (mem::hooksActive()) {
            std::int64_t sum = 0;
            for (std::int64_t p : workerPeak)
                sum += std::max<std::int64_t>(p, 0);
            mem::absorbChildPeak(sum);
        }
    }
    barrierA_.reset();
    barrierB_.reset();

    running_ = false;
    // Rethrow deterministically: the lowest-indexed failed shard
    // wins. Failed shards stay dead (their queues are swept by the
    // Simulation destructor); the engine itself remains runnable.
    std::exception_ptr first;
    for (std::size_t s = 0; s < shardErrors_.size(); ++s) {
        if (shardErrors_[s]) {
            if (!first)
                first = shardErrors_[s];
            shardErrors_[s] = nullptr;
        }
    }
    errorCount_.store(0, std::memory_order_relaxed);
    if (first)
        std::rethrow_exception(first);
    return now();
}

std::uint64_t
ShardedSimulation::crossEvents() const
{
    std::uint64_t total = 0;
    for (const auto &sh : shards_)
        total += sh->posted;
    return total;
}

SimTime
ShardedSimulation::now() const
{
    SimTime t = 0;
    for (const auto &sh : shards_)
        t = std::max(t, sh->sim.now());
    return t;
}

} // namespace vpp::sim
