/**
 * @file
 * Aligned text-table printer used by the benchmark harnesses to emit
 * paper-style tables (rows of labelled measurements).
 */

#ifndef VPP_SIM_TABLE_H
#define VPP_SIM_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace vpp::sim {

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        cells.resize(headers_.size());
        rows_.push_back(std::move(cells));
    }

    static std::string
    num(double v, int precision = 0)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
        return buf;
    }

    /** Render the table to a string (what print() writes). */
    std::string
    str() const
    {
        std::vector<std::size_t> w(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            w[c] = headers_[c].size();
        for (const auto &r : rows_)
            for (std::size_t c = 0; c < r.size(); ++c)
                w[c] = std::max(w[c], r[c].size());

        std::string out;
        auto rule = [&] {
            for (std::size_t c = 0; c < w.size(); ++c) {
                out += '+';
                out.append(w[c] + 2, '-');
            }
            out += "+\n";
        };
        auto line = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < w.size(); ++c) {
                std::string cell = c < cells.size() ? cells[c] : "";
                out += "| ";
                out += cell;
                out.append(w[c] - cell.size() + 1, ' ');
            }
            out += "|\n";
        };

        rule();
        line(headers_);
        rule();
        for (const auto &r : rows_)
            line(r);
        rule();
        return out;
    }

    void
    print(FILE *out = stdout) const
    {
        std::string s = str();
        std::fwrite(s.data(), 1, s.size(), out);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace vpp::sim

#endif // VPP_SIM_TABLE_H
