/**
 * @file
 * Lazy coroutine task type used to express simulated processes.
 *
 * A Task<T> is a coroutine that starts suspended and runs when awaited;
 * completion resumes the awaiter by symmetric transfer. Simulated
 * processes (applications, segment managers, the file server, database
 * transactions) are written as ordinary coroutines that co_await delays,
 * futures and other tasks; the Simulation event loop drives them.
 */

#ifndef VPP_SIM_TASK_H
#define VPP_SIM_TASK_H

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <optional>
#include <utility>

namespace vpp::sim {

template <typename T>
class Task;

namespace detail {

/**
 * Thread-local size-class recycler for coroutine frames.
 *
 * The fault hot path suspends through a dozen short-lived coroutines
 * (touchSegment -> deliverFault -> handler -> hooks -> migrate), each
 * of whose frames would otherwise be a malloc/free pair. Frames are
 * recycled through per-thread free lists bucketed by 64-byte size
 * class; each simulation — and in a sharded run each logical shard —
 * is drained by exactly one thread, so no locking is needed.
 * Oversized frames fall through to the global allocator.
 *
 * Cross-thread lifetimes are still safe: a frame allocated on thread
 * A (e.g. a task spawned during single-threaded setup) and released
 * on shard-worker thread B simply enters B's free list. Both paths
 * bottom out in the global operator new/delete, and each free list
 * is touched only by its own thread, so no block is ever accessed by
 * two threads at once.
 */
class FramePool
{
  public:
    static void *
    allocate(std::size_t n)
    {
        const std::size_t cls = (n + kGranule - 1) >> kShift;
        if (cls < kClasses) {
            void *&head = lists().free[cls];
            if (head) {
                void *out = head;
                head = *static_cast<void **>(out);
                return out;
            }
            return ::operator new(cls << kShift);
        }
        return ::operator new(n);
    }

    static void
    release(void *p, std::size_t n) noexcept
    {
        const std::size_t cls = (n + kGranule - 1) >> kShift;
        if (cls < kClasses) {
            void *&head = lists().free[cls];
            *static_cast<void **>(p) = head;
            head = p;
            return;
        }
        ::operator delete(p);
    }

  private:
    static constexpr std::size_t kShift = 6;
    static constexpr std::size_t kGranule = std::size_t{1} << kShift;
    static constexpr std::size_t kClasses = 48; ///< up to ~3 KB frames

    struct Lists
    {
        void *free[kClasses] = {};

        ~Lists()
        {
            for (void *head : free) {
                while (head) {
                    void *next = *static_cast<void **>(head);
                    ::operator delete(head);
                    head = next;
                }
            }
        }
    };

    static Lists &
    lists()
    {
        thread_local Lists tl;
        return tl;
    }
};

/** Mixin giving a promise type (and thus its frames) pooled storage. */
struct PooledFrame
{
    static void *
    operator new(std::size_t n)
    {
        return FramePool::allocate(n);
    }

    static void
    operator delete(void *p, std::size_t n) noexcept
    {
        FramePool::release(p, n);
    }
};

/** std-allocator façade over FramePool (shared futures, etc.). */
template <typename T>
struct PoolAlloc
{
    using value_type = T;

    PoolAlloc() = default;

    template <typename U>
    PoolAlloc(const PoolAlloc<U> &) noexcept
    {}

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(FramePool::allocate(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        FramePool::release(p, n * sizeof(T));
    }

    template <typename U>
    bool
    operator==(const PoolAlloc<U> &) const noexcept
    {
        return true;
    }
};

/** State and behaviour shared by all task promise types. */
class PromiseBase : public PooledFrame
{
  public:
    /** Tasks are lazy: they run only once awaited (or detached). */
    std::suspend_always initial_suspend() noexcept { return {}; }

    /**
     * On completion, transfer control back to whoever awaited this
     * task. If nobody did (yet), stay suspended; the Task destructor
     * or the awaiter will clean up.
     */
    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> h) noexcept
        {
            auto &p = *static_cast<PromiseBase *>(basePromise);
            (void)h;
            if (p.continuation)
                return p.continuation;
            return std::noop_coroutine();
        }

        void await_resume() noexcept {}

        PromiseBase *basePromise;
    };

    void unhandled_exception() noexcept { error = std::current_exception(); }

    std::coroutine_handle<> continuation;
    std::exception_ptr error;
};

} // namespace detail

/**
 * A lazily-started coroutine returning T. Move-only; owns the coroutine
 * frame until awaited-to-completion or destroyed.
 */
template <typename T = void>
class Task
{
  public:
    class promise_type : public detail::PromiseBase
    {
      public:
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        FinalAwaiter
        final_suspend() noexcept
        {
            return FinalAwaiter{this};
        }

        template <typename U>
        void
        return_value(U &&v)
        {
            value.emplace(std::forward<U>(v));
        }

        std::optional<T> value;
    };

    Task() noexcept = default;

    explicit Task(std::coroutine_handle<promise_type> h) noexcept
        : handle_(h)
    {}

    Task(Task &&o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const noexcept { return handle_ != nullptr; }
    bool done() const noexcept { return handle_ && handle_.done(); }

    /** Awaiting a task starts it and suspends until it completes. */
    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            bool await_ready() const noexcept { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> awaiting) noexcept
            {
                h.promise().continuation = awaiting;
                return h;
            }

            T
            await_resume()
            {
                auto &p = h.promise();
                if (p.error)
                    std::rethrow_exception(p.error);
                assert(p.value.has_value());
                return std::move(*p.value);
            }

            std::coroutine_handle<promise_type> h;
        };
        return Awaiter{handle_};
    }

    /** Release ownership of the coroutine frame to the caller. */
    std::coroutine_handle<promise_type>
    release() noexcept
    {
        return std::exchange(handle_, nullptr);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

/** Specialisation for tasks that return nothing. */
template <>
class Task<void>
{
  public:
    class promise_type : public detail::PromiseBase
    {
      public:
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        FinalAwaiter
        final_suspend() noexcept
        {
            return FinalAwaiter{this};
        }

        void return_void() noexcept {}
    };

    Task() noexcept = default;

    explicit Task(std::coroutine_handle<promise_type> h) noexcept
        : handle_(h)
    {}

    Task(Task &&o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const noexcept { return handle_ != nullptr; }
    bool done() const noexcept { return handle_ && handle_.done(); }

    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            bool await_ready() const noexcept { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> awaiting) noexcept
            {
                h.promise().continuation = awaiting;
                return h;
            }

            void
            await_resume()
            {
                auto &p = h.promise();
                if (p.error)
                    std::rethrow_exception(p.error);
            }

            std::coroutine_handle<promise_type> h;
        };
        return Awaiter{handle_};
    }

    std::coroutine_handle<promise_type>
    release() noexcept
    {
        return std::exchange(handle_, nullptr);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

} // namespace vpp::sim

#endif // VPP_SIM_TASK_H
