/**
 * @file
 * Measurement helpers: sample statistics and percentile tracking.
 *
 * Benchmarks report the same aggregates the paper does: means (Table 1,
 * Table 2), counts (Table 3) and average/worst-case response times
 * (Table 4).
 */

#ifndef VPP_SIM_STATS_H
#define VPP_SIM_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vpp::sim {

/** Running mean/min/max/stddev over double-valued samples. */
class SampleStats
{
  public:
    void
    add(double x)
    {
        ++n_;
        sum_ += x;
        sumsq_ += x * x;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    stddev() const
    {
        if (n_ < 2)
            return 0.0;
        double m = mean();
        double var = (sumsq_ - n_ * m * m) / (n_ - 1);
        return var > 0 ? std::sqrt(var) : 0.0;
    }

    void
    reset()
    {
        *this = SampleStats();
    }

    /**
     * Fold another accumulator into this one. Sharded runs collect
     * per-shard stats and merge them in shard-index order, which
     * keeps the floating-point sums bit-identical at any worker
     * count (addition order is fixed by the merge order, never by
     * thread timing).
     */
    void
    merge(const SampleStats &o)
    {
        n_ += o.n_;
        sum_ += o.sum_;
        sumsq_ += o.sumsq_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumsq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Stores all samples to answer percentile queries exactly. Response-time
 * distributions in the study are small enough (tens of thousands of
 * transactions) that this is the right tool.
 */
class Distribution
{
  public:
    void
    add(double x)
    {
        samples_.push_back(x);
        stats_.add(x);
        sorted_ = false;
    }

    std::uint64_t count() const { return stats_.count(); }
    double mean() const { return stats_.mean(); }
    double min() const { return stats_.min(); }
    double max() const { return stats_.max(); }
    double stddev() const { return stats_.stddev(); }

    /** Exact p-quantile, p in [0, 1]. */
    double
    percentile(double p) const
    {
        if (samples_.empty())
            return 0.0;
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
        double idx = p * (samples_.size() - 1);
        std::size_t lo = static_cast<std::size_t>(idx);
        std::size_t hi = std::min(lo + 1, samples_.size() - 1);
        double frac = idx - lo;
        return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
    }

    const std::vector<double> &
    samples() const
    {
        return samples_;
    }

    /**
     * Append another distribution's samples in their recorded order.
     * Merging per-shard distributions in shard-index order keeps
     * percentiles and means bit-identical at any worker count.
     */
    void
    merge(const Distribution &o)
    {
        samples_.insert(samples_.end(), o.samples_.begin(),
                        o.samples_.end());
        stats_.merge(o.stats_);
        sorted_ = false;
    }

    void
    reset()
    {
        samples_.clear();
        stats_.reset();
        sorted_ = false;
    }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
    SampleStats stats_;
};

} // namespace vpp::sim

#endif // VPP_SIM_STATS_H
