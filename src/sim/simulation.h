/**
 * @file
 * Discrete-event simulation engine.
 *
 * The Simulation owns the virtual clock and a time-ordered event queue.
 * Simulated processes are coroutines (Task<T>) spawned onto the engine;
 * they advance time with `co_await sim.delay(d)` and communicate through
 * futures, semaphores and channels (sync.h). Events at the same
 * timestamp run in FIFO order, making every run deterministic.
 */

#ifndef VPP_SIM_SIMULATION_H
#define VPP_SIM_SIMULATION_H

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/task.h"
#include "sim/time.h"

namespace vpp::sim {

/** Thrown when a simulation invariant is violated (an engine bug). */
class SimPanic : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

class Simulation
{
  public:
    Simulation() = default;

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule a callback to run at absolute time @p when. */
    void
    schedule(SimTime when, std::function<void()> fn)
    {
        if (when < now_)
            throw SimPanic("schedule() into the past");
        queue_.push(Event{when, nextSeq_++, std::move(fn)});
    }

    /** Schedule a callback @p after from now. */
    void
    scheduleAfter(Duration after, std::function<void()> fn)
    {
        schedule(now_ + after, std::move(fn));
    }

    /** Awaitable that suspends the coroutine for @p d simulated time. */
    auto
    delay(Duration d)
    {
        struct Awaiter
        {
            bool await_ready() const noexcept { return dur <= 0; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                sim->schedule(sim->now_ + dur, [h] { h.resume(); });
            }

            void await_resume() const noexcept {}

            Simulation *sim;
            Duration dur;
        };
        return Awaiter{this, d};
    }

    /**
     * Awaitable that reschedules the coroutine at the current time,
     * behind everything already queued for this instant. Used to yield
     * to same-timestamp peers deterministically.
     */
    auto yield() { return YieldAwaiter{this}; }

    /**
     * Start a coroutine as a detached root process. It begins running
     * immediately (until its first suspension); errors escaping it are
     * recorded and rethrown from run().
     */
    void spawn(Task<> t);

    /** Run until the event queue is empty. Returns final time. */
    SimTime run();

    /**
     * Run until simulated time reaches @p deadline (events at exactly
     * @p deadline are executed) or the queue empties, whichever first.
     */
    SimTime runUntil(SimTime deadline);

    /** Number of spawned root tasks that have not yet finished. */
    int liveTasks() const { return liveTasks_; }

    /** Number of events executed so far. */
    std::uint64_t eventsRun() const { return eventsRun_; }

    struct YieldAwaiter
    {
        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sim->schedule(sim->now_, [h] { h.resume(); });
        }

        void await_resume() const noexcept {}

        Simulation *sim;
    };

  private:
    struct Event
    {
        SimTime when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct EventLater
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    friend struct RootTracker;

    void rethrowPending();

    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t eventsRun_ = 0;
    int liveTasks_ = 0;
    std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
    std::vector<std::exception_ptr> errors_;
};

} // namespace vpp::sim

#endif // VPP_SIM_SIMULATION_H
