/**
 * @file
 * Discrete-event simulation engine.
 *
 * The Simulation owns the virtual clock and a time-ordered event queue.
 * Simulated processes are coroutines (Task<T>) spawned onto the engine;
 * they advance time with `co_await sim.delay(d)` and communicate through
 * futures, semaphores and channels (sync.h). Events at the same
 * timestamp run in FIFO order, making every run deterministic.
 *
 * Hot-path design: an event is a 32-byte POD carrying either a
 * coroutine handle (the dominant case — delay()/yield() resumption and
 * all sync.h wakeups) or an index into a slab of fixed-size callback
 * slots with a free list. Neither case heap-allocates per event in
 * steady state. Events scheduled for the *current* instant bypass the
 * binary heap through a FIFO side queue; because any event scheduled at
 * `now` necessarily carries a larger sequence number than everything
 * already heaped at `now`, draining the heap's now-events first and the
 * FIFO second reproduces the (when, seq) total order bit-for-bit.
 */

#ifndef VPP_SIM_SIMULATION_H
#define VPP_SIM_SIMULATION_H

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <new>
#include <queue>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/task.h"
#include "sim/time.h"

namespace vpp::sim {

/** Thrown when a simulation invariant is violated (an engine bug). */
class SimPanic : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

class Simulation
{
  public:
    Simulation() = default;
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule a callback to run at absolute time @p when. */
    template <typename F>
    void
    schedule(SimTime when, F &&fn)
    {
        if (when < now_)
            throw SimPanic("schedule() into the past");
        using D = std::decay_t<F>;
        Event ev;
        ev.when = when;
        ev.seq = nextSeq_++;
        if constexpr (sizeof(D) <= kInlinePayload &&
                      alignof(D) <= alignof(std::uint64_t) &&
                      std::is_trivially_copyable_v<D> &&
                      std::is_trivially_destructible_v<D>) {
            // Small trivial callables ride inside the event itself:
            // no slab traffic, nothing to destroy.
            ev.kind = Event::kInline;
            ev.slot = 0;
            ::new (static_cast<void *>(ev.payload)) D(fn);
            ev.invoke = [](void *p) {
                (*std::launder(reinterpret_cast<D *>(p)))();
            };
        } else {
            ev.kind = Event::kSlot;
            ev.slot = makeSlot(std::forward<F>(fn));
            ev.invoke = nullptr;
        }
        pushEvent(ev);
    }

    /** Schedule a callback @p after from now. */
    template <typename F>
    void
    scheduleAfter(Duration after, F &&fn)
    {
        schedule(now_ + after, std::forward<F>(fn));
    }

    /**
     * Schedule a coroutine resumption at absolute time @p when. This is
     * the allocation-free fast path used by delay(), yield() and the
     * sync.h primitives.
     */
    void
    scheduleResume(SimTime when, std::coroutine_handle<> h)
    {
        if (when < now_)
            throw SimPanic("schedule() into the past");
        Event ev;
        ev.when = when;
        ev.seq = nextSeq_++;
        ev.kind = Event::kCoroutine;
        ev.slot = 0;
        ev.coro = h.address();
        pushEvent(ev);
    }

    /** Awaitable that suspends the coroutine for @p d simulated time. */
    auto
    delay(Duration d)
    {
        struct Awaiter
        {
            bool await_ready() const noexcept { return dur <= 0; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                sim->scheduleResume(sim->now_ + dur, h);
            }

            void await_resume() const noexcept {}

            Simulation *sim;
            Duration dur;
        };
        return Awaiter{this, d};
    }

    /**
     * Awaitable that reschedules the coroutine at the current time,
     * behind everything already queued for this instant. Used to yield
     * to same-timestamp peers deterministically.
     */
    auto yield() { return YieldAwaiter{this}; }

    /**
     * Start a coroutine as a detached root process. It begins running
     * immediately (until its first suspension); errors escaping it are
     * recorded and rethrown from run().
     */
    void spawn(Task<> t);

    /** Run until the event queue is empty. Returns final time. */
    SimTime run();

    /**
     * Run until simulated time reaches @p deadline (events at exactly
     * @p deadline are executed) or the queue empties, whichever first.
     */
    SimTime runUntil(SimTime deadline);

    /** nextEventTime() result when no event is pending. */
    static constexpr SimTime kNoEvent =
        std::numeric_limits<SimTime>::max();

    /**
     * Timestamp of the earliest pending event, or kNoEvent when the
     * queue is empty. Used by the sharded engine to compute the
     * global epoch horizon without disturbing the queues.
     */
    SimTime
    nextEventTime() const
    {
        if (!nowQueue_.empty())
            return now_;
        if (nextValid_)
            return next_.when;
        return kNoEvent;
    }

    /**
     * Execute every event with `when < horizon` (strictly), including
     * events those events schedule inside the window, then stop. The
     * clock is left at the last executed event, never forced forward.
     * This is one shard's share of a conservative epoch window: the
     * sharded engine proves that no cross-shard event can arrive
     * before @p horizon, making everything strictly before it safe.
     */
    SimTime
    drainBefore(SimTime horizon)
    {
        // Integer timestamps make "strictly before horizon" the same
        // set as "at or before horizon - 1".
        return drainUntil(horizon - 1);
    }

    /** Number of spawned root tasks that have not yet finished. */
    int liveTasks() const { return liveTasks_; }

    /** Number of events executed so far. */
    std::uint64_t eventsRun() const { return eventsRun_; }

    struct YieldAwaiter
    {
        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sim->scheduleResume(sim->now_, h);
        }

        void await_resume() const noexcept {}

        Simulation *sim;
    };

  private:
    static constexpr std::uint32_t kNoSlot =
        std::numeric_limits<std::uint32_t>::max();
    static constexpr std::size_t kInlinePayload = 16;

    /**
     * POD event record, tagged by `kind`: a coroutine resumption (the
     * dominant case), a small trivially-copyable callable carried
     * inline in `payload`, or an index into the callback slab for
     * everything else. (when, seq) is the total execution order.
     */
    struct Event
    {
        enum Kind : std::uint32_t { kCoroutine, kInline, kSlot };

        SimTime when;
        std::uint64_t seq;
        Kind kind;
        std::uint32_t slot;            ///< kSlot: slab index
        void (*invoke)(void *);        ///< kInline: payload trampoline
        union {
            void *coro;                ///< kCoroutine: handle address
            alignas(std::uint64_t)
                unsigned char payload[kInlinePayload]; ///< kInline
        };
    };

    struct EventLater
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * One slab slot: inline storage for a small callable (or a
     * std::function fallback for oversized ones) plus its manually
     * managed vtable. Slots live in a deque so their addresses are
     * stable while the slab grows, and are recycled via `nextFree`.
     */
    struct CallbackSlot
    {
        static constexpr std::size_t kInline = 48;

        alignas(std::max_align_t) unsigned char storage[kInline];
        void (*invoke)(void *) = nullptr;
        void (*destroy)(void *) = nullptr;
        std::uint32_t nextFree = kNoSlot;
    };

    template <typename F>
    std::uint32_t
    makeSlot(F &&fn)
    {
        using D = std::decay_t<F>;
        std::uint32_t idx;
        if (freeSlots_ != kNoSlot) {
            idx = freeSlots_;
            freeSlots_ = slots_[idx].nextFree;
        } else {
            idx = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        CallbackSlot &s = slots_[idx];
        try {
            if constexpr (sizeof(D) <= CallbackSlot::kInline &&
                          alignof(D) <= alignof(std::max_align_t)) {
                ::new (static_cast<void *>(s.storage))
                    D(std::forward<F>(fn));
                s.invoke = [](void *p) {
                    (*std::launder(reinterpret_cast<D *>(p)))();
                };
                s.destroy = [](void *p) {
                    std::launder(reinterpret_cast<D *>(p))->~D();
                };
            } else {
                using Big = std::function<void()>;
                ::new (static_cast<void *>(s.storage))
                    Big(std::forward<F>(fn));
                s.invoke = [](void *p) {
                    (*std::launder(reinterpret_cast<Big *>(p)))();
                };
                s.destroy = [](void *p) {
                    std::launder(reinterpret_cast<Big *>(p))->~Big();
                };
            }
        } catch (...) {
            s.nextFree = freeSlots_;
            freeSlots_ = idx;
            throw;
        }
        return idx;
    }

    void
    releaseSlot(std::uint32_t idx)
    {
        CallbackSlot &s = slots_[idx];
        s.destroy(s.storage);
        s.nextFree = freeSlots_;
        freeSlots_ = idx;
    }

    static bool
    earlier(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void
    pushEvent(const Event &ev)
    {
        // Same-instant events take the O(1) FIFO; their seq is larger
        // than anything already heaped at now_, so FIFO == seq order.
        if (ev.when == now_) {
            nowQueue_.push_back(ev);
            return;
        }
        // The soonest future event lives in a register, not the heap:
        // the schedule-one/run-one pattern and any wakeup that becomes
        // the next event skip the heap entirely.
        if (!nextValid_) {
            next_ = ev;
            nextValid_ = true;
        } else if (earlier(ev, next_)) {
            heap_.push(next_);
            next_ = ev;
        } else {
            heap_.push(ev);
        }
    }

    void fireEvent(Event &ev);

    SimTime drainUntil(SimTime deadline);

    friend struct RootTracker;

    void
    rethrowPending()
    {
        if (!errors_.empty()) [[unlikely]]
            rethrowPendingSlow();
    }

    void rethrowPendingSlow();

    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t eventsRun_ = 0;
    int liveTasks_ = 0;
    bool nextValid_ = false;
    Event next_;     ///< minimum of all future events when nextValid_
    std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
    std::deque<Event> nowQueue_;
    std::deque<CallbackSlot> slots_;
    std::uint32_t freeSlots_ = kNoSlot;
    std::vector<std::exception_ptr> errors_;
    /// Detached root frames still live; unfinished ones (root tasks
    /// blocked forever on a future/lock) are destroyed by ~Simulation.
    std::unordered_set<void *> roots_;
};

} // namespace vpp::sim

#endif // VPP_SIM_SIMULATION_H
