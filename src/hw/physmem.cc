#include "hw/physmem.h"

#include <cstring>
#include <stdexcept>

namespace vpp::hw {

PhysicalMemory::PhysicalMemory(std::uint64_t bytes, std::uint32_t frame_size)
    : frameSize_(frame_size)
{
    if (frame_size == 0 || (frame_size & (frame_size - 1)) != 0)
        throw std::invalid_argument("frame size must be a power of two");
    if (bytes % frame_size != 0)
        throw std::invalid_argument("memory size not frame-aligned");
    frames_.resize(bytes / frame_size);
}

void
PhysicalMemory::checkFrame(FrameId f) const
{
    if (f >= frames_.size())
        throw std::out_of_range("frame id out of range");
}

std::byte *
PhysicalMemory::data(FrameId f)
{
    checkFrame(f);
    auto &buf = frames_[f];
    if (!buf) {
        buf = std::make_unique<std::byte[]>(frameSize_);
        std::memset(buf.get(), 0, frameSize_);
        allocated_ += frameSize_;
    }
    return buf.get();
}

const std::byte *
PhysicalMemory::peek(FrameId f) const
{
    checkFrame(f);
    return frames_[f].get();
}

bool
PhysicalMemory::hasData(FrameId f) const
{
    checkFrame(f);
    return frames_[f] != nullptr;
}

void
PhysicalMemory::zero(FrameId f)
{
    checkFrame(f);
    if (frames_[f]) {
        frames_[f].reset();
        allocated_ -= frameSize_;
    }
}

void
PhysicalMemory::copyFrame(FrameId dst, FrameId src)
{
    checkFrame(dst);
    checkFrame(src);
    if (dst == src)
        return;
    if (!frames_[src]) {
        zero(dst);
        return;
    }
    std::memcpy(data(dst), frames_[src].get(), frameSize_);
}

} // namespace vpp::hw
