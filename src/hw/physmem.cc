#include "hw/physmem.h"

#include <cstring>
#include <stdexcept>

namespace vpp::hw {

namespace {

thread_local std::int64_t committedBytes = 0;
thread_local std::int64_t peakCommittedBytes = 0;

} // namespace

std::int64_t
threadCommittedBytes()
{
    return committedBytes;
}

std::int64_t
threadPeakCommittedBytes()
{
    return peakCommittedBytes;
}

void
resetThreadCommittedPeak()
{
    peakCommittedBytes = committedBytes;
}

PhysicalMemory::PhysicalMemory(std::uint64_t bytes, std::uint32_t frame_size)
    : frameSize_(frame_size)
{
    if (frame_size == 0 || (frame_size & (frame_size - 1)) != 0)
        throw std::invalid_argument("frame size must be a power of two");
    if (bytes % frame_size != 0)
        throw std::invalid_argument("memory size not frame-aligned");
    frames_.resize(bytes / frame_size);
    zeroPage_ = std::make_unique<std::byte[]>(frame_size);
    std::memset(zeroPage_.get(), 0, frame_size);
}

PhysicalMemory::~PhysicalMemory()
{
    account(-static_cast<std::int64_t>(allocated_));
    allocated_ = 0;
}

void
PhysicalMemory::throwBadFrame()
{
    throw std::out_of_range("frame id out of range");
}

void
PhysicalMemory::account(std::int64_t delta)
{
    allocated_ += delta;
    committedBytes += delta;
    if (committedBytes > peakCommittedBytes)
        peakCommittedBytes = committedBytes;
}

void
PhysicalMemory::zeroRange(FrameId first, std::uint64_t count)
{
    if (count == 0)
        return;
    checkFrame(first);
    checkFrame(first + count - 1);
    for (std::uint64_t i = 0; i < count; ++i)
        zero(first + i);
}

void
PhysicalMemory::copyRange(FrameId dst, FrameId src, std::uint64_t count)
{
    if (count == 0)
        return;
    checkFrame(dst);
    checkFrame(dst + count - 1);
    checkFrame(src);
    checkFrame(src + count - 1);
    // Frame ranges never overlap in practice (migrations move between
    // distinct regions), but copy backwards-safe anyway: sharing makes
    // each per-frame copy order-independent except for exact aliasing.
    if (dst <= src) {
        for (std::uint64_t i = 0; i < count; ++i)
            copyFrame(dst + i, src + i);
    } else {
        for (std::uint64_t i = count; i-- > 0;)
            copyFrame(dst + i, src + i);
    }
}

BufRef
PhysicalMemory::shareFrame(FrameId f)
{
    checkFrame(f);
    return frames_[f];
}

void
PhysicalMemory::adoptFrame(FrameId f, BufRef buf)
{
    checkFrame(f);
    if (buf && buf.size() != frameSize_)
        throw std::invalid_argument("adopted buffer is not frame-sized");
    if (static_cast<bool>(buf) != static_cast<bool>(frames_[f]))
        account(buf ? frameSize_
                    : -static_cast<std::int64_t>(frameSize_));
    frames_[f] = std::move(buf);
}

} // namespace vpp::hw
