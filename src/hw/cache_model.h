/**
 * @file
 * Physically-indexed cache model for the page-coloring study.
 *
 * The paper motivates application control of *which* physical frames a
 * program gets: with a physically-indexed cache, virtual pages that map
 * to frames of the same cache color conflict. This model counts hits
 * and misses of an access stream against a direct-mapped (or set-
 * associative) physically-indexed cache, so benchmarks can compare
 * color-aware frame allocation against random allocation.
 */

#ifndef VPP_HW_CACHE_MODEL_H
#define VPP_HW_CACHE_MODEL_H

#include <cstdint>
#include <vector>

#include "hw/types.h"

namespace vpp::hw {

class CacheModel
{
  public:
    CacheModel(std::uint64_t cache_bytes, std::uint32_t line_bytes,
               std::uint32_t assoc, std::uint32_t page_bytes);

    /** Number of distinct page colors in this cache. */
    std::uint32_t numColors() const { return colors_; }

    /** Cache color of a physical address's page. */
    std::uint32_t
    colorOf(PhysAddr a) const
    {
        return static_cast<std::uint32_t>((a / pageBytes_) % colors_);
    }

    /** Simulate one access; returns true on hit. */
    bool access(PhysAddr a);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    missRatio() const
    {
        std::uint64_t n = hits_ + misses_;
        return n ? static_cast<double>(misses_) / n : 0.0;
    }

    void reset();

  private:
    struct Line
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::uint32_t lineBytes_;
    std::uint32_t assoc_;
    std::uint32_t sets_;
    std::uint32_t pageBytes_;
    std::uint32_t colors_;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::vector<Line> lines_; // sets_ x assoc_
};

} // namespace vpp::hw

#endif // VPP_HW_CACHE_MODEL_H
