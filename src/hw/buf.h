/**
 * @file
 * Refcounted copy-on-write byte buffers.
 *
 * BufRef is the unit of host-side data sharing in the simulated
 * machine: page frames (hw/physmem.h) and file-server chunks
 * (uio/file_server.h) both hold BufRefs, so a simulated copy — frame
 * to frame, frame to disk block, disk block to frame — is a refcount
 * bump instead of a byte copy. Buffers are immutable while shared:
 * mutate() clones the bytes first when any other reference aliases
 * them, so every holder keeps the snapshot it took.
 *
 * Refcounts are plain (non-atomic) integers: a buffer lives inside a
 * single simulation, and every simulation runs on exactly one thread
 * (sim/runner.h parallelises across simulations, never within one).
 * For the same reason the live-byte counter is thread-local, which
 * lets a sweep row report its own buffer footprint.
 */

#ifndef VPP_HW_BUF_H
#define VPP_HW_BUF_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

namespace vpp::hw {

class BufRef
{
  public:
    BufRef() = default;

    BufRef(const BufRef &o) : ctrl_(o.ctrl_)
    {
        if (ctrl_)
            ++ctrl_->refs;
    }

    BufRef(BufRef &&o) noexcept : ctrl_(o.ctrl_) { o.ctrl_ = nullptr; }

    BufRef &
    operator=(const BufRef &o)
    {
        BufRef tmp(o);
        std::swap(ctrl_, tmp.ctrl_);
        return *this;
    }

    BufRef &
    operator=(BufRef &&o) noexcept
    {
        std::swap(ctrl_, o.ctrl_);
        return *this;
    }

    ~BufRef() { reset(); }

    /** Allocate a zero-filled buffer of @p size bytes. */
    static BufRef
    allocate(std::uint32_t size)
    {
        void *raw = ::operator new(sizeof(Ctrl) + size);
        auto *c = static_cast<Ctrl *>(raw);
        c->refs = 1;
        c->size = size;
        std::memset(bytes(c), 0, size);
        liveBytes_ += size;
        return BufRef(c);
    }

    explicit operator bool() const { return ctrl_ != nullptr; }
    std::uint32_t size() const { return ctrl_ ? ctrl_->size : 0; }

    const std::byte *
    data() const
    {
        return ctrl_ ? bytes(ctrl_) : nullptr;
    }

    /** True if this is the only reference to the bytes. */
    bool unique() const { return ctrl_ && ctrl_->refs == 1; }

    std::uint32_t refCount() const { return ctrl_ ? ctrl_->refs : 0; }

    /**
     * Writable view of the bytes. If any other reference shares them,
     * the bytes are cloned first (copy-on-write), so other holders
     * keep what they saw. Must not be called on a null ref.
     */
    std::byte *
    mutate()
    {
        if (ctrl_->refs > 1) {
            BufRef copy = allocate(ctrl_->size);
            std::memcpy(bytes(copy.ctrl_), bytes(ctrl_), ctrl_->size);
            std::swap(ctrl_, copy.ctrl_);
        }
        return bytes(ctrl_);
    }

    /** Drop this reference (frees the bytes when it is the last). */
    void
    reset()
    {
        if (ctrl_ && --ctrl_->refs == 0) {
            liveBytes_ -= ctrl_->size;
            ::operator delete(ctrl_);
        }
        ctrl_ = nullptr;
    }

    /** Host bytes held live by buffers created on this thread. */
    static std::int64_t threadLiveBytes() { return liveBytes_; }

  private:
    struct Ctrl
    {
        std::uint32_t refs;
        std::uint32_t size;
    };

    explicit BufRef(Ctrl *c) : ctrl_(c) {}

    static std::byte *
    bytes(Ctrl *c)
    {
        return reinterpret_cast<std::byte *>(c + 1);
    }

    static const std::byte *
    bytes(const Ctrl *c)
    {
        return reinterpret_cast<const std::byte *>(c + 1);
    }

    inline static thread_local std::int64_t liveBytes_ = 0;

    Ctrl *ctrl_ = nullptr;
};

} // namespace vpp::hw

#endif // VPP_HW_BUF_H
