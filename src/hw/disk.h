/**
 * @file
 * Secondary-storage latency model.
 *
 * A Disk serves one request at a time; each transfer costs an average
 * positioning latency plus size/bandwidth. The paper's argument rests
 * on this latency ("a page fault to secondary storage now costing close
 * to a million instruction times"), so the model is deliberately simple
 * and explicit.
 */

#ifndef VPP_HW_DISK_H
#define VPP_HW_DISK_H

#include <cstdint>

#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace vpp::hw {

class Disk
{
  public:
    Disk(sim::Simulation &s, sim::Duration latency, double bandwidth_mbps)
        : sim_(&s), mutex_(s), latency_(latency),
          bandwidthMBps_(bandwidth_mbps)
    {}

    /** Simulated duration of a single transfer of @p bytes. */
    sim::Duration
    transferTime(std::uint64_t bytes) const
    {
        double transfer_s = static_cast<double>(bytes) /
                            (bandwidthMBps_ * 1e6);
        return latency_ + sim::sec(transfer_s);
    }

    sim::Task<>
    read(std::uint64_t bytes)
    {
        co_await io(bytes);
        ++reads_;
        bytesRead_ += bytes;
    }

    sim::Task<>
    write(std::uint64_t bytes)
    {
        co_await io(bytes);
        ++writes_;
        bytesWritten_ += bytes;
    }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    sim::Duration busyTime() const { return busy_; }

  private:
    sim::Task<>
    io(std::uint64_t bytes)
    {
        co_await mutex_.lock();
        sim::Duration d = transferTime(bytes);
        busy_ += d;
        co_await sim_->delay(d);
        mutex_.unlock();
    }

    sim::Simulation *sim_;
    sim::SimMutex mutex_;
    sim::Duration latency_;
    double bandwidthMBps_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    sim::Duration busy_ = 0;
};

} // namespace vpp::hw

#endif // VPP_HW_DISK_H
