/**
 * @file
 * Secondary-storage latency model.
 *
 * A Disk serves one request at a time; each transfer costs an average
 * positioning latency plus size/bandwidth. The paper's argument rests
 * on this latency ("a page fault to secondary storage now costing close
 * to a million instruction times"), so the model is deliberately simple
 * and explicit.
 *
 * Failure model (vpp::inject): an attached inject::Engine may fail a
 * transfer (DiskError after the simulated time has elapsed, as a real
 * controller reports an error only once the operation completes) or
 * stretch it with a latency spike. The reads()/writes() counters are
 * charged when the operation is *issued*, so an aborted transfer is
 * still accounted; errors() and retries() track the failure path.
 * Without an engine the timing and event sequence are exactly the
 * error-free model.
 */

#ifndef VPP_HW_DISK_H
#define VPP_HW_DISK_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "inject/inject.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace vpp::hw {

/** A transfer failed (injected media/controller error). */
class DiskError : public std::runtime_error
{
  public:
    explicit DiskError(const std::string &what)
        : std::runtime_error("disk error: " + what)
    {}
};

namespace detail {

// Thread-local mirrors of the per-disk error/retry counters, reset at
// sweep-row entry so the runner can report per-row totals (the same
// pattern as hw::threadPeakCommittedBytes for committed memory).
inline thread_local std::uint64_t tlsDiskErrors = 0;
inline thread_local std::uint64_t tlsDiskRetries = 0;

} // namespace detail

/** Injected disk errors on this thread since the last reset. */
inline std::uint64_t
threadDiskErrors()
{
    return detail::tlsDiskErrors;
}

/** Disk-I/O retries on this thread since the last reset. */
inline std::uint64_t
threadDiskRetries()
{
    return detail::tlsDiskRetries;
}

inline void
resetThreadDiskCounters()
{
    detail::tlsDiskErrors = 0;
    detail::tlsDiskRetries = 0;
}

class Disk
{
  public:
    Disk(sim::Simulation &s, sim::Duration latency, double bandwidth_mbps)
        : sim_(&s), mutex_(s), latency_(latency),
          bandwidthMBps_(bandwidth_mbps)
    {}

    /** Attach (or detach with nullptr) a fault-injection engine. */
    void setInjector(inject::Engine *e) { inject_ = e; }

    /** Simulated duration of a single transfer of @p bytes. */
    sim::Duration
    transferTime(std::uint64_t bytes) const
    {
        double transfer_s = static_cast<double>(bytes) /
                            (bandwidthMBps_ * 1e6);
        return latency_ + sim::sec(transfer_s);
    }

    sim::Task<>
    read(std::uint64_t bytes)
    {
        // Account the attempt up front: an aborted transfer still
        // occupied the device and must show in the counters.
        ++reads_;
        bytesRead_ += bytes;
        co_await io(bytes, false);
    }

    sim::Task<>
    write(std::uint64_t bytes)
    {
        ++writes_;
        bytesWritten_ += bytes;
        co_await io(bytes, true);
    }

    /** A caller is about to retry a failed transfer on this disk. */
    void
    noteRetry()
    {
        ++retries_;
        ++detail::tlsDiskRetries;
    }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    std::uint64_t errors() const { return errors_; }
    std::uint64_t retries() const { return retries_; }
    sim::Duration busyTime() const { return busy_; }

  private:
    sim::Task<>
    io(std::uint64_t bytes, bool is_write)
    {
        co_await mutex_.lock();
        sim::Duration d = transferTime(bytes);
        if (inject_)
            d += inject_->diskLatencySpike();
        busy_ += d;
        co_await sim_->delay(d);
        // The error verdict arrives with the completion interrupt,
        // after the device was held for the full transfer.
        const bool failed =
            inject_ && (is_write ? inject_->diskWriteError()
                                 : inject_->diskReadError());
        mutex_.unlock();
        if (failed) {
            ++errors_;
            ++detail::tlsDiskErrors;
            throw DiskError(std::string(is_write ? "write" : "read") +
                            " of " + std::to_string(bytes) + " bytes");
        }
    }

    sim::Simulation *sim_;
    sim::SimMutex mutex_;
    sim::Duration latency_;
    double bandwidthMBps_;
    inject::Engine *inject_ = nullptr;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t retries_ = 0;
    sim::Duration busy_ = 0;
};

} // namespace vpp::hw

#endif // VPP_HW_DISK_H
