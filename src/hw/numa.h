/**
 * @file
 * Distributed-memory topology (the paper's DASH motivation, §1/§2.2).
 *
 * "In the DASH machine, physical memory is distributed, even though
 * the machine provides a consistent shared memory abstraction ... a
 * large-scale application can allocate page frames to specific
 * portions of the program based on a page frame's physical location."
 *
 * NumaTopology describes which node owns each physical address and
 * what a reference costs from a given node. Placement policy lives in
 * appmgr::PlacementManager; the SPCM's physical-range constraints do
 * the allocation.
 */

#ifndef VPP_HW_NUMA_H
#define VPP_HW_NUMA_H

#include <cstdint>

#include "hw/types.h"
#include "sim/time.h"

namespace vpp::hw {

struct NumaTopology
{
    int nodes = 1;
    std::uint64_t bytesPerNode = 0;
    sim::Duration localAccess = 0;  ///< reference to home-node memory
    sim::Duration remoteAccess = 0; ///< reference across the network

    static NumaTopology
    dashLike(int nodes, std::uint64_t total_bytes)
    {
        NumaTopology t;
        t.nodes = nodes;
        t.bytesPerNode = total_bytes / nodes;
        // DASH-era ratios: a remote reference costs ~4x local.
        t.localAccess = sim::nsec(120);
        t.remoteAccess = sim::nsec(480);
        return t;
    }

    int
    nodeOf(PhysAddr a) const
    {
        return static_cast<int>(a / bytesPerNode) % nodes;
    }

    PhysAddr nodeBase(int node) const { return node * bytesPerNode; }

    PhysAddr
    nodeLimit(int node) const
    {
        return (node + 1) * static_cast<PhysAddr>(bytesPerNode);
    }

    sim::Duration
    accessCost(int from_node, PhysAddr a) const
    {
        return nodeOf(a) == from_node ? localAccess : remoteAccess;
    }
};

} // namespace vpp::hw

#endif // VPP_HW_NUMA_H
