#include "hw/config.h"

namespace vpp::hw {

using sim::usec;
using sim::msec;

MachineConfig
decstation5000_200()
{
    MachineConfig m{};

    // Calibration targets (paper Table 1, microseconds):
    //   V++ faulting-process minimal fault
    //     = trapEnter + faultDispatch + upcall + managerAlloc
    //       + migrateBase + migratePerPage + mapInstall + directResume
    //     = 4 + 14 + 10 + 24 + 30 + 8 + 14 + 3                 = 107
    //   V++ default-manager minimal fault
    //     = trapEnter + faultDispatch + ipcSend + contextSwitch
    //       + managerAlloc + migrateBase + migratePerPage + mapInstall
    //       + ipcReply + contextSwitch + trapExit
    //     = 4+14+35+106+24+30+8+14+35+106+3                    = 379
    //   Ultrix minimal fault
    //     = trapEnter + bKernelFaultWork + zero(4 KB) + bMapInstall
    //       + trapExit = 4 + 73 + 75 + 20 + 3                  = 175
    //   Ultrix user-level (signal+mprotect) fault
    //     = trapEnter + bSignalDeliver + bMprotect + bSigreturn
    //     = 4 + 70 + 50 + 28                                   = 152
    //   V++ read 4 KB  = syscall + uioLookup + copy = 20+22+180 = 222
    //   V++ write 4 KB = syscall + uioWriteExtra + copy
    //                  = 20 + 3 + 180                           = 203
    //   Ultrix read 4 KB  = syscall + bFileLookup + copy        = 211
    //   Ultrix write 4 KB = syscall + bFileLookup + bWriteExtra
    //                       + copy = 20 + 11 + 100 + 180        = 311
    m.cost.trapEnter = usec(4);
    m.cost.trapExit = usec(3);
    m.cost.syscall = usec(20);
    m.cost.contextSwitch = usec(106);
    m.cost.upcall = usec(10);
    m.cost.directResume = usec(3);
    m.cost.kernelResume = usec(25);

    m.cost.ipcSend = usec(35);
    m.cost.ipcReply = usec(35);

    m.cost.faultDispatch = usec(14);
    m.cost.migrateBase = usec(30);
    m.cost.migratePerPage = usec(8);
    m.cost.modifyFlagsBase = usec(22);
    m.cost.modifyFlagsPerPage = usec(3);
    m.cost.getAttrBase = usec(20);
    m.cost.getAttrPerPage = usec(2);
    m.cost.mapInstall = usec(14);
    m.cost.bindRegion = usec(30);

    m.cost.managerAlloc = usec(24);

    m.cost.copyPerKB = usec(45);
    m.cost.pageZeroPerKB = usec(18.75);

    m.cost.uioLookup = usec(22);
    m.cost.uioWriteExtra = usec(3);

    m.cost.bKernelFaultWork = usec(73);
    m.cost.bMapInstall = usec(20);
    m.cost.bSignalDeliver = usec(70);
    m.cost.bSigreturn = usec(28);
    m.cost.bMprotect = usec(50);
    m.cost.bFileLookup = usec(11);
    m.cost.bWriteExtra = usec(100);

    m.pageSize = 4096;
    m.memoryBytes = 128ull << 20;
    m.ncpus = 1;
    m.mips = 20.0; // 25 MHz R3000, ~0.8 IPC

    m.modelTlb = false; // opt-in: charge TLB refills on references
    m.tlbEntries = 64;
    m.tlbRefill = usec(1.5); // in-kernel software refill (R3000)

    m.ioUnit = 4096;
    m.diskLatency = msec(16);
    m.diskBandwidthMBps = 2.0;
    m.resumeThroughKernel = false; // R3000 allows direct resumption
    m.defaultMgrMode = ManagerMode::SeparateProcess;

    m.mgrRequestBatch = 32;

    return m;
}

MachineConfig
sgi4d380()
{
    // The study machine: "eight 30-MIPS processors" (paper footnote 1);
    // the transaction experiment uses 6 of them.
    MachineConfig m = decstation5000_200();
    m.ncpus = 8;
    m.mips = 30.0;
    m.memoryBytes = 256ull << 20;
    m.diskLatency = msec(15);
    m.diskBandwidthMBps = 3.0;
    // The 4D/380 (MIPS R3000-based) also permits direct resumption.
    m.resumeThroughKernel = false;
    return m;
}

} // namespace vpp::hw
