/**
 * @file
 * Machine description and primitive-cost model.
 *
 * Every simulated control path (trap, context switch, page-table edit,
 * memory copy, disk access) charges time from this table. Two presets
 * reproduce the paper's testbeds:
 *
 *  - decstation5000_200(): 25 MHz R3000, 4 KB pages, 128 MB. The
 *    primitive costs are calibrated so the *composed* paths match the
 *    paper's Table 1 (V++ faulting-process minimal fault 107 us,
 *    default-manager fault 379 us, Ultrix fault 175 us including the
 *    75 us zero-fill, read/write of a cached 4 KB block, and the 152 us
 *    Ultrix signal+mprotect user-level fault).
 *
 *  - sgi4d380(): 8 x 30-MIPS processors (the study uses 6), used by the
 *    database transaction experiment of paper section 3.3.
 */

#ifndef VPP_HW_CONFIG_H
#define VPP_HW_CONFIG_H

#include <cstdint>

#include "policy/kind.h"
#include "sim/time.h"

namespace vpp::hw {

using sim::Duration;

/** Where a segment manager executes relative to the faulting process. */
enum class ManagerMode
{
    SameProcess,     ///< handler runs on the faulting process (upcall)
    SeparateProcess, ///< handler is a server reached via IPC
};

/** Primitive control-path costs, in simulated time. */
struct CostModel
{
    // --- traps and mode switches -------------------------------------
    Duration trapEnter;     ///< user -> kernel exception entry
    Duration trapExit;      ///< kernel -> user return
    Duration syscall;       ///< base syscall enter+decode+exit
    Duration contextSwitch; ///< full process switch
    Duration upcall;        ///< kernel -> user fault handler, same process
    Duration directResume;  ///< handler -> app without kernel (R3000)
    Duration kernelResume;  ///< handler -> app via kernel (680x0-style)

    // --- IPC (V-style Send/Receive/Reply) ----------------------------
    Duration ipcSend;  ///< marshal + deliver, excl. context switch
    Duration ipcReply; ///< reply path, excl. context switch

    // --- kernel VM operations ----------------------------------------
    Duration faultDispatch;      ///< decode fault, segment/region lookup
    Duration migrateBase;        ///< MigratePages fixed cost
    Duration migratePerPage;     ///< per page-frame moved
    Duration modifyFlagsBase;    ///< ModifyPageFlags fixed cost
    Duration modifyFlagsPerPage; ///< per page touched
    Duration getAttrBase;        ///< GetPageAttributes fixed cost
    Duration getAttrPerPage;     ///< per page reported
    Duration mapInstall;         ///< page-table/TLB entry install, per page
    Duration bindRegion;         ///< BindRegion bookkeeping

    // --- manager work ------------------------------------------------
    Duration managerAlloc; ///< free-page-segment bookkeeping per fault

    // --- data movement -----------------------------------------------
    Duration copyPerKB;     ///< memory-to-memory copy
    Duration pageZeroPerKB; ///< zero-fill (security) per KB

    // --- V++ cached-file (UIO) block interface ------------------------
    Duration uioLookup;     ///< block lookup in cached-file segment
    Duration uioWriteExtra; ///< write-side bookkeeping delta

    // --- "Ultrix" baseline-specific path costs ------------------------
    Duration bKernelFaultWork; ///< in-kernel fault service, excl. zeroing
    Duration bMapInstall;      ///< baseline page-table install
    Duration bSignalDeliver;   ///< kernel -> user signal delivery
    Duration bSigreturn;       ///< sigreturn path
    Duration bMprotect;        ///< mprotect syscall
    Duration bFileLookup;      ///< buffer-cache lookup for read/write
    Duration bWriteExtra;      ///< baseline write-path block handling
};

/** Whole-machine description. */
struct MachineConfig
{
    CostModel cost;

    std::uint32_t pageSize;    ///< base page / frame granule, bytes
    std::uint64_t memoryBytes; ///< physical memory size
    int ncpus;                 ///< processors
    double mips;               ///< per-CPU instruction rate, millions/s

    bool modelTlb;                ///< account TLB hits/misses in touch
    std::uint32_t tlbEntries;     ///< R3000: 64 fully-associative
    Duration tlbRefill;           ///< kernel TLB-miss handler cost

    std::uint32_t ioUnit;         ///< kernel file I/O transfer unit
    Duration diskLatency;         ///< average positioning latency
    double diskBandwidthMBps;     ///< sustained transfer rate
    bool resumeThroughKernel;     ///< true on 680x0-style CPUs
    ManagerMode defaultMgrMode;   ///< how the default manager runs

    /**
     * Opt-in batched fault delivery: faults raised at the same
     * simulated instant against one manager share a single dispatch
     * crossing (one upcall or IPC round trip for the whole batch).
     * Off by default so the per-fault charge timeline — and every
     * committed determinism golden — is exactly the classic one.
     */
    bool faultCoalescing = false;

    /**
     * Frames per SPCM replenish request — the one knob behind every
     * manager's allocation batching. GenericSegmentManager asks for
     * exactly this many; the default manager (UCDS), whose append
     * workloads are batchier, asks for 2x unless its params override
     * it. Tenant-scaling sweeps vary this single value instead of the
     * two independently-tuned constants it replaced (generic 32,
     * UCDS 64 — both preserved by the default).
     */
    std::uint64_t mgrRequestBatch = 32;

    /**
     * Replacement policy driving the default manager's clockPass
     * (src/policy). Clock — the default — reproduces the historical
     * hard-wired sampling clock byte-identically; SLRU/2Q/WSClock
     * swap in their own victim order; Belady cannot run online and
     * makes manager construction throw (it exists for trace-replay
     * harnesses).
     */
    policy::Kind replacementPolicy = policy::Kind::Clock;

    std::uint64_t frames() const { return memoryBytes / pageSize; }

    /** Simulated time to execute @p n instructions on one CPU. */
    Duration
    instructions(double n) const
    {
        return static_cast<Duration>(n / mips * 1e3);
    }
};

/** DECstation 5000/200 preset (paper sections 3.1-3.2). */
MachineConfig decstation5000_200();

/** SGI 4D/380 preset (paper section 3.3). */
MachineConfig sgi4d380();

} // namespace vpp::hw

#endif // VPP_HW_CONFIG_H
