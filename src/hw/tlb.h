/**
 * @file
 * Small TLB model (R3000-style: fully associative, random replacement).
 *
 * The paper notes that "simple TLB misses are handled by the kernel";
 * this model provides hit/miss accounting so experiments can charge a
 * refill cost and so the coloring study can report TLB behaviour.
 */

#ifndef VPP_HW_TLB_H
#define VPP_HW_TLB_H

#include <cstdint>
#include <vector>

#include "sim/random.h"

namespace vpp::hw {

class Tlb
{
  public:
    explicit Tlb(std::uint32_t entries = 64, std::uint64_t seed = 1)
        : rng_(seed)
    {
        entries_.resize(entries);
    }

    /** Look up a (address-space id, virtual page number) pair. */
    bool
    access(std::uint32_t asid, std::uint64_t vpn)
    {
        for (auto &e : entries_) {
            if (e.valid && e.asid == asid && e.vpn == vpn) {
                ++hits_;
                return true;
            }
        }
        ++misses_;
        Entry &victim = entries_[rng_.below(entries_.size())];
        victim = Entry{asid, vpn, true};
        return false;
    }

    /** Drop one translation (e.g. after MigratePages / protection change). */
    void
    invalidate(std::uint32_t asid, std::uint64_t vpn)
    {
        for (auto &e : entries_)
            if (e.valid && e.asid == asid && e.vpn == vpn)
                e.valid = false;
    }

    /** Drop all translations for an address space. */
    void
    invalidateAsid(std::uint32_t asid)
    {
        for (auto &e : entries_)
            if (e.valid && e.asid == asid)
                e.valid = false;
    }

    void
    flush()
    {
        for (auto &e : entries_)
            e.valid = false;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }

  private:
    struct Entry
    {
        std::uint32_t asid = 0;
        std::uint64_t vpn = 0;
        bool valid = false;
    };

    sim::Random rng_;
    std::vector<Entry> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace vpp::hw

#endif // VPP_HW_TLB_H
