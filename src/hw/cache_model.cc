#include "hw/cache_model.h"

#include <stdexcept>

namespace vpp::hw {

CacheModel::CacheModel(std::uint64_t cache_bytes, std::uint32_t line_bytes,
                       std::uint32_t assoc, std::uint32_t page_bytes)
    : lineBytes_(line_bytes), assoc_(assoc), pageBytes_(page_bytes)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        throw std::invalid_argument("line size must be a power of two");
    if (assoc == 0)
        throw std::invalid_argument("associativity must be positive");
    std::uint64_t nlines = cache_bytes / line_bytes;
    if (nlines == 0 || nlines % assoc != 0)
        throw std::invalid_argument("cache geometry inconsistent");
    sets_ = static_cast<std::uint32_t>(nlines / assoc);
    std::uint64_t way_bytes = cache_bytes / assoc;
    colors_ = static_cast<std::uint32_t>(
        way_bytes >= page_bytes ? way_bytes / page_bytes : 1);
    lines_.resize(static_cast<std::size_t>(sets_) * assoc_);
}

bool
CacheModel::access(PhysAddr a)
{
    std::uint64_t line_addr = a / lineBytes_;
    std::uint32_t set = static_cast<std::uint32_t>(line_addr % sets_);
    std::uint64_t tag = line_addr / sets_;
    Line *base = &lines_[static_cast<std::size_t>(set) * assoc_];

    ++tick_;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lru = tick_;
            ++hits_;
            return true;
        }
    }
    // Miss: fill the LRU (or first invalid) way.
    Line *victim = base;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    ++misses_;
    return false;
}

void
CacheModel::reset()
{
    for (auto &l : lines_)
        l = Line{};
    tick_ = hits_ = misses_ = 0;
}

} // namespace vpp::hw
