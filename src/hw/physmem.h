/**
 * @file
 * Physical memory: a flat array of page frames.
 *
 * Frames store real bytes so that data actually moves through the
 * system (file contents survive page-out and page-in, copy-on-write
 * copies are observable). Buffers are allocated lazily on first write;
 * a frame with no buffer reads as zeroes, so simulating a 128 MB or
 * 256 MB machine costs host memory only for frames actually dirtied.
 */

#ifndef VPP_HW_PHYSMEM_H
#define VPP_HW_PHYSMEM_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hw/types.h"

namespace vpp::hw {

class PhysicalMemory
{
  public:
    PhysicalMemory(std::uint64_t bytes, std::uint32_t frame_size);

    std::uint64_t numFrames() const { return frames_.size(); }
    std::uint32_t frameSize() const { return frameSize_; }
    std::uint64_t bytes() const { return numFrames() * frameSize_; }

    PhysAddr
    physAddr(FrameId f) const
    {
        return static_cast<PhysAddr>(f) * frameSize_;
    }

    FrameId
    frameOf(PhysAddr a) const
    {
        return static_cast<FrameId>(a / frameSize_);
    }

    /** Writable view of a frame's bytes; allocates backing on demand. */
    std::byte *data(FrameId f);

    /** Read-only view; nullptr if the frame has never been written. */
    const std::byte *peek(FrameId f) const;

    bool hasData(FrameId f) const;

    /** Zero-fill a frame (drops its backing buffer). */
    void zero(FrameId f);

    /** Copy the full contents of frame @p src into frame @p dst. */
    void copyFrame(FrameId dst, FrameId src);

    /** Host memory currently committed to frame buffers. */
    std::uint64_t allocatedDataBytes() const { return allocated_; }

  private:
    void checkFrame(FrameId f) const;

    std::uint32_t frameSize_;
    std::uint64_t allocated_ = 0;
    std::vector<std::unique_ptr<std::byte[]>> frames_;
};

} // namespace vpp::hw

#endif // VPP_HW_PHYSMEM_H
