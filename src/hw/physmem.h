/**
 * @file
 * Physical memory: a flat array of page frames over a copy-on-write
 * frame store.
 *
 * Frames store real bytes so that data actually moves through the
 * system (file contents survive page-out and page-in, copy-on-write
 * copies are observable). Each frame holds a reference to a shared,
 * immutable-until-written buffer (hw/buf.h) — or no buffer at all, in
 * which case it reads as zeroes. That makes the simulated data
 * primitives cheap on the host:
 *
 *  - zero(f) drops the frame's reference — O(1), no memset;
 *  - copyFrame(dst, src) shares src's buffer — O(1), no memcpy;
 *  - write(f) commits a buffer on demand and breaks any sharing, so
 *    the first real write after a copy pays the one unavoidable clone.
 *
 * The read and write views are split: peek()/readOnly() never commit
 * or unshare anything, write() does both. shareFrame()/adoptFrame()
 * expose the frame's buffer as a refcounted handle so the I/O path
 * (uio/paging.h) can move whole pages between frames and file-server
 * chunks without copying.
 *
 * allocatedDataBytes() counts *simulated* committed bytes — frameSize
 * per frame that currently holds a buffer, regardless of sharing. The
 * host footprint (shared buffers counted once) is BufRef's concern;
 * see BufRef::threadLiveBytes() and sim/mem_accounting.h.
 */

#ifndef VPP_HW_PHYSMEM_H
#define VPP_HW_PHYSMEM_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hw/buf.h"
#include "hw/types.h"

namespace vpp::hw {

/**
 * Simulated committed bytes across every PhysicalMemory on this
 * thread: current level and high-water mark since the last reset.
 * The sweep runner reports the peak per row next to host peak heap.
 */
std::int64_t threadCommittedBytes();
std::int64_t threadPeakCommittedBytes();
void resetThreadCommittedPeak();

class PhysicalMemory
{
  public:
    PhysicalMemory(std::uint64_t bytes, std::uint32_t frame_size);
    ~PhysicalMemory();

    PhysicalMemory(const PhysicalMemory &) = delete;
    PhysicalMemory &operator=(const PhysicalMemory &) = delete;

    std::uint64_t numFrames() const { return frames_.size(); }
    std::uint32_t frameSize() const { return frameSize_; }
    std::uint64_t bytes() const { return numFrames() * frameSize_; }

    PhysAddr
    physAddr(FrameId f) const
    {
        return static_cast<PhysAddr>(f) * frameSize_;
    }

    FrameId
    frameOf(PhysAddr a) const
    {
        return static_cast<FrameId>(a / frameSize_);
    }

    // ------------------------------------------------------------------
    // Read views (never commit, never unshare)
    // ------------------------------------------------------------------

    /** Read-only view; nullptr if the frame currently reads as zero. */
    const std::byte *
    peek(FrameId f) const
    {
        checkFrame(f);
        return frames_[f].data();
    }

    /** Read-only view; the canonical zero page when the frame is zero. */
    const std::byte *
    readOnly(FrameId f) const
    {
        checkFrame(f);
        const BufRef &buf = frames_[f];
        return buf ? buf.data() : zeroPage_.get();
    }

    /** Whether the frame holds committed data (reads non-lazily). */
    bool
    hasData(FrameId f) const
    {
        checkFrame(f);
        return static_cast<bool>(frames_[f]);
    }

    /** Whether the frame's buffer is aliased by any other reference. */
    bool
    isShared(FrameId f) const
    {
        checkFrame(f);
        return frames_[f].refCount() > 1;
    }

    // ------------------------------------------------------------------
    // Write view (commits on demand, breaks sharing)
    // ------------------------------------------------------------------

    /**
     * Writable view of a frame's bytes. A zero frame commits a fresh
     * zeroed buffer; a shared buffer is cloned first so no other
     * frame or file chunk observes the write.
     */
    std::byte *
    write(FrameId f)
    {
        checkFrame(f);
        BufRef &buf = frames_[f];
        if (!buf) {
            buf = BufRef::allocate(frameSize_);
            account(frameSize_);
        }
        return buf.mutate();
    }

    // ------------------------------------------------------------------
    // Bulk data primitives
    // ------------------------------------------------------------------

    /** Zero-fill a frame: drop its buffer reference. O(1). */
    void
    zero(FrameId f)
    {
        checkFrame(f);
        if (frames_[f]) {
            frames_[f].reset();
            account(-static_cast<std::int64_t>(frameSize_));
        }
    }

    /** Zero-fill @p count consecutive frames starting at @p first. */
    void zeroRange(FrameId first, std::uint64_t count);

    /**
     * Copy the full contents of frame @p src into frame @p dst by
     * sharing src's buffer. O(1); the bytes are cloned only when one
     * side is later written.
     */
    void
    copyFrame(FrameId dst, FrameId src)
    {
        checkFrame(dst);
        checkFrame(src);
        if (dst == src)
            return;
        if (!frames_[src]) {
            zero(dst);
            return;
        }
        if (!frames_[dst])
            account(frameSize_);
        frames_[dst] = frames_[src];
    }

    /** copyFrame over @p count consecutive frame pairs. */
    void copyRange(FrameId dst, FrameId src, std::uint64_t count);

    // ------------------------------------------------------------------
    // Zero-copy I/O handles
    // ------------------------------------------------------------------

    /** Refcounted handle to the frame's buffer; null for a zero frame. */
    BufRef shareFrame(FrameId f);

    /**
     * Point the frame at @p buf (null reads as zero). The buffer must
     * be exactly frameSize() bytes.
     */
    void adoptFrame(FrameId f, BufRef buf);

    /**
     * Simulated committed bytes: frameSize() per frame holding a
     * buffer. Shared buffers count once per frame referencing them —
     * this is the machine's notion of committed memory, not the host
     * heap.
     */
    std::uint64_t allocatedDataBytes() const { return allocated_; }

  private:
    void
    checkFrame(FrameId f) const
    {
        if (f >= frames_.size())
            throwBadFrame();
    }

    [[noreturn]] static void throwBadFrame();

    /** Track simulated commit/uncommit in allocated_ and the
     *  thread-local counters behind threadCommittedBytes(). */
    void account(std::int64_t delta);

    std::uint32_t frameSize_;
    std::uint64_t allocated_ = 0;
    std::vector<BufRef> frames_;
    std::unique_ptr<std::byte[]> zeroPage_;
};

} // namespace vpp::hw

#endif // VPP_HW_PHYSMEM_H
