/**
 * @file
 * Elementary hardware types shared across modules.
 */

#ifndef VPP_HW_TYPES_H
#define VPP_HW_TYPES_H

#include <cstdint>

namespace vpp::hw {

/** Physical page-frame number (in units of the base frame size). */
using FrameId = std::uint32_t;

/** Byte address in physical memory. */
using PhysAddr = std::uint64_t;

constexpr FrameId kInvalidFrame = ~FrameId{0};

} // namespace vpp::hw

#endif // VPP_HW_TYPES_H
