/**
 * @file
 * Umbrella header for the V++ external page-cache management library.
 *
 * Pulls in the public API of every module. Fine-grained includes are
 * preferred inside the library itself; applications can just:
 *
 *   #include "vpp.h"
 */

#ifndef VPP_H
#define VPP_H

// Simulation substrate
#include "sim/random.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/table.h"
#include "sim/task.h"
#include "sim/time.h"

// Machine model
#include "hw/cache_model.h"
#include "hw/config.h"
#include "hw/disk.h"
#include "hw/physmem.h"
#include "hw/tlb.h"
#include "hw/types.h"

// IPC
#include "ipc/port.h"

// Fault injection
#include "inject/inject.h"

// The V++ kernel
#include "core/fault.h"
#include "core/kernel.h"
#include "core/manager.h"
#include "core/process.h"
#include "core/segment.h"
#include "core/types.h"

// File service
#include "uio/block_io.h"
#include "uio/file_server.h"

// Process-level managers
#include "managers/default_mgr.h"
#include "managers/generic.h"
#include "managers/market.h"
#include "managers/spcm.h"

// Application-specific managers
#include "appmgr/coloring_mgr.h"
#include "appmgr/db_mgr.h"
#include "appmgr/discard_mgr.h"
#include "appmgr/prefetch_mgr.h"
#include "appmgr/swap_mgr.h"

// Comparison baseline, workloads and the database study
#include "apps/stack.h"
#include "apps/workload.h"
#include "baseline/conventional_vm.h"
#include "db/lock.h"
#include "db/study.h"

#endif // VPP_H
