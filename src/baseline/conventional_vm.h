/**
 * @file
 * A conventional, kernel-internal virtual memory system — the "ULTRIX
 * 4.1" comparator of the paper's evaluation.
 *
 * Structure the paper contrasts with V++:
 *  - page faults are serviced entirely inside the kernel: no manager,
 *    no IPC, and a mandatory security zero-fill on every allocation
 *    (the 75 us the paper calls out);
 *  - the application can neither observe nor influence allocation;
 *  - user-level fault handling is only possible via signal delivery
 *    plus mprotect (the 152 us path measured in §3.1);
 *  - the file I/O transfer unit is 8 KB (twice the V++ unit).
 *
 * The model is functional: processes have page tables, files have a
 * buffer cache with dirty tracking, data round-trips through the file
 * server.
 */

#ifndef VPP_BASELINE_CONVENTIONAL_VM_H
#define VPP_BASELINE_CONVENTIONAL_VM_H

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "hw/config.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "uio/file_server.h"
#include "uio/paging.h"

namespace vpp::baseline {

using ProcId = std::uint32_t;

class ConventionalVm
{
  public:
    ConventionalVm(sim::Simulation &s, const hw::MachineConfig &machine,
                   uio::FileServer &server,
                   std::uint32_t io_unit = 8192);

    ProcId createProcess(std::string name);

    // ------------------------------------------------------------------
    // Memory references
    // ------------------------------------------------------------------

    /**
     * Reference an anonymous page. A first touch takes the in-kernel
     * fault path: trap + fault service + zero-fill + map + return.
     */
    sim::Task<> touch(ProcId p, std::uint64_t vaddr);

    /**
     * The user-level fault handler experiment (§3.1): a reference to a
     * protected page delivers a signal; the handler calls mprotect and
     * returns via sigreturn.
     */
    sim::Task<> protectedTouch(ProcId p, std::uint64_t vaddr);

    /** Drop a page's mapping (so the next touch faults again). */
    void invalidate(ProcId p, std::uint64_t vaddr);

    // ------------------------------------------------------------------
    // File I/O (read/write system calls, 8 KB transfer unit)
    // ------------------------------------------------------------------

    sim::Task<std::uint64_t> read(ProcId p, uio::FileId f,
                                  std::uint64_t offset,
                                  std::span<std::byte> out);

    sim::Task<std::uint64_t> write(ProcId p, uio::FileId f,
                                   std::uint64_t offset,
                                   std::span<const std::byte> data);

    /** Flush dirty blocks and drop the file from the buffer cache. */
    sim::Task<> closeFile(uio::FileId f);

    /** Zero-time population of the buffer cache (benchmark setup). */
    void preloadFileNow(uio::FileId f);

    struct Stats
    {
        std::uint64_t faults = 0;
        std::uint64_t zeroFills = 0;
        std::uint64_t userFaults = 0;
        std::uint64_t readCalls = 0;
        std::uint64_t writeCalls = 0;
        std::uint64_t blockFetches = 0;
        std::uint64_t blockWritebacks = 0;
        std::uint64_t ioErrors = 0;
        std::uint64_t ioRetries = 0;

        void reset() { *this = Stats{}; }
    };

    Stats &stats() { return stats_; }
    std::uint32_t ioUnit() const { return ioUnit_; }

    /** Composed cost of the in-kernel minimal fault (Table 1 row 1). */
    sim::Duration minimalFaultCost() const;

    /** Composed cost of the signal+mprotect fault (§3.1 text). */
    sim::Duration userFaultCost() const;

  private:
    struct File
    {
        std::set<std::uint64_t> resident; ///< cached block numbers
        std::set<std::uint64_t> dirty;
    };

    /**
     * One block transfer with the same bounded-retry policy as the V++
     * paging path (uio::kMaxIoRetries, doubling backoff), so the
     * robustness comparison is apples-to-apples. Surfaces
     * KernelErrc::IoError when the budget is exhausted.
     */
    sim::Task<> chargeBlock(std::uint64_t bytes, bool is_write);

    sim::Simulation *sim_;
    hw::MachineConfig machine_;
    uio::FileServer *server_;
    std::uint32_t ioUnit_;
    std::vector<std::string> procs_;
    std::map<ProcId, std::set<std::uint64_t>> pageTables_;
    std::map<uio::FileId, File> cache_;
    Stats stats_;
};

} // namespace vpp::baseline

#endif // VPP_BASELINE_CONVENTIONAL_VM_H
