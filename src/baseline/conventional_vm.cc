#include "baseline/conventional_vm.h"

#include <algorithm>

namespace vpp::baseline {

ConventionalVm::ConventionalVm(sim::Simulation &s,
                               const hw::MachineConfig &machine,
                               uio::FileServer &server,
                               std::uint32_t io_unit)
    : sim_(&s), machine_(machine), server_(&server), ioUnit_(io_unit)
{}

ProcId
ConventionalVm::createProcess(std::string name)
{
    procs_.push_back(std::move(name));
    ProcId id = static_cast<ProcId>(procs_.size() - 1);
    pageTables_[id] = {};
    return id;
}

sim::Task<>
ConventionalVm::chargeBlock(std::uint64_t bytes, bool is_write)
{
    sim::Duration backoff = uio::kIoRetryBackoff;
    for (int attempt = 1;; ++attempt) {
        // co_await is not permitted inside a catch handler, so the
        // failure is latched and the backoff runs after the try block.
        bool failed = false;
        std::string err;
        try {
            if (is_write)
                co_await server_->chargeWrite(bytes);
            else
                co_await server_->chargeRead(bytes);
        } catch (const hw::DiskError &e) {
            failed = true;
            err = e.what();
        }
        if (!failed)
            co_return;
        ++stats_.ioErrors;
        if (attempt >= uio::kMaxIoRetries) {
            throw kernel::KernelError(
                kernel::KernelErrc::IoError,
                std::string("conventional vm: ") + err + " after " +
                    std::to_string(attempt) + " attempts");
        }
        ++stats_.ioRetries;
        server_->disk().noteRetry();
        co_await sim_->delay(backoff);
        backoff *= 2;
    }
}

sim::Duration
ConventionalVm::minimalFaultCost() const
{
    const auto &c = machine_.cost;
    sim::Duration zero = static_cast<sim::Duration>(
        static_cast<double>(c.pageZeroPerKB) * machine_.pageSize /
        1024.0);
    return c.trapEnter + c.bKernelFaultWork + zero + c.bMapInstall +
           c.trapExit;
}

sim::Duration
ConventionalVm::userFaultCost() const
{
    const auto &c = machine_.cost;
    return c.trapEnter + c.bSignalDeliver + c.bMprotect + c.bSigreturn;
}

sim::Task<>
ConventionalVm::touch(ProcId p, std::uint64_t vaddr)
{
    std::uint64_t page = vaddr / machine_.pageSize;
    auto &pt = pageTables_.at(p);
    if (pt.count(page))
        co_return;
    ++stats_.faults;
    ++stats_.zeroFills;
    co_await sim_->delay(minimalFaultCost());
    pt.insert(page);
}

sim::Task<>
ConventionalVm::protectedTouch(ProcId p, std::uint64_t vaddr)
{
    (void)p;
    (void)vaddr;
    ++stats_.userFaults;
    co_await sim_->delay(userFaultCost());
}

void
ConventionalVm::invalidate(ProcId p, std::uint64_t vaddr)
{
    pageTables_.at(p).erase(vaddr / machine_.pageSize);
}

sim::Task<std::uint64_t>
ConventionalVm::read(ProcId p, uio::FileId f, std::uint64_t offset,
                     std::span<std::byte> out)
{
    (void)p;
    const auto &c = machine_.cost;
    std::uint64_t size = server_->fileSize(f);
    if (offset >= size)
        co_return 0;
    std::uint64_t want =
        std::min<std::uint64_t>(out.size(), size - offset);
    File &file = cache_[f];

    std::uint64_t done = 0;
    while (done < want) {
        std::uint64_t pos = offset + done;
        std::uint64_t block = pos / ioUnit_;
        std::uint64_t in_block = pos % ioUnit_;
        std::uint64_t n =
            std::min<std::uint64_t>(ioUnit_ - in_block, want - done);
        ++stats_.readCalls;
        co_await sim_->delay(c.syscall + c.bFileLookup);
        if (!file.resident.count(block)) {
            ++stats_.blockFetches;
            // The block's bytes already live on the server; only the
            // fetch cost is real, so charge it without staging the
            // data through a scratch buffer.
            co_await chargeBlock(ioUnit_, false);
            file.resident.insert(block);
        }
        server_->readNow(f, pos, out.subspan(done, n));
        co_await sim_->delay(static_cast<sim::Duration>(
            static_cast<double>(c.copyPerKB) * n / 1024.0));
        done += n;
    }
    co_return done;
}

sim::Task<std::uint64_t>
ConventionalVm::write(ProcId p, uio::FileId f, std::uint64_t offset,
                      std::span<const std::byte> data)
{
    (void)p;
    const auto &c = machine_.cost;
    File &file = cache_[f];
    std::uint64_t done = 0;
    while (done < data.size()) {
        std::uint64_t pos = offset + done;
        std::uint64_t block = pos / ioUnit_;
        std::uint64_t in_block = pos % ioUnit_;
        std::uint64_t n = std::min<std::uint64_t>(ioUnit_ - in_block,
                                                  data.size() - done);
        ++stats_.writeCalls;
        co_await sim_->delay(c.syscall + c.bFileLookup + c.bWriteExtra);
        // Write-allocate into the buffer cache; data goes to the
        // server's bytes now, disk traffic happens at writeback.
        server_->writeNow(f, pos, data.subspan(done, n));
        file.resident.insert(block);
        file.dirty.insert(block);
        co_await sim_->delay(static_cast<sim::Duration>(
            static_cast<double>(c.copyPerKB) * n / 1024.0));
        done += n;
    }
    co_return done;
}

sim::Task<>
ConventionalVm::closeFile(uio::FileId f)
{
    auto it = cache_.find(f);
    if (it == cache_.end())
        co_return;
    for (std::uint64_t block : it->second.dirty) {
        ++stats_.blockWritebacks;
        // The dirty bytes were published to the server at write();
        // writeback charges the disk traffic and, like a real
        // block-granular flush, extends the file to the block edge.
        std::uint64_t end =
            (block + 1) * static_cast<std::uint64_t>(ioUnit_);
        co_await chargeBlock(ioUnit_, true);
        server_->resizeFile(f, std::max(server_->fileSize(f), end));
    }
    cache_.erase(it);
}

void
ConventionalVm::preloadFileNow(uio::FileId f)
{
    File &file = cache_[f];
    std::uint64_t blocks =
        (server_->fileSize(f) + ioUnit_ - 1) / ioUnit_;
    for (std::uint64_t b = 0; b < blocks; ++b)
        file.resident.insert(b);
}

} // namespace vpp::baseline
