#include "db/cluster.h"

#include <memory>
#include <utility>
#include <vector>

#include "db/lock.h"
#include "sim/random.h"
#include "sim/resource.h"
#include "sim/shard.h"
#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/sync.h"

namespace vpp::db {

namespace {

struct Cluster;

/**
 * One branch partition: a full database node living on its own
 * logical shard. All of its state — processors, locks, RNG stream,
 * response distributions — is touched only by code executing on its
 * shard, which is what lets shards run on parallel host threads with
 * no locking.
 */
struct Node
{
    Node(Cluster &c, unsigned nodeId);

    sim::Duration instr(double minstr) const;

    sim::Task<> arrivals();
    sim::Task<> localTxn(sim::SimTime arrival);
    sim::Task<> remoteTxn(sim::SimTime arrival);
    sim::Task<> serveRemote(sim::Promise<> done, unsigned home);

    Cluster &cluster;
    unsigned id;
    sim::Simulation &sim;
    sim::CpuPool cpus;
    HierarchicalLockManager locks;
    sim::Random rng;
    sim::Distribution resp;       ///< every txn homed here (ms)
    sim::Distribution remoteResp; ///< the remote-branch subset (ms)
    std::uint64_t arrived = 0;
};

struct Cluster
{
    explicit Cluster(const ClusterParams &p)
        : params(p),
          engine(p.nodes, p.netLatency, p.workers)
    {
        nodes.reserve(p.nodes);
        for (unsigned i = 0; i < p.nodes; ++i)
            nodes.push_back(std::make_unique<Node>(*this, i));
    }

    ClusterParams params;
    sim::ShardedSimulation engine;
    std::vector<std::unique_ptr<Node>> nodes;
};

Node::Node(Cluster &c, unsigned nodeId)
    : cluster(c), id(nodeId), sim(c.engine.shard(nodeId)),
      cpus(sim, c.params.cpusPerNode),
      locks(sim, c.params.relations),
      // Independent per-node streams: splitmix64 scrambles the node
      // id so neighbouring nodes do not correlate.
      rng(c.params.seed ^
          (0x9e3779b97f4a7c15ull * (std::uint64_t{nodeId} + 1)))
{}

sim::Duration
Node::instr(double minstr) const
{
    return static_cast<sim::Duration>(minstr * 1e9 /
                                      cluster.params.mips);
}

sim::Task<>
Node::arrivals()
{
    const ClusterParams &p = cluster.params;
    const sim::SimTime end = sim::sec(p.durationSec);
    const double meanNs = 1e9 * p.nodes / p.tps;
    while (sim.now() < end) {
        co_await sim.delay(
            static_cast<sim::Duration>(rng.exponential(meanNs)));
        ++arrived;
        sim::SimTime t = sim.now();
        if (p.nodes > 1 && rng.uniform() < p.remoteFraction)
            sim.spawn(remoteTxn(t));
        else
            sim.spawn(localTxn(t));
    }
}

sim::Task<>
Node::localTxn(sim::SimTime arrival)
{
    const ClusterParams &p = cluster.params;
    int rel = static_cast<int>(rng.below(p.relations));
    std::uint64_t page = rng.below(p.pagesPerRelation);

    co_await locks.lockRelation(rel, LockMode::IX);
    co_await locks.lockPage(rel, page, LockMode::X);

    co_await cpus.acquire();
    co_await cpus.compute(instr(p.dcMInstr));
    cpus.release();

    locks.unlockPage(rel, page, LockMode::X);
    locks.unlockRelation(rel, LockMode::IX);

    resp.add(sim::toMsec(sim.now() - arrival));
}

sim::Task<>
Node::remoteTxn(sim::SimTime arrival)
{
    const ClusterParams &p = cluster.params;
    int rel = static_cast<int>(rng.below(p.relations));
    std::uint64_t page = rng.below(p.pagesPerRelation);
    unsigned r = static_cast<unsigned>(rng.below(p.nodes - 1));
    if (r >= id)
        ++r;

    co_await locks.lockRelation(rel, LockMode::IX);
    co_await locks.lockPage(rel, page, LockMode::X);

    co_await cpus.acquire();
    co_await cpus.compute(instr(p.dcMInstr));
    cpus.release();

    // Ship the debit to the remote branch and hold the home locks
    // across the round trip (distributed commit) — the scaled
    // version of the paper's hold-locks-while-paging pathology.
    sim::Promise<> done(sim);
    sim::Future<> reply = done.future();
    Node *remote = cluster.nodes[r].get();
    cluster.engine.post(
        r, sim.now() + p.netLatency,
        [remote, done, home = id]() mutable {
            remote->sim.spawn(
                remote->serveRemote(std::move(done), home));
        });
    co_await reply;

    locks.unlockPage(rel, page, LockMode::X);
    locks.unlockRelation(rel, LockMode::IX);

    double ms = sim::toMsec(sim.now() - arrival);
    resp.add(ms);
    remoteResp.add(ms);
}

sim::Task<>
Node::serveRemote(sim::Promise<> done, unsigned home)
{
    const ClusterParams &p = cluster.params;
    int rel = static_cast<int>(rng.below(p.relations));
    std::uint64_t page = rng.below(p.pagesPerRelation);

    co_await locks.lockRelation(rel, LockMode::IX);
    co_await locks.lockPage(rel, page, LockMode::X);

    co_await cpus.acquire();
    co_await cpus.compute(instr(p.remoteMInstr));
    cpus.release();

    locks.unlockPage(rel, page, LockMode::X);
    locks.unlockRelation(rel, LockMode::IX);

    cluster.engine.post(home, sim.now() + p.netLatency,
                        [done]() mutable { done.setValue(); });
}

} // namespace

ClusterResult
runClusterStudy(const ClusterParams &params)
{
    auto cluster = std::make_unique<Cluster>(params);
    // Spawn in node-id order: setup is single-threaded and its
    // program order is part of the determinism contract.
    for (auto &n : cluster->nodes)
        n->sim.spawn(n->arrivals());
    cluster->engine.run(); // drains all in-flight transactions

    ClusterResult r;
    r.nodes = params.nodes;
    r.totalCpus = params.cpusPerNode *
                  static_cast<int>(params.nodes);

    sim::Distribution all;
    sim::Distribution remote;
    sim::Duration busy = 0;
    sim::Duration lockWait = 0;
    for (auto &n : cluster->nodes) {
        all.merge(n->resp);
        remote.merge(n->remoteResp);
        busy += n->cpus.busyTime();
        lockWait += n->locks.totalRelationWaitTime();
    }
    r.avgMs = all.mean();
    r.p99Ms = all.percentile(0.99);
    r.worstMs = all.max();
    r.remoteAvgMs = remote.mean();
    r.txns = all.count();
    r.remoteTxns = remote.count();

    const sim::SimTime endT = cluster->engine.now();
    r.tpsAchieved =
        endT > 0 ? static_cast<double>(all.count()) / sim::toSec(endT)
                 : 0.0;
    const double cpuSeconds = sim::toSec(endT) * r.totalCpus;
    r.cpuUtilization =
        cpuSeconds > 0 ? sim::toSec(busy) / cpuSeconds : 0.0;
    r.lockWaitSec = sim::toSec(lockWait);
    r.epochs = cluster->engine.epochs();
    r.crossEvents = cluster->engine.crossEvents();
    return r;
}

} // namespace vpp::db
