/**
 * @file
 * The database transaction-processing study (paper §3.3, Table 4).
 *
 * "The program is a mixture of implementation and simulation. The
 * locks were implemented and the parallelism is real. However, the
 * execution of a transaction is simulated by looping for some number
 * of instructions and a page fault is simulated by a delay."
 *
 * This module takes the same approach on the simulated SGI 4D/380:
 * six processors, a 120 MB database, open Poisson arrivals of 40
 * transactions per second, 95 % DebitCredit / 5 % two-relation joins
 * updating a third, hierarchical locking, and four memory
 * configurations for the one-megabyte join index:
 *
 *  - NoIndex:           joins scan their source relations;
 *  - IndexInMemory:     the index is always resident;
 *  - IndexWithPaging:   the program's virtual memory exceeds its
 *                       allocation by 1 MB, so the index is evicted
 *                       every ~500 transactions and must be paged
 *                       back from disk — while locks are held;
 *  - IndexRegeneration: the application is told its allocation
 *                       shrank, discards the index, and regenerates
 *                       it in memory when next needed (the
 *                       application-controlled policy the paper
 *                       advocates).
 */

#ifndef VPP_DB_STUDY_H
#define VPP_DB_STUDY_H

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace vpp::db {

enum class DbConfig
{
    NoIndex,
    IndexInMemory,
    IndexWithPaging,
    IndexRegeneration,
};

const char *dbConfigName(DbConfig c);

struct DbParams
{
    int cpus = 6;
    double mips = 30.0;        ///< per-CPU (SGI 4D/380)
    double tps = 40.0;         ///< open arrival rate
    double joinFraction = 0.05;
    int relations = 20;        ///< 120 MB database, ~6 MB each
    std::uint64_t pagesPerRelation = 1536;
    std::uint64_t indexPages = 256; ///< the 1 MB index
    double dcMInstr = 0.6;          ///< DebitCredit work (~20 ms)
    double joinProbeMInstr = 11.0;  ///< index join (~370 ms)
    double joinScanMInstr = 68.0;   ///< scan join (~2.3 s)
    double regenMInstr = 10.0;      ///< in-memory index rebuild
    sim::Duration pageFaultDelay = sim::msec(13); ///< per-page fault
    int pagingPeriodTxns = 500; ///< eviction/discard cadence
    double durationSec = 250.0; ///< arrival window
    std::uint64_t seed = 42;
};

struct DbResult
{
    std::string config;
    double avgMs = 0;     ///< Table 4 column 1
    double worstMs = 0;   ///< Table 4 column 2
    double dcAvgMs = 0;
    double dcWorstMs = 0;
    double joinAvgMs = 0;
    double joinWorstMs = 0;
    double p99Ms = 0;
    std::uint64_t txns = 0;
    std::uint64_t joins = 0;
    std::uint64_t indexPageFaults = 0;
    std::uint64_t indexRebuilds = 0;
    std::uint64_t indexEvictions = 0;
    double cpuUtilization = 0;
    double lockWaitSec = 0;
};

DbResult runDbStudy(DbConfig config, const DbParams &params = {});

} // namespace vpp::db

#endif // VPP_DB_STUDY_H
