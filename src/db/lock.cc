#include "db/lock.h"

namespace vpp::db {

const char *
lockModeName(LockMode m)
{
    switch (m) {
      case LockMode::IS: return "IS";
      case LockMode::IX: return "IX";
      case LockMode::S: return "S";
      case LockMode::X: return "X";
    }
    return "?";
}

bool
lockCompatible(LockMode a, LockMode b)
{
    static const bool matrix[4][4] = {
        //            IS     IX     S      X
        /* IS */ {true, true, true, false},
        /* IX */ {true, true, false, false},
        /* S  */ {true, false, true, false},
        /* X  */ {false, false, false, false},
    };
    return matrix[static_cast<int>(a)][static_cast<int>(b)];
}

bool
MultiModeLock::compatibleWithHolders(LockMode m) const
{
    for (int i = 0; i < 4; ++i) {
        if (held_[i] > 0 &&
            !lockCompatible(m, static_cast<LockMode>(i))) {
            return false;
        }
    }
    return true;
}

bool
MultiModeLock::tryAcquire(LockMode m)
{
    if (queue_.empty() && compatibleWithHolders(m)) {
        ++held_[static_cast<int>(m)];
        return true;
    }
    return false;
}

sim::Task<>
MultiModeLock::acquire(LockMode m)
{
    if (tryAcquire(m))
        co_return;
    ++waits_;
    queue_.push_back(Waiter{m, sim::Promise<>(*sim_), sim_->now()});
    auto fut = queue_.back().wake.future();
    co_await fut;
}

void
MultiModeLock::release(LockMode m)
{
    --held_[static_cast<int>(m)];
    drainQueue();
}

void
MultiModeLock::drainQueue()
{
    // Grant from the front while the next waiter is compatible; stop
    // at the first incompatible one (FIFO fairness).
    while (!queue_.empty() &&
           compatibleWithHolders(queue_.front().mode)) {
        Waiter w = std::move(queue_.front());
        queue_.pop_front();
        ++held_[static_cast<int>(w.mode)];
        waitTime_ += sim_->now() - w.since;
        w.wake.setValue();
    }
}

HierarchicalLockManager::HierarchicalLockManager(sim::Simulation &s,
                                                 int relations)
    : sim_(&s)
{
    relations_.reserve(relations);
    for (int i = 0; i < relations; ++i)
        relations_.push_back(std::make_unique<MultiModeLock>(s));
}

sim::Task<>
HierarchicalLockManager::lockRelation(int rel, LockMode m)
{
    co_await relations_.at(rel)->acquire(m);
}

void
HierarchicalLockManager::unlockRelation(int rel, LockMode m)
{
    relations_.at(rel)->release(m);
}

sim::Task<>
HierarchicalLockManager::lockPage(int rel, std::uint64_t page,
                                  LockMode m)
{
    auto &slot = pages_[{rel, page}];
    if (!slot)
        slot = std::make_unique<MultiModeLock>(*sim_);
    co_await slot->acquire(m);
}

void
HierarchicalLockManager::unlockPage(int rel, std::uint64_t page,
                                    LockMode m)
{
    auto it = pages_.find({rel, page});
    if (it != pages_.end())
        it->second->release(m);
}

} // namespace vpp::db
