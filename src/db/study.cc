#include "db/study.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "db/lock.h"
#include "sim/random.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/sync.h"

namespace vpp::db {

const char *
dbConfigName(DbConfig c)
{
    switch (c) {
      case DbConfig::NoIndex: return "No index";
      case DbConfig::IndexInMemory: return "Index in memory";
      case DbConfig::IndexWithPaging: return "Index with paging";
      case DbConfig::IndexRegeneration: return "Index regeneration";
    }
    return "?";
}

namespace {

/** Shared state of one study run. */
struct Study
{
    Study(DbConfig cfg, const DbParams &p)
        : config(cfg), params(p), cpus(sim, p.cpus),
          locks(sim, p.relations), indexLatch(sim), rng(p.seed)
    {}

    sim::Duration
    instr(double minstr) const
    {
        return static_cast<sim::Duration>(minstr * 1e9 / params.mips);
    }

    /**
     * Make sure the join index is usable. In the paging
     * configuration a non-resident index is demand-paged from disk —
     * serialized behind the index latch, while the caller's locks
     * stay held (the paper's key pathology). In the regeneration
     * configuration the application rebuilds it from in-memory data.
     */
    sim::Task<>
    ensureIndex()
    {
        if (config == DbConfig::NoIndex)
            co_return;
        if (indexResident)
            co_return;
        co_await indexLatch.lock();
        if (!indexResident) {
            if (config == DbConfig::IndexWithPaging) {
                for (std::uint64_t pg = 0; pg < params.indexPages;
                     ++pg) {
                    co_await sim.delay(params.pageFaultDelay);
                    ++indexPageFaults;
                }
            } else if (config == DbConfig::IndexRegeneration) {
                co_await cpus.acquire();
                co_await cpus.compute(instr(params.regenMInstr));
                cpus.release();
                ++indexRebuilds;
            }
            indexResident = true;
        }
        indexLatch.unlock();
    }

    sim::Task<>
    debitCredit(sim::SimTime arrival)
    {
        int rel = static_cast<int>(rng.below(params.relations));
        std::uint64_t page = rng.below(params.pagesPerRelation);

        co_await locks.lockRelation(rel, LockMode::IX);
        co_await locks.lockPage(rel, page, LockMode::X);

        // The account lookup goes through the index (when one
        // exists); a fault here extends lock hold time.
        co_await ensureIndex();

        co_await cpus.acquire();
        co_await cpus.compute(instr(params.dcMInstr));
        cpus.release();

        locks.unlockPage(rel, page, LockMode::X);
        locks.unlockRelation(rel, LockMode::IX);

        dcResp.add(sim::toMsec(sim.now() - arrival));
        ++completed;
    }

    sim::Task<>
    join(sim::SimTime arrival)
    {
        // Two source relations, one (distinct) target updated.
        int a = static_cast<int>(rng.below(params.relations));
        int b, c;
        do {
            b = static_cast<int>(rng.below(params.relations));
        } while (b == a);
        do {
            c = static_cast<int>(rng.below(params.relations));
        } while (c == a || c == b);

        const bool scan = config == DbConfig::NoIndex;

        struct Need
        {
            int rel;
            LockMode mode;
        };
        // Cursor-style locking for both join flavours: intention
        // locks on the relations, page locks beneath (a scan holds
        // each page lock only briefly as its cursor moves). What the
        // missing index costs is processor time: a scan join occupies
        // a CPU for seconds, and at 40 TPS the scans saturate the
        // six-processor machine, queueing every DebitCredit behind
        // them.
        std::vector<Need> needs = {{a, LockMode::IS},
                                   {b, LockMode::IS},
                                   {c, LockMode::IX}};
        std::sort(needs.begin(), needs.end(),
                  [](const Need &x, const Need &y) {
                      return x.rel < y.rel;
                  });
        for (const Need &n : needs)
            co_await locks.lockRelation(n.rel, n.mode);

        // Page locks beneath the intention locks: probed source pages
        // (index joins only) and the updated target pages.
        std::vector<std::pair<int, std::uint64_t>> spages;
        std::vector<std::pair<int, std::uint64_t>> xpages;
        for (int src : {a, b}) {
            for (int i = 0; i < 3; ++i) {
                spages.emplace_back(
                    src, rng.below(params.pagesPerRelation));
            }
        }
        for (int i = 0; i < 3; ++i)
            xpages.emplace_back(c, rng.below(params.pagesPerRelation));
        for (const auto &[rel, pg] : spages)
            co_await locks.lockPage(rel, pg, LockMode::S);
        for (const auto &[rel, pg] : xpages)
            co_await locks.lockPage(rel, pg, LockMode::X);

        co_await ensureIndex();

        double work = scan ? params.joinScanMInstr
                           : params.joinProbeMInstr;
        co_await cpus.acquire();
        co_await cpus.compute(instr(work));
        cpus.release();

        for (const auto &[rel, pg] : xpages)
            locks.unlockPage(rel, pg, LockMode::X);
        for (const auto &[rel, pg] : spages)
            locks.unlockPage(rel, pg, LockMode::S);
        for (auto it = needs.rbegin(); it != needs.rend(); ++it)
            locks.unlockRelation(it->rel, it->mode);

        joinResp.add(sim::toMsec(sim.now() - arrival));
        ++completed;
    }

    sim::Task<>
    arrivals()
    {
        sim::SimTime end = sim::sec(params.durationSec);
        while (sim.now() < end) {
            co_await sim.delay(static_cast<sim::Duration>(
                rng.exponential(1e9 / params.tps)));
            ++arrived;
            // Memory pressure: every pagingPeriodTxns transactions
            // the 1 MB shortfall costs the program its index — by
            // transparent eviction (paging) or by an allocation
            // notice the application answers with a discard
            // (regeneration).
            if ((config == DbConfig::IndexWithPaging ||
                 config == DbConfig::IndexRegeneration) &&
                arrived % params.pagingPeriodTxns == 0) {
                indexResident = false;
                ++indexEvictions;
            }
            sim::SimTime t = sim.now();
            if (rng.uniform() < params.joinFraction)
                sim.spawn(join(t));
            else
                sim.spawn(debitCredit(t));
        }
    }

    DbConfig config;
    DbParams params;
    sim::Simulation sim;
    sim::CpuPool cpus;
    HierarchicalLockManager locks;
    sim::SimMutex indexLatch;
    sim::Random rng;

    bool indexResident = true;
    std::uint64_t arrived = 0;
    std::uint64_t completed = 0;
    std::uint64_t indexPageFaults = 0;
    std::uint64_t indexRebuilds = 0;
    std::uint64_t indexEvictions = 0;
    sim::Distribution dcResp;
    sim::Distribution joinResp;
};

} // namespace

DbResult
runDbStudy(DbConfig config, const DbParams &params)
{
    auto study = std::make_unique<Study>(config, params);
    study->sim.spawn(study->arrivals());
    study->sim.run(); // drains all in-flight transactions

    DbResult r;
    r.config = dbConfigName(config);
    sim::Distribution all;
    for (double v : study->dcResp.samples())
        all.add(v);
    for (double v : study->joinResp.samples())
        all.add(v);
    r.avgMs = all.mean();
    r.worstMs = all.max();
    r.p99Ms = all.percentile(0.99);
    r.dcAvgMs = study->dcResp.mean();
    r.dcWorstMs = study->dcResp.max();
    r.joinAvgMs = study->joinResp.mean();
    r.joinWorstMs = study->joinResp.max();
    r.txns = all.count();
    r.joins = study->joinResp.count();
    r.indexPageFaults = study->indexPageFaults;
    r.indexRebuilds = study->indexRebuilds;
    r.indexEvictions = study->indexEvictions;
    r.cpuUtilization = study->cpus.utilization();
    r.lockWaitSec =
        sim::toSec(study->locks.totalRelationWaitTime());
    return r;
}

} // namespace vpp::db
