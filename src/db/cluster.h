/**
 * @file
 * The scaled DebitCredit cluster study: one simulation, hundreds of
 * simulated CPUs.
 *
 * The paper's §3.3 study runs 6 processors on one SGI 4D/380 at 40
 * TPS. This study is the same workload grown to production scale: N
 * database nodes, each a branch partition with its own processors,
 * relations, hierarchical locks and Poisson arrival stream, joined
 * by a network whose one-way hop latency is the sharded engine's
 * lookahead (sim/shard.h). Most transactions are branch-local; a
 * TPC-A-style fraction debit a *remote* branch, holding their home
 * locks across the round trip — the distributed version of the
 * paper's hold-locks-while-paging pathology, and the cross-shard
 * traffic that exercises the mailbox/epoch machinery.
 *
 * Every node is one logical shard, so a 32-node x 8-CPU run is a
 * single 256-CPU simulation that `workers` host threads execute in
 * parallel — with results bit-identical at any worker count.
 */

#ifndef VPP_DB_CLUSTER_H
#define VPP_DB_CLUSTER_H

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace vpp::db {

struct ClusterParams
{
    unsigned nodes = 16;       ///< logical shards
    int cpusPerNode = 8;       ///< simulated CPUs per node
    double mips = 500.0;       ///< per-CPU (a 2020s core, not 1992's)
    double tps = 20000.0;      ///< total open arrival rate, split evenly
    double remoteFraction = 0.15; ///< txns that debit a remote branch
    int relations = 8;            ///< per node
    std::uint64_t pagesPerRelation = 1024;
    double dcMInstr = 0.6;     ///< home-branch debit/credit work
    double remoteMInstr = 0.3; ///< remote branch's share
    /// One-way network hop; doubles as the engine lookahead, so it
    /// bounds how wide the parallel epoch windows can be.
    sim::Duration netLatency = sim::usec(500);
    double durationSec = 20.0; ///< arrival window
    std::uint64_t seed = 42;
    unsigned workers = 0;      ///< host threads; 0 = VPP_SHARDS, else 1
};

struct ClusterResult
{
    unsigned nodes = 0;
    int totalCpus = 0;
    double avgMs = 0;
    double p99Ms = 0;
    double worstMs = 0;
    double remoteAvgMs = 0;
    std::uint64_t txns = 0;
    std::uint64_t remoteTxns = 0;
    double tpsAchieved = 0;    ///< completed / max shard clock
    double cpuUtilization = 0; ///< mean across every CPU in the cluster
    double lockWaitSec = 0;
    std::uint64_t epochs = 0;      ///< deterministic window count
    std::uint64_t crossEvents = 0; ///< deterministic mailbox traffic
};

ClusterResult runClusterStudy(const ClusterParams &params = {});

} // namespace vpp::db

#endif // VPP_DB_CLUSTER_H
