/**
 * @file
 * The shared-kernel DebitCredit study: ONE kernel, many CPUs, many
 * shards.
 *
 * db/cluster scales DebitCredit as a federation — every shard is a
 * whole node with its own Kernel. This study is the paper's own
 * scenario grown instead: a single multi-CPU machine whose one
 * `core::Kernel` (plus SPCM and one external segment manager)
 * services page faults from CPUs partitioned across
 * `sim::ShardedSimulation` shards. Shard s owns CPUs
 * [s*cpusPerShard, (s+1)*cpusPerShard); the kernel lives on shard 0.
 *
 * Each CPU runs closed-loop transactions touching relation segments.
 * A touch first probes the CPU's own resolve cache
 * (Kernel::cpuResolve) — a hit is serviced entirely on the owning
 * shard, no cross-shard traffic at all. A miss travels to shard 0
 * through the engine mailboxes (one IPI-latency hop each way), where
 * the kernel resolves it through the regular fault path — per-CPU
 * in-queues, coalesced batches, the external manager — and ships the
 * resolution back for the CPU to cache. Cache validity uses the
 * per-segment epoch snapshot the kernel publishes from the engine's
 * single-threaded barrier hook, so output is byte-identical at any
 * worker count.
 *
 * A home-shard recycler steadily reclaims relation pages through the
 * manager, so fault traffic (and epoch churn) continues at steady
 * state instead of dying once the working set is resident.
 */

#ifndef VPP_DB_SHARED_KERNEL_H
#define VPP_DB_SHARED_KERNEL_H

#include <cstdint>

#include "sim/time.h"

namespace vpp::db {

struct SharedKernelParams
{
    unsigned shards = 8;   ///< logical shards (CPU groups)
    int cpusPerShard = 8;  ///< simulated CPUs per shard
    double mips = 500.0;   ///< per-CPU
    int relations = 16;    ///< one segment each
    std::uint64_t pagesPerRelation = 128;
    int touchesPerTxn = 8;
    double txnMInstr = 0.2;    ///< compute per transaction
    double hotFraction = 0.9;  ///< touches aimed at the CPU's hot set
    int hotPages = 64;         ///< per-CPU hot window
    double writeFraction = 0.25;
    /// One-way CPU->kernel IPI; doubles as the engine lookahead.
    sim::Duration ipiLatency = sim::usec(50);
    sim::Duration reclaimEvery = sim::msec(10); ///< recycler period
    std::uint64_t reclaimBatch = 16; ///< pages reclaimed per tick
    double durationSec = 0.4;
    std::uint64_t seed = 42;
    unsigned workers = 0; ///< host threads; 0 = VPP_SHARDS, else 1
};

struct SharedKernelResult
{
    unsigned shards = 0;
    int totalCpus = 0;

    std::uint64_t txns = 0;
    std::uint64_t touches = 0;
    std::uint64_t probeHits = 0;   ///< per-CPU cache probe hits
    std::uint64_t probeMisses = 0; ///< per-CPU cache probe misses
    std::uint64_t localHits = 0;   ///< touches served with no kernel trip
    std::uint64_t kernelTrips = 0; ///< touches that went to the kernel
    std::uint64_t crossRpcs = 0;   ///< kernel trips from shards != 0

    std::uint64_t faults = 0;
    std::uint64_t faultBatches = 0;
    std::uint64_t faultsCoalesced = 0;
    std::uint64_t cpuTouchesQueued = 0;
    std::uint64_t pagesMigrated = 0;

    double avgMs = 0;
    double p99Ms = 0;
    double worstMs = 0;
    double tpsAchieved = 0;
    double hitRate = 0; ///< localHits / touches
    double cpuUtilization = 0;

    std::uint64_t epochs = 0;
    std::uint64_t crossEvents = 0;
};

SharedKernelResult
runSharedKernelStudy(const SharedKernelParams &params = {});

} // namespace vpp::db

#endif // VPP_DB_SHARED_KERNEL_H
