/**
 * @file
 * Hierarchical locking for the database study (paper §3.3: "A
 * hierarchical locking scheme is used for concurrency control").
 *
 * Standard multi-granularity modes (IS/IX/S/X) on relations plus S/X
 * page locks beneath them. Grants are FIFO: a request that is
 * incompatible with current holders — or behind an incompatible
 * waiter — queues, which prevents writer starvation and makes lock
 * convoys (the phenomenon Table 4 quantifies) behave realistically.
 */

#ifndef VPP_DB_LOCK_H
#define VPP_DB_LOCK_H

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace vpp::db {

enum class LockMode
{
    IS,
    IX,
    S,
    X,
};

const char *lockModeName(LockMode m);

/** Multi-granularity compatibility matrix. */
bool lockCompatible(LockMode a, LockMode b);

/** One lockable object supporting the four modes with FIFO grants. */
class MultiModeLock
{
  public:
    explicit MultiModeLock(sim::Simulation &s) : sim_(&s) {}

    sim::Task<> acquire(LockMode m);
    void release(LockMode m);

    bool tryAcquire(LockMode m);

    int holders(LockMode m) const
    {
        return held_[static_cast<int>(m)];
    }

    int waiting() const { return static_cast<int>(queue_.size()); }

    /** Aggregate time spent blocked on this lock. */
    sim::Duration waitTime() const { return waitTime_; }
    std::uint64_t waits() const { return waits_; }

  private:
    bool compatibleWithHolders(LockMode m) const;
    void drainQueue();

    struct Waiter
    {
        LockMode mode;
        sim::Promise<> wake;
        sim::SimTime since;
    };

    sim::Simulation *sim_;
    int held_[4] = {0, 0, 0, 0};
    std::deque<Waiter> queue_;
    sim::Duration waitTime_ = 0;
    std::uint64_t waits_ = 0;
};

/**
 * Two-level hierarchy: relations (intention + shared/exclusive) and
 * pages under them. Callers must follow the protocol: an intention
 * mode on the relation before any page lock, and acquire relations in
 * ascending id order (deadlock avoidance).
 */
class HierarchicalLockManager
{
  public:
    HierarchicalLockManager(sim::Simulation &s, int relations);

    sim::Task<> lockRelation(int rel, LockMode m);
    void unlockRelation(int rel, LockMode m);

    sim::Task<> lockPage(int rel, std::uint64_t page, LockMode m);
    void unlockPage(int rel, std::uint64_t page, LockMode m);

    MultiModeLock &relation(int rel) { return *relations_.at(rel); }

    sim::Duration
    totalRelationWaitTime() const
    {
        sim::Duration t = 0;
        for (const auto &r : relations_)
            t += r->waitTime();
        return t;
    }

  private:
    sim::Simulation *sim_;
    std::vector<std::unique_ptr<MultiModeLock>> relations_;
    std::map<std::pair<int, std::uint64_t>,
             std::unique_ptr<MultiModeLock>>
        pages_;
};

} // namespace vpp::db

#endif // VPP_DB_LOCK_H
