#include "db/shared_kernel.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/kernel.h"
#include "core/process.h"
#include "hw/config.h"
#include "managers/generic.h"
#include "managers/spcm.h"
#include "sim/random.h"
#include "sim/resource.h"
#include "sim/shard.h"
#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/sync.h"

namespace vpp::db {

namespace {

struct World;

/** One simulated CPU: lives on shard id / cpusPerShard. */
struct Cpu
{
    unsigned id = 0;
    unsigned shard = 0;
    sim::Random rng{0};
    int hotRel = 0;
    std::uint64_t hotStart = 0;
    sim::Distribution resp; ///< per-txn latency (ms)
    std::uint64_t txns = 0;
    std::uint64_t touches = 0;
    std::uint64_t localHits = 0;
    std::uint64_t kernelTrips = 0;
    std::uint64_t crossRpcs = 0;
};

struct World
{
    explicit World(const SharedKernelParams &p);

    sim::Duration instr(double minstr) const
    {
        return static_cast<sim::Duration>(minstr * 1e9 / params.mips);
    }

    sim::Task<> cpuLoop(Cpu &cpu);
    sim::Task<> touchOnce(Cpu &cpu, kernel::SegmentId seg,
                          kernel::PageIndex page, kernel::AccessType a);
    sim::Task<> serveMiss(unsigned cpu, kernel::SegmentId seg,
                          kernel::PageIndex page, kernel::AccessType a,
                          unsigned srcShard, sim::Promise<> done);
    sim::Task<> recycler();

    SharedKernelParams params;
    sim::ShardedSimulation engine;
    sim::Simulation &home; ///< shard 0, where the kernel lives
    hw::MachineConfig machine;
    kernel::Kernel kern;
    mgr::SystemPageCacheManager spcm;
    mgr::GenericSegmentManager manager;
    std::vector<kernel::SegmentId> rels;
    std::vector<std::unique_ptr<kernel::Process>> procs;
    std::vector<std::unique_ptr<Cpu>> cpus;
    std::vector<std::unique_ptr<sim::CpuPool>> pools; ///< per shard
    sim::SimTime end;
};

hw::MachineConfig
sharedKernelMachine()
{
    hw::MachineConfig m = hw::decstation5000_200();
    // Room for the whole database plus the manager's free pool: the
    // study is about fault traffic, not memory pressure.
    m.memoryBytes = 128 << 20;
    m.faultCoalescing = true; // same-instant CPU faults share batches
    return m;
}

World::World(const SharedKernelParams &p)
    : params(p),
      engine(p.shards, p.ipiLatency, p.workers),
      home(engine.shard(0)),
      machine(sharedKernelMachine()),
      kern(home, machine),
      spcm(kern, std::nullopt),
      manager(kern, "dbmgr", hw::ManagerMode::SameProcess, &spcm, 1),
      end(sim::sec(p.durationSec))
{
    manager.initNow(16384, 12288);

    const unsigned ncpus =
        p.shards * static_cast<unsigned>(p.cpusPerShard);
    // Snapshot-mode epochs always (even at workers == 1): validation
    // is a scenario property, not a host-thread property, so every
    // worker count sees identical hits and misses.
    kern.configureCpus(ncpus, /*snapshot_epochs=*/true);
    engine.setEpochHook([this] { kern.publishCpuEpochs(); });

    rels.reserve(p.relations);
    for (int r = 0; r < p.relations; ++r) {
        rels.push_back(kern.createSegmentNow(
            "rel" + std::to_string(r), 4096, p.pagesPerRelation, 1,
            &manager));
    }

    pools.reserve(p.shards);
    for (unsigned s = 0; s < p.shards; ++s) {
        pools.push_back(std::make_unique<sim::CpuPool>(
            engine.shard(s), p.cpusPerShard));
    }

    procs.reserve(ncpus);
    cpus.reserve(ncpus);
    const std::uint64_t hotSpan =
        p.pagesPerRelation > static_cast<std::uint64_t>(p.hotPages)
            ? p.pagesPerRelation - p.hotPages
            : 1;
    for (unsigned c = 0; c < ncpus; ++c) {
        procs.push_back(std::make_unique<kernel::Process>(
            "cpu" + std::to_string(c), 1));
        auto cpu = std::make_unique<Cpu>();
        cpu->id = c;
        cpu->shard = c / static_cast<unsigned>(p.cpusPerShard);
        // Independent per-CPU streams (splitmix64-style scramble).
        cpu->rng = sim::Random(
            p.seed ^
            (0x9e3779b97f4a7c15ull * (std::uint64_t{c} + 1)));
        cpu->hotRel = static_cast<int>(c % p.relations);
        cpu->hotStart =
            ((c / p.relations) * 37ull) % hotSpan;
        cpus.push_back(std::move(cpu));
    }
}

sim::Task<>
World::touchOnce(Cpu &cpu, kernel::SegmentId seg,
                 kernel::PageIndex page, kernel::AccessType a)
{
    ++cpu.touches;
    const std::uint32_t need = a == kernel::AccessType::Write
                                   ? kernel::flag::kWritable
                                   : kernel::flag::kReadable;
    const kernel::CpuResolution *r = kern.cpuResolve(cpu.id, seg, page);
    if (r && (r->flags & need) && (r->regionProt & need) &&
        !(a == kernel::AccessType::Write && r->viaCow)) {
        // Fully local: the cached resolution authorises the access on
        // the owning shard, with no kernel involvement at all.
        ++cpu.localHits;
        co_return;
    }
    ++cpu.kernelTrips;
    if (cpu.shard == 0) {
        // Home CPUs reach the kernel without an IPI hop.
        co_await kern.touchOnCpu(cpu.id, *procs[cpu.id], seg, page, a);
        kern.cpuStore(cpu.id, kern.resolveForCpu(seg, page));
        co_return;
    }
    // Remote CPU: the miss crosses to shard 0, the kernel services it
    // through the per-CPU queue + fault machinery, and the resolution
    // value travels back for this shard to cache.
    ++cpu.crossRpcs;
    sim::Simulation &mySim = engine.shard(cpu.shard);
    sim::Promise<> done(mySim);
    sim::Future<> reply = done.future();
    engine.post(0, mySim.now() + params.ipiLatency,
                [this, c = cpu.id, seg, page, a,
                 src = cpu.shard, done]() mutable {
                    home.spawn(serveMiss(c, seg, page, a, src,
                                         std::move(done)));
                });
    co_await reply;
}

sim::Task<>
World::serveMiss(unsigned cpu, kernel::SegmentId seg,
                 kernel::PageIndex page, kernel::AccessType a,
                 unsigned srcShard, sim::Promise<> done)
{
    co_await kern.touchOnCpu(cpu, *procs[cpu], seg, page, a);
    const kernel::CpuResolution v = kern.resolveForCpu(seg, page);
    engine.post(srcShard, home.now() + params.ipiLatency,
                [this, cpu, v, done]() mutable {
                    // Runs on the owning shard: it alone writes this
                    // CPU's cache.
                    kern.cpuStore(cpu, v);
                    done.setValue();
                });
}

sim::Task<>
World::cpuLoop(Cpu &cpu)
{
    sim::Simulation &sim = engine.shard(cpu.shard);
    sim::CpuPool &pool = *pools[cpu.shard];
    const SharedKernelParams &p = params;
    while (sim.now() < end) {
        const sim::SimTime arrival = sim.now();
        co_await pool.acquire();
        co_await pool.compute(instr(p.txnMInstr));
        for (int t = 0; t < p.touchesPerTxn; ++t) {
            int rel;
            kernel::PageIndex page;
            if (cpu.rng.uniform() < p.hotFraction) {
                rel = cpu.hotRel;
                page = cpu.hotStart +
                       cpu.rng.below(
                           static_cast<std::uint64_t>(p.hotPages));
            } else {
                rel = static_cast<int>(
                    cpu.rng.below(static_cast<std::uint64_t>(
                        p.relations)));
                page = cpu.rng.below(p.pagesPerRelation);
            }
            const kernel::AccessType a =
                cpu.rng.uniform() < p.writeFraction
                    ? kernel::AccessType::Write
                    : kernel::AccessType::Read;
            co_await touchOnce(cpu, rels[rel], page, a);
        }
        pool.release();
        ++cpu.txns;
        cpu.resp.add(sim::toMsec(sim.now() - arrival));
    }
}

sim::Task<>
World::recycler()
{
    // Steady reclaim pressure from the home shard: sweep the database
    // round-robin so pages keep leaving and re-entering residency —
    // the fault traffic (and the per-segment epoch churn behind the
    // caches) never dries up once the working set is resident.
    int rel = 0;
    kernel::PageIndex page = 0;
    while (home.now() < end) {
        co_await home.delay(params.reclaimEvery);
        std::uint64_t reclaimed = 0;
        std::uint64_t scanned = 0;
        const std::uint64_t total = static_cast<std::uint64_t>(
                                        params.relations) *
                                    params.pagesPerRelation;
        while (reclaimed < params.reclaimBatch && scanned < total) {
            ++scanned;
            if (kern.segment(rels[rel]).findPage(page)) {
                co_await manager.reclaimPage(kern, rels[rel], page);
                ++reclaimed;
            }
            if (++page >= params.pagesPerRelation) {
                page = 0;
                rel = (rel + 1) % params.relations;
            }
        }
    }
}

} // namespace

SharedKernelResult
runSharedKernelStudy(const SharedKernelParams &params)
{
    auto w = std::make_unique<World>(params);
    // Spawn in CPU-id order: setup program order is part of the
    // determinism contract.
    for (auto &cpu : w->cpus)
        w->engine.shard(cpu->shard).spawn(w->cpuLoop(*cpu));
    w->home.spawn(w->recycler());
    w->engine.run();

    SharedKernelResult r;
    r.shards = params.shards;
    r.totalCpus =
        params.cpusPerShard * static_cast<int>(params.shards);

    sim::Distribution all;
    sim::Duration busy = 0;
    for (auto &cpu : w->cpus) {
        all.merge(cpu->resp);
        r.txns += cpu->txns;
        r.touches += cpu->touches;
        r.localHits += cpu->localHits;
        r.kernelTrips += cpu->kernelTrips;
        r.crossRpcs += cpu->crossRpcs;
        r.probeHits += w->kern.cpuHits(cpu->id);
        r.probeMisses += w->kern.cpuMisses(cpu->id);
    }
    for (auto &pool : w->pools)
        busy += pool->busyTime();
    // Fold the per-CPU cache counters into this thread's resolve
    // counters so the sweep's stderr cost line reports them.
    kernel::addThreadResolveCounts(r.probeHits, r.probeMisses);

    const kernel::Kernel::Stats &ks = w->kern.stats();
    r.faults = ks.faults;
    r.faultBatches = ks.faultBatches;
    r.faultsCoalesced = ks.faultsCoalesced;
    r.cpuTouchesQueued = ks.cpuTouchesQueued;
    r.pagesMigrated = ks.pagesMigrated;

    r.avgMs = all.mean();
    r.p99Ms = all.percentile(0.99);
    r.worstMs = all.max();
    const sim::SimTime endT = w->engine.now();
    r.tpsAchieved =
        endT > 0 ? static_cast<double>(r.txns) / sim::toSec(endT)
                 : 0.0;
    r.hitRate = r.touches > 0 ? static_cast<double>(r.localHits) /
                                    static_cast<double>(r.touches)
                              : 0.0;
    const double cpuSeconds = sim::toSec(endT) * r.totalCpus;
    r.cpuUtilization =
        cpuSeconds > 0 ? sim::toSec(busy) / cpuSeconds : 0.0;
    r.epochs = w->engine.epochs();
    r.crossEvents = w->engine.crossEvents();
    return r;
}

} // namespace vpp::db
