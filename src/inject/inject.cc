#include "inject/inject.h"

namespace vpp::inject {

const char *
managerActionName(ManagerAction a)
{
    switch (a) {
      case ManagerAction::None: return "None";
      case ManagerAction::Stall: return "Stall";
      case ManagerAction::Crash: return "Crash";
      case ManagerAction::Lie: return "Lie";
    }
    return "Unknown";
}

Engine::Engine(const Config &cfg)
    : cfg_(cfg),
      // Distinct odd salts; Random's splitmix64 expansion decorrelates
      // the streams even for adjacent seeds.
      diskRng_(cfg.seed ^ 0xd15c0000d15c0001ull),
      mgrRng_(cfg.seed ^ 0x4d4752000000004dull),
      pressureRng_(cfg.seed ^ 0x5052455353000055ull)
{}

bool
Engine::diskReadError()
{
    if (!cfg_.enabled || cfg_.disk.readErrorProb <= 0.0)
        return false;
    if (!diskRng_.chance(cfg_.disk.readErrorProb))
        return false;
    ++stats_.readErrors;
    return true;
}

bool
Engine::diskWriteError()
{
    if (!cfg_.enabled || cfg_.disk.writeErrorProb <= 0.0)
        return false;
    if (!diskRng_.chance(cfg_.disk.writeErrorProb))
        return false;
    ++stats_.writeErrors;
    return true;
}

sim::Duration
Engine::diskLatencySpike()
{
    if (!cfg_.enabled || cfg_.disk.latencySpikeProb <= 0.0)
        return 0;
    if (!diskRng_.chance(cfg_.disk.latencySpikeProb))
        return 0;
    ++stats_.latencySpikes;
    return cfg_.disk.latencySpike;
}

ManagerAction
Engine::managerAction()
{
    const ManagerFaults &m = cfg_.manager;
    const double total = m.stallProb + m.crashProb + m.lieProb;
    if (!cfg_.enabled || total <= 0.0)
        return ManagerAction::None;
    // One draw decides among the three fates so their relative rates
    // are exact and the stream advances once per invocation.
    double u = mgrRng_.uniform();
    if (u < m.stallProb) {
        ++stats_.stalls;
        return ManagerAction::Stall;
    }
    if (u < m.stallProb + m.crashProb) {
        ++stats_.crashes;
        return ManagerAction::Crash;
    }
    if (u < total) {
        ++stats_.lies;
        return ManagerAction::Lie;
    }
    return ManagerAction::None;
}

std::uint64_t
Engine::reclaimStorm()
{
    const PressureFaults &p = cfg_.pressure;
    if (!cfg_.enabled || p.stormProb <= 0.0 || p.stormFrames == 0)
        return 0;
    if (!pressureRng_.chance(p.stormProb))
        return 0;
    ++stats_.storms;
    return p.stormFrames;
}

} // namespace vpp::inject
