/**
 * @file
 * Seed-deterministic fault injection (vpp::inject).
 *
 * The paper's safety argument (§2-§3) is that external page-cache
 * management cannot wedge the machine: the kernel retains ultimate
 * authority and can redeliver faults, fall back to the default
 * manager, and unilaterally reclaim an unresponsive manager's frames.
 * This engine exists to exercise those paths. It perturbs three
 * layers:
 *
 *  - disk: per-operation read/write errors and latency spikes
 *    (hw::Disk consults the engine inside its transfer path);
 *  - managers: stall for a fixed simulated time, crash mid-fault, or
 *    "lie" by returning without resolving (kernel::Kernel consults
 *    the engine around each handler invocation);
 *  - memory pressure: reclaim storms that force every SPCM client to
 *    shed frames (mgr::SystemPageCacheManager consults the engine on
 *    each allocation request).
 *
 * Determinism: each layer draws from its own xoshiro256++ stream
 * derived from Config::seed, so enabling one fault class never shifts
 * another's sequence, and two runs with the same seed are
 * bit-identical at any --jobs value. A null engine pointer — the
 * default everywhere — is a structural no-op: none of the consulting
 * sites schedule events, draw random numbers, or branch differently,
 * so every committed bench baseline stays byte-identical. An engine
 * constructed with `enabled = false` behaves identically to a null
 * pointer (no draws, no faults).
 */

#ifndef VPP_INJECT_INJECT_H
#define VPP_INJECT_INJECT_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/random.h"
#include "sim/time.h"

namespace vpp::inject {

/** Disk-layer fault rates (hw::Disk). */
struct DiskFaults
{
    double readErrorProb = 0.0;   ///< P(injected error per read)
    double writeErrorProb = 0.0;  ///< P(injected error per write)
    double latencySpikeProb = 0.0;///< P(latency spike per transfer)
    sim::Duration latencySpike = sim::msec(50);
};

/** Manager-layer fault rates (kernel::Kernel handler invocations). */
struct ManagerFaults
{
    double stallProb = 0.0; ///< P(handler stalls before running)
    sim::Duration stallTime = sim::msec(200);
    double crashProb = 0.0; ///< P(handler throws mid-fault)
    double lieProb = 0.0;   ///< P(handler returns without resolving)
};

/** Memory-pressure fault rates (mgr::SystemPageCacheManager). */
struct PressureFaults
{
    double stormProb = 0.0;      ///< P(reclaim storm per SPCM request)
    std::uint64_t stormFrames = 0; ///< frames demanded from each client
    /// Clients swept per storm (round-robin). 0 — the default, and the
    /// legacy behaviour — sweeps every registered client, which at
    /// multi-tenant scale turns each storm into a thundering herd.
    std::uint64_t stormClients = 0;
};

struct Config
{
    bool enabled = false; ///< master switch; false == engine absent
    std::uint64_t seed = 1;
    DiskFaults disk;
    ManagerFaults manager;
    PressureFaults pressure;
};

/** What the engine decided to do to one manager invocation. */
enum class ManagerAction
{
    None,
    Stall,
    Crash,
    Lie,
};

const char *managerActionName(ManagerAction a);

/**
 * Thrown by the kernel on behalf of a manager selected for a crash;
 * models the manager process dying mid-fault. The kernel's resilient
 * delivery path contains it; without that path it propagates like any
 * manager bug would.
 */
class InjectedCrash : public std::runtime_error
{
  public:
    explicit InjectedCrash(const std::string &what)
        : std::runtime_error("injected manager crash: " + what)
    {}
};

class Engine
{
  public:
    explicit Engine(const Config &cfg);

    bool enabled() const { return cfg_.enabled; }
    const Config &config() const { return cfg_; }

    // ------------------------------------------------------------------
    // Disk layer
    // ------------------------------------------------------------------

    /** Decide whether this disk read fails. */
    bool diskReadError();

    /** Decide whether this disk write fails. */
    bool diskWriteError();

    /** Extra latency for this transfer (0 = no spike). */
    sim::Duration diskLatencySpike();

    // ------------------------------------------------------------------
    // Manager layer
    // ------------------------------------------------------------------

    /** Decide the fate of one manager invocation (one draw). */
    ManagerAction managerAction();

    sim::Duration managerStallTime() const
    {
        return cfg_.manager.stallTime;
    }

    // ------------------------------------------------------------------
    // Memory-pressure layer
    // ------------------------------------------------------------------

    /** Frames each SPCM client must shed now (0 = no storm). */
    std::uint64_t reclaimStorm();

    /** Injection decisions taken so far, per class. */
    struct Stats
    {
        std::uint64_t readErrors = 0;
        std::uint64_t writeErrors = 0;
        std::uint64_t latencySpikes = 0;
        std::uint64_t stalls = 0;
        std::uint64_t crashes = 0;
        std::uint64_t lies = 0;
        std::uint64_t storms = 0;

        void reset() { *this = Stats{}; }
    };

    const Stats &stats() const { return stats_; }

  private:
    Config cfg_;
    // One stream per layer: enabling disk faults must not shift the
    // manager-fault sequence (and vice versa), or sweeping one axis
    // would silently re-randomise the others.
    sim::Random diskRng_;
    sim::Random mgrRng_;
    sim::Random pressureRng_;
    Stats stats_;
};

} // namespace vpp::inject

#endif // VPP_INJECT_INJECT_H
