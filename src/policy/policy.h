/**
 * @file
 * Pluggable replacement-policy interface (ROADMAP item 3).
 *
 * The paper's central claim is that applications beat the kernel at
 * paging policy. To measure that, policy must be a first-class axis:
 * this interface is the clock logic extracted from
 * DefaultSegmentManager::clockPass / the SPCM's conventional-clock
 * comparator, narrow enough that five very different policies fit
 * behind it — the legacy sampling Clock, segmented LRU, 2Q, WSClock,
 * and a trace-driven Belady offline optimum.
 *
 * Contract (see DESIGN.md "Replacement-policy invariants"):
 *
 *  - insert(p) makes an absent page known/resident (no-op if present);
 *    touch(p) records a reference (no-op if absent); victim() chooses
 *    AND removes the eviction victim; remove(p) is an external
 *    removal (segment teardown, kernel bypass).
 *  - Determinism: every decision is a pure function of the call
 *    sequence. Implementations order state by insertion/recency lists
 *    or by (key, PageId) pairs — never by pointer value or hash-table
 *    iteration order — so identical call sequences yield identical
 *    victim sequences on every host.
 *  - Tie-breaking is by lowest PageId (equivalently lowest slot/ring
 *    position, which insertion order makes the same thing) whenever a
 *    policy's primary key ties.
 *  - interleavedSweep() splits the manager pass into two shapes: the
 *    Clock policy reproduces the legacy segment-interleaved pass
 *    (sample a segment, then evict from what has been sampled so far,
 *    early-exit once the target is met) byte-identically; list-based
 *    policies sample every managed segment first and then evict in
 *    global policy order.
 */

#ifndef VPP_POLICY_POLICY_H
#define VPP_POLICY_POLICY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "policy/kind.h"

namespace vpp::policy {

/**
 * Policy-visible page identity: (segment << 32) | page. Canonical
 * ascending PageId order therefore equals the legacy clock's
 * (segment, page) sweep order.
 */
using PageId = std::uint64_t;

constexpr PageId
makePageId(std::uint32_t seg, std::uint64_t page)
{
    // Segment page limits sit far below 2^32 pages; the packed form
    // keeps canonical (segment, page) order as plain integer order.
    return (static_cast<PageId>(seg) << 32) |
           (page & 0xffffffffULL);
}

constexpr std::uint32_t
segmentOf(PageId p)
{
    return static_cast<std::uint32_t>(p >> 32);
}

constexpr std::uint32_t
pageOf(PageId p)
{
    return static_cast<std::uint32_t>(p);
}

/** Per-policy decision counters (bench cost lines, tests). */
struct PolicyStats
{
    std::uint64_t inserts = 0;
    std::uint64_t touches = 0;
    std::uint64_t evictions = 0;  ///< victim() calls that returned one
    std::uint64_t removes = 0;    ///< external removals honoured
    std::uint64_t promotions = 0; ///< SLRU prot/2Q ghost-hit promotions
    std::uint64_t demotions = 0;  ///< SLRU protected -> probationary
    std::uint64_t passes = 0;     ///< beginPass() calls
};

/** Construction knobs; unused fields are ignored by other kinds. */
struct PolicyParams
{
    /// Expected resident capacity; sizes SLRU's protected segment,
    /// 2Q's A1in/A1out, and the WSClock default window.
    std::uint64_t capacityHint = 0;
    /// Clock only: true = circular second-chance sweep that always
    /// finds a victim (demand-eviction caches); false = the manager's
    /// linear sampling pass where referenced pages survive the pass.
    bool clockSecondChance = false;
    double slruProtectedShare = 0.75; ///< of capacityHint
    double twoQInShare = 0.25;        ///< A1in share of capacityHint
    double twoQGhostShare = 0.50;     ///< A1out entries / capacityHint
    /// WSClock working-set window in setNow() units (access count or
    /// simulated ns). 0 derives 2 * capacityHint (or 1 if no hint).
    std::uint64_t wsTau = 0;
    /// Belady only: the full reference string the caller will replay,
    /// in exact access order. Must outlive the policy.
    const std::vector<PageId> *trace = nullptr;
};

class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    virtual Kind kind() const = 0;

    /// Legacy segment-interleaved manager pass (Clock) vs
    /// sample-all-segments-then-evict (everything else).
    virtual bool interleavedSweep() const { return false; }

    /// Advance the policy's notion of "now" (WSClock ages; Belady and
    /// the lists ignore it). Callers pass a monotone counter: access
    /// number in cache simulations, simulated time in the manager.
    virtual void setNow(std::uint64_t) {}

    /// Manager-pass prologue. The Clock policy rebuilds its per-pass
    /// ring here; persistent policies only take the timestamp.
    virtual void
    beginPass(std::uint64_t now)
    {
        ++stats_.passes;
        setNow(now);
    }

    virtual void insert(PageId p) = 0;
    virtual void touch(PageId p) = 0;
    virtual std::optional<PageId> victim() = 0;
    virtual void remove(PageId p) = 0;

    virtual bool contains(PageId p) const = 0;
    virtual std::uint64_t size() const = 0;

    const PolicyStats &stats() const { return stats_; }

  protected:
    PolicyStats stats_;
};

/**
 * Factory. Belady requires params.trace and throws
 * std::invalid_argument without one (the manager path cannot provide
 * a future reference string; only trace-replay harnesses can).
 */
std::unique_ptr<ReplacementPolicy> make(Kind k,
                                        const PolicyParams &params = {});

} // namespace vpp::policy

#endif // VPP_POLICY_POLICY_H
