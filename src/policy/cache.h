/**
 * @file
 * Capacity-bounded cache simulation over a ReplacementPolicy: the
 * demand-paging harness behind bench/ablation_policy and the Belady
 * replay. Every access ticks the policy clock, hits touch, misses
 * evict (when full) and insert. Miss counts are a pure function of
 * the access sequence, so replaying one recorded trace through each
 * policy compares them on exactly equal terms — and replaying it
 * through Belady yields the offline miss-rate lower bound.
 */

#ifndef VPP_POLICY_CACHE_H
#define VPP_POLICY_CACHE_H

#include <memory>
#include <vector>

#include "policy/policy.h"

namespace vpp::policy {

class PolicyCache
{
  public:
    PolicyCache(std::unique_ptr<ReplacementPolicy> policy,
                std::uint64_t capacityFrames);

    /** One reference; returns true on hit. */
    bool access(PageId p);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t accesses() const { return hits_ + misses_; }

    double
    missRate() const
    {
        std::uint64_t a = accesses();
        return a ? static_cast<double>(misses_) / a : 0.0;
    }

    std::uint64_t capacity() const { return capacity_; }
    ReplacementPolicy &policy() { return *policy_; }
    const ReplacementPolicy &policy() const { return *policy_; }

  private:
    std::unique_ptr<ReplacementPolicy> policy_;
    std::uint64_t capacity_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

/** Offline replay: miss rate of @p kind over @p trace at capacity. */
double replayMissRate(Kind kind, const std::vector<PageId> &trace,
                      std::uint64_t capacityFrames,
                      PolicyParams params = {});

} // namespace vpp::policy

#endif // VPP_POLICY_CACHE_H
