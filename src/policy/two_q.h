/**
 * @file
 * 2Q (Johnson & Shasha): scan resistance through admission control.
 * New pages enter the A1in FIFO; only pages faulted again after
 * falling off A1in into the A1out ghost list earn a place in the Am
 * LRU. A sequential scan therefore flows through A1in and evicts only
 * its own pages, never the Am working set.
 */

#ifndef VPP_POLICY_TWO_Q_H
#define VPP_POLICY_TWO_Q_H

#include <list>
#include <unordered_map>

#include "policy/policy.h"

namespace vpp::policy {

class TwoQPolicy final : public ReplacementPolicy
{
  public:
    explicit TwoQPolicy(const PolicyParams &p)
    {
        std::uint64_t cap = p.capacityHint ? p.capacityHint : 1;
        kin_ = static_cast<std::uint64_t>(cap * p.twoQInShare);
        if (kin_ == 0)
            kin_ = 1;
        kout_ = static_cast<std::uint64_t>(cap * p.twoQGhostShare);
        if (kout_ == 0)
            kout_ = 1;
    }

    Kind kind() const override { return Kind::TwoQ; }

    void
    insert(PageId p) override
    {
        auto it = index_.find(p);
        if (it != index_.end() && it->second.where != Where::Ghost)
            return;
        ++stats_.inserts;
        if (it != index_.end()) {
            // Ghost hit: the page proved it has reuse distance beyond
            // A1in — admit straight into Am.
            ++ghostHits_;
            ++stats_.promotions;
            ghost_.erase(it->second.it);
            am_.push_front(p);
            it->second = Entry{Where::Am, am_.begin()};
            return;
        }
        a1in_.push_front(p);
        index_.emplace(p, Entry{Where::In, a1in_.begin()});
    }

    void
    touch(PageId p) override
    {
        auto it = index_.find(p);
        if (it == index_.end() || it->second.where == Where::Ghost)
            return;
        ++stats_.touches;
        // Classic 2Q: A1in stays strictly FIFO (correlated references
        // inside the admission window prove nothing); only Am reorders.
        if (it->second.where == Where::Am)
            am_.splice(am_.begin(), am_, it->second.it);
    }

    std::optional<PageId>
    victim() override
    {
        if (!a1in_.empty() && (a1in_.size() > kin_ || am_.empty())) {
            PageId id = a1in_.back();
            a1in_.pop_back();
            // Remember the eviction in the ghost list.
            ghost_.push_front(id);
            index_[id] = Entry{Where::Ghost, ghost_.begin()};
            while (ghost_.size() > kout_) {
                index_.erase(ghost_.back());
                ghost_.pop_back();
            }
            ++stats_.evictions;
            return id;
        }
        std::list<PageId> *from =
            !am_.empty() ? &am_ : (!a1in_.empty() ? &a1in_ : nullptr);
        if (!from)
            return std::nullopt;
        PageId id = from->back();
        from->pop_back();
        index_.erase(id);
        ++stats_.evictions;
        return id;
    }

    void
    remove(PageId p) override
    {
        auto it = index_.find(p);
        if (it == index_.end() || it->second.where == Where::Ghost)
            return;
        ++stats_.removes;
        listOf(it->second.where).erase(it->second.it);
        index_.erase(it);
    }

    bool
    contains(PageId p) const override
    {
        auto it = index_.find(p);
        return it != index_.end() && it->second.where != Where::Ghost;
    }

    std::uint64_t
    size() const override
    {
        return a1in_.size() + am_.size();
    }

    std::uint64_t a1inSize() const { return a1in_.size(); }
    std::uint64_t amSize() const { return am_.size(); }
    std::uint64_t ghostSize() const { return ghost_.size(); }
    std::uint64_t ghostHits() const { return ghostHits_; }

  private:
    enum class Where
    {
        In,
        Am,
        Ghost
    };

    struct Entry
    {
        Where where;
        std::list<PageId>::iterator it;
    };

    std::list<PageId> &
    listOf(Where w)
    {
        return w == Where::In ? a1in_ : w == Where::Am ? am_ : ghost_;
    }

    std::uint64_t kin_;
    std::uint64_t kout_;
    std::uint64_t ghostHits_ = 0;
    std::list<PageId> a1in_; ///< FIFO: front = newest
    std::list<PageId> am_;   ///< LRU: front = MRU
    std::list<PageId> ghost_;
    std::unordered_map<PageId, Entry> index_;
};

} // namespace vpp::policy

#endif // VPP_POLICY_TWO_Q_H
