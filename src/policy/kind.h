/**
 * @file
 * Replacement-policy selector enum.
 *
 * Kept free of the policy interface itself so configuration headers
 * (hw/config.h, managers/spcm.h) and the sweep layer can name a
 * policy without dragging in the implementations.
 */

#ifndef VPP_POLICY_KIND_H
#define VPP_POLICY_KIND_H

#include <array>
#include <optional>
#include <string_view>

namespace vpp::policy {

enum class Kind
{
    Clock,   ///< one-bit sampling clock (the legacy manager pass)
    Slru,    ///< segmented LRU: probationary + protected segments
    TwoQ,    ///< 2Q: A1in FIFO, A1out ghost list, Am LRU
    WsClock, ///< working-set clock: ref bit + last-use age vs tau
    Belady,  ///< offline optimal (requires a recorded trace)
};

inline constexpr std::array<Kind, 5> kAllKinds = {
    Kind::Clock, Kind::Slru, Kind::TwoQ, Kind::WsClock, Kind::Belady};

constexpr std::string_view
kindName(Kind k)
{
    switch (k) {
    case Kind::Clock:
        return "clock";
    case Kind::Slru:
        return "slru";
    case Kind::TwoQ:
        return "2q";
    case Kind::WsClock:
        return "wsclock";
    case Kind::Belady:
        return "belady";
    }
    return "?";
}

constexpr std::optional<Kind>
parseKind(std::string_view name)
{
    for (Kind k : kAllKinds)
        if (name == kindName(k))
            return k;
    return std::nullopt;
}

} // namespace vpp::policy

#endif // VPP_POLICY_KIND_H
