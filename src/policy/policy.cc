#include "policy/policy.h"

#include <stdexcept>
#include <string>

#include "policy/belady.h"
#include "policy/cache.h"
#include "policy/clock.h"
#include "policy/slru.h"
#include "policy/two_q.h"
#include "policy/wsclock.h"

namespace vpp::policy {

std::unique_ptr<ReplacementPolicy>
make(Kind k, const PolicyParams &params)
{
    switch (k) {
    case Kind::Clock:
        return std::make_unique<ClockPolicy>(params);
    case Kind::Slru:
        return std::make_unique<SlruPolicy>(params);
    case Kind::TwoQ:
        return std::make_unique<TwoQPolicy>(params);
    case Kind::WsClock:
        return std::make_unique<WsClockPolicy>(params);
    case Kind::Belady:
        if (!params.trace)
            throw std::invalid_argument(
                "policy::make: belady needs a recorded trace "
                "(params.trace); online managers cannot see the "
                "future");
        return std::make_unique<BeladyPolicy>(*params.trace);
    }
    throw std::invalid_argument("policy::make: unknown kind " +
                                std::to_string(static_cast<int>(k)));
}

PolicyCache::PolicyCache(std::unique_ptr<ReplacementPolicy> policy,
                         std::uint64_t capacityFrames)
    : policy_(std::move(policy)),
      capacity_(capacityFrames ? capacityFrames : 1)
{}

bool
PolicyCache::access(PageId p)
{
    policy_->setNow(++clock_);
    if (policy_->contains(p)) {
        policy_->touch(p);
        ++hits_;
        return true;
    }
    ++misses_;
    while (policy_->size() >= capacity_) {
        if (!policy_->victim())
            break; // policy refuses (cannot happen when nonempty)
        ++evictions_;
    }
    policy_->insert(p);
    return false;
}

double
replayMissRate(Kind kind, const std::vector<PageId> &trace,
               std::uint64_t capacityFrames, PolicyParams params)
{
    params.capacityHint = capacityFrames;
    params.clockSecondChance = true;
    params.trace = &trace;
    PolicyCache cache(make(kind, params), capacityFrames);
    for (PageId p : trace)
        cache.access(p);
    return cache.missRate();
}

} // namespace vpp::policy
