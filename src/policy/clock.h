/**
 * @file
 * One-bit clock, in the two shapes the repo needs:
 *
 *  - Pass mode (clockSecondChance = false, the manager default):
 *    beginPass() empties the ring; the manager re-feeds it one
 *    managed segment at a time in canonical (segment, page) order
 *    (insert every unpinned page, touch the referenced ones) and
 *    drains victims after each segment. The hand moves forward only
 *    and never wraps, so referenced pages survive the pass — exactly
 *    the legacy DefaultSegmentManager::clockPass semantics, which is
 *    what keeps the committed baselines byte-identical.
 *
 *  - Second-chance mode (clockSecondChance = true, cache
 *    simulations): a classic circular clock over a fixed slot array;
 *    victim() clears reference bits as the hand passes and always
 *    finds a victim while any page is resident.
 */

#ifndef VPP_POLICY_CLOCK_H
#define VPP_POLICY_CLOCK_H

#include <unordered_map>
#include <vector>

#include "policy/policy.h"

namespace vpp::policy {

class ClockPolicy final : public ReplacementPolicy
{
  public:
    explicit ClockPolicy(const PolicyParams &p)
        : secondChance_(p.clockSecondChance)
    {}

    Kind kind() const override { return Kind::Clock; }
    bool interleavedSweep() const override { return !secondChance_; }

    void
    beginPass(std::uint64_t now) override
    {
        ReplacementPolicy::beginPass(now);
        if (!secondChance_) {
            slots_.clear();
            index_.clear();
            free_.clear();
            hand_ = 0;
        }
    }

    void
    insert(PageId p) override
    {
        if (index_.count(p))
            return;
        ++stats_.inserts;
        // Pass mode always appends: the hand only moves forward, so
        // reusing a freed slot behind it would hide the page from the
        // rest of the pass. beginPass() reclaims the tombstones.
        if (secondChance_ && !free_.empty()) {
            std::size_t s = free_.back();
            free_.pop_back();
            slots_[s] = Slot{p, false, true};
            index_.emplace(p, s);
        } else {
            index_.emplace(p, slots_.size());
            slots_.push_back(Slot{p, false, true});
        }
    }

    void
    touch(PageId p) override
    {
        auto it = index_.find(p);
        if (it == index_.end())
            return;
        ++stats_.touches;
        slots_[it->second].ref = true;
    }

    std::optional<PageId>
    victim() override
    {
        if (index_.empty())
            return std::nullopt;
        if (!secondChance_) {
            // Linear pass: skip referenced pages without clearing
            // them (the pass itself already rearmed the sampler).
            while (hand_ < slots_.size()) {
                Slot &s = slots_[hand_];
                if (!s.live || s.ref) {
                    ++hand_;
                    continue;
                }
                return evictAt(hand_++);
            }
            return std::nullopt;
        }
        // Circular second-chance sweep; bounded by two laps.
        for (std::size_t n = 0; n < 2 * slots_.size() + 1; ++n) {
            std::size_t s = hand_;
            hand_ = (hand_ + 1) % slots_.size();
            if (!slots_[s].live)
                continue;
            if (slots_[s].ref) {
                slots_[s].ref = false;
                continue;
            }
            return evictAt(s);
        }
        return std::nullopt; // unreachable with live entries
    }

    void
    remove(PageId p) override
    {
        auto it = index_.find(p);
        if (it == index_.end())
            return;
        ++stats_.removes;
        slots_[it->second].live = false;
        free_.push_back(it->second);
        index_.erase(it);
    }

    bool contains(PageId p) const override { return index_.count(p); }
    std::uint64_t size() const override { return index_.size(); }

  private:
    struct Slot
    {
        PageId id = 0;
        bool ref = false;
        bool live = false;
    };

    PageId
    evictAt(std::size_t s)
    {
        PageId id = slots_[s].id;
        slots_[s].live = false;
        free_.push_back(s);
        index_.erase(id);
        ++stats_.evictions;
        return id;
    }

    bool secondChance_;
    std::vector<Slot> slots_; ///< ring in insertion order
    std::vector<std::size_t> free_;
    std::unordered_map<PageId, std::size_t> index_;
    std::size_t hand_ = 0;
};

} // namespace vpp::policy

#endif // VPP_POLICY_CLOCK_H
