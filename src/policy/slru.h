/**
 * @file
 * Segmented LRU (TrustedSSD shape, SNIPPETS.md §3): a probationary
 * segment that new pages enter and a protected segment reserved for
 * pages referenced at least once while probationary. Victims come
 * from the probationary LRU tail, so a one-shot scan marches through
 * probation without displacing the protected working set; the
 * protected segment is capacity-bounded and demotes its own LRU tail
 * back to probation on overflow.
 */

#ifndef VPP_POLICY_SLRU_H
#define VPP_POLICY_SLRU_H

#include <list>
#include <unordered_map>

#include "policy/policy.h"

namespace vpp::policy {

class SlruPolicy final : public ReplacementPolicy
{
  public:
    explicit SlruPolicy(const PolicyParams &p)
    {
        std::uint64_t cap = p.capacityHint ? p.capacityHint : 1;
        protectedCap_ = static_cast<std::uint64_t>(
            cap * p.slruProtectedShare);
        if (protectedCap_ == 0)
            protectedCap_ = 1;
    }

    Kind kind() const override { return Kind::Slru; }

    void
    insert(PageId p) override
    {
        if (index_.count(p))
            return;
        ++stats_.inserts;
        probation_.push_front(p);
        index_.emplace(p, Where{probation_.begin(), false});
    }

    void
    touch(PageId p) override
    {
        auto it = index_.find(p);
        if (it == index_.end())
            return;
        ++stats_.touches;
        if (it->second.prot) {
            prot_.splice(prot_.begin(), prot_, it->second.it);
            return;
        }
        // Promote: probationary page referenced again.
        probation_.erase(it->second.it);
        prot_.push_front(p);
        it->second = Where{prot_.begin(), true};
        ++stats_.promotions;
        while (prot_.size() > protectedCap_) {
            // Demote the protected LRU tail back to probation (MRU
            // side: it was more recently useful than cold probation).
            PageId d = prot_.back();
            prot_.pop_back();
            probation_.push_front(d);
            index_[d] = Where{probation_.begin(), false};
            ++stats_.demotions;
        }
    }

    std::optional<PageId>
    victim() override
    {
        std::list<PageId> *from =
            !probation_.empty() ? &probation_
                                : (!prot_.empty() ? &prot_ : nullptr);
        if (!from)
            return std::nullopt;
        PageId id = from->back();
        from->pop_back();
        index_.erase(id);
        ++stats_.evictions;
        return id;
    }

    void
    remove(PageId p) override
    {
        auto it = index_.find(p);
        if (it == index_.end())
            return;
        ++stats_.removes;
        (it->second.prot ? prot_ : probation_).erase(it->second.it);
        index_.erase(it);
    }

    bool contains(PageId p) const override { return index_.count(p); }
    std::uint64_t size() const override { return index_.size(); }

    std::uint64_t probationSize() const { return probation_.size(); }
    std::uint64_t protectedSize() const { return prot_.size(); }
    std::uint64_t protectedCap() const { return protectedCap_; }

  private:
    struct Where
    {
        std::list<PageId>::iterator it;
        bool prot;
    };

    std::uint64_t protectedCap_;
    std::list<PageId> probation_; ///< front = MRU, back = victim
    std::list<PageId> prot_;
    std::unordered_map<PageId, Where> index_;
};

} // namespace vpp::policy

#endif // VPP_POLICY_SLRU_H
