/**
 * @file
 * Belady's offline-optimal replacement (MIN): evict the resident page
 * whose next use lies farthest in the future. Requires the complete
 * reference string up front; the caller replays it access by access
 * (insert on miss, touch on hit) and the policy verifies that the
 * replayed sequence matches the recorded trace — a deviation means
 * the harness recorded one workload and replayed another, which would
 * silently invalidate the "lower bound" claim.
 *
 * next-use positions are precomputed in one backward sweep; victim
 * selection keeps residents in a set ordered by (next use descending,
 * PageId ascending), so ties — all pages never used again — break
 * deterministically toward the lowest PageId.
 */

#ifndef VPP_POLICY_BELADY_H
#define VPP_POLICY_BELADY_H

#include <limits>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "policy/policy.h"

namespace vpp::policy {

class BeladyPolicy final : public ReplacementPolicy
{
  public:
    static constexpr std::uint64_t kNever =
        std::numeric_limits<std::uint64_t>::max();

    explicit BeladyPolicy(const std::vector<PageId> &trace)
        : trace_(&trace)
    {
        // Backward sweep: next_[i] = position of the next reference
        // to trace[i] after i, or kNever.
        next_.assign(trace.size(), kNever);
        std::unordered_map<PageId, std::uint64_t> last;
        for (std::size_t i = trace.size(); i-- > 0;) {
            auto it = last.find(trace[i]);
            if (it != last.end())
                next_[i] = it->second;
            last[trace[i]] = i;
        }
    }

    Kind kind() const override { return Kind::Belady; }

    void
    insert(PageId p) override
    {
        std::uint64_t nu = advance(p);
        if (resident_.count(p))
            return;
        ++stats_.inserts;
        resident_.emplace(p, nu);
        order_.insert({nu, p});
    }

    void
    touch(PageId p) override
    {
        std::uint64_t nu = advance(p);
        auto it = resident_.find(p);
        if (it == resident_.end())
            return;
        ++stats_.touches;
        order_.erase({it->second, p});
        it->second = nu;
        order_.insert({nu, p});
    }

    std::optional<PageId>
    victim() override
    {
        if (order_.empty())
            return std::nullopt;
        auto it = order_.begin(); // farthest next use, lowest id tie
        PageId id = it->second;
        resident_.erase(id);
        order_.erase(it);
        ++stats_.evictions;
        return id;
    }

    void
    remove(PageId p) override
    {
        auto it = resident_.find(p);
        if (it == resident_.end())
            return;
        ++stats_.removes;
        order_.erase({it->second, p});
        resident_.erase(it);
    }

    bool contains(PageId p) const override { return resident_.count(p); }
    std::uint64_t size() const override { return resident_.size(); }
    std::uint64_t position() const { return cursor_; }

  private:
    /// Validate that the replay matches the recorded trace and return
    /// the accessed page's next-use position.
    std::uint64_t
    advance(PageId p)
    {
        if (cursor_ >= trace_->size() || (*trace_)[cursor_] != p)
            throw std::logic_error(
                "belady: replayed access deviates from the recorded "
                "trace");
        return next_[cursor_++];
    }

    struct FarthestFirst
    {
        bool
        operator()(const std::pair<std::uint64_t, PageId> &a,
                   const std::pair<std::uint64_t, PageId> &b) const
        {
            if (a.first != b.first)
                return a.first > b.first;
            return a.second < b.second;
        }
    };

    const std::vector<PageId> *trace_;
    std::vector<std::uint64_t> next_;
    std::uint64_t cursor_ = 0;
    std::unordered_map<PageId, std::uint64_t> resident_;
    std::set<std::pair<std::uint64_t, PageId>, FarthestFirst> order_;
};

} // namespace vpp::policy

#endif // VPP_POLICY_BELADY_H
