/**
 * @file
 * WSClock (Carr & Hennessy): a circular clock whose hand evicts only
 * pages outside the working-set window tau. Passing a referenced page
 * clears its bit and stamps last-use = now; an unreferenced page
 * older than tau is the victim. If a full sweep finds every page
 * inside the window the oldest page is evicted anyway (the cache is
 * simply smaller than the working set), tie broken by ring position.
 */

#ifndef VPP_POLICY_WSCLOCK_H
#define VPP_POLICY_WSCLOCK_H

#include <unordered_map>
#include <vector>

#include "policy/policy.h"

namespace vpp::policy {

class WsClockPolicy final : public ReplacementPolicy
{
  public:
    explicit WsClockPolicy(const PolicyParams &p)
    {
        tau_ = p.wsTau ? p.wsTau
                       : (p.capacityHint ? 2 * p.capacityHint : 1);
    }

    Kind kind() const override { return Kind::WsClock; }

    void setNow(std::uint64_t now) override { now_ = now; }

    void
    insert(PageId p) override
    {
        if (index_.count(p))
            return;
        ++stats_.inserts;
        if (!free_.empty()) {
            std::size_t s = free_.back();
            free_.pop_back();
            slots_[s] = Slot{p, now_, false, true};
            index_.emplace(p, s);
        } else {
            index_.emplace(p, slots_.size());
            slots_.push_back(Slot{p, now_, false, true});
        }
    }

    void
    touch(PageId p) override
    {
        auto it = index_.find(p);
        if (it == index_.end())
            return;
        ++stats_.touches;
        slots_[it->second].ref = true;
        slots_[it->second].lastUse = now_;
    }

    std::optional<PageId>
    victim() override
    {
        if (index_.empty())
            return std::nullopt;
        // One full lap: first unreferenced page older than tau wins.
        for (std::size_t n = 0; n < slots_.size(); ++n) {
            std::size_t s = hand_;
            hand_ = (hand_ + 1) % slots_.size();
            Slot &e = slots_[s];
            if (!e.live)
                continue;
            if (e.ref) {
                e.ref = false;
                e.lastUse = now_;
                continue;
            }
            if (now_ - e.lastUse > tau_)
                return evictAt(s);
        }
        // Whole ring inside the window: evict the oldest, lowest ring
        // position first on ties.
        std::size_t best = slots_.size();
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            if (!slots_[s].live)
                continue;
            if (best == slots_.size() ||
                slots_[s].lastUse < slots_[best].lastUse)
                best = s;
        }
        return evictAt(best);
    }

    void
    remove(PageId p) override
    {
        auto it = index_.find(p);
        if (it == index_.end())
            return;
        ++stats_.removes;
        slots_[it->second].live = false;
        free_.push_back(it->second);
        index_.erase(it);
    }

    bool contains(PageId p) const override { return index_.count(p); }
    std::uint64_t size() const override { return index_.size(); }
    std::uint64_t tau() const { return tau_; }

  private:
    struct Slot
    {
        PageId id = 0;
        std::uint64_t lastUse = 0;
        bool ref = false;
        bool live = false;
    };

    PageId
    evictAt(std::size_t s)
    {
        PageId id = slots_[s].id;
        slots_[s].live = false;
        free_.push_back(s);
        index_.erase(id);
        ++stats_.evictions;
        return id;
    }

    std::uint64_t tau_;
    std::uint64_t now_ = 0;
    std::vector<Slot> slots_;
    std::vector<std::size_t> free_;
    std::unordered_map<PageId, std::size_t> index_;
    std::size_t hand_ = 0;
};

} // namespace vpp::policy

#endif // VPP_POLICY_WSCLOCK_H
