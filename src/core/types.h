/**
 * @file
 * Identifiers and page-flag definitions for the V++ kernel VM.
 */

#ifndef VPP_CORE_TYPES_H
#define VPP_CORE_TYPES_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "hw/types.h"

namespace vpp::kernel {

/** Segment identifier. Segment 0 is the well-known physical segment. */
using SegmentId = std::uint32_t;

constexpr SegmentId kInvalidSegment = ~SegmentId{0};

/** The well-known segment holding every page frame at boot (§2.1). */
constexpr SegmentId kPhysSegment = 0;

/** Page index within a segment (units of that segment's page size). */
using PageIndex = std::uint64_t;

/** User identity, used for the cross-user zero-fill policy (§3.1). */
using UserId = std::uint32_t;

constexpr UserId kSystemUser = 0;

/**
 * Per-page state flags. Readable/Writable are the protection bits a
 * conventional mprotect would manage; Dirty and Referenced are the
 * state flags the paper makes manager-visible via ModifyPageFlags and
 * GetPageAttributes. The remaining bits are manager policy hints that
 * the kernel stores but does not interpret (except ZeroFill, which
 * requests a zero-filled migration).
 */
namespace flag {

constexpr std::uint32_t kReadable = 0x01;
constexpr std::uint32_t kWritable = 0x02;
constexpr std::uint32_t kDirty = 0x04;
constexpr std::uint32_t kReferenced = 0x08;
constexpr std::uint32_t kPinned = 0x10;      ///< manager hint: never steal
constexpr std::uint32_t kDiscardable = 0x20; ///< manager hint: no writeback
constexpr std::uint32_t kZeroFill = 0x40;    ///< migrate-time zero request

constexpr std::uint32_t kProtMask = kReadable | kWritable;
constexpr std::uint32_t kAll = 0x7f;

} // namespace flag

/** Result row of GetPageAttributes. */
struct PageAttribute
{
    PageIndex page = 0;
    bool present = false;
    std::uint32_t flags = 0;
    hw::FrameId frame = hw::kInvalidFrame;
    hw::PhysAddr physAddr = 0;
};

/** Error categories for kernel-operation failures. */
enum class KernelErrc
{
    BadSegment,
    BadPage,
    PageBusy,       ///< destination page already has a frame
    PageMissing,    ///< operation requires a present page
    NotContiguous,  ///< frame layout cannot form a larger page
    BadAlignment,
    SizeMismatch,
    NoManager,
    Permission,
    LimitExceeded,
    FaultLoop,      ///< manager failed to resolve a fault repeatedly
    IoError,        ///< disk transfer failed beyond the retry budget
    ManagerUnresponsive, ///< deadline expired; failover also failed
};

const char *kernelErrcName(KernelErrc e);

/** Exception thrown on invalid kernel-operation use (caller bug). */
class KernelError : public std::runtime_error
{
  public:
    KernelError(KernelErrc code, const std::string &what)
        : std::runtime_error(std::string(kernelErrcName(code)) + ": " +
                             what),
          code_(code)
    {}

    KernelErrc code() const { return code_; }

  private:
    KernelErrc code_;
};

} // namespace vpp::kernel

#endif // VPP_CORE_TYPES_H
