/**
 * @file
 * Simulated process identity.
 *
 * A Process carries the address-space segment its references resolve
 * through, the user it runs as (for the cross-user zero-fill policy)
 * and fault accounting. Execution itself is expressed by workload
 * coroutines; the kernel does not schedule processes.
 */

#ifndef VPP_CORE_PROCESS_H
#define VPP_CORE_PROCESS_H

#include <cstdint>
#include <string>

#include "core/types.h"

namespace vpp::kernel {

class Process
{
  public:
    Process(std::string name, UserId uid)
        : name_(std::move(name)), uid_(uid)
    {}

    const std::string &name() const { return name_; }
    UserId uid() const { return uid_; }

    SegmentId addressSpace() const { return addressSpace_; }
    void setAddressSpace(SegmentId s) { addressSpace_ = s; }

    /** Faults taken, by any type. */
    std::uint64_t faults() const { return faults_; }
    void noteFault() { ++faults_; }

  private:
    std::string name_;
    UserId uid_;
    SegmentId addressSpace_ = kInvalidSegment;
    std::uint64_t faults_ = 0;
};

} // namespace vpp::kernel

#endif // VPP_CORE_PROCESS_H
