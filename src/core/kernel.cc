#include "core/kernel.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace vpp::kernel {

const char *
kernelErrcName(KernelErrc e)
{
    switch (e) {
      case KernelErrc::BadSegment: return "BadSegment";
      case KernelErrc::BadPage: return "BadPage";
      case KernelErrc::PageBusy: return "PageBusy";
      case KernelErrc::PageMissing: return "PageMissing";
      case KernelErrc::NotContiguous: return "NotContiguous";
      case KernelErrc::BadAlignment: return "BadAlignment";
      case KernelErrc::SizeMismatch: return "SizeMismatch";
      case KernelErrc::NoManager: return "NoManager";
      case KernelErrc::Permission: return "Permission";
      case KernelErrc::LimitExceeded: return "LimitExceeded";
      case KernelErrc::FaultLoop: return "FaultLoop";
      case KernelErrc::IoError: return "IoError";
      case KernelErrc::ManagerUnresponsive: return "ManagerUnresponsive";
    }
    return "Unknown";
}

const char *
faultTypeName(FaultType t)
{
    switch (t) {
      case FaultType::MissingPage: return "MissingPage";
      case FaultType::Protection: return "Protection";
      case FaultType::CopyOnWrite: return "CopyOnWrite";
    }
    return "Unknown";
}

Kernel::Kernel(sim::Simulation &s, const hw::MachineConfig &config)
    : sim_(&s), config_(config),
      memory_(config.memoryBytes, config.pageSize)
{
    // On initialisation the kernel creates a well-known segment that
    // includes all the page frames in physical-address order (§2.1).
    auto phys = std::make_unique<Segment>(
        kPhysSegment, "physmem", config_.pageSize, memory_.numFrames(),
        kSystemUser);
    frames_.resize(memory_.numFrames());
    for (hw::FrameId f = 0; f < memory_.numFrames(); ++f) {
        phys->pages()[f] =
            PageEntry{f, flag::kReadable | flag::kWritable};
        frames_[f] = FrameOwner{kPhysSegment, f, kSystemUser};
    }
    byId_.push_back(phys.get());
    segments_[kPhysSegment] = std::move(phys);
    segEpochs_.push_back(1); // phys segment's mutation epoch
    nextSegment_ = 1;
    if (config_.modelTlb)
        tlb_ = std::make_unique<hw::Tlb>(config_.tlbEntries);
}

void
Kernel::throwBadSegment(SegmentId s)
{
    throw KernelError(KernelErrc::BadSegment,
                      "segment " + std::to_string(s));
}

bool
Kernel::segmentExists(SegmentId s) const
{
    return s < byId_.size() && byId_[s] != nullptr;
}

Segment &
Kernel::segment(SegmentId s)
{
    return segmentOrThrow(s);
}

const Segment &
Kernel::segment(SegmentId s) const
{
    return segmentOrThrow(s);
}

const FrameOwner &
Kernel::frameOwner(hw::FrameId f) const
{
    if (f >= frames_.size())
        throw KernelError(KernelErrc::BadPage,
                          "frame " + std::to_string(f));
    return frames_[f];
}

std::uint64_t
Kernel::physSegmentFrames() const
{
    return segmentOrThrow(kPhysSegment).presentPages();
}

std::uint32_t
Kernel::framesPerPage(const Segment &s) const
{
    return s.pageSize() / memory_.frameSize();
}

// ----------------------------------------------------------------------
// Functional primitives (zero simulated time)
// ----------------------------------------------------------------------

SegmentId
Kernel::createSegmentNow(std::string name, std::uint32_t page_size,
                         std::uint64_t page_limit, UserId owner,
                         SegmentManager *mgr)
{
    if (page_size < memory_.frameSize() ||
        page_size % memory_.frameSize() != 0) {
        throw KernelError(KernelErrc::BadAlignment,
                          "page size must be a multiple of the frame "
                          "size");
    }
    SegmentId id = nextSegment_++;
    auto seg = std::make_unique<Segment>(id, std::move(name), page_size,
                                         page_limit, owner);
    seg->setManager(mgr);
    if (id >= byId_.size())
        byId_.resize(id + 1, nullptr);
    if (id >= segEpochs_.size())
        segEpochs_.resize(id + 1, 1);
    byId_[id] = seg.get();
    segments_[id] = std::move(seg);
    ++stats_.segmentsCreated;
    return id;
}

void
Kernel::setSegmentManagerNow(SegmentId seg, SegmentManager *mgr)
{
    segmentOrThrow(seg).setManager(mgr);
}

void
Kernel::bindRegionNow(SegmentId seg, PageIndex at, std::uint64_t pages,
                      SegmentId target, PageIndex target_start,
                      std::uint32_t prot, bool copy_on_write)
{
    Segment &s = segmentOrThrow(seg);
    Segment &t = segmentOrThrow(target);
    if (seg == target)
        throw KernelError(KernelErrc::BadSegment, "self-binding");
    if (s.pageSize() != t.pageSize()) {
        throw KernelError(KernelErrc::SizeMismatch,
                          "bound segments must share a page size");
    }
    if (at + pages > s.pageLimit() ||
        target_start + pages > t.pageLimit()) {
        throw KernelError(KernelErrc::LimitExceeded, "binding range");
    }
    if (s.overlapsBinding(at, pages))
        throw KernelError(KernelErrc::PageBusy, "regions overlap");
    s.addBinding(Binding{at, pages, target, target_start,
                         prot & flag::kProtMask, copy_on_write});
    ++bindRefs_[target];
    invalidateResolutions();
    bumpSegEpoch(seg);
}

void
Kernel::unbindRegionNow(SegmentId seg, PageIndex at)
{
    Segment &s = segmentOrThrow(seg);
    std::optional<Binding> b = s.takeBindingAt(at);
    if (!b)
        throw KernelError(KernelErrc::BadPage, "no region at page");
    --bindRefs_[b->target];
    invalidateResolutions();
    bumpSegEpoch(seg);
}

void
Kernel::resolveForInstall(SegmentId &seg, PageIndex &page) const
{
    // MigratePages on a bound region operates on the associated
    // segment (§2.1); copy-on-write bindings are not followed, so an
    // install there creates the private shadow page.
    for (int depth = 0; depth < kMaxBindingDepth; ++depth) {
        const Segment &s = segmentOrThrow(seg);
        if (s.findPage(page))
            return;
        const Binding *b = s.findBinding(page);
        if (!b || b->copyOnWrite)
            return;
        seg = b->target;
        page = b->targetStart + (page - b->start);
    }
    throw KernelError(KernelErrc::BadSegment, "binding chain too deep");
}

std::uint64_t
Kernel::migratePagesNow(SegmentId src, SegmentId dst, PageIndex src_page,
                        PageIndex dst_page, std::uint64_t pages,
                        std::uint32_t set_flags, std::uint32_t clear_flags,
                        std::uint64_t *bytes_zeroed)
{
    if (pages == 0)
        return 0;

    resolveForInstall(src, src_page);
    resolveForInstall(dst, dst_page);
    Segment &s = segmentOrThrow(src);
    Segment &d = segmentOrThrow(dst);
    if (src == dst && !(src_page + pages <= dst_page ||
                        dst_page + pages <= src_page)) {
        throw KernelError(KernelErrc::PageBusy,
                          "overlapping self-migration");
    }

    // Single same-sized-page migration is the shape every fault-time
    // frame grant takes; it needs none of the staging vectors or the
    // contiguity analysis below.
    if (pages == 1 && s.pageSize() == d.pageSize()) {
        if (src_page >= s.pageLimit())
            throw KernelError(KernelErrc::LimitExceeded, "source range");
        if (dst_page >= d.pageLimit())
            throw KernelError(KernelErrc::LimitExceeded,
                              "destination range");
        PageEntry *se = s.findPage(src_page);
        if (!se) {
            throw KernelError(KernelErrc::PageMissing,
                              "source page " + std::to_string(src_page));
        }
        if (d.findPage(dst_page)) {
            throw KernelError(KernelErrc::PageBusy,
                              "destination page " +
                                  std::to_string(dst_page));
        }
        const std::uint32_t fpp = framesPerPage(d);
        std::uint32_t fl = (se->flags | set_flags) & ~clear_flags;
        const hw::FrameId base = se->frame;
        s.pages().erase(src_page);
        std::uint64_t zeroed = 0;
        if (fl & flag::kZeroFill) {
            memory_.zeroRange(base, fpp);
            zeroed = d.pageSize();
            fl &= ~(flag::kZeroFill | flag::kDirty);
        }
        d.pages()[dst_page] = PageEntry{base, fl};
        for (std::uint32_t fi = 0; fi < fpp; ++fi) {
            FrameOwner &owner = frames_[base + fi];
            owner.segment = dst;
            owner.page = dst_page;
            if (d.owner() != kSystemUser)
                owner.lastUser = d.owner();
        }
        if (zeroed) {
            ++stats_.zeroFills;
            stats_.bytesZeroed += zeroed;
        }
        if (bytes_zeroed)
            *bytes_zeroed = zeroed;
        ++stats_.pagesMigrated;
        invalidateResolutions();
        bumpSegEpoch(src);
        bumpSegEpoch(dst);
        return 1;
    }

    const std::uint64_t total_bytes =
        pages * static_cast<std::uint64_t>(s.pageSize());
    if (total_bytes % d.pageSize() != 0) {
        throw KernelError(KernelErrc::SizeMismatch,
                          "source range not a whole number of "
                          "destination pages");
    }
    const std::uint64_t ndst = total_bytes / d.pageSize();

    if (src_page + pages > s.pageLimit())
        throw KernelError(KernelErrc::LimitExceeded, "source range");
    if (dst_page + ndst > d.pageLimit())
        throw KernelError(KernelErrc::LimitExceeded, "destination range");

    // Validate before mutating: all source pages present, all
    // destination pages empty.
    std::vector<const PageEntry *> src_entries;
    src_entries.reserve(pages);
    for (std::uint64_t i = 0; i < pages; ++i) {
        const PageEntry *e = s.findPage(src_page + i);
        if (!e) {
            throw KernelError(KernelErrc::PageMissing,
                              "source page " +
                                  std::to_string(src_page + i));
        }
        src_entries.push_back(e);
    }
    for (std::uint64_t j = 0; j < ndst; ++j) {
        if (d.findPage(dst_page + j)) {
            throw KernelError(KernelErrc::PageBusy,
                              "destination page " +
                                  std::to_string(dst_page + j));
        }
    }

    const std::uint32_t src_fpp = framesPerPage(s);
    const std::uint32_t dst_fpp = framesPerPage(d);

    // When coalescing small pages into a larger destination page, the
    // constituent frames must be physically contiguous and aligned.
    if (s.pageSize() < d.pageSize()) {
        const std::uint64_t k = d.pageSize() / s.pageSize();
        for (std::uint64_t j = 0; j < ndst; ++j) {
            hw::FrameId first = src_entries[j * k]->frame;
            if (first % dst_fpp != 0) {
                throw KernelError(KernelErrc::BadAlignment,
                                  "frames not aligned for large page");
            }
            for (std::uint64_t i = 1; i < k; ++i) {
                if (src_entries[j * k + i]->frame !=
                    first + i * src_fpp) {
                    throw KernelError(KernelErrc::NotContiguous,
                                      "frames not contiguous for large "
                                      "page");
                }
            }
        }
    }

    // Collect (frame, flags) per destination page, then commit.
    struct NewEntry
    {
        hw::FrameId frame;
        std::uint32_t flags;
    };
    std::vector<NewEntry> new_entries;
    new_entries.reserve(ndst);

    if (s.pageSize() <= d.pageSize()) {
        const std::uint64_t k = d.pageSize() / s.pageSize();
        for (std::uint64_t j = 0; j < ndst; ++j) {
            std::uint32_t fl = 0;
            for (std::uint64_t i = 0; i < k; ++i)
                fl |= src_entries[j * k + i]->flags;
            new_entries.push_back(
                NewEntry{src_entries[j * k]->frame, fl});
        }
    } else {
        const std::uint64_t k = s.pageSize() / d.pageSize();
        for (std::uint64_t i = 0; i < pages; ++i) {
            for (std::uint64_t j = 0; j < k; ++j) {
                new_entries.push_back(NewEntry{
                    static_cast<hw::FrameId>(src_entries[i]->frame +
                                             j * dst_fpp),
                    src_entries[i]->flags});
            }
        }
    }

    // Commit: remove from source, install in destination.
    for (std::uint64_t i = 0; i < pages; ++i)
        s.pages().erase(src_page + i);

    std::uint64_t zeroed = 0;
    for (std::uint64_t j = 0; j < ndst; ++j) {
        std::uint32_t fl =
            (new_entries[j].flags | set_flags) & ~clear_flags;
        hw::FrameId base = new_entries[j].frame;
        if (fl & flag::kZeroFill) {
            memory_.zeroRange(base, dst_fpp);
            zeroed += d.pageSize();
            fl &= ~(flag::kZeroFill | flag::kDirty);
        }
        d.pages()[dst_page + j] = PageEntry{base, fl};
        for (std::uint32_t f = 0; f < dst_fpp; ++f) {
            FrameOwner &owner = frames_[base + f];
            owner.segment = dst;
            owner.page = dst_page + j;
            // "Last user" tracks the last non-system holder so the
            // allocator can skip zero-filling a frame that returns to
            // the same user (paper §3.1); parking a frame in a
            // system-owned pool does not launder it.
            if (d.owner() != kSystemUser)
                owner.lastUser = d.owner();
        }
    }

    if (zeroed) {
        ++stats_.zeroFills;
        stats_.bytesZeroed += zeroed;
    }
    if (bytes_zeroed)
        *bytes_zeroed = zeroed;
    stats_.pagesMigrated += pages;
    invalidateResolutions();
    bumpSegEpoch(src);
    bumpSegEpoch(dst);
    return ndst;
}

std::uint64_t
Kernel::modifyPageFlagsNow(SegmentId seg, PageIndex page,
                           std::uint64_t pages, std::uint32_t set_flags,
                           std::uint32_t clear_flags)
{
    Segment &s = segmentOrThrow(seg);
    std::uint64_t modified = 0;
    for (std::uint64_t i = 0; i < pages; ++i) {
        PageEntry *e = s.findPage(page + i);
        if (!e)
            continue;
        e->flags = (e->flags | set_flags) & ~clear_flags;
        ++modified;
    }
    invalidateResolutions();
    bumpSegEpoch(seg);
    return modified;
}

std::vector<PageAttribute>
Kernel::getPageAttributesNow(SegmentId seg, PageIndex page,
                             std::uint64_t pages) const
{
    const Segment &s = segmentOrThrow(seg);
    std::vector<PageAttribute> out;
    out.reserve(pages);
    for (std::uint64_t i = 0; i < pages; ++i) {
        PageAttribute a;
        a.page = page + i;
        if (const PageEntry *e = s.findPage(page + i)) {
            a.present = true;
            a.flags = e->flags;
            a.frame = e->frame;
            a.physAddr = memory_.physAddr(e->frame);
        }
        out.push_back(a);
    }
    return out;
}

// ----------------------------------------------------------------------
// Charged (paper API) operations
// ----------------------------------------------------------------------

sim::Task<SegmentId>
Kernel::createSegment(std::string name, std::uint32_t page_size,
                      std::uint64_t page_limit, UserId owner,
                      SegmentManager *mgr)
{
    co_await sim_->delay(config_.cost.syscall);
    co_return createSegmentNow(std::move(name), page_size, page_limit,
                               owner, mgr);
}

sim::Task<>
Kernel::setSegmentManager(SegmentId seg, SegmentManager *mgr)
{
    co_await sim_->delay(config_.cost.syscall);
    setSegmentManagerNow(seg, mgr);
}

sim::Task<>
Kernel::bindRegion(SegmentId seg, PageIndex at, std::uint64_t pages,
                   SegmentId target, PageIndex target_start,
                   std::uint32_t prot, bool copy_on_write)
{
    co_await sim_->delay(config_.cost.syscall + config_.cost.bindRegion);
    bindRegionNow(seg, at, pages, target, target_start, prot,
                  copy_on_write);
}

sim::Task<>
Kernel::unbindRegion(SegmentId seg, PageIndex at)
{
    co_await sim_->delay(config_.cost.syscall + config_.cost.bindRegion);
    unbindRegionNow(seg, at);
}

sim::Task<std::uint64_t>
Kernel::migratePages(SegmentId src, SegmentId dst, PageIndex src_page,
                     PageIndex dst_page, std::uint64_t pages,
                     std::uint32_t set_flags, std::uint32_t clear_flags)
{
    ++stats_.migrateCalls;
    co_await sim_->delay(
        config_.cost.migrateBase +
        static_cast<sim::Duration>(pages) *
            (config_.cost.migratePerPage + config_.cost.mapInstall));
    std::uint64_t zeroed = 0;
    std::uint64_t ndst = migratePagesNow(src, dst, src_page, dst_page,
                                         pages, set_flags, clear_flags,
                                         &zeroed);
    if (zeroed)
        co_await chargeZero(zeroed);
    co_return ndst;
}

sim::Task<std::uint64_t>
Kernel::modifyPageFlags(SegmentId seg, PageIndex page,
                        std::uint64_t pages, std::uint32_t set_flags,
                        std::uint32_t clear_flags)
{
    ++stats_.modifyFlagCalls;
    co_await sim_->delay(
        config_.cost.modifyFlagsBase +
        static_cast<sim::Duration>(pages) *
            config_.cost.modifyFlagsPerPage);
    co_return modifyPageFlagsNow(seg, page, pages, set_flags,
                                 clear_flags);
}

sim::Task<std::vector<PageAttribute>>
Kernel::getPageAttributes(SegmentId seg, PageIndex page,
                          std::uint64_t pages)
{
    ++stats_.getAttrCalls;
    co_await sim_->delay(
        config_.cost.getAttrBase +
        static_cast<sim::Duration>(pages) * config_.cost.getAttrPerPage);
    co_return getPageAttributesNow(seg, page, pages);
}

sim::Task<>
Kernel::destroySegment(SegmentId seg)
{
    co_await sim_->delay(config_.cost.syscall);
    if (seg == kPhysSegment)
        throw KernelError(KernelErrc::Permission,
                          "cannot destroy the physical segment");
    Segment &s = segmentOrThrow(seg);
    if (bindRefs_[seg] > 0) {
        throw KernelError(KernelErrc::PageBusy,
                          "segment is the target of bound regions");
    }
    if (SegmentManager *mgr = s.manager()) {
        // A manager crashing in segmentClosed must not leak the
        // segment's frames: the kernel contains the failure and the
        // sweep below reclaims whatever the manager left behind.
        try {
            co_await notifyClosed(mgr, seg);
        } catch (...) {
            ++stats_.closeFailures;
            mgr->noteCrash();
        }
    }
    sweepToPhysSegment(s);
    for (const auto &b : s.bindings())
        --bindRefs_[b.target];
    byId_[seg] = nullptr;
    segments_.erase(seg);
    bindRefs_.erase(seg);
    ++stats_.segmentsDestroyed;
    invalidateResolutions();
    // The epoch slot outlives the segment: stale per-CPU chains
    // through the dead id must keep comparing unequal.
    bumpSegEpoch(seg);
}

void
Kernel::sweepToPhysSegment(Segment &seg)
{
    Segment &phys = segmentOrThrow(kPhysSegment);
    const std::uint32_t fpp = framesPerPage(seg);
    for (const auto &[page, entry] : seg.pages()) {
        for (std::uint32_t f = 0; f < fpp; ++f) {
            hw::FrameId fid = entry.frame + f;
            phys.pages()[fid] =
                PageEntry{fid, flag::kReadable | flag::kWritable};
            // Remember the last user so the allocator can decide
            // whether a future grant needs zero-filling.
            frames_[fid].segment = kPhysSegment;
            frames_[fid].page = fid;
        }
    }
    seg.pages().clear();
    invalidateResolutions();
    bumpSegEpoch(seg.id());
    bumpSegEpoch(kPhysSegment);
}

// ----------------------------------------------------------------------
// Fault path
// ----------------------------------------------------------------------

namespace {

thread_local std::uint64_t tlResolveHits = 0;
thread_local std::uint64_t tlResolveMisses = 0;

thread_local std::uint64_t tlMarketRounds = 0;
thread_local std::uint64_t tlMarketBids = 0;
thread_local sim::Duration tlMarketMaxStarve = 0;

} // namespace

void
resetThreadResolveCounters()
{
    tlResolveHits = 0;
    tlResolveMisses = 0;
}

std::uint64_t
threadResolveHits()
{
    return tlResolveHits;
}

std::uint64_t
threadResolveMisses()
{
    return tlResolveMisses;
}

void
resetThreadMarketCounters()
{
    tlMarketRounds = 0;
    tlMarketBids = 0;
    tlMarketMaxStarve = 0;
}

void
noteThreadMarketRound(std::uint64_t bids)
{
    ++tlMarketRounds;
    tlMarketBids += bids;
}

void
noteThreadMarketStarve(sim::Duration age)
{
    if (age > tlMarketMaxStarve)
        tlMarketMaxStarve = age;
}

std::uint64_t
threadMarketRounds()
{
    return tlMarketRounds;
}

std::uint64_t
threadMarketBids()
{
    return tlMarketBids;
}

sim::Duration
threadMarketMaxStarve()
{
    return tlMarketMaxStarve;
}

Kernel::Resolution
Kernel::walkResolution(Segment &origin, SegmentId seg, PageIndex page,
                       SegmentId *chain, std::uint32_t *chain_len)
{
    Resolution r;
    SegmentId cur_seg = seg;
    PageIndex cur_page = page;
    std::uint32_t visited = 0;
    for (int depth = 0; depth < kMaxBindingDepth; ++depth) {
        Segment &s =
            cur_seg == seg ? origin : segmentOrThrow(cur_seg);
        if (chain) {
            if (visited < kResolveChainMax)
                chain[visited] = cur_seg;
            ++visited;
            if (chain_len) {
                *chain_len = visited <= kResolveChainMax
                                 ? visited
                                 : UINT32_MAX;
            }
        }
        if (!s.inRange(cur_page))
            throw KernelError(KernelErrc::BadPage,
                              "page beyond segment limit");
        if (PageEntry *e = s.findPage(cur_page)) {
            r.present = true;
            r.seg = cur_seg;
            r.page = cur_page;
            r.entry = e;
            return r;
        }
        const Binding *b = s.findBinding(cur_page);
        if (!b) {
            r.present = false;
            r.seg = cur_seg;
            r.page = cur_page;
            return r;
        }
        r.regionProt &= b->prot;
        if (b->copyOnWrite && !r.viaCow) {
            r.viaCow = true;
            r.cowSeg = cur_seg;
            r.cowPage = cur_page;
        }
        cur_seg = b->target;
        cur_page = b->targetStart + (cur_page - b->start);
    }
    throw KernelError(KernelErrc::BadSegment, "binding chain too deep");
}

Kernel::Resolution
Kernel::resolve(SegmentId seg, PageIndex page)
{
    Segment &origin = segmentOrThrow(seg);
    const std::uint64_t epoch =
        resolveEpoch_.load(std::memory_order_relaxed);
    if (const Resolution *c = origin.cachedResolution(page, epoch)) {
        ++stats_.resolveHits;
        ++tlResolveHits;
        return *c;
    }
    ++stats_.resolveMisses;
    ++tlResolveMisses;
    Resolution r = walkResolution(origin, seg, page);
    // A non-present resolution triggers a fault whose handler bumps
    // the epoch before this page can be asked for again; caching it
    // would only displace a live entry.
    if (r.present)
        origin.storeResolution(page, r, epoch);
    return r;
}

Kernel::Resolution
Kernel::resolveUncached(SegmentId seg, PageIndex page)
{
    Segment &origin = segmentOrThrow(seg);
    return walkResolution(origin, seg, page);
}

// ----------------------------------------------------------------------
// Shared-kernel sharding: per-CPU caches and fault queues
// ----------------------------------------------------------------------

void
Kernel::configureCpus(unsigned cpus, bool snapshot_epochs)
{
    cpus_.clear();
    cpus_.reserve(cpus);
    for (unsigned i = 0; i < cpus; ++i)
        cpus_.push_back(std::make_unique<CpuState>());
    cpuSnapshotMode_ = snapshot_epochs;
    if (snapshot_epochs)
        publishCpuEpochs();
}

void
Kernel::publishCpuEpochs()
{
    segEpochSnapshot_ = segEpochs_;
}

const CpuResolution *
Kernel::cpuResolve(unsigned cpu, SegmentId seg, PageIndex page)
{
    CpuState &c = *cpus_.at(cpu);
    // Live mode validates against the mutable epoch table (strict,
    // immediate invalidation); snapshot mode against the copy last
    // published from single-threaded barrier context, which remote
    // shards can read while the home shard mutates the live table.
    const std::vector<std::uint64_t> &epochs =
        cpuSnapshotMode_ ? segEpochSnapshot_ : segEpochs_;
    if (const CpuResolution *r = c.cache.lookup(seg, page, epochs)) {
        ++c.hits;
        return r;
    }
    ++c.misses;
    return nullptr;
}

void
Kernel::cpuStore(unsigned cpu, const CpuResolution &r)
{
    if (!r.present || r.chainLen == 0 || r.chainLen > kResolveChainMax)
        return;
    cpus_.at(cpu)->cache.store(r);
}

CpuResolution
Kernel::resolveForCpu(SegmentId seg, PageIndex page)
{
    Segment &origin = segmentOrThrow(seg);
    SegmentId chain[kResolveChainMax];
    std::uint32_t len = 0;
    Resolution r = walkResolution(origin, seg, page, chain, &len);
    CpuResolution out;
    out.originSeg = seg;
    out.originPage = page;
    out.present = r.present;
    out.seg = r.seg;
    out.page = r.page;
    out.regionProt = r.regionProt;
    out.viaCow = r.viaCow;
    out.cowSeg = r.cowSeg;
    out.cowPage = r.cowPage;
    if (r.present) {
        out.frame = r.entry->frame;
        out.flags = r.entry->flags;
        if (len >= 1 && len <= kResolveChainMax) {
            // Sum the *live* epochs: in snapshot mode the entry stays
            // conservatively invalid until the next publish catches
            // the snapshot up to this fill.
            std::uint64_t sum = 0;
            for (std::uint32_t i = 0; i < len; ++i) {
                out.chain[i] = chain[i];
                sum += segEpochs_[chain[i]];
            }
            out.chainLen = len;
            out.epochSum = sum;
        }
    }
    return out;
}

std::uint64_t
Kernel::cpuHits(unsigned cpu) const
{
    return cpus_.at(cpu)->hits;
}

std::uint64_t
Kernel::cpuMisses(unsigned cpu) const
{
    return cpus_.at(cpu)->misses;
}

sim::Task<>
Kernel::touchOnCpu(unsigned cpu, Process &p, SegmentId seg,
                   PageIndex page, AccessType a)
{
    if (cpu >= cpus_.size())
        throw KernelError(KernelErrc::BadPage,
                          "no such cpu " + std::to_string(cpu));
    CpuState &c = *cpus_[cpu];
    auto done = std::make_shared<sim::Promise<>>(*sim_);
    c.pending.push_back(PendingCpuTouch{&p, seg, page, a, done});
    ++stats_.cpuTouchesQueued;
    if (!cpuDraining_) {
        cpuDraining_ = true;
        sim_->spawn(drainCpuTouches());
    }
    co_await done->future();
}

sim::Task<>
Kernel::drainCpuTouches()
{
    // Yield once so every touch raised at this instant is parked
    // first, then release them in CPU-id order: the order same-instant
    // faults reach the coalescing queues (and so the batch composition
    // managers observe) depends only on CPU ids, never on which shard
    // delivered which touch first.
    co_await sim_->yield();
    for (;;) {
        bool any = false;
        for (auto &cs : cpus_) {
            if (cs->pending.empty())
                continue;
            any = true;
            std::vector<PendingCpuTouch> batch =
                std::move(cs->pending);
            cs->pending.clear();
            for (PendingCpuTouch &t : batch)
                sim_->spawn(runCpuTouch(std::move(t)));
        }
        if (!any)
            break;
        ++stats_.cpuDrains;
        // Another yield catches touches enqueued later within this
        // same instant (event chains behind the first wave).
        co_await sim_->yield();
    }
    cpuDraining_ = false;
}

sim::Task<>
Kernel::runCpuTouch(PendingCpuTouch t)
{
    try {
        co_await touchSegment(*t.proc, t.seg, t.page, t.access);
        t.done->setValue();
    } catch (...) {
        t.done->setError(std::current_exception());
    }
}

void
addThreadResolveCounts(std::uint64_t hits, std::uint64_t misses)
{
    tlResolveHits += hits;
    tlResolveMisses += misses;
}

sim::SimMutex &
Kernel::managerLock(SegmentManager *mgr)
{
    auto &slot = mgrLocks_[mgr];
    if (!slot)
        slot = std::make_unique<sim::SimMutex>(*sim_);
    return *slot;
}

sim::Task<>
Kernel::deliverFault(Fault f)
{
    ++stats_.faults;
    switch (f.type) {
      case FaultType::MissingPage: ++stats_.missingFaults; break;
      case FaultType::Protection: ++stats_.protectionFaults; break;
      case FaultType::CopyOnWrite: ++stats_.cowFaults; break;
    }
    if (f.process)
        f.process->noteFault();

    Segment &fseg = segmentOrThrow(f.segment);
    SegmentManager *mgr = fseg.manager();
    if (!mgr) {
        throw KernelError(KernelErrc::NoManager,
                          "segment " + std::to_string(f.segment) + " (" +
                              fseg.name() + ") has no manager");
    }

    const sim::SimTime fault_start = sim_->now();
    const auto &c = config_.cost;

    if (config_.faultCoalescing && !resilience_.enabled &&
        !(inject_ && inject_->enabled())) {
        // Batched delivery: each faulting thread pays its own trap
        // entry, then parks on the manager's coalescing queue; the
        // dispatch/upcall (or IPC round trip) is charged once per
        // drained batch instead of once per fault.
        co_await sim_->delay(c.trapEnter);
        co_await enqueueCoalesced(mgr, f);
    } else {
    co_await sim_->delay(c.trapEnter + c.faultDispatch);
    mgr->noteCall();
    ++stats_.managerCalls;

    if (resilience_.enabled) {
        co_await deliverResilient(mgr, f);
    } else if (mgr->mode() == hw::ManagerMode::SameProcess) {
        co_await sim_->delay(c.upcall);
        co_await invokeHandler(mgr, f);
        mgr->noteFaultHandled();
        co_await sim_->delay(config_.resumeThroughKernel ? c.kernelResume
                                                         : c.directResume);
    } else {
        co_await sim_->delay(c.ipcSend + c.contextSwitch);
        sim::SimMutex &lock = managerLock(mgr);
        co_await lock.lock();
        try {
            co_await invokeHandler(mgr, f);
        } catch (...) {
            lock.unlock();
            throw;
        }
        lock.unlock();
        mgr->noteFaultHandled();
        co_await sim_->delay(c.ipcReply + c.contextSwitch + c.trapExit);
    }
    }

    // Copy-on-write: the kernel performs the copy after the manager
    // has allocated a page (§2.1).
    if (f.type == FaultType::CopyOnWrite) {
        Segment &cow_seg = segmentOrThrow(f.segment);
        PageEntry *dst = cow_seg.findPage(f.page);
        if (dst) {
            const Segment &src_seg = segmentOrThrow(f.cowSource);
            const PageEntry *src = src_seg.findPage(f.cowSourcePage);
            if (src) {
                const std::uint32_t fpp = framesPerPage(cow_seg);
                memory_.copyRange(dst->frame, src->frame, fpp);
                co_await chargeCopy(cow_seg.pageSize());
                dst->flags |= flag::kReadable | flag::kWritable |
                              flag::kDirty;
            }
        }
    }

    const sim::Duration fault_latency = sim_->now() - fault_start;
    stats_.faultLatencyTotal += fault_latency;
    if (fault_latency > stats_.faultLatencyMax)
        stats_.faultLatencyMax = fault_latency;
}

sim::Task<>
Kernel::enqueueCoalesced(SegmentManager *mgr, const Fault &f)
{
    FaultQueue &q = faultQueues_[mgr];
    auto done = std::make_shared<sim::Promise<>>(*sim_);
    q.pending.push_back(PendingFault{f, done});
    if (!q.draining) {
        q.draining = true;
        sim_->spawn(drainFaultQueue(mgr));
    }
    co_await done->future();
}

sim::Task<>
Kernel::drainFaultQueue(SegmentManager *mgr)
{
    // Yield once so every fault raised at this instant joins the
    // batch before the dispatch is charged.
    co_await sim_->yield();
    FaultQueue &q = faultQueues_[mgr];
    const auto &c = config_.cost;
    while (!q.pending.empty()) {
        std::vector<PendingFault> batch = std::move(q.pending);
        q.pending.clear();
        ++stats_.faultBatches;
        stats_.faultsCoalesced += batch.size();
        mgr->noteCall();
        ++stats_.managerCalls;
        std::vector<Fault> faults;
        faults.reserve(batch.size());
        for (const PendingFault &p : batch)
            faults.push_back(p.f);
        try {
            if (mgr->mode() == hw::ManagerMode::SameProcess) {
                co_await sim_->delay(c.faultDispatch + c.upcall);
                co_await mgr->handleFaults(*this, faults);
                co_await sim_->delay(config_.resumeThroughKernel
                                         ? c.kernelResume
                                         : c.directResume);
            } else {
                co_await sim_->delay(c.faultDispatch + c.ipcSend +
                                     c.contextSwitch);
                sim::SimMutex &lock = managerLock(mgr);
                co_await lock.lock();
                try {
                    co_await mgr->handleFaults(*this, faults);
                } catch (...) {
                    lock.unlock();
                    throw;
                }
                lock.unlock();
                co_await sim_->delay(c.ipcReply + c.contextSwitch +
                                     c.trapExit);
            }
            for (std::size_t i = 0; i < batch.size(); ++i)
                mgr->noteFaultHandled();
            for (PendingFault &p : batch)
                p.done->setValue();
        } catch (...) {
            // The batch fails as a unit; every parked fault rethrows
            // the handler's error from its own delivery context.
            for (PendingFault &p : batch)
                p.done->setError(std::current_exception());
        }
    }
    q.draining = false;
}

sim::Task<>
Kernel::invokeHandler(SegmentManager *mgr, const Fault &f)
{
    // The default manager is part of the trusted system base (like the
    // kernel itself): injection campaigns target external managers.
    // With no engine active, hand back the handler task directly so no
    // wrapper coroutine frame sits between the kernel and the manager.
    if (inject_ && inject_->enabled() && mgr != defaultMgr_)
        [[unlikely]]
        return invokeHandlerInjected(mgr, f);
    return mgr->handleFault(*this, f);
}

sim::Task<>
Kernel::invokeHandlerInjected(SegmentManager *mgr, const Fault &f)
{
    {
        switch (inject_->managerAction()) {
          case inject::ManagerAction::Stall:
            ++stats_.injectedStalls;
            co_await sim_->delay(inject_->managerStallTime());
            // While the handler was wedged, redelivery or failover may
            // have resolved the fault; running it now would install a
            // second frame onto the same page.
            if (faultResolved(f))
                co_return;
            break;
          case inject::ManagerAction::Crash:
            mgr->noteCrash();
            throw inject::InjectedCrash(mgr->name());
          case inject::ManagerAction::Lie:
            ++stats_.injectedLies;
            co_return; // returns "resolved" without doing anything
          case inject::ManagerAction::None:
            break;
        }
    }
    co_await mgr->handleFault(*this, f);
}

bool
Kernel::faultResolved(const Fault &f)
{
    if (!segmentExists(f.segment))
        return true; // segment gone: nothing left to resolve
    const PageEntry *e = byId_[f.segment]->findPage(f.page);
    if (!e) {
        // A protection fault's page can vanish underneath the fault
        // (failover reclaims the manager's clean frames, and a clock
        // pass may reclaim concurrently). The original fault is then
        // moot: report it resolved so the faulting thread's retry
        // re-resolves the page and raises a fresh missing-page fault.
        return f.type == FaultType::Protection;
    }
    if (f.type == FaultType::MissingPage ||
        f.type == FaultType::CopyOnWrite)
        return true;
    const std::uint32_t need =
        f.access == AccessType::Write ? flag::kWritable : flag::kReadable;
    return (e->flags & need) != 0;
}

sim::Task<>
Kernel::runHandlerAttempt(SegmentManager *mgr, Fault f,
                          std::shared_ptr<sim::Promise<int>> done)
{
    const auto &c = config_.cost;
    try {
        if (mgr->mode() == hw::ManagerMode::SameProcess) {
            co_await sim_->delay(c.upcall);
            // A queued redelivery can find the fault already resolved
            // by an earlier (stalled but eventually successful)
            // attempt; invoking the handler again would double-install
            // the page.
            if (!faultResolved(f))
                co_await invokeHandler(mgr, f);
            mgr->noteFaultHandled();
            co_await sim_->delay(config_.resumeThroughKernel
                                     ? c.kernelResume
                                     : c.directResume);
        } else {
            co_await sim_->delay(c.ipcSend + c.contextSwitch);
            sim::SimMutex &lock = managerLock(mgr);
            co_await lock.lock();
            try {
                if (!faultResolved(f))
                    co_await invokeHandler(mgr, f);
            } catch (...) {
                lock.unlock();
                throw;
            }
            lock.unlock();
            mgr->noteFaultHandled();
            co_await sim_->delay(c.ipcReply + c.contextSwitch +
                                 c.trapExit);
        }
        if (!done->fulfilled())
            done->setValue(0);
    } catch (...) {
        // Contain the failure: a crashing handler (injected or real)
        // and a stalled handler erroring after its deadline must not
        // tear down the simulation — surviving manager failure is the
        // property under test.
        ++stats_.managerCrashes;
        if (!done->fulfilled())
            done->setValue(1);
    }
}

sim::Task<bool>
Kernel::attemptWithDeadline(SegmentManager *mgr, const Fault &f)
{
    auto done = std::make_shared<sim::Promise<int>>(*sim_);
    sim_->spawn(runHandlerAttempt(mgr, f, done));
    // The deadline is a plain scheduled callback, not a spawned
    // watcher coroutine: it claims its event sequence number at the
    // same program point delay() used to, so the event order (and the
    // determinism goldens) are unchanged.
    sim_->schedule(sim_->now() + resilience_.faultDeadline,
                   [done]() {
                       if (!done->fulfilled())
                           done->setValue(2);
                   });
    const int outcome = co_await done->future();
    if (outcome == 2) {
        ++stats_.faultTimeouts;
        mgr->noteTimeout();
    }
    co_return faultResolved(f);
}

sim::Task<>
Kernel::deliverResilient(SegmentManager *mgr, Fault f)
{
    sim::Duration backoff = resilience_.retryBackoff;
    for (int attempt = 0;; ++attempt) {
        if (co_await attemptWithDeadline(mgr, f))
            co_return;
        if (attempt >= resilience_.maxRedeliveries)
            break;
        ++stats_.faultRedeliveries;
        co_await sim_->delay(backoff);
        backoff *= 2;
    }

    if (!resilience_.failover || !defaultMgr_ || defaultMgr_ == mgr) {
        throw KernelError(KernelErrc::ManagerUnresponsive,
                          "manager '" + mgr->name() +
                              "' failed to resolve fault on segment " +
                              std::to_string(f.segment) + " page " +
                              std::to_string(f.page));
    }

    // Failover (§2.3): the kernel takes the segment away from the
    // unresponsive manager, reclaims the manager's clean frames, and
    // hands the segment to the default manager for this fault and all
    // future ones.
    ++stats_.failovers;
    mgr->noteFailover();
    if (resilience_.reclaimOnFailover)
        stats_.framesReclaimed += reclaimUnresponsive(mgr);
    setSegmentManagerNow(f.segment, defaultMgr_);
    defaultMgr_->noteCall();
    ++stats_.managerCalls;
    // The default manager is the trusted base — there is nobody left
    // to fail over to, so its attempt runs without a deadline (a slow
    // disk must not turn an honest fill into "unresponsive").
    auto done = std::make_shared<sim::Promise<int>>(*sim_);
    sim_->spawn(runHandlerAttempt(defaultMgr_, f, done));
    co_await done->future();
    if (faultResolved(f))
        co_return;
    throw KernelError(KernelErrc::ManagerUnresponsive,
                      "default manager '" + defaultMgr_->name() +
                          "' failed to resolve fault type " +
                          std::to_string(static_cast<int>(f.type)) +
                          " on segment " + std::to_string(f.segment) +
                          " page " + std::to_string(f.page));
}

std::uint64_t
Kernel::reclaimUnresponsive(SegmentManager *mgr)
{
    Segment &phys = segmentOrThrow(kPhysSegment);
    std::uint64_t reclaimed = 0;
    for (auto &[sid, seg] : segments_) {
        if (sid == kPhysSegment || seg->manager() != mgr)
            continue;
        const std::uint32_t fpp = framesPerPage(*seg);
        std::vector<PageIndex> victims;
        for (const auto &[page, entry] : seg->pages()) {
            // Dirty data would be lost and pinned pages were promised
            // to stay; everything else is refetchable, so take it.
            if (!(entry.flags & (flag::kPinned | flag::kDirty)))
                victims.push_back(page);
        }
        for (PageIndex page : victims) {
            const PageEntry entry = *seg->findPage(page);
            for (std::uint32_t i = 0; i < fpp; ++i) {
                hw::FrameId fid = entry.frame + i;
                phys.pages()[fid] =
                    PageEntry{fid, flag::kReadable | flag::kWritable};
                frames_[fid].segment = kPhysSegment;
                frames_[fid].page = fid;
            }
            seg->pages().erase(page);
            reclaimed += fpp;
        }
        if (!victims.empty())
            bumpSegEpoch(sid);
    }
    invalidateResolutions();
    if (reclaimed)
        bumpSegEpoch(kPhysSegment);
    return reclaimed;
}

sim::Task<>
Kernel::notifyClosed(SegmentManager *mgr, SegmentId seg)
{
    const auto &c = config_.cost;
    mgr->noteCall();
    ++stats_.managerCalls;
    if (mgr->mode() == hw::ManagerMode::SameProcess) {
        co_await sim_->delay(c.upcall);
        co_await mgr->segmentClosed(*this, seg);
        co_await sim_->delay(config_.resumeThroughKernel ? c.kernelResume
                                                         : c.directResume);
    } else {
        co_await sim_->delay(c.ipcSend + c.contextSwitch);
        sim::SimMutex &lock = managerLock(mgr);
        co_await lock.lock();
        try {
            co_await mgr->segmentClosed(*this, seg);
        } catch (...) {
            lock.unlock();
            throw;
        }
        lock.unlock();
        co_await sim_->delay(c.ipcReply + c.contextSwitch + c.trapExit);
    }
}

sim::Task<>
Kernel::touchSegment(Process &p, SegmentId seg, PageIndex page,
                     AccessType a)
{
    for (int attempt = 0; attempt < kMaxFaultRetries; ++attempt) {
        Resolution r = resolve(seg, page);
        const std::uint32_t need =
            a == AccessType::Write ? flag::kWritable : flag::kReadable;

        if (r.present) {
            if (!(r.regionProt & need)) {
                // The mapping itself forbids this access: not a
                // manager-resolvable fault but an access violation.
                throw KernelError(KernelErrc::Permission,
                                  "region protection");
            }
            const bool cow_write =
                a == AccessType::Write && r.viaCow;
            if (!cow_write && (r.entry->flags & need)) {
                r.entry->flags |= flag::kReferenced;
                if (a == AccessType::Write)
                    r.entry->flags |= flag::kDirty;
                // Simple TLB misses are handled by the kernel (§2.1):
                // a refill costs a short in-kernel excursion, no
                // manager involvement.
                if (tlb_ && !tlb_->access(seg, page)) {
                    ++stats_.tlbMisses;
                    co_await sim_->delay(config_.tlbRefill);
                }
                co_return;
            }

            Fault f;
            f.access = a;
            f.process = &p;
            f.vaSegment = seg;
            f.vaPage = page;
            if (cow_write && (r.entry->flags & flag::kReadable)) {
                f.type = FaultType::CopyOnWrite;
                f.segment = r.cowSeg;
                f.page = r.cowPage;
                f.cowSource = r.seg;
                f.cowSourcePage = r.page;
            } else {
                // Insufficient page protection (possibly the source of
                // a copy-on-write chain that is itself protected).
                f.type = FaultType::Protection;
                f.segment = r.seg;
                f.page = r.page;
            }
            co_await deliverFault(f);
            continue;
        }

        Fault f;
        f.type = FaultType::MissingPage;
        f.access = a;
        f.process = &p;
        f.segment = r.seg;
        f.page = r.page;
        f.vaSegment = seg;
        f.vaPage = page;
        co_await deliverFault(f);
    }
    throw KernelError(KernelErrc::FaultLoop,
                      "fault on segment " + std::to_string(seg) +
                          " page " + std::to_string(page) +
                          " unresolved after " +
                          std::to_string(kMaxFaultRetries) + " retries");
}

sim::Task<>
Kernel::touch(Process &p, std::uint64_t vaddr, AccessType a)
{
    SegmentId as = p.addressSpace();
    const Segment &s = segmentOrThrow(as);
    co_await touchSegment(p, as, vaddr / s.pageSize(), a);
}

// ----------------------------------------------------------------------
// Data movement
// ----------------------------------------------------------------------

void
Kernel::writePageData(SegmentId seg, PageIndex page, std::uint64_t offset,
                      std::span<const std::byte> data)
{
    Segment &s = segmentOrThrow(seg);
    PageEntry *e = s.findPage(page);
    if (!e)
        throw KernelError(KernelErrc::PageMissing, "writePageData");
    if (offset + data.size() > s.pageSize())
        throw KernelError(KernelErrc::LimitExceeded, "writePageData");
    const std::uint32_t fs = memory_.frameSize();
    std::uint64_t off = offset;
    std::size_t done = 0;
    while (done < data.size()) {
        hw::FrameId f = e->frame + static_cast<hw::FrameId>(off / fs);
        std::uint64_t in_frame = off % fs;
        std::size_t n = std::min<std::size_t>(fs - in_frame,
                                              data.size() - done);
        std::memcpy(memory_.write(f) + in_frame, data.data() + done, n);
        done += n;
        off += n;
    }
}

void
Kernel::readPageData(SegmentId seg, PageIndex page, std::uint64_t offset,
                     std::span<std::byte> out)
{
    Segment &s = segmentOrThrow(seg);
    PageEntry *e = s.findPage(page);
    if (!e)
        throw KernelError(KernelErrc::PageMissing, "readPageData");
    if (offset + out.size() > s.pageSize())
        throw KernelError(KernelErrc::LimitExceeded, "readPageData");
    const std::uint32_t fs = memory_.frameSize();
    std::uint64_t off = offset;
    std::size_t done = 0;
    while (done < out.size()) {
        hw::FrameId f = e->frame + static_cast<hw::FrameId>(off / fs);
        std::uint64_t in_frame = off % fs;
        std::size_t n = std::min<std::size_t>(fs - in_frame,
                                              out.size() - done);
        const std::byte *src = memory_.peek(f);
        if (src)
            std::memcpy(out.data() + done, src + in_frame, n);
        else
            std::memset(out.data() + done, 0, n);
        done += n;
        off += n;
    }
}

sim::Task<>
Kernel::copyIn(Process &p, std::uint64_t vaddr,
               std::span<const std::byte> data)
{
    SegmentId as = p.addressSpace();
    const std::uint32_t ps = segmentOrThrow(as).pageSize();
    std::size_t done = 0;
    while (done < data.size()) {
        PageIndex page = (vaddr + done) / ps;
        std::uint64_t in_page = (vaddr + done) % ps;
        std::size_t n = std::min<std::size_t>(ps - in_page,
                                              data.size() - done);
        co_await touchSegment(p, as, page, AccessType::Write);
        Resolution r = resolve(as, page);
        if (!r.present)
            throw KernelError(KernelErrc::PageMissing, "copyIn");
        writePageData(r.seg, r.page, in_page,
                      data.subspan(done, n));
        done += n;
    }
    co_await chargeCopy(data.size());
}

sim::Task<>
Kernel::copyOut(Process &p, std::uint64_t vaddr, std::span<std::byte> out)
{
    SegmentId as = p.addressSpace();
    const std::uint32_t ps = segmentOrThrow(as).pageSize();
    std::size_t done = 0;
    while (done < out.size()) {
        PageIndex page = (vaddr + done) / ps;
        std::uint64_t in_page = (vaddr + done) % ps;
        std::size_t n = std::min<std::size_t>(ps - in_page,
                                              out.size() - done);
        co_await touchSegment(p, as, page, AccessType::Read);
        Resolution r = resolve(as, page);
        if (!r.present)
            throw KernelError(KernelErrc::PageMissing, "copyOut");
        readPageData(r.seg, r.page, in_page, out.subspan(done, n));
        done += n;
    }
    co_await chargeCopy(out.size());
}

sim::Task<>
Kernel::chargeCopy(std::uint64_t bytes)
{
    stats_.bytesCopied += bytes;
    co_await sim_->delay(static_cast<sim::Duration>(
        static_cast<double>(config_.cost.copyPerKB) * bytes / 1024.0));
}

sim::Task<>
Kernel::chargeZero(std::uint64_t bytes)
{
    co_await sim_->delay(static_cast<sim::Duration>(
        static_cast<double>(config_.cost.pageZeroPerKB) * bytes /
        1024.0));
}

// ----------------------------------------------------------------------
// Invariants
// ----------------------------------------------------------------------

bool
Kernel::checkFrameInvariant(std::string *why) const
{
    std::vector<std::uint8_t> seen(frames_.size(), 0);
    for (const auto &[sid, seg] : segments_) {
        const std::uint32_t fpp =
            seg->pageSize() / memory_.frameSize();
        for (const auto &[page, entry] : seg->pages()) {
            for (std::uint32_t i = 0; i < fpp; ++i) {
                hw::FrameId f = entry.frame + i;
                if (f >= frames_.size()) {
                    if (why) {
                        std::ostringstream os;
                        os << "segment " << sid << " page " << page
                           << " frame " << f << " out of range";
                        *why = os.str();
                    }
                    return false;
                }
                if (seen[f]) {
                    if (why) {
                        std::ostringstream os;
                        os << "frame " << f << " owned twice (segment "
                           << sid << " page " << page << ")";
                        *why = os.str();
                    }
                    return false;
                }
                seen[f] = 1;
                if (frames_[f].segment != sid ||
                    frames_[f].page != page) {
                    if (why) {
                        std::ostringstream os;
                        os << "frame " << f << " ownership record ("
                           << frames_[f].segment << ","
                           << frames_[f].page
                           << ") disagrees with segment " << sid
                           << " page " << page;
                        *why = os.str();
                    }
                    return false;
                }
            }
        }
    }
    for (hw::FrameId f = 0; f < seen.size(); ++f) {
        if (!seen[f]) {
            if (why) {
                std::ostringstream os;
                os << "frame " << f << " owned by no segment";
                *why = os.str();
            }
            return false;
        }
    }
    return true;
}

} // namespace vpp::kernel
