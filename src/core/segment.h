/**
 * @file
 * Segments and bound regions (paper §2.1, Figure 1).
 *
 * A segment is a variable-size range of pages. Pages either hold a page
 * frame directly (an *own* page) or are covered by a bound region that
 * forwards references to another segment, optionally copy-on-write.
 * Own pages override bindings: installing a frame at a bound page (the
 * copy-on-write resolution) shadows the binding for that page.
 *
 * Pages live in a two-level sparse table (page_table.h) with O(1)
 * lookup; bindings are kept sorted by start page so the covering
 * region is found by binary search. Each segment also carries a
 * two-level prime-hashed front-cache of resolve() results (primary
 * direct-mapped array plus a smaller victim array), validated against
 * the kernel's mutation epoch.
 */

#ifndef VPP_CORE_SEGMENT_H
#define VPP_CORE_SEGMENT_H

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/page_table.h"
#include "core/types.h"
#include "hw/types.h"

namespace vpp::kernel {

class SegmentManager;

/** A bound region forwarding a page range to another segment. */
struct Binding
{
    PageIndex start = 0;       ///< first covered page in this segment
    std::uint64_t pages = 0;   ///< pages covered
    SegmentId target = kInvalidSegment;
    PageIndex targetStart = 0; ///< first page in the target
    std::uint32_t prot = 0;    ///< max access allowed through the region
    bool copyOnWrite = false;

    bool
    covers(PageIndex p) const
    {
        return p >= start && p < start + pages;
    }
};

/** Result of resolving a segment reference (exposed for tests). */
struct Resolution
{
    bool present = false;      ///< a frame-backed entry was found
    SegmentId seg = kInvalidSegment;  ///< entry owner / fault target
    PageIndex page = 0;
    PageEntry *entry = nullptr;
    std::uint32_t regionProt = flag::kProtMask; ///< AND of region prots
    bool viaCow = false;
    SegmentId cowSeg = kInvalidSegment; ///< where a private copy goes
    PageIndex cowPage = 0;
};

/**
 * Two-level prime-hashed resolve() front-cache.
 *
 * An open-addressed, direct-mapped primary array backed by a smaller
 * victim (secondary) array, in the style of shadowOS's page cache: a
 * primary miss probes the victim slot, and a victim hit promotes the
 * entry back to primary (demoting whatever it displaces). Entries are
 * validated against the kernel's global mutation epoch, so every
 * MigratePages / bind / unbind / flag edit / segment destruction
 * strictly invalidates the whole cache in O(1) (the epoch bump), with
 * no per-entry sweeping. Storage is allocated lazily on first store;
 * segments that never fault through resolve() pay nothing.
 */
class ResolveCache
{
  public:
    const Resolution *
    lookup(PageIndex p, std::uint64_t epoch)
    {
        if (!slots_)
            return nullptr;
        Entry &e = slots_[h1(p)];
        if (e.epoch == epoch && e.page == p)
            return &e.res;
        Entry &v = slots_[kPrimary + h2(p)];
        if (v.epoch == epoch && v.page == p) {
            // Victim hit: promote to primary, demote the displaced
            // entry into the victim slot it hashes to (here).
            std::swap(e, v);
            return &e.res;
        }
        return nullptr;
    }

    void
    store(PageIndex p, const Resolution &r, std::uint64_t epoch)
    {
        if (!slots_) {
            // Value-initialised: epoch 0 never matches (the kernel's
            // epoch starts at 1).
            slots_ = std::make_unique<Entry[]>(kPrimary + kSecondary);
        }
        Entry &e = slots_[h1(p)];
        if (e.epoch == epoch && e.page != p)
            slots_[kPrimary + h2(e.page)] = e; // keep the old entry warm
        e.page = p;
        e.epoch = epoch;
        e.res = r;
    }

  private:
    struct Entry
    {
        PageIndex page = 0;
        std::uint64_t epoch = 0; ///< 0 == never valid
        Resolution res;
    };

    static constexpr std::uint32_t kPrimary = 128;
    static constexpr std::uint32_t kSecondary = 64;

    /** Fibonacci-style prime multiplicative hashes (shadowOS). */
    static std::uint32_t
    h1(PageIndex p)
    {
        return static_cast<std::uint32_t>(
            (p * 0x9e3779b97f4a7c15ull) >> 57); // top 7 bits: 0..127
    }

    static std::uint32_t
    h2(PageIndex p)
    {
        return static_cast<std::uint32_t>(
            (p * 0x7f4a7c159e3779b9ull) >> 58); // top 6 bits: 0..63
    }

    std::unique_ptr<Entry[]> slots_;
};

/**
 * Longest resolution chain a per-CPU cache entry will record. Deeper
 * chains (up to the kernel's binding-depth limit) still resolve, they
 * are just never cached per-CPU.
 */
inline constexpr std::uint32_t kResolveChainMax = 4;

/**
 * A resolution by value: everything a CPU needs to satisfy a mapped
 * reference locally, with no pointers into kernel structures. Shards
 * other than the kernel's home shard hold these in per-CPU caches, so
 * the hot resolve path never dereferences cross-shard state — the
 * entry carries the frame, flags and region protection outright.
 *
 * Validity is per-segment: `chain` records every segment the
 * resolution walked through (origin, intermediate bindings, final
 * owner) and `epochSum` the sum of their mutation epochs at fill
 * time. Epochs only grow, so the sum is unchanged iff no chain
 * segment was mutated — a migrate into an unrelated segment leaves
 * the entry live, which is what lets many CPUs fault concurrently
 * without flushing each other's caches.
 */
struct CpuResolution
{
    SegmentId originSeg = kInvalidSegment; ///< cache key
    PageIndex originPage = 0;              ///< cache key

    bool present = false;
    SegmentId seg = kInvalidSegment; ///< entry owner / fault target
    PageIndex page = 0;
    hw::FrameId frame = 0;
    std::uint32_t flags = 0;
    std::uint32_t regionProt = flag::kProtMask;
    bool viaCow = false;
    SegmentId cowSeg = kInvalidSegment;
    PageIndex cowPage = 0;

    std::uint32_t chainLen = 0; ///< 0 == never valid (empty slot)
    SegmentId chain[kResolveChainMax] = {};
    std::uint64_t epochSum = 0;
};

/**
 * Per-CPU two-level hashed cache of CpuResolution values, the same
 * primary+victim shape as ResolveCache but keyed by (segment, page)
 * and validated against the per-segment epoch table instead of the
 * global epoch. One instance per simulated CPU; during a sharded run
 * each instance is probed and filled only by the shard that owns its
 * CPU, so it needs no locking.
 */
class CpuResolveCache
{
  public:
    const CpuResolution *
    lookup(SegmentId seg, PageIndex page,
           const std::vector<std::uint64_t> &epochs)
    {
        if (!slots_)
            return nullptr;
        CpuResolution &e = slots_[h1(seg, page)];
        if (matches(e, seg, page, epochs))
            return &e;
        CpuResolution &v = slots_[kPrimary + h2(seg, page)];
        if (matches(v, seg, page, epochs)) {
            // Victim hit: promote to primary, demote the displaced
            // entry into the victim slot it hashes to (here).
            std::swap(e, v);
            return &e;
        }
        return nullptr;
    }

    void
    store(const CpuResolution &r)
    {
        if (!slots_) {
            // Value-initialised: chainLen 0 never matches.
            slots_ =
                std::make_unique<CpuResolution[]>(kPrimary + kSecondary);
        }
        CpuResolution &e = slots_[h1(r.originSeg, r.originPage)];
        if (e.chainLen != 0 &&
            (e.originSeg != r.originSeg || e.originPage != r.originPage))
            slots_[kPrimary + h2(e.originSeg, e.originPage)] = e;
        e = r;
    }

  private:
    static constexpr std::uint32_t kPrimary = 128;
    static constexpr std::uint32_t kSecondary = 64;

    static bool
    matches(const CpuResolution &e, SegmentId seg, PageIndex page,
            const std::vector<std::uint64_t> &epochs)
    {
        if (e.chainLen == 0 || e.originSeg != seg ||
            e.originPage != page)
            return false;
        // Re-sum the chain segments' epochs: epochs are monotonic, so
        // equality means no chain segment was mutated since the fill.
        std::uint64_t sum = 0;
        for (std::uint32_t i = 0; i < e.chainLen; ++i) {
            SegmentId s = e.chain[i];
            if (s >= epochs.size())
                return false;
            sum += epochs[s];
        }
        return sum == e.epochSum;
    }

    /** Fibonacci-style multiplicative hashes over (seg, page). */
    static std::uint32_t
    h1(SegmentId seg, PageIndex page)
    {
        return static_cast<std::uint32_t>(
            ((page * 0x9e3779b97f4a7c15ull) ^
             (seg * 0xbf58476d1ce4e5b9ull)) >>
            57); // top 7 bits: 0..127
    }

    static std::uint32_t
    h2(SegmentId seg, PageIndex page)
    {
        return static_cast<std::uint32_t>(
            ((page * 0x7f4a7c159e3779b9ull) ^
             (seg * 0x94d049bb133111ebull)) >>
            58); // top 6 bits: 0..63
    }

    std::unique_ptr<CpuResolution[]> slots_;
};

class Segment
{
  public:
    Segment(SegmentId id, std::string name, std::uint32_t page_size,
            std::uint64_t page_limit, UserId owner)
        : id_(id), name_(std::move(name)), pageSize_(page_size),
          pageLimit_(page_limit), owner_(owner)
    {}

    SegmentId id() const { return id_; }
    const std::string &name() const { return name_; }
    std::uint32_t pageSize() const { return pageSize_; }
    std::uint64_t pageLimit() const { return pageLimit_; }
    UserId owner() const { return owner_; }

    SegmentManager *manager() const { return manager_; }
    void setManager(SegmentManager *m) { manager_ = m; }

    /** Number of pages currently holding frames. */
    std::uint64_t presentPages() const { return pages_.size(); }

    const PageEntry *findPage(PageIndex p) const { return pages_.find(p); }

    PageEntry *findPage(PageIndex p) { return pages_.find(p); }

    /** The binding covering @p p, if any (bindings never overlap). */
    const Binding *
    findBinding(PageIndex p) const
    {
        // bindings_ is sorted by start: the only candidate is the last
        // region starting at or before p.
        auto it = std::upper_bound(
            bindings_.begin(), bindings_.end(), p,
            [](PageIndex v, const Binding &b) { return v < b.start; });
        if (it == bindings_.begin())
            return nullptr;
        --it;
        return it->covers(p) ? &*it : nullptr;
    }

    /** True if [at, at+pages) overlaps any existing bound region. */
    bool
    overlapsBinding(PageIndex at, std::uint64_t pages) const
    {
        auto it = std::upper_bound(
            bindings_.begin(), bindings_.end(), at + pages,
            [](PageIndex v, const Binding &b) { return v <= b.start; });
        if (it == bindings_.begin())
            return false;
        --it;
        return it->start + it->pages > at;
    }

    /** Insert a region keeping bindings_ sorted by start page. */
    void
    addBinding(const Binding &b)
    {
        auto it = std::upper_bound(
            bindings_.begin(), bindings_.end(), b.start,
            [](PageIndex v, const Binding &r) { return v < r.start; });
        bindings_.insert(it, b);
    }

    /** Remove and return the region starting exactly at @p at. */
    std::optional<Binding>
    takeBindingAt(PageIndex at)
    {
        auto it = std::lower_bound(
            bindings_.begin(), bindings_.end(), at,
            [](const Binding &b, PageIndex v) { return b.start < v; });
        if (it == bindings_.end() || it->start != at)
            return std::nullopt;
        Binding b = *it;
        bindings_.erase(it);
        return b;
    }

    const PageTable &pages() const { return pages_; }
    PageTable &pages() { return pages_; }

    const std::vector<Binding> &bindings() const { return bindings_; }

    bool
    inRange(PageIndex p) const
    {
        return p < pageLimit_;
    }

    /**
     * Hashed resolve() front-cache. A hit requires the queried page's
     * entry to carry a kernel mutation epoch unchanged since the
     * store; any migrate/bind/unbind/flag edit bumps the epoch and
     * invalidates every segment's cache at once.
     */
    const Resolution *
    cachedResolution(PageIndex p, std::uint64_t epoch) const
    {
        return rcache_.lookup(p, epoch);
    }

    void
    storeResolution(PageIndex p, const Resolution &r,
                    std::uint64_t epoch) const
    {
        rcache_.store(p, r, epoch);
    }

  private:
    SegmentId id_;
    std::string name_;
    std::uint32_t pageSize_;
    std::uint64_t pageLimit_;
    UserId owner_;
    SegmentManager *manager_ = nullptr;
    PageTable pages_;
    std::vector<Binding> bindings_; ///< sorted by Binding::start

    mutable ResolveCache rcache_;
};

} // namespace vpp::kernel

#endif // VPP_CORE_SEGMENT_H
