/**
 * @file
 * Segments and bound regions (paper §2.1, Figure 1).
 *
 * A segment is a variable-size range of pages. Pages either hold a page
 * frame directly (an *own* page) or are covered by a bound region that
 * forwards references to another segment, optionally copy-on-write.
 * Own pages override bindings: installing a frame at a bound page (the
 * copy-on-write resolution) shadows the binding for that page.
 *
 * Pages live in a two-level sparse table (page_table.h) with O(1)
 * lookup; bindings are kept sorted by start page so the covering
 * region is found by binary search. Each segment also carries a
 * one-entry cache of the last resolve() result, validated against the
 * kernel's mutation epoch.
 */

#ifndef VPP_CORE_SEGMENT_H
#define VPP_CORE_SEGMENT_H

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/page_table.h"
#include "core/types.h"
#include "hw/types.h"

namespace vpp::kernel {

class SegmentManager;

/** A bound region forwarding a page range to another segment. */
struct Binding
{
    PageIndex start = 0;       ///< first covered page in this segment
    std::uint64_t pages = 0;   ///< pages covered
    SegmentId target = kInvalidSegment;
    PageIndex targetStart = 0; ///< first page in the target
    std::uint32_t prot = 0;    ///< max access allowed through the region
    bool copyOnWrite = false;

    bool
    covers(PageIndex p) const
    {
        return p >= start && p < start + pages;
    }
};

/** Result of resolving a segment reference (exposed for tests). */
struct Resolution
{
    bool present = false;      ///< a frame-backed entry was found
    SegmentId seg = kInvalidSegment;  ///< entry owner / fault target
    PageIndex page = 0;
    PageEntry *entry = nullptr;
    std::uint32_t regionProt = flag::kProtMask; ///< AND of region prots
    bool viaCow = false;
    SegmentId cowSeg = kInvalidSegment; ///< where a private copy goes
    PageIndex cowPage = 0;
};

class Segment
{
  public:
    Segment(SegmentId id, std::string name, std::uint32_t page_size,
            std::uint64_t page_limit, UserId owner)
        : id_(id), name_(std::move(name)), pageSize_(page_size),
          pageLimit_(page_limit), owner_(owner)
    {}

    SegmentId id() const { return id_; }
    const std::string &name() const { return name_; }
    std::uint32_t pageSize() const { return pageSize_; }
    std::uint64_t pageLimit() const { return pageLimit_; }
    UserId owner() const { return owner_; }

    SegmentManager *manager() const { return manager_; }
    void setManager(SegmentManager *m) { manager_ = m; }

    /** Number of pages currently holding frames. */
    std::uint64_t presentPages() const { return pages_.size(); }

    const PageEntry *findPage(PageIndex p) const { return pages_.find(p); }

    PageEntry *findPage(PageIndex p) { return pages_.find(p); }

    /** The binding covering @p p, if any (bindings never overlap). */
    const Binding *
    findBinding(PageIndex p) const
    {
        // bindings_ is sorted by start: the only candidate is the last
        // region starting at or before p.
        auto it = std::upper_bound(
            bindings_.begin(), bindings_.end(), p,
            [](PageIndex v, const Binding &b) { return v < b.start; });
        if (it == bindings_.begin())
            return nullptr;
        --it;
        return it->covers(p) ? &*it : nullptr;
    }

    /** True if [at, at+pages) overlaps any existing bound region. */
    bool
    overlapsBinding(PageIndex at, std::uint64_t pages) const
    {
        auto it = std::upper_bound(
            bindings_.begin(), bindings_.end(), at + pages,
            [](PageIndex v, const Binding &b) { return v <= b.start; });
        if (it == bindings_.begin())
            return false;
        --it;
        return it->start + it->pages > at;
    }

    /** Insert a region keeping bindings_ sorted by start page. */
    void
    addBinding(const Binding &b)
    {
        auto it = std::upper_bound(
            bindings_.begin(), bindings_.end(), b.start,
            [](PageIndex v, const Binding &r) { return v < r.start; });
        bindings_.insert(it, b);
    }

    /** Remove and return the region starting exactly at @p at. */
    std::optional<Binding>
    takeBindingAt(PageIndex at)
    {
        auto it = std::lower_bound(
            bindings_.begin(), bindings_.end(), at,
            [](const Binding &b, PageIndex v) { return b.start < v; });
        if (it == bindings_.end() || it->start != at)
            return std::nullopt;
        Binding b = *it;
        bindings_.erase(it);
        return b;
    }

    const PageTable &pages() const { return pages_; }
    PageTable &pages() { return pages_; }

    const std::vector<Binding> &bindings() const { return bindings_; }

    bool
    inRange(PageIndex p) const
    {
        return p < pageLimit_;
    }

    /**
     * One-entry resolve() cache. A hit requires the same queried page
     * and a kernel mutation epoch unchanged since the store; any
     * migrate/bind/unbind/flag edit bumps the epoch and invalidates
     * every segment's cache at once.
     */
    const Resolution *
    cachedResolution(PageIndex p, std::uint64_t epoch) const
    {
        if (rcacheEpoch_ == epoch && rcachePage_ == p)
            return &rcache_;
        return nullptr;
    }

    void
    storeResolution(PageIndex p, const Resolution &r,
                    std::uint64_t epoch) const
    {
        rcachePage_ = p;
        rcache_ = r;
        rcacheEpoch_ = epoch;
    }

  private:
    SegmentId id_;
    std::string name_;
    std::uint32_t pageSize_;
    std::uint64_t pageLimit_;
    UserId owner_;
    SegmentManager *manager_ = nullptr;
    PageTable pages_;
    std::vector<Binding> bindings_; ///< sorted by Binding::start

    mutable PageIndex rcachePage_ = 0;
    mutable Resolution rcache_;
    mutable std::uint64_t rcacheEpoch_ = 0; ///< 0 == never valid
};

} // namespace vpp::kernel

#endif // VPP_CORE_SEGMENT_H
