/**
 * @file
 * Segments and bound regions (paper §2.1, Figure 1).
 *
 * A segment is a variable-size range of pages. Pages either hold a page
 * frame directly (an *own* page) or are covered by a bound region that
 * forwards references to another segment, optionally copy-on-write.
 * Own pages override bindings: installing a frame at a bound page (the
 * copy-on-write resolution) shadows the binding for that page.
 */

#ifndef VPP_CORE_SEGMENT_H
#define VPP_CORE_SEGMENT_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "hw/types.h"

namespace vpp::kernel {

class SegmentManager;

/** A page with a frame installed. */
struct PageEntry
{
    hw::FrameId frame = hw::kInvalidFrame;
    std::uint32_t flags = 0;
};

/** A bound region forwarding a page range to another segment. */
struct Binding
{
    PageIndex start = 0;       ///< first covered page in this segment
    std::uint64_t pages = 0;   ///< pages covered
    SegmentId target = kInvalidSegment;
    PageIndex targetStart = 0; ///< first page in the target
    std::uint32_t prot = 0;    ///< max access allowed through the region
    bool copyOnWrite = false;

    bool
    covers(PageIndex p) const
    {
        return p >= start && p < start + pages;
    }
};

class Segment
{
  public:
    Segment(SegmentId id, std::string name, std::uint32_t page_size,
            std::uint64_t page_limit, UserId owner)
        : id_(id), name_(std::move(name)), pageSize_(page_size),
          pageLimit_(page_limit), owner_(owner)
    {}

    SegmentId id() const { return id_; }
    const std::string &name() const { return name_; }
    std::uint32_t pageSize() const { return pageSize_; }
    std::uint64_t pageLimit() const { return pageLimit_; }
    UserId owner() const { return owner_; }

    SegmentManager *manager() const { return manager_; }
    void setManager(SegmentManager *m) { manager_ = m; }

    /** Number of pages currently holding frames. */
    std::uint64_t presentPages() const { return pages_.size(); }

    const PageEntry *
    findPage(PageIndex p) const
    {
        auto it = pages_.find(p);
        return it == pages_.end() ? nullptr : &it->second;
    }

    PageEntry *
    findPage(PageIndex p)
    {
        auto it = pages_.find(p);
        return it == pages_.end() ? nullptr : &it->second;
    }

    /** The binding covering @p p, if any (bindings never overlap). */
    const Binding *
    findBinding(PageIndex p) const
    {
        for (const auto &b : bindings_)
            if (b.covers(p))
                return &b;
        return nullptr;
    }

    const std::map<PageIndex, PageEntry> &pages() const { return pages_; }
    std::map<PageIndex, PageEntry> &pages() { return pages_; }

    const std::vector<Binding> &bindings() const { return bindings_; }
    std::vector<Binding> &bindings() { return bindings_; }

    bool
    inRange(PageIndex p) const
    {
        return p < pageLimit_;
    }

  private:
    SegmentId id_;
    std::string name_;
    std::uint32_t pageSize_;
    std::uint64_t pageLimit_;
    UserId owner_;
    SegmentManager *manager_ = nullptr;
    std::map<PageIndex, PageEntry> pages_;
    std::vector<Binding> bindings_;
};

} // namespace vpp::kernel

#endif // VPP_CORE_SEGMENT_H
